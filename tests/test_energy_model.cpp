// Architecture-level energy model: invariants, BET solver consistency, and
// the paper's headline shape claims as testable properties.
//
// Uses a synthetic-but-realistic CellEnergetics pair so the model logic is
// tested independently of the SPICE characterization (which has its own
// tests); test_analyzer.cpp ties the two together.
#include <gtest/gtest.h>

#include <cmath>

#include "core/energy_model.h"
#include "util/stats.h"

namespace nvsram {
namespace {

using core::Architecture;
using core::BenchmarkParams;
using core::EnergyModel;
using sram::CellEnergetics;

CellEnergetics fake_6t() {
  CellEnergetics c;
  c.t_clk = 1.0 / 300e6;
  c.e_read = 3.8e-15;
  c.e_write = 4.9e-15;
  c.p_static_normal = 23.2e-9;
  c.p_static_sleep = 9.5e-9;
  c.p_static_shutdown = 30e-12;
  c.e_sleep_transition = 1e-15;
  return c;
}

CellEnergetics fake_nv() {
  CellEnergetics c = fake_6t();
  c.e_read = 4.1e-15;
  c.e_write = 5.1e-15;
  c.p_static_normal = 23.9e-9;
  c.p_static_sleep = 10.2e-9;
  c.e_store = 400e-15;
  c.t_store = 24e-9;
  c.e_restore = 33e-15;
  c.t_restore = 2.1e-9;
  c.store_verified = true;
  c.restore_verified = true;
  return c;
}

class EnergyModelTest : public ::testing::Test {
 protected:
  EnergyModelTest() : model_(fake_6t(), fake_nv()) {}
  EnergyModel model_;
};

TEST_F(EnergyModelTest, RejectsVolatileCellAsNv) {
  EXPECT_THROW(EnergyModel(fake_6t(), fake_6t()), std::invalid_argument);
}

TEST_F(EnergyModelTest, RejectsInvalidParams) {
  BenchmarkParams p;
  p.n_rw = 0;
  EXPECT_THROW(model_.e_cyc(Architecture::kOSR, p), std::invalid_argument);
  p = BenchmarkParams{};
  p.t_sd = -1.0;
  EXPECT_THROW(model_.e_cyc(Architecture::kNVPG, p), std::invalid_argument);
}

TEST_F(EnergyModelTest, BreakdownSumsToTotal) {
  BenchmarkParams p;
  p.n_rw = 50;
  p.t_sl = 100e-9;
  p.t_sd = 1e-5;
  for (auto a : {Architecture::kOSR, Architecture::kNVPG, Architecture::kNOF}) {
    const auto b = model_.cycle_energy(a, p);
    const double sum = b.access + b.standby + b.sleep + b.store + b.store_wait +
                       b.shutdown + b.restore + b.restore_wait;
    EXPECT_NEAR(b.total(), sum, 1e-25);
    EXPECT_GT(b.total(), 0.0);
    EXPECT_GT(b.duration, 0.0);
  }
}

TEST_F(EnergyModelTest, EcycIncreasesWithEveryKnob) {
  // E_cyc must be non-decreasing in n_rw, t_sl, t_sd, and rows.
  for (auto a : {Architecture::kOSR, Architecture::kNVPG, Architecture::kNOF}) {
    BenchmarkParams p;
    std::vector<double> by_nrw, by_tsl, by_tsd, by_rows;
    for (int n : {1, 10, 100, 1000}) {
      p = BenchmarkParams{};
      p.n_rw = n;
      by_nrw.push_back(model_.e_cyc(a, p));
    }
    for (double t : {0.0, 1e-7, 1e-6}) {
      p = BenchmarkParams{};
      p.t_sl = t;
      by_tsl.push_back(model_.e_cyc(a, p));
    }
    for (double t : {0.0, 1e-5, 1e-3}) {
      p = BenchmarkParams{};
      p.t_sd = t;
      by_tsd.push_back(model_.e_cyc(a, p));
    }
    for (int r : {32, 256, 2048}) {
      p = BenchmarkParams{};
      p.rows = r;
      by_rows.push_back(model_.e_cyc(a, p));
    }
    EXPECT_TRUE(util::is_monotone_nondecreasing(by_nrw)) << to_string(a);
    EXPECT_TRUE(util::is_monotone_nondecreasing(by_tsl)) << to_string(a);
    EXPECT_TRUE(util::is_monotone_nondecreasing(by_tsd)) << to_string(a);
    EXPECT_TRUE(util::is_monotone_nondecreasing(by_rows)) << to_string(a);
  }
}

// ---- Fig. 7(a): NVPG converges to OSR; NOF stays above ----

TEST_F(EnergyModelTest, NvpgApproachesOsrAtLargeNrw) {
  BenchmarkParams p;
  p.t_sl = 100e-9;
  p.t_sd = 0.0;
  p.n_rw = 1;
  const double ratio_small = model_.e_cyc(Architecture::kNVPG, p) /
                             model_.e_cyc(Architecture::kOSR, p);
  p.n_rw = 100000;
  const double ratio_large = model_.e_cyc(Architecture::kNVPG, p) /
                             model_.e_cyc(Architecture::kOSR, p);
  EXPECT_GT(ratio_small, 2.0);     // store/restore dominates one iteration
  EXPECT_LT(ratio_large, 1.10);    // amortized away
  EXPECT_GE(ratio_large, 1.0);     // but never below the volatile baseline
}

TEST_F(EnergyModelTest, NofStaysWellAboveOsr) {
  BenchmarkParams p;
  p.t_sl = 100e-9;
  for (int n : {1, 10, 100, 10000}) {
    p.n_rw = n;
    const double ratio = model_.e_cyc(Architecture::kNOF, p) /
                         model_.e_cyc(Architecture::kOSR, p);
    EXPECT_GT(ratio, 3.0) << "n_rw=" << n;
  }
}

TEST_F(EnergyModelTest, NvpgAndNofComparableAtSingleIteration) {
  // Paper: at n_RW = 1 both execute the same store count.
  BenchmarkParams p;
  p.n_rw = 1;
  p.t_sl = 0.0;
  p.t_sd = 0.0;
  const double e_nvpg = model_.e_cyc(Architecture::kNVPG, p);
  const double e_nof = model_.e_cyc(Architecture::kNOF, p);
  EXPECT_NEAR(e_nvpg / e_nof, 1.0, 0.35);
}

// ---- Fig. 7(b): large-domain crossover at small n_RW ----

TEST_F(EnergyModelTest, LargeDomainMakesNvpgWorseThanNofAtTinyNrw) {
  BenchmarkParams p;
  p.t_sl = 100e-9;
  p.t_sd = 0.0;
  p.n_rw = 1;
  p.rows = 2048;
  EXPECT_GT(model_.e_cyc(Architecture::kNVPG, p),
            model_.e_cyc(Architecture::kNOF, p));
  // ... and the effect dies out quickly with n_RW (paper: by ~10).
  p.n_rw = 64;
  EXPECT_LT(model_.e_cyc(Architecture::kNVPG, p),
            model_.e_cyc(Architecture::kNOF, p));
}

// ---- BET ----

TEST_F(EnergyModelTest, AnalyticBetMatchesNumeric) {
  for (auto a : {Architecture::kNVPG, Architecture::kNOF}) {
    for (int n_rw : {10, 100, 1000}) {
      for (int rows : {32, 512}) {
        BenchmarkParams p;
        p.n_rw = n_rw;
        p.rows = rows;
        p.t_sl = 100e-9;
        const auto analytic = model_.break_even_time(a, p);
        const auto numeric = model_.break_even_time_numeric(a, p);
        ASSERT_EQ(analytic.has_value(), numeric.has_value());
        if (analytic) {
          EXPECT_NEAR(*analytic, *numeric,
                      1e-3 * std::max(*analytic, 1e-9))
              << to_string(a) << " n_rw=" << n_rw << " rows=" << rows;
        }
      }
    }
  }
}

TEST_F(EnergyModelTest, NvpgBetIsTensOfMicroseconds) {
  BenchmarkParams p;
  p.n_rw = 10;
  p.rows = 32;
  p.t_sl = 100e-9;
  const auto bet = model_.break_even_time(Architecture::kNVPG, p);
  ASSERT_TRUE(bet.has_value());
  EXPECT_GT(*bet, 5e-6);
  EXPECT_LT(*bet, 500e-6);  // "several 10 us" band
}

TEST_F(EnergyModelTest, NofBetMuchLongerThanNvpg) {
  BenchmarkParams p;
  p.n_rw = 100;
  p.t_sl = 100e-9;
  const auto bet_nvpg = model_.break_even_time(Architecture::kNVPG, p);
  const auto bet_nof = model_.break_even_time(Architecture::kNOF, p);
  ASSERT_TRUE(bet_nvpg.has_value());
  ASSERT_TRUE(bet_nof.has_value());
  EXPECT_GT(*bet_nof, 10.0 * *bet_nvpg);
}

TEST_F(EnergyModelTest, BetGrowsWithNrwAndRows) {
  std::vector<double> by_nrw, by_rows;
  for (int n : {10, 100, 1000}) {
    BenchmarkParams p;
    p.n_rw = n;
    by_nrw.push_back(*model_.break_even_time(Architecture::kNVPG, p));
  }
  for (int r : {32, 256, 2048}) {
    BenchmarkParams p;
    p.rows = r;
    by_rows.push_back(*model_.break_even_time(Architecture::kNVPG, p));
  }
  EXPECT_TRUE(util::is_monotone_nondecreasing(by_nrw));
  EXPECT_GT(by_nrw.back(), 1.5 * by_nrw.front());
  EXPECT_TRUE(util::is_monotone_nondecreasing(by_rows));
  EXPECT_GT(by_rows.back(), 1.5 * by_rows.front());
}

TEST_F(EnergyModelTest, StoreFreeShutdownSlashesBet) {
  BenchmarkParams p;
  p.n_rw = 10;
  p.rows = 32;
  BenchmarkParams psf = p;
  psf.store_free_shutdown = true;
  const auto bet = model_.break_even_time(Architecture::kNVPG, p);
  const auto bet_sf = model_.break_even_time(Architecture::kNVPG, psf);
  ASSERT_TRUE(bet && bet_sf);
  EXPECT_LT(*bet_sf, 0.4 * *bet);   // "dramatically reduced to several us"
  EXPECT_LT(*bet_sf, 10e-6);
}

TEST_F(EnergyModelTest, DirtyFractionScalesStoreEnergyOnly) {
  BenchmarkParams full;
  full.n_rw = 10;
  BenchmarkParams half = full;
  half.dirty_fraction = 0.5;
  const auto b_full = model_.cycle_energy(Architecture::kNVPG, full);
  const auto b_half = model_.cycle_energy(Architecture::kNVPG, half);
  EXPECT_NEAR(b_half.store, 0.5 * b_full.store, 1e-25);
  EXPECT_DOUBLE_EQ(b_half.store_wait, b_full.store_wait);  // window still runs
  EXPECT_DOUBLE_EQ(b_half.access, b_full.access);
  EXPECT_DOUBLE_EQ(b_half.duration, b_full.duration);
}

TEST_F(EnergyModelTest, CleanDomainBetweenStoreFreeAndFull) {
  // dirty_fraction = 0 keeps the store window (scan) but no CIMS energy:
  // BET sits between store-free (no window either) and a full store.
  BenchmarkParams p;
  p.n_rw = 10;
  BenchmarkParams clean = p;
  clean.dirty_fraction = 0.0;
  BenchmarkParams sf = p;
  sf.store_free_shutdown = true;
  const double bet_full = *model_.break_even_time(Architecture::kNVPG, p);
  const double bet_clean = *model_.break_even_time(Architecture::kNVPG, clean);
  const double bet_sf = *model_.break_even_time(Architecture::kNVPG, sf);
  EXPECT_LT(bet_clean, bet_full);
  EXPECT_GE(bet_clean, bet_sf);
}

TEST_F(EnergyModelTest, DirtyFractionValidated) {
  BenchmarkParams p;
  p.dirty_fraction = 1.5;
  EXPECT_THROW(model_.e_cyc(Architecture::kNVPG, p), std::invalid_argument);
}

TEST_F(EnergyModelTest, OsrBetIsZeroByDefinition) {
  EXPECT_DOUBLE_EQ(*model_.break_even_time(Architecture::kOSR, {}), 0.0);
}

TEST_F(EnergyModelTest, BetIsNulloptWhenShutdownLeaksMoreThanSleep) {
  CellEnergetics nv = fake_nv();
  nv.p_static_shutdown = 20e-9;  // broken power switch: worse than sleep
  EnergyModel broken(fake_6t(), nv);
  EXPECT_FALSE(broken.break_even_time(Architecture::kNVPG, {}).has_value());
}

// ---- timing / performance ----

TEST_F(EnergyModelTest, NofStretchesTheCycle) {
  BenchmarkParams p;
  p.n_rw = 100;
  p.t_sl = 0.0;
  const double d_osr = model_.cycle_energy(Architecture::kOSR, p).duration;
  const double d_nvpg = model_.cycle_energy(Architecture::kNVPG, p).duration;
  const double d_nof = model_.cycle_energy(Architecture::kNOF, p).duration;
  // NVPG: same inner-loop speed, only the one-time store/restore appended.
  EXPECT_LT(d_nvpg, 1.05 * d_osr);
  // NOF: every cycle embeds store/wake -> multiple times slower (Fig. 6(b)).
  EXPECT_GT(d_nof, 3.0 * d_osr);
}

TEST_F(EnergyModelTest, ReadHeavyWorkloadKeepsShapes) {
  // Paper: a 10:1 read:write ratio leaves the qualitative picture unchanged.
  BenchmarkParams p;
  p.reads_per_write = 10.0;
  p.t_sl = 100e-9;
  p.n_rw = 1000;
  const double ratio_nvpg = model_.e_cyc(Architecture::kNVPG, p) /
                            model_.e_cyc(Architecture::kOSR, p);
  const double ratio_nof = model_.e_cyc(Architecture::kNOF, p) /
                           model_.e_cyc(Architecture::kOSR, p);
  EXPECT_LT(ratio_nvpg, 1.1);
  EXPECT_GT(ratio_nof, 2.0);
}

TEST_F(EnergyModelTest, StoreWaitScalesLinearlyWithRows) {
  BenchmarkParams p32, p64;
  p32.rows = 32;
  p64.rows = 64;
  const auto b32 = model_.cycle_energy(Architecture::kNVPG, p32);
  const auto b64 = model_.cycle_energy(Architecture::kNVPG, p64);
  EXPECT_NEAR(b64.store_wait / b32.store_wait, 63.0 / 31.0, 1e-9);
}

TEST_F(EnergyModelTest, DomainBytesHelper) {
  BenchmarkParams p;
  p.rows = 256;
  p.cols = 32;
  EXPECT_DOUBLE_EQ(p.domain_bytes(), 1024.0);
}

}  // namespace
}  // namespace nvsram
