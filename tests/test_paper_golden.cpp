// Paper-figure golden-regression tier.
//
// Two layers of protection for the headline results:
//  * shape claims — the qualitative statements of Figs. 7-9 (NVPG converges
//    to OSR at large n_RW, the large-domain NOF crossover dies by
//    n_RW ~ 10, BET bands) asserted directly on the energy model, so a
//    physics regression fails with a readable message;
//  * golden values — the characterized cell energetics and derived
//    headline numbers pinned against tests/golden/paper_golden.csv with a
//    relative tolerance, so silent numeric drift anywhere in the
//    device-model / solver / characterization stack is caught.
//
// Regenerate the goldens after an *intentional* physics change with
//   NVSRAM_UPDATE_GOLDENS=1 ./test_paper_golden
// and commit the rewritten CSV alongside the change.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/analyzer.h"
#include "models/paper_params.h"
#include "sram/characterize_cache.h"

namespace nvsram::core {
namespace {

// Characterization costs a few hundred ms: share one analyzer per process.
const PowerGatingAnalyzer& analyzer() {
  static const PowerGatingAnalyzer an(models::PaperParams::table1());
  return an;
}

BenchmarkParams base_params() {
  BenchmarkParams p;
  p.n_rw = 100;
  p.t_sl = 100e-9;
  p.t_sd = 0.0;
  p.rows = 32;
  p.cols = 32;
  return p;
}

double ratio(Architecture a, const BenchmarkParams& p) {
  return analyzer().model().e_cyc(a, p) /
         analyzer().model().e_cyc(Architecture::kOSR, p);
}

// ---- Fig. 7(a): NVPG converges to OSR, NOF stays above ----

TEST(PaperGolden, Fig7aNvpgConvergesToOsrAtLargeNrw) {
  BenchmarkParams p = base_params();
  double prev = 1e300;
  for (int n_rw : {10, 100, 1000, 10000}) {
    p.n_rw = n_rw;
    const double r = ratio(Architecture::kNVPG, p);
    EXPECT_GE(r, 1.0) << "n_rw=" << n_rw;  // the store overhead never pays off
                                           // without a shutdown to amortize
    EXPECT_LE(r, prev * (1.0 + 1e-12)) << "n_rw=" << n_rw;
    prev = r;
  }
  // By n_RW = 10000 the one-off store/restore is fully amortized; what is
  // left is the NV cell's slightly higher access energy (a few percent).
  p.n_rw = 10000;
  EXPECT_NEAR(ratio(Architecture::kNVPG, p), 1.0, 0.10);
}

TEST(PaperGolden, Fig7aNofStaysFarAboveOsr) {
  // NOF pays a store per write and a wake-up per access, so unlike NVPG its
  // penalty is per inner-loop iteration and never amortizes: the NOF/OSR
  // ratio stays an order of magnitude above 1 at every n_RW, and above the
  // NVPG ratio everywhere.
  BenchmarkParams p = base_params();
  for (int n_rw : {1, 10, 100, 1000, 10000}) {
    p.n_rw = n_rw;
    const double r = ratio(Architecture::kNOF, p);
    EXPECT_GT(r, 10.0) << "n_rw=" << n_rw;
    EXPECT_GT(r, ratio(Architecture::kNVPG, p)) << "n_rw=" << n_rw;
  }
}

// ---- Fig. 7(b): the large-domain NOF advantage dies by n_RW ~ 10 ----

TEST(PaperGolden, Fig7bNofCrossoverDeadByNrw10) {
  BenchmarkParams p = base_params();
  for (int rows : {256, 2048}) {
    p.rows = rows;
    for (int n_rw : {10, 30, 100}) {
      p.n_rw = n_rw;
      EXPECT_LE(analyzer().model().e_cyc(Architecture::kNVPG, p),
                analyzer().model().e_cyc(Architecture::kNOF, p))
          << "rows=" << rows << " n_rw=" << n_rw;
    }
  }
  // ...and the crossover is real: at N = 2048 and a single access burst the
  // row-serialized store wait makes NVPG lose to NOF.
  p.rows = 2048;
  p.n_rw = 1;
  EXPECT_GT(analyzer().model().e_cyc(Architecture::kNVPG, p),
            analyzer().model().e_cyc(Architecture::kNOF, p));
}

// ---- Fig. 8: break-even-time bands ----

TEST(PaperGolden, Fig8NvpgBetInTensOfMicroseconds) {
  const auto bet =
      analyzer().model().break_even_time(Architecture::kNVPG, base_params());
  ASSERT_TRUE(bet.has_value());
  EXPECT_GE(*bet, 1e-5);
  EXPECT_LE(*bet, 1e-4);
}

TEST(PaperGolden, Fig8NofBetIsNrwDependentAndLonger) {
  BenchmarkParams p = base_params();
  const auto bet_nvpg = analyzer().model().break_even_time(Architecture::kNVPG, p);
  const auto bet_nof_100 = analyzer().model().break_even_time(Architecture::kNOF, p);
  ASSERT_TRUE(bet_nvpg.has_value());
  ASSERT_TRUE(bet_nof_100.has_value());
  // NOF accumulates a store per write across the whole inner loop, so its
  // crossing is far beyond NVPG's...
  EXPECT_GT(*bet_nof_100, 2.0 * *bet_nvpg);
  // ...and strongly n_RW dependent, unlike NVPG's.
  p.n_rw = 10;
  const auto bet_nof_10 = analyzer().model().break_even_time(Architecture::kNOF, p);
  const auto bet_nvpg_10 = analyzer().model().break_even_time(Architecture::kNVPG, p);
  ASSERT_TRUE(bet_nof_10.has_value());
  ASSERT_TRUE(bet_nvpg_10.has_value());
  p.n_rw = 1000;
  const auto bet_nof_1000 = analyzer().model().break_even_time(Architecture::kNOF, p);
  const auto bet_nvpg_1000 = analyzer().model().break_even_time(Architecture::kNVPG, p);
  ASSERT_TRUE(bet_nof_1000.has_value());
  ASSERT_TRUE(bet_nvpg_1000.has_value());
  const double nof_spread =
      std::max(*bet_nof_10, *bet_nof_1000) / std::min(*bet_nof_10, *bet_nof_1000);
  const double nvpg_spread = std::max(*bet_nvpg_10, *bet_nvpg_1000) /
                             std::min(*bet_nvpg_10, *bet_nvpg_1000);
  EXPECT_GT(nof_spread, 2.0);
  EXPECT_LT(nvpg_spread, nof_spread);
}

// ---- Fig. 9(a): store-free shutdown cuts BET to a few microseconds ----

TEST(PaperGolden, Fig9aStoreFreeShutdownBetFewMicroseconds) {
  BenchmarkParams p = base_params();
  const auto with_store =
      analyzer().model().break_even_time(Architecture::kNVPG, p);
  p.store_free_shutdown = true;
  const auto store_free =
      analyzer().model().break_even_time(Architecture::kNVPG, p);
  ASSERT_TRUE(with_store.has_value());
  ASSERT_TRUE(store_free.has_value());
  EXPECT_GE(*store_free, 1e-7);
  EXPECT_LE(*store_free, 2e-5);
  EXPECT_LT(*store_free, 0.5 * *with_store);
}

// ---- golden values ----

std::map<std::string, double> compute_goldens(const PowerGatingAnalyzer& an) {
  const auto& c6 = an.cell_6t();
  const auto& cn = an.cell_nv();
  std::map<std::string, double> g;

  g["6t.t_clk"] = c6.t_clk;
  g["6t.e_read"] = c6.e_read;
  g["6t.e_write"] = c6.e_write;
  g["6t.p_static_normal"] = c6.p_static_normal;
  g["6t.p_static_sleep"] = c6.p_static_sleep;
  g["6t.p_static_shutdown"] = c6.p_static_shutdown;

  g["nv.e_read"] = cn.e_read;
  g["nv.e_write"] = cn.e_write;
  g["nv.e_store"] = cn.e_store;
  g["nv.t_store"] = cn.t_store;
  g["nv.e_restore"] = cn.e_restore;
  g["nv.t_restore"] = cn.t_restore;
  g["nv.e_sleep_transition"] = cn.e_sleep_transition;
  g["nv.p_static_normal"] = cn.p_static_normal;
  g["nv.p_static_sleep"] = cn.p_static_sleep;
  g["nv.p_static_shutdown"] = cn.p_static_shutdown;

  BenchmarkParams p = base_params();
  p.t_sd = 100e-6;
  g["fig8.ecyc_osr_tsd100us"] = an.model().e_cyc(Architecture::kOSR, p);
  g["fig8.ecyc_nvpg_tsd100us"] = an.model().e_cyc(Architecture::kNVPG, p);
  g["fig8.ecyc_nof_tsd100us"] = an.model().e_cyc(Architecture::kNOF, p);

  p = base_params();
  g["fig8.bet_nvpg_nrw100"] =
      an.model().break_even_time(Architecture::kNVPG, p).value_or(-1.0);
  g["fig8.bet_nof_nrw100"] =
      an.model().break_even_time(Architecture::kNOF, p).value_or(-1.0);
  p.store_free_shutdown = true;
  g["fig9.bet_nvpg_storefree_nrw100"] =
      an.model().break_even_time(Architecture::kNVPG, p).value_or(-1.0);
  p = base_params();
  p.rows = 1024;
  g["fig9.bet_nvpg_rows1024"] =
      an.model().break_even_time(Architecture::kNVPG, p).value_or(-1.0);
  return g;
}

std::string golden_path() {
  return std::string(NVSRAM_GOLDEN_DIR) + "/paper_golden.csv";
}

std::map<std::string, double> load_goldens(const std::string& path) {
  std::ifstream in(path);
  std::map<std::string, double> g;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line == "key,value") continue;
    const auto comma = line.find(',');
    if (comma == std::string::npos) continue;
    g[line.substr(0, comma)] = std::stod(line.substr(comma + 1));
  }
  return g;
}

TEST(PaperGolden, GoldenValuesMatchCheckedInFile) {
  const auto computed = compute_goldens(analyzer());

  if (std::getenv("NVSRAM_UPDATE_GOLDENS")) {
    std::ofstream out(golden_path(), std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    out << "# Golden headline values; regenerate with "
           "NVSRAM_UPDATE_GOLDENS=1 ./test_paper_golden\n"
        << "key,value\n";
    char buf[64];
    for (const auto& [key, value] : computed) {
      std::snprintf(buf, sizeof(buf), "%.17g", value);
      out << key << ',' << buf << '\n';
    }
    GTEST_SKIP() << "goldens regenerated at " << golden_path();
  }

  const auto golden = load_goldens(golden_path());
  ASSERT_FALSE(golden.empty())
      << "missing " << golden_path()
      << " — run NVSRAM_UPDATE_GOLDENS=1 ./test_paper_golden once";

  // Exact key-set match: a new metric must be recorded, a dropped one
  // deliberately removed from the golden file.
  for (const auto& [key, value] : golden) {
    EXPECT_TRUE(computed.count(key)) << "stale golden key: " << key;
  }
  constexpr double kRtol = 1e-3;
  for (const auto& [key, value] : computed) {
    ASSERT_TRUE(golden.count(key)) << "unrecorded golden key: " << key;
    const double want = golden.at(key);
    const double tol = kRtol * std::max(std::fabs(want), std::fabs(value));
    EXPECT_NEAR(value, want, tol) << key;
  }
}

// ---- batched-solve guard ----
//
// The batched multi-point Newton path (NVSRAM_SWEEP_BATCH > 1 batches the
// static-power corners of cell characterization through
// spice::solve_dc_lanes) claims bit-identity with the scalar solver.  Hold
// it to that claim at the paper level: recharacterize everything with the
// knob set and require the Fig. 7/8/9 headline numbers to be *exactly* the
// scalar ones — and therefore to pass against the same checked-in golden
// file.  Any lane-ordering drift in the batched solver shows up here as a
// paper-figure diff, not just a unit-test failure.
TEST(PaperGolden, GoldenValuesIdenticalUnderSweepBatch4) {
  if (std::getenv("NVSRAM_UPDATE_GOLDENS")) {
    GTEST_SKIP() << "golden regeneration runs scalar-only";
  }
  const auto scalar = compute_goldens(analyzer());

  // The process-wide characterization cache would otherwise hand the batched
  // analyzer the scalar cells verbatim and prove nothing — drop it so the
  // batched path really recharacterizes.
  sram::characterize_cache_clear();
  const auto misses_before = sram::characterize_cache_stats().misses;
  ::setenv("NVSRAM_SWEEP_BATCH", "4", 1);
  const PowerGatingAnalyzer batched_an(models::PaperParams::table1());
  ::unsetenv("NVSRAM_SWEEP_BATCH");
  ASSERT_EQ(sram::characterize_cache_stats().misses, misses_before + 2)
      << "characterization was served from cache; the batched path never ran";
  const auto batched = compute_goldens(batched_an);

  ASSERT_EQ(scalar.size(), batched.size());
  for (const auto& [key, value] : scalar) {
    ASSERT_TRUE(batched.count(key)) << key;
    EXPECT_EQ(value, batched.at(key)) << key << " drifts under batching";
  }

  // And the batched run satisfies the checked-in goldens on its own.
  const auto golden = load_goldens(golden_path());
  ASSERT_FALSE(golden.empty()) << "missing " << golden_path();
  constexpr double kRtol = 1e-3;
  for (const auto& [key, value] : batched) {
    ASSERT_TRUE(golden.count(key)) << "unrecorded golden key: " << key;
    const double want = golden.at(key);
    const double tol = kRtol * std::max(std::fabs(want), std::fabs(value));
    EXPECT_NEAR(value, want, tol) << key;
  }
}

}  // namespace
}  // namespace nvsram::core
