// Retention-state dataflow analyzer tests (the data-* rule family).
//
// Four layers, mirroring test_power.cpp:
//  * rule registry — the data family is in the catalog with the documented
//    severities (data-redundant-store is the one energy advisory);
//  * options — DataflowOptions::from_paper derives the CIMS switching time
//    from the paper's overdrive, with the sub-critical fallback;
//  * seeded violations — one netlist per data-* rule under
//    tests/netlists_bad/, each asserting device, line, and phase
//    attribution;
//  * no false positives — the shipped netlists/ corpus and all three
//    benchmark schedules produce zero data-* diagnostics.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "lint/dataflow/check.h"
#include "lint/report.h"
#include "lint/rules.h"
#include "models/mtj.h"
#include "models/paper_params.h"
#include "spice/netlist_parser.h"
#include "sram/schedules.h"
#include "sram/testbench.h"

namespace nvsram::lint::dataflow {
namespace {

std::unique_ptr<spice::ParsedNetlist> parse_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  spice::NetlistParser parser;
  return parser.parse(ss.str());
}

std::unique_ptr<spice::ParsedNetlist> parse_bad(const char* file) {
  return parse_file(std::string(NVSRAM_BAD_NETLIST_DIR) + "/" + file);
}

bool any_data_rule(const std::vector<Diagnostic>& diags) {
  for (const auto& d : diags) {
    if (d.rule.rfind("data-", 0) == 0) return true;
  }
  return false;
}

// ---- rule registry ----------------------------------------------------------

TEST(DataRules, CatalogHasTheDataFamily) {
  const char* ids[] = {rules::kDataLostInOffWindow, rules::kDataStaleRestore,
                       rules::kDataReadBeforeRestore,
                       rules::kDataRedundantStore, rules::kDataStoreTruncated};
  for (const char* id : ids) {
    EXPECT_STREQ(rule_family(id), "data") << id;
    const RuleInfo* info = find_rule(id);
    ASSERT_NE(info, nullptr) << id;
    EXPECT_STRNE(info->description, "") << id;
    EXPECT_STRNE(info->fixture, "") << id;
  }
}

TEST(DataRules, SeveritiesMatchTheContract) {
  // Losing, staling, or misreading a bit is a correctness error; a redundant
  // store is correct-but-wasteful, so it stays an advisory warning.
  EXPECT_EQ(default_severity(rules::kDataLostInOffWindow), Severity::kError);
  EXPECT_EQ(default_severity(rules::kDataStaleRestore), Severity::kError);
  EXPECT_EQ(default_severity(rules::kDataReadBeforeRestore),
            Severity::kError);
  EXPECT_EQ(default_severity(rules::kDataStoreTruncated), Severity::kError);
  EXPECT_EQ(default_severity(rules::kDataRedundantStore),
            Severity::kWarning);
}

// ---- options ----------------------------------------------------------------

TEST(DataflowOptionsTest, FromPaperDerivesTheCimsSwitchingTime) {
  const models::PaperParams pp;
  const DataflowOptions opt = DataflowOptions::from_paper(pp);
  EXPECT_DOUBLE_EQ(opt.vdd, pp.vdd);
  EXPECT_DOUBLE_EQ(opt.clock_period, pp.clock_period());
  // At 1.5x overdrive the precessional closure gives tau0 / 0.5 = 2 tau0.
  EXPECT_DOUBLE_EQ(opt.mtj_write_pulse,
                   pp.mtj.tau0 / (pp.store_current_factor - 1.0));
  EXPECT_DOUBLE_EQ(opt.store_energy_hint, 0.0);
}

TEST(DataflowOptionsTest, RequiredStorePulseFallsBackBelowCritical) {
  models::MTJParams mtj;
  mtj.tau0 = 3e-9;
  EXPECT_DOUBLE_EQ(DataflowOptions::required_store_pulse(mtj, 2.0, 10e-9),
                   3e-9);
  // At or below the critical current the switch never completes: the
  // configured store pulse is the only defensible requirement.
  EXPECT_DOUBLE_EQ(DataflowOptions::required_store_pulse(mtj, 1.0, 10e-9),
                   10e-9);
  EXPECT_DOUBLE_EQ(DataflowOptions::required_store_pulse(mtj, 0.5, 10e-9),
                   10e-9);
}

// ---- seeded violations ------------------------------------------------------

struct Seeded {
  const char* file;
  const char* rule;
  const char* device;  // driving signal named by the diagnostic
  int line;            // 1-based line of that signal in the fixture
  const char* phase;
};

class DataSeeded : public ::testing::TestWithParam<Seeded> {};

TEST_P(DataSeeded, FiresWithDeviceLineAndPhase) {
  const Seeded& s = GetParam();
  const auto net = parse_bad(s.file);
  ASSERT_NE(net, nullptr);
  const auto diags = net->lint().by_rule(s.rule);
  ASSERT_EQ(diags.size(), 1u)
      << s.file << " should fire " << s.rule << " exactly once:\n"
      << net->lint().format();
  EXPECT_EQ(diags[0].device, s.device) << s.file;
  EXPECT_EQ(diags[0].line, s.line) << s.file;
  EXPECT_EQ(diags[0].phase, s.phase) << s.file;
}

INSTANTIATE_TEST_SUITE_P(
    Fixtures, DataSeeded,
    ::testing::Values(
        Seeded{"bad_data_lost.cir", rules::kDataLostInOffWindow, "Vpg", 20,
               "power-off"},
        Seeded{"bad_data_stale_restore.cir", rules::kDataStaleRestore, "Vsr",
               25, "restore"},
        Seeded{"bad_data_read_before_restore.cir",
               rules::kDataReadBeforeRestore, "Vwl", 22, "active"},
        Seeded{"bad_data_redundant_store.cir", rules::kDataRedundantStore,
               "Vsr", 23, "store"},
        Seeded{"bad_data_store_truncated.cir", rules::kDataStoreTruncated,
               "Vsr", 23, "store"}),
    [](const ::testing::TestParamInfo<Seeded>& seeded) {
      std::string name = seeded.param.rule;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(DataSeededDetail, LostBitNamesBothGenerations) {
  // The lost-bit proof is only useful if it says *which* write dies and what
  // the MTJs still hold — lock the generation bookkeeping in the message.
  const auto net = parse_bad("bad_data_lost.cir");
  const auto diags = net->lint().by_rule(rules::kDataLostInOffWindow);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("generation 2"), std::string::npos)
      << diags[0].message;
  EXPECT_NE(diags[0].message.find("the MTJs hold 1"), std::string::npos)
      << diags[0].message;
}

TEST(DataSeededDetail, TruncatedStoreReportsNeverStored) {
  // A truncated-only schedule has no completed store at all: the NV side
  // must be reported as never written, not as generation 0.
  const auto net = parse_bad("bad_data_store_truncated.cir");
  const auto diags = net->lint().by_rule(rules::kDataStoreTruncated);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("(never stored)"), std::string::npos)
      << diags[0].message;
}

// ---- no false positives -----------------------------------------------------

TEST(DataRegression, CorpusNetlistsHaveNoDataFindings) {
  namespace fs = std::filesystem;
  std::size_t seen = 0;
  for (const auto& entry : fs::directory_iterator(NVSRAM_NETLIST_DIR)) {
    if (entry.path().extension() != ".cir") continue;
    ++seen;
    const auto net = parse_file(entry.path().string());
    const LintReport report = net->lint();
    EXPECT_FALSE(any_data_rule(report.diagnostics()))
        << entry.path() << " has data-* findings:\n" << report.format();
  }
  EXPECT_GE(seen, 5u);
}

TEST(DataRegression, BenchmarkSchedulesHaveNoDataFindings) {
  const models::PaperParams pp;
  const DataflowOptions opt = DataflowOptions::from_paper(pp);
  for (const sram::BenchArch arch :
       {sram::BenchArch::kNVPG, sram::BenchArch::kNOF,
        sram::BenchArch::kOSR}) {
    const auto tb =
        sram::build_benchmark_schedule(arch, pp, sram::ScheduleParams{});
    const auto diags =
        check_dataflow(tb->export_timeline(), opt, &tb->circuit(), nullptr);
    EXPECT_TRUE(diags.empty())
        << sram::to_string(arch) << " bench has data-* findings ("
        << diags.size() << "), first: "
        << (diags.empty() ? "" : diags.front().message);
  }
}

TEST(DataRegression, VolatileOnlyDeckIsOutOfScope) {
  // No MTJ, no nonvolatile contract: the pass must not invent one for a
  // plain RC deck with a transient card.
  const auto net = parse_file(std::string(NVSRAM_NETLIST_DIR) + "/rc_bode.cir");
  ASSERT_NE(net, nullptr);
  EXPECT_FALSE(any_data_rule(net->lint().diagnostics()))
      << net->lint().format();
}

}  // namespace
}  // namespace nvsram::lint::dataflow
