// Netlist parser: number suffixes, card parsing, error reporting, and
// end-to-end execution of parsed .dc / .tran analyses.
#include <gtest/gtest.h>

#include <cmath>

#include "spice/elements.h"
#include "spice/fet_element.h"
#include "spice/mtj_element.h"
#include "spice/netlist_parser.h"

namespace nvsram::spice {
namespace {

// ---- SI numbers ---------------------------------------------------------------

TEST(SiNumber, PlainAndScientific) {
  EXPECT_DOUBLE_EQ(*parse_si_number("42"), 42.0);
  EXPECT_DOUBLE_EQ(*parse_si_number("-3.5"), -3.5);
  EXPECT_DOUBLE_EQ(*parse_si_number("1e-9"), 1e-9);
  EXPECT_DOUBLE_EQ(*parse_si_number("2.5E6"), 2.5e6);
}

TEST(SiNumber, EngineeringSuffixes) {
  EXPECT_DOUBLE_EQ(*parse_si_number("2.2k"), 2200.0);
  EXPECT_DOUBLE_EQ(*parse_si_number("10n"), 1e-8);
  EXPECT_DOUBLE_EQ(*parse_si_number("4f"), 4e-15);
  EXPECT_DOUBLE_EQ(*parse_si_number("3u"), 3e-6);
  EXPECT_DOUBLE_EQ(*parse_si_number("7m"), 7e-3);
  EXPECT_DOUBLE_EQ(*parse_si_number("1meg"), 1e6);
  EXPECT_DOUBLE_EQ(*parse_si_number("2G"), 2e9);
  EXPECT_DOUBLE_EQ(*parse_si_number("5p"), 5e-12);
}

TEST(SiNumber, MalformedRejected) {
  EXPECT_FALSE(parse_si_number("").has_value());
  EXPECT_FALSE(parse_si_number("abc").has_value());
  EXPECT_FALSE(parse_si_number("1.2.3").has_value());
  EXPECT_FALSE(parse_si_number("1kk").has_value());
}

// ---- structural parsing ---------------------------------------------------------

TEST(Parser, TitleLineAndDevices) {
  NetlistParser p;
  auto net = p.parse(
      "My divider\n"
      "V1 in 0 DC 2.0\n"
      "R1 in out 1k\n"
      "R2 out 0 3k\n"
      ".end\n");
  EXPECT_EQ(net->title(), "My divider");
  EXPECT_EQ(net->circuit().devices().size(), 3u);
  EXPECT_TRUE(net->circuit().has_node("out"));
}

TEST(Parser, CommentsAndBlankLinesIgnored) {
  NetlistParser p;
  auto net = p.parse(
      "* a comment netlist\n"
      "\n"
      "R1 a 0 1k ; trailing comment\n"
      "* another\n");
  EXPECT_EQ(net->circuit().devices().size(), 1u);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  NetlistParser p;
  try {
    p.parse("R1 a 0 1k\nQ9 what 0 0\n");
    FAIL() << "expected NetlistError";
  } catch (const NetlistError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Parser, RejectsEmptyNetlist) {
  NetlistParser p;
  EXPECT_THROW(p.parse("* nothing here\n"), NetlistError);
}

TEST(Parser, PulseAndPwlSources) {
  NetlistParser p;
  auto net = p.parse(
      "V1 a 0 PULSE(0 0.9 1n 10p 10p 2n)\n"
      "V2 b 0 PWL(0.1n 0 0.2n 1 1n 1)\n"
      "R1 a 0 1k\n"
      "R2 b 0 1k\n");
  auto* v1 = dynamic_cast<VSource*>(net->circuit().find_device("V1"));
  auto* v2 = dynamic_cast<VSource*>(net->circuit().find_device("V2"));
  ASSERT_TRUE(v1 && v2);
  EXPECT_DOUBLE_EQ(v1->value(2e-9), 0.9);
  EXPECT_DOUBLE_EQ(v1->value(0.0), 0.0);
  EXPECT_NEAR(v2->value(0.15e-9), 0.5, 1e-12);
}

TEST(Parser, PulseArityChecked) {
  // Note the title line: a malformed FIRST line falls back to being the
  // title (SPICE convention), so the bad card sits on line 2.
  NetlistParser p;
  EXPECT_THROW(p.parse("title\nV1 a 0 PULSE(0 1 1n)\nR1 a 0 1k\n"),
               NetlistError);
}

TEST(Parser, FetCardWithOptions) {
  NetlistParser p;
  auto net = p.parse(
      "Vd d 0 DC 0.9\n"
      "Vg g 0 DC 0.9\n"
      "M1 d g 0 nfin fins=3 vth=0.3\n");
  // The fet helper adds the channel plus Cgs/Cgd and the junction caps of
  // the non-grounded terminals (source is grounded here, so no cjs).
  EXPECT_EQ(net->circuit().devices().size(), 2u + 4u);
  auto* fet = dynamic_cast<FinFETElement*>(net->circuit().find_device("M1"));
  ASSERT_NE(fet, nullptr);
  EXPECT_EQ(fet->model().params().fin_count, 3);
  EXPECT_DOUBLE_EQ(fet->model().params().vth0, 0.3);
}

TEST(Parser, FetModelNameValidated) {
  NetlistParser p;
  EXPECT_THROW(p.parse("M1 d g 0 hemt\n"), NetlistError);
}

TEST(Parser, MtjCardStates) {
  NetlistParser p;
  auto net = p.parse(
      "Y1 a 0 P\n"
      "Y2 a 0 AP tau0=5n\n"
      "R1 a 0 1k\n");
  auto* y1 = dynamic_cast<MTJElement*>(net->circuit().find_device("Y1"));
  auto* y2 = dynamic_cast<MTJElement*>(net->circuit().find_device("Y2"));
  ASSERT_TRUE(y1 && y2);
  EXPECT_EQ(y1->state(), models::MtjState::kParallel);
  EXPECT_EQ(y2->state(), models::MtjState::kAntiparallel);
  EXPECT_DOUBLE_EQ(y2->model().params().tau0, 5e-9);
}

TEST(Parser, ProbeUnknownNodeRejected) {
  NetlistParser p;
  EXPECT_THROW(p.parse("R1 a 0 1k\n.probe v(nonexistent)\n"), NetlistError);
}

TEST(Parser, CardsAfterEndIgnored) {
  NetlistParser p;
  auto net = p.parse(
      "R1 a 0 1k\n"
      ".end\n"
      "R2 a 0 1k\n");
  EXPECT_EQ(net->circuit().devices().size(), 1u);
}

// ---- execution -------------------------------------------------------------------

TEST(ParserRun, DcSweepDivider) {
  NetlistParser p;
  auto net = p.parse(
      "divider sweep\n"
      "V1 in 0 DC 0\n"
      "R1 in out 1k\n"
      "R2 out 0 1k\n"
      ".probe v(out)\n"
      ".dc V1 0 2 5\n");
  ASSERT_TRUE(net->dc_card().has_value());
  const auto wave = net->run_dc_sweep();
  ASSERT_EQ(wave.samples(), 5u);
  EXPECT_NEAR(wave.series("v(out)").back(), 1.0, 1e-6);
  EXPECT_NEAR(wave.series("v(out)")[2], 0.5, 1e-6);
}

TEST(ParserRun, TranRcStep) {
  NetlistParser p;
  auto net = p.parse(
      "rc step\n"
      "V1 in 0 PWL(0.1n 0 0.11n 1)\n"
      "R1 in out 1k\n"
      "C1 out 0 1p\n"
      ".probe v(out) e(V1)\n"
      ".tran 8n\n");
  ASSERT_TRUE(net->tran_card().has_value());
  const auto wave = net->run_tran();
  const double v = wave.value_at("v(out)", 1.105e-9);  // one tau after step
  EXPECT_NEAR(v, 1.0 - std::exp(-1.0), 0.02);
  EXPECT_GT(wave.final_value("e(V1)"), 0.9e-12);  // ~ C V^2
}

TEST(ParserRun, OperatingPoint) {
  NetlistParser p;
  auto net = p.parse(
      "inverter op\n"
      "Vdd vdd 0 DC 0.9\n"
      "Vin in 0 DC 0\n"
      "M1 out in vdd pfin\n"
      "M2 out in 0 nfin\n");
  const auto sol = net->run_op();
  ASSERT_TRUE(sol.has_value());
  EXPECT_GT(sol->node_voltage(net->circuit().find_node("out")), 0.85);
}

TEST(ParserRun, MissingAnalysisCardsThrow) {
  NetlistParser p;
  auto net = p.parse("R1 a 0 1k\n");
  EXPECT_THROW(net->run_dc_sweep(), std::logic_error);
  EXPECT_THROW(net->run_tran(), std::logic_error);
}

TEST(ParserRun, MtjSwitchesInParsedTransient) {
  // The netlist-level version of the CIMS test: pull 1.5 Ic out of the
  // pinned terminal -> P -> AP.
  NetlistParser p;
  auto net = p.parse(
      "cims\n"
      "Y1 a 0 P\n"
      "I1 a 0 PULSE(0 23.6u 1n 0.1n 0.1n 10n)\n"
      ".probe v(a)\n"
      ".tran 14n\n");
  (void)net->run_tran();
  auto* mtj = dynamic_cast<MTJElement*>(net->circuit().find_device("Y1"));
  ASSERT_NE(mtj, nullptr);
  EXPECT_EQ(mtj->state(), models::MtjState::kAntiparallel);
}

}  // namespace
}  // namespace nvsram::spice
