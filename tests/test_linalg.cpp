// Linear algebra tests: dense LU, CSR assembly, sparse LU, cross-checks on
// random systems.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "linalg/dense.h"
#include "linalg/lu.h"
#include "linalg/sparse.h"
#include "linalg/sparse_lu.h"

namespace nvsram::linalg {
namespace {

DenseMatrix random_diag_dominant(std::size_t n, std::mt19937& rng) {
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  DenseMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      a(i, j) = dist(rng);
      row_sum += std::fabs(a(i, j));
    }
    a(i, i) = row_sum + 1.0 + std::fabs(dist(rng));
  }
  return a;
}

// ---- dense -----------------------------------------------------------------

TEST(Dense, MultiplyIdentity) {
  const auto eye = DenseMatrix::identity(4);
  const Vector x{1.0, -2.0, 3.0, 0.5};
  EXPECT_EQ(eye.multiply(x), x);
}

TEST(Dense, VectorHelpers) {
  Vector a{1.0, 2.0, 2.0};
  const Vector b{2.0, -1.0, 2.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 4.0);
  EXPECT_DOUBLE_EQ(norm_inf(b), 2.0);
  EXPECT_DOUBLE_EQ(norm_2(a), 3.0);
  axpy(2.0, b, a);
  EXPECT_DOUBLE_EQ(a[0], 5.0);
}

TEST(DenseLu, SolvesSmallSystem) {
  DenseMatrix a(2, 2);
  a(0, 0) = 2.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 3.0;
  const auto x = solve_dense(a, {5.0, 10.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(DenseLu, RequiresPivoting) {
  // Zero on the first diagonal: fails without partial pivoting.
  DenseMatrix a(2, 2);
  a(0, 0) = 0.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 1.0;
  const auto x = solve_dense(a, {2.0, 3.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(DenseLu, DetectsSingular) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  a(1, 0) = 2.0; a(1, 1) = 4.0;
  EXPECT_FALSE(solve_dense(a, {1.0, 2.0}).has_value());
}

TEST(DenseLu, RandomRoundTrip) {
  std::mt19937 rng(42);
  for (std::size_t n : {3u, 8u, 20u, 50u}) {
    const auto a = random_diag_dominant(n, rng);
    Vector x_true(n);
    for (auto& v : x_true) v = std::uniform_real_distribution<double>(-5, 5)(rng);
    const auto b = a.multiply(x_true);
    const auto x = solve_dense(a, b);
    ASSERT_TRUE(x.has_value());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR((*x)[i], x_true[i], 1e-8) << "n=" << n << " i=" << i;
    }
  }
}

TEST(DenseLu, IterativeRefinementImproves) {
  std::mt19937 rng(7);
  const auto a = random_diag_dominant(30, rng);
  Vector x_true(30, 1.0);
  const auto b = a.multiply(x_true);
  LuFactorization lu;
  ASSERT_TRUE(lu.factorize(a));
  auto x = lu.solve(b);
  const auto x2 = lu.refine(a, b, x);
  Vector r1 = a.multiply(x), r2 = a.multiply(x2);
  for (std::size_t i = 0; i < 30; ++i) {
    r1[i] -= b[i];
    r2[i] -= b[i];
  }
  EXPECT_LE(norm_inf(r2), norm_inf(r1) + 1e-18);
}

// ---- CSR assembly -------------------------------------------------------------

TEST(Csr, AccumulatesDuplicates) {
  SparseBuilder builder(3);
  builder.add(0, 0, 1.0);
  builder.add(0, 0, 2.0);
  builder.add(1, 2, -1.0);
  builder.add(2, 2, 4.0);
  const CsrMatrix m(builder);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(1, 2), -1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0);
  EXPECT_EQ(m.nonzeros(), 3u);
}

TEST(Csr, MultiplyMatchesDense) {
  std::mt19937 rng(3);
  SparseBuilder builder(10);
  std::uniform_int_distribution<std::size_t> idx(0, 9);
  std::uniform_real_distribution<double> val(-2.0, 2.0);
  for (int k = 0; k < 40; ++k) builder.add(idx(rng), idx(rng), val(rng));
  for (std::size_t i = 0; i < 10; ++i) builder.add(i, i, 5.0);
  const CsrMatrix m(builder);
  const auto d = m.to_dense();
  Vector x(10);
  for (auto& v : x) v = val(rng);
  const auto y1 = m.multiply(x);
  const auto y2 = d.multiply(x);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-12);
}

TEST(Csr, RejectsOutOfRange) {
  SparseBuilder builder(2);
  builder.add(0, 5, 1.0);
  EXPECT_THROW(CsrMatrix{builder}, std::out_of_range);
}

// ---- sparse LU ------------------------------------------------------------------

TEST(SparseLuTest, SolvesSmallAsymmetric) {
  SparseBuilder b(3);
  b.add(0, 0, 4.0); b.add(0, 1, -1.0);
  b.add(1, 0, -1.0); b.add(1, 1, 4.0); b.add(1, 2, -1.0);
  b.add(2, 1, -1.0); b.add(2, 2, 4.0);
  const CsrMatrix a(b);
  SparseLu lu;
  ASSERT_TRUE(lu.factorize(a));
  const auto x = lu.solve({1.0, 2.0, 3.0});
  const auto ax = a.multiply(x);
  EXPECT_NEAR(ax[0], 1.0, 1e-10);
  EXPECT_NEAR(ax[1], 2.0, 1e-10);
  EXPECT_NEAR(ax[2], 3.0, 1e-10);
}

TEST(SparseLuTest, NeedsPivotingOffDiagonal) {
  // Structurally requires row exchange (zero diagonal in row 0).
  SparseBuilder b(2);
  b.add(0, 1, 1.0);
  b.add(1, 0, 2.0);
  b.add(1, 1, 1.0);
  const CsrMatrix a(b);
  SparseLu lu;
  ASSERT_TRUE(lu.factorize(a));
  const auto x = lu.solve({3.0, 4.0});
  EXPECT_NEAR(x[1], 3.0, 1e-12);
  EXPECT_NEAR(x[0], 0.5, 1e-12);
}

TEST(SparseLuTest, DetectsSingular) {
  SparseBuilder b(2);
  b.add(0, 0, 1.0);
  b.add(0, 1, 1.0);
  // Row 1 empty: structurally singular.
  const CsrMatrix a(b);
  SparseLu lu;
  EXPECT_FALSE(lu.factorize(a));
}

TEST(SparseLuTest, MatchesDenseOnRandomSystems) {
  std::mt19937 rng(11);
  for (std::size_t n : {5u, 25u, 80u}) {
    SparseBuilder builder(n);
    std::uniform_int_distribution<std::size_t> idx(0, n - 1);
    std::uniform_real_distribution<double> val(-1.0, 1.0);
    for (std::size_t k = 0; k < 6 * n; ++k) {
      builder.add(idx(rng), idx(rng), val(rng));
    }
    for (std::size_t i = 0; i < n; ++i) builder.add(i, i, 8.0);
    const CsrMatrix a(builder);

    Vector b(n);
    for (auto& v : b) v = val(rng);

    SparseLu lu;
    ASSERT_TRUE(lu.factorize(a));
    const auto xs = lu.solve(b);
    const auto xd = solve_dense(a.to_dense(), b);
    ASSERT_TRUE(xd.has_value());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(xs[i], (*xd)[i], 1e-8) << "n=" << n;
    }
  }
}

TEST(SparseLuTest, LargeGridSystem) {
  // 2D Laplacian on a 30x30 grid (900 unknowns) — the array-netlist scale.
  const std::size_t g = 30;
  const std::size_t n = g * g;
  SparseBuilder builder(n);
  auto at = [g](std::size_t r, std::size_t c) { return r * g + c; };
  for (std::size_t r = 0; r < g; ++r) {
    for (std::size_t c = 0; c < g; ++c) {
      const std::size_t i = at(r, c);
      builder.add(i, i, 4.0 + 1e-3);
      if (r > 0) builder.add(i, at(r - 1, c), -1.0);
      if (r + 1 < g) builder.add(i, at(r + 1, c), -1.0);
      if (c > 0) builder.add(i, at(r, c - 1), -1.0);
      if (c + 1 < g) builder.add(i, at(r, c + 1), -1.0);
    }
  }
  const CsrMatrix a(builder);
  Vector b(n, 1.0);
  SparseLu lu;
  ASSERT_TRUE(lu.factorize(a));
  const auto x = lu.solve(b);
  const auto ax = a.multiply(x);
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) worst = std::max(worst, std::fabs(ax[i] - 1.0));
  EXPECT_LT(worst, 1e-9);
}

TEST(SolveSparse, PicksPathByDimension) {
  SparseBuilder b(2);
  b.add(0, 0, 2.0);
  b.add(1, 1, 4.0);
  const auto x = solve_sparse(CsrMatrix(b), {2.0, 8.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

}  // namespace
}  // namespace nvsram::linalg
