// MTJ macromodel: Table I derived quantities, bias-dependent TMR, CIMS
// polarity/threshold/dwell behaviour, and the switching-state integrator.
#include <gtest/gtest.h>

#include <cmath>

#include "models/mtj.h"
#include "util/stats.h"

namespace nvsram {
namespace {

using models::MTJ;
using models::MTJParams;
using models::MtjState;
using models::SwitchingState;

// ---- Table I constants -------------------------------------------------------

TEST(MTJTable1, ParallelResistanceMatchesPaper) {
  const auto p = models::paper_mtj();
  EXPECT_NEAR(p.rp0(), 6366.0, 10.0);  // Table I: 6366 Ohm
}

TEST(MTJTable1, AntiparallelResistanceMatchesPaper) {
  const auto p = models::paper_mtj();
  EXPECT_NEAR(p.rap0(), 12.7e3, 0.1e3);  // Table I: 12.7 kOhm
}

TEST(MTJTable1, CriticalCurrentMatchesPaper) {
  const auto p = models::paper_mtj();
  EXPECT_NEAR(p.critical_current(), 15.7e-6, 0.1e-6);  // Table I: 15.7 uA
}

TEST(MTJTable1, FastVariantScalesIc) {
  const auto fast = models::paper_mtj(true);
  EXPECT_NEAR(fast.critical_current(), 15.7e-6 / 5.0, 0.1e-6);
}

// ---- resistance & TMR ----------------------------------------------------------

TEST(MTJModel, TmrRollsOffWithBias) {
  MTJ mtj(models::paper_mtj());
  EXPECT_NEAR(mtj.tmr(0.0), 1.0, 1e-12);
  EXPECT_NEAR(mtj.tmr(0.5), 0.5, 1e-12);  // Vh = 0.5 V by definition
  EXPECT_LT(mtj.tmr(1.0), 0.21);
  EXPECT_NEAR(mtj.tmr(0.3), mtj.tmr(-0.3), 1e-15);  // even in V
}

TEST(MTJModel, ParallelResistanceBiasIndependent) {
  MTJ mtj(models::paper_mtj());
  EXPECT_DOUBLE_EQ(mtj.resistance(MtjState::kParallel, 0.0),
                   mtj.resistance(MtjState::kParallel, 0.5));
}

TEST(MTJModel, ApResistanceDecreasesWithBias) {
  MTJ mtj(models::paper_mtj());
  std::vector<double> r;
  for (double v : util::linspace(0.0, 0.8, 30)) {
    r.push_back(mtj.resistance(MtjState::kAntiparallel, v));
  }
  EXPECT_TRUE(util::is_monotone_nonincreasing(r));
  EXPECT_GT(r.front(), r.back() * 1.3);
}

TEST(MTJModel, CurrentConsistentWithResistance) {
  MTJ mtj(models::paper_mtj());
  for (double v : {-0.4, -0.1, 0.05, 0.3, 0.6}) {
    for (auto s : {MtjState::kParallel, MtjState::kAntiparallel}) {
      const auto iv = mtj.current(s, v);
      EXPECT_NEAR(iv.current, v / mtj.resistance(s, v),
                  1e-9 * std::fabs(iv.current) + 1e-18);
    }
  }
}

TEST(MTJModel, ConductanceMatchesFiniteDifference) {
  MTJ mtj(models::paper_mtj());
  const double h = 1e-7;
  for (double v : {-0.6, -0.2, 0.0, 0.25, 0.55}) {
    for (auto s : {MtjState::kParallel, MtjState::kAntiparallel}) {
      const double num =
          (mtj.current(s, v + h).current - mtj.current(s, v - h).current) /
          (2 * h);
      EXPECT_NEAR(mtj.current(s, v).conductance, num,
                  1e-5 * std::fabs(num) + 1e-15)
          << "state=" << models::to_string(s) << " v=" << v;
    }
  }
}

// ---- CIMS polarity and dwell ----------------------------------------------------

TEST(MTJSwitching, PolarityConvention) {
  // Positive current (pinned -> free) drives AP -> P; negative drives P -> AP.
  EXPECT_TRUE(MTJ::polarity_drives_switch(MtjState::kAntiparallel, +1e-5));
  EXPECT_FALSE(MTJ::polarity_drives_switch(MtjState::kAntiparallel, -1e-5));
  EXPECT_TRUE(MTJ::polarity_drives_switch(MtjState::kParallel, -1e-5));
  EXPECT_FALSE(MTJ::polarity_drives_switch(MtjState::kParallel, +1e-5));
}

TEST(MTJSwitching, SubCriticalNeverSwitches) {
  MTJ mtj(models::paper_mtj());
  const double ic = mtj.params().critical_current();
  EXPECT_TRUE(std::isinf(mtj.switching_time(MtjState::kParallel, -0.99 * ic)));
  EXPECT_TRUE(std::isinf(mtj.switching_time(MtjState::kParallel, -ic)));
}

TEST(MTJSwitching, PaperOperatingPointSwitchesWithinStorePulse) {
  // 1.5 x Ic held for 10 ns must switch: t_sw = tau0 / 0.5 = 6 ns < 10 ns.
  MTJ mtj(models::paper_mtj());
  const double i = -1.5 * mtj.params().critical_current();
  const double tsw = mtj.switching_time(MtjState::kParallel, i);
  EXPECT_NEAR(tsw, 2.0 * mtj.params().tau0, 1e-12);
  EXPECT_LT(tsw, 10e-9);
}

TEST(MTJSwitching, DwellTimeShrinksWithOverdrive) {
  MTJ mtj(models::paper_mtj());
  const double ic = mtj.params().critical_current();
  std::vector<double> dwell;
  for (double f : {1.2, 1.5, 2.0, 3.0, 5.0}) {
    dwell.push_back(mtj.switching_time(MtjState::kAntiparallel, f * ic));
  }
  EXPECT_TRUE(util::is_monotone_nonincreasing(dwell));
}

TEST(MTJSwitching, WrongPolarityNeverSwitchesEvenWhenLarge) {
  MTJ mtj(models::paper_mtj());
  const double ic = mtj.params().critical_current();
  EXPECT_TRUE(std::isinf(mtj.switching_time(MtjState::kParallel, +10 * ic)));
}

// ---- SwitchingState integrator -------------------------------------------------

TEST(SwitchingStateTest, AccumulatesAndFlips) {
  MTJ mtj(models::paper_mtj());
  SwitchingState s(MtjState::kParallel);
  const double i = -1.5 * mtj.params().critical_current();  // t_sw = 6 ns
  bool flipped = false;
  for (int k = 0; k < 70 && !flipped; ++k) {
    flipped = s.advance(mtj, i, 0.1e-9);
  }
  EXPECT_TRUE(flipped);
  EXPECT_EQ(s.state(), MtjState::kAntiparallel);
}

TEST(SwitchingStateTest, FlipTimeMatchesDwellModel) {
  MTJ mtj(models::paper_mtj());
  SwitchingState s(MtjState::kParallel);
  const double i = -2.0 * mtj.params().critical_current();  // t_sw = 3 ns
  double t = 0.0;
  const double dt = 0.05e-9;
  while (!s.advance(mtj, i, dt)) {
    t += dt;
    ASSERT_LT(t, 10e-9);
  }
  EXPECT_NEAR(t, 3e-9, 0.1e-9);
}

TEST(SwitchingStateTest, SubCriticalResetsProgress) {
  MTJ mtj(models::paper_mtj());
  SwitchingState s(MtjState::kParallel);
  const double i = -1.5 * mtj.params().critical_current();
  // Half the dwell, then a pause: progress must reset.
  for (int k = 0; k < 30; ++k) s.advance(mtj, i, 0.1e-9);
  EXPECT_GT(s.progress(), 0.3);
  s.advance(mtj, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.progress(), 0.0);
  EXPECT_EQ(s.state(), MtjState::kParallel);
}

TEST(SwitchingStateTest, ForceStateResets) {
  SwitchingState s(MtjState::kParallel);
  s.force_state(MtjState::kAntiparallel);
  EXPECT_EQ(s.state(), MtjState::kAntiparallel);
  EXPECT_DOUBLE_EQ(s.progress(), 0.0);
}

TEST(MTJParamsValidation, RejectsNonPositive) {
  MTJParams p = models::paper_mtj();
  p.diameter = 0.0;
  EXPECT_THROW(MTJ{p}, std::invalid_argument);
  p = models::paper_mtj();
  p.vh = -1.0;
  EXPECT_THROW(MTJ{p}, std::invalid_argument);
}

}  // namespace
}  // namespace nvsram
