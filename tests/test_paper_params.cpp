// Table I configuration bundle.
#include <gtest/gtest.h>

#include "models/paper_params.h"

namespace nvsram::models {
namespace {

TEST(PaperParamsTest, Table1Defaults) {
  const auto pp = PaperParams::table1();
  EXPECT_DOUBLE_EQ(pp.vdd, 0.9);
  EXPECT_DOUBLE_EQ(pp.vsr, 0.65);
  EXPECT_DOUBLE_EQ(pp.vctrl_store, 0.5);
  EXPECT_DOUBLE_EQ(pp.vctrl_normal, 0.07);
  EXPECT_DOUBLE_EQ(pp.vctrl_sleep, 0.04);
  EXPECT_DOUBLE_EQ(pp.vvdd_sleep, 0.7);
  EXPECT_DOUBLE_EQ(pp.vpg_supercutoff, 1.0);
  EXPECT_EQ(pp.fins_power_switch, 7);
  EXPECT_EQ(pp.fins_load, 1);
  EXPECT_EQ(pp.fins_driver, 1);
  EXPECT_EQ(pp.fins_access, 1);
  EXPECT_EQ(pp.fins_ps, 1);
  EXPECT_DOUBLE_EQ(pp.clock_hz, 300e6);
  EXPECT_DOUBLE_EQ(pp.store_pulse, 10e-9);
  EXPECT_DOUBLE_EQ(pp.store_current_factor, 1.5);
}

TEST(PaperParamsTest, ClockPeriod) {
  EXPECT_NEAR(PaperParams::table1().clock_period(), 3.3333e-9, 1e-12);
  EXPECT_NEAR(PaperParams::table1_fast().clock_period(), 1e-9, 1e-15);
}

TEST(PaperParamsTest, FastVariantDiffers) {
  const auto fast = PaperParams::table1_fast();
  EXPECT_DOUBLE_EQ(fast.clock_hz, 1e9);
  EXPECT_NEAR(fast.mtj.jc, 1e10, 1.0);  // 1e6 A/cm^2 in A/m^2
  EXPECT_LT(fast.vsr, 0.65);            // rescaled store biases
  EXPECT_LT(fast.vctrl_store, 0.5);
}

TEST(PaperParamsTest, FetPresetsCarryGeometryAndTemperature) {
  auto pp = PaperParams::table1();
  pp.temperature = 350.0;
  pp.fin_height = 30e-9;
  const auto n = pp.nmos(2);
  EXPECT_EQ(n.fin_count, 2);
  EXPECT_DOUBLE_EQ(n.fin_height, 30e-9);
  EXPECT_DOUBLE_EQ(n.temperature, 350.0);
  const auto p = pp.pmos(3);
  EXPECT_EQ(p.type, FetType::kPmos);
  EXPECT_DOUBLE_EQ(p.temperature, 350.0);
}

TEST(PaperParamsTest, DescribeIsComplete) {
  const auto text = PaperParams::table1().describe();
  EXPECT_NE(text.find("Table I"), std::string::npos);
  EXPECT_NE(text.find("VSR=0.65"), std::string::npos);
  EXPECT_NE(text.find("N_FSW=7"), std::string::npos);
  EXPECT_NE(text.find("300.000 MHz"), std::string::npos);
  EXPECT_NE(text.find("MTJ"), std::string::npos);
}

TEST(PaperParamsTest, MtjDerivedQuantities) {
  const auto pp = PaperParams::table1();
  EXPECT_NEAR(pp.mtj.rp0(), 6366.0, 10.0);
  EXPECT_NEAR(pp.mtj.critical_current(), 15.7e-6, 0.1e-6);
}

}  // namespace
}  // namespace nvsram::models
