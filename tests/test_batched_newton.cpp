// Differential tier: the batched multi-point Newton driver must reproduce
// the scalar solver bit for bit.
//
// Every test here compares a lockstep batched solve (BatchedNewton /
// solve_dc_lanes / static_power_lanes) against the scalar reference on
// per-lane clones of the same netlist.  Equality is asserted with EXPECT_EQ
// on the raw unknown vectors: the only permitted divergence is the sign of
// exact-zero entries (the batched triangular solves skip a column only when
// it is zero in *all* lanes, so a lane can see -0.0 where the scalar path
// produced +0.0), and -0.0 == 0.0 under operator== — so plain EXPECT_EQ
// encodes the contract exactly.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "models/paper_params.h"
#include "spice/dc.h"
#include "spice/netlist_parser.h"
#include "spice/newton.h"
#include "sram/array.h"
#include "sram/characterize.h"
#include "sram/testbench.h"

namespace {

using namespace nvsram;

std::string read_netlist(const std::string& name) {
  const std::string path = std::string(NVSRAM_NETLIST_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

const std::vector<std::string>& corpus() {
  static const std::vector<std::string> kFiles = {
      "mtj_sense.cir", "nvsram_cell_full.cir", "nvsram_store.cir",
      "rc_bode.cir",   "sram_latch.cir"};
  return kFiles;
}

void expect_same_vector(const linalg::Vector& ref, const linalg::Vector& got,
                        const std::string& what) {
  ASSERT_EQ(ref.size(), got.size()) << what;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i], got[i]) << what << " diverges at unknown " << i;
  }
}

// ---- netlist corpus, K in {1, 2, 4, 8} -------------------------------------

// Each lane is a fresh parse of the same netlist; the scalar reference is
// DCAnalysis::solve() on its own parse.  Both sides start from zeros and run
// the identical recovery ladder, so converged/nullopt status and the raw
// solution vector must match exactly.
TEST(BatchedNewtonDifferential, DcOperatingPointMatchesScalarAcrossCorpus) {
  for (const auto& name : corpus()) {
    const std::string text = read_netlist(name);

    spice::NetlistParser ref_parser;
    auto ref_net = ref_parser.parse(text);
    ASSERT_NE(ref_net, nullptr) << name;
    spice::DCAnalysis ref_dc(ref_net->circuit());
    const auto ref = ref_dc.solve();

    for (std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                          std::size_t{8}}) {
      std::vector<std::unique_ptr<spice::ParsedNetlist>> nets;
      std::vector<spice::Circuit*> circuits;
      for (std::size_t l = 0; l < k; ++l) {
        spice::NetlistParser p;
        nets.push_back(p.parse(text));
        ASSERT_NE(nets.back(), nullptr) << name;
        circuits.push_back(&nets.back()->circuit());
      }
      const auto lanes = spice::solve_dc_lanes(circuits);
      ASSERT_EQ(lanes.size(), k) << name;
      for (std::size_t l = 0; l < k; ++l) {
        ASSERT_EQ(ref.has_value(), lanes[l].has_value())
            << name << " lane " << l << "/" << k;
        if (ref.has_value()) {
          expect_same_vector(ref->raw(), lanes[l]->raw(),
                             name + " lane " + std::to_string(l) + "/" +
                                 std::to_string(k));
        }
      }
    }
  }
}

// ---- static-power corners through the cell testbench -----------------------

// The five corners characterize() batches, plus both data polarities, for
// both cell kinds.  The scalar reference runs sequentially on a single
// testbench (the pre-batch code path); the lanes run on per-corner clones.
TEST(BatchedNewtonDifferential, StaticPowerLanesMatchSequentialScalar) {
  using Mode = sram::CellTestbench::StaticMode;
  const std::vector<std::pair<Mode, bool>> corners = {
      {Mode::kNormal, true},   {Mode::kNormal, false}, {Mode::kSleep, true},
      {Mode::kSleep, false},   {Mode::kShutdown, true},
      {Mode::kShutdown, false}};

  const auto pp = models::PaperParams::table1();
  const sram::TestbenchOptions opts{.ideal_bitlines = true};
  for (auto kind : {sram::CellKind::k6T, sram::CellKind::kNvSram}) {
    sram::CellTestbench scalar_tb(kind, pp, opts);
    std::vector<double> ref;
    for (const auto& [mode, data] : corners) {
      ref.push_back(scalar_tb.static_power(mode, data));
    }

    std::vector<std::unique_ptr<sram::CellTestbench>> clones;
    std::vector<sram::CellTestbench*> tbs;
    for (std::size_t i = 0; i < corners.size(); ++i) {
      clones.push_back(std::make_unique<sram::CellTestbench>(kind, pp, opts));
      tbs.push_back(clones.back().get());
    }
    const auto lanes = sram::CellTestbench::static_power_lanes(tbs, corners);
    ASSERT_EQ(lanes.size(), corners.size());
    for (std::size_t i = 0; i < corners.size(); ++i) {
      EXPECT_EQ(ref[i], lanes[i])
          << (kind == sram::CellKind::k6T ? "6T" : "NV") << " corner " << i;
    }
  }
}

// ---- lanes entering the recovery ladder mid-batch --------------------------

// Mixed batch: even lanes get the testbench's analytic warm start, odd lanes
// start from zeros with a plain-Newton iteration cap low enough that they
// fail the lockstep attempt and must run the scalar recovery ladder.  Each
// lane must still equal its scalar counterpart (same guess, same options)
// exactly — peeling is invisible in the results.
TEST(BatchedNewtonDifferential, RecoveryLadderLanesMatchScalarMidBatch) {
  const auto pp = models::PaperParams::table1();
  const sram::TestbenchOptions opts{.ideal_bitlines = true};
  constexpr std::size_t kLanes = 4;

  spice::DCOptions dopt;
  dopt.newton.max_iterations = 6;  // plain Newton fails from zeros -> ladder

  // Build lanes and per-lane scalar references on separate clones.
  std::vector<std::unique_ptr<sram::CellTestbench>> lane_tbs, ref_tbs;
  std::vector<spice::Circuit*> circuits;
  std::vector<linalg::Vector> guesses;
  std::vector<const linalg::Vector*> guess_ptrs;
  for (std::size_t l = 0; l < kLanes; ++l) {
    lane_tbs.push_back(
        std::make_unique<sram::CellTestbench>(sram::CellKind::kNvSram, pp, opts));
    ref_tbs.push_back(
        std::make_unique<sram::CellTestbench>(sram::CellKind::kNvSram, pp, opts));
    circuits.push_back(&lane_tbs.back()->circuit());
  }
  // Warm guesses for the even lanes come from solve_dc on a scratch clone
  // (solve_dc applies the bias and MTJ states, then solves — its solution is
  // a converged iterate, so plain Newton accepts it immediately).
  sram::CellTestbench scratch(sram::CellKind::kNvSram, pp, opts);
  const auto warm = scratch.solve_dc(scratch.bias_normal(), true);
  ASSERT_TRUE(warm.has_value());
  guesses.resize(kLanes);
  for (std::size_t l = 0; l < kLanes; ++l) {
    if (l % 2 == 0) {
      guesses[l] = warm->raw();
      guess_ptrs.push_back(&guesses[l]);
    } else {
      guess_ptrs.push_back(nullptr);  // zeros -> ladder under the tight cap
    }
  }
  // Bias every clone identically to the warm solve (bias_normal, data=true)
  // so the lanes and references describe the same operating point.
  auto bias_all = [&](std::vector<std::unique_ptr<sram::CellTestbench>>& v) {
    for (auto& tb : v) {
      // solve_dc with a huge iteration budget just to apply bias would also
      // solve; instead reuse the public path: static_power applies
      // bias_normal internally, but we need the bias *without* solving.
      // solve_dc is the only public bias application, so call it with the
      // warm guess (converges in one step) and discard the solution.
      const auto s = tb->solve_dc(tb->bias_normal(), true, std::nullopt,
                                  std::nullopt);
      ASSERT_TRUE(s.has_value());
    }
  };
  bias_all(lane_tbs);
  bias_all(ref_tbs);

  const auto lanes = spice::solve_dc_lanes(circuits, dopt, &guess_ptrs);
  ASSERT_EQ(lanes.size(), kLanes);
  for (std::size_t l = 0; l < kLanes; ++l) {
    spice::DCAnalysis ref_dc(ref_tbs[l]->circuit(), dopt);
    const auto ref = ref_dc.solve(guess_ptrs[l]);
    ASSERT_EQ(ref.has_value(), lanes[l].has_value()) << "lane " << l;
    if (ref.has_value()) {
      expect_same_vector(ref->raw(), lanes[l]->raw(),
                         "lane " + std::to_string(l));
    }
  }
}

// The ladder actually engages under the tight iteration cap: drive the
// BatchedNewton driver directly with a cold lane and assert its peel
// telemetry moved, so the test above cannot silently degrade into an
// all-lockstep run.
TEST(BatchedNewtonDifferential, ColdLanePeelsToScalarLadder) {
  const auto pp = models::PaperParams::table1();
  const sram::TestbenchOptions opts{.ideal_bitlines = true};
  constexpr std::size_t kLanes = 2;

  std::vector<std::unique_ptr<sram::CellTestbench>> tbs;
  std::vector<spice::Circuit*> circuits;
  for (std::size_t l = 0; l < kLanes; ++l) {
    tbs.push_back(
        std::make_unique<sram::CellTestbench>(sram::CellKind::kNvSram, pp, opts));
    const auto s = tbs.back()->solve_dc(tbs.back()->bias_normal(), true);
    ASSERT_TRUE(s.has_value());
    circuits.push_back(&tbs.back()->circuit());
  }
  std::vector<spice::MnaLayout> layouts;
  std::vector<const spice::MnaLayout*> layout_ptrs;
  for (auto* c : circuits) layouts.push_back(c->build_layout());
  for (auto& l : layouts) layout_ptrs.push_back(&l);

  spice::NewtonOptions nopts;
  nopts.max_iterations = 6;
  spice::RecoveryOptions recovery;

  // Lane 0 warm (a solved operating point), lane 1 cold (zeros).
  sram::CellTestbench scratch(sram::CellKind::kNvSram, pp, opts);
  const auto warm = scratch.solve_dc(scratch.bias_normal(), true);
  ASSERT_TRUE(warm.has_value());
  std::vector<linalg::Vector> xs(kLanes);
  xs[0] = warm->raw();
  xs[1].assign(layouts[1].unknown_count(), 0.0);
  std::vector<linalg::Vector*> x_ptrs = {&xs[0], &xs[1]};

  spice::BatchedNewton driver(circuits, layout_ptrs);
  const auto results =
      driver.solve_with_recovery(x_ptrs, 0.0, 0.0, /*dc=*/true,
                                 spice::IntegrationMethod::kBackwardEuler,
                                 nopts, recovery);
  ASSERT_EQ(results.size(), kLanes);
  EXPECT_TRUE(results[0].converged);
  EXPECT_TRUE(results[1].converged);
  // The cold lane cannot finish inside 6 plain iterations from zeros; it
  // must have left lockstep (peeled mid-solve or rerun through the ladder).
  EXPECT_GT(driver.lane_iterations(), 0u);
  EXPECT_TRUE(driver.peel_count() > 0 || results[1].diagnostics.describe() !=
                                             results[0].diagnostics.describe())
      << "cold lane appears to have converged in lockstep; tighten the cap";
}

// ---- full characterization under the batch knob ----------------------------

// characterize() reads NVSRAM_SWEEP_BATCH and batches its static-power
// corners when > 1.  Every CellEnergetics field must be bit-identical to the
// sequential run — this is the cell-level statement of the sweep-runner
// byte-identity guarantee, across both cell kinds (and thereby every
// architecture schedule that characterize() drives).
TEST(BatchedNewtonDifferential, CharacterizationIdenticalUnderBatchEnv) {
  const auto pp = models::PaperParams::table1();
  for (auto kind : {sram::CellKind::k6T, sram::CellKind::kNvSram}) {
    ::unsetenv("NVSRAM_SWEEP_BATCH");
    const auto ref = sram::CellCharacterizer(pp).characterize(kind);
    ::setenv("NVSRAM_SWEEP_BATCH", "4", 1);
    const auto got = sram::CellCharacterizer(pp).characterize(kind);
    ::unsetenv("NVSRAM_SWEEP_BATCH");

    EXPECT_EQ(ref.t_clk, got.t_clk);
    EXPECT_EQ(ref.e_read, got.e_read);
    EXPECT_EQ(ref.e_write, got.e_write);
    EXPECT_EQ(ref.p_static_normal, got.p_static_normal);
    EXPECT_EQ(ref.p_static_sleep, got.p_static_sleep);
    EXPECT_EQ(ref.p_static_shutdown, got.p_static_shutdown);
    EXPECT_EQ(ref.e_store, got.e_store);
    EXPECT_EQ(ref.t_store, got.t_store);
    EXPECT_EQ(ref.e_restore, got.e_restore);
    EXPECT_EQ(ref.t_restore, got.t_restore);
    EXPECT_EQ(ref.e_sleep_transition, got.e_sleep_transition);
    EXPECT_EQ(ref.store_verified, got.store_verified);
    EXPECT_EQ(ref.restore_verified, got.restore_verified);
    EXPECT_EQ(ref.gmin_recoveries, got.gmin_recoveries);
    EXPECT_EQ(ref.source_recoveries, got.source_recoveries);
  }
}

// ---- array-scale lanes on the sparse path ----------------------------------

// A fig7-shaped batch: per-lane VDD trims on a 4x8 array domain (~200 MNA
// unknowns, well above kDenseCutoff, so the lanes exercise the interleaved
// sparse refactor/solve).  Each lane must equal DCAnalysis on its own clone.
TEST(BatchedNewtonDifferential, SparsePathArrayLanesMatchScalar) {
  constexpr std::size_t kLanes = 4;
  sram::ArrayOptions aopts;
  aopts.rows = 4;
  aopts.cols = 8;

  std::vector<std::unique_ptr<sram::ArrayTestbench>> lane_tbs, ref_tbs;
  std::vector<spice::Circuit*> circuits;
  for (std::size_t l = 0; l < kLanes; ++l) {
    auto pp = models::PaperParams::table1();
    pp.vdd += 1e-3 * static_cast<double>(l);  // adjacent sweep points
    lane_tbs.push_back(std::make_unique<sram::ArrayTestbench>(pp, aopts));
    ref_tbs.push_back(std::make_unique<sram::ArrayTestbench>(pp, aopts));
    circuits.push_back(&lane_tbs.back()->circuit());
  }

  const auto lanes = spice::solve_dc_lanes(circuits);
  ASSERT_EQ(lanes.size(), kLanes);
  for (std::size_t l = 0; l < kLanes; ++l) {
    spice::DCAnalysis ref_dc(ref_tbs[l]->circuit());
    const auto ref = ref_dc.solve();
    ASSERT_EQ(ref.has_value(), lanes[l].has_value()) << "lane " << l;
    if (ref.has_value()) {
      ASSERT_GT(ref->raw().size(), std::size_t{160})
          << "array domain unexpectedly small: dense path, not sparse";
      expect_same_vector(ref->raw(), lanes[l]->raw(),
                         "array lane " + std::to_string(l));
    }
  }
}

}  // namespace
