// Inductor element: DC short, RL/RLC transients against analytic solutions,
// AC resonance, and parser integration.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "spice/ac.h"
#include "spice/circuit.h"
#include "spice/dc.h"
#include "spice/elements.h"
#include "spice/netlist_parser.h"
#include "spice/tran.h"

namespace nvsram::spice {
namespace {

TEST(InductorTest, DcActsAsShort) {
  Circuit ckt;
  const auto a = ckt.node("a");
  const auto b = ckt.node("b");
  ckt.add<VSource>("V1", a, kGround, SourceSpec::dc(1.0));
  auto* l = ckt.add<Inductor>("L1", a, b, 1e-9);
  ckt.add<Resistor>("R1", b, kGround, 1e3);
  DCAnalysis dc(ckt);
  const auto sol = dc.solve();
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR(sol->node_voltage(b), 1.0, 1e-6);
  EXPECT_NEAR(l->current(sol->view()), 1e-3, 1e-8);
}

TEST(InductorTest, RejectsNonPositiveValue) {
  Circuit ckt;
  EXPECT_THROW(ckt.add<Inductor>("L1", ckt.node("a"), kGround, 0.0),
               std::invalid_argument);
}

TEST(InductorTest, RlRiseMatchesAnalytic) {
  // Step into series R-L: i(t) = (V/R)(1 - exp(-t R / L)); tau = L/R = 1 ns.
  Circuit ckt;
  const auto a = ckt.node("a");
  const auto b = ckt.node("b");
  ckt.add<VSource>("V1", a, kGround,
                   SourceSpec::pwl({{0.1e-9, 0.0}, {0.101e-9, 1.0}}));
  ckt.add<Resistor>("R1", a, b, 1e3);
  auto* l = ckt.add<Inductor>("L1", b, kGround, 1e-6);
  TranOptions opt;
  opt.t_stop = 5e-9;
  TranAnalysis tran(ckt, opt,
                    {Probe::device_current(l, "i(L1)"),
                     Probe::node_voltage(b, "V(b)")});
  const auto wave = tran.run();
  const double tau = 1e-6 / 1e3;
  for (double t : {1e-9, 2e-9, 4e-9}) {
    const double expected = 1e-3 * (1.0 - std::exp(-(t - 0.1005e-9) / tau));
    EXPECT_NEAR(wave.value_at("i(L1)", t), expected, 0.02e-3) << t;
  }
}

TEST(InductorTest, LcTankRingsAtResonance) {
  // Series RLC, lightly damped: ringing frequency ~ 1/(2 pi sqrt(LC)).
  Circuit ckt;
  const auto a = ckt.node("a");
  const auto b = ckt.node("b");
  const auto c = ckt.node("c");
  ckt.add<VSource>("V1", a, kGround,
                   SourceSpec::pwl({{0.1e-9, 0.0}, {0.11e-9, 1.0}}));
  ckt.add<Resistor>("R1", a, b, 5.0);  // light damping
  ckt.add<Inductor>("L1", b, c, 1e-9);
  ckt.add<Capacitor>("C1", c, kGround, 1e-12);
  TranOptions opt;
  opt.t_stop = 2e-9;
  opt.lte_reltol = 5e-4;  // resolve the ringing well
  TranAnalysis tran(ckt, opt, {Probe::node_voltage(c, "V(c)")});
  const auto wave = tran.run();

  // f0 ~ 5.03 GHz -> period ~ 198.9 ps.  Measure period from two upward
  // crossings of the final value.
  const auto t1 = wave.cross_time("V(c)", 1.0, 0.15e-9);
  ASSERT_TRUE(t1.has_value());
  // Skipping 110 ps jumps past the opposite-direction crossing (~99 ps
  // later), so t2 is the next same-direction crossing: one full period.
  const auto t2 = wave.cross_time("V(c)", 1.0, *t1 + 0.11e-9);
  ASSERT_TRUE(t2.has_value());
  const double period = *t2 - *t1;
  const double f0 = 1.0 / (2.0 * std::numbers::pi * std::sqrt(1e-9 * 1e-12));
  EXPECT_NEAR(period, 1.0 / f0, 0.15 / f0);
  // Underdamped: the overshoot must exceed the input step.
  EXPECT_GT(wave.maximum("V(c)"), 1.4);
}

TEST(InductorTest, AcSeriesResonanceDip) {
  // Series RLC driven by AC: the mid-node magnitude peaks near f0.
  Circuit ckt;
  const auto a = ckt.node("a");
  const auto b = ckt.node("b");
  const auto c = ckt.node("c");
  auto* v = ckt.add<VSource>("V1", a, kGround, SourceSpec::dc(0.0));
  ckt.add<Resistor>("R1", a, b, 10.0);
  ckt.add<Inductor>("L1", b, c, 1e-9);
  ckt.add<Capacitor>("C1", c, kGround, 1e-12);
  ACOptions opt;
  opt.f_start = 1e8;
  opt.f_stop = 1e11;
  opt.points_per_decade = 40;
  ACAnalysis ac(ckt, opt, {Probe::node_voltage(c, "c")});
  ac.set_ac(v, 1.0);
  const auto wave = ac.run();

  const double f0 = 1.0 / (2.0 * std::numbers::pi * std::sqrt(1e-9 * 1e-12));
  // Q = sqrt(L/C)/R ~ 3.16: |V(c)| at resonance ~ Q.
  EXPECT_NEAR(wave.value_at("mag:c", f0), 3.16, 0.35);
  EXPECT_NEAR(wave.value_at("mag:c", 1e8), 1.0, 0.02);   // passband
  EXPECT_LT(wave.value_at("mag:c", 1e11), 0.01);         // stopband
}

TEST(InductorTest, ParsedFromNetlist) {
  NetlistParser p;
  auto net = p.parse(
      "rl divider\n"
      "V1 a 0 DC 2\n"
      "L1 a b 10n\n"
      "R1 b 0 1k\n");
  const auto sol = net->run_op();
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR(sol->node_voltage(net->circuit().find_node("b")), 2.0, 1e-5);
}

TEST(InductorTest, BackwardEulerRlAccurate) {
  Circuit ckt;
  const auto a = ckt.node("a");
  const auto b = ckt.node("b");
  ckt.add<VSource>("V1", a, kGround,
                   SourceSpec::pwl({{0.1e-9, 0.0}, {0.101e-9, 1.0}}));
  ckt.add<Resistor>("R1", a, b, 1e3);
  auto* l = ckt.add<Inductor>("L1", b, kGround, 1e-6);
  TranOptions opt;
  opt.t_stop = 4e-9;
  opt.method = IntegrationMethod::kBackwardEuler;
  TranAnalysis tran(ckt, opt, {Probe::device_current(l, "i")});
  const auto wave = tran.run();
  const double expected = 1e-3 * (1.0 - std::exp(-(3e-9 - 0.1e-9) / 1e-9));
  EXPECT_NEAR(wave.value_at("i", 3e-9), expected, 0.03e-3);
}

}  // namespace
}  // namespace nvsram::spice
