// AC small-signal analysis and controlled sources: RC poles, dividers,
// amplifier gain at the operating point.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "models/paper_params.h"
#include "spice/ac.h"
#include "spice/controlled.h"
#include "spice/elements.h"
#include "spice/fet_element.h"
#include "spice/tran.h"

namespace nvsram::spice {
namespace {

// ---- controlled sources (DC behaviour first) ----

TEST(ControlledSources, VcvsAmplifiesDc) {
  Circuit ckt;
  const auto n_in = ckt.node("in");
  const auto n_out = ckt.node("out");
  ckt.add<VSource>("Vin", n_in, kGround, SourceSpec::dc(0.25));
  ckt.add<VCVS>("E1", n_out, kGround, n_in, kGround, 4.0);
  ckt.add<Resistor>("RL", n_out, kGround, 1e3);
  DCAnalysis dc(ckt);
  const auto sol = dc.solve();
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR(sol->node_voltage(n_out), 1.0, 1e-6);
}

TEST(ControlledSources, VccsDrivesCurrent) {
  Circuit ckt;
  const auto n_in = ckt.node("in");
  const auto n_out = ckt.node("out");
  ckt.add<VSource>("Vin", n_in, kGround, SourceSpec::dc(0.5));
  // i = gm * v(in) pulled OUT of node out -> negative voltage on a
  // grounded resistor.
  auto* g = ckt.add<VCCS>("G1", n_out, kGround, n_in, kGround, 1e-3);
  ckt.add<Resistor>("RL", n_out, kGround, 2e3);
  DCAnalysis dc(ckt);
  const auto sol = dc.solve();
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR(sol->node_voltage(n_out), -1.0, 1e-5);
  EXPECT_NEAR(g->current(sol->view()), 0.5e-3, 1e-9);
}

TEST(ControlledSources, VcvsInvertingGainTransient) {
  Circuit ckt;
  const auto n_in = ckt.node("in");
  const auto n_out = ckt.node("out");
  ckt.add<VSource>("Vin", n_in, kGround,
                   SourceSpec::pwl({{1e-9, 0.0}, {1.1e-9, 0.2}}));
  ckt.add<VCVS>("E1", n_out, kGround, n_in, kGround, -5.0);
  ckt.add<Resistor>("RL", n_out, kGround, 1e3);
  TranOptions opt;
  opt.t_stop = 3e-9;
  TranAnalysis tran(ckt, opt, {Probe::node_voltage(n_out, "out")});
  const auto wave = tran.run();
  EXPECT_NEAR(wave.value_at("out", 2.5e-9), -1.0, 1e-3);
}

// ---- AC ----

TEST(AcAnalysis, RcLowpassPole) {
  // R = 1k, C = 1p: f_3dB = 1/(2 pi RC) ~ 159.2 MHz.
  Circuit ckt;
  const auto n_in = ckt.node("in");
  const auto n_out = ckt.node("out");
  auto* vin = ckt.add<VSource>("Vin", n_in, kGround, SourceSpec::dc(0.0));
  ckt.add<Resistor>("R1", n_in, n_out, 1e3);
  ckt.add<Capacitor>("C1", n_out, kGround, 1e-12);

  ACOptions opt;
  opt.f_start = 1e6;
  opt.f_stop = 1e10;
  opt.points_per_decade = 20;
  ACAnalysis ac(ckt, opt, {Probe::node_voltage(n_out, "out")});
  ac.set_ac(vin, 1.0);
  const auto wave = ac.run();

  const double f3db = 1.0 / (2.0 * std::numbers::pi * 1e3 * 1e-12);
  // Magnitude at the pole is 1/sqrt(2); phase is -45 degrees.
  EXPECT_NEAR(wave.value_at("mag:out", f3db), 1.0 / std::sqrt(2.0), 0.01);
  EXPECT_NEAR(wave.value_at("ph:out", f3db), -45.0, 1.5);
  // Low-frequency passband ~ 1; a decade above the pole ~ -20 dB/dec.
  EXPECT_NEAR(wave.value_at("mag:out", 1e6), 1.0, 1e-3);
  EXPECT_NEAR(wave.value_at("mag:out", 10 * f3db), 0.0995, 0.01);
}

TEST(AcAnalysis, ResistiveDividerIsFlat) {
  Circuit ckt;
  const auto n_in = ckt.node("in");
  const auto n_out = ckt.node("out");
  auto* vin = ckt.add<VSource>("Vin", n_in, kGround, SourceSpec::dc(0.0));
  ckt.add<Resistor>("R1", n_in, n_out, 3e3);
  ckt.add<Resistor>("R2", n_out, kGround, 1e3);
  ACOptions opt;
  ACAnalysis ac(ckt, opt, {Probe::node_voltage(n_out, "out")});
  ac.set_ac(vin, 2.0);
  const auto wave = ac.run();
  for (double f : {1e3, 1e6, 1e9}) {
    EXPECT_NEAR(wave.value_at("mag:out", f), 0.5, 1e-5) << f;
    EXPECT_NEAR(wave.value_at("ph:out", f), 0.0, 1e-6) << f;
  }
}

TEST(AcAnalysis, CommonSourceAmplifierGain) {
  // FinFET common-source stage biased near threshold: |gain| = gm * Rload
  // at low frequency, rolling off with the output capacitance.
  const auto pp = models::PaperParams::table1();
  Circuit ckt;
  const auto n_in = ckt.node("in");
  const auto n_out = ckt.node("out");
  const auto n_vdd = ckt.node("vdd");
  ckt.add<VSource>("Vdd", n_vdd, kGround, SourceSpec::dc(0.9));
  auto* vin = ckt.add<VSource>("Vin", n_in, kGround, SourceSpec::dc(0.35));
  ckt.add<Resistor>("RL", n_vdd, n_out, 30e3);
  auto* fet = spice::add_finfet(ckt, "M1", n_out, n_in, kGround, pp.nmos(1));

  // Expected low-frequency gain from the model's small-signal parameters at
  // the solved operating point.
  DCAnalysis dc(ckt);
  const auto op = dc.solve();
  ASSERT_TRUE(op.has_value());
  const double vgs = 0.35;
  const double vds = op->node_voltage(n_out);
  const auto ss = fet->model().evaluate(vgs, vds);
  const double expected_gain = ss.gm * (1.0 / (1.0 / 30e3 + ss.gds));

  ACOptions opt;
  opt.f_start = 1e4;
  opt.f_stop = 1e8;
  ACAnalysis ac(ckt, opt, {Probe::node_voltage(n_out, "out")});
  ac.set_ac(vin, 1.0);
  const auto wave = ac.run();
  EXPECT_NEAR(wave.value_at("mag:out", 1e4), expected_gain,
              0.05 * expected_gain);
  EXPECT_GT(expected_gain, 2.0);  // it really is an amplifier
  // Inverting stage: phase ~ 180 degrees at low frequency.
  EXPECT_NEAR(std::fabs(wave.value_at("ph:out", 1e4)), 180.0, 3.0);
}

TEST(AcAnalysis, CurrentSourceExcitation) {
  // AC current into a parallel RC: |Z| = R / sqrt(1 + (wRC)^2).
  Circuit ckt;
  const auto n = ckt.node("n");
  auto* iin = ckt.add<ISource>("Iin", kGround, n, SourceSpec::dc(0.0));
  ckt.add<Resistor>("R1", n, kGround, 1e4);
  ckt.add<Capacitor>("C1", n, kGround, 1e-12);
  ACOptions opt;
  opt.f_start = 1e5;
  opt.f_stop = 1e9;
  ACAnalysis ac(ckt, opt, {Probe::node_voltage(n, "n")});
  ac.set_ac(iin, 1e-3);
  const auto wave = ac.run();
  EXPECT_NEAR(wave.value_at("mag:n", 1e5), 10.0, 0.05);
  const double f3db = 1.0 / (2.0 * std::numbers::pi * 1e4 * 1e-12);
  EXPECT_NEAR(wave.value_at("mag:n", f3db), 10.0 / std::sqrt(2.0), 0.1);
}

TEST(AcAnalysis, RejectsNonVoltageProbes) {
  Circuit ckt;
  const auto n = ckt.node("n");
  auto* v = ckt.add<VSource>("V1", n, kGround, SourceSpec::dc(1.0));
  ckt.add<Resistor>("R1", n, kGround, 1e3);
  EXPECT_THROW(
      ACAnalysis(ckt, {}, {Probe::source_power(v, "p")}),
      std::invalid_argument);
}

}  // namespace
}  // namespace nvsram::spice
