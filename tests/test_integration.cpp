// End-to-end integration: a complete Fig. 5 benchmark cycle executed as ONE
// SPICE transient, cross-checked against the composed EnergyModel — the
// validation that the architecture-level numbers rest on.
#include <gtest/gtest.h>

#include <cmath>

#include "core/analyzer.h"
#include "sram/testbench.h"

namespace nvsram {
namespace {

using core::Architecture;
using core::BenchmarkParams;
using models::PaperParams;
using sram::CellKind;
using sram::CellTestbench;

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    analyzer_ = new core::PowerGatingAnalyzer(PaperParams::table1());
  }
  static void TearDownTestSuite() {
    delete analyzer_;
    analyzer_ = nullptr;
  }
  static core::PowerGatingAnalyzer* analyzer_;
};

core::PowerGatingAnalyzer* IntegrationTest::analyzer_ = nullptr;

TEST_F(IntegrationTest, FullNvpgBenchmarkCycleMatchesModel) {
  // Fig. 5(b) with N = 1, n_RW = 2, t_SL = 100 ns, t_SD = 2 us — small
  // enough to simulate in one transient, large enough to exercise every
  // phase.
  const auto pp = PaperParams::table1();
  const int n_rw = 2;
  const double t_sl = 100e-9;
  const double t_sd = 2e-6;

  CellTestbench tb(CellKind::kNvSram, pp);
  tb.op_write(true);  // initialize (outside the measured cycle)
  tb.op_idle(2e-9);
  const double t_cycle_start = tb.now();
  for (int i = 0; i < n_rw; ++i) {
    tb.op_read();
    tb.op_write(true);
    tb.op_sleep(t_sl);
  }
  tb.op_store();
  tb.op_shutdown(t_sd);
  tb.op_restore();
  const double t_cycle_end = tb.now();
  tb.op_idle(2e-9);
  auto res = tb.run();

  const double e_spice = res.energy(t_cycle_start, t_cycle_end);

  BenchmarkParams p;
  p.n_rw = n_rw;
  p.rows = 1;
  p.cols = 1;
  p.t_sl = t_sl;
  p.t_sd = t_sd;
  const double e_model = analyzer_->model().e_cyc(Architecture::kNVPG, p);

  // The composition must track the true transient within 25%.
  EXPECT_NEAR(e_spice, e_model, 0.25 * e_model)
      << "SPICE " << e_spice << " vs model " << e_model;

  // And the cycle must end functionally correct.
  EXPECT_GT(res.wave.value_at("V(Q)", tb.now() - 0.5e-9), 0.8);
}

TEST_F(IntegrationTest, FullOsrBenchmarkCycleMatchesModel) {
  const auto pp = PaperParams::table1();
  const int n_rw = 2;
  const double t_sl = 100e-9;
  const double t_sd = 2e-6;  // OSR spends the long period in sleep

  CellTestbench tb(CellKind::k6T, pp);
  tb.op_write(true);
  tb.op_idle(2e-9);
  const double t0 = tb.now();
  for (int i = 0; i < n_rw; ++i) {
    tb.op_read();
    tb.op_write(true);
    tb.op_sleep(t_sl);
  }
  tb.op_sleep(t_sd);
  const double t1 = tb.now();
  tb.op_idle(2e-9);
  auto res = tb.run();

  const double e_spice = res.energy(t0, t1);

  BenchmarkParams p;
  p.n_rw = n_rw;
  p.rows = 1;
  p.cols = 1;
  p.t_sl = t_sl;
  p.t_sd = t_sd;
  const double e_model = analyzer_->model().e_cyc(Architecture::kOSR, p);

  // The transient includes the write-driver / precharge periphery, which the
  // cell-scope model deliberately excludes; its sleep-mode leakage dominates
  // over the long t_SD window.  Measure that power as the difference between
  // the periphery-mode and ideal-bitline static powers and correct for it.
  CellTestbench tb_periph(CellKind::k6T, pp);
  CellTestbench tb_ideal(CellKind::k6T, pp,
                         sram::TestbenchOptions{.ideal_bitlines = true});
  const double p_periph =
      tb_periph.static_power(CellTestbench::StaticMode::kSleep) -
      tb_ideal.static_power(CellTestbench::StaticMode::kSleep);
  const double e_expected = e_model + p_periph * (t_sd + n_rw * t_sl);

  EXPECT_NEAR(e_spice, e_expected, 0.25 * e_expected)
      << "SPICE " << e_spice << " vs cell model " << e_model
      << " + periphery " << p_periph * (t_sd + n_rw * t_sl);
  EXPECT_GT(res.wave.value_at("V(Q)", tb.now() - 0.5e-9), 0.8);
}

TEST_F(IntegrationTest, NofStyleCycleCostsMoreThanNvpgStyle) {
  // Simulate the NOF pattern (store + power-off around every write) vs the
  // NVPG pattern for the same four accesses: the NOF transient must burn
  // several times more energy — the paper's run-time argument measured
  // directly in SPICE rather than through the model.
  const auto pp = PaperParams::table1();

  CellTestbench nvpg(CellKind::kNvSram, pp);
  nvpg.op_write(true);
  nvpg.op_idle(1e-9);
  const double nvpg0 = nvpg.now();
  for (int i = 0; i < 2; ++i) {
    nvpg.op_read();
    nvpg.op_write(true);
  }
  nvpg.op_store();
  const double nvpg1 = nvpg.now();
  auto res_nvpg = nvpg.run();
  const double e_nvpg = res_nvpg.energy(nvpg0, nvpg1);

  CellTestbench nof(CellKind::kNvSram, pp);
  nof.op_write(true);
  nof.op_idle(1e-9);
  nof.op_store();  // NOF keeps MTJs current at all times
  const double nof0 = nof.now();
  for (int i = 0; i < 2; ++i) {
    nof.op_shutdown(50e-9);
    nof.op_restore();
    nof.op_read();
    nof.op_shutdown(50e-9);
    nof.op_restore();
    nof.op_write(true);
    nof.op_store();  // write-back before the next power-off
  }
  const double nof1 = nof.now();
  auto res_nof = nof.run();
  const double e_nof = res_nof.energy(nof0, nof1);

  EXPECT_GT(e_nof, 1.5 * e_nvpg);
  // Both end with valid data.
  EXPECT_GT(res_nof.wave.value_at("V(Q)", nof.now() - 0.5e-9), 0.8);
}

TEST_F(IntegrationTest, StoreFreeCycleSkipsStoreEnergyInSpice) {
  // Same cycle with and without the store op: the difference must be close
  // to the characterized store energy.
  const auto pp = PaperParams::table1();
  auto run_cycle = [&](bool with_store) {
    CellTestbench tb(CellKind::kNvSram, pp);
    tb.op_write(true);
    tb.op_idle(1e-9);
    const double t0 = tb.now();
    if (with_store) tb.op_store();
    tb.op_shutdown(2e-6);
    tb.op_restore();
    const double t1 = tb.now();
    tb.op_idle(1e-9);
    auto res = tb.run();
    return res.energy(t0, t1);
  };
  const double with_store = run_cycle(true);
  const double without = run_cycle(false);
  const double delta = with_store - without;
  EXPECT_NEAR(delta, analyzer_->cell_nv().e_store,
              0.2 * analyzer_->cell_nv().e_store);
}

}  // namespace
}  // namespace nvsram
