// FinFET compact model: calibration, continuity, symmetry, derivatives.
#include <gtest/gtest.h>

#include <cmath>

#include "models/finfet.h"
#include "util/stats.h"

namespace nvsram {
namespace {

using models::FetType;
using models::FinFET;
using models::FinFETParams;

// ---- calibration against the 20 nm HP PTM headline figures ----

TEST(FinFETCalibration, NmosOnCurrentPerFin) {
  FinFET fet(models::ptm20_nmos(1));
  // W_eff = 71 nm; PTM HP is ~1.2-1.5 mA/um -> 85-107 uA per fin.
  EXPECT_GT(fet.on_current(), 50e-6);
  EXPECT_LT(fet.on_current(), 150e-6);
}

TEST(FinFETCalibration, NmosOffCurrentPerFin) {
  FinFET fet(models::ptm20_nmos(1));
  // ~100 nA/um -> ~7 nA per fin; accept a half-decade either way.
  EXPECT_GT(fet.off_current(), 1e-9);
  EXPECT_LT(fet.off_current(), 30e-9);
}

TEST(FinFETCalibration, SubthresholdSwing) {
  FinFET fet(models::ptm20_nmos(1));
  const double ss = fet.subthreshold_swing();
  EXPECT_GT(ss, 60.0);   // sub-thermal is unphysical
  EXPECT_LT(ss, 95.0);
}

TEST(FinFETCalibration, OnOffRatioIsLarge) {
  FinFET fet(models::ptm20_nmos(1));
  EXPECT_GT(fet.on_current() / fet.off_current(), 5e3);
}

TEST(FinFETCalibration, PmosWeakerThanNmos) {
  FinFET n(models::ptm20_nmos(1));
  FinFET p(models::ptm20_pmos(1));
  EXPECT_LT(p.on_current(), n.on_current());
  EXPECT_GT(p.on_current(), 0.5 * n.on_current());
}

TEST(FinFETCalibration, EffectiveWidthFromFinGeometry) {
  const auto params = models::ptm20_nmos(2);
  EXPECT_DOUBLE_EQ(params.effective_width(), 2 * (2 * 28e-9 + 15e-9));
}

TEST(FinFETCalibration, CurrentScalesWithFinCount) {
  FinFET f1(models::ptm20_nmos(1));
  FinFET f3(models::ptm20_nmos(3));
  EXPECT_NEAR(f3.on_current() / f1.on_current(), 3.0, 1e-9);
}

// ---- continuity / smoothness ----

TEST(FinFETModel, CurrentContinuousAcrossVdsZero) {
  // Near vds = 0 the device is a resistor: I(+eps) ~ -I(-eps) ~ gds * eps,
  // and the jump between the two sides must vanish to first order.
  FinFET fet(models::ptm20_nmos(1));
  const double eps = 1e-9;
  for (double vgs : {0.0, 0.3, 0.6, 0.9}) {
    const double below = fet.ids(vgs, -eps);
    const double above = fet.ids(vgs, +eps);
    const double g0 = fet.evaluate(vgs, 0.0).gds;
    EXPECT_NEAR(above, -below, 1e-6 * g0 * eps + 1e-20)
        << "asymmetry at vgs=" << vgs;
    EXPECT_NEAR(above, g0 * eps, 1e-3 * g0 * eps + 1e-20)
        << "slope mismatch at vgs=" << vgs;
  }
}

TEST(FinFETModel, ZeroVdsMeansZeroCurrent) {
  FinFET fet(models::ptm20_nmos(1));
  for (double vgs : {0.0, 0.45, 0.9}) {
    EXPECT_NEAR(fet.ids(vgs, 0.0), 0.0, 1e-15);
  }
}

TEST(FinFETModel, SourceDrainSwapAntisymmetry) {
  // Swapping source and drain must negate the current exactly:
  // I(vgs, vds) == -I(vgs - vds, -vds).
  FinFET fet(models::ptm20_nmos(1));
  for (double vgs : {0.2, 0.5, 0.9}) {
    for (double vds : {0.1, 0.4, 0.8}) {
      EXPECT_NEAR(fet.ids(vgs, vds), -fet.ids(vgs - vds, -vds),
                  1e-9 * std::fabs(fet.ids(vgs, vds)) + 1e-18);
    }
  }
}

TEST(FinFETModel, PmosMirrorsNmos) {
  FinFETParams np = models::ptm20_nmos(1);
  FinFETParams pp = np;
  pp.type = FetType::kPmos;
  FinFET n(np), p(pp);
  for (double v : {0.3, 0.6, 0.9}) {
    EXPECT_NEAR(p.ids(-v, -v), -n.ids(v, v), 1e-15);
  }
}

TEST(FinFETModel, MonotoneInVgs) {
  FinFET fet(models::ptm20_nmos(1));
  std::vector<double> currents;
  for (double vgs : util::linspace(0.0, 0.9, 60)) {
    currents.push_back(fet.ids(vgs, 0.9));
  }
  EXPECT_TRUE(util::is_monotone_nondecreasing(currents));
}

TEST(FinFETModel, MonotoneInVds) {
  FinFET fet(models::ptm20_nmos(1));
  std::vector<double> currents;
  for (double vds : util::linspace(0.0, 0.9, 60)) {
    currents.push_back(fet.ids(0.9, vds));
  }
  EXPECT_TRUE(util::is_monotone_nondecreasing(currents));
}

// ---- analytic derivatives vs finite differences ----

class FinFETDerivatives : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(FinFETDerivatives, GmMatchesFiniteDifference) {
  FinFET fet(models::ptm20_nmos(1));
  const auto [vgs, vds] = GetParam();
  const double h = 1e-6;
  const double num = (fet.ids(vgs + h, vds) - fet.ids(vgs - h, vds)) / (2 * h);
  const double ana = fet.evaluate(vgs, vds).gm;
  EXPECT_NEAR(ana, num, 1e-4 * std::max(std::fabs(num), 1e-12) + 1e-12);
}

TEST_P(FinFETDerivatives, GdsMatchesFiniteDifference) {
  FinFET fet(models::ptm20_nmos(1));
  const auto [vgs, vds] = GetParam();
  const double h = 1e-6;
  const double num = (fet.ids(vgs, vds + h) - fet.ids(vgs, vds - h)) / (2 * h);
  const double ana = fet.evaluate(vgs, vds).gds;
  EXPECT_NEAR(ana, num, 1e-4 * std::max(std::fabs(num), 1e-12) + 1e-12);
}

TEST_P(FinFETDerivatives, PmosGmMatchesFiniteDifference) {
  FinFET fet(models::ptm20_pmos(1));
  const auto [vgs, vds] = GetParam();
  const double h = 1e-6;
  const double num =
      (fet.ids(-vgs + h, -vds) - fet.ids(-vgs - h, -vds)) / (2 * h);
  const double ana = fet.evaluate(-vgs, -vds).gm;
  EXPECT_NEAR(ana, num, 1e-4 * std::max(std::fabs(num), 1e-12) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    BiasGrid, FinFETDerivatives,
    ::testing::Values(std::make_pair(0.0, 0.0), std::make_pair(0.0, 0.9),
                      std::make_pair(0.2, 0.1), std::make_pair(0.3, 0.7),
                      std::make_pair(0.5, 0.05), std::make_pair(0.5, 0.5),
                      std::make_pair(0.9, 0.9), std::make_pair(0.9, 0.02),
                      std::make_pair(0.7, -0.4), std::make_pair(0.45, -0.9)));

// ---- capacitances and validation ----

TEST(FinFETParams, CapacitancesArePositiveAndTiny) {
  const auto p = models::ptm20_nmos(1);
  EXPECT_GT(p.cgs(), 1e-18);
  EXPECT_LT(p.cgs(), 1e-15);
  EXPECT_GT(p.cjunction(), 1e-19);
  EXPECT_LT(p.cjunction(), 1e-15);
}

TEST(FinFETParams, RejectsBadParameters) {
  FinFETParams p = models::ptm20_nmos(1);
  p.fin_count = 0;
  EXPECT_THROW(FinFET{p}, std::invalid_argument);
  p = models::ptm20_nmos(1);
  p.channel_length = 0.0;
  EXPECT_THROW(FinFET{p}, std::invalid_argument);
}

TEST(FinFETParams, DescribeMentionsGeometry) {
  const auto p = models::ptm20_nmos(2);
  const auto text = p.describe();
  EXPECT_NE(text.find("2 fin"), std::string::npos);
}

// ---- DIBL behaviour ----

TEST(FinFETModel, LeakageIncreasesWithVds) {
  FinFET fet(models::ptm20_nmos(1));
  EXPECT_GT(fet.ids(0.0, 0.9), 2.0 * fet.ids(0.0, 0.3));
}

// ---- temperature behaviour ----

TEST(FinFETTemperature, LeakageGrowsStronglyWithTemperature) {
  auto cold = models::ptm20_nmos(1);
  auto hot = cold;
  hot.temperature = 358.0;  // 85 C
  FinFET f_cold(cold), f_hot(hot);
  // Subthreshold leakage roughly doubles every 10-20 K: expect >= 5x at
  // +58 K (Vth tempco + kT slope).
  EXPECT_GT(f_hot.off_current(), 5.0 * f_cold.off_current());
}

TEST(FinFETTemperature, DriveDegradesMildlyWithTemperature) {
  auto cold = models::ptm20_nmos(1);
  auto hot = cold;
  hot.temperature = 358.0;
  FinFET f_cold(cold), f_hot(hot);
  // Mobility loss dominates over the Vth drop at strong inversion.
  EXPECT_LT(f_hot.on_current(), f_cold.on_current());
  EXPECT_GT(f_hot.on_current(), 0.6 * f_cold.on_current());
}

TEST(FinFETTemperature, SubthresholdSwingScalesWithKT) {
  auto cold = models::ptm20_nmos(1);
  auto hot = cold;
  hot.temperature = 360.0;
  FinFET f_cold(cold), f_hot(hot);
  // Thermal-voltage scaling plus a window artifact: the fixed 50-150 mV
  // measurement window sits closer to the (temperature-lowered) threshold
  // when hot, flattening the extracted slope slightly beyond kT/q scaling.
  const double ratio =
      f_hot.subthreshold_swing() / f_cold.subthreshold_swing();
  EXPECT_GT(ratio, 360.0 / 300.0 - 0.03);
  EXPECT_LT(ratio, 1.5);
}

TEST(FinFETTemperature, DerivativesStayConsistentWhenHot) {
  auto hp = models::ptm20_nmos(1);
  hp.temperature = 400.0;
  FinFET fet(hp);
  const double h = 1e-6;
  for (double vgs : {0.1, 0.5, 0.9}) {
    const double num = (fet.ids(vgs + h, 0.6) - fet.ids(vgs - h, 0.6)) / (2 * h);
    EXPECT_NEAR(fet.evaluate(vgs, 0.6).gm, num,
                1e-4 * std::max(std::fabs(num), 1e-12));
  }
}

}  // namespace
}  // namespace nvsram
