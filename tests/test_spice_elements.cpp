// Element-level simulator checks: sources, RC transients against analytic
// solutions, diode Newton convergence, and energy conservation.
#include <gtest/gtest.h>

#include <cmath>

#include "spice/circuit.h"
#include "spice/dc.h"
#include "spice/elements.h"
#include "spice/tran.h"
#include "util/stats.h"

namespace nvsram {
namespace {

using spice::Circuit;
using spice::DCAnalysis;
using spice::Probe;
using spice::PulseSpec;
using spice::SourceSpec;
using spice::TranAnalysis;
using spice::TranOptions;

// ---- SourceSpec ------------------------------------------------------------

TEST(SourceSpec, DcIsConstant) {
  const auto s = SourceSpec::dc(1.5);
  EXPECT_DOUBLE_EQ(s.value(0.0), 1.5);
  EXPECT_DOUBLE_EQ(s.value(1e-3), 1.5);
}

TEST(SourceSpec, PulseShape) {
  PulseSpec p;
  p.v_initial = 0.0;
  p.v_pulsed = 1.0;
  p.delay = 1e-9;
  p.rise = 1e-10;
  p.fall = 1e-10;
  p.width = 2e-9;
  const auto s = SourceSpec::pulse(p);
  EXPECT_DOUBLE_EQ(s.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.value(0.9e-9), 0.0);
  EXPECT_NEAR(s.value(1.05e-9), 0.5, 1e-12);  // mid-rise
  EXPECT_DOUBLE_EQ(s.value(2e-9), 1.0);       // on the plateau
  EXPECT_DOUBLE_EQ(s.value(5e-9), 0.0);       // after the fall
}

TEST(SourceSpec, PulsePeriodic) {
  PulseSpec p;
  p.v_pulsed = 1.0;
  p.rise = 1e-12;
  p.fall = 1e-12;
  p.width = 1e-9;
  p.period = 4e-9;
  const auto s = SourceSpec::pulse(p);
  EXPECT_DOUBLE_EQ(s.value(0.5e-9), 1.0);
  EXPECT_DOUBLE_EQ(s.value(2e-9), 0.0);
  EXPECT_DOUBLE_EQ(s.value(4.5e-9), 1.0);  // second period
}

TEST(SourceSpec, PwlInterpolatesAndClamps) {
  const auto s = SourceSpec::pwl({{1e-9, 0.0}, {2e-9, 1.0}, {4e-9, 1.0}});
  EXPECT_DOUBLE_EQ(s.value(0.0), 0.0);      // clamp before
  EXPECT_NEAR(s.value(1.5e-9), 0.5, 1e-12);  // interior
  EXPECT_DOUBLE_EQ(s.value(9e-9), 1.0);     // clamp after
}

TEST(SourceSpec, PwlRejectsNonIncreasingTimes) {
  EXPECT_THROW(SourceSpec::pwl({{1e-9, 0.0}, {1e-9, 1.0}}),
               std::invalid_argument);
}

TEST(SourceSpec, BreakpointsInsideWindowOnly) {
  const auto s = SourceSpec::pwl({{1e-9, 0.0}, {2e-9, 1.0}, {9e-9, 1.0}});
  std::vector<double> bp;
  s.breakpoints(5e-9, bp);
  EXPECT_EQ(bp.size(), 2u);  // 1 ns and 2 ns; 9 ns beyond stop
}

// ---- DC basics ----------------------------------------------------------------

TEST(DCAnalysis, VoltageDivider) {
  Circuit ckt;
  const auto n1 = ckt.node("a");
  const auto n2 = ckt.node("b");
  ckt.add<spice::VSource>("V1", n1, spice::kGround, SourceSpec::dc(2.0));
  ckt.add<spice::Resistor>("R1", n1, n2, 1000.0);
  ckt.add<spice::Resistor>("R2", n2, spice::kGround, 3000.0);
  DCAnalysis dc(ckt);
  const auto sol = dc.solve();
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR(sol->node_voltage(n2), 1.5, 1e-6);
}

TEST(DCAnalysis, VSourceBranchCurrent) {
  Circuit ckt;
  const auto n1 = ckt.node("a");
  auto* v = ckt.add<spice::VSource>("V1", n1, spice::kGround, SourceSpec::dc(1.0));
  ckt.add<spice::Resistor>("R1", n1, spice::kGround, 100.0);
  DCAnalysis dc(ckt);
  const auto sol = dc.solve();
  ASSERT_TRUE(sol.has_value());
  // 10 mA delivered: branch current (+ -> - internally) is -10 mA.
  EXPECT_NEAR(sol->device_current(*v), -0.01, 1e-9);
  EXPECT_NEAR(v->delivered_power(sol->view(), 0.0), 0.01, 1e-9);
}

TEST(DCAnalysis, CurrentSourceIntoResistor) {
  Circuit ckt;
  const auto n1 = ckt.node("a");
  ckt.add<spice::ISource>("I1", spice::kGround, n1, SourceSpec::dc(1e-3));
  ckt.add<spice::Resistor>("R1", n1, spice::kGround, 2000.0);
  DCAnalysis dc(ckt);
  const auto sol = dc.solve();
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR(sol->node_voltage(n1), 2.0, 1e-6);
}

TEST(DCAnalysis, DiodeResistorOperatingPoint) {
  // 1 V source, 1 kOhm, diode to ground: V_D ~ n Vt ln(I/Is).
  Circuit ckt;
  const auto n1 = ckt.node("a");
  const auto n2 = ckt.node("d");
  ckt.add<spice::VSource>("V1", n1, spice::kGround, SourceSpec::dc(1.0));
  ckt.add<spice::Resistor>("R1", n1, n2, 1000.0);
  ckt.add<spice::Diode>("D1", n2, spice::kGround);
  DCAnalysis dc(ckt);
  const auto sol = dc.solve();
  ASSERT_TRUE(sol.has_value());
  const double vd = sol->node_voltage(n2);
  EXPECT_GT(vd, 0.4);
  EXPECT_LT(vd, 0.75);
  // KCL: resistor current equals diode current.
  const double ir = (1.0 - vd) / 1000.0;
  const double id = 1e-14 * (std::exp(vd / 0.02585) - 1.0);
  EXPECT_NEAR(ir, id, ir * 0.01);
}

TEST(DCAnalysis, FloatingNodeHandledByGmin) {
  Circuit ckt;
  const auto n1 = ckt.node("a");
  const auto n2 = ckt.node("float");
  ckt.add<spice::VSource>("V1", n1, spice::kGround, SourceSpec::dc(1.0));
  ckt.add<spice::Capacitor>("C1", n1, n2, 1e-15);
  DCAnalysis dc(ckt);
  const auto sol = dc.solve();
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR(sol->node_voltage(n2), 0.0, 1e-6);
}

// ---- transient accuracy --------------------------------------------------------

TEST(TranAnalysis, RcChargingMatchesAnalytic) {
  // Step 0 -> 1 V into R = 1k, C = 1 pF; tau = 1 ns.
  Circuit ckt;
  const auto n_in = ckt.node("in");
  const auto n_out = ckt.node("out");
  PulseSpec p;
  p.v_initial = 0.0;
  p.v_pulsed = 1.0;
  p.delay = 0.1e-9;
  p.rise = 1e-12;
  p.width = 100e-9;
  ckt.add<spice::VSource>("V1", n_in, spice::kGround, SourceSpec::pulse(p));
  ckt.add<spice::Resistor>("R1", n_in, n_out, 1000.0);
  ckt.add<spice::Capacitor>("C1", n_out, spice::kGround, 1e-12);

  TranOptions opt;
  opt.t_stop = 8e-9;
  TranAnalysis tran(ckt, opt, {Probe::node_voltage(n_out, "V(out)")});
  const auto wave = tran.run();

  const double tau = 1e-9;
  for (double t : {1e-9, 2e-9, 3e-9, 5e-9}) {
    const double expected = 1.0 - std::exp(-(t - 0.1e-9 - 0.5e-12) / tau);
    EXPECT_NEAR(wave.value_at("V(out)", t), expected, 0.01)
        << "mismatch at t=" << t;
  }
}

TEST(TranAnalysis, RcEnergyConservation) {
  // After a full charge, the source has delivered C V^2 (half stored, half
  // dissipated in R).
  Circuit ckt;
  const auto n_in = ckt.node("in");
  const auto n_out = ckt.node("out");
  PulseSpec p;
  p.v_initial = 0.0;
  p.v_pulsed = 1.0;
  p.delay = 0.1e-9;
  p.rise = 1e-12;
  p.width = 1.0;  // stays high
  auto* src =
      ckt.add<spice::VSource>("V1", n_in, spice::kGround, SourceSpec::pulse(p));
  ckt.add<spice::Resistor>("R1", n_in, n_out, 1000.0);
  ckt.add<spice::Capacitor>("C1", n_out, spice::kGround, 1e-12);

  TranOptions opt;
  opt.t_stop = 20e-9;  // 20 tau
  TranAnalysis tran(ckt, opt, {Probe::node_voltage(n_out, "V(out)")});
  (void)tran.run();
  EXPECT_NEAR(tran.source_energy(src->name()), 1e-12, 2e-14);
}

TEST(TranAnalysis, BackwardEulerAlsoAccurate) {
  Circuit ckt;
  const auto n_in = ckt.node("in");
  const auto n_out = ckt.node("out");
  ckt.add<spice::VSource>("V1", n_in, spice::kGround,
                          SourceSpec::pwl({{0.1e-9, 0.0}, {0.101e-9, 1.0}}));
  ckt.add<spice::Resistor>("R1", n_in, n_out, 1000.0);
  ckt.add<spice::Capacitor>("C1", n_out, spice::kGround, 1e-12);

  TranOptions opt;
  opt.t_stop = 6e-9;
  opt.method = spice::IntegrationMethod::kBackwardEuler;
  TranAnalysis tran(ckt, opt, {Probe::node_voltage(n_out, "V(out)")});
  const auto wave = tran.run();
  const double t = 2.1e-9;
  const double expected = 1.0 - std::exp(-(t - 0.1005e-9) / 1e-9);
  EXPECT_NEAR(wave.value_at("V(out)", t), expected, 0.02);
}

TEST(TranAnalysis, CapacitorDividerStep) {
  // Two series capacitors divide a fast step by the inverse-C ratio.
  Circuit ckt;
  const auto n_in = ckt.node("in");
  const auto n_mid = ckt.node("mid");
  ckt.add<spice::VSource>("V1", n_in, spice::kGround,
                          SourceSpec::pwl({{1e-9, 0.0}, {1.01e-9, 1.0}}));
  ckt.add<spice::Capacitor>("C1", n_in, n_mid, 3e-15);
  ckt.add<spice::Capacitor>("C2", n_mid, spice::kGround, 1e-15);

  TranOptions opt;
  opt.t_stop = 2e-9;
  TranAnalysis tran(ckt, opt, {Probe::node_voltage(n_mid, "V(mid)")});
  const auto wave = tran.run();
  EXPECT_NEAR(wave.value_at("V(mid)", 1.5e-9), 0.75, 0.02);
}

TEST(TranAnalysis, StatsReportProgress) {
  Circuit ckt;
  const auto n_in = ckt.node("in");
  ckt.add<spice::VSource>("V1", n_in, spice::kGround, SourceSpec::dc(1.0));
  ckt.add<spice::Resistor>("R1", n_in, spice::kGround, 1000.0);
  TranOptions opt;
  opt.t_stop = 1e-9;
  TranAnalysis tran(ckt, opt, {});
  (void)tran.run();
  EXPECT_GT(tran.stats().accepted_steps, 10u);
}

TEST(TranAnalysis, MaxSamplesDecimatesRecording) {
  Circuit ckt;
  const auto n_in = ckt.node("in");
  const auto n_out = ckt.node("out");
  PulseSpec p;
  p.v_pulsed = 1.0;
  p.rise = 1e-11;
  p.fall = 1e-11;
  p.width = 0.4e-9;
  p.period = 1e-9;
  ckt.add<spice::VSource>("V1", n_in, spice::kGround, SourceSpec::pulse(p));
  ckt.add<spice::Resistor>("R1", n_in, n_out, 1e3);
  ckt.add<spice::Capacitor>("C1", n_out, spice::kGround, 0.05e-12);

  TranOptions dense_opt;
  dense_opt.t_stop = 20e-9;
  TranAnalysis dense(ckt, dense_opt, {Probe::node_voltage(n_out, "out")});
  const auto wave_dense = dense.run();

  TranOptions thin_opt = dense_opt;
  thin_opt.max_samples = 40;
  TranAnalysis thin(ckt, thin_opt, {Probe::node_voltage(n_out, "out")});
  const auto wave_thin = thin.run();

  EXPECT_LT(wave_thin.samples(), wave_dense.samples() / 4);
  EXPECT_GE(wave_thin.samples(), 40u);  // roughly the requested resolution
  // Energy accounting is unaffected by recording decimation.
  EXPECT_NEAR(thin.source_energy("V1"), dense.source_energy("V1"),
              1e-3 * std::fabs(dense.source_energy("V1")));
}

TEST(TranAnalysis, RejectsNonPositiveStop) {
  Circuit ckt;
  const auto n_in = ckt.node("in");
  ckt.add<spice::VSource>("V1", n_in, spice::kGround, SourceSpec::dc(1.0));
  ckt.add<spice::Resistor>("R1", n_in, spice::kGround, 1000.0);
  TranOptions opt;
  opt.t_stop = 0.0;
  TranAnalysis tran(ckt, opt, {});
  EXPECT_THROW(tran.run(), std::invalid_argument);
}

}  // namespace
}  // namespace nvsram
