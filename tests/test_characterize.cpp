// CellCharacterizer: sanity and consistency of the quantities handed to the
// architecture-level energy model.
#include <gtest/gtest.h>

#include "models/paper_params.h"
#include "sram/characterize.h"

namespace nvsram {
namespace {

using models::PaperParams;
using sram::CellCharacterizer;
using sram::CellEnergetics;
using sram::CellKind;

class CharacterizeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto pp = PaperParams::table1();
    CellCharacterizer ch(pp);
    cell_6t_ = new CellEnergetics(ch.characterize(CellKind::k6T));
    cell_nv_ = new CellEnergetics(ch.characterize(CellKind::kNvSram));
  }
  static void TearDownTestSuite() {
    delete cell_6t_;
    delete cell_nv_;
    cell_6t_ = nullptr;
    cell_nv_ = nullptr;
  }
  static CellEnergetics* cell_6t_;
  static CellEnergetics* cell_nv_;
};

CellEnergetics* CharacterizeTest::cell_6t_ = nullptr;
CellEnergetics* CharacterizeTest::cell_nv_ = nullptr;

TEST_F(CharacterizeTest, ClockPeriodMatchesTable1) {
  EXPECT_NEAR(cell_6t_->t_clk, 1.0 / 300e6, 1e-12);
}

TEST_F(CharacterizeTest, AccessEnergiesFemtojouleScale) {
  for (const auto* c : {cell_6t_, cell_nv_}) {
    EXPECT_GT(c->e_read, 0.1e-15);
    EXPECT_LT(c->e_read, 100e-15);
    EXPECT_GT(c->e_write, 0.1e-15);
    EXPECT_LT(c->e_write, 100e-15);
  }
}

TEST_F(CharacterizeTest, NvAccessCostsSlightlyMore) {
  // Extra junction/MTJ loading on the storage nodes.
  EXPECT_GE(cell_nv_->e_read, cell_6t_->e_read);
  EXPECT_GE(cell_nv_->e_write, cell_6t_->e_write);
  EXPECT_LT(cell_nv_->e_write, 2.0 * cell_6t_->e_write);
}

TEST_F(CharacterizeTest, StaticPowerLadder) {
  for (const auto* c : {cell_6t_, cell_nv_}) {
    EXPECT_GT(c->p_static_normal, c->p_static_sleep);
    EXPECT_GT(c->p_static_sleep, c->p_static_shutdown);
    // Super cutoff: at least two orders below sleep (Fig. 6(c)).
    EXPECT_LT(c->p_static_shutdown, 0.01 * c->p_static_sleep);
  }
}

TEST_F(CharacterizeTest, NvLeakageComparableTo6T) {
  // V_CTRL control makes the NV-SRAM static power comparable (Fig. 6(c)).
  EXPECT_LT(cell_nv_->p_static_normal, 1.10 * cell_6t_->p_static_normal);
  EXPECT_GE(cell_nv_->p_static_normal, cell_6t_->p_static_normal);
}

TEST_F(CharacterizeTest, StoreTimingMatchesTable1) {
  // Two steps of (10 ns pulse + margin).
  EXPECT_GE(cell_nv_->t_store, 2 * 10e-9);
  EXPECT_LT(cell_nv_->t_store, 2 * 16e-9);
}

TEST_F(CharacterizeTest, StoreAndRestoreVerifiedBySimulation) {
  EXPECT_TRUE(cell_nv_->store_verified);
  EXPECT_TRUE(cell_nv_->restore_verified);
}

TEST_F(CharacterizeTest, StoreEnergyScale) {
  // ~ 2 x (VDD * 1.5 Ic * 10 ns) plus overheads: hundreds of fJ.
  EXPECT_GT(cell_nv_->e_store, 100e-15);
  EXPECT_LT(cell_nv_->e_store, 2000e-15);
}

TEST_F(CharacterizeTest, RestoreCheaperThanStore) {
  EXPECT_LT(cell_nv_->e_restore, 0.3 * cell_nv_->e_store);
  EXPECT_GT(cell_nv_->e_restore, 0.0);
}

TEST_F(CharacterizeTest, SixTHasNoNonvolatileNumbers) {
  EXPECT_DOUBLE_EQ(cell_6t_->e_store, 0.0);
  EXPECT_DOUBLE_EQ(cell_6t_->t_store, 0.0);
  EXPECT_DOUBLE_EQ(cell_6t_->e_restore, 0.0);
  EXPECT_FALSE(cell_6t_->store_verified);
}

TEST_F(CharacterizeTest, SleepTransitionIsSmall) {
  for (const auto* c : {cell_6t_, cell_nv_}) {
    EXPECT_GE(c->e_sleep_transition, 0.0);
    EXPECT_LT(c->e_sleep_transition, 50e-15);
  }
}

TEST_F(CharacterizeTest, DescribeMentionsVerification) {
  const auto text = cell_nv_->describe();
  EXPECT_NE(text.find("[verified]"), std::string::npos);
  EXPECT_EQ(text.find("NOT VERIFIED"), std::string::npos);
}

TEST(CharacterizeHot, TemperatureRaisesLeakageAndShrinksBet) {
  auto hot_pp = PaperParams::table1();
  hot_pp.temperature = 358.0;  // 85 C
  CellCharacterizer cold(PaperParams::table1());
  CellCharacterizer hot(hot_pp);
  const auto nv_cold = cold.characterize(CellKind::kNvSram);
  const auto nv_hot = hot.characterize(CellKind::kNvSram);
  EXPECT_TRUE(nv_hot.store_verified);
  EXPECT_TRUE(nv_hot.restore_verified);
  EXPECT_GT(nv_hot.p_static_normal, 3.0 * nv_cold.p_static_normal);
  EXPECT_GT(nv_hot.p_static_sleep, 3.0 * nv_cold.p_static_sleep);
}

TEST(CharacterizeFast, FastVariantStoresLess) {
  // Fig. 9(b) technology: Jc = 1e6 A/cm^2 -> 5x lower Ic -> cheaper store.
  CellCharacterizer slow(PaperParams::table1());
  CellCharacterizer fast(PaperParams::table1_fast());
  const auto nv_slow = slow.characterize(CellKind::kNvSram);
  const auto nv_fast = fast.characterize(CellKind::kNvSram);
  EXPECT_TRUE(nv_fast.store_verified);
  EXPECT_TRUE(nv_fast.restore_verified);
  EXPECT_LT(nv_fast.e_store, 0.5 * nv_slow.e_store);
  EXPECT_NEAR(nv_fast.t_clk, 1e-9, 1e-12);
}

}  // namespace
}  // namespace nvsram
