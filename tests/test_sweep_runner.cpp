// SweepRunner resilience: skip-and-record, retries, watchdog timeouts,
// checkpoint/resume byte-identity, staleness rejection, env-var drills.
//
// The default RunnerOptions run the worker pool (threads = 0 = auto), so
// these callbacks execute concurrently: captured counters are atomic.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "runner/checkpoint.h"
#include "runner/sweep_runner.h"
#include "util/watchdog.h"

namespace nvsram::runner {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Each test gets its own CSV path under the gtest temp dir.
std::string tmp_csv(const std::string& tag) {
  return ::testing::TempDir() + "sweep_" + tag + ".csv";
}

RunnerOptions base_options(const std::string& tag) {
  RunnerOptions opts;
  opts.csv_path = tmp_csv(tag);
  opts.csv_columns = {"x", "y"};
  return opts;
}

// y = x^2, one row per point.
Rows square_point(const PointContext& pc) {
  const double x = static_cast<double>(pc.index);
  return {{x, x * x}};
}

TEST(SweepRunner, AllPointsSucceed) {
  SweepRunner run("ok", base_options("ok"));
  const auto s = run.run(5, square_point);
  EXPECT_TRUE(s.all_ok());
  EXPECT_EQ(s.completed, 5u);
  EXPECT_EQ(s.failed, 0u);
  ASSERT_EQ(s.rows.size(), 5u);
  EXPECT_EQ(s.rows[3].front()[1], 9.0);
  // CSV: header + 5 rows; empty manifest (header only).
  EXPECT_EQ(slurp(s.csv_path).substr(0, 4), "x,y\n");
  EXPECT_EQ(slurp(s.manifest_path), "point,status,attempts,error\n");
  // Fully successful sweep leaves no checkpoint behind.
  EXPECT_TRUE(checkpoint::load(run.options().checkpoint_path, "ok",
                               {"x", "y"}, 5)
                  .empty());
}

TEST(SweepRunner, FailingPointIsSkippedAndRecorded) {
  auto opts = base_options("fail");
  opts.max_attempts = 2;
  SweepRunner run("fail", opts);
  std::atomic<int> attempts_at_2{0};
  const auto s = run.run(5, [&](const PointContext& pc) -> Rows {
    if (pc.index == 2) {
      ++attempts_at_2;
      throw std::runtime_error("synthetic, failure");
    }
    return square_point(pc);
  });
  EXPECT_FALSE(s.all_ok());
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.completed, 4u);
  EXPECT_EQ(attempts_at_2.load(), 2);  // retried once
  EXPECT_FALSE(s.point_ok(2));
  EXPECT_TRUE(s.rows[2].empty());
  EXPECT_EQ(s.outcomes[2].status, PointStatus::kFailed);
  // The CSV holds every other point, in order.
  EXPECT_EQ(slurp(s.csv_path),
            "x,y\n"
            "0.000000e+00,0.000000e+00\n"
            "1.000000e+00,1.000000e+00\n"
            "3.000000e+00,9.000000e+00\n"
            "4.000000e+00,1.600000e+01\n");
  // Manifest lists the point; the comma inside the message is sanitized.
  const std::string manifest = slurp(s.manifest_path);
  EXPECT_NE(manifest.find("2,failed,2,synthetic; failure"), std::string::npos);
}

TEST(SweepRunner, RetrySucceedsAndCountsAsRecovered) {
  auto opts = base_options("retry");
  opts.max_attempts = 3;
  SweepRunner run("retry", opts);
  const auto s = run.run(3, [&](const PointContext& pc) -> Rows {
    if (pc.index == 1 && pc.attempt == 0) throw std::runtime_error("flaky");
    return square_point(pc);
  });
  EXPECT_TRUE(s.all_ok());
  EXPECT_EQ(s.outcomes[1].status, PointStatus::kRecovered);
  EXPECT_EQ(s.outcomes[1].attempts, 2);
}

TEST(SweepRunner, WatchdogTimeoutIsTerminalAndNotRetried) {
  auto opts = base_options("timeout");
  opts.max_attempts = 3;
  opts.point_timeout_sec = 0.25;
  SweepRunner run("timeout", opts);
  std::atomic<int> attempts_at_1{0};
  const auto s = run.run(3, [&](const PointContext& pc) -> Rows {
    EXPECT_EQ(pc.timeout_sec, 0.25);
    if (pc.index == 1) {
      ++attempts_at_1;
      throw util::WatchdogError("test point", pc.timeout_sec);
    }
    return square_point(pc);
  });
  EXPECT_EQ(s.timeouts, 1u);
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(attempts_at_1.load(), 1);  // timeouts are not retried
  EXPECT_EQ(s.outcomes[1].status, PointStatus::kTimeout);
  EXPECT_NE(slurp(s.manifest_path).find("1,timeout,1,"), std::string::npos);
}

TEST(SweepRunner, InterruptedRunResumesByteIdentical) {
  // Reference: one uninterrupted run.
  SweepRunner ref("resume", base_options("resume_ref"));
  const auto s_ref = ref.run(6, square_point);

  // Drill: stop after point 2, then rerun the same sweep to completion.
  auto opts = base_options("resume");
  opts.stop_after_point = 2;
  const auto s1 = SweepRunner("resume", opts).run(6, square_point);
  EXPECT_TRUE(s1.interrupted);
  EXPECT_EQ(s1.completed, 3u);

  auto opts2 = base_options("resume");
  std::atomic<int> fresh_calls{0};
  const auto s2 = SweepRunner("resume", opts2).run(6, [&](const PointContext& pc) {
    ++fresh_calls;
    EXPECT_GT(pc.index, 2u);  // completed points must not be recomputed
    return square_point(pc);
  });
  EXPECT_TRUE(s2.all_ok());
  EXPECT_EQ(s2.resumed, 3u);
  EXPECT_EQ(fresh_calls.load(), 3);
  EXPECT_EQ(s2.outcomes[0].status, PointStatus::kResumed);
  EXPECT_EQ(slurp(s2.csv_path), slurp(s_ref.csv_path));
}

TEST(SweepRunner, StaleCheckpointIsIgnored) {
  // Complete half a sweep under one name, then reuse the checkpoint path
  // for a different runner name and for different columns: both must
  // recompute from scratch instead of splicing foreign rows in.
  auto opts = base_options("stale");
  opts.stop_after_point = 1;
  (void)SweepRunner("stale", opts).run(4, square_point);

  const std::string ckpt = opts.csv_path + ".ckpt";
  // Sanity: the matching (name, columns) pair does load...
  EXPECT_EQ(checkpoint::load(ckpt, "stale", {"x", "y"}, 4).size(), 2u);
  // ...but a column mismatch is stale,
  EXPECT_TRUE(
      checkpoint::load(ckpt, "stale", {"different", "columns"}, 4).empty());
  // and so is a name mismatch: the foreign runner recomputes every point.
  auto opts2 = base_options("stale");
  opts2.checkpoint_path = ckpt;
  const auto s = SweepRunner("other-name", opts2).run(4, square_point);
  EXPECT_EQ(s.resumed, 0u);
}

TEST(SweepRunner, CheckpointingCanBeDisabled) {
  auto opts = base_options("nockpt");
  opts.checkpoint = false;
  opts.stop_after_point = 1;
  (void)SweepRunner("nockpt", opts).run(4, square_point);

  auto opts2 = base_options("nockpt");
  opts2.checkpoint = false;
  const auto s = SweepRunner("nockpt", opts2).run(4, square_point);
  EXPECT_EQ(s.resumed, 0u);
  EXPECT_EQ(s.completed, 4u);
}

TEST(SweepRunner, EnvDrillsAreScopedByRunnerName) {
  ::setenv("NVSRAM_SWEEP_FAULT", "envtest:1", 1);
  ::setenv("NVSRAM_SWEEP_RETRIES", "1", 1);
  auto opts = base_options("env");
  opts.apply_env("envtest");
  EXPECT_EQ(opts.fault_point, 1);
  EXPECT_EQ(opts.max_attempts, 1);
  auto other = base_options("env2");
  other.apply_env("otherrunner");  // fault scoped to "envtest" only
  EXPECT_EQ(other.fault_point, -1);
  ::unsetenv("NVSRAM_SWEEP_FAULT");
  ::unsetenv("NVSRAM_SWEEP_RETRIES");

  const auto s = SweepRunner("envtest", opts).run(3, square_point);
  EXPECT_EQ(s.failed, 1u);
  EXPECT_FALSE(s.point_ok(1));
}

TEST(SweepRunner, RowWidthMismatchIsAHarnessError) {
  SweepRunner run("width", base_options("width"));
  EXPECT_THROW((void)run.run(1,
                             [](const PointContext&) -> Rows {
                               return {{1.0, 2.0, 3.0}};  // 3 values, 2 cols
                             }),
               std::runtime_error);
}

}  // namespace
}  // namespace nvsram::runner
