// SweepRunner resilience: skip-and-record, retries, watchdog timeouts,
// checkpoint/resume byte-identity, staleness rejection, env-var drills.
//
// The default RunnerOptions run the worker pool (threads = 0 = auto), so
// these callbacks execute concurrently: captured counters are atomic.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "runner/checkpoint.h"
#include "runner/sweep_runner.h"
#include "util/watchdog.h"

namespace nvsram::runner {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Each test gets its own CSV path under the gtest temp dir.
std::string tmp_csv(const std::string& tag) {
  return ::testing::TempDir() + "sweep_" + tag + ".csv";
}

RunnerOptions base_options(const std::string& tag) {
  RunnerOptions opts;
  opts.csv_path = tmp_csv(tag);
  opts.csv_columns = {"x", "y"};
  return opts;
}

// y = x^2, one row per point.
Rows square_point(const PointContext& pc) {
  const double x = static_cast<double>(pc.index);
  return {{x, x * x}};
}

TEST(SweepRunner, AllPointsSucceed) {
  SweepRunner run("ok", base_options("ok"));
  const auto s = run.run(5, square_point);
  EXPECT_TRUE(s.all_ok());
  EXPECT_EQ(s.completed, 5u);
  EXPECT_EQ(s.failed, 0u);
  ASSERT_EQ(s.rows.size(), 5u);
  EXPECT_EQ(s.rows[3].front()[1], 9.0);
  // CSV: header + 5 rows; empty manifest (header only).
  EXPECT_EQ(slurp(s.csv_path).substr(0, 4), "x,y\n");
  EXPECT_EQ(slurp(s.manifest_path), "point,status,attempts,backoff_ms,error\n");
  // Fully successful sweep leaves no checkpoint behind.
  EXPECT_TRUE(checkpoint::load(run.options().checkpoint_path, "ok",
                               {"x", "y"}, 5)
                  .empty());
}

TEST(SweepRunner, FailingPointIsSkippedAndRecorded) {
  auto opts = base_options("fail");
  opts.max_attempts = 2;
  SweepRunner run("fail", opts);
  std::atomic<int> attempts_at_2{0};
  const auto s = run.run(5, [&](const PointContext& pc) -> Rows {
    if (pc.index == 2) {
      ++attempts_at_2;
      throw std::runtime_error("synthetic, failure");
    }
    return square_point(pc);
  });
  EXPECT_FALSE(s.all_ok());
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.completed, 4u);
  EXPECT_EQ(attempts_at_2.load(), 2);  // retried once
  EXPECT_FALSE(s.point_ok(2));
  EXPECT_TRUE(s.rows[2].empty());
  EXPECT_EQ(s.outcomes[2].status, PointStatus::kFailed);
  // The CSV holds every other point, in order.
  EXPECT_EQ(slurp(s.csv_path),
            "x,y\n"
            "0.000000e+00,0.000000e+00\n"
            "1.000000e+00,1.000000e+00\n"
            "3.000000e+00,9.000000e+00\n"
            "4.000000e+00,1.600000e+01\n");
  // Manifest lists the point with its scheduled backoff delay; the comma
  // inside the message is sanitized.
  const std::string manifest = slurp(s.manifest_path);
  char expect[128];
  std::snprintf(expect, sizeof(expect), "2,failed,2,%.6g,synthetic; failure",
                detail::retry_backoff_ms(run.options(), 2, 1));
  EXPECT_NE(manifest.find(expect), std::string::npos) << manifest;
}

TEST(SweepRunner, RetrySucceedsAndCountsAsRecovered) {
  auto opts = base_options("retry");
  opts.max_attempts = 3;
  SweepRunner run("retry", opts);
  const auto s = run.run(3, [&](const PointContext& pc) -> Rows {
    if (pc.index == 1 && pc.attempt == 0) throw std::runtime_error("flaky");
    return square_point(pc);
  });
  EXPECT_TRUE(s.all_ok());
  EXPECT_EQ(s.outcomes[1].status, PointStatus::kRecovered);
  EXPECT_EQ(s.outcomes[1].attempts, 2);
}

TEST(SweepRunner, WatchdogTimeoutIsTerminalAndNotRetried) {
  auto opts = base_options("timeout");
  opts.max_attempts = 3;
  opts.point_timeout_sec = 0.25;
  SweepRunner run("timeout", opts);
  std::atomic<int> attempts_at_1{0};
  const auto s = run.run(3, [&](const PointContext& pc) -> Rows {
    EXPECT_EQ(pc.timeout_sec, 0.25);
    if (pc.index == 1) {
      ++attempts_at_1;
      throw util::WatchdogError("test point", pc.timeout_sec);
    }
    return square_point(pc);
  });
  EXPECT_EQ(s.timeouts, 1u);
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(attempts_at_1.load(), 1);  // timeouts are not retried
  EXPECT_EQ(s.outcomes[1].status, PointStatus::kTimeout);
  EXPECT_NE(slurp(s.manifest_path).find("1,timeout,1,"), std::string::npos);
}

TEST(SweepRunner, InterruptedRunResumesByteIdentical) {
  // Reference: one uninterrupted run.
  SweepRunner ref("resume", base_options("resume_ref"));
  const auto s_ref = ref.run(6, square_point);

  // Drill: stop after point 2, then rerun the same sweep to completion.
  auto opts = base_options("resume");
  opts.stop_after_point = 2;
  const auto s1 = SweepRunner("resume", opts).run(6, square_point);
  EXPECT_TRUE(s1.interrupted);
  EXPECT_EQ(s1.completed, 3u);

  auto opts2 = base_options("resume");
  std::atomic<int> fresh_calls{0};
  const auto s2 = SweepRunner("resume", opts2).run(6, [&](const PointContext& pc) {
    ++fresh_calls;
    EXPECT_GT(pc.index, 2u);  // completed points must not be recomputed
    return square_point(pc);
  });
  EXPECT_TRUE(s2.all_ok());
  EXPECT_EQ(s2.resumed, 3u);
  EXPECT_EQ(fresh_calls.load(), 3);
  EXPECT_EQ(s2.outcomes[0].status, PointStatus::kResumed);
  EXPECT_EQ(slurp(s2.csv_path), slurp(s_ref.csv_path));
}

TEST(SweepRunner, StaleCheckpointIsIgnored) {
  // Complete half a sweep under one name, then reuse the checkpoint path
  // for a different runner name and for different columns: both must
  // recompute from scratch instead of splicing foreign rows in.
  auto opts = base_options("stale");
  opts.stop_after_point = 1;
  (void)SweepRunner("stale", opts).run(4, square_point);

  const std::string ckpt = opts.csv_path + ".ckpt";
  // Sanity: the matching (name, columns) pair does load...
  EXPECT_EQ(checkpoint::load(ckpt, "stale", {"x", "y"}, 4).size(), 2u);
  // ...but a column mismatch is stale,
  EXPECT_TRUE(
      checkpoint::load(ckpt, "stale", {"different", "columns"}, 4).empty());
  // and so is a name mismatch: the foreign runner recomputes every point.
  auto opts2 = base_options("stale");
  opts2.checkpoint_path = ckpt;
  const auto s = SweepRunner("other-name", opts2).run(4, square_point);
  EXPECT_EQ(s.resumed, 0u);
}

TEST(SweepRunner, CheckpointingCanBeDisabled) {
  auto opts = base_options("nockpt");
  opts.checkpoint = false;
  opts.stop_after_point = 1;
  (void)SweepRunner("nockpt", opts).run(4, square_point);

  auto opts2 = base_options("nockpt");
  opts2.checkpoint = false;
  const auto s = SweepRunner("nockpt", opts2).run(4, square_point);
  EXPECT_EQ(s.resumed, 0u);
  EXPECT_EQ(s.completed, 4u);
}

TEST(SweepRunner, EnvDrillsAreScopedByRunnerName) {
  ::setenv("NVSRAM_SWEEP_FAULT", "envtest:1", 1);
  ::setenv("NVSRAM_SWEEP_RETRIES", "1", 1);
  auto opts = base_options("env");
  opts.apply_env("envtest");
  EXPECT_EQ(opts.fault_point, 1);
  EXPECT_EQ(opts.max_attempts, 1);
  auto other = base_options("env2");
  other.apply_env("otherrunner");  // fault scoped to "envtest" only
  EXPECT_EQ(other.fault_point, -1);
  ::unsetenv("NVSRAM_SWEEP_FAULT");
  ::unsetenv("NVSRAM_SWEEP_RETRIES");

  const auto s = SweepRunner("envtest", opts).run(3, square_point);
  EXPECT_EQ(s.failed, 1u);
  EXPECT_FALSE(s.point_ok(1));
}

// ---- retry backoff (exponential + deterministic jitter) ----

TEST(SweepBackoff, ScheduleIsDeterministicAndExponential) {
  RunnerOptions opts;
  opts.retry_backoff_ms = 10.0;
  opts.retry_backoff_cap_ms = 1000.0;
  // Pure function of (options, point, attempt): identical on every call.
  for (std::size_t p : {0u, 3u, 17u}) {
    for (int a = 1; a <= 4; ++a) {
      EXPECT_EQ(detail::retry_backoff_ms(opts, p, a),
                detail::retry_backoff_ms(opts, p, a));
    }
  }
  // Exponential envelope: base * 2^(a-1) <= delay <= 1.5x that (jitter).
  for (int a = 1; a <= 4; ++a) {
    const double d = detail::retry_backoff_ms(opts, 5, a);
    const double lo = 10.0 * (1 << (a - 1));
    EXPECT_GE(d, lo);
    EXPECT_LE(d, 1.5 * lo);
  }
  // Jitter is seeded from the point index: distinct points decorrelate.
  EXPECT_NE(detail::retry_backoff_ms(opts, 1, 1),
            detail::retry_backoff_ms(opts, 2, 1));
  // The cap bounds the exponential.
  EXPECT_LE(detail::retry_backoff_ms(opts, 1, 30), 1.5 * 1000.0);
  // Attempt 0 (first try) and disabled backoff cost nothing.
  EXPECT_EQ(detail::retry_backoff_ms(opts, 1, 0), 0.0);
  opts.retry_backoff_ms = 0.0;
  EXPECT_EQ(detail::retry_backoff_ms(opts, 1, 3), 0.0);
}

TEST(SweepBackoff, DelaysAreRecordedPerAttempt) {
  auto opts = base_options("backoff");
  opts.max_attempts = 3;
  opts.retry_backoff_ms = 1.0;  // fast but nonzero
  SweepRunner run("backoff", opts);
  const auto s = run.run(3, [&](const PointContext& pc) -> Rows {
    if (pc.index == 1) throw std::runtime_error("always fails");
    return square_point(pc);
  });
  ASSERT_EQ(s.outcomes[1].attempts, 3);
  ASSERT_EQ(s.outcomes[1].backoff_ms.size(), 2u);  // before attempts 1 and 2
  EXPECT_EQ(s.outcomes[1].backoff_ms[0], detail::retry_backoff_ms(opts, 1, 1));
  EXPECT_EQ(s.outcomes[1].backoff_ms[1], detail::retry_backoff_ms(opts, 1, 2));
  // Successful points record no delays.
  EXPECT_TRUE(s.outcomes[0].backoff_ms.empty());
}

TEST(SweepBackoff, RespawnScheduleIsDeterministic) {
  RunnerOptions opts;
  EXPECT_EQ(detail::respawn_backoff_ms(opts, 0, 1),
            detail::respawn_backoff_ms(opts, 0, 1));
  EXPECT_NE(detail::respawn_backoff_ms(opts, 0, 1),
            detail::respawn_backoff_ms(opts, 1, 1));
  EXPECT_GT(detail::respawn_backoff_ms(opts, 0, 3),
            detail::respawn_backoff_ms(opts, 0, 0));
}

// ---- strict NVSRAM_SWEEP_* parsing ----

TEST(SweepEnv, MalformedValuesThrowNamingTheVariable) {
  auto check_throws = [](const char* var, const char* value,
                         const char* needle) {
    ::setenv(var, value, 1);
    RunnerOptions opts;
    try {
      opts.apply_env("envstrict");
      ADD_FAILURE() << var << "=" << value << " did not throw";
    } catch (const RunnerError& e) {
      EXPECT_NE(std::string(e.what()).find(var), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
    ::unsetenv(var);
  };
  check_throws("NVSRAM_SWEEP_THREADS", "four", "expected an integer");
  check_throws("NVSRAM_SWEEP_THREADS", "4x", "expected an integer");
  check_throws("NVSRAM_SWEEP_THREADS", "-2", "outside");
  check_throws("NVSRAM_SWEEP_RETRIES", "0", "outside");
  check_throws("NVSRAM_SWEEP_TIMEOUT", "soon", "expected a number");
  check_throws("NVSRAM_SWEEP_TIMEOUT", "-1", "outside");
  check_throws("NVSRAM_SWEEP_SPIN_MS", "", "expected a number");
  check_throws("NVSRAM_SWEEP_ISOLATION", "container", "process");
  check_throws("NVSRAM_SWEEP_FAULT", "envstrict:kaboom@3", "unknown fault kind");
  check_throws("NVSRAM_SWEEP_FAULT", "envstrict:segv@x", "expected an integer");
  check_throws("NVSRAM_SWEEP_KILL", "envstrict:last", "expected an integer");
}

TEST(SweepEnv, FaultKindVocabularyParses) {
  ::setenv("NVSRAM_SWEEP_FAULT", "segv@7", 1);
  RunnerOptions opts;
  opts.apply_env("anyrunner");
  EXPECT_EQ(opts.fault_point, 7);
  EXPECT_EQ(opts.fault_kind, FaultKind::kSegv);

  ::setenv("NVSRAM_SWEEP_FAULT", "scoped:hang@2", 1);
  RunnerOptions scoped;
  scoped.apply_env("scoped");
  EXPECT_EQ(scoped.fault_point, 2);
  EXPECT_EQ(scoped.fault_kind, FaultKind::kHang);
  RunnerOptions other;
  other.apply_env("otherrunner");  // scoped away: untouched
  EXPECT_EQ(other.fault_point, -1);

  ::setenv("NVSRAM_SWEEP_FAULT", "oom@0", 1);
  RunnerOptions oom;
  oom.apply_env("x");
  EXPECT_EQ(oom.fault_kind, FaultKind::kOom);

  ::setenv("NVSRAM_SWEEP_FAULT", "4", 1);
  RunnerOptions plain;
  plain.apply_env("x");
  EXPECT_EQ(plain.fault_kind, FaultKind::kThrow);
  EXPECT_EQ(plain.fault_point, 4);
  ::unsetenv("NVSRAM_SWEEP_FAULT");
}

TEST(SweepEnv, CrashFaultKindsRequireProcessIsolation) {
  auto opts = base_options("needsiso");
  opts.fault_point = 1;
  opts.fault_kind = FaultKind::kSegv;
  EXPECT_THROW((void)SweepRunner("needsiso", opts).run(3, square_point),
               RunnerError);
}

// ---- checkpoint CRC (v2) + v1 compatibility ----

TEST(SweepCheckpoint, V1FilesStillLoad) {
  const std::string path = tmp_csv("v1compat") + ".ckpt";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "nvsram-sweep-checkpoint v1\n"
        << "name=v1compat\n"
        << "columns=x,y\n"
        << "point=0 rows=1\n"
        << "0 0\n"
        << "point=2 rows=1\n"
        << "2 4\n"
        << "end\n";
  }
  const auto done = checkpoint::load(path, "v1compat", {"x", "y"}, 4);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done.at(2).front()[1], 4.0);
}

TEST(SweepCheckpoint, CorruptTailRewindsToValidPrefix) {
  // Write a real v2 checkpoint with 3 points, then corrupt point 1's row.
  const std::string path = tmp_csv("crc") + ".ckpt";
  std::map<std::size_t, Rows> done;
  done[0] = {{0.0, 0.0}};
  done[1] = {{1.0, 1.0}};
  done[2] = {{2.0, 4.0}};
  checkpoint::store(path, "crc", {"x", "y"}, done);
  ASSERT_EQ(checkpoint::load(path, "crc", {"x", "y"}, 3).size(), 3u);

  std::string text = slurp(path);
  const std::size_t row1 = text.find("\n1 1 *");
  ASSERT_NE(row1, std::string::npos);
  text[row1 + 1] = '7';  // flip the first value byte of point 1's row
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << text;
  }
  const auto loaded = checkpoint::load(path, "crc", {"x", "y"}, 3);
  // Point 0 survives; the corrupted record and everything after rewind.
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.count(0), 1u);
}

TEST(SweepCheckpoint, TruncatedMidRowRewinds) {
  const std::string path = tmp_csv("trunc") + ".ckpt";
  std::map<std::size_t, Rows> done;
  done[0] = {{0.0, 0.0}};
  done[1] = {{1.0, 1.0}};
  checkpoint::store(path, "trunc", {"x", "y"}, done);
  std::string text = slurp(path);
  const std::size_t cut = text.find("point=1");
  ASSERT_NE(cut, std::string::npos);
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << text.substr(0, cut + 10);  // torn mid-record
  }
  const auto loaded = checkpoint::load(path, "trunc", {"x", "y"}, 2);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.count(0), 1u);
}

TEST(SweepCheckpoint, CorruptionHealsToByteIdenticalResume) {
  // Reference: clean uninterrupted run.
  SweepRunner ref("crcresume", base_options("crcresume_ref"));
  const auto s_ref = ref.run(5, square_point);

  // Interrupted run leaves a checkpoint with 3 points; corrupt its tail.
  auto opts = base_options("crcresume");
  opts.stop_after_point = 2;
  (void)SweepRunner("crcresume", opts).run(5, square_point);
  const std::string ckpt = opts.csv_path + ".ckpt";
  std::string text = slurp(ckpt);
  ASSERT_FALSE(text.empty());
  text[text.size() - 8] ^= 0x20;  // garble inside the trailing bytes
  {
    std::ofstream out(ckpt, std::ios::trunc | std::ios::binary);
    out << text;
  }

  // Resume recomputes whatever rewound and still matches byte-for-byte.
  auto opts2 = base_options("crcresume");
  const auto s2 = SweepRunner("crcresume", opts2).run(5, square_point);
  EXPECT_TRUE(s2.all_ok());
  EXPECT_EQ(slurp(s2.csv_path), slurp(s_ref.csv_path));
}

// ---- batched lane groups (RunnerOptions::batch / NVSRAM_SWEEP_BATCH) ------

// batch_fn mirroring square_point for a whole group, per the BatchPointFn
// contract (rows bit-identical to the scalar callback).
std::vector<Rows> square_batch(const PointContext& first, std::size_t count) {
  std::vector<Rows> out;
  for (std::size_t i = 0; i < count; ++i) {
    const double x = static_cast<double>(first.index + i);
    out.push_back({{x, x * x}});
  }
  return out;
}

TEST(SweepBatch, BatchedSweepIsByteIdenticalToScalar) {
  SweepRunner scalar("batch_ref", base_options("batch_ref"));
  const auto ref = scalar.run(10, square_point);
  ASSERT_TRUE(ref.all_ok());

  auto opts = base_options("batch4");
  opts.batch = 4;  // groups 0-3, 4-7, 8-9 (remainder stays grouped)
  SweepRunner batched("batch4", opts);
  std::atomic<int> batch_calls{0};
  const auto s = batched.run(10, square_point,
                             [&](const PointContext& first, std::size_t count) {
                               ++batch_calls;
                               return square_batch(first, count);
                             });
  EXPECT_TRUE(s.all_ok());
  EXPECT_EQ(s.batch, 4);
  EXPECT_GT(batch_calls.load(), 0);
  EXPECT_EQ(s.rows, ref.rows);
  EXPECT_EQ(slurp(s.csv_path), slurp(ref.csv_path));
  EXPECT_EQ(slurp(s.manifest_path), slurp(ref.manifest_path));
}

TEST(SweepBatch, GroupsAreAdjacentAndCoverEveryPointOnce) {
  auto opts = base_options("batch_groups");
  opts.batch = 4;
  opts.threads = 1;  // serial path: deterministic group formation
  SweepRunner run("batch_groups", opts);
  std::vector<std::pair<std::size_t, std::size_t>> groups;
  const auto s = run.run(11, square_point,
                         [&](const PointContext& first, std::size_t count) {
                           groups.emplace_back(first.index, count);
                           return square_batch(first, count);
                         });
  EXPECT_TRUE(s.all_ok());
  // Groups tile [0, 11) in order, each within the lane width.  Singleton
  // points never reach batch_fn (the scalar loop is cheaper and identical).
  std::size_t next = 0;
  for (const auto& [begin, count] : groups) {
    EXPECT_EQ(begin, next);
    EXPECT_GE(count, 2u);
    EXPECT_LE(count, 4u);
    next = begin + count;
  }
  EXPECT_EQ(next, 11u) << "last group should absorb the remainder";
}

TEST(SweepBatch, ThrowingBatchFnFallsBackToScalarByteIdentical) {
  SweepRunner scalar("batch_throw_ref", base_options("batch_throw_ref"));
  const auto ref = scalar.run(7, square_point);

  auto opts = base_options("batch_throw");
  opts.batch = 4;
  SweepRunner batched("batch_throw", opts);
  const auto s = batched.run(7, square_point,
                             [](const PointContext&, std::size_t) -> std::vector<Rows> {
                               throw std::runtime_error("lanes, diverged");
                             });
  EXPECT_TRUE(s.all_ok()) << "batch failure must not fail any point";
  EXPECT_EQ(s.rows, ref.rows);
  EXPECT_EQ(slurp(s.csv_path), slurp(ref.csv_path));
  EXPECT_EQ(slurp(s.manifest_path), slurp(ref.manifest_path));
}

TEST(SweepBatch, WrongResultCountFallsBackToScalar) {
  SweepRunner scalar("batch_short_ref", base_options("batch_short_ref"));
  const auto ref = scalar.run(6, square_point);

  auto opts = base_options("batch_short");
  opts.batch = 3;
  SweepRunner batched("batch_short", opts);
  const auto s = batched.run(6, square_point,
                             [](const PointContext& first, std::size_t count) {
                               auto rows = square_batch(first, count);
                               rows.pop_back();  // violates the contract
                               return rows;
                             });
  EXPECT_TRUE(s.all_ok());
  EXPECT_EQ(s.rows, ref.rows);
  EXPECT_EQ(slurp(s.csv_path), slurp(ref.csv_path));
}

TEST(SweepBatch, FaultDrillPointForcesGroupToScalarPath) {
  auto opts = base_options("batch_drill");
  opts.batch = 4;
  opts.max_attempts = 2;
  opts.fault_point = 2;  // inside the first lane group
  SweepRunner run("batch_drill", opts);
  std::atomic<int> batch_calls_over_drill{0};
  const auto s = run.run(8, square_point,
                         [&](const PointContext& first, std::size_t count) {
                           if (first.index <= 2 && first.index + count > 2) {
                             ++batch_calls_over_drill;
                           }
                           return square_batch(first, count);
                         });
  // The drill point fails per-point (fault on every attempt), and its group
  // never went through the batched path — faults stay per-point drills.
  EXPECT_EQ(batch_calls_over_drill.load(), 0);
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.completed, 7u);
}

TEST(SweepBatch, ResumeAfterKillStaysByteIdenticalUnderBatch) {
  SweepRunner scalar("batch_kill_ref", base_options("batch_kill_ref"));
  const auto ref = scalar.run(9, square_point);

  auto opts = base_options("batch_kill");
  opts.batch = 3;
  opts.stop_after_point = 4;  // graceful stop mid-sweep, checkpoint kept
  SweepRunner first("batch_kill", opts);
  (void)first.run(9, square_point, square_batch);

  opts.stop_after_point = -1;
  SweepRunner resumed("batch_kill", opts);
  const auto s = resumed.run(9, square_point, square_batch);
  EXPECT_TRUE(s.all_ok());
  EXPECT_EQ(s.rows, ref.rows);
  EXPECT_EQ(slurp(s.csv_path), slurp(ref.csv_path));
}

TEST(SweepRunner, RowWidthMismatchIsAHarnessError) {
  SweepRunner run("width", base_options("width"));
  EXPECT_THROW((void)run.run(1,
                             [](const PointContext&) -> Rows {
                               return {{1.0, 2.0, 3.0}};  // 3 values, 2 cols
                             }),
               std::runtime_error);
}

}  // namespace
}  // namespace nvsram::runner
