// MTJ reliability closures: retention, read disturb, write error rate.
#include <gtest/gtest.h>

#include <cmath>

#include "models/mtj.h"
#include "util/stats.h"

namespace nvsram::models {
namespace {

TEST(MtjRetention, DecadeScaleAtDelta60) {
  MTJ mtj(paper_mtj());
  // tau_a exp(60) ~ 1.1e17 s — far beyond the 10-year spec (3.2e8 s).
  EXPECT_GT(mtj.retention_time(), 3.2e8);
  EXPECT_NEAR(std::log(mtj.retention_time() / 1e-9), 60.0, 1e-9);
}

TEST(MtjRetention, LowerBarrierShortensRetention) {
  auto p40 = paper_mtj();
  p40.thermal_stability = 40.0;
  MTJ weak(p40), strong(paper_mtj());
  EXPECT_LT(weak.retention_time(), 1e-6 * strong.retention_time());
}

TEST(MtjDisturb, ZeroForWrongPolarity) {
  MTJ mtj(paper_mtj());
  const double ic = mtj.params().critical_current();
  // Positive current cannot disturb a P state.
  EXPECT_DOUBLE_EQ(
      mtj.disturb_probability(MtjState::kParallel, 0.9 * ic, 1.0), 0.0);
}

TEST(MtjDisturb, NegligibleAtRestoreCurrents) {
  // Restore pulls ~0.3 x Ic through the MTJs for ~2 ns: the disturb
  // probability must be astronomically small.
  MTJ mtj(paper_mtj());
  const double ic = mtj.params().critical_current();
  const double p =
      mtj.disturb_probability(MtjState::kAntiparallel, 0.3 * ic, 2e-9);
  EXPECT_LT(p, 1e-15);
}

TEST(MtjDisturb, GrowsWithCurrentAndTime) {
  MTJ mtj(paper_mtj());
  const double ic = mtj.params().critical_current();
  std::vector<double> by_current, by_time;
  for (double f : {0.5, 0.7, 0.9, 0.99}) {
    by_current.push_back(
        mtj.disturb_probability(MtjState::kAntiparallel, f * ic, 1e-6));
  }
  EXPECT_TRUE(util::is_monotone_nondecreasing(by_current));
  EXPECT_GT(by_current.back(), by_current.front());
  for (double t : {1e-9, 1e-6, 1e-3}) {
    by_time.push_back(
        mtj.disturb_probability(MtjState::kAntiparallel, 0.95 * ic, t));
  }
  EXPECT_TRUE(util::is_monotone_nondecreasing(by_time));
}

TEST(MtjWer, ShortPulseAlwaysFails) {
  MTJ mtj(paper_mtj());
  const double i = -1.5 * mtj.params().critical_current();
  // t_sw = 6 ns: a 4 ns pulse cannot complete the ballistic switch.
  EXPECT_DOUBLE_EQ(mtj.write_error_rate(MtjState::kParallel, i, 4e-9), 1.0);
}

TEST(MtjWer, PaperPulseIsReliable) {
  MTJ mtj(paper_mtj());
  const double i = -1.5 * mtj.params().critical_current();
  // 10 ns at 1.5 Ic: error rate low; 20 ns: much lower.
  const double wer10 = mtj.write_error_rate(MtjState::kParallel, i, 10e-9);
  const double wer20 = mtj.write_error_rate(MtjState::kParallel, i, 20e-9);
  EXPECT_LT(wer10, 2e-3);
  EXPECT_LT(wer20, 1e-9);
  EXPECT_LT(wer20, wer10);
}

TEST(MtjWer, MonotoneInPulseWidthAndOverdrive) {
  MTJ mtj(paper_mtj());
  const double ic = mtj.params().critical_current();
  std::vector<double> by_pulse, by_over;
  for (double t : {7e-9, 10e-9, 15e-9, 25e-9}) {
    by_pulse.push_back(mtj.write_error_rate(MtjState::kParallel, -1.5 * ic, t));
  }
  EXPECT_TRUE(util::is_monotone_nonincreasing(by_pulse));
  for (double f : {1.2, 1.5, 2.0, 3.0}) {
    by_over.push_back(
        mtj.write_error_rate(MtjState::kParallel, -f * ic, 12e-9));
  }
  EXPECT_TRUE(util::is_monotone_nonincreasing(by_over));
}

TEST(MtjWer, WrongPolarityNeverWrites) {
  MTJ mtj(paper_mtj());
  const double ic = mtj.params().critical_current();
  EXPECT_DOUBLE_EQ(mtj.write_error_rate(MtjState::kParallel, +3 * ic, 1.0),
                   1.0);
}

TEST(MtjWer, SubCriticalWriteNeedsThermalHelp) {
  MTJ mtj(paper_mtj());
  const double ic = mtj.params().critical_current();
  // 0.95 x Ic: tau = tau_a exp(3) ~ 20 ns; a 100 ns pulse mostly succeeds.
  const double wer = mtj.write_error_rate(MtjState::kParallel, -0.95 * ic,
                                          100e-9);
  EXPECT_LT(wer, 0.05);
  EXPECT_GT(wer, 1e-4);
}

TEST(MtjThermalTau, ContinuousAtCriticalCurrent) {
  MTJ mtj(paper_mtj());
  const double ic = mtj.params().critical_current();
  const double below =
      mtj.thermal_switching_tau(MtjState::kParallel, -0.999 * ic);
  // Just below Ic the barrier is nearly gone: tau -> tau_a scale, far from
  // the retention scale.
  EXPECT_LT(below, 1e-8);
  EXPECT_GT(below, 1e-10);
}

}  // namespace
}  // namespace nvsram::models
