// Power-intent static analyzer tests.
//
// Four layers:
//  * domain extraction — the Fig. 2 cell netlist partitions into an
//    always-on supply domain and the gated vvdd domain behind Mpsw;
//  * abstract power state — the off window follows the PS gate PWL through
//    the 0.5*VDD threshold, plus unit tests of the window algebra;
//  * seeded violations — one netlist per power-* rule in
//    tests/netlists_bad/, each asserting line/phase attribution, plus the
//    float-node dedupe regression for power-domain-floating;
//  * no false positives — the shipped netlists/ corpus and all three
//    benchmark schedules produce zero power-* diagnostics.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "lint/power/check.h"
#include "lint/power/domain.h"
#include "lint/power/state.h"
#include "lint/report.h"
#include "lint/rules.h"
#include "lint/temporal/timeline.h"
#include "models/paper_params.h"
#include "spice/circuit.h"
#include "spice/netlist_parser.h"
#include "sram/schedules.h"
#include "sram/testbench.h"

namespace nvsram::lint::power {
namespace {

using temporal::Window;

std::unique_ptr<spice::ParsedNetlist> parse_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  spice::NetlistParser parser;
  return parser.parse(ss.str());
}

std::unique_ptr<spice::ParsedNetlist> parse_bad(const char* file) {
  return parse_file(std::string(NVSRAM_BAD_NETLIST_DIR) + "/" + file);
}

std::vector<Diagnostic> of_rule(const std::vector<Diagnostic>& diags,
                                const char* rule) {
  std::vector<Diagnostic> out;
  for (const auto& d : diags) {
    if (d.rule == rule) out.push_back(d);
  }
  return out;
}

bool any_power_rule(const std::vector<Diagnostic>& diags) {
  for (const auto& d : diags) {
    if (d.rule.rfind("power-", 0) == 0) return true;
  }
  return false;
}

// ---- rule registry ----------------------------------------------------------

TEST(PowerRules, CatalogHasThePowerFamily) {
  const char* ids[] = {rules::kPowerWlInOffWindow, rules::kPowerSneakPath,
                       rules::kPowerMissingIsolation,
                       rules::kPowerDomainFloating,
                       rules::kPowerSharedRailConflict};
  for (const char* id : ids) {
    EXPECT_STREQ(rule_family(id), "power") << id;
    bool found = false;
    for (const auto& r : rule_catalog()) {
      if (std::string(r.id) == id) found = true;
    }
    EXPECT_TRUE(found) << id << " missing from rule_catalog()";
  }
  EXPECT_EQ(default_severity(rules::kPowerWlInOffWindow), Severity::kError);
  EXPECT_EQ(default_severity(rules::kPowerSneakPath), Severity::kError);
  EXPECT_EQ(default_severity(rules::kPowerDomainFloating), Severity::kError);
  EXPECT_EQ(default_severity(rules::kPowerMissingIsolation),
            Severity::kWarning);
  EXPECT_EQ(default_severity(rules::kPowerSharedRailConflict),
            Severity::kWarning);
}

// ---- window algebra ---------------------------------------------------------

TEST(WindowAlgebra, IntersectUnionSubtract) {
  const std::vector<Window> a = {{0.0, 10.0}, {20.0, 30.0}};
  const std::vector<Window> b = {{5.0, 25.0}};

  const auto inter = windows_intersect(a, b);
  ASSERT_EQ(inter.size(), 2u);
  EXPECT_DOUBLE_EQ(inter[0].t0, 5.0);
  EXPECT_DOUBLE_EQ(inter[0].t1, 10.0);
  EXPECT_DOUBLE_EQ(inter[1].t0, 20.0);
  EXPECT_DOUBLE_EQ(inter[1].t1, 25.0);

  const auto uni = windows_union(a, b);
  ASSERT_EQ(uni.size(), 1u);
  EXPECT_DOUBLE_EQ(uni[0].t0, 0.0);
  EXPECT_DOUBLE_EQ(uni[0].t1, 30.0);

  const auto sub = windows_subtract(a, b);
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_DOUBLE_EQ(sub[0].t0, 0.0);
  EXPECT_DOUBLE_EQ(sub[0].t1, 5.0);
  EXPECT_DOUBLE_EQ(sub[1].t0, 25.0);
  EXPECT_DOUBLE_EQ(sub[1].t1, 30.0);
}

TEST(WindowAlgebra, EmptyOperands) {
  const std::vector<Window> a = {{1.0, 2.0}};
  EXPECT_TRUE(windows_intersect(a, {}).empty());
  EXPECT_TRUE(windows_intersect({}, a).empty());
  EXPECT_TRUE(windows_subtract({}, a).empty());
  ASSERT_EQ(windows_union({}, a).size(), 1u);
  ASSERT_EQ(windows_subtract(a, {}).size(), 1u);
}

TEST(WindowAlgebra, AdjacentHalfOpenWindowsShareNoPoint) {
  // Windows are half-open [t0, t1): [0,10) and [10,20) touch at t=10 but
  // overlap nowhere, so their intersection is empty, their union is the
  // single seam-free window [0,20), and subtracting one from the other is
  // the identity.
  const std::vector<Window> a = {{0.0, 10.0}};
  const std::vector<Window> b = {{10.0, 20.0}};

  EXPECT_TRUE(windows_intersect(a, b).empty());
  EXPECT_TRUE(windows_intersect(b, a).empty());

  const auto uni = windows_union(a, b);
  ASSERT_EQ(uni.size(), 1u);
  EXPECT_DOUBLE_EQ(uni[0].t0, 0.0);
  EXPECT_DOUBLE_EQ(uni[0].t1, 20.0);

  const auto sub = windows_subtract(a, b);
  ASSERT_EQ(sub.size(), 1u);
  EXPECT_DOUBLE_EQ(sub[0].t0, 0.0);
  EXPECT_DOUBLE_EQ(sub[0].t1, 10.0);
}

TEST(WindowAlgebra, OffAtUsesHalfOpenBoundaries) {
  // off_at must agree with the same convention: the instant of gate-off
  // belongs to the off window, the instant recovery completes does not.
  // An event exactly at a seam between adjacent windows is therefore
  // counted exactly once.
  DomainSchedule sched;
  sched.off = {{10.0, 20.0}, {20.0, 30.0}};
  EXPECT_FALSE(sched.off_at(9.999999));
  EXPECT_TRUE(sched.off_at(10.0));   // collapse edge: off
  EXPECT_TRUE(sched.off_at(20.0));   // seam: owned by the second window
  EXPECT_TRUE(sched.off_at(29.999999));
  EXPECT_FALSE(sched.off_at(30.0));  // recovery complete: on again
  EXPECT_FALSE(sched.off_at(35.0));
}

// ---- domain extraction on the Fig. 2 cell -----------------------------------

TEST(DomainExtraction, Fig2CellSplitsAtThePowerSwitch) {
  const auto net =
      parse_file(std::string(NVSRAM_NETLIST_DIR) + "/nvsram_cell_full.cir");
  const DomainMap map = extract_domains(net->circuit(), net.get());

  const PowerDomain* gated = map.find("vvdd");
  ASSERT_NE(gated, nullptr) << map.describe(net->circuit());
  EXPECT_EQ(gated->kind, DomainKind::kGated);
  ASSERT_EQ(gated->switches.size(), 1u);
  EXPECT_EQ(gated->switches[0].fet->name(), "Mpsw");
  EXPECT_TRUE(gated->switches[0].pmos);
  EXPECT_EQ(gated->switches[0].gate_signal, "Vpg");

  // The storage nodes sit inside the gated domain; the header's supply side
  // stays always-on, and driven signal nets belong to neither.
  const auto& ckt = net->circuit();
  const int gid = gated->id;
  EXPECT_EQ(map.domain_of(ckt.find_node("Xcell.q")), gid);
  EXPECT_EQ(map.domain_of(ckt.find_node("Xcell.qb")), gid);
  const int vdd_dom = map.domain_of(ckt.find_node("vdd"));
  ASSERT_GE(vdd_dom, 0);
  EXPECT_EQ(map.domains[static_cast<std::size_t>(vdd_dom)].kind,
            DomainKind::kAlwaysOn);
  EXPECT_EQ(gated->parent, vdd_dom);
  EXPECT_LT(map.domain_of(ckt.find_node("wl")), 0);
}

TEST(PowerStateAbstraction, OffWindowFollowsTheGateRamp) {
  const auto net =
      parse_file(std::string(NVSRAM_NETLIST_DIR) + "/nvsram_cell_full.cir");
  const DomainMap map = extract_domains(net->circuit(), net.get());
  const temporal::Timeline tl = temporal::extract_timeline(*net);
  const PowerState state = compute_power_state(map, tl);

  // VDD derives from the power-role sources (0.9 V), threshold is half.
  EXPECT_DOUBLE_EQ(state.vdd, 0.9);
  EXPECT_DOUBLE_EQ(state.threshold, 0.45);

  const PowerDomain* gated = map.find("vvdd");
  ASSERT_NE(gated, nullptr);
  const DomainSchedule& sched = state.of(gated->id);
  EXPECT_FALSE(sched.always_on());
  // Vpg: PWL(60n 0  60.5n 1.0  2105n 1.0  2105.5n 0) crosses 0.45 V at
  // 60.225 ns rising and 2105.275 ns falling.
  ASSERT_EQ(sched.off.size(), 1u);
  EXPECT_NEAR(sched.off[0].t0, 60.225e-9, 1e-12);
  EXPECT_NEAR(sched.off[0].t1, 2105.275e-9, 1e-12);
  EXPECT_TRUE(sched.off_at(1.0e-6));
  EXPECT_FALSE(sched.off_at(10.0e-9));
}

// ---- seeded violations ------------------------------------------------------

TEST(PowerSeeded, WordlineAssertsInsideTheOffWindow) {
  const auto net = parse_bad("bad_wl_in_off_window.cir");
  const LintReport report = net->lint();
  const auto hits =
      of_rule(report.diagnostics(), rules::kPowerWlInOffWindow);
  ASSERT_EQ(hits.size(), 1u) << report.format();
  EXPECT_EQ(hits[0].line, 22);  // the Vwl card with the 1000 ns pulse
  EXPECT_FALSE(hits[0].phase.empty());
  EXPECT_NE(hits[0].message.find("word line 'Vwl'"), std::string::npos)
      << hits[0].message;
  EXPECT_NE(hits[0].message.find("vvdd"), std::string::npos);
}

TEST(PowerSeeded, BypassResistorIsASneakPath) {
  const auto net = parse_bad("bad_sneak_path.cir");
  const LintReport report = net->lint();
  const auto hits = of_rule(report.diagnostics(), rules::kPowerSneakPath);
  ASSERT_GE(hits.size(), 1u) << report.format();
  // The strap itself is the first conducting edge out of the held supply.
  EXPECT_EQ(hits[0].device, "Rbyp");
  EXPECT_GT(hits[0].line, 0);
  EXPECT_FALSE(hits[0].phase.empty());
  EXPECT_NE(hits[0].message.find("vdd -> vvdd"), std::string::npos)
      << hits[0].message;
}

TEST(PowerSeeded, UnisolatedReceiverGetsAWarning) {
  const auto net = parse_bad("bad_missing_isolation.cir");
  const LintReport report = net->lint();
  EXPECT_FALSE(report.has_errors()) << report.format();
  const auto hits =
      of_rule(report.diagnostics(), rules::kPowerMissingIsolation);
  ASSERT_EQ(hits.size(), 1u) << report.format();
  EXPECT_EQ(hits[0].severity, Severity::kWarning);
  EXPECT_EQ(hits[0].device, "Xcell.Mko");
  EXPECT_EQ(hits[0].line, 17);
  EXPECT_FALSE(hits[0].phase.empty());
}

TEST(PowerSeeded, DeclaredRailWithoutSupplyFloats) {
  const auto net = parse_bad("bad_domain_floating.cir");
  const LintReport report = net->lint();
  const auto hits =
      of_rule(report.diagnostics(), rules::kPowerDomainFloating);
  ASSERT_EQ(hits.size(), 1u) << report.format();
  EXPECT_EQ(hits[0].line, 20);  // the .domain card
  EXPECT_EQ(hits[0].node, "vvdd");
}

TEST(PowerSeeded, TwoGateSchedulesOnOneRailConflict) {
  const auto net = parse_bad("bad_shared_rail.cir");
  const LintReport report = net->lint();
  const auto hits =
      of_rule(report.diagnostics(), rules::kPowerSharedRailConflict);
  ASSERT_EQ(hits.size(), 1u) << report.format();
  EXPECT_EQ(hits[0].severity, Severity::kWarning);
  EXPECT_EQ(hits[0].device, "Mpsw2");  // the later, disagreeing switch
  EXPECT_GT(hits[0].line, 0);
}

// ---- float-node dedupe regression -------------------------------------------
// A dangling declared rail is already reported by the structural rules; the
// power pass must not restate it — but the underlying check still fires when
// nothing else claimed the node.

TEST(PowerDedupe, StructuralRulesSuppressDomainFloating) {
  const char* src =
      "dedupe: float-node already reports the dangling declared rail\n"
      "Vdd vdd 0 DC 0.9\n"
      "R1 vdd out 1k\n"
      "R2 out 0 1k\n"
      "C1 flt 0 1p\n"
      ".domain flt cell gated\n"
      ".tran 100n 1n\n"
      ".end\n";
  spice::NetlistParser parser;
  const auto net = parser.parse(src);

  const LintReport report = net->lint();
  EXPECT_FALSE(of_rule(report.diagnostics(), rules::kFloatNode).empty())
      << report.format();
  EXPECT_TRUE(
      of_rule(report.diagnostics(), rules::kPowerDomainFloating).empty())
      << "power-domain-floating must dedupe against float-node:\n"
      << report.format();

  // The rule itself still knows the rail floats: with no structural report
  // to defer to, check_power restates it.
  const temporal::Timeline tl = temporal::extract_timeline(*net);
  const auto direct = check_power(net->circuit(), tl, net.get(), {});
  EXPECT_FALSE(of_rule(direct, rules::kPowerDomainFloating).empty());
}

// ---- no false positives -----------------------------------------------------

TEST(PowerRegression, ShippedNetlistsHaveNoPowerFindings) {
  namespace fs = std::filesystem;
  std::size_t seen = 0;
  for (const auto& entry : fs::directory_iterator(NVSRAM_NETLIST_DIR)) {
    if (entry.path().extension() != ".cir") continue;
    ++seen;
    const auto net = parse_file(entry.path().string());
    const LintReport report = net->lint();
    EXPECT_FALSE(any_power_rule(report.diagnostics()))
        << entry.path() << " has power-* findings:\n" << report.format();
  }
  EXPECT_GE(seen, 5u);
}

TEST(PowerRegression, BenchmarkSchedulesHaveNoPowerFindings) {
  const models::PaperParams pp;
  for (const sram::BenchArch arch :
       {sram::BenchArch::kNVPG, sram::BenchArch::kNOF,
        sram::BenchArch::kOSR}) {
    const auto tb =
        sram::build_benchmark_schedule(arch, pp, sram::ScheduleParams{});
    const auto diags =
        check_power(tb->circuit(), tb->export_timeline(), nullptr, {});
    EXPECT_TRUE(diags.empty())
        << sram::to_string(arch) << " bench has power-* findings ("
        << diags.size() << "), first: "
        << (diags.empty() ? "" : diags.front().message);
  }
}

}  // namespace
}  // namespace nvsram::lint::power
