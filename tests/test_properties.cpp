// Property-based parameterized sweeps: model invariants that must hold at
// EVERY point of a benchmark-parameter grid, and device-model properties
// over a bias/geometry grid.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <tuple>
#include <vector>

#include "core/energy_model.h"
#include "models/finfet.h"
#include "models/mtj.h"
#include "util/stats.h"

namespace nvsram {
namespace {

using core::Architecture;
using core::BenchmarkParams;
using core::EnergyModel;

sram::CellEnergetics grid_6t() {
  sram::CellEnergetics c;
  c.t_clk = 1.0 / 300e6;
  c.e_read = 3.8e-15;
  c.e_write = 4.9e-15;
  c.p_static_normal = 23.2e-9;
  c.p_static_sleep = 9.5e-9;
  c.p_static_shutdown = 30e-12;
  c.e_sleep_transition = 1e-15;
  return c;
}

sram::CellEnergetics grid_nv() {
  sram::CellEnergetics c = grid_6t();
  c.p_static_normal = 23.9e-9;
  c.p_static_sleep = 10.2e-9;
  c.e_store = 400e-15;
  c.t_store = 24e-9;
  c.e_restore = 33e-15;
  c.t_restore = 2.1e-9;
  return c;
}

// ---- energy-model grid: (architecture, n_rw, rows, t_sl) -----------------

using GridPoint = std::tuple<Architecture, int, int, double>;

class ModelGrid : public ::testing::TestWithParam<GridPoint> {
 protected:
  ModelGrid() : model_(grid_6t(), grid_nv()) {}
  BenchmarkParams params() const {
    const auto [a, n_rw, rows, t_sl] = GetParam();
    BenchmarkParams p;
    p.n_rw = n_rw;
    p.rows = rows;
    p.t_sl = t_sl;
    return p;
  }
  Architecture arch() const { return std::get<0>(GetParam()); }
  EnergyModel model_;
};

TEST_P(ModelGrid, BreakdownNonNegativeAndSumsToTotal) {
  const auto b = model_.cycle_energy(arch(), params());
  for (double part : {b.access, b.standby, b.sleep, b.store, b.store_wait,
                      b.shutdown, b.restore, b.restore_wait, b.peripheral}) {
    EXPECT_GE(part, 0.0);
  }
  const double sum = b.access + b.standby + b.sleep + b.store + b.store_wait +
                     b.shutdown + b.restore + b.restore_wait + b.peripheral;
  EXPECT_NEAR(b.total(), sum, 1e-24);
  EXPECT_GT(b.duration, 0.0);
}

TEST_P(ModelGrid, EnergyAffineInShutdownTime) {
  // E(t_sd) must be exactly affine: E(2t) - E(t) == E(t) - E(0).
  auto p = params();
  p.t_sd = 0.0;
  const double e0 = model_.e_cyc(arch(), p);
  p.t_sd = 1e-4;
  const double e1 = model_.e_cyc(arch(), p);
  p.t_sd = 2e-4;
  const double e2 = model_.e_cyc(arch(), p);
  EXPECT_NEAR(e2 - e1, e1 - e0, 1e-9 * std::max(e1, 1e-20));
}

TEST_P(ModelGrid, SlopeMatchesDeclaredShutdownPower) {
  auto p = params();
  p.t_sd = 0.0;
  const double e0 = model_.e_cyc(arch(), p);
  p.t_sd = 1e-3;
  const double slope = (model_.e_cyc(arch(), p) - e0) / 1e-3;
  EXPECT_NEAR(slope, model_.shutdown_slope(arch()),
              1e-6 * model_.shutdown_slope(arch()) + 1e-18);
}

TEST_P(ModelGrid, StoreFreeNeverCostsMore) {
  auto p = params();
  const double full = model_.e_cyc(arch(), p);
  p.store_free_shutdown = true;
  EXPECT_LE(model_.e_cyc(arch(), p), full * (1.0 + 1e-12));
}

TEST_P(ModelGrid, EnergyLinearInNrwWhenPhasesFixed) {
  // With t_sl folded in, the inner loop repeats identically:
  // E(2n) - E(n) == E(3n) - E(2n).
  auto p = params();
  const int n = p.n_rw;
  const double e1 = model_.e_cyc(arch(), p);
  p.n_rw = 2 * n;
  const double e2 = model_.e_cyc(arch(), p);
  p.n_rw = 3 * n;
  const double e3 = model_.e_cyc(arch(), p);
  EXPECT_NEAR(e3 - e2, e2 - e1, 1e-9 * std::max(e2, 1e-20));
}

TEST_P(ModelGrid, BetConsistentWithCurveCrossing) {
  if (arch() == Architecture::kOSR) return;
  const auto bet = model_.break_even_time(arch(), params());
  if (!bet || *bet == 0.0) return;
  auto p = params();
  p.t_sd = *bet * 0.5;
  EXPECT_GT(model_.e_cyc(arch(), p), model_.e_cyc(Architecture::kOSR, p));
  p.t_sd = *bet * 2.0;
  EXPECT_LT(model_.e_cyc(arch(), p), model_.e_cyc(Architecture::kOSR, p));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelGrid,
    ::testing::Combine(
        ::testing::Values(Architecture::kOSR, Architecture::kNVPG,
                          Architecture::kNOF),
        ::testing::Values(1, 10, 1000),
        ::testing::Values(1, 32, 1024),
        ::testing::Values(0.0, 100e-9, 1e-6)));

// ---- FinFET geometry grid --------------------------------------------------

class FinGeometryGrid : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(FinGeometryGrid, CurrentScalesWithEffectiveWidth) {
  const auto [fins, height] = GetParam();
  auto base = models::ptm20_nmos(1);
  auto scaled = base;
  scaled.fin_count = fins;
  scaled.fin_height = height;
  const models::FinFET f_base(base), f_scaled(scaled);
  const double width_ratio =
      scaled.effective_width() / base.effective_width();
  EXPECT_NEAR(f_scaled.on_current() / f_base.on_current(), width_ratio, 1e-9);
  EXPECT_NEAR(f_scaled.off_current() / f_base.off_current(), width_ratio,
              1e-9);
}

TEST_P(FinGeometryGrid, CapacitanceGrowsWithWidth) {
  const auto [fins, height] = GetParam();
  auto p = models::ptm20_nmos(1);
  const double c1 = p.cgs();
  p.fin_count = fins;
  p.fin_height = height;
  EXPECT_GE(p.cgs(), c1 * 0.999);
}

INSTANTIATE_TEST_SUITE_P(Geometry, FinGeometryGrid,
                         ::testing::Combine(::testing::Values(1, 2, 4, 7),
                                            ::testing::Values(28e-9, 35e-9,
                                                              45e-9)));

// ---- MTJ scaling grid --------------------------------------------------------

class MtjDiameterGrid : public ::testing::TestWithParam<double> {};

TEST_P(MtjDiameterGrid, ResistanceAndIcScaleWithArea) {
  const double d = GetParam();
  auto p = models::paper_mtj();
  p.diameter = d;
  const models::MTJ m(p);
  // R ~ 1/A, Ic ~ A: their product is diameter-independent.
  const double product = p.rp0() * p.critical_current();
  auto ref = models::paper_mtj();
  const double ref_product = ref.rp0() * ref.critical_current();
  EXPECT_NEAR(product, ref_product, 1e-9 * ref_product);
  // The half-TMR voltage is geometry-independent by construction.
  EXPECT_NEAR(m.tmr(p.vh), 0.5 * p.tmr0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Diameters, MtjDiameterGrid,
                         ::testing::Values(10e-9, 20e-9, 30e-9, 45e-9));

// ---- device closures: scalar vs lane-batched entry points ------------------
//
// The batched stamping path (StampBatch in spice/device.h) reaches the
// models through evaluate_many / current_many.  These properties run the
// same seeded random bias samples through both entry points: the lane form
// must be bit-identical to the scalar loop, and the physical invariants
// (monotonicity, continuity under bias and parameter perturbation) must
// hold along both.

constexpr unsigned kSharedSeed = 0x5eed;  // one seed, both entry points

std::vector<double> random_biases(std::size_t n, double lo, double hi) {
  std::mt19937 rng(kSharedSeed);
  std::uniform_real_distribution<double> dist(lo, hi);
  std::vector<double> out(n);
  for (auto& v : out) v = dist(rng);
  return out;
}

class FinFetPolarity : public ::testing::TestWithParam<bool> {
 protected:
  models::FinFETParams params() const {
    return GetParam() ? models::ptm20_pmos(2) : models::ptm20_nmos(2);
  }
};

TEST_P(FinFetPolarity, EvaluateManyBitIdenticalToScalar) {
  const models::FinFET fet(params());
  const auto vgs = random_biases(256, -1.0, 1.0);
  auto vds = random_biases(256, -1.0, 1.0);
  std::reverse(vds.begin(), vds.end());  // decorrelate the two axes

  std::vector<models::FinFETOutput> lanes(vgs.size());
  fet.evaluate_many(vgs.data(), vds.data(), vgs.size(), lanes.data());
  for (std::size_t i = 0; i < vgs.size(); ++i) {
    const auto ref = fet.evaluate(vgs[i], vds[i]);
    EXPECT_EQ(ref.ids, lanes[i].ids) << "sample " << i;
    EXPECT_EQ(ref.gm, lanes[i].gm) << "sample " << i;
    EXPECT_EQ(ref.gds, lanes[i].gds) << "sample " << i;
  }
}

TEST_P(FinFetPolarity, DrainCurrentMonotonicInGateOverdrive) {
  const bool pmos = GetParam();
  const models::FinFET fet(params());
  // |Ids| must be nondecreasing in gate overdrive at fixed |Vds|; sample
  // through the lane entry point so the invariant is checked on the exact
  // values the batched stamper consumes.
  for (double vds_mag : {0.05, 0.45, 0.9}) {
    std::vector<double> vgs(181), vds(181);
    for (std::size_t i = 0; i < vgs.size(); ++i) {
      const double mag = static_cast<double>(i) * 0.005;  // 0 .. 0.9 V
      vgs[i] = pmos ? -mag : mag;
      vds[i] = pmos ? -vds_mag : vds_mag;
    }
    std::vector<models::FinFETOutput> out(vgs.size());
    fet.evaluate_many(vgs.data(), vds.data(), vgs.size(), out.data());
    for (std::size_t i = 1; i < out.size(); ++i) {
      EXPECT_GE(std::abs(out[i].ids), std::abs(out[i - 1].ids) * (1.0 - 1e-12))
          << "vgs step " << i << " at |vds| = " << vds_mag;
    }
  }
}

TEST_P(FinFetPolarity, ContinuousUnderBiasPerturbation) {
  const models::FinFET fet(params());
  const auto vgs = random_biases(64, -0.9, 0.9);
  auto vds = random_biases(64, -0.9, 0.9);
  std::reverse(vds.begin(), vds.end());
  const double h = 1e-7;
  for (std::size_t i = 0; i < vgs.size(); ++i) {
    const auto a = fet.evaluate(vgs[i], vds[i]);
    const auto b = fet.evaluate(vgs[i] + h, vds[i]);
    const auto c = fet.evaluate(vgs[i], vds[i] + h);
    // A step of h along either axis moves Ids by at most the local slope
    // times h (EKV is C-infinity; factor 10 absorbs curvature over h).
    const double slope_bound =
        10.0 * h * (std::abs(a.gm) + std::abs(a.gds)) + 1e-15;
    EXPECT_LE(std::abs(b.ids - a.ids), slope_bound) << "vgs step, sample " << i;
    EXPECT_LE(std::abs(c.ids - a.ids), slope_bound) << "vds step, sample " << i;
  }
}

TEST_P(FinFetPolarity, ContinuousUnderParameterPerturbation) {
  // A 1 nV threshold shift cannot move any current by more than a sliver:
  // the model (and hence a lane whose parameters differ infinitesimally
  // from its neighbors') responds continuously to its parameters.
  auto p1 = params();
  auto p2 = p1;
  p2.vth0 += 1e-9;
  const models::FinFET f1(p1), f2(p2);
  const auto vgs = random_biases(64, -0.9, 0.9);
  auto vds = random_biases(64, -0.9, 0.9);
  std::reverse(vds.begin(), vds.end());
  for (std::size_t i = 0; i < vgs.size(); ++i) {
    const auto a = f1.evaluate(vgs[i], vds[i]);
    const auto b = f2.evaluate(vgs[i], vds[i]);
    EXPECT_LE(std::abs(b.ids - a.ids),
              1e-6 * std::abs(a.ids) + 10.0 * std::abs(a.gm) * 1e-9 + 1e-18)
        << "sample " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Polarities, FinFetPolarity, ::testing::Bool());

class MtjStateGrid : public ::testing::TestWithParam<models::MtjState> {};

TEST_P(MtjStateGrid, CurrentManyBitIdenticalToScalar) {
  const models::MTJ mtj(models::paper_mtj());
  const auto volts = random_biases(256, -0.6, 0.6);
  std::vector<models::MTJ::IV> lanes(volts.size());
  mtj.current_many(GetParam(), volts.data(), volts.size(), lanes.data());
  for (std::size_t i = 0; i < volts.size(); ++i) {
    const auto ref = mtj.current(GetParam(), volts[i]);
    EXPECT_EQ(ref.current, lanes[i].current) << "sample " << i;
    EXPECT_EQ(ref.conductance, lanes[i].conductance) << "sample " << i;
  }
}

TEST_P(MtjStateGrid, CurrentMonotonicOddAndPositiveConductance) {
  const models::MTJ mtj(models::paper_mtj());
  std::vector<double> volts(241);
  for (std::size_t i = 0; i < volts.size(); ++i) {
    volts[i] = -0.6 + 0.005 * static_cast<double>(i);
  }
  std::vector<models::MTJ::IV> out(volts.size());
  mtj.current_many(GetParam(), volts.data(), volts.size(), out.data());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_GT(out[i].conductance, 0.0) << "v = " << volts[i];
    if (volts[i] != 0.0) {
      EXPECT_EQ(std::signbit(out[i].current), std::signbit(volts[i]))
          << "v = " << volts[i];
    }
    if (i > 0) {
      EXPECT_GT(out[i].current, out[i - 1].current)
          << "I(V) not strictly increasing at v = " << volts[i];
    }
  }
}

TEST_P(MtjStateGrid, ContinuousUnderBiasAndTmrPerturbation) {
  auto p1 = models::paper_mtj();
  auto p2 = p1;
  p2.tmr0 += 1e-9;
  const models::MTJ m1(p1), m2(p2);
  const auto volts = random_biases(64, -0.6, 0.6);
  const double h = 1e-7;
  for (double v : volts) {
    const auto a = m1.current(GetParam(), v);
    const auto b = m1.current(GetParam(), v + h);
    EXPECT_LE(std::abs(b.current - a.current),
              10.0 * h * a.conductance + 1e-15)
        << "bias step at v = " << v;
    const auto c = m2.current(GetParam(), v);
    EXPECT_LE(std::abs(c.current - a.current),
              1e-6 * std::abs(a.current) + 1e-15)
        << "tmr0 perturbation at v = " << v;
  }
}

TEST(MtjStates, ParallelConductsMoreThanAntiparallel) {
  const models::MTJ mtj(models::paper_mtj());
  for (double v : random_biases(64, -0.6, 0.6)) {
    if (v == 0.0) continue;
    const auto p = mtj.current(models::MtjState::kParallel, v);
    const auto ap = mtj.current(models::MtjState::kAntiparallel, v);
    EXPECT_GE(std::abs(p.current), std::abs(ap.current)) << "v = " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(States, MtjStateGrid,
                         ::testing::Values(models::MtjState::kParallel,
                                           models::MtjState::kAntiparallel));

}  // namespace
}  // namespace nvsram
