// Property-based parameterized sweeps: model invariants that must hold at
// EVERY point of a benchmark-parameter grid, and device-model properties
// over a bias/geometry grid.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/energy_model.h"
#include "models/finfet.h"
#include "models/mtj.h"
#include "util/stats.h"

namespace nvsram {
namespace {

using core::Architecture;
using core::BenchmarkParams;
using core::EnergyModel;

sram::CellEnergetics grid_6t() {
  sram::CellEnergetics c;
  c.t_clk = 1.0 / 300e6;
  c.e_read = 3.8e-15;
  c.e_write = 4.9e-15;
  c.p_static_normal = 23.2e-9;
  c.p_static_sleep = 9.5e-9;
  c.p_static_shutdown = 30e-12;
  c.e_sleep_transition = 1e-15;
  return c;
}

sram::CellEnergetics grid_nv() {
  sram::CellEnergetics c = grid_6t();
  c.p_static_normal = 23.9e-9;
  c.p_static_sleep = 10.2e-9;
  c.e_store = 400e-15;
  c.t_store = 24e-9;
  c.e_restore = 33e-15;
  c.t_restore = 2.1e-9;
  return c;
}

// ---- energy-model grid: (architecture, n_rw, rows, t_sl) -----------------

using GridPoint = std::tuple<Architecture, int, int, double>;

class ModelGrid : public ::testing::TestWithParam<GridPoint> {
 protected:
  ModelGrid() : model_(grid_6t(), grid_nv()) {}
  BenchmarkParams params() const {
    const auto [a, n_rw, rows, t_sl] = GetParam();
    BenchmarkParams p;
    p.n_rw = n_rw;
    p.rows = rows;
    p.t_sl = t_sl;
    return p;
  }
  Architecture arch() const { return std::get<0>(GetParam()); }
  EnergyModel model_;
};

TEST_P(ModelGrid, BreakdownNonNegativeAndSumsToTotal) {
  const auto b = model_.cycle_energy(arch(), params());
  for (double part : {b.access, b.standby, b.sleep, b.store, b.store_wait,
                      b.shutdown, b.restore, b.restore_wait, b.peripheral}) {
    EXPECT_GE(part, 0.0);
  }
  const double sum = b.access + b.standby + b.sleep + b.store + b.store_wait +
                     b.shutdown + b.restore + b.restore_wait + b.peripheral;
  EXPECT_NEAR(b.total(), sum, 1e-24);
  EXPECT_GT(b.duration, 0.0);
}

TEST_P(ModelGrid, EnergyAffineInShutdownTime) {
  // E(t_sd) must be exactly affine: E(2t) - E(t) == E(t) - E(0).
  auto p = params();
  p.t_sd = 0.0;
  const double e0 = model_.e_cyc(arch(), p);
  p.t_sd = 1e-4;
  const double e1 = model_.e_cyc(arch(), p);
  p.t_sd = 2e-4;
  const double e2 = model_.e_cyc(arch(), p);
  EXPECT_NEAR(e2 - e1, e1 - e0, 1e-9 * std::max(e1, 1e-20));
}

TEST_P(ModelGrid, SlopeMatchesDeclaredShutdownPower) {
  auto p = params();
  p.t_sd = 0.0;
  const double e0 = model_.e_cyc(arch(), p);
  p.t_sd = 1e-3;
  const double slope = (model_.e_cyc(arch(), p) - e0) / 1e-3;
  EXPECT_NEAR(slope, model_.shutdown_slope(arch()),
              1e-6 * model_.shutdown_slope(arch()) + 1e-18);
}

TEST_P(ModelGrid, StoreFreeNeverCostsMore) {
  auto p = params();
  const double full = model_.e_cyc(arch(), p);
  p.store_free_shutdown = true;
  EXPECT_LE(model_.e_cyc(arch(), p), full * (1.0 + 1e-12));
}

TEST_P(ModelGrid, EnergyLinearInNrwWhenPhasesFixed) {
  // With t_sl folded in, the inner loop repeats identically:
  // E(2n) - E(n) == E(3n) - E(2n).
  auto p = params();
  const int n = p.n_rw;
  const double e1 = model_.e_cyc(arch(), p);
  p.n_rw = 2 * n;
  const double e2 = model_.e_cyc(arch(), p);
  p.n_rw = 3 * n;
  const double e3 = model_.e_cyc(arch(), p);
  EXPECT_NEAR(e3 - e2, e2 - e1, 1e-9 * std::max(e2, 1e-20));
}

TEST_P(ModelGrid, BetConsistentWithCurveCrossing) {
  if (arch() == Architecture::kOSR) return;
  const auto bet = model_.break_even_time(arch(), params());
  if (!bet || *bet == 0.0) return;
  auto p = params();
  p.t_sd = *bet * 0.5;
  EXPECT_GT(model_.e_cyc(arch(), p), model_.e_cyc(Architecture::kOSR, p));
  p.t_sd = *bet * 2.0;
  EXPECT_LT(model_.e_cyc(arch(), p), model_.e_cyc(Architecture::kOSR, p));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelGrid,
    ::testing::Combine(
        ::testing::Values(Architecture::kOSR, Architecture::kNVPG,
                          Architecture::kNOF),
        ::testing::Values(1, 10, 1000),
        ::testing::Values(1, 32, 1024),
        ::testing::Values(0.0, 100e-9, 1e-6)));

// ---- FinFET geometry grid --------------------------------------------------

class FinGeometryGrid : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(FinGeometryGrid, CurrentScalesWithEffectiveWidth) {
  const auto [fins, height] = GetParam();
  auto base = models::ptm20_nmos(1);
  auto scaled = base;
  scaled.fin_count = fins;
  scaled.fin_height = height;
  const models::FinFET f_base(base), f_scaled(scaled);
  const double width_ratio =
      scaled.effective_width() / base.effective_width();
  EXPECT_NEAR(f_scaled.on_current() / f_base.on_current(), width_ratio, 1e-9);
  EXPECT_NEAR(f_scaled.off_current() / f_base.off_current(), width_ratio,
              1e-9);
}

TEST_P(FinGeometryGrid, CapacitanceGrowsWithWidth) {
  const auto [fins, height] = GetParam();
  auto p = models::ptm20_nmos(1);
  const double c1 = p.cgs();
  p.fin_count = fins;
  p.fin_height = height;
  EXPECT_GE(p.cgs(), c1 * 0.999);
}

INSTANTIATE_TEST_SUITE_P(Geometry, FinGeometryGrid,
                         ::testing::Combine(::testing::Values(1, 2, 4, 7),
                                            ::testing::Values(28e-9, 35e-9,
                                                              45e-9)));

// ---- MTJ scaling grid --------------------------------------------------------

class MtjDiameterGrid : public ::testing::TestWithParam<double> {};

TEST_P(MtjDiameterGrid, ResistanceAndIcScaleWithArea) {
  const double d = GetParam();
  auto p = models::paper_mtj();
  p.diameter = d;
  const models::MTJ m(p);
  // R ~ 1/A, Ic ~ A: their product is diameter-independent.
  const double product = p.rp0() * p.critical_current();
  auto ref = models::paper_mtj();
  const double ref_product = ref.rp0() * ref.critical_current();
  EXPECT_NEAR(product, ref_product, 1e-9 * ref_product);
  // The half-TMR voltage is geometry-independent by construction.
  EXPECT_NEAR(m.tmr(p.vh), 0.5 * p.tmr0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Diameters, MtjDiameterGrid,
                         ::testing::Values(10e-9, 20e-9, 30e-9, 45e-9));

}  // namespace
}  // namespace nvsram
