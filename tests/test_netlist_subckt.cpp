// Netlist subcircuits, controlled-source cards, and the .ac card.
#include <gtest/gtest.h>

#include <cmath>

#include "spice/controlled.h"
#include "spice/elements.h"
#include "spice/netlist_parser.h"

namespace nvsram::spice {
namespace {

TEST(Subckt, BasicInstantiation) {
  NetlistParser p;
  auto net = p.parse(
      "divider as a subckt\n"
      ".subckt div top bot mid\n"
      "R1 top mid 1k\n"
      "R2 mid bot 1k\n"
      ".ends\n"
      "V1 in 0 DC 2\n"
      "X1 in 0 out div\n"
      ".probe v(out)\n");
  // 1 source + 2 resistors inside the instance.
  EXPECT_EQ(net->circuit().devices().size(), 3u);
  EXPECT_NE(net->circuit().find_device("X1.R1"), nullptr);
  const auto sol = net->run_op();
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR(sol->node_voltage(net->circuit().find_node("out")), 1.0, 1e-6);
}

TEST(Subckt, InternalNodesAreIsolated) {
  NetlistParser p;
  auto net = p.parse(
      "two instances\n"
      ".subckt rc in out\n"
      "R1 in mid 1k\n"
      "R2 mid out 1k\n"
      ".ends\n"
      "V1 a 0 DC 1\n"
      "X1 a b rc\n"
      "X2 b 0 rc\n");
  // Each instance has its own "mid".
  EXPECT_TRUE(net->circuit().has_node("X1.mid"));
  EXPECT_TRUE(net->circuit().has_node("X2.mid"));
  const auto sol = net->run_op();
  ASSERT_TRUE(sol.has_value());
  // Series chain of 4 x 1k from 1 V: b = 0.5 V.
  EXPECT_NEAR(sol->node_voltage(net->circuit().find_node("b")), 0.5, 1e-6);
}

TEST(Subckt, NestedInstantiation) {
  NetlistParser p;
  auto net = p.parse(
      "nested\n"
      ".subckt unit a b\n"
      "R1 a b 1k\n"
      ".ends\n"
      ".subckt pair a b\n"
      "X1 a m unit\n"
      "X2 m b unit\n"
      ".ends\n"
      "V1 in 0 DC 1\n"
      "Xp in 0 pair\n");
  EXPECT_NE(net->circuit().find_device("Xp.X1.R1"), nullptr);
  EXPECT_TRUE(net->circuit().has_node("Xp.m"));
  const auto sol = net->run_op();
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR(sol->node_voltage(net->circuit().find_node("Xp.m")), 0.5, 1e-6);
}

TEST(Subckt, GroundStaysGlobalInside) {
  NetlistParser p;
  auto net = p.parse(
      "ground ref\n"
      ".subckt pull a\n"
      "R1 a 0 1k\n"
      ".ends\n"
      "V1 in 0 DC 1\n"
      "R0 in x 1k\n"
      "X1 x pull\n");
  const auto sol = net->run_op();
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR(sol->node_voltage(net->circuit().find_node("x")), 0.5, 1e-6);
}

TEST(Subckt, PortArityChecked) {
  NetlistParser p;
  EXPECT_THROW(p.parse("title\n"
                       ".subckt div a b c\n"
                       "R1 a b 1k\n"
                       ".ends\n"
                       "X1 n1 n2 div\n"),
               NetlistError);
}

TEST(Subckt, UnknownSubcircuitRejected) {
  NetlistParser p;
  EXPECT_THROW(p.parse("title\nX1 a b nothere\n"), NetlistError);
}

TEST(Subckt, DuplicateDefinitionRejected) {
  NetlistParser p;
  EXPECT_THROW(p.parse("title\n"
                       ".subckt u a\nR1 a 0 1k\n.ends\n"
                       ".subckt u a\nR1 a 0 2k\n.ends\n"),
               NetlistError);
}

TEST(Subckt, EndsWithoutSubcktRejected) {
  NetlistParser p;
  EXPECT_THROW(p.parse("title\n.ends\n"), NetlistError);
}

TEST(Subckt, MixedDevicesInsideBody) {
  // An inverter as a subcircuit, instantiated twice into a buffer.
  NetlistParser p;
  auto net = p.parse(
      "buffer\n"
      ".subckt inv in out vdd\n"
      "M1 out in vdd pfin\n"
      "M2 out in 0 nfin\n"
      ".ends\n"
      "Vdd vdd 0 DC 0.9\n"
      "Vin a 0 DC 0\n"
      "X1 a b vdd inv\n"
      "X2 b c vdd inv\n");
  const auto sol = net->run_op();
  ASSERT_TRUE(sol.has_value());
  EXPECT_GT(sol->node_voltage(net->circuit().find_node("b")), 0.85);
  EXPECT_LT(sol->node_voltage(net->circuit().find_node("c")), 0.05);
}

// ---- E / G cards ----

TEST(ControlledCards, VcvsParsedAndSolved) {
  NetlistParser p;
  auto net = p.parse(
      "vcvs\n"
      "V1 in 0 DC 0.5\n"
      "E1 out 0 in 0 3\n"
      "RL out 0 1k\n");
  auto* e = dynamic_cast<VCVS*>(net->circuit().find_device("E1"));
  ASSERT_NE(e, nullptr);
  EXPECT_DOUBLE_EQ(e->gain(), 3.0);
  const auto sol = net->run_op();
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR(sol->node_voltage(net->circuit().find_node("out")), 1.5, 1e-6);
}

TEST(ControlledCards, VccsParsedAndSolved) {
  NetlistParser p;
  auto net = p.parse(
      "vccs\n"
      "V1 in 0 DC 1\n"
      "G1 0 out in 0 2m\n"
      "RL out 0 1k\n");
  const auto sol = net->run_op();
  ASSERT_TRUE(sol.has_value());
  // 2 mA pushed INTO out (from 0 through the source): +2 V on 1k.
  EXPECT_NEAR(sol->node_voltage(net->circuit().find_node("out")), 2.0, 1e-5);
}

// ---- .ac card ----

TEST(AcCard, ParsedAndRun) {
  NetlistParser p;
  auto net = p.parse(
      "rc bode\n"
      "V1 in 0 DC 0\n"
      "R1 in out 1k\n"
      "C1 out 0 1p\n"
      ".probe v(out)\n"
      ".ac V1 1e6 1e10 10\n");
  ASSERT_TRUE(net->ac_card().has_value());
  EXPECT_EQ(net->ac_card()->source, "V1");
  const auto wave = net->run_ac();
  const double f3db = 1.0 / (2.0 * M_PI * 1e3 * 1e-12);
  EXPECT_NEAR(wave.value_at("mag:v(out)", f3db), 1.0 / std::sqrt(2.0), 0.02);
}

TEST(AcCard, ValidatesRange) {
  NetlistParser p;
  EXPECT_THROW(p.parse("t\nV1 a 0 DC 0\nR1 a 0 1k\n.ac V1 1e9 1e6\n"),
               NetlistError);
}

TEST(AcCard, MissingCardThrowsOnRun) {
  NetlistParser p;
  auto net = p.parse("t\nR1 a 0 1k\n");
  EXPECT_THROW(net->run_ac(), std::logic_error);
}

}  // namespace
}  // namespace nvsram::spice
