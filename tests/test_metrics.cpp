// Cell design metrics: write margin, read current, data retention voltage.
#include <gtest/gtest.h>

#include "models/paper_params.h"
#include "sram/metrics.h"

namespace nvsram::sram {
namespace {

using models::PaperParams;

TEST(CellMetricsTest, WriteMarginIsHealthy) {
  const double wm = write_margin(PaperParams::table1(), CellKind::k6T);
  // The (1,1,1) cell is write-friendly: the flip happens well before the
  // bitline reaches ground, but a write at full VDD must NOT flip (that
  // would be a read disturb).
  EXPECT_GT(wm, 0.3);
  EXPECT_LT(wm, 0.9);
}

TEST(CellMetricsTest, ReadCurrentDrivesTheBitline) {
  const double i = read_current(PaperParams::table1(), CellKind::k6T);
  // One access fin in series with one driver fin: tens of uA.
  EXPECT_GT(i, 10e-6);
  EXPECT_LT(i, 120e-6);
}

TEST(CellMetricsTest, RetentionVoltageBelowSleepRail) {
  const auto pp = PaperParams::table1();
  const double drv = data_retention_voltage(pp, CellKind::k6T);
  // The paper sleeps at 0.7 V: that must sit above the DRV with margin.
  EXPECT_LT(drv, pp.vvdd_sleep - 0.15);
  EXPECT_GT(drv, 0.05);  // but not literally zero
}

TEST(CellMetricsTest, NvCellMetricsTrack6T) {
  // Electrical separation: the NV cell's metrics stay close to the 6T's.
  const auto pp = PaperParams::table1();
  const auto m6 = measure_cell_metrics(pp, CellKind::k6T);
  const auto mn = measure_cell_metrics(pp, CellKind::kNvSram);
  EXPECT_NEAR(mn.write_margin, m6.write_margin, 0.1);
  EXPECT_NEAR(mn.read_current, m6.read_current, 0.2 * m6.read_current);
  EXPECT_NEAR(mn.retention_voltage, m6.retention_voltage, 0.1);
}

TEST(CellMetricsTest, HigherVthRaisesRetentionVoltage) {
  auto weak = PaperParams::table1();
  // A hypothetical low-leakage process: higher Vth -> weaker inverters at
  // low rail -> retention degrades later... actually higher Vth devices
  // stop regenerating earlier, raising the DRV.
  // Verify the sensitivity direction via the fin geometry instead: a taller
  // fin (stronger device) must not hurt retention.
  auto strong = PaperParams::table1();
  strong.fin_height = 40e-9;
  const double drv_base = data_retention_voltage(weak, CellKind::k6T);
  const double drv_strong = data_retention_voltage(strong, CellKind::k6T);
  EXPECT_LE(drv_strong, drv_base + 0.02);
}

TEST(CellMetricsTest, RetentionRespectsMinSnmFloor) {
  const auto pp = PaperParams::table1();
  const double loose = data_retention_voltage(pp, CellKind::k6T, 0.01);
  const double strict = data_retention_voltage(pp, CellKind::k6T, 0.10);
  EXPECT_GT(strict, loose);  // demanding more margin needs more voltage
}

}  // namespace
}  // namespace nvsram::sram
