// Every sample netlist shipped in netlists/ must parse and run end to end.
// NVSRAM_NETLIST_DIR is injected by CMake.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "spice/mtj_element.h"
#include "spice/netlist_parser.h"

namespace nvsram::spice {
namespace {

std::string read_file(const std::string& name) {
  const std::string path = std::string(NVSRAM_NETLIST_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing sample netlist " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(SampleNetlists, NvsramStoreSwitchesTheMtj) {
  NetlistParser p;
  auto net = p.parse(read_file("nvsram_store.cir"));
  ASSERT_TRUE(net->tran_card().has_value());
  (void)net->run_tran();
  auto* mtj = dynamic_cast<MTJElement*>(net->circuit().find_device("Y1"));
  ASSERT_NE(mtj, nullptr);
  EXPECT_EQ(mtj->state(), models::MtjState::kAntiparallel);
}

TEST(SampleNetlists, LatchFlipsOnWritePulse) {
  NetlistParser p;
  auto net = p.parse(read_file("sram_latch.cir"));
  const auto wave = net->run_tran();
  // Before the pulse the latch sits in whichever state DC picked; after the
  // pulse Q must be high (QB was yanked low).
  EXPECT_GT(wave.value_at("v(q)", 5.8e-9), 0.8);
  EXPECT_LT(wave.value_at("v(qb)", 5.8e-9), 0.1);
}

TEST(SampleNetlists, RcBodeHasPoleNear160MHz) {
  NetlistParser p;
  auto net = p.parse(read_file("rc_bode.cir"));
  ASSERT_TRUE(net->ac_card().has_value());
  const auto wave = net->run_ac();
  EXPECT_NEAR(wave.value_at("mag:v(out)", 159.2e6), 0.707, 0.02);
}

TEST(SampleNetlists, MtjSenseSweepShowsStateContrast) {
  NetlistParser p;
  auto net = p.parse(read_file("mtj_sense.cir"));
  ASSERT_TRUE(net->dc_card().has_value());
  const auto wave = net->run_dc_sweep();
  ASSERT_EQ(wave.samples(), 21u);
  // AP junction (~12 kOhm at low bias) against the 9 kOhm reference: the
  // mid node sits above half the drive.
  const double v_mid = wave.series("v(mid)").back();
  EXPECT_GT(v_mid, 0.2);   // > half of 0.4 V
  EXPECT_LT(v_mid, 0.3);
}

TEST(SampleNetlists, FullCellSubcircuitPowerGatingRoundTrip) {
  NetlistParser p;
  auto net = p.parse(read_file("nvsram_cell_full.cir"));
  const auto wave = net->run_tran();

  // After the write window, Q holds '1'.
  EXPECT_GT(wave.value_at("v(Xcell.q)", 8e-9), 0.8);
  // The store pulses drove both MTJs to the data state.
  auto* y1 = dynamic_cast<MTJElement*>(net->circuit().find_device("Xcell.Y1"));
  auto* y2 = dynamic_cast<MTJElement*>(net->circuit().find_device("Xcell.Y2"));
  ASSERT_TRUE(y1 && y2);
  EXPECT_EQ(y1->state(), models::MtjState::kAntiparallel);  // Q side (H)
  EXPECT_EQ(y2->state(), models::MtjState::kParallel);      // QB side (L)
  // The rail collapsed during the gated window...
  EXPECT_LT(wave.value_at("v(vvdd)", 2.0e-6), 0.25);
  // ...and the data returns after the restore.
  EXPECT_GT(wave.value_at("v(Xcell.q)", 2.118e-6), 0.8);
}

}  // namespace
}  // namespace nvsram::spice
