// Differential suite for the hierarchical summary-based lint engine
// (lint/hier/): on every corpus deck, fixture, and generated array,
// lint_netlist_hier must produce exactly the same (rule, severity) count
// multiset as the flat lint_netlist — the engine is only allowed to be
// faster, never different.  Clean generated arrays must additionally take
// the composed fast path (a silent fallback would erase the speedup the
// benchmark and CI gate assert).
#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "lint/hier/hier_linter.h"
#include "lint/hier/summary.h"
#include "lint/lint_cache.h"
#include "lint/linter.h"
#include "lint/report.h"
#include "spice/netlist_parser.h"
#include "support/array_gen.h"

namespace {

using nvsram::lint::Diagnostic;
using nvsram::lint::LintOptions;
using nvsram::lint::LintReport;
using nvsram::lint::Severity;
using nvsram::spice::NetlistParser;
using nvsram::spice::ParsedNetlist;
using nvsram::testsupport::ArrayDefect;
using nvsram::testsupport::make_nvsram_array_netlist;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// (rule, severity) -> count; the verdict-identity contract of the engine.
std::map<std::pair<std::string, int>, int> verdict(const LintReport& report) {
  std::map<std::pair<std::string, int>, int> out;
  for (const auto& d : report.diagnostics()) {
    ++out[{d.rule, static_cast<int>(d.severity)}];
  }
  return out;
}

std::string verdict_to_string(
    const std::map<std::pair<std::string, int>, int>& v) {
  std::ostringstream ss;
  for (const auto& [key, count] : v) {
    ss << key.first << "/sev" << key.second << " x" << count << "\n";
  }
  return ss.str();
}

void expect_identical(const std::string& text, const std::string& label,
                      const LintOptions& options = {}) {
  NetlistParser parser;
  std::unique_ptr<ParsedNetlist> nl;
  try {
    nl = parser.parse(text);
  } catch (const std::exception&) {
    return;  // unparsable decks never reach either engine
  }
  const LintReport flat = nvsram::lint::lint_netlist(*nl, options);
  const LintReport hier = nvsram::lint::lint_netlist_hier(*nl, options);
  EXPECT_EQ(verdict(flat), verdict(hier))
      << label << ": flat vs hierarchical verdicts diverge\nflat:\n"
      << verdict_to_string(verdict(flat)) << "hier:\n"
      << verdict_to_string(verdict(hier)) << "fallback reason: "
      << nvsram::lint::hier::last_fallback_reason();
}

// ---- corpus: netlists/ + tests/netlists_bad/ -----------------------------

TEST(HierLintDifferential, SampleNetlists) {
  const std::vector<std::string> decks = {
      "mtj_sense.cir", "nvsram_cell_full.cir", "nvsram_store.cir",
      "rc_bode.cir",   "sram_latch.cir",
  };
  for (const auto& name : decks) {
    expect_identical(read_file(std::string(NVSRAM_NETLIST_DIR) + "/" + name),
                     name);
  }
}

TEST(HierLintDifferential, BadFixtures) {
  const std::vector<std::string> decks = {
      "bad_card_unresolved.cir",
      "bad_clock_store.cir",
      "bad_cross_coupling.cir",
      "bad_dangling_branch.cir",
      "bad_data_lost.cir",
      "bad_data_read_before_restore.cir",
      "bad_data_redundant_store.cir",
      "bad_data_stale_restore.cir",
      "bad_data_store_truncated.cir",
      "bad_disconnected_block.cir",
      "bad_domain_floating.cir",
      "bad_float_node.cir",
      "bad_jc_units.cir",
      "bad_missing_isolation.cir",
      "bad_mtj_orientation.cir",
      "bad_no_dc_path.cir",
      "bad_nof_store_missing.cir",
      "bad_nonphysical_value.cir",
      "bad_pwl_nonmonotonic.cir",
      "bad_restore_order.cir",
      "bad_self_connected.cir",
      "bad_shared_rail.cir",
      "bad_shutdown_short.cir",
      "bad_sleep_retention.cir",
      "bad_sneak_path.cir",
      "bad_store_gate_overlap.cir",
      "bad_store_short.cir",
      "bad_structural_singular.cir",
      "bad_subckt_unused_port.cir",
      "bad_time_scale.cir",
      "bad_units_dimension.cir",
      "bad_voltage_range.cir",
      "bad_vsource_loop.cir",
      "bad_vsource_shorted.cir",
      "bad_wl_in_off_window.cir",
      "bad_wl_precharge_overlap.cir",
  };
  for (const auto& name : decks) {
    expect_identical(
        read_file(std::string(NVSRAM_BAD_NETLIST_DIR) + "/" + name), name);
  }
}

// ---- architecture bench decks (NVPG / NOF / OSR schedules) ---------------
// The generated array deck carries the NVPG-style store/gate/restore
// schedule; the .arch card switches the protocol pass's state machine, so
// one deck per architecture exercises all three temporal rule sets through
// both engines.

TEST(HierLintDifferential, ArchBenchDecks) {
  for (const char* arch : {"nvpg", "nof", "osr"}) {
    std::string deck = make_nvsram_array_netlist(2, 2);
    deck += ".arch " + std::string(arch) + "\n";
    expect_identical(deck, std::string("array 2x2 .arch ") + arch);
  }
}

// ---- generated arrays: clean + defect variants ---------------------------

TEST(HierLintDifferential, CleanArrays) {
  for (const int n : {4, 16, 64}) {
    expect_identical(make_nvsram_array_netlist(n, n),
                     "clean array " + std::to_string(n) + "x" +
                         std::to_string(n));
  }
}

TEST(HierLintDifferential, DefectArrays) {
  expect_identical(make_nvsram_array_netlist(16, 16, ArrayDefect::kFloatNode),
                   "float-node array 16x16");
  expect_identical(make_nvsram_array_netlist(16, 16, ArrayDefect::kUnusedPort),
                   "unused-port array 16x16");
  expect_identical(make_nvsram_array_netlist(16, 16, ArrayDefect::kBadValue),
                   "bad-value array 16x16");
}

TEST(HierLintDifferential, OptionsRespected) {
  LintOptions opt;
  opt.disable(nvsram::lint::rules::kFloatNode);
  opt.min_severity = Severity::kWarning;
  expect_identical(make_nvsram_array_netlist(4, 4, ArrayDefect::kFloatNode),
                   "float-node array 4x4, float-node disabled", opt);
}

// ---- fast path engagement ------------------------------------------------

TEST(HierLintFastPath, CleanArraysCompose) {
  for (const int n : {4, 16}) {
    NetlistParser parser;
    auto nl = parser.parse(make_nvsram_array_netlist(n, n));
    (void)nvsram::lint::lint_netlist_hier(*nl);
    EXPECT_TRUE(nvsram::lint::hier::last_run_used_fast_path())
        << n << "x" << n << " fell back: "
        << nvsram::lint::hier::last_fallback_reason();
  }
}

TEST(HierLintFastPath, DefectArrayStillComposes) {
  // A definition-local value fault leaves every structural certificate
  // intact; the defect replicates through the summary, not through a flat
  // fallback.
  NetlistParser parser;
  auto nl =
      parser.parse(make_nvsram_array_netlist(4, 4, ArrayDefect::kBadValue));
  const LintReport report = nvsram::lint::lint_netlist_hier(*nl);
  EXPECT_TRUE(nvsram::lint::hier::last_run_used_fast_path())
      << nvsram::lint::hier::last_fallback_reason();
  int value_diags = 0;
  for (const auto& d : report.diagnostics()) {
    if (d.rule == nvsram::lint::rules::kNonphysicalValue) ++value_diags;
  }
  EXPECT_EQ(value_diags, 16) << "one replicated finding per instance";
}

TEST(HierLintFastPath, StructureBreakingDefectFallsBack) {
  // A dangling in-definition node breaks the internal-diagonal certificate
  // (and the flat pass really does emit structural findings for it), so the
  // engine must decline to compose — verdict identity over speed.
  NetlistParser parser;
  auto nl =
      parser.parse(make_nvsram_array_netlist(4, 4, ArrayDefect::kFloatNode));
  const LintReport flat = nvsram::lint::lint_netlist(*nl);
  const LintReport hier = nvsram::lint::lint_netlist_hier(*nl);
  EXPECT_FALSE(nvsram::lint::hier::last_run_used_fast_path());
  EXPECT_EQ(verdict(flat), verdict(hier));
}

TEST(HierLintFastPath, NestedInstancesFallBack) {
  const char* deck =
      "nested subckt deck\n"
      ".subckt inner a b\n"
      "R1 a b 1k\n"
      ".ends\n"
      ".subckt outer p q\n"
      "X1 p q inner\n"
      ".ends\n"
      "V1 top 0 DC 1.0\n"
      "Xo top 0x gnd2 outer\n"
      "R2 gnd2 0 1k\n"
      ".end\n";
  NetlistParser parser;
  std::unique_ptr<ParsedNetlist> nl;
  try {
    nl = parser.parse(deck);
  } catch (const std::exception&) {
    GTEST_SKIP() << "nested deck not parsable in this grammar";
  }
  const LintReport flat = nvsram::lint::lint_netlist(*nl);
  const LintReport hier = nvsram::lint::lint_netlist_hier(*nl);
  EXPECT_FALSE(nvsram::lint::hier::last_run_used_fast_path());
  EXPECT_EQ(verdict(flat), verdict(hier));
}

// ---- summary cache -------------------------------------------------------

TEST(HierLintCache, SummariesHitAcrossDecks) {
  nvsram::lint::lint_cache_clear();
  NetlistParser parser;
  auto small = parser.parse(make_nvsram_array_netlist(2, 2));
  auto large = parser.parse(make_nvsram_array_netlist(4, 4));
  (void)nvsram::lint::lint_netlist_hier(*small);
  const auto after_first = nvsram::lint::lint_cache_stats();
  EXPECT_EQ(after_first.summary_entries, 1u);
  (void)nvsram::lint::lint_netlist_hier(*large);
  const auto after_second = nvsram::lint::lint_cache_stats();
  // Same definition text in both decks: the second deck reuses the summary.
  EXPECT_EQ(after_second.summary_entries, 1u);
  EXPECT_GT(after_second.summary_hits, after_first.summary_hits);
}

// ---- subckt-unused-port attribution (regression) -------------------------
// The unused-port diagnostic must fire once per definition, attributed to
// the .subckt card's line, and must treat port references in the body
// case-insensitively (ports resolve case-insensitively, so "BL" used as
// "bl" is not unused).

TEST(SubcktUnusedPort, AttributionAndCaseFolding) {
  const char* deck =
      "unused port attribution\n"
      ".subckt cell BL wl nc\n"
      "R1 bl wl 1k\n"
      ".ends\n"
      "V1 a 0 DC 1.0\n"
      "X1 a b c cell\n"
      "X2 a b c cell\n"
      "R9 b 0 1k\n"
      "R8 c 0 1k\n"
      ".end\n";
  NetlistParser parser;
  auto nl = parser.parse(deck);
  const LintReport report = nvsram::lint::lint_netlist(*nl);
  std::vector<const Diagnostic*> unused;
  for (const auto& d : report.diagnostics()) {
    if (d.rule == nvsram::lint::rules::kSubcktUnusedPort) unused.push_back(&d);
  }
  ASSERT_EQ(unused.size(), 1u)
      << "one finding per definition, not per instance";
  // "BL" is referenced as "bl" in the body: only "nc" is unused.
  EXPECT_NE(unused[0]->message.find("'nc'"), std::string::npos)
      << unused[0]->message;
  EXPECT_EQ(unused[0]->message.find("'BL'"), std::string::npos)
      << unused[0]->message;
  EXPECT_EQ(unused[0]->line, 2) << "attributed to the .subckt card line";
}

}  // namespace
