// End-to-end: SPICE characterization feeding the architecture model — the
// paper's evaluation claims on the real simulated numbers.
#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "util/stats.h"
#include "util/watchdog.h"

namespace nvsram {
namespace {

using core::Architecture;
using core::BenchmarkParams;
using core::PowerGatingAnalyzer;

class AnalyzerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    analyzer_ = new PowerGatingAnalyzer(models::PaperParams::table1());
  }
  static void TearDownTestSuite() {
    delete analyzer_;
    analyzer_ = nullptr;
  }
  static PowerGatingAnalyzer* analyzer_;
};

PowerGatingAnalyzer* AnalyzerTest::analyzer_ = nullptr;

TEST_F(AnalyzerTest, CharacterizationVerified) {
  EXPECT_TRUE(analyzer_->cell_nv().store_verified);
  EXPECT_TRUE(analyzer_->cell_nv().restore_verified);
}

TEST_F(AnalyzerTest, Fig7aShapes) {
  BenchmarkParams base;
  base.t_sl = 100e-9;
  base.t_sd = 0.0;
  const std::vector<int> grid{1, 3, 10, 30, 100, 300, 1000, 3000, 10000};
  const auto osr = analyzer_->ecyc_vs_nrw(Architecture::kOSR, grid, base);
  const auto nvpg = analyzer_->ecyc_vs_nrw(Architecture::kNVPG, grid, base);
  const auto nof = analyzer_->ecyc_vs_nrw(Architecture::kNOF, grid, base);

  // NVPG -> OSR asymptotically (the residual few-percent gap is the NV
  // cell's slightly higher leakage/capacitance); NOF stays well above.
  EXPECT_GT(nvpg.front().second / osr.front().second, 2.0);
  EXPECT_LT(nvpg.back().second / osr.back().second, 1.10);
  EXPECT_GE(nvpg.back().second / osr.back().second, 1.0);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_GT(nof[i].second / osr[i].second, 2.5) << "n_rw=" << grid[i];
  }
  // NVPG ~ NOF at n_RW = 1 (same store count).
  EXPECT_NEAR(nvpg.front().second / nof.front().second, 1.0, 0.4);
}

TEST_F(AnalyzerTest, Fig7bLargeDomainCrossover) {
  BenchmarkParams base;
  base.t_sl = 100e-9;
  base.cols = 32;
  base.rows = 2048;  // 8 kB domain
  base.n_rw = 1;
  const double nvpg1 = analyzer_->model().e_cyc(Architecture::kNVPG, base);
  const double nof1 = analyzer_->model().e_cyc(Architecture::kNOF, base);
  EXPECT_GT(nvpg1, nof1);  // NVPG briefly loses for huge domains

  base.n_rw = 100;
  const double nvpg100 = analyzer_->model().e_cyc(Architecture::kNVPG, base);
  const double nof100 = analyzer_->model().e_cyc(Architecture::kNOF, base);
  EXPECT_LT(nvpg100, nof100);  // ...but recovers quickly
}

TEST_F(AnalyzerTest, Fig8NormalizedCurvesCrossUnity) {
  BenchmarkParams base;
  base.n_rw = 100;
  base.t_sl = 100e-9;
  const auto t_grid = util::logspace(1e-6, 1e-1, 26);
  const auto norm =
      analyzer_->ecyc_vs_tsd_normalized(Architecture::kNVPG, t_grid, base);
  // Starts above 1 (extra store energy), ends below 1 (leakage saved).
  EXPECT_GT(norm.front().second, 1.0);
  EXPECT_LT(norm.back().second, 1.0);
  std::vector<double> values;
  for (const auto& [t, v] : norm) values.push_back(v);
  EXPECT_TRUE(util::is_monotone_nonincreasing(values, 1e-9));
}

TEST_F(AnalyzerTest, BetInPaperBand) {
  BenchmarkParams base;
  base.n_rw = 10;
  base.rows = 32;
  base.t_sl = 100e-9;
  const auto bet = analyzer_->model().break_even_time(Architecture::kNVPG, base);
  ASSERT_TRUE(bet.has_value());
  EXPECT_GT(*bet, 10e-6);   // several 10 us
  EXPECT_LT(*bet, 200e-6);
}

TEST_F(AnalyzerTest, Fig9aBetVsRows) {
  BenchmarkParams base;
  base.n_rw = 100;
  base.t_sl = 100e-9;
  const std::vector<int> rows{32, 64, 128, 256, 512, 1024, 2048};
  const auto bets = analyzer_->bet_vs_rows(Architecture::kNVPG, rows, base);
  ASSERT_EQ(bets.size(), rows.size());
  std::vector<double> values;
  for (const auto& b : bets) values.push_back(b.bet);
  EXPECT_TRUE(util::is_monotone_nondecreasing(values));

  // Store-free shutdown: dramatically shorter BET.
  base.store_free_shutdown = true;
  const auto sf = analyzer_->bet_vs_rows(Architecture::kNVPG, rows, base);
  ASSERT_EQ(sf.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_LT(sf[i].bet, 0.75 * bets[i].bet) << "rows=" << rows[i];
  }
  // The paper's "several us" band is reached at light inner loops (its
  // bottom Fig. 9(a) curve is n_RW = 10).
  BenchmarkParams light = base;
  light.n_rw = 10;
  light.rows = 32;
  const auto bet_light =
      analyzer_->model().break_even_time(Architecture::kNVPG, light);
  ASSERT_TRUE(bet_light.has_value());
  EXPECT_LT(*bet_light, 10e-6);
}

TEST_F(AnalyzerTest, NofSlowdownIsSevere) {
  BenchmarkParams base;
  base.n_rw = 100;
  base.t_sl = 0.0;
  EXPECT_GT(analyzer_->cycle_time_ratio(Architecture::kNOF, base), 3.0);
  EXPECT_LT(analyzer_->cycle_time_ratio(Architecture::kNVPG, base), 1.05);
}

TEST(AnalyzerFast, Fig9bFastTechnologyShrinksBet) {
  PowerGatingAnalyzer slow(models::PaperParams::table1());
  PowerGatingAnalyzer fast(models::PaperParams::table1_fast());
  BenchmarkParams base;
  base.n_rw = 100;
  base.rows = 256;
  base.t_sl = 100e-9;
  const auto bet_slow = slow.model().break_even_time(Architecture::kNVPG, base);
  const auto bet_fast = fast.model().break_even_time(Architecture::kNVPG, base);
  ASSERT_TRUE(bet_slow && bet_fast);
  EXPECT_LT(*bet_fast, 0.6 * *bet_slow);
}

TEST(AnalyzerWatchdog, TinyBudgetExpiresInsideCharacterization) {
  // The characterization takes a few hundred ms; a 10 ms budget must fire
  // inside the SPICE phase (transient steps / ladder rungs check the
  // deadline) instead of letting construction run to completion.
  EXPECT_THROW(PowerGatingAnalyzer(models::PaperParams::table1(), 0.01),
               util::WatchdogError);
}

TEST(AnalyzerWatchdog, UnlimitedBudgetStillCharacterizes) {
  // 0 = unlimited is the default path every other test exercises; a large
  // finite budget must behave identically.
  PowerGatingAnalyzer an(models::PaperParams::table1(), 300.0);
  EXPECT_TRUE(an.cell_nv().store_verified);
}

}  // namespace
}  // namespace nvsram
