// Synthetic NV-SRAM array netlist generator for hierarchical-lint tests and
// benchmarks.
//
// Emits an N×M array of the paper's full NV-SRAM cell (netlists/
// nvsram_cell_full.cir) as a single `.subckt nvcell` definition instantiated
// rows×cols times: one shared power-switch + PS rail (vvdd), shared
// store/restore control (sr, ctrl), one wordline strap per row and one
// bit-line/bit-line-bar pair per column.  The schedule (write, store, power
// off, restore) is the single-cell deck's verbatim, so the generated array
// lints clean at every size — the hierarchical engine's fast path must
// certify it.
//
// `defect` injects a definition-local fault replicated into every instance,
// for diagnostic-deduplication and differential-with-findings tests.
#pragma once

#include <string>

namespace nvsram::testsupport {

enum class ArrayDefect {
  kNone,           // clean array
  kFloatNode,      // dangling capacitor node inside the cell: float-node +
                   // no-dc-path once per instance
  kUnusedPort,     // extra .subckt port never referenced by the body:
                   // subckt-unused-port once per definition
  kBadValue,       // leak diode with negative saturation current inside the
                   // cell: nonphysical-value once per instance, structure
                   // intact
};

// SPICE deck text for a rows×cols NV-SRAM array (rows, cols >= 1).
std::string make_nvsram_array_netlist(int rows, int cols,
                                      ArrayDefect defect = ArrayDefect::kNone);

}  // namespace nvsram::testsupport
