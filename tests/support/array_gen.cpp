#include "support/array_gen.h"

#include <sstream>

namespace nvsram::testsupport {

std::string make_nvsram_array_netlist(int rows, int cols, ArrayDefect defect) {
  std::ostringstream ss;
  ss << "NV-SRAM " << rows << "x" << cols
     << " array: write 1, store, power off, restore\n";

  // Cell definition: the Fig. 2 full NV-SRAM cell from
  // netlists/nvsram_cell_full.cir.
  ss << ".subckt nvcell bl blb wl vvdd sr ctrl";
  if (defect == ArrayDefect::kUnusedPort) ss << " spare";
  ss << "\n"
        "Mpu1 q  qb vvdd pfin\n"
        "Mpd1 q  qb 0    nfin\n"
        "Mpu2 qb q  vvdd pfin\n"
        "Mpd2 qb q  0    nfin\n"
        "Max1 bl  wl q  nfin\n"
        "Max2 blb wl qb nfin\n"
        "Mps1 q  sr y1 nfin\n"
        "Y1   ctrl y1 P\n"
        "Mps2 qb sr y2 nfin\n"
        "Y2   ctrl y2 P\n";
  if (defect == ArrayDefect::kFloatNode) ss << "Cf   fn q 1f\n";
  if (defect == ArrayDefect::kBadValue) ss << "Dleak q 0 is=-1e-15\n";
  ss << ".ends\n";

  // Shared supply, power switch, and store/restore schedule (verbatim from
  // the single-cell deck: super-cutoff window 60.5n..2105n).
  ss << "Vdd  vdd 0 DC 0.9\n"
        "Vpg  pg  0 PWL(60n 0 60.5n 1.0 2105n 1.0 2105.5n 0)\n"
        "Mpsw vvdd pg vdd pfin fins=7 vth=0.40\n"
        "Vsr  sr  0 PWL(10n 0 10.2n 0.65 58n 0.65 58.2n 0 2105n 0 2105.2n"
        " 0.65 2112n 0.65 2112.2n 0)\n"
        "Vctl ctrl 0 PWL(10n 0 34n 0 34.2n 0.5 58n 0.5 58.2n 0)\n";

  // Per-row wordline straps and per-column bit-line pairs.
  for (int r = 0; r < rows; ++r) {
    ss << "Vwl" << r << " wl" << r << " 0 PULSE(0 0.9 1n 50p 50p 2n)\n";
  }
  for (int c = 0; c < cols; ++c) {
    ss << "Vbl" << c << " bl" << c << " 0 DC 0.9\n";
    ss << "Vblb" << c << " blb" << c
       << " 0 PWL(0.5n 0.9 0.6n 0 3.4n 0 3.5n 0.9)\n";
  }

  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      ss << "X" << r << "_" << c << " bl" << c << " blb" << c << " wl" << r
         << " vvdd sr ctrl";
      if (defect == ArrayDefect::kUnusedPort) ss << " vdd";
      ss << " nvcell\n";
    }
  }

  ss << ".probe v(vvdd)\n"
        ".tran 2120n 10n\n"
        ".end\n";
  return ss.str();
}

}  // namespace nvsram::testsupport
