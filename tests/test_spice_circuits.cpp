// Circuit-level checks with FETs and MTJs: inverter VTC, power switch,
// MTJ switching inside a transient, and sparse-path consistency.
#include <gtest/gtest.h>

#include <cmath>

#include "models/paper_params.h"
#include "spice/circuit.h"
#include "spice/dc.h"
#include "spice/elements.h"
#include "spice/fet_element.h"
#include "spice/mtj_element.h"
#include "spice/tran.h"

namespace nvsram {
namespace {

using models::PaperParams;
using spice::Circuit;
using spice::DCAnalysis;
using spice::Probe;
using spice::SourceSpec;

struct InverterFixture {
  Circuit ckt;
  spice::NodeId n_in, n_out, n_vdd;
  spice::VSource* vin = nullptr;

  InverterFixture() {
    const auto pp = PaperParams::table1();
    n_in = ckt.node("in");
    n_out = ckt.node("out");
    n_vdd = ckt.node("vdd");
    vin = ckt.add<spice::VSource>("Vin", n_in, spice::kGround,
                                  SourceSpec::dc(0.0));
    ckt.add<spice::VSource>("Vdd", n_vdd, spice::kGround,
                            SourceSpec::dc(pp.vdd));
    spice::add_finfet(ckt, "pu", n_out, n_in, n_vdd, pp.pmos(1));
    spice::add_finfet(ckt, "pd", n_out, n_in, spice::kGround, pp.nmos(1));
  }
};

TEST(Inverter, RailToRailTransfer) {
  InverterFixture f;
  DCAnalysis dc(f.ckt);

  f.vin->set_spec(SourceSpec::dc(0.0));
  auto lo_in = dc.solve();
  ASSERT_TRUE(lo_in.has_value());
  EXPECT_GT(lo_in->node_voltage(f.n_out), 0.88);

  f.vin->set_spec(SourceSpec::dc(0.9));
  DCAnalysis dc2(f.ckt);
  auto hi_in = dc2.solve();
  ASSERT_TRUE(hi_in.has_value());
  EXPECT_LT(hi_in->node_voltage(f.n_out), 0.02);
}

TEST(Inverter, SwitchingThresholdNearMidRail) {
  InverterFixture f;
  std::vector<double> points;
  for (int i = 0; i <= 90; ++i) points.push_back(0.01 * i);
  spice::DCSweep sweep(
      f.ckt, [&](double v) { f.vin->set_spec(SourceSpec::dc(v)); }, points,
      {Probe::node_voltage(f.n_out, "out")});
  const auto wave = sweep.run();
  const auto vm = wave.cross_time("out", 0.45);  // where out crosses mid-rail
  ASSERT_TRUE(vm.has_value());
  EXPECT_GT(*vm, 0.30);
  EXPECT_LT(*vm, 0.60);
}

TEST(Inverter, TransientPropagatesAndDissipates) {
  InverterFixture f;
  f.vin->set_spec(SourceSpec::pwl({{1e-9, 0.0}, {1.05e-9, 0.9}}));
  // Load capacitor to make the edge visible.
  f.ckt.add<spice::Capacitor>("CL", f.n_out, spice::kGround, 1e-15);
  spice::TranOptions opt;
  opt.t_stop = 3e-9;
  spice::TranAnalysis tran(f.ckt, opt, {Probe::node_voltage(f.n_out, "out")});
  const auto wave = tran.run();
  EXPECT_GT(wave.value_at("out", 0.9e-9), 0.85);
  EXPECT_LT(wave.value_at("out", 2.8e-9), 0.05);
  // Energy drawn from the rail must be positive.
  EXPECT_GT(tran.source_energy("Vdd"), 0.0);
}

TEST(PowerSwitch, OnStateDropsMillivolts) {
  const auto pp = PaperParams::table1();
  Circuit ckt;
  const auto n_vdd = ckt.node("vdd");
  const auto n_vv = ckt.node("vvdd");
  const auto n_pg = ckt.node("pg");
  ckt.add<spice::VSource>("Vdd", n_vdd, spice::kGround, SourceSpec::dc(pp.vdd));
  ckt.add<spice::VSource>("Vpg", n_pg, spice::kGround, SourceSpec::dc(0.0));
  spice::add_finfet(ckt, "sw", n_vv, n_pg, n_vdd, pp.pmos(pp.fins_power_switch));
  // 30 uA load, about the store-mode draw.
  ckt.add<spice::ISource>("IL", n_vv, spice::kGround, SourceSpec::dc(30e-6));
  DCAnalysis dc(ckt);
  const auto sol = dc.solve();
  ASSERT_TRUE(sol.has_value());
  EXPECT_GT(sol->node_voltage(n_vv), 0.97 * pp.vdd);  // Fig. 4 design target
}

TEST(PowerSwitch, SuperCutoffLeakageIsTiny) {
  const auto pp = PaperParams::table1();
  Circuit ckt;
  const auto n_vdd = ckt.node("vdd");
  const auto n_vv = ckt.node("vvdd");
  const auto n_pg = ckt.node("pg");
  ckt.add<spice::VSource>("Vdd", n_vdd, spice::kGround, SourceSpec::dc(pp.vdd));
  auto* vpg = ckt.add<spice::VSource>("Vpg", n_pg, spice::kGround,
                                      SourceSpec::dc(pp.vdd));
  auto* sw = spice::add_finfet(ckt, "sw", n_vv, n_pg, n_vdd,
                               pp.pmos(pp.fins_power_switch));
  ckt.add<spice::Resistor>("RL", n_vv, spice::kGround, 1e7);

  DCAnalysis dc(ckt);
  auto cutoff = dc.solve();
  ASSERT_TRUE(cutoff.has_value());
  const double i_cutoff = std::fabs(sw->current(cutoff->view()));

  vpg->set_spec(SourceSpec::dc(pp.vpg_supercutoff));  // gate above VDD
  DCAnalysis dc2(ckt);
  auto super = dc2.solve();
  ASSERT_TRUE(super.has_value());
  const double i_super = std::fabs(sw->current(super->view()));

  EXPECT_LT(i_super, 0.25 * i_cutoff);  // super cutoff strictly better
}

TEST(MTJCircuit, SwitchesDuringTransientPulse) {
  // Drive 1.5 x Ic through a parallel MTJ in the P->AP polarity for 10 ns.
  const auto pp = PaperParams::table1();
  Circuit ckt;
  const auto n_a = ckt.node("a");
  auto* mtj = ckt.add<spice::MTJElement>("mtj", n_a, spice::kGround, pp.mtj,
                                         models::MtjState::kParallel);
  // P->AP needs current free -> pinned, i.e. INTO the free (ground) terminal:
  // push current from ground into node a?  Current pinned->free is positive;
  // we need negative, so drive current from the free side into pinned:
  // ISource from ground (free side is ground... the element's pinned is n_a).
  // Negative device current = current flowing free -> pinned inside the
  // junction = external source pushing from ground through the MTJ into n_a
  // ... which is exactly ISource(a -> ground) reversed.  Use a pulsed source.
  spice::PulseSpec pulse;
  pulse.v_initial = 0.0;
  pulse.v_pulsed = 1.5 * pp.mtj.critical_current();
  pulse.delay = 1e-9;
  pulse.rise = 0.1e-9;
  pulse.fall = 0.1e-9;
  pulse.width = 10e-9;
  ckt.add<spice::ISource>("Ip", ckt.node("a"), spice::kGround,
                          SourceSpec::pulse(pulse));
  // With current pulled OUT of the pinned node into ground, the junction
  // current (pinned->free) is negative: P->AP polarity.
  spice::TranOptions opt;
  opt.t_stop = 15e-9;
  spice::TranAnalysis tran(ckt, opt, {Probe::node_voltage(n_a, "V(a)")});
  (void)tran.run();
  EXPECT_EQ(mtj->state(), models::MtjState::kAntiparallel);
  EXPECT_EQ(mtj->switch_count(), 1);
}

TEST(MTJCircuit, SubCriticalPulseDoesNotSwitch) {
  const auto pp = PaperParams::table1();
  Circuit ckt;
  const auto n_a = ckt.node("a");
  auto* mtj = ckt.add<spice::MTJElement>("mtj", n_a, spice::kGround, pp.mtj,
                                         models::MtjState::kParallel);
  spice::PulseSpec pulse;
  pulse.v_pulsed = 0.9 * pp.mtj.critical_current();
  pulse.delay = 1e-9;
  pulse.rise = 0.1e-9;
  pulse.fall = 0.1e-9;
  pulse.width = 50e-9;
  ckt.add<spice::ISource>("Ip", n_a, spice::kGround, SourceSpec::pulse(pulse));
  spice::TranOptions opt;
  opt.t_stop = 60e-9;
  spice::TranAnalysis tran(ckt, opt, {});
  (void)tran.run();
  EXPECT_EQ(mtj->state(), models::MtjState::kParallel);
}

TEST(MTJCircuit, DcVoltageDividerWithStateResistance) {
  const auto pp = PaperParams::table1();
  Circuit ckt;
  const auto n_in = ckt.node("in");
  const auto n_mid = ckt.node("mid");
  ckt.add<spice::VSource>("V1", n_in, spice::kGround, SourceSpec::dc(0.1));
  ckt.add<spice::Resistor>("R1", n_in, n_mid, pp.mtj.rp0());
  ckt.add<spice::MTJElement>("mtj", n_mid, spice::kGround, pp.mtj,
                             models::MtjState::kParallel);
  DCAnalysis dc(ckt);
  const auto sol = dc.solve();
  ASSERT_TRUE(sol.has_value());
  // Equal resistances at low bias: mid sits at half input.
  EXPECT_NEAR(sol->node_voltage(n_mid), 0.05, 0.002);
}

}  // namespace
}  // namespace nvsram
