// Workload generators and gating-policy evaluation: optimality of the
// oracle, the timeout policy's competitiveness, and generator statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "core/workload.h"
#include "util/stats.h"

namespace nvsram::core {
namespace {

// Synthetic but realistic cell numbers (same as test_energy_model.cpp).
sram::CellEnergetics fake_6t() {
  sram::CellEnergetics c;
  c.t_clk = 1.0 / 300e6;
  c.e_read = 3.8e-15;
  c.e_write = 4.9e-15;
  c.p_static_normal = 23.2e-9;
  c.p_static_sleep = 9.5e-9;
  c.p_static_shutdown = 30e-12;
  c.e_sleep_transition = 1e-15;
  return c;
}

sram::CellEnergetics fake_nv() {
  sram::CellEnergetics c = fake_6t();
  c.p_static_normal = 23.9e-9;
  c.p_static_sleep = 10.2e-9;
  c.e_store = 400e-15;
  c.t_store = 24e-9;
  c.e_restore = 33e-15;
  c.t_restore = 2.1e-9;
  return c;
}

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest() : model_(fake_6t(), fake_nv()), eval_(model_, params()) {}
  static BenchmarkParams params() {
    BenchmarkParams p;
    p.n_rw = 100;
    p.rows = 32;
    return p;
  }
  EnergyModel model_;
  PolicyEvaluator eval_;
};

// ---- generators ----

TEST(IdleWorkloadTest, ExponentialHasRequestedMean) {
  const auto w = IdleWorkload::exponential(1e-4, 4000, 7);
  EXPECT_EQ(w.episodes(), 4000u);
  EXPECT_NEAR(w.total_idle() / w.episodes(), 1e-4, 1e-5);
  for (double t : w.idle_intervals) EXPECT_GE(t, 0.0);
}

TEST(IdleWorkloadTest, ParetoIsHeavyTailed) {
  const auto w = IdleWorkload::pareto(1e-5, 1.5, 4000, 3);
  double max_idle = 0.0;
  for (double t : w.idle_intervals) {
    EXPECT_GE(t, 1e-5);
    max_idle = std::max(max_idle, t);
  }
  EXPECT_GT(max_idle, 50e-5);  // tail events far above the scale
}

TEST(IdleWorkloadTest, PeriodicAndBimodal) {
  const auto p = IdleWorkload::periodic(2e-6, 5);
  EXPECT_DOUBLE_EQ(p.total_idle(), 1e-5);
  const auto b = IdleWorkload::bimodal(1e-6, 1e-3, 0.25, 2000, 9);
  int longs = 0;
  for (double t : b.idle_intervals) longs += (t > 1e-4);
  EXPECT_NEAR(longs / 2000.0, 0.25, 0.05);
}

TEST(IdleWorkloadTest, GeneratorsValidateInput) {
  EXPECT_THROW(IdleWorkload::exponential(-1.0, 10), std::invalid_argument);
  EXPECT_THROW(IdleWorkload::pareto(1e-6, 0.5, 10), std::invalid_argument);
  EXPECT_THROW(IdleWorkload::periodic(1e-6, 0), std::invalid_argument);
  EXPECT_THROW(IdleWorkload::bimodal(1e-6, 1e-3, 1.5, 10),
               std::invalid_argument);
}

TEST(IdleWorkloadTest, SeedReproducibility) {
  const auto a = IdleWorkload::exponential(1e-4, 100, 42);
  const auto b = IdleWorkload::exponential(1e-4, 100, 42);
  EXPECT_EQ(a.idle_intervals, b.idle_intervals);
}

// ---- policy evaluation ----

TEST_F(WorkloadTest, BetIsPositiveAndFinite) {
  EXPECT_GT(eval_.bet(), 1e-6);
  EXPECT_LT(eval_.bet(), 1e-3);
}

TEST_F(WorkloadTest, OracleNeverWorseThanPurePolicies) {
  for (unsigned seed : {1u, 2u, 3u}) {
    const auto w = IdleWorkload::exponential(eval_.bet(), 500, seed);
    const double never =
        eval_.evaluate(w, GatingPolicy::kNeverGate).energy;
    const double always =
        eval_.evaluate(w, GatingPolicy::kAlwaysGate).energy;
    const double oracle = eval_.evaluate(w, GatingPolicy::kOracle).energy;
    EXPECT_LE(oracle, never * (1 + 1e-12)) << "seed " << seed;
    EXPECT_LE(oracle, always * (1 + 1e-12)) << "seed " << seed;
  }
}

TEST_F(WorkloadTest, ShortIdlesFavourSleep) {
  const auto w = IdleWorkload::periodic(0.1 * eval_.bet(), 100);
  const auto never = eval_.evaluate(w, GatingPolicy::kNeverGate);
  const auto always = eval_.evaluate(w, GatingPolicy::kAlwaysGate);
  EXPECT_LT(never.energy, always.energy);
  const auto oracle = eval_.evaluate(w, GatingPolicy::kOracle);
  EXPECT_EQ(oracle.shutdowns, 0);
  EXPECT_NEAR(oracle.energy, never.energy, never.energy * 1e-12);
}

TEST_F(WorkloadTest, LongIdlesFavourGating) {
  const auto w = IdleWorkload::periodic(100.0 * eval_.bet(), 100);
  const auto never = eval_.evaluate(w, GatingPolicy::kNeverGate);
  const auto always = eval_.evaluate(w, GatingPolicy::kAlwaysGate);
  EXPECT_GT(never.energy, 5.0 * always.energy);
  const auto oracle = eval_.evaluate(w, GatingPolicy::kOracle);
  EXPECT_EQ(oracle.sleeps, 0);
  EXPECT_EQ(oracle.shutdowns, 100);
}

TEST_F(WorkloadTest, TimeoutPolicyIsTwoCompetitive) {
  // The classic result: timeout = BET is within 2x of the oracle on ANY
  // workload (idle-energy terms only; burst energy is common).
  for (unsigned seed : {11u, 12u}) {
    const auto w = IdleWorkload::pareto(0.1 * eval_.bet(), 1.3, 800, seed);
    const auto oracle = eval_.evaluate(w, GatingPolicy::kOracle);
    const auto timeout =
        eval_.evaluate(w, GatingPolicy::kTimeout, eval_.bet());
    EXPECT_LE(timeout.energy, 2.0 * oracle.energy + 1e-15) << "seed " << seed;
    EXPECT_GE(timeout.energy, oracle.energy * (1 - 1e-12));
  }
}

TEST_F(WorkloadTest, CompareReturnsAllPolicies) {
  const auto w = IdleWorkload::exponential(eval_.bet(), 50, 5);
  const auto all = eval_.compare(w);
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].first, GatingPolicy::kNeverGate);
  EXPECT_EQ(all[3].first, GatingPolicy::kTimeout);
  for (const auto& [p, r] : all) {
    EXPECT_GT(r.energy, 0.0) << to_string(p);
    EXPECT_GT(r.duration, 0.0);
    EXPECT_GT(r.average_power(), 0.0);
  }
}

TEST_F(WorkloadTest, BurstScalingIsLinear) {
  auto w = IdleWorkload::periodic(1e-6, 10);
  w.n_rw_per_burst = 100;
  const auto base = eval_.evaluate(w, GatingPolicy::kNeverGate);
  w.n_rw_per_burst = 200;
  const auto doubled = eval_.evaluate(w, GatingPolicy::kNeverGate);
  // Idle energy identical; burst part exactly doubles.
  const double idle_energy =
      10 * (fake_nv().e_sleep_transition + fake_nv().p_static_sleep * 1e-6);
  EXPECT_NEAR(doubled.energy - idle_energy,
              2.0 * (base.energy - idle_energy), 1e-18);
}

TEST_F(WorkloadTest, NegativeTimeoutRejected) {
  const auto w = IdleWorkload::periodic(1e-6, 1);
  EXPECT_THROW(eval_.evaluate(w, GatingPolicy::kTimeout, -1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace nvsram::core
