// 6T-SRAM cell behaviour: write/read/hold transients, retention at the
// sleep voltage, static noise margins.
#include <gtest/gtest.h>

#include "models/paper_params.h"
#include "sram/snm.h"
#include "sram/testbench.h"

namespace nvsram {
namespace {

using models::PaperParams;
using sram::CellKind;
using sram::CellTestbench;

TEST(Sram6T, WriteOneThenZero) {
  CellTestbench tb(CellKind::k6T, PaperParams::table1());
  tb.op_write(true);
  tb.op_idle(1e-9);
  tb.op_write(false);
  tb.op_idle(1e-9);
  auto res = tb.run();

  const auto& w1 = res.phase("write1");
  EXPECT_GT(res.wave.value_at("V(Q)", w1.t1 + 0.8e-9), 0.85);
  EXPECT_LT(res.wave.value_at("V(QB)", w1.t1 + 0.8e-9), 0.05);

  const double t_end = tb.now() - 0.2e-9;
  EXPECT_LT(res.wave.value_at("V(Q)", t_end), 0.05);
  EXPECT_GT(res.wave.value_at("V(QB)", t_end), 0.85);
}

TEST(Sram6T, ReadIsNonDestructive) {
  CellTestbench tb(CellKind::k6T, PaperParams::table1());
  tb.op_write(true);
  tb.op_idle(1e-9);
  tb.op_read();
  tb.op_read();
  tb.op_idle(1e-9);
  auto res = tb.run();
  const double t_end = tb.now() - 0.2e-9;
  EXPECT_GT(res.wave.value_at("V(Q)", t_end), 0.85);
  EXPECT_LT(res.wave.value_at("V(QB)", t_end), 0.05);
}

TEST(Sram6T, ReadDischargesOneBitline) {
  CellTestbench tb(CellKind::k6T, PaperParams::table1());
  tb.op_write(true);  // Q = 1 -> QB = 0 -> BLB discharges on read
  tb.op_idle(1e-9);
  tb.op_read();
  auto res = tb.run();
  const auto& rd = res.phase("read");
  const double mid = 0.5 * (rd.t0 + rd.t1);
  EXPECT_LT(res.wave.value_at("V(BLB)", mid + 0.8e-9), 0.6);
  EXPECT_GT(res.wave.value_at("V(BL)", mid + 0.8e-9), 0.8);
}

TEST(Sram6T, SleepRetainsData) {
  CellTestbench tb(CellKind::k6T, PaperParams::table1());
  tb.op_write(true);
  tb.op_idle(1e-9);
  tb.op_sleep(200e-9);
  tb.op_idle(2e-9);
  auto res = tb.run();
  const auto& slp = res.phase("sleep");
  // During sleep the rail is at 0.7 V and the data survives.
  EXPECT_NEAR(res.wave.value_at("V(VVDD)", 0.5 * (slp.t0 + slp.t1)), 0.7, 0.05);
  EXPECT_GT(res.wave.value_at("V(Q)", tb.now() - 0.5e-9), 0.85);
}

TEST(Sram6T, WriteEnergyIsFemtojouleScale) {
  CellTestbench tb(CellKind::k6T, PaperParams::table1());
  tb.op_write(true);
  tb.op_write(false);
  tb.op_write(true);
  auto res = tb.run();
  const double e = res.energy(res.phase("write1", 1));
  EXPECT_GT(e, 1e-17);
  EXPECT_LT(e, 1e-12);
}

TEST(Sram6T, StaticPowerOrdering) {
  CellTestbench tb(CellKind::k6T, PaperParams::table1(),
                   sram::TestbenchOptions{.ideal_bitlines = true});
  const double p_normal = tb.static_power(CellTestbench::StaticMode::kNormal);
  const double p_sleep = tb.static_power(CellTestbench::StaticMode::kSleep);
  const double p_shutdown =
      tb.static_power(CellTestbench::StaticMode::kShutdown);
  EXPECT_GT(p_normal, p_sleep);       // lower rail leaks less
  EXPECT_GT(p_sleep, p_shutdown);     // gating beats retention
  EXPECT_GT(p_normal, 1e-10);         // leaky HP process: > 0.1 nW
  EXPECT_LT(p_normal, 1e-7);
  EXPECT_LT(p_shutdown, 0.2 * p_sleep);
}

TEST(Sram6T, StoreOperationRejected) {
  CellTestbench tb(CellKind::k6T, PaperParams::table1());
  EXPECT_THROW(tb.op_store(), std::logic_error);
}

TEST(Sram6T, RunWithoutScheduleRejected) {
  CellTestbench tb(CellKind::k6T, PaperParams::table1());
  EXPECT_THROW(tb.run(), std::logic_error);
}

// ---- SNM -----------------------------------------------------------------------

TEST(SramSnm, HoldSnmIsHealthy) {
  const auto r = sram::hold_snm(PaperParams::table1(), CellKind::k6T);
  EXPECT_GT(r.snm, 0.15);  // a balanced inverter pair at 0.9 V
  EXPECT_LT(r.snm, 0.45);
}

TEST(SramSnm, ReadSnmSmallerThanHold) {
  const auto pp = PaperParams::table1();
  const auto hold = sram::hold_snm(pp, CellKind::k6T);
  const auto read = sram::read_snm(pp, CellKind::k6T);
  EXPECT_LT(read.snm, hold.snm);
  EXPECT_GT(read.snm, 0.0);
}

TEST(SramSnm, HoldSnmShrinksWithVdd) {
  const auto pp = PaperParams::table1();
  const auto at_09 = sram::hold_snm(pp, CellKind::k6T, 0.9);
  const auto at_07 = sram::hold_snm(pp, CellKind::k6T, 0.7);
  EXPECT_LT(at_07.snm, at_09.snm);
  EXPECT_GT(at_07.snm, 0.10);  // still retains at the sleep voltage
}

TEST(SramSnm, NvCellHoldSnmComparableTo6T) {
  // The PS-FinFETs are off in normal mode: the MTJ load barely degrades SNM
  // (the paper's central claim about electrical separation).
  const auto pp = PaperParams::table1();
  const auto snm_6t = sram::hold_snm(pp, CellKind::k6T);
  const auto snm_nv = sram::hold_snm(pp, CellKind::kNvSram);
  EXPECT_GT(snm_nv.snm, 0.90 * snm_6t.snm);
}

TEST(SramSnm, ConnectedPsBranchDegradesSnm) {
  // With SR asserted (store mode) the MTJ loads the storage nodes and the
  // margin drops — the reason NVPG separates the modes.
  const auto pp = PaperParams::table1();
  sram::SnmOptions normal;
  sram::SnmOptions connected;
  connected.ps_branch_connected = true;
  const auto snm_normal =
      sram::compute_snm(sram::inverter_vtc(pp, CellKind::kNvSram, normal));
  const auto snm_conn =
      sram::compute_snm(sram::inverter_vtc(pp, CellKind::kNvSram, connected));
  EXPECT_LT(snm_conn.snm, snm_normal.snm);
}

TEST(SramSnm, VtcIsMonotoneDecreasing) {
  const auto vtc =
      sram::inverter_vtc(PaperParams::table1(), CellKind::k6T, sram::SnmOptions{});
  for (std::size_t i = 1; i < vtc.size(); ++i) {
    EXPECT_LE(vtc[i].second, vtc[i - 1].second + 1e-6);
  }
}

}  // namespace
}  // namespace nvsram
