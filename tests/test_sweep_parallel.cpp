// Worker-pool execution of SweepRunner: byte-identical output at any pool
// size, kill/stop drills mid-parallel-run, concurrent solver fault
// injection (TSan stress), synthetic-load scaling, and the per-point
// watchdog reaching into the SPICE-characterization phase.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/analyzer.h"
#include "models/paper_params.h"
#include "runner/checkpoint.h"
#include "runner/sweep_runner.h"
#include "spice/circuit.h"
#include "spice/dc.h"
#include "spice/elements.h"
#include "spice/fault.h"
#include "util/watchdog.h"

namespace nvsram::runner {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string tmp_csv(const std::string& tag) {
  return ::testing::TempDir() + "psweep_" + tag + ".csv";
}

// Failed sweeps intentionally leave their checkpoint behind, so a rerun of
// this binary would otherwise resume it: each test scrubs its tags first.
void scrub(const std::string& tag) {
  const std::string csv = tmp_csv(tag);
  std::remove(csv.c_str());
  std::remove((csv + ".ckpt").c_str());
  std::remove((csv + ".failures.csv").c_str());
}

RunnerOptions options_for(const std::string& tag, int threads) {
  RunnerOptions opts;
  opts.csv_path = tmp_csv(tag);
  opts.csv_columns = {"x", "y"};
  opts.threads = threads;
  return opts;
}

Rows square_point(const PointContext& pc) {
  const double x = static_cast<double>(pc.index);
  return {{x, x * x}};
}

// A real (if tiny) SPICE solve per point, with deterministic index-keyed
// fault injection: points divisible by 5 stall on their first attempt and
// recover on the retry; points congruent to 3 mod 7 take a nan-stamp that
// the recovery ladder absorbs within the same attempt.
Rows divider_point(const PointContext& pc) {
  spice::Circuit ckt;
  const auto a = ckt.node("a");
  const auto b = ckt.node("b");
  ckt.add<spice::VSource>("V1", a, spice::kGround, spice::SourceSpec::dc(1.0));
  ckt.add<spice::Resistor>("R1", a, b, 1e3);
  ckt.add<spice::Resistor>("R2", b, spice::kGround, 3e3);
  if (pc.attempt == 0 && pc.index % 5 == 0) {
    ckt.set_fault_plan(spice::FaultPlan::parse("stall@0x-1"));
  } else if (pc.index % 7 == 3) {
    ckt.set_fault_plan(spice::FaultPlan::parse("nan-stamp@0"));
  }
  spice::DCAnalysis dc(ckt);
  const auto sol = dc.solve();
  if (!sol) throw std::runtime_error("injected stall");
  return {{static_cast<double>(pc.index), sol->node_voltage(b)}};
}

// ---- byte-identity across pool sizes ----

TEST(SweepParallel, OutputBytesIdenticalAcrossPoolSizes) {
  // One failing point keeps the manifest non-trivial and the checkpoint
  // alive, so all three artifacts can be compared.
  auto point = [](const PointContext& pc) -> Rows {
    if (pc.index == 5) throw std::runtime_error("synthetic failure");
    return square_point(pc);
  };
  const std::size_t n = 12;
  for (const char* tag : {"ident_t1", "ident_t2", "ident_t8"}) scrub(tag);

  auto ref_opts = options_for("ident_t1", 1);
  const auto ref = SweepRunner("ident", ref_opts).run(n, point);
  EXPECT_EQ(ref.threads, 1);
  EXPECT_EQ(ref.failed, 1u);

  for (int threads : {2, 8}) {
    auto opts = options_for("ident_t" + std::to_string(threads), threads);
    const auto s = SweepRunner("ident", opts).run(n, point);
    EXPECT_EQ(s.threads, threads);
    EXPECT_EQ(s.completed, ref.completed);
    EXPECT_EQ(s.failed, ref.failed);
    // CSV, failure manifest, and retained checkpoint: byte-identical.
    EXPECT_EQ(slurp(s.csv_path), slurp(ref.csv_path)) << threads;
    EXPECT_EQ(slurp(s.manifest_path), slurp(ref.manifest_path)) << threads;
    EXPECT_EQ(slurp(opts.csv_path + ".ckpt"),
              slurp(ref_opts.csv_path + ".ckpt"))
        << threads;
    // Outcome bookkeeping matches point by point.
    ASSERT_EQ(s.outcomes.size(), ref.outcomes.size());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(s.outcomes[i].status, ref.outcomes[i].status) << i;
    }
  }
}

TEST(SweepParallel, PoolIsCappedAtPointCount) {
  scrub("cap");
  auto opts = options_for("cap", 8);
  const auto s = SweepRunner("cap", opts).run(2, square_point);
  EXPECT_TRUE(s.all_ok());
  EXPECT_LE(s.threads, 2);
}

TEST(SweepParallel, EnvOverridesThreadsAndSpin) {
  ::setenv("NVSRAM_SWEEP_THREADS", "3", 1);
  ::setenv("NVSRAM_SWEEP_SPIN_MS", "1.5", 1);
  RunnerOptions opts;
  opts.apply_env("envthreads");
  EXPECT_EQ(opts.threads, 3);
  EXPECT_EQ(opts.point_spin_ms, 1.5);
  ::unsetenv("NVSRAM_SWEEP_THREADS");
  ::unsetenv("NVSRAM_SWEEP_SPIN_MS");
}

// ---- drills under parallelism ----

TEST(SweepParallel, StopDrillCommitsExactPrefixThenResumes) {
  scrub("pstop_ref");
  scrub("pstop");
  auto ref_opts = options_for("pstop_ref", 1);
  const auto ref = SweepRunner("pstop", ref_opts).run(10, square_point);

  // Stop after point 4 with 4 workers in flight: the checkpoint must hold
  // exactly points 0..4 even though later points may already have solved.
  auto opts = options_for("pstop", 4);
  opts.stop_after_point = 4;
  const auto s1 = SweepRunner("pstop", opts).run(10, square_point);
  EXPECT_TRUE(s1.interrupted);
  EXPECT_EQ(s1.completed, 5u);
  EXPECT_EQ(
      checkpoint::load(opts.csv_path + ".ckpt", "pstop", {"x", "y"}, 10).size(),
      5u);

  auto opts2 = options_for("pstop", 4);
  std::atomic<int> fresh{0};
  const auto s2 =
      SweepRunner("pstop", opts2).run(10, [&](const PointContext& pc) {
        ++fresh;
        EXPECT_GT(pc.index, 4u);
        return square_point(pc);
      });
  EXPECT_TRUE(s2.all_ok());
  EXPECT_EQ(s2.resumed, 5u);
  EXPECT_EQ(fresh.load(), 5);
  EXPECT_EQ(slurp(s2.csv_path), slurp(ref.csv_path));
}

TEST(SweepParallel, KillDrillUnderParallelismResumesByteIdentical) {
  // Workers are already running when _Exit fires; the threadsafe style
  // re-executes the test binary for the death statement.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  scrub("pkill_ref");
  scrub("pkill");
  auto ref_opts = options_for("pkill_ref", 1);
  const auto ref = SweepRunner("pkill", ref_opts).run(10, square_point);

  auto kill_opts = options_for("pkill", 4);
  kill_opts.kill_after_point = 3;
  EXPECT_EXIT((void)SweepRunner("pkill", kill_opts).run(10, square_point),
              ::testing::ExitedWithCode(3), "");

  // The simulated crash happened right after checkpointing point 3: the
  // committed prefix survives, nothing later leaked in.
  EXPECT_EQ(checkpoint::load(kill_opts.csv_path + ".ckpt", "pkill", {"x", "y"},
                             10)
                .size(),
            4u);

  auto resume_opts = options_for("pkill", 4);
  const auto s = SweepRunner("pkill", resume_opts).run(10, square_point);
  EXPECT_TRUE(s.all_ok());
  EXPECT_EQ(s.resumed, 4u);
  EXPECT_EQ(slurp(s.csv_path), slurp(ref.csv_path));
}

// ---- concurrent solver work (the TSan beat) ----

TEST(SweepParallel, ConcurrentFaultInjectionStressMatchesSerial) {
  const std::size_t n = 24;
  scrub("stress_t1");
  scrub("stress_t8");

  auto ref_opts = options_for("stress_t1", 1);
  ref_opts.max_attempts = 2;
  const auto ref = SweepRunner("stress", ref_opts).run(n, divider_point);
  EXPECT_TRUE(ref.all_ok());
  EXPECT_EQ(ref.outcomes[5].status, PointStatus::kRecovered);
  EXPECT_EQ(ref.outcomes[10].status, PointStatus::kRecovered);
  // nan-stamp points recover inside the solver, not via a runner retry.
  EXPECT_EQ(ref.outcomes[3].status, PointStatus::kOk);

  auto opts = options_for("stress_t8", 8);
  opts.max_attempts = 2;
  const auto s = SweepRunner("stress", opts).run(n, divider_point);
  EXPECT_TRUE(s.all_ok());
  EXPECT_EQ(slurp(s.csv_path), slurp(ref.csv_path));
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(s.outcomes[i].status, ref.outcomes[i].status) << i;
  }
}

TEST(SweepParallel, RowWidthMismatchSurfacesFromWorkers) {
  scrub("pwidth");
  auto opts = options_for("pwidth", 4);
  SweepRunner run("pwidth", opts);
  EXPECT_THROW((void)run.run(8,
                             [](const PointContext&) -> Rows {
                               return {{1.0, 2.0, 3.0}};  // 3 values, 2 cols
                             }),
               std::runtime_error);
}

// ---- scaling on the synthetic load ----

TEST(SweepParallel, SpinLoadScalesWithPoolSize) {
  const std::size_t n = 24;
  scrub("spin_t1");
  scrub("spin_t4");
  auto serial_opts = options_for("spin_t1", 1);
  serial_opts.point_spin_ms = 4.0;
  const auto serial = SweepRunner("spin", serial_opts).run(n, square_point);
  EXPECT_GE(serial.wall_seconds, 0.9 * n * 4.0e-3);

  auto par_opts = options_for("spin_t4", 4);
  par_opts.point_spin_ms = 4.0;
  const auto par = SweepRunner("spin", par_opts).run(n, square_point);
  EXPECT_EQ(slurp(par.csv_path), slurp(serial.csv_path));

  // Only assert real speedup where the hardware can deliver it.
  if (std::thread::hardware_concurrency() >= 4) {
    EXPECT_LT(par.wall_seconds, 0.75 * serial.wall_seconds);
  }
}

// ---- the per-point watchdog reaches the characterization phase ----

TEST(SweepParallel, PointTimeoutCoversAnalyzerCharacterization) {
  scrub("chartimeout");
  auto opts = options_for("chartimeout", 2);
  opts.point_timeout_sec = 0.02;  // far below the ~0.3 s characterization
  opts.max_attempts = 3;
  std::atomic<int> calls{0};
  const auto s =
      SweepRunner("chartimeout", opts).run(1, [&](const PointContext& pc) -> Rows {
        ++calls;
        core::PowerGatingAnalyzer an(models::PaperParams::table1(),
                                     pc.timeout_sec);
        return {{0.0, an.cell_6t().e_read}};
      });
  EXPECT_EQ(s.timeouts, 1u);
  EXPECT_EQ(calls.load(), 1);  // a timeout is terminal, not retried
  EXPECT_EQ(s.outcomes[0].status, PointStatus::kTimeout);
  EXPECT_NE(slurp(s.manifest_path).find("0,timeout,1,"), std::string::npos);
}

}  // namespace
}  // namespace nvsram::runner
