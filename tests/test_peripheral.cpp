// Peripheral driver-energy extension: line-energy arithmetic and its effect
// on the architecture comparison (the paper's conclusions must survive).
#include <gtest/gtest.h>

#include "core/energy_model.h"
#include "core/peripheral.h"

namespace nvsram::core {
namespace {

sram::CellEnergetics fake_6t() {
  sram::CellEnergetics c;
  c.t_clk = 1.0 / 300e6;
  c.e_read = 3.8e-15;
  c.e_write = 4.9e-15;
  c.p_static_normal = 23.2e-9;
  c.p_static_sleep = 9.5e-9;
  c.p_static_shutdown = 30e-12;
  c.e_sleep_transition = 1e-15;
  return c;
}

sram::CellEnergetics fake_nv() {
  sram::CellEnergetics c = fake_6t();
  c.p_static_normal = 23.9e-9;
  c.p_static_sleep = 10.2e-9;
  c.e_store = 400e-15;
  c.t_store = 24e-9;
  c.e_restore = 33e-15;
  c.t_restore = 2.1e-9;
  return c;
}

PeripheralModel paper_peripheral() {
  return PeripheralModel(PeripheralParams{}, models::PaperParams::table1());
}

TEST(PeripheralModelTest, LineEnergyScalesWithGeometry) {
  const auto m = paper_peripheral();
  const double e32 = m.line_energy(32, 2, 0.9);
  const double e64 = m.line_energy(64, 2, 0.9);
  EXPECT_NEAR(e64, 2.0 * e32, 1e-20);
  // Quadratic in swing.
  EXPECT_NEAR(m.line_energy(32, 2, 0.45), 0.25 * e32, 1e-20);
  // More gates per cell -> more energy.
  EXPECT_GT(m.line_energy(32, 4, 0.9), e32);
}

TEST(PeripheralModelTest, PerCellOverheadIndependentOfWidth) {
  // Energy per cell is the line energy divided by cells on the line: the
  // per-cell number converges to a constant for wide arrays.
  const auto m = paper_peripheral();
  EXPECT_NEAR(m.access_overhead_per_cell(32), m.access_overhead_per_cell(256),
              1e-18);
}

TEST(PeripheralModelTest, OverheadsAreFemtojouleScale) {
  const auto m = paper_peripheral();
  for (double e : {m.access_overhead_per_cell(32), m.store_overhead_per_cell(32),
                   m.restore_overhead_per_cell(32)}) {
    EXPECT_GT(e, 1e-18);
    EXPECT_LT(e, 20e-15);
  }
  // Store swings two lines; restore only SR.
  EXPECT_GT(m.store_overhead_per_cell(32), m.restore_overhead_per_cell(32));
}

TEST(PeripheralModelTest, ValidatesInput) {
  EXPECT_THROW(PeripheralModel(PeripheralParams{.driver_efficiency = 0.0},
                               models::PaperParams::table1()),
               std::invalid_argument);
  const auto m = paper_peripheral();
  EXPECT_THROW(m.line_energy(0, 2, 0.9), std::invalid_argument);
}

TEST(PeripheralIntegration, AddsEnergyWithoutChangingConclusions) {
  EnergyModel bare(fake_6t(), fake_nv());
  EnergyModel loaded(fake_6t(), fake_nv());
  loaded.set_peripheral(paper_peripheral());

  BenchmarkParams p;
  p.n_rw = 100;
  p.t_sl = 100e-9;

  // The peripheral term is strictly additive...
  for (auto a : {Architecture::kOSR, Architecture::kNVPG, Architecture::kNOF}) {
    const auto b_bare = bare.cycle_energy(a, p);
    const auto b_loaded = loaded.cycle_energy(a, p);
    EXPECT_DOUBLE_EQ(b_bare.peripheral, 0.0);
    EXPECT_GT(b_loaded.peripheral, 0.0) << to_string(a);
    EXPECT_NEAR(b_loaded.total() - b_loaded.peripheral, b_bare.total(),
                1e-20);
  }

  // ...and the paper's ordering survives: NVPG ~ OSR at large n_RW, NOF far
  // above, BET still finite and in the same decade.
  p.n_rw = 10000;
  EXPECT_LT(loaded.e_cyc(Architecture::kNVPG, p) /
                loaded.e_cyc(Architecture::kOSR, p),
            1.15);
  EXPECT_GT(loaded.e_cyc(Architecture::kNOF, p) /
                loaded.e_cyc(Architecture::kOSR, p),
            2.0);

  p.n_rw = 100;
  const auto bet_bare = bare.break_even_time(Architecture::kNVPG, p);
  const auto bet_loaded = loaded.break_even_time(Architecture::kNVPG, p);
  ASSERT_TRUE(bet_bare && bet_loaded);
  EXPECT_GT(*bet_loaded, *bet_bare);        // overhead can only hurt
  EXPECT_LT(*bet_loaded, 10.0 * *bet_bare);  // but not catastrophically
}

TEST(PeripheralIntegration, NofPaysPerAccessNvpgPerShutdown) {
  EnergyModel m(fake_6t(), fake_nv());
  m.set_peripheral(paper_peripheral());
  BenchmarkParams p;
  p.n_rw = 1000;
  const auto nvpg = m.cycle_energy(Architecture::kNVPG, p);
  const auto nof = m.cycle_energy(Architecture::kNOF, p);
  // NOF swings SR on every access: its peripheral term dwarfs NVPG's.
  EXPECT_GT(nof.peripheral, 1.5 * nvpg.peripheral);
}

}  // namespace
}  // namespace nvsram::core
