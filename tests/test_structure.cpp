// Structural MNA analysis: the linalg structure pass, analyze_structure
// fixtures (floating gates, dangling branches, disconnected blocks), the
// nvlint structural rules, the no-false-positive sweep over every shipped
// netlist and testbench circuit, and the NewtonWorkspace symbolic reuse
// (bit-identical results, analyze-once counters).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "linalg/structure.h"
#include "lint/linter.h"
#include "models/paper_params.h"
#include "spice/circuit.h"
#include "spice/dc.h"
#include "spice/elements.h"
#include "spice/fet_element.h"
#include "spice/mtj_element.h"
#include "spice/netlist_parser.h"
#include "spice/newton.h"
#include "spice/structural_analysis.h"
#include "sram/array.h"
#include "sram/testbench.h"

namespace nvsram {
namespace {

using models::PaperParams;
using spice::Circuit;
using spice::kGround;

// ---- linalg structure pass --------------------------------------------------

linalg::SparsityPattern pattern_of(
    std::size_t n, const std::vector<std::pair<std::size_t, std::size_t>>& pos) {
  std::vector<linalg::Triplet> t;
  for (const auto& [r, c] : pos) t.push_back({r, c, 1.0});
  return linalg::SparsityPattern::from_triplets(n, t);
}

TEST(Structure, PerfectMatchingOnFullDiagonal) {
  const auto p = pattern_of(3, {{0, 0}, {1, 1}, {2, 2}, {0, 2}});
  const auto m = linalg::maximum_matching(p);
  EXPECT_TRUE(m.perfect(3));
  EXPECT_TRUE(m.unmatched_rows().empty());
  EXPECT_TRUE(m.unmatched_cols().empty());
}

TEST(Structure, MatchingFindsOffDiagonalTransversal) {
  // Antidiagonal: no (i, i) positions at all, still structurally sound.
  const auto p = pattern_of(3, {{0, 2}, {1, 1}, {2, 0}});
  EXPECT_TRUE(linalg::maximum_matching(p).perfect(3));
}

TEST(Structure, DeficientPatternNamesTheDefect) {
  // Column 2 is empty and row 2 is empty: deficiency 1 on each side.
  const auto p = pattern_of(3, {{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  const auto m = linalg::maximum_matching(p);
  EXPECT_FALSE(m.perfect(3));
  EXPECT_EQ(m.size, 2u);
  ASSERT_EQ(m.unmatched_rows().size(), 1u);
  ASSERT_EQ(m.unmatched_cols().size(), 1u);
  EXPECT_EQ(m.unmatched_rows()[0], 2u);
  EXPECT_EQ(m.unmatched_cols()[0], 2u);
}

TEST(Structure, DulmageMendelsohnImplicatesAlternatingReachableSet) {
  // Rows 1 and 2 both depend only on column 0: one of them stays unmatched
  // and DM must implicate BOTH rows (they compete for the same unknown).
  const auto p = pattern_of(3, {{0, 0}, {0, 1}, {0, 2}, {1, 0}, {2, 0}});
  const auto m = linalg::maximum_matching(p);
  EXPECT_EQ(m.size, 2u);
  const auto dm = linalg::dulmage_mendelsohn(p, m);
  EXPECT_EQ(dm.overdetermined_rows.size(), 2u);
  EXPECT_TRUE(std::count(dm.overdetermined_rows.begin(),
                         dm.overdetermined_rows.end(), 1u));
  EXPECT_TRUE(std::count(dm.overdetermined_rows.begin(),
                         dm.overdetermined_rows.end(), 2u));
  // The contested unknown is column 0.
  ASSERT_EQ(dm.overdetermined_cols.size(), 1u);
  EXPECT_EQ(dm.overdetermined_cols[0], 0u);
}

TEST(Structure, ConnectedComponentsSplitsIndependentBlocks) {
  const auto p = pattern_of(4, {{0, 0}, {0, 1}, {1, 0}, {2, 2}, {3, 3}});
  const auto c = linalg::connected_components(p);
  EXPECT_EQ(c.count, 3u);
  EXPECT_EQ(c.row_component[0], c.row_component[1]);
  EXPECT_NE(c.row_component[0], c.row_component[2]);
  EXPECT_NE(c.row_component[2], c.row_component[3]);
}

TEST(Structure, MinDegreeOrderIsAPermutation) {
  const auto p = pattern_of(
      4, {{0, 0}, {0, 3}, {1, 1}, {2, 2}, {3, 0}, {3, 3}, {1, 2}, {2, 1}});
  const auto m = linalg::maximum_matching(p);
  ASSERT_TRUE(m.perfect(4));
  const auto order = linalg::min_degree_order(p, m);
  std::set<std::size_t> seen(order.begin(), order.end());
  EXPECT_EQ(order.size(), 4u);
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(*seen.rbegin(), 3u);
}

// ---- analyze_structure fixtures ---------------------------------------------

TEST(StructuralAnalysis, FloatingFetGateIsSingularWithNamedCulprits) {
  // Power-switch gate 'pg' driven by nothing but a capacitor: at DC the
  // capacitor stamps no positions and the FET gate row is empty (insulated
  // gate), so KCL at 'pg' can never be pivoted — singular for every value.
  const auto pp = PaperParams::table1();
  Circuit ckt;
  const auto vdd = ckt.node("vdd");
  const auto vvdd = ckt.node("vvdd");
  const auto pg = ckt.node("pg");
  ckt.add<spice::VSource>("V1", vdd, kGround, spice::SourceSpec::dc(0.9));
  spice::add_finfet(ckt, "Mpsw", vvdd, pg, vdd, pp.pmos(1));
  ckt.add<spice::Resistor>("R1", vvdd, kGround, 10e3);
  ckt.add<spice::Capacitor>("C1", pg, kGround, 1e-15);

  const auto report = spice::analyze_structure(ckt, /*dc=*/true);
  EXPECT_TRUE(report.structurally_singular);
  EXPECT_FALSE(report.clean());
  ASSERT_FALSE(report.unsolvable_equations.empty());
  const auto& eq = report.unsolvable_equations.front();
  EXPECT_EQ(eq.unknown, "V(pg)");
  EXPECT_EQ(eq.node, "pg");
  // Repair candidates: every device with a terminal at the defective node.
  EXPECT_TRUE(std::count(eq.devices.begin(), eq.devices.end(), "Mpsw"));
  EXPECT_TRUE(std::count(eq.devices.begin(), eq.devices.end(), "C1"));
  // One unknown is also unmatched (deficiency is symmetric in count).
  EXPECT_FALSE(report.undetermined_unknowns.empty());
}

TEST(StructuralAnalysis, TransientPatternAbsorbsTheGateDefect) {
  // Same circuit, dc=false: the capacitor's companion conductance restores
  // the 'pg' row, so the transient pattern is structurally sound.
  const auto pp = PaperParams::table1();
  Circuit ckt;
  const auto vdd = ckt.node("vdd");
  const auto vvdd = ckt.node("vvdd");
  const auto pg = ckt.node("pg");
  ckt.add<spice::VSource>("V1", vdd, kGround, spice::SourceSpec::dc(0.9));
  spice::add_finfet(ckt, "Mpsw", vvdd, pg, vdd, pp.pmos(1));
  ckt.add<spice::Resistor>("R1", vvdd, kGround, 10e3);
  ckt.add<spice::Capacitor>("C1", pg, kGround, 1e-15);

  const auto report = spice::analyze_structure(ckt, /*dc=*/false);
  EXPECT_FALSE(report.structurally_singular);
  EXPECT_TRUE(report.unsolvable_equations.empty());
}

TEST(StructuralAnalysis, GroundStrappedSourceIsADanglingBranch) {
  Circuit ckt;
  const auto a = ckt.node("a");
  ckt.add<spice::VSource>("V1", a, kGround, spice::SourceSpec::dc(1.0));
  ckt.add<spice::Resistor>("R1", a, kGround, 1e3);
  // Both terminals grounded: the branch row AND column are empty.
  ckt.add<spice::VSource>("Vbad", kGround, kGround, spice::SourceSpec::dc(0.5));

  const auto report = spice::analyze_structure(ckt, /*dc=*/true);
  ASSERT_EQ(report.dangling_branches.size(), 1u);
  const auto& d = report.dangling_branches.front();
  EXPECT_EQ(d.device, "Vbad");
  EXPECT_EQ(d.unknown, "I(Vbad)");
  EXPECT_TRUE(d.empty_row);
  EXPECT_TRUE(d.empty_col);
  EXPECT_TRUE(report.structurally_singular);  // the empty row/col unmatches
}

TEST(StructuralAnalysis, UngroundedMtjIslandIsAFloatingBlock) {
  // An MTJ + resistor pair with no path to ground: structurally matchable
  // (every row has its diagonal) yet numerically singular — its KCL rows
  // sum to zero.  Must surface as a floating block, NOT as singular.
  const auto pp = PaperParams::table1();
  Circuit ckt;
  const auto a = ckt.node("a");
  const auto x = ckt.node("x");
  const auto y = ckt.node("y");
  ckt.add<spice::VSource>("V1", a, kGround, spice::SourceSpec::dc(0.9));
  ckt.add<spice::Resistor>("R1", a, kGround, 1e3);
  ckt.add<spice::MTJElement>("Y1", x, y, pp.mtj);
  ckt.add<spice::Resistor>("R2", x, y, 10e3);

  const auto report = spice::analyze_structure(ckt, /*dc=*/true);
  EXPECT_FALSE(report.structurally_singular);
  ASSERT_EQ(report.floating_blocks.size(), 1u);
  const auto& blk = report.floating_blocks.front();
  EXPECT_EQ(blk.unknowns.size(), 2u);
  EXPECT_TRUE(std::count(blk.unknowns.begin(), blk.unknowns.end(), "V(x)"));
  EXPECT_TRUE(std::count(blk.unknowns.begin(), blk.unknowns.end(), "V(y)"));
  EXPECT_TRUE(std::count(blk.devices.begin(), blk.devices.end(), "Y1"));
  EXPECT_TRUE(std::count(blk.devices.begin(), blk.devices.end(), "R2"));
}

TEST(StructuralAnalysis, SoundCircuitYieldsEliminationOrder) {
  const auto pp = PaperParams::table1();
  Circuit ckt;
  const auto q = ckt.node("q");
  const auto qb = ckt.node("qb");
  const auto vdd = ckt.node("vdd");
  ckt.add<spice::VSource>("Vdd", vdd, kGround, spice::SourceSpec::dc(0.9));
  spice::add_finfet(ckt, "pu_q", q, qb, vdd, pp.pmos(1));
  spice::add_finfet(ckt, "pd_q", q, qb, kGround, pp.nmos(1));
  spice::add_finfet(ckt, "pu_qb", qb, q, vdd, pp.pmos(1));
  spice::add_finfet(ckt, "pd_qb", qb, q, kGround, pp.nmos(1));

  const auto report = spice::analyze_structure(ckt, /*dc=*/true);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.elimination_order.size(), report.unknown_count);
  std::set<std::size_t> seen(report.elimination_order.begin(),
                             report.elimination_order.end());
  EXPECT_EQ(seen.size(), report.unknown_count);
}

// ---- nvlint structural rules ------------------------------------------------

std::unique_ptr<spice::ParsedNetlist> parse(const std::string& text) {
  spice::NetlistParser p;
  return p.parse(text);
}

TEST(StructureLint, FloatingGateNetlistRejectedWithLineNumbers) {
  auto net = parse(
      "floating power-switch gate\n"
      "V1 vdd 0 DC 0.9\n"
      "Mpsw vvdd pg vdd pfin\n"
      "R1 vvdd 0 10k\n"
      "C1 pg 0 1f\n"
      ".probe v(vvdd)\n"
      ".dc V1 0 0.9 5\n");
  const auto diags = net->lint().by_rule(lint::rules::kStructuralSingular);
  ASSERT_FALSE(diags.empty());
  bool named_pg = false;
  for (const auto& d : diags) {
    EXPECT_EQ(d.severity, lint::Severity::kError);
    EXPECT_GT(d.line, 0);
    if (d.message.find("V(pg)") != std::string::npos) named_pg = true;
  }
  EXPECT_TRUE(named_pg) << "diagnostics must name the defective unknown";
}

TEST(StructureLint, VsourceLoopIsSoundNotStructurallySingular) {
  // Two sources forcing the same (non-ground) node pair: a value conflict,
  // not a topology defect.  The matrix admits a perfect matching, so the
  // structural rules must stay quiet while vsource-loop fires.
  auto net = parse(
      "conflicting sources\n"
      "V1 a b DC 1\n"
      "V2 a b DC 2\n"
      "R1 a 0 1k\n"
      "R2 b 0 1k\n");
  const auto report = net->lint();
  EXPECT_FALSE(report.by_rule(lint::rules::kVsourceLoop).empty());
  EXPECT_TRUE(report.by_rule(lint::rules::kStructuralSingular).empty());
  EXPECT_TRUE(report.by_rule(lint::rules::kDanglingBranchEquation).empty());
}

TEST(StructureLint, DisconnectedBlockWarnsOnce) {
  auto net = parse(
      "island\n"
      "V1 a 0 DC 1\n"
      "R1 a 0 1k\n"
      "R2 x y 1k\n");
  const auto diags = net->lint().by_rule(lint::rules::kDisconnectedBlock);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, lint::Severity::kWarning);
  EXPECT_EQ(diags[0].line, 4);  // R2 defines the island
}

TEST(StructureLint, GroundStrappedSourceFlagsDanglingBranch) {
  auto net = parse(
      "strapped\n"
      "V1 a 0 DC 1\n"
      "R1 a 0 1k\n"
      "Vbad 0 0 DC 0.5\n");
  const auto diags = net->lint().by_rule(lint::rules::kDanglingBranchEquation);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].device, "Vbad");
  EXPECT_EQ(diags[0].severity, lint::Severity::kError);
}

// ---- no false positives on everything we ship -------------------------------

TEST(StructureLint, AllShippedNetlistsAreStructurallyClean) {
  namespace fs = std::filesystem;
  std::size_t seen = 0;
  for (const auto& entry : fs::directory_iterator(NVSRAM_NETLIST_DIR)) {
    if (entry.path().extension() != ".cir") continue;
    ++seen;
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.good()) << entry.path();
    std::ostringstream ss;
    ss << in.rdbuf();
    const auto report = parse(ss.str())->lint();
    for (const char* rule :
         {lint::rules::kStructuralSingular, lint::rules::kDisconnectedBlock,
          lint::rules::kDanglingBranchEquation}) {
      EXPECT_TRUE(report.by_rule(rule).empty())
          << entry.path() << " trips " << rule << ":\n" << report.format();
    }
  }
  EXPECT_GE(seen, 5u);
}

TEST(StructureLint, TestbenchCircuitsAreStructurallyClean) {
  const auto pp = PaperParams::table1();
  for (auto kind : {sram::CellKind::k6T, sram::CellKind::kNvSram}) {
    sram::CellTestbench tb(kind, pp);
    const auto report = lint::lint_circuit(tb.circuit());
    for (const char* rule :
         {lint::rules::kStructuralSingular, lint::rules::kDisconnectedBlock,
          lint::rules::kDanglingBranchEquation}) {
      EXPECT_TRUE(report.by_rule(rule).empty())
          << "testbench kind=" << static_cast<int>(kind) << " trips " << rule
          << ":\n" << report.format();
    }
  }
}

TEST(StructuralAnalysis, ArrayScalePatternIsCleanAndOrdered) {
  sram::ArrayOptions opts;
  opts.rows = 4;
  opts.cols = 4;
  opts.nonvolatile = true;
  sram::ArrayTestbench tb(PaperParams::table1(), opts);
  const auto report = spice::analyze_structure(tb.circuit(), /*dc=*/true);
  EXPECT_TRUE(report.clean()) << "array circuit must not trip the analyzer";
  EXPECT_EQ(report.elimination_order.size(), report.unknown_count);
  std::set<std::size_t> seen(report.elimination_order.begin(),
                             report.elimination_order.end());
  EXPECT_EQ(seen.size(), report.unknown_count);
}

// ---- NewtonWorkspace: symbolic reuse ----------------------------------------

sram::ArrayTestbench make_array_bench() {
  sram::ArrayOptions opts;
  opts.rows = 6;
  opts.cols = 6;
  opts.nonvolatile = true;
  return sram::ArrayTestbench(PaperParams::table1(), opts);
}

TEST(NewtonWorkspace, ResultsAreBitIdenticalWithAndWithoutWorkspace) {
  // Two identically constructed array circuits (above the dense cutoff, so
  // both go through SparseLu); one solve carries a workspace, one does not.
  auto tb1 = make_array_bench();
  auto tb2 = make_array_bench();
  const spice::MnaLayout l1 = tb1.circuit().build_layout();
  const spice::MnaLayout l2 = tb2.circuit().build_layout();
  ASSERT_GT(l1.unknown_count(), linalg::kDenseCutoff);
  ASSERT_EQ(l1.unknown_count(), l2.unknown_count());

  linalg::Vector x1(l1.unknown_count(), 0.0);
  linalg::Vector x2(l2.unknown_count(), 0.0);
  const spice::NewtonOptions opts;
  spice::NewtonWorkspace ws;
  const auto r1 =
      spice::solve_newton(tb1.circuit(), l1, x1, 0.0, 0.0, /*dc=*/true,
                          spice::IntegrationMethod::kTrapezoidal, opts);
  const auto r2 =
      spice::solve_newton(tb2.circuit(), l2, x2, 0.0, 0.0, /*dc=*/true,
                          spice::IntegrationMethod::kTrapezoidal, opts, &ws);
  EXPECT_EQ(r1.converged, r2.converged);
  EXPECT_EQ(r1.iterations, r2.iterations);
  for (std::size_t i = 0; i < x1.size(); ++i) {
    EXPECT_EQ(x1[i], x2[i]) << "unknown " << i << " diverged";
  }
  // Reuse must dominate: far more numeric refactors than symbolic analyses.
  // (A cold start can cost an extra analysis when the all-cutoff first
  // iterate defeats the fixed pivot order and the threshold-pivoting
  // fallback invalidates it.)
  EXPECT_GE(ws.analyze_count, 1u);
  EXPECT_GT(ws.refactor_count, ws.analyze_count);
}

TEST(NewtonWorkspace, WarmResolveReusesTheSymbolicAnalysis) {
  auto tb = make_array_bench();
  spice::DCAnalysis dc(tb.circuit());
  const auto first = dc.solve();
  ASSERT_TRUE(first.has_value());
  const std::size_t analyzes = dc.workspace().analyze_count;
  const std::size_t refactors = dc.workspace().refactor_count;
  EXPECT_GE(analyzes, 1u);
  EXPECT_GE(refactors, 1u);

  // Warm re-solve from the converged point: every iteration hits the
  // refactor fast path, so the analysis count must not move.
  const linalg::Vector guess = first->raw();
  ASSERT_TRUE(dc.solve(&guess).has_value());
  EXPECT_EQ(dc.workspace().analyze_count, analyzes)
      << "warm re-solve must reuse the symbolic analysis";
  EXPECT_GT(dc.workspace().refactor_count, refactors);
}

TEST(NewtonWorkspace, StructuralVerdictSoundOnNumericFailure) {
  // Injected singular fault on a sound circuit: the diagnostics must say
  // "structurally sound" so the failure reads as a value problem.
  auto tb = make_array_bench();
  tb.circuit().set_fault_plan(spice::FaultPlan::parse("singular@0x-1"));
  spice::DCAnalysis dc(tb.circuit());
  EXPECT_FALSE(dc.solve().has_value());
  EXPECT_TRUE(dc.last_diagnostics().singular);
}

// ---- shared relaxation presets ----------------------------------------------

TEST(RelaxationLadder, AttemptZeroIsIdentity) {
  spice::NewtonOptions base;
  base.reltol = 1e-4;
  const auto r = base.relaxed(0);
  EXPECT_EQ(r.reltol, base.reltol);
  EXPECT_EQ(r.abstol_v, base.abstol_v);
  EXPECT_EQ(r.gmin, base.gmin);
  EXPECT_EQ(r.max_iterations, base.max_iterations);
}

TEST(RelaxationLadder, LaterAttemptsLoosenMonotonicallyAndCap) {
  const spice::NewtonOptions base;
  const auto r1 = base.relaxed(1);
  const auto r2 = base.relaxed(2);
  EXPECT_GT(r1.reltol, base.reltol);
  EXPECT_GE(r2.reltol, r1.reltol);
  EXPECT_GT(r1.max_iterations, base.max_iterations);
  EXPECT_LE(r2.reltol, 1e-2);  // hard cap: never worse than 1%
  EXPECT_LE(base.relaxed(9).reltol, 1e-2);

  spice::TranOptions topt;
  const auto t1 = topt.relaxed(1);
  EXPECT_GT(t1.lte_reltol, topt.lte_reltol);
  EXPECT_GT(t1.newton.reltol, topt.newton.reltol);
  EXPECT_LE(topt.relaxed(9).lte_reltol, 2e-2);
}

}  // namespace
}  // namespace nvsram
