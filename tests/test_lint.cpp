// Static-analysis (lint) layer: one targeted test per rule, regression that
// every shipped netlist lints clean, and the run_* fail-fast gating.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "lint/lint_cache.h"
#include "lint/linter.h"
#include "lint/report.h"
#include "lint/rules.h"
#include "spice/elements.h"
#include "spice/netlist_parser.h"

namespace nvsram {
namespace {

using lint::LintOptions;
using lint::LintReport;
using lint::Severity;
using spice::NetlistParser;

std::unique_ptr<spice::ParsedNetlist> parse(const std::string& text) {
  NetlistParser p;
  return p.parse(text);
}

// ---- clean circuits produce empty reports -----------------------------------

TEST(Lint, CleanDividerPassesAllRules) {
  auto net = parse(
      "divider\n"
      "V1 in 0 DC 2\n"
      "R1 in out 1k\n"
      "R2 out 0 1k\n"
      ".probe v(out)\n"
      ".dc V1 0 2 5\n");
  const LintReport report = net->lint();
  EXPECT_TRUE(report.empty()) << report.format();
}

TEST(Lint, RuleCatalogHasAtLeastEightUniqueRules) {
  std::set<std::string> ids;
  for (const auto& r : lint::rule_catalog()) ids.insert(r.id);
  EXPECT_GE(ids.size(), 8u);
  EXPECT_EQ(ids.size(), lint::rule_catalog().size()) << "duplicate rule ids";
}

// ---- float-node -------------------------------------------------------------

TEST(Lint, FloatNodeFlagsDegreeOneNode) {
  auto net = parse(
      "V1 in 0 DC 1\n"
      "R1 in out 1k\n"
      "R2 out dangl 1k\n");
  const auto diags = net->lint().by_rule(lint::rules::kFloatNode);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].node, "dangl");
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
  EXPECT_EQ(diags[0].line, 3);  // dangl first appears on line 3
}

// ---- no-dc-path -------------------------------------------------------------

TEST(Lint, NoDcPathFlagsCapacitorIsolatedNode) {
  auto net = parse(
      "V1 in 0 DC 1\n"
      "R1 in out 1k\n"
      "C1 out float 1p\n"
      "C2 float 0 1p\n");
  const auto diags = net->lint().by_rule(lint::rules::kNoDcPath);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_NE(diags[0].message.find("float"), std::string::npos);
}

TEST(Lint, NoDcPathGroupsIslandIntoOneDiagnostic) {
  auto net = parse(
      "V1 a 0 DC 1\n"
      "R1 a 0 1k\n"
      "R2 x y 1k\n"
      "R3 y z 1k\n");
  const auto diags = net->lint().by_rule(lint::rules::kNoDcPath);
  ASSERT_EQ(diags.size(), 1u);  // x, y, z are one island
  EXPECT_NE(diags[0].message.find("'x'"), std::string::npos);
  EXPECT_NE(diags[0].message.find("'z'"), std::string::npos);
}

// ---- vsource-loop / vsource-shorted ----------------------------------------

TEST(Lint, ParallelVoltageSourcesFlaggedAsLoop) {
  auto net = parse(
      "V1 a 0 DC 1\n"
      "V2 a 0 DC 1\n"
      "R1 a 0 1k\n");
  const auto diags = net->lint().by_rule(lint::rules::kVsourceLoop);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].device, "V2");
  EXPECT_EQ(diags[0].line, 2);
}

TEST(Lint, CyclicVoltageSourceLoopFlagged) {
  auto net = parse(
      "V1 a 0 DC 1\n"
      "V2 a b DC 0.5\n"
      "V3 b 0 DC 0.5\n"
      "R1 b 0 1k\n");
  EXPECT_EQ(net->lint().by_rule(lint::rules::kVsourceLoop).size(), 1u);
}

TEST(Lint, VcvsOutputParticipatesInVoltageLoop) {
  auto net = parse(
      "V1 in 0 DC 1\n"
      "E1 out 0 in 0 2\n"
      "V2 out 0 DC 2\n"
      "R1 out 0 1k\n");
  EXPECT_EQ(net->lint().by_rule(lint::rules::kVsourceLoop).size(), 1u);
}

TEST(Lint, ShortedVoltageSourceFlagged) {
  auto net = parse(
      "V1 a a DC 1\n"
      "R1 a 0 1k\n"
      "V2 a 0 DC 1\n");
  const auto diags = net->lint().by_rule(lint::rules::kVsourceShorted);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].device, "V1");
  EXPECT_EQ(diags[0].severity, Severity::kError);
}

// ---- self-connected ---------------------------------------------------------

TEST(Lint, SelfConnectedResistorFlagged) {
  auto net = parse(
      "V1 a 0 DC 1\n"
      "R1 a a 1k\n"
      "R2 a 0 1k\n");
  const auto diags = net->lint().by_rule(lint::rules::kSelfConnected);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].device, "R1");
}

TEST(Lint, FetWithDrainTiedToSourceFlagged) {
  auto net = parse(
      "Vd d 0 DC 0.9\n"
      "Vg g 0 DC 0.9\n"
      "M1 d g d nfin\n"
      "R1 d 0 1k\n");
  const auto diags = net->lint().by_rule(lint::rules::kSelfConnected);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].device, "M1");
}

// ---- nonphysical-value ------------------------------------------------------

TEST(Lint, NegativeDiodeSaturationCurrentFlagged) {
  // R/C/L/FET/MTJ constructors validate and surface as located parse errors
  // (see ParserLocation below); the diode card takes is= unchecked, so it is
  // the lint rule's job to catch it.
  auto net = parse(
      "V1 a 0 DC 1\n"
      "D1 a 0 is=-1f\n"
      "R1 a 0 1k\n");
  const auto diags = net->lint().by_rule(lint::rules::kNonphysicalValue);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].device, "D1");
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_EQ(diags[0].line, 2);
}

TEST(Lint, NonphysicalValueCatchesProgrammaticDiode) {
  spice::Circuit ckt;
  const auto a = ckt.node("a");
  ckt.add<spice::VSource>("V1", a, spice::kGround, spice::SourceSpec::dc(1.0));
  ckt.add<spice::Diode>("D1", a, spice::kGround, 0.0);
  ckt.add<spice::Resistor>("R1", a, spice::kGround, 1e3);
  const auto diags =
      lint::lint_circuit(ckt).by_rule(lint::rules::kNonphysicalValue);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].device, "D1");
  EXPECT_EQ(diags[0].line, -1);  // no netlist: no source location
}

// ---- card-unresolved --------------------------------------------------------

TEST(Lint, DcCardWithUnknownSourceFlagged) {
  auto net = parse(
      "V1 a 0 DC 1\n"
      "R1 a 0 1k\n"
      ".dc Vmissing 0 1 5\n");
  const auto diags = net->lint().by_rule(lint::rules::kCardUnresolved);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kError);
}

TEST(Lint, DcCardSweepingAResistorFlagged) {
  auto net = parse(
      "V1 a 0 DC 1\n"
      "R1 a 0 1k\n"
      ".dc R1 0 1 5\n");
  EXPECT_EQ(net->lint().by_rule(lint::rules::kCardUnresolved).size(), 1u);
}

TEST(Lint, AcCardWithUnknownSourceFlagged) {
  auto net = parse(
      "V1 a 0 DC 0\n"
      "R1 a 0 1k\n"
      ".ac Vnope 1e6 1e9\n");
  EXPECT_EQ(net->lint().by_rule(lint::rules::kCardUnresolved).size(), 1u);
}

// ---- probe-unresolved -------------------------------------------------------

TEST(Lint, ProbeOfForeignDeviceFlagged) {
  auto net = parse(
      "V1 a 0 DC 1\n"
      "R1 a 0 1k\n");
  // Programmatic post-editing can attach probes that do not belong to this
  // circuit; the parser itself rejects unknown targets at parse time.
  spice::Circuit other;
  auto* foreign =
      other.add<spice::Resistor>("Rx", other.node("x"), spice::kGround, 1e3);
  net->add_probe(spice::Probe::device_current(foreign, "i(Rx)"));
  const auto diags = net->lint().by_rule(lint::rules::kProbeUnresolved);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kError);
}

// ---- subckt-unused-port -----------------------------------------------------

TEST(Lint, UnusedSubcktPortFlagged) {
  auto net = parse(
      "buf with dead vdd port\n"
      ".subckt buf in out vdd\n"
      "R1 in out 1k\n"
      ".ends\n"
      "V1 a 0 DC 1\n"
      "Vd d 0 DC 1\n"
      "X1 a b d buf\n");
  const auto diags = net->lint().by_rule(lint::rules::kSubcktUnusedPort);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].node, "vdd");
  EXPECT_EQ(diags[0].line, 2);  // the .subckt card
}

// ---- paper-specific topology ------------------------------------------------

TEST(Lint, MissingCrossCouplingInNvCellFlagged) {
  // 2 MTJs + 6 FETs, but every gate hangs on one driver: no cross-coupled
  // inverter pair anywhere.
  auto net = parse(
      "broken cell\n"
      "Vdd vdd 0 DC 0.9\n"
      "Vg g 0 DC 0.9\n"
      "M1 a g vdd pfin\n"
      "M2 a g 0 nfin\n"
      "M3 b g vdd pfin\n"
      "M4 b g 0 nfin\n"
      "M5 c g a nfin\n"
      "M6 d g b nfin\n"
      "Y1 0 c P\n"
      "Y2 0 d P\n");
  EXPECT_EQ(net->lint().by_rule(lint::rules::kSramCrossCoupling).size(), 1u);
}

TEST(Lint, SmallMtjCircuitsNotHeldToCellTopology) {
  auto net = parse(
      "store branch in isolation\n"
      "Vq q 0 DC 0.9\n"
      "Vsr sr 0 DC 0.65\n"
      "M1 q sr y nfin\n"
      "Y1 0 y P\n");
  EXPECT_TRUE(net->lint().by_rule(lint::rules::kSramCrossCoupling).empty());
}

TEST(Lint, MtjPinnedLayerOnStoreBranchFlagged) {
  // Swapped MTJ: pinned layer on the FET side, free layer to the driver.
  auto net = parse(
      "swapped store branch\n"
      "Vq q 0 DC 0.9\n"
      "Vsr sr 0 DC 0.65\n"
      "Vctl ctrl 0 DC 0\n"
      "M1 q sr y nfin\n"
      "Y1 y ctrl P\n");
  const auto diags = net->lint().by_rule(lint::rules::kMtjOrientation);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].device, "Y1");
}

TEST(Lint, MtjFreeLayerOnStoreBranchAccepted) {
  auto net = parse(
      "correct store branch\n"
      "Vq q 0 DC 0.9\n"
      "Vsr sr 0 DC 0.65\n"
      "Vctl ctrl 0 DC 0\n"
      "M1 q sr y nfin\n"
      "Y1 ctrl y P\n");
  EXPECT_TRUE(net->lint().by_rule(lint::rules::kMtjOrientation).empty());
}

// ---- options: per-rule disable, severity floor ------------------------------

TEST(Lint, DisabledRuleIsSkipped) {
  auto net = parse(
      "V1 in 0 DC 1\n"
      "R1 in out 1k\n"
      "R2 out dangl 1k\n");
  LintOptions opt;
  opt.disable(lint::rules::kFloatNode);
  EXPECT_TRUE(net->lint(opt).empty());
}

TEST(Lint, MinSeverityDropsWarnings) {
  auto net = parse(
      "V1 in 0 DC 1\n"
      "R1 in out 1k\n"
      "R2 out dangl 1k\n");
  LintOptions opt;
  opt.min_severity = Severity::kError;
  EXPECT_TRUE(net->lint(opt).empty());
}

// ---- run_* gating: fail fast before Newton ----------------------------------

TEST(LintGate, FloatingNodeNetlistRejectedBeforeSimulation) {
  auto net = parse(
      "V1 a 0 DC 1\n"
      "R1 a 0 1k\n"
      "R2 x y 1k\n"
      ".probe v(a)\n"
      ".tran 1n\n");
  EXPECT_THROW(net->run_tran(), lint::LintError);
  try {
    net->run_tran();
  } catch (const lint::LintError& e) {
    EXPECT_FALSE(e.report().by_rule(lint::rules::kNoDcPath).empty());
    EXPECT_NE(std::string(e.what()).find("no-dc-path"), std::string::npos);
  }
}

TEST(LintGate, SingularVoltageLoopRejectedAtLintTimeNotAfterNewton) {
  const char* text =
      "V1 a 0 DC 1\n"
      "V2 a 0 DC 1\n"
      "R1 a 0 1k\n";
  // With the gate on, run_op throws before any Newton iteration.
  auto gated = parse(text);
  EXPECT_THROW(gated->run_op(), lint::LintError);
  // With the gate off, the solver grinds through its strategies and comes
  // back empty-handed (`singular` path) — the behaviour lint preempts.
  auto ungated = parse(text);
  ungated->set_lint_on_run(false);
  EXPECT_FALSE(ungated->run_op().has_value());
}

TEST(LintGate, OptOutFlagAllowsDegenerateCircuits) {
  auto net = parse(
      "V1 a 0 DC 1\n"
      "R1 a 0 1k\n"
      "R2 x y 1k\n"
      ".tran 1n\n");
  net->set_lint_on_run(false);
  EXPECT_NO_THROW(net->run_tran());  // gmin keeps the island solvable
}

TEST(LintGate, PerRuleDisableAllowsTargetedOptOut) {
  auto net = parse(
      "V1 a 0 DC 1\n"
      "R1 a 0 1k\n"
      "R2 x y 1k\n"
      ".tran 1n\n");
  net->lint_options().disable(lint::rules::kNoDcPath)
      .disable(lint::rules::kFloatNode);
  EXPECT_NO_THROW(net->run_tran());
}

// ---- parser location satellite ----------------------------------------------

TEST(ParserLocation, DuplicateDeviceNameCarriesLine) {
  NetlistParser p;
  try {
    p.parse("R1 a 0 1k\nR1 a 0 2k\n");
    FAIL() << "expected NetlistError";
  } catch (const spice::NetlistError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos);
  }
}

TEST(ParserLocation, NegativeResistanceCarriesLine) {
  NetlistParser p;
  try {
    p.parse("t\nR1 a 0 1k\nR2 a 0 -5\n");
    FAIL() << "expected NetlistError";
  } catch (const spice::NetlistError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_NE(std::string(e.what()).find("positive"), std::string::npos);
  }
}

TEST(ParserLocation, ZeroFinCountRejectedWithLine) {
  NetlistParser p;
  try {
    p.parse(
        "Vd d 0 DC 0.9\n"
        "Vg g 0 DC 0.9\n"
        "M1 d g 0 nfin fins=0\n");
    FAIL() << "expected NetlistError";
  } catch (const spice::NetlistError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_NE(std::string(e.what()).find("fin_count"), std::string::npos);
  }
}

TEST(ParserLocation, NegativeMtjTauRejectedWithLine) {
  NetlistParser p;
  try {
    p.parse(
        "V1 a 0 DC 0.2\n"
        "Y1 a 0 P tau0=-3n\n"
        "R1 a 0 1k\n");
    FAIL() << "expected NetlistError";
  } catch (const spice::NetlistError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find("positive"), std::string::npos);
  }
}

TEST(ParserLocation, SubcktBodyErrorPointsAtBodyLine) {
  NetlistParser p;
  try {
    p.parse(
        "t\n"
        ".subckt bad a\n"
        "R1 a 0 -1\n"
        ".ends\n"
        "V1 in 0 DC 1\n"
        "X1 in bad\n");
    FAIL() << "expected NetlistError";
  } catch (const spice::NetlistError& e) {
    EXPECT_EQ(e.line(), 3);  // the R card inside the body
  }
}

TEST(ParserLocation, DeviceAndNodeLinesRecorded) {
  auto net = parse(
      "title\n"
      "V1 in 0 DC 1\n"
      "R1 in out 1k\n"
      "R2 out 0 1k\n");
  EXPECT_EQ(net->device_line("V1"), 2);
  EXPECT_EQ(net->device_line("R2"), 4);
  EXPECT_EQ(net->node_line("out"), 3);
  EXPECT_EQ(net->device_line("nope"), -1);
}

// ---- regression: every shipped netlist lints clean --------------------------

TEST(LintRegression, AllShippedNetlistsLintClean) {
  namespace fs = std::filesystem;
  std::size_t seen = 0;
  for (const auto& entry : fs::directory_iterator(NVSRAM_NETLIST_DIR)) {
    if (entry.path().extension() != ".cir") continue;
    ++seen;
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.good()) << entry.path();
    std::ostringstream ss;
    ss << in.rdbuf();
    auto net = parse(ss.str());
    const LintReport report = net->lint();
    EXPECT_TRUE(report.empty())
        << entry.path() << " has diagnostics:\n" << report.format();
  }
  EXPECT_GE(seen, 5u) << "netlists/ should ship at least the five seeds";
}

// ---- lint-result cache ------------------------------------------------------

constexpr const char* kCleanDeck =
    "divider\n"
    "V1 in 0 DC 2\n"
    "R1 in out 1k\n"
    "R2 out 0 1k\n"
    ".end\n";

TEST(LintCache, ContentHashIsStampedAtParseAndStableAcrossReparses) {
  auto a = parse(kCleanDeck);
  auto b = parse(kCleanDeck);
  EXPECT_NE(a->content_hash(), 0u) << "parse must stamp a cacheable hash";
  EXPECT_EQ(a->content_hash(), b->content_hash());
  auto c = parse(
      "divider\n"
      "V1 in 0 DC 2\n"
      "R1 in out 2k\n"
      "R2 out 0 1k\n"
      ".end\n");
  EXPECT_NE(c->content_hash(), a->content_hash());
}

TEST(LintCache, MutationMakesTheNetlistUncacheable) {
  auto net = parse(kCleanDeck);
  ASSERT_NE(net->content_hash(), 0u);
  net->circuit();  // non-const access may edit anything
  EXPECT_EQ(net->content_hash(), 0u);
}

TEST(LintCache, EnsureLintOkHitsOnIdenticalText) {
  lint::lint_cache_clear();
  auto a = parse(kCleanDeck);
  a->ensure_lint_ok();
  const auto after_first = lint::lint_cache_stats();
  EXPECT_EQ(after_first.entries, 1u);
  EXPECT_EQ(after_first.hits, 0u);

  // A fresh parse of the same text must reuse the verdict, not re-lint.
  auto b = parse(kCleanDeck);
  b->ensure_lint_ok();
  const auto after_second = lint::lint_cache_stats();
  EXPECT_EQ(after_second.entries, 1u);
  EXPECT_EQ(after_second.hits, after_first.hits + 1);
}

TEST(LintCache, FailingVerdictsAreCachedToo) {
  lint::lint_cache_clear();
  const char* bad =
      "bad diode\n"
      "V1 a 0 DC 0.2\n"
      "D1 a 0 is=-1e-15\n"
      "R1 a 0 1k\n"
      ".end\n";
  auto a = parse(bad);
  EXPECT_THROW(a->ensure_lint_ok(), lint::LintError);
  auto b = parse(bad);
  EXPECT_THROW(b->ensure_lint_ok(), lint::LintError);
  const auto stats = lint::lint_cache_stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.hits, 1u) << "the second throw must come from the cache";
}

TEST(LintCache, OptionsFingerprintSeparatesCacheLines) {
  lint::lint_cache_clear();
  auto a = parse(kCleanDeck);
  a->ensure_lint_ok();
  auto b = parse(kCleanDeck);
  b->lint_options().disabled.insert(lint::rules::kFloatNode);
  b->ensure_lint_ok();
  // Same text, different options: two distinct cache entries, no false hit.
  const auto stats = lint::lint_cache_stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.hits, 0u);
}

TEST(LintCache, FingerprintReflectsDisablesAndSeverityFloor) {
  LintOptions base;
  const std::uint64_t fp = base.fingerprint();
  EXPECT_EQ(fp, LintOptions{}.fingerprint()) << "fingerprint is a pure value";

  LintOptions disabled = base;
  disabled.disabled.insert(lint::rules::kFloatNode);
  EXPECT_NE(disabled.fingerprint(), fp);

  // Insertion order of the disabled set must not matter.
  LintOptions ab, ba;
  ab.disabled.insert(lint::rules::kFloatNode);
  ab.disabled.insert(lint::rules::kNoDcPath);
  ba.disabled.insert(lint::rules::kNoDcPath);
  ba.disabled.insert(lint::rules::kFloatNode);
  EXPECT_EQ(ab.fingerprint(), ba.fingerprint());

  LintOptions floor = base;
  floor.min_severity = Severity::kError;
  EXPECT_NE(floor.fingerprint(), fp);
}

TEST(LintCache, MutatedNetlistNeverConsultsTheCache) {
  lint::lint_cache_clear();
  auto a = parse(kCleanDeck);
  a->ensure_lint_ok();
  auto b = parse(kCleanDeck);
  b->circuit();  // invalidate: hash 0 must bypass lookup and store
  b->ensure_lint_ok();
  const auto stats = lint::lint_cache_stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.hits, 0u);
}

}  // namespace
}  // namespace nvsram
