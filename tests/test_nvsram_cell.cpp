// NV-SRAM cell behaviour: the store (2-step CIMS) and restore operations,
// the V_CTRL leakage-control mechanism of Fig. 3(a), the store-current
// margins of Figs. 3(b)/(c), and the power-switch design curve of Fig. 4.
#include <gtest/gtest.h>

#include <cmath>

#include "models/paper_params.h"
#include "sram/characterize.h"
#include "sram/testbench.h"
#include "util/stats.h"

namespace nvsram {
namespace {

using models::MtjState;
using models::PaperParams;
using sram::CellKind;
using sram::CellTestbench;

// Full power-gating round trip for one data value.
void round_trip(bool data) {
  CellTestbench tb(CellKind::kNvSram, PaperParams::table1());
  tb.op_write(data);
  tb.op_idle(1e-9);
  tb.op_store();
  tb.op_shutdown(3e-6);  // VVDD fully collapses
  tb.op_restore();
  tb.op_idle(2e-9);
  auto res = tb.run();

  // MTJ states after store: H side AP, L side P.
  EXPECT_EQ(tb.mtj_q()->state(),
            data ? MtjState::kAntiparallel : MtjState::kParallel)
      << "data=" << data;
  EXPECT_EQ(tb.mtj_qb()->state(),
            data ? MtjState::kParallel : MtjState::kAntiparallel);

  // Virtual VDD must have collapsed during shutdown (real power-off).
  const auto& sd = res.phase("shutdown");
  EXPECT_LT(res.wave.value_at("V(VVDD)", sd.t1 - 1e-9), 0.25);

  // Data recovered after wake-up.
  const double t_end = tb.now() - 0.5e-9;
  const double q = res.wave.value_at("V(Q)", t_end);
  const double qb = res.wave.value_at("V(QB)", t_end);
  if (data) {
    EXPECT_GT(q, 0.8);
    EXPECT_LT(qb, 0.1);
  } else {
    EXPECT_LT(q, 0.1);
    EXPECT_GT(qb, 0.8);
  }
}

TEST(NvSramCell, StoreShutdownRestoreDataOne) { round_trip(true); }
TEST(NvSramCell, StoreShutdownRestoreDataZero) { round_trip(false); }

TEST(NvSramCell, StoreIsTwoStep) {
  // After step 1 (H-store) only the H-side MTJ has switched; the L-side
  // switches in step 2.
  CellTestbench tb(CellKind::kNvSram, PaperParams::table1());
  tb.op_write(true);
  tb.op_idle(1e-9);
  tb.op_store();
  auto res = tb.run();
  (void)res;
  EXPECT_EQ(tb.mtj_q()->state(), MtjState::kAntiparallel);
  EXPECT_EQ(tb.mtj_qb()->state(), MtjState::kParallel);
  EXPECT_EQ(tb.mtj_q()->switch_count() + tb.mtj_qb()->switch_count(), 1)
      << "both MTJs started P: only the H-store switch happens for data=1";
}

TEST(NvSramCell, StoreOverwritesOppositeData) {
  // Store 1, then write 0 and store again: both MTJs must flip.
  CellTestbench tb(CellKind::kNvSram, PaperParams::table1());
  tb.op_write(true);
  tb.op_idle(1e-9);
  tb.op_store();
  tb.op_idle(1e-9);
  tb.op_write(false);
  tb.op_idle(1e-9);
  tb.op_store();
  auto res = tb.run();
  (void)res;
  EXPECT_EQ(tb.mtj_q()->state(), MtjState::kParallel);
  EXPECT_EQ(tb.mtj_qb()->state(), MtjState::kAntiparallel);
}

TEST(NvSramCell, NormalOperationDoesNotDisturbMtjs) {
  // Reads and writes with SR low must never switch an MTJ (the electrical
  // separation that defines the NVPG architecture).
  CellTestbench tb(CellKind::kNvSram, PaperParams::table1());
  tb.op_write(true);
  tb.op_write(false);
  tb.op_read();
  tb.op_write(true);
  tb.op_read();
  tb.op_idle(2e-9);
  auto res = tb.run();
  (void)res;
  EXPECT_EQ(tb.mtj_q()->switch_count(), 0);
  EXPECT_EQ(tb.mtj_qb()->switch_count(), 0);
}

TEST(NvSramCell, RestoreWithoutStoreRecoversMtjData) {
  // "Store-free shutdown": MTJs already hold 1; write 0 but shut down
  // WITHOUT storing — wake-up must bring back the OLD data (1).
  CellTestbench tb(CellKind::kNvSram, PaperParams::table1());
  tb.op_write(true);
  tb.op_idle(1e-9);
  tb.op_store();
  tb.op_idle(1e-9);
  tb.op_write(false);  // volatile only
  tb.op_idle(1e-9);
  tb.op_shutdown(3e-6);
  tb.op_restore();
  tb.op_idle(2e-9);
  auto res = tb.run();
  const double t_end = tb.now() - 0.5e-9;
  EXPECT_GT(res.wave.value_at("V(Q)", t_end), 0.8);  // old data back
}

TEST(NvSramCell, StoreCurrentExceedsMarginAtPaperBias) {
  // Both store steps must reach the 1.5 x Ic design margin at the Table I
  // bias point (V_SR = 0.65 V, V_CTRL = 0.5 V).
  const auto pp = PaperParams::table1();
  sram::CellCharacterizer ch(pp);
  const double target = pp.store_current_factor * pp.mtj.critical_current();

  const auto h = ch.store_current_vs_vsr({pp.vsr});
  ASSERT_EQ(h.size(), 1u);
  EXPECT_GE(h[0].second, target * 0.95);

  const auto l = ch.store_current_vs_vctrl({pp.vctrl_store});
  ASSERT_EQ(l.size(), 1u);
  EXPECT_GE(l[0].second, target * 0.95);
}

TEST(NvSramCell, Fig3bStoreCurrentMonotoneInVsr) {
  sram::CellCharacterizer ch(PaperParams::table1());
  const auto pts = ch.store_current_vs_vsr(util::linspace(0.2, 0.9, 8));
  std::vector<double> currents;
  for (const auto& [v, i] : pts) currents.push_back(i);
  EXPECT_TRUE(util::is_monotone_nondecreasing(currents, 1e-6));
  EXPECT_LT(pts.front().second, 0.5 * pts.back().second);
}

TEST(NvSramCell, Fig3cStoreCurrentMonotoneInVctrl) {
  sram::CellCharacterizer ch(PaperParams::table1());
  const auto pts = ch.store_current_vs_vctrl(util::linspace(0.1, 0.7, 7));
  std::vector<double> currents;
  for (const auto& [v, i] : pts) currents.push_back(i);
  EXPECT_TRUE(util::is_monotone_nondecreasing(currents, 1e-6));
}

TEST(NvSramCell, Fig3aVctrlControlsLeakage) {
  sram::CellCharacterizer ch(PaperParams::table1());
  const auto sweep = ch.leakage_vs_vctrl({0.0, 0.07, 0.15});
  ASSERT_EQ(sweep.points.size(), 3u);
  // Grounded CTRL leaks noticeably more than the optimized 0.07 V bias.
  EXPECT_GT(sweep.points[0].current_nv, 1.1 * sweep.points[1].current_nv);
  // At the optimized bias the NV cell is comparable to the 6T cell (< 10%).
  EXPECT_LT(sweep.points[1].current_nv, 1.10 * sweep.current_6t);
  EXPECT_GT(sweep.points[1].current_nv, sweep.current_6t);  // but not below
}

TEST(NvSramCell, Fig4VvddDegradesWithFewerFins) {
  sram::CellCharacterizer ch(PaperParams::table1());
  const auto pts = ch.vvdd_vs_switch_fins({1, 3, 7});
  ASSERT_EQ(pts.size(), 3u);
  // Normal mode barely loads the switch.
  for (const auto& p : pts) EXPECT_GT(p.vvdd_normal, 0.89);
  // Store mode: droop shrinks with fin count; 7 fins >= 97% VDD (Fig. 4).
  EXPECT_LT(pts[0].vvdd_store, pts[1].vvdd_store);
  EXPECT_LT(pts[1].vvdd_store, pts[2].vvdd_store);
  EXPECT_GT(pts[2].vvdd_store, 0.97 * 0.9);
}

TEST(NvSramCell, SleepModeRetainsDataWithoutMtj) {
  CellTestbench tb(CellKind::kNvSram, PaperParams::table1());
  tb.op_write(false);
  tb.op_idle(1e-9);
  tb.op_sleep(300e-9);
  tb.op_idle(2e-9);
  auto res = tb.run();
  EXPECT_LT(res.wave.value_at("V(Q)", tb.now() - 0.5e-9), 0.1);
  EXPECT_GT(res.wave.value_at("V(QB)", tb.now() - 0.5e-9), 0.8);
  EXPECT_EQ(tb.mtj_q()->switch_count(), 0);
}

TEST(NvSramCell, StoreEnergyDominatesAccessEnergy) {
  // The paper's core quantitative point: one MTJ store costs ~two orders
  // more than a volatile access, which is why NOF run-time energy explodes.
  sram::CellCharacterizer ch(PaperParams::table1());
  const auto nv = ch.characterize(CellKind::kNvSram);
  EXPECT_GT(nv.e_store, 20.0 * nv.e_write);
  EXPECT_GT(nv.e_store, 20.0 * nv.e_read);
}

}  // namespace
}  // namespace nvsram
