// Array-level integration tests: multi-cell power domains with row-by-row
// store/restore, cross-checking the per-cell energy composition that the
// architecture model relies on, and exercising the sparse solver path on
// larger netlists.
#include <gtest/gtest.h>

#include <cmath>

#include "models/paper_params.h"
#include "sram/array.h"
#include "linalg/sparse_lu.h"
#include "sram/characterize.h"

namespace nvsram {
namespace {

using models::MtjState;
using models::PaperParams;
using sram::ArrayOptions;
using sram::ArrayTestbench;

TEST(ArrayBuild, RejectsDegenerateGeometry) {
  spice::Circuit ckt;
  ArrayOptions opts;
  opts.rows = 0;
  EXPECT_THROW(sram::build_array(ckt, "a", PaperParams::table1(), opts),
               std::invalid_argument);
}

TEST(ArrayBuild, CreatesExpectedStructure) {
  spice::Circuit ckt;
  ArrayOptions opts;
  opts.rows = 3;
  opts.cols = 2;
  const auto h = sram::build_array(ckt, "a", PaperParams::table1(), opts);
  EXPECT_EQ(h.cells.size(), 3u);
  EXPECT_EQ(h.cells[0].size(), 2u);
  EXPECT_EQ(h.wordlines.size(), 3u);
  EXPECT_EQ(h.bl.size(), 2u);
  EXPECT_EQ(h.sr.size(), 3u);
  EXPECT_NE(h.cells[1][1].mtj_q, nullptr);
  // Cells in the same row share VVDD; different rows do not.
  EXPECT_EQ(h.cells[0][0].vvdd, h.cells[0][1].vvdd);
  EXPECT_NE(h.cells[0][0].vvdd, h.cells[1][0].vvdd);
}

TEST(ArrayIntegration, TwoByTwoFullPowerGatingRoundTrip) {
  ArrayOptions opts;
  opts.rows = 2;
  opts.cols = 2;
  ArrayTestbench tb(PaperParams::table1(), opts);
  // Distinct pattern per row: row0 = {1,0}, row1 = {0,1}.
  tb.op_write_row(0, {true, false});
  tb.op_write_row(1, {false, true});
  tb.op_idle(1e-9);
  tb.op_store_all_rows();
  tb.op_shutdown_all(3e-6);
  tb.op_restore_all_rows();
  tb.op_idle(2e-9);
  auto res = tb.run();

  // MTJ states per cell.
  EXPECT_EQ(tb.mtj_q(0, 0)->state(), MtjState::kAntiparallel);
  EXPECT_EQ(tb.mtj_q(0, 1)->state(), MtjState::kParallel);
  EXPECT_EQ(tb.mtj_q(1, 0)->state(), MtjState::kParallel);
  EXPECT_EQ(tb.mtj_q(1, 1)->state(), MtjState::kAntiparallel);

  // Every VVDD collapsed during shutdown.
  const auto& sd = res.phase("shutdown");
  for (int r = 0; r < 2; ++r) {
    EXPECT_LT(res.wave.value_at("VVDD[" + std::to_string(r) + "]",
                                sd.t1 - 1e-9),
              0.25)
        << "row " << r;
  }

  // Data recovered everywhere.
  const double t_end = tb.now() - 0.5e-9;
  const bool expected[2][2] = {{true, false}, {false, true}};
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      const double q = res.wave.value_at(ArrayTestbench::q_label(r, c), t_end);
      if (expected[r][c]) {
        EXPECT_GT(q, 0.8) << "cell " << r << "," << c;
      } else {
        EXPECT_LT(q, 0.1) << "cell " << r << "," << c;
      }
    }
  }
}

TEST(ArrayIntegration, RowsStoreSequentially) {
  ArrayOptions opts;
  opts.rows = 2;
  opts.cols = 2;
  ArrayTestbench tb(PaperParams::table1(), opts);
  tb.op_write_row(0, {true, true});
  tb.op_write_row(1, {true, true});
  tb.op_idle(1e-9);
  tb.op_store_all_rows();
  auto res = tb.run();
  // Row 1's store window starts after row 0's completes.
  const auto& s0 = res.phase("store_l_row0");
  const auto& s1 = res.phase("store_h_row1");
  EXPECT_GE(s1.t0, s0.t1 - 1e-12);
}

TEST(ArrayIntegration, StoreEnergyMatchesCellCharacterizationScaled) {
  // The architecture model assumes E_store(array) ~ cells * E_store(cell).
  // Validate on a real 2x2 array within a generous tolerance (the array
  // version includes per-row switch overhead the cell testbench lacks).
  const auto pp = PaperParams::table1();
  sram::CellCharacterizer ch(pp);
  const auto nv = ch.characterize(sram::CellKind::kNvSram);

  ArrayOptions opts;
  opts.rows = 2;
  opts.cols = 2;
  ArrayTestbench tb(pp, opts);
  tb.op_write_row(0, {true, false});
  tb.op_write_row(1, {false, true});
  tb.op_idle(1e-9);
  tb.op_store_all_rows();
  auto res = tb.run();
  const auto& st = res.phase("store_all");
  const double e_array = res.energy(st.t0, st.t1);
  const double e_model = 4.0 * nv.e_store;
  EXPECT_GT(e_array, 0.5 * e_model);
  EXPECT_LT(e_array, 1.6 * e_model);
}

TEST(ArrayIntegration, VolatileArrayWritesAndHolds) {
  ArrayOptions opts;
  opts.rows = 2;
  opts.cols = 2;
  opts.nonvolatile = false;
  ArrayTestbench tb(PaperParams::table1(), opts);
  tb.op_write_row(0, {true, false});
  tb.op_write_row(1, {false, true});
  tb.op_read_row(0);
  tb.op_idle(2e-9);
  auto res = tb.run();
  const double t_end = tb.now() - 0.5e-9;
  EXPECT_GT(res.wave.value_at(ArrayTestbench::q_label(0, 0), t_end), 0.8);
  EXPECT_LT(res.wave.value_at(ArrayTestbench::q_label(0, 1), t_end), 0.1);
  EXPECT_LT(res.wave.value_at(ArrayTestbench::q_label(1, 0), t_end), 0.1);
  EXPECT_GT(res.wave.value_at(ArrayTestbench::q_label(1, 1), t_end), 0.8);
}

TEST(ArrayIntegration, LargeArrayExercisesSparseSolver) {
  // A 6x6 NV array exceeds the dense cutoff (~230 unknowns): the Newton
  // loop runs on the Gilbert-Peierls sparse LU.  Keep the script short.
  ArrayOptions opts;
  opts.rows = 6;
  opts.cols = 6;
  ArrayTestbench tb(PaperParams::table1(), opts);
  std::vector<bool> pattern(6);
  for (int c = 0; c < 6; ++c) pattern[c] = (c % 2 == 0);
  tb.op_write_row(0, pattern);
  tb.op_write_row(3, pattern);
  tb.op_idle(2e-9);
  auto res = tb.run();
  const double t_end = tb.now() - 0.5e-9;
  EXPECT_GT(res.wave.value_at(ArrayTestbench::q_label(0, 0), t_end), 0.8);
  EXPECT_LT(res.wave.value_at(ArrayTestbench::q_label(0, 1), t_end), 0.1);
  EXPECT_GT(res.wave.value_at(ArrayTestbench::q_label(3, 4), t_end), 0.8);

  // Sanity: the circuit really is past the dense cutoff.
  const auto layout = tb.circuit().build_layout();
  EXPECT_GT(layout.unknown_count(), linalg::kDenseCutoff);
}

TEST(ArrayIntegration, WriteRowValidatesArguments) {
  ArrayOptions opts;
  opts.rows = 2;
  opts.cols = 2;
  ArrayTestbench tb(PaperParams::table1(), opts);
  EXPECT_THROW(tb.op_write_row(5, {true, true}), std::out_of_range);
  EXPECT_THROW(tb.op_write_row(0, {true}), std::invalid_argument);
  EXPECT_THROW(tb.run(), std::logic_error);  // nothing scheduled
}

}  // namespace
}  // namespace nvsram
