// NV-FF (nonvolatile flip-flop): clocking behaviour, retention branches,
// the full power-gating round trip, and the characterization summary.
#include <gtest/gtest.h>

#include "models/paper_params.h"
#include "sram/nvff.h"

namespace nvsram::sram {
namespace {

using models::MtjState;
using models::PaperParams;

TEST(Nvff, DataClocksThroughOnFallingEdge) {
  NvffTestbench tb(PaperParams::table1());
  tb.op_clock_data(true);
  tb.op_hold(2e-9);
  tb.op_clock_data(false);
  tb.op_hold(2e-9);
  auto res = tb.run();
  const auto& c1 = res.phase("clock1");
  EXPECT_GT(res.wave.value_at("V(Q)", c1.t1), 0.85);
  const auto& c0 = res.phase("clock0");
  EXPECT_LT(res.wave.value_at("V(Q)", c0.t1), 0.05);
  // Q does not change before the falling edge (master-slave behaviour).
  EXPECT_GT(res.wave.value_at("V(Q)", c0.t0 + 0.3 * (c0.t1 - c0.t0)), 0.85);
}

TEST(Nvff, HoldRetainsAcrossInputToggles) {
  // With clk high, wiggling D must not reach Q.
  NvffTestbench tb(PaperParams::table1());
  tb.op_clock_data(true);
  tb.op_hold(20e-9);
  auto res = tb.run();
  EXPECT_GT(res.wave.value_at("V(Q)", tb.now() - 0.5e-9), 0.85);
  EXPECT_LT(res.wave.value_at("V(QB)", tb.now() - 0.5e-9), 0.05);
}

void ff_round_trip(bool data) {
  NvffTestbench tb(PaperParams::table1());
  tb.op_clock_data(data);
  tb.op_hold(2e-9);
  tb.op_store();
  tb.op_shutdown(3e-6);
  tb.op_restore();
  tb.op_hold(2e-9);
  auto res = tb.run();

  EXPECT_EQ(tb.mtj_q()->state(),
            data ? MtjState::kAntiparallel : MtjState::kParallel);
  EXPECT_EQ(tb.mtj_qb()->state(),
            data ? MtjState::kParallel : MtjState::kAntiparallel);
  const auto& sd = res.phase("shutdown");
  EXPECT_LT(res.wave.value_at("V(VVDD)", sd.t1 - 1e-9), 0.25);
  const double q = res.wave.value_at("V(Q)", tb.now() - 0.5e-9);
  if (data) {
    EXPECT_GT(q, 0.8);
  } else {
    EXPECT_LT(q, 0.1);
  }
}

TEST(Nvff, PowerGatingRoundTripOne) { ff_round_trip(true); }
TEST(Nvff, PowerGatingRoundTripZero) { ff_round_trip(false); }

TEST(Nvff, NormalClockingDoesNotDisturbMtjs) {
  NvffTestbench tb(PaperParams::table1());
  for (int i = 0; i < 3; ++i) {
    tb.op_clock_data(i % 2 == 0);
    tb.op_hold(1e-9);
  }
  auto res = tb.run();
  (void)res;
  EXPECT_EQ(tb.mtj_q()->switch_count(), 0);
  EXPECT_EQ(tb.mtj_qb()->switch_count(), 0);
}

TEST(Nvff, VolatileVariantHasNoMtjs) {
  NvffTestbench tb(PaperParams::table1(), /*nonvolatile=*/false);
  EXPECT_EQ(tb.mtj_q(), nullptr);
  EXPECT_THROW(tb.op_store(), std::logic_error);
  tb.op_clock_data(true);
  tb.op_hold(2e-9);
  auto res = tb.run();
  EXPECT_GT(res.wave.value_at("V(Q)", tb.now() - 0.5e-9), 0.85);
}

TEST(Nvff, CharacterizationIsConsistent) {
  const auto e = characterize_nvff(PaperParams::table1());
  EXPECT_TRUE(e.store_verified);
  EXPECT_TRUE(e.restore_verified);
  // One clocked cycle costs a few fJ; the store dominates by ~two orders —
  // the same asymmetry that drives the paper's NVPG-vs-NOF verdict.
  EXPECT_GT(e.e_clock, 0.2e-15);
  EXPECT_LT(e.e_clock, 20e-15);
  EXPECT_GT(e.e_store, 50.0 * e.e_clock);
  EXPECT_GT(e.e_restore, 0.0);
  EXPECT_LT(e.e_restore, 0.3 * e.e_store);
  // Static ladder: hold burns tens of nW, shutdown pW-class.
  EXPECT_GT(e.p_static_hold, 5e-9);
  EXPECT_LT(e.p_static_hold, 200e-9);
  EXPECT_LT(e.p_static_shutdown, 0.02 * e.p_static_hold);
}

TEST(Nvff, RegisterBankBetInPaperBand) {
  // A register file of NV-FFs gated as one domain: BET = (store + restore)
  // / (hold leakage saved) — the FF analogue of the paper's Fig. 8.
  const auto e = characterize_nvff(PaperParams::table1());
  const double bet = (e.e_store + e.e_restore) /
                     (e.p_static_hold - e.p_static_shutdown);
  EXPECT_GT(bet, 1e-6);
  EXPECT_LT(bet, 100e-6);  // same order as the NV-SRAM cell's BET
}

}  // namespace
}  // namespace nvsram::sram
