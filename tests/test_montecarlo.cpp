// Monte-Carlo mismatch analysis: reproducibility, sane distributions, and
// the expected qualitative effects of variation knobs.
#include <gtest/gtest.h>

#include "models/paper_params.h"
#include "sram/montecarlo.h"

namespace nvsram {
namespace {

using models::PaperParams;
using sram::CellKind;
using sram::MonteCarlo;
using sram::VariationSpec;

TEST(MonteCarloTest, ZeroSigmaReproducesNominal) {
  VariationSpec spec;
  spec.vth_sigma = 0.0;
  spec.kp_rel_sigma = 0.0;
  MonteCarlo mc(PaperParams::table1(), spec);
  const auto nominal = sram::hold_snm(PaperParams::table1(), CellKind::kNvSram);
  const auto summary = mc.hold_snm(3, CellKind::kNvSram);
  EXPECT_EQ(summary.samples, 3);
  EXPECT_EQ(summary.failures, 0);
  EXPECT_NEAR(summary.stats.mean(), nominal.snm, 2e-3);
  EXPECT_LT(summary.stats.stddev(), 1e-6);
}

TEST(MonteCarloTest, SameSeedSameResults) {
  VariationSpec spec;
  spec.seed = 77;
  MonteCarlo a(PaperParams::table1(), spec);
  MonteCarlo b(PaperParams::table1(), spec);
  const auto ra = a.hold_snm(5);
  const auto rb = b.hold_snm(5);
  EXPECT_DOUBLE_EQ(ra.stats.mean(), rb.stats.mean());
  EXPECT_DOUBLE_EQ(ra.stats.min(), rb.stats.min());
}

TEST(MonteCarloTest, MismatchSpreadsAndDegradesSnm) {
  VariationSpec spec;
  spec.vth_sigma = 0.03;
  MonteCarlo mc(PaperParams::table1(), spec);
  const auto nominal = sram::hold_snm(PaperParams::table1(), CellKind::kNvSram);
  const auto summary = mc.hold_snm(24);
  EXPECT_GT(summary.stats.stddev(), 1e-3);      // variation spreads the SNM
  EXPECT_LT(summary.stats.min(), nominal.snm);  // mismatch only hurts
  // Mean of mismatched SNM sits below the nominal (min of two lobes).
  EXPECT_LT(summary.stats.mean(), nominal.snm + 1e-3);
}

TEST(MonteCarloTest, LargerSigmaLowersYield) {
  VariationSpec small;
  small.vth_sigma = 0.01;
  VariationSpec large;
  large.vth_sigma = 0.08;
  MonteCarlo mc_small(PaperParams::table1(), small);
  MonteCarlo mc_large(PaperParams::table1(), large);
  const auto rs = mc_small.hold_snm(24, CellKind::kNvSram, 0.18);
  const auto rl = mc_large.hold_snm(24, CellKind::kNvSram, 0.18);
  EXPECT_LE(rs.failures, rl.failures);
  EXPECT_GT(rl.stats.stddev(), rs.stats.stddev());
}

TEST(MonteCarloTest, StoreMarginDistribution) {
  VariationSpec spec;
  MonteCarlo mc(PaperParams::table1(), spec);
  const auto summary = mc.store_margin(16);
  EXPECT_EQ(summary.samples, 16);
  // Nominal overdrive is ~1.45-1.6x; variation spreads but rarely breaks it.
  EXPECT_GT(summary.stats.mean(), 1.2);
  EXPECT_LT(summary.stats.mean(), 2.0);
  EXPECT_GT(summary.yield(), 0.85);
  EXPECT_GT(summary.stats.stddev(), 0.005);
}

TEST(MonteCarloTest, ReadSnmWorseThanHoldUnderVariation) {
  VariationSpec spec;
  MonteCarlo mc_h(PaperParams::table1(), spec);
  MonteCarlo mc_r(PaperParams::table1(), spec);
  const auto h = mc_h.hold_snm(10);
  const auto r = mc_r.read_snm(10);
  EXPECT_LT(r.stats.mean(), h.stats.mean());
}

TEST(MonteCarloTest, YieldAccounting) {
  sram::MonteCarloSummary s;
  s.samples = 10;
  s.failures = 2;
  EXPECT_DOUBLE_EQ(s.yield(), 0.8);
  sram::MonteCarloSummary empty;
  EXPECT_DOUBLE_EQ(empty.yield(), 0.0);
}

}  // namespace
}  // namespace nvsram
