// Process-isolation crash drills for the supervised sweep runner
// (runner/supervisor.h): byte-identity of CSV/checkpoint/manifest against
// in-process runs, segv/oom/hang containment with poison quarantine,
// crash-once recovery, and kill-the-supervisor + resume.
//
// The suite name deliberately avoids the TSan CI filter
// (SweepRunner|SweepParallel|...): fork() inside a TSan-instrumented
// process is unreliable, and the supervisor is single-threaded anyway.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "runner/supervisor.h"
#include "runner/sweep_runner.h"

#if defined(__SANITIZE_ADDRESS__)
#define NVSRAM_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define NVSRAM_ASAN 1
#endif
#endif

namespace nvsram::runner {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string tmp_csv(const std::string& tag) {
  return ::testing::TempDir() + "iso_" + tag + ".csv";
}

RunnerOptions base_options(const std::string& tag) {
  RunnerOptions opts;
  opts.csv_path = tmp_csv(tag);
  opts.csv_columns = {"x", "y"};
  // Keep the drills fast: real respawn backoff defaults are tuned for
  // crash-looping production environments, not unit tests.
  opts.respawn_backoff_ms = 2.0;
  opts.retry_backoff_ms = 1.0;
  return opts;
}

RunnerOptions process_options(const std::string& tag, int workers) {
  auto opts = base_options(tag);
  opts.isolation = Isolation::kProcess;
  opts.threads = workers;
  return opts;
}

// y = x^2, one row per point.
Rows square_point(const PointContext& pc) {
  const double x = static_cast<double>(pc.index);
  return {{x, x * x}};
}

TEST(SweepIsolation, SupervisorIsAvailableHere) {
  // The drills below all assume fork(); this fails loudly if the platform
  // ever silently falls back, instead of every drill passing vacuously.
  EXPECT_TRUE(supervisor::available());
}

TEST(SweepIsolation, CleanRunMatchesInProcessByteForByte) {
  SweepRunner ref("iso", base_options("clean_ref"));
  const auto s_ref = ref.run(6, square_point);
  ASSERT_TRUE(s_ref.all_ok());

  SweepRunner proc("iso", process_options("clean_proc", 3));
  const auto s = proc.run(6, square_point);
  EXPECT_TRUE(s.all_ok());
  EXPECT_TRUE(s.process_isolated);
  EXPECT_EQ(s.threads, 3);
  EXPECT_EQ(s.respawns, 0);
  EXPECT_EQ(slurp(s.csv_path), slurp(s_ref.csv_path));
  EXPECT_EQ(slurp(s.manifest_path), slurp(s_ref.manifest_path));
  // Results travelled over the pipe as raw IEEE-754 bits.
  ASSERT_EQ(s.rows.size(), 6u);
  EXPECT_EQ(s.rows[5].front()[1], 25.0);
}

TEST(SweepIsolation, ThrowFaultMatchesInProcessEverywhere) {
  // A plain throwing point exercises retries + backoff recording through
  // the RESULT frame; every artifact must match the in-process run,
  // including the deterministic backoff_ms column and the kept checkpoint.
  auto make = [](const std::string& tag, Isolation iso) {
    auto opts = base_options(tag);
    if (iso == Isolation::kProcess) {
      opts.isolation = iso;
      opts.threads = 2;
    }
    opts.fault_point = 2;  // FaultKind::kThrow
    return opts;
  };
  SweepRunner ref("iso", make("throw_ref", Isolation::kNone));
  const auto s_ref = ref.run(5, square_point);
  ASSERT_EQ(s_ref.failed, 1u);

  SweepRunner proc("iso", make("throw_proc", Isolation::kProcess));
  const auto s = proc.run(5, square_point);
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.outcomes[2].status, PointStatus::kFailed);
  EXPECT_EQ(s.respawns, 0);  // a caught throw never kills its worker
  EXPECT_EQ(slurp(s.csv_path), slurp(s_ref.csv_path));
  EXPECT_EQ(slurp(s.manifest_path), slurp(s_ref.manifest_path));
  EXPECT_EQ(slurp(proc.options().checkpoint_path),
            slurp(ref.options().checkpoint_path));
}

TEST(SweepIsolation, SegvPointIsPoisonedWithBreadcrumb) {
  auto opts = process_options("segv", 2);
  opts.fault_point = 2;
  opts.fault_kind = FaultKind::kSegv;
  SweepRunner run("iso", opts);
  const auto s = run.run(6, square_point);

  // The sweep survives the crashes: every other point completes.
  EXPECT_EQ(s.completed, 5u);
  EXPECT_EQ(s.poisoned, 1u);
  EXPECT_EQ(s.outcomes[2].status, PointStatus::kPoisoned);
  EXPECT_GE(s.respawns, 2);  // the point killed two workers

  // The manifest quarantines the point and carries the worker's last
  // breadcrumb, so the postmortem names the point, attempt, and phase.
  const std::string manifest = slurp(s.manifest_path);
  EXPECT_NE(manifest.find("2,poison,"), std::string::npos) << manifest;
  EXPECT_NE(manifest.find("quarantined after killing 2 workers"),
            std::string::npos)
      << manifest;
  EXPECT_NE(manifest.find("point=2"), std::string::npos) << manifest;
  EXPECT_NE(manifest.find("phase=injected-segv"), std::string::npos)
      << manifest;

  // Acceptance: all other rows byte-identical to an in-process run that
  // merely failed the same point (CSV skips it either way), and the kept
  // checkpoints agree on the surviving points.
  auto ref_opts = base_options("segv_ref");
  ref_opts.fault_point = 2;  // FaultKind::kThrow — containable in-process
  SweepRunner ref("iso", ref_opts);
  const auto s_ref = ref.run(6, square_point);
  EXPECT_EQ(slurp(s.csv_path), slurp(s_ref.csv_path));
  EXPECT_EQ(slurp(run.options().checkpoint_path),
            slurp(ref.options().checkpoint_path));
}

TEST(SweepIsolation, HangPointMissesHeartbeatsAndIsPoisoned) {
  auto opts = process_options("hang", 2);
  opts.fault_point = 1;
  opts.fault_kind = FaultKind::kHang;
  opts.heartbeat_timeout_sec = 0.3;  // wedged worker is SIGKILLed fast
  SweepRunner run("iso", opts);
  const auto s = run.run(4, square_point);

  EXPECT_EQ(s.completed, 3u);
  EXPECT_EQ(s.poisoned, 1u);
  EXPECT_EQ(s.outcomes[1].status, PointStatus::kPoisoned);
  const std::string manifest = slurp(s.manifest_path);
  EXPECT_NE(manifest.find("1,poison,"), std::string::npos) << manifest;
  EXPECT_NE(manifest.find("hang: missed heartbeats past deadline"),
            std::string::npos)
      << manifest;
  // SIGKILL cannot run the crash handler: the breadcrumb must have come
  // through the eagerly-rewritten crumb file.
  EXPECT_NE(manifest.find("phase=injected-hang"), std::string::npos)
      << manifest;
}

TEST(SweepIsolation, OomPointIsContainedByRlimit) {
#ifdef NVSRAM_ASAN
  GTEST_SKIP() << "RLIMIT_AS is incompatible with ASan shadow memory";
#else
  auto opts = process_options("oom", 2);
  opts.fault_point = 1;
  opts.fault_kind = FaultKind::kOom;
  opts.worker_rlimit_mb = 256.0;  // the rlimit, not the host, bounds the hog
  SweepRunner run("iso", opts);
  const auto s = run.run(4, square_point);

  EXPECT_EQ(s.completed, 3u);
  EXPECT_EQ(s.poisoned, 1u);
  const std::string manifest = slurp(s.manifest_path);
  EXPECT_NE(manifest.find("1,poison,"), std::string::npos) << manifest;
  EXPECT_NE(manifest.find("phase=injected-oom"), std::string::npos)
      << manifest;
#endif
}

TEST(SweepIsolation, CrashOnceThenRecover) {
  // A point that kills its first worker but succeeds on the respawned one
  // is kRecovered, not poisoned: quarantine needs two deaths.  The crash
  // marker lives on the filesystem because worker memory dies with it.
  const std::string marker = ::testing::TempDir() + "iso_recover.marker";
  std::remove(marker.c_str());
  auto opts = process_options("recover", 2);
  SweepRunner run("iso", opts);
  const auto s = run.run(5, [&](const PointContext& pc) -> Rows {
    if (pc.index == 3 && !std::ifstream(marker).good()) {
      std::ofstream(marker) << "crashed once\n";
      std::raise(SIGSEGV);
    }
    return square_point(pc);
  });
  std::remove(marker.c_str());

  EXPECT_TRUE(s.all_ok());
  EXPECT_EQ(s.completed, 5u);
  EXPECT_EQ(s.outcomes[3].status, PointStatus::kRecovered);
  EXPECT_GE(s.respawns, 1);
  // Recovered points are successes: nothing in the manifest, and the CSV
  // matches a run that never crashed at all.
  SweepRunner ref("iso", base_options("recover_ref"));
  const auto s_ref = ref.run(5, square_point);
  EXPECT_EQ(slurp(s.csv_path), slurp(s_ref.csv_path));
  EXPECT_EQ(slurp(s.manifest_path), slurp(s_ref.manifest_path));
}

TEST(SweepIsolation, BackpressureNeverStallsARequeuedPoint) {
  // Regression: a point whose worker dies *slowly* (here: sleeps, then
  // segfaults) lets the other workers park results up to the reorder-buffer
  // cap first.  Its requeue is then the only thing that can drain the
  // buffer, so the cap must not block assigning it — this used to deadlock
  // the supervisor with every worker idle.
  const std::string marker = ::testing::TempDir() + "iso_backpressure.marker";
  std::remove(marker.c_str());
  auto opts = process_options("backpressure", 2);
  SweepRunner run("iso", opts);
  const auto s = run.run(45, [&](const PointContext& pc) -> Rows {
    if (pc.index == 20 && !std::ifstream(marker).good()) {
      std::ofstream(marker) << "crashed once\n";
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
      std::raise(SIGSEGV);
    }
    return square_point(pc);
  });
  std::remove(marker.c_str());

  EXPECT_TRUE(s.all_ok());
  EXPECT_EQ(s.completed, 45u);
  EXPECT_EQ(s.outcomes[20].status, PointStatus::kRecovered);
}

TEST(SweepIsolation, KillSupervisorThenResumeByteIdentical) {
  SweepRunner ref("iso", base_options("kill_ref"));
  const auto s_ref = ref.run(6, square_point);

  // The supervisor itself dies hard right after committing point 2 (the
  // orphaned workers see EOF on their request pipes and exit on their own).
  auto opts = process_options("kill", 2);
  opts.kill_after_point = 2;
  EXPECT_EXIT((void)SweepRunner("iso", opts).run(6, square_point),
              ::testing::ExitedWithCode(3), "");

  // A process-isolated rerun resumes from the checkpoint and reproduces
  // the reference artifacts byte-for-byte.
  auto resume_opts = process_options("kill", 2);
  SweepRunner resume("iso", resume_opts);
  const auto s = resume.run(6, square_point);
  EXPECT_TRUE(s.all_ok());
  EXPECT_GE(s.resumed, 1u);
  EXPECT_EQ(slurp(s.csv_path), slurp(s_ref.csv_path));
  EXPECT_EQ(slurp(s.manifest_path), slurp(s_ref.manifest_path));
}

TEST(SweepIsolation, SerialProcessModeStillIsolates) {
  // threads = 1 under process isolation means one worker subprocess, not
  // an in-process fallback: a segv still cannot take the sweep down.
  auto opts = process_options("serial", 1);
  opts.fault_point = 0;
  opts.fault_kind = FaultKind::kSegv;
  SweepRunner run("iso", opts);
  const auto s = run.run(3, square_point);
  EXPECT_TRUE(s.process_isolated);
  EXPECT_EQ(s.poisoned, 1u);
  EXPECT_EQ(s.completed, 2u);
}

}  // namespace
}  // namespace nvsram::runner
