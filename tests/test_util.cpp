// Utility module tests: formatting, CSV, root finding, interpolation, stats.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/csv.h"
#include "util/interp.h"
#include "util/rootfind.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/units.h"

namespace nvsram::util {
namespace {

// ---- units / formatting ----

TEST(Units, ThermalVoltageAtRoomTemperature) {
  EXPECT_NEAR(thermal_voltage(300.0), 0.02585, 1e-4);
}

TEST(Units, LiteralsScaleCorrectly) {
  using namespace literals;
  EXPECT_DOUBLE_EQ(10.0_ns, 1e-8);
  EXPECT_DOUBLE_EQ(2.0_u, 2e-6);
  EXPECT_DOUBLE_EQ(1.5_pJ, 1.5e-12);
  EXPECT_DOUBLE_EQ(300.0_MHz, 3e8);
}

TEST(Units, SiFormatPicksPrefix) {
  EXPECT_EQ(si_format(1.5e-9, "s"), "1.500 ns");
  EXPECT_EQ(si_format(2.2e-6, "A", 1), "2.2 uA");
  EXPECT_EQ(si_format(6366.0, "Ohm", 2), "6.37 kOhm");
  EXPECT_EQ(si_format(-3e-12, "J"), "-3.000 pJ");
}

TEST(Units, SiFormatHandlesZero) {
  EXPECT_EQ(si_format(0.0, "W", 1), "0.0 W");
}

// ---- CSV ----

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = "/tmp/nvsram_test_csv.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.row({1.0, 2.0});
    csv.row({3.0, 4.5});
    csv.flush();
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_NE(line.find("1.0"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Csv, RejectsWidthMismatch) {
  CsvWriter csv("/tmp/nvsram_test_csv2.csv", {"a", "b"});
  EXPECT_THROW(csv.row({1.0}), std::runtime_error);
  std::remove("/tmp/nvsram_test_csv2.csv");
}

// ---- TablePrinter ----

TEST(Table, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.row({"x", "1"});
  t.row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const auto text = os.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(Table, RejectsWidthMismatch) {
  TablePrinter t({"a"});
  EXPECT_THROW(t.row({"x", "y"}), std::runtime_error);
}

// ---- root finding ----

TEST(Brent, FindsPolynomialRoot) {
  auto f = [](double x) { return x * x * x - 2.0 * x - 5.0; };
  const auto r = brent(f, 2.0, 3.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->converged);
  EXPECT_NEAR(r->x, 2.0945514815, 1e-9);
}

TEST(Brent, FindsTranscendentalRoot) {
  auto f = [](double x) { return std::cos(x) - x; };
  const auto r = brent(f, 0.0, 1.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(r->x, 0.7390851332, 1e-9);
}

TEST(Brent, RejectsInvalidBracket) {
  auto f = [](double x) { return x * x + 1.0; };
  EXPECT_FALSE(brent(f, -1.0, 1.0).has_value());
}

TEST(Brent, AgreesWithBisection) {
  auto f = [](double x) { return std::exp(x) - 3.0; };
  const auto rb = brent(f, 0.0, 2.0);
  const auto rs = bisect(f, 0.0, 2.0, {.x_tolerance = 1e-13});
  ASSERT_TRUE(rb && rs);
  EXPECT_NEAR(rb->x, rs->x, 1e-9);
  EXPECT_LE(rb->iterations, rs->iterations);  // Brent should not be slower
}

TEST(BracketRoot, ExpandsUntilSignChange) {
  auto f = [](double x) { return x - 100.0; };
  const auto b = bracket_root(f, 0.0, 1.0);
  ASSERT_TRUE(b.has_value());
  EXPECT_LE(f(b->first) * f(b->second), 0.0);
}

// ---- interpolation ----

TEST(PiecewiseLinearTest, EvaluatesInsideAndClamps) {
  PiecewiseLinear pl({0.0, 1.0, 2.0}, {0.0, 10.0, 0.0});
  EXPECT_DOUBLE_EQ(pl(0.5), 5.0);
  EXPECT_DOUBLE_EQ(pl(1.5), 5.0);
  EXPECT_DOUBLE_EQ(pl(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(pl(9.0), 0.0);
}

TEST(PiecewiseLinearTest, ExtrapolatesLinearly) {
  PiecewiseLinear pl({0.0, 1.0}, {0.0, 2.0});
  EXPECT_DOUBLE_EQ(pl.extrapolate(2.0), 4.0);
  EXPECT_DOUBLE_EQ(pl.extrapolate(-1.0), -2.0);
}

TEST(PiecewiseLinearTest, FirstCrossing) {
  PiecewiseLinear pl({0.0, 1.0, 2.0}, {0.0, 10.0, 0.0});
  const auto c = pl.first_crossing(5.0);
  ASSERT_TRUE(c.has_value());
  EXPECT_DOUBLE_EQ(*c, 0.5);
  EXPECT_FALSE(pl.first_crossing(11.0).has_value());
}

TEST(PiecewiseLinearTest, Intersection) {
  PiecewiseLinear a({0.0, 10.0}, {0.0, 10.0});
  PiecewiseLinear b({0.0, 10.0}, {4.0, 4.0});
  const auto x = a.first_intersection(b);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR(*x, 4.0, 1e-12);
}

TEST(PiecewiseLinearTest, RejectsUnsortedX) {
  EXPECT_THROW(PiecewiseLinear({0.0, 0.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(TrapezoidIntegral, MatchesAnalytic) {
  std::vector<double> xs, ys;
  for (int i = 0; i <= 1000; ++i) {
    const double x = i / 1000.0;
    xs.push_back(x);
    ys.push_back(x * x);
  }
  EXPECT_NEAR(trapezoid_integral(xs, ys), 1.0 / 3.0, 1e-6);
}

// ---- stats ----

TEST(RunningStatsTest, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Monotone, DetectsViolations) {
  EXPECT_TRUE(is_monotone_nondecreasing({1.0, 1.0, 2.0}));
  EXPECT_FALSE(is_monotone_nondecreasing({1.0, 0.5}));
  EXPECT_TRUE(is_monotone_nondecreasing({1.0, 0.999}, 0.01));  // slack
  EXPECT_TRUE(is_monotone_nonincreasing({3.0, 2.0, 2.0}));
}

TEST(Spacing, LogspaceEndpointsAndGrowth) {
  const auto v = logspace(1e-9, 1e-3, 7);
  ASSERT_EQ(v.size(), 7u);
  EXPECT_NEAR(v.front(), 1e-9, 1e-15);
  EXPECT_NEAR(v.back(), 1e-3, 1e-9);
  EXPECT_NEAR(v[1] / v[0], 10.0, 1e-6);
  EXPECT_THROW(logspace(0.0, 1.0, 3), std::invalid_argument);
}

TEST(Spacing, Linspace) {
  const auto v = linspace(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
}

}  // namespace
}  // namespace nvsram::util
