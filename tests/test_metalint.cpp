// Meta-lint: the rule catalog, the seeded-fixture corpus, and the
// documentation must stay in sync.
//
// Every rule in `nvlint --list-rules` must be (a) fully described in the
// catalog, (b) reproducible from a seeded netlist under tests/netlists_bad/
// that actually fires it, and (c) documented in docs/LINT.md.  Rules that
// genuinely cannot be reached from netlist text (only programmatic
// post-editing of a parsed circuit can trigger them) are pinned in an
// explicit allowlist so a new undocumented rule can never hide behind it.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>

#include "lint/report.h"
#include "lint/rules.h"
#include "spice/netlist_parser.h"

namespace nvsram::lint {
namespace {

// Rules unreachable from netlist text.  probe-unresolved needs a probe whose
// node vanished, which the parser rejects up front; only post-parse circuit
// surgery can produce it (test_lint.cpp covers that path).
const std::set<std::string> kNoFixtureAllowlist = {"probe-unresolved"};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(MetaLint, CatalogEntriesAreFullyDescribed) {
  std::set<std::string> ids;
  for (const RuleInfo& r : rule_catalog()) {
    EXPECT_TRUE(ids.insert(r.id).second) << "duplicate rule id " << r.id;
    EXPECT_STRNE(r.family, "") << r.id;
    EXPECT_STRNE(r.summary, "") << r.id;
    EXPECT_STRNE(r.description, "") << r.id;
    EXPECT_STRNE(r.example, "") << r.id;
    const RuleInfo* found = find_rule(r.id);
    ASSERT_NE(found, nullptr) << r.id;
    EXPECT_EQ(found, &r) << r.id;
  }
  EXPECT_GE(ids.size(), 36u);
  EXPECT_EQ(find_rule("no-such-rule"), nullptr);
}

TEST(MetaLint, EveryRuleHasASeededFixtureThatFiresIt) {
  namespace fs = std::filesystem;
  for (const RuleInfo& r : rule_catalog()) {
    if (kNoFixtureAllowlist.count(r.id)) {
      EXPECT_STREQ(r.fixture, "")
          << r.id << " is allowlisted but declares a fixture";
      continue;
    }
    ASSERT_STRNE(r.fixture, "")
        << r.id << " has no seeded fixture and is not allowlisted";
    const fs::path path = fs::path(NVSRAM_BAD_NETLIST_DIR) / r.fixture;
    ASSERT_TRUE(fs::exists(path)) << r.id << ": missing " << path;

    spice::NetlistParser parser;
    std::unique_ptr<spice::ParsedNetlist> net =
        parser.parse(read_file(path.string()));
    ASSERT_NE(net, nullptr) << path;
    const auto diags = net->lint().by_rule(r.id);
    EXPECT_FALSE(diags.empty())
        << r.fixture << " does not fire " << r.id << ":\n"
        << net->lint().format();
  }
}

TEST(MetaLint, AllowlistedRulesReallyHaveNoFixture) {
  // The allowlist must shrink, never silently grow: each entry must name a
  // real catalog rule, so a typo can't exempt an actual rule.
  for (const std::string& id : kNoFixtureAllowlist) {
    EXPECT_NE(find_rule(id), nullptr) << id;
  }
}

TEST(MetaLint, EveryRuleIsDocumented) {
  const std::string doc =
      read_file(std::string(NVSRAM_DOCS_DIR) + "/LINT.md");
  for (const RuleInfo& r : rule_catalog()) {
    // Built with += rather than operator+: GCC 12 at -O3 flags the inlined
    // "literal + string" concat with a spurious -Wrestrict (PR105651).
    std::string needle = "`";
    needle += r.id;
    needle += "`";
    EXPECT_NE(doc.find(needle), std::string::npos)
        << r.id << " is not documented in docs/LINT.md";
  }
}

TEST(MetaLint, EveryFixtureBelongsToACatalogRule) {
  // The reverse direction: no orphan bad_*.cir that drifted out of the
  // catalog when a rule was renamed.
  namespace fs = std::filesystem;
  std::set<std::string> declared;
  for (const RuleInfo& r : rule_catalog()) {
    if (*r.fixture) declared.insert(r.fixture);
  }
  for (const auto& entry : fs::directory_iterator(NVSRAM_BAD_NETLIST_DIR)) {
    if (entry.path().extension() != ".cir") continue;
    EXPECT_TRUE(declared.count(entry.path().filename().string()))
        << entry.path()
        << " is not declared as any rule's fixture in the catalog";
  }
}

}  // namespace
}  // namespace nvsram::lint
