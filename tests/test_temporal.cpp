// Temporal protocol analyzer tests.
//
// Three layers:
//  * golden timelines — the exported stimulus timelines of the fig. 7/8/9
//    benchmark schedules at (n_RW, t_SL, t_SD) corners, pinned against
//    tests/golden/timelines/*.txt.  Regenerate after an intentional schedule
//    change with NVSRAM_UPDATE_GOLDENS=1 ./test_temporal;
//  * negative tests — one per protocol-* / units-* rule, on hand-built
//    timelines, scheduled testbenches, and the seeded-violation netlists in
//    tests/netlists_bad/;
//  * plumbing — rule catalog families, the characterization gate, and the
//    process-wide characterization cache.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/linter.h"
#include "lint/report.h"
#include "lint/rules.h"
#include "lint/temporal/protocol.h"
#include "lint/temporal/timeline.h"
#include "lint/temporal/units_check.h"
#include "models/paper_params.h"
#include "spice/netlist_parser.h"
#include "sram/characterize_cache.h"
#include "sram/schedules.h"

namespace nvsram::lint::temporal {
namespace {

using sram::BenchArch;
using sram::ScheduleParams;

// ---- helpers ----

SignalTimeline make_signal(std::string name, SignalRole role, double initial,
                           std::vector<Transition> trs) {
  SignalTimeline s;
  s.name = std::move(name);
  s.role = role;
  s.initial = initial;
  s.transitions = std::move(trs);
  return s;
}

std::vector<std::string> rules_of(const std::vector<Diagnostic>& diags) {
  std::vector<std::string> out;
  for (const auto& d : diags) out.push_back(d.rule);
  return out;
}

bool has_rule(const std::vector<Diagnostic>& diags, const char* rule) {
  for (const auto& d : diags) {
    if (d.rule == rule) return true;
  }
  return false;
}

const Diagnostic& find_rule(const std::vector<Diagnostic>& diags,
                            const char* rule) {
  for (const auto& d : diags) {
    if (d.rule == rule) return d;
  }
  throw std::runtime_error(std::string("diagnostic not found: ") + rule);
}

// The effective lint config of one bench deck (mirrors `nvlint --bench`).
TemporalOptions bench_options(BenchArch arch, const models::PaperParams& pp) {
  auto opt = TemporalOptions::from_paper(pp);
  const sram::TestbenchOptions tb_opts;
  switch (arch) {
    case BenchArch::kNVPG:
      opt.arch = TemporalOptions::Arch::kNVPG;
      break;
    case BenchArch::kNOF:
      opt.arch = TemporalOptions::Arch::kNOF;
      opt.clock_period += 2.0 * (pp.store_pulse + tb_opts.store_margin);
      break;
    case BenchArch::kOSR:
      opt.arch = TemporalOptions::Arch::kOSR;
      break;
  }
  return opt;
}

std::vector<Diagnostic> lint_bench_deck(BenchArch arch,
                                        const models::PaperParams& pp,
                                        const ScheduleParams& sp) {
  const auto tb = sram::build_benchmark_schedule(arch, pp, sp);
  const Timeline tl = tb->export_timeline();
  std::vector<Diagnostic> out = check_timeline(tl, bench_options(arch, pp));
  for (auto& d : check_timeline_units(tl)) out.push_back(std::move(d));
  for (auto& d : check_paper_params(pp)) out.push_back(std::move(d));
  return out;
}

// ---- golden timelines (Figs. 7-9 schedule corners) ----

std::string golden_path(const std::string& name) {
  return std::string(NVSRAM_GOLDEN_DIR) + "/timelines/" + name;
}

void expect_matches_golden(const std::string& name, const std::string& actual) {
  const std::string path = golden_path(name);
  if (std::getenv("NVSRAM_UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden " << path
      << " — run NVSRAM_UPDATE_GOLDENS=1 ./test_temporal once and commit it";
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), actual)
      << "timeline drifted from " << path
      << " — if the schedule change is intentional, regenerate with "
         "NVSRAM_UPDATE_GOLDENS=1 ./test_temporal";
}

struct Corner {
  const char* tag;
  ScheduleParams sp;
};

const Corner kCorners[] = {
    {"n1_sl50n_sd500n", {1, 50e-9, 500e-9}},
    {"n2_sl100n_sd1u", {2, 100e-9, 1e-6}},
};

class GoldenTimeline : public ::testing::TestWithParam<BenchArch> {};

TEST_P(GoldenTimeline, MatchesCommittedTimeline) {
  const models::PaperParams pp;
  for (const Corner& c : kCorners) {
    const auto tb = sram::build_benchmark_schedule(GetParam(), pp, c.sp);
    const std::string name =
        std::string(sram::to_string(GetParam())) + "_" + c.tag + ".txt";
    expect_matches_golden(name, tb->export_timeline().describe());
  }
}

TEST_P(GoldenTimeline, DeckLintsClean) {
  const models::PaperParams pp;
  for (const Corner& c : kCorners) {
    const auto diags = lint_bench_deck(GetParam(), pp, c.sp);
    EXPECT_TRUE(diags.empty())
        << sram::to_string(GetParam()) << "/" << c.tag << " produced "
        << ::testing::PrintToString(rules_of(diags));
  }
}

INSTANTIATE_TEST_SUITE_P(AllArchitectures, GoldenTimeline,
                         ::testing::Values(BenchArch::kNVPG, BenchArch::kNOF,
                                           BenchArch::kOSR),
                         [](const auto& param_info) {
                           return std::string(
                               sram::to_string(param_info.param));
                         });

TEST(GoldenTimelineMeta, NvpgTimelineHasPowerCycle) {
  // Guard against the protocol pass running vacuously: the NVPG deck must
  // expose a store-enable pulse, a gate-off window, and phase spans.
  const models::PaperParams pp;
  const auto tb =
      sram::build_benchmark_schedule(BenchArch::kNVPG, pp, ScheduleParams{});
  const Timeline tl = tb->export_timeline();
  EXPECT_TRUE(tl.has_mtj);
  EXPECT_TRUE(tl.has_fet);
  ASSERT_NE(tl.find_role(SignalRole::kPowerGate), nullptr);
  EXPECT_GT(tl.find_role(SignalRole::kPowerGate)->max_level(), 0.5);
  ASSERT_NE(tl.find_role(SignalRole::kStoreEnable), nullptr);
  EXPECT_GT(tl.find_role(SignalRole::kStoreEnable)->max_level(), 0.5);
  EXPECT_FALSE(tl.phases.empty());
  EXPECT_EQ(tl.phase_at(0.5 * pp.clock_period()), "write1");
}

// ---- protocol-* negative tests (hand-built timelines) ----

// PG rises 100n..100.5n (gate off), falls 200n..200.5n.
SignalTimeline pg_cycle() {
  return make_signal("Vpg", SignalRole::kPowerGate, 0.0,
                     {{100e-9, 100.5e-9, 0.0, 1.0},
                      {200e-9, 200.5e-9, 1.0, 0.0}});
}

Timeline nv_base() {
  Timeline tl;
  tl.t_stop = 300e-9;
  tl.has_mtj = true;
  tl.has_fet = true;
  tl.origin = "test";
  return tl;
}

TEST(ProtocolNegative, StoreGateOverlap) {
  Timeline tl = nv_base();
  tl.signals.push_back(pg_cycle());
  // SR asserts at 90n but the gate cuts at 100n, mid-pulse.
  tl.signals.push_back(make_signal("Vsr", SignalRole::kStoreEnable, 0.0,
                                   {{90e-9, 90.1e-9, 0.0, 0.65},
                                    {150e-9, 150.1e-9, 0.65, 0.0}}));
  const auto diags = check_timeline(tl, TemporalOptions{});
  ASSERT_TRUE(has_rule(diags, rules::kProtocolStoreGateOverlap))
      << ::testing::PrintToString(rules_of(diags));
  EXPECT_EQ(find_rule(diags, rules::kProtocolStoreGateOverlap).device, "Vsr");
}

TEST(ProtocolNegative, DeadStoreInsidePowerOff) {
  Timeline tl = nv_base();
  tl.signals.push_back(pg_cycle());
  // SR pulses entirely inside the power-off window and de-asserts before
  // recovery: classified as a dead store -> restore-order.
  tl.signals.push_back(make_signal("Vsr", SignalRole::kStoreEnable, 0.0,
                                   {{120e-9, 120.1e-9, 0.0, 0.65},
                                    {150e-9, 150.1e-9, 0.65, 0.0}}));
  const auto diags = check_timeline(tl, TemporalOptions{});
  EXPECT_TRUE(has_rule(diags, rules::kProtocolRestoreOrder))
      << ::testing::PrintToString(rules_of(diags));
}

TEST(ProtocolNegative, WordlineBeforeRestoreCompletes) {
  Timeline tl = nv_base();
  tl.signals.push_back(pg_cycle());
  // Restore straddles the recovery at 200.5n and runs to 210n...
  tl.signals.push_back(make_signal("Vsr", SignalRole::kStoreEnable, 0.0,
                                   {{199e-9, 199.1e-9, 0.0, 0.65},
                                    {210e-9, 210.1e-9, 0.65, 0.0}}));
  // ...but the word line already fires at 205n.
  tl.signals.push_back(make_signal("Vwl", SignalRole::kWordline, 0.0,
                                   {{205e-9, 205.05e-9, 0.0, 0.9},
                                    {208e-9, 208.05e-9, 0.9, 0.0}}));
  const auto diags = check_timeline(tl, TemporalOptions{});
  ASSERT_TRUE(has_rule(diags, rules::kProtocolRestoreOrder))
      << ::testing::PrintToString(rules_of(diags));
  EXPECT_NE(find_rule(diags, rules::kProtocolRestoreOrder)
                .message.find("before the restore completes"),
            std::string::npos);
}

TEST(ProtocolNegative, ShutdownTooShortIsAdvisory) {
  Timeline tl = nv_base();
  tl.has_mtj = false;
  tl.signals.push_back(make_signal("Vpg", SignalRole::kPowerGate, 0.0,
                                   {{100e-9, 100.1e-9, 0.0, 1.0},
                                    {100.6e-9, 100.7e-9, 1.0, 0.0}}));
  const auto diags = check_timeline(tl, TemporalOptions{});
  ASSERT_TRUE(has_rule(diags, rules::kProtocolShutdownShort))
      << ::testing::PrintToString(rules_of(diags));
  EXPECT_EQ(find_rule(diags, rules::kProtocolShutdownShort).severity,
            Severity::kWarning);
}

TEST(ProtocolNegative, WordlinePrechargeOverlap) {
  Timeline tl = nv_base();
  tl.has_mtj = false;
  // Precharge gate stuck low (= active) while the word line asserts.
  tl.signals.push_back(
      make_signal("Vpch", SignalRole::kPrecharge, 0.0, {}));
  tl.signals.push_back(make_signal("Vwl", SignalRole::kWordline, 0.0,
                                   {{10e-9, 10.05e-9, 0.0, 0.9},
                                    {12e-9, 12.05e-9, 0.9, 0.0}}));
  const auto diags = check_timeline(tl, TemporalOptions{});
  EXPECT_TRUE(has_rule(diags, rules::kProtocolWlPrechargeOverlap))
      << ::testing::PrintToString(rules_of(diags));
}

TEST(ProtocolNegative, NofClockCannotEmbedStore) {
  Timeline tl = nv_base();
  tl.signals.push_back(make_signal("Vdd", SignalRole::kPower, 0.9, {}));
  TemporalOptions opt;
  opt.arch = TemporalOptions::Arch::kNOF;
  opt.clock_period = 3.3e-9;  // raw 300 MHz clock, not the stretched cycle
  opt.store_pulse = 10e-9;
  const auto diags = check_timeline(tl, opt);
  EXPECT_TRUE(has_rule(diags, rules::kProtocolClockStore))
      << ::testing::PrintToString(rules_of(diags));
}

// ---- negative tests via scheduled testbenches (phase attribution) ----

TEST(ProtocolNegative, SubRetentionSleepHasPhaseAttribution) {
  models::PaperParams pp;
  pp.vvdd_sleep = 0.3;  // below the 0.45 V retention floor
  const auto tb =
      sram::build_benchmark_schedule(BenchArch::kOSR, pp, ScheduleParams{});
  const auto diags =
      check_timeline(tb->export_timeline(), bench_options(BenchArch::kOSR, pp));
  ASSERT_TRUE(has_rule(diags, rules::kProtocolSleepRetention))
      << ::testing::PrintToString(rules_of(diags));
  EXPECT_EQ(find_rule(diags, rules::kProtocolSleepRetention).phase, "sleep");
}

TEST(ProtocolNegative, ShortStorePulseHasPhaseAttribution) {
  models::PaperParams pp;
  pp.store_pulse = 2e-9;  // store steps land at 4 ns < the 6 ns MTJ pulse
  const auto tb =
      sram::build_benchmark_schedule(BenchArch::kNVPG, pp, ScheduleParams{});
  const auto diags = check_timeline(tb->export_timeline(),
                                    bench_options(BenchArch::kNVPG, pp));
  ASSERT_TRUE(has_rule(diags, rules::kProtocolStoreIncomplete))
      << ::testing::PrintToString(rules_of(diags));
  const auto& d = find_rule(diags, rules::kProtocolStoreIncomplete);
  EXPECT_TRUE(d.phase == "store_h" || d.phase == "store_l") << d.phase;
}

// ---- units-* negative tests ----

TEST(UnitsNegative, OverVoltageDriverOnProcessBoundTimeline) {
  Timeline tl = nv_base();
  tl.signals.push_back(make_signal("V1", SignalRole::kOther, 0.0,
                                   {{1e-9, 2e-9, 0.0, 2.0}}));
  const auto diags = check_timeline_units(tl);
  EXPECT_TRUE(has_rule(diags, rules::kUnitsVoltageRange))
      << ::testing::PrintToString(rules_of(diags));

  // The same driver on a generic (no FET, no MTJ) circuit is legitimate.
  tl.has_fet = false;
  tl.has_mtj = false;
  EXPECT_FALSE(has_rule(check_timeline_units(tl), rules::kUnitsVoltageRange));
}

TEST(UnitsNegative, AbsurdHorizonFlagsTimeScale) {
  Timeline tl = nv_base();
  tl.t_stop = 0.1;  // 100 ms: "2120" entered where "2120n" was meant
  const auto diags = check_timeline_units(tl);
  EXPECT_TRUE(has_rule(diags, rules::kUnitsTimeScale))
      << ::testing::PrintToString(rules_of(diags));
}

TEST(UnitsNegative, PaperParamsJcInWrongUnits) {
  models::PaperParams pp;
  pp.mtj.jc = 5e6;  // the paper's A/cm^2 figure pasted as A/m^2
  const auto diags = check_paper_params(pp);
  ASSERT_TRUE(has_rule(diags, rules::kUnitsCurrentDensity))
      << ::testing::PrintToString(rules_of(diags));
  EXPECT_NE(find_rule(diags, rules::kUnitsCurrentDensity)
                .message.find("A/cm^2"),
            std::string::npos);
  // The derived Ic range check fires too: both ends of the algebra disagree.
  EXPECT_TRUE(has_rule(diags, rules::kUnitsDimension));
}

TEST(UnitsNegative, PaperParamsBiasAndTimeRanges) {
  models::PaperParams pp;
  pp.vsr = 650.0;  // mV entered as V
  auto diags = check_paper_params(pp);
  EXPECT_TRUE(has_rule(diags, rules::kUnitsVoltageRange))
      << ::testing::PrintToString(rules_of(diags));

  pp = models::PaperParams{};
  pp.store_pulse = 10e-2;  // "10n" lost its prefix
  diags = check_paper_params(pp);
  EXPECT_TRUE(has_rule(diags, rules::kUnitsTimeScale))
      << ::testing::PrintToString(rules_of(diags));
}

TEST(UnitsNegative, DefaultPaperParamsAreClean) {
  EXPECT_TRUE(check_paper_params(models::PaperParams{}).empty());
  EXPECT_TRUE(check_paper_params(models::PaperParams::table1()).empty());
}

// ---- seeded-violation netlists (tests/netlists_bad/) ----

struct SeededCase {
  const char* file;
  const char* rule;
};

class SeededViolation : public ::testing::TestWithParam<SeededCase> {};

TEST_P(SeededViolation, CaughtStaticallyWithLineAttribution) {
  const std::string path =
      std::string(NVSRAM_BAD_NETLIST_DIR) + "/" + GetParam().file;
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();

  spice::NetlistParser parser;
  const auto net = parser.parse(ss.str());
  const lint::LintReport report = net->lint();
  ASSERT_TRUE(report.has_errors()) << path << " linted clean";
  bool found = false;
  for (const auto& d : report.diagnostics()) {
    if (d.rule != GetParam().rule) continue;
    found = true;
    EXPECT_GT(d.line, 0) << "no line attribution on " << d.rule;
  }
  EXPECT_TRUE(found) << path << " did not produce " << GetParam().rule << ":\n"
                     << report.format();
}

INSTANTIATE_TEST_SUITE_P(
    AllSeeds, SeededViolation,
    ::testing::Values(
        SeededCase{"bad_store_short.cir", rules::kProtocolStoreIncomplete},
        SeededCase{"bad_restore_order.cir", rules::kProtocolRestoreOrder},
        SeededCase{"bad_nof_store_missing.cir", rules::kProtocolStoreMissing},
        SeededCase{"bad_sleep_retention.cir", rules::kProtocolSleepRetention},
        SeededCase{"bad_jc_units.cir", rules::kUnitsCurrentDensity},
        SeededCase{"bad_pwl_nonmonotonic.cir",
                   rules::kProtocolPwlNonmonotonic}),
    [](const auto& param_info) {
      std::string name = param_info.param.file;
      return name.substr(0, name.find('.'));
    });

// ---- .role annotations override name heuristics ----

TEST(RoleAnnotation, DotRoleCardOverridesNameHeuristics) {
  const char* src =
      "role annotation test\n"
      "Vx a 0 PWL(10n 0 11n 1.0 200n 1.0 201n 0)\n"
      "R1 a 0 1k\n"
      ".role Vx power-gate\n"
      ".tran 300n 1n\n"
      ".end\n";
  spice::NetlistParser parser;
  const auto net = parser.parse(src);
  const Timeline tl = extract_timeline(*net);
  ASSERT_EQ(tl.signals.size(), 1u);
  EXPECT_EQ(tl.signals[0].role, SignalRole::kPowerGate);
}

// ---- characterization gate + cache ----

TEST(CharacterizeGate, RejectsBadParamsBeforeAnyTransient) {
  models::PaperParams pp;
  pp.mtj.jc = 5e6;  // wrong units: the gate must throw before solving
  sram::CellCharacterizer ch(pp);
  try {
    ch.characterize(sram::CellKind::kNvSram);
    FAIL() << "characterize() accepted unit-mismatched parameters";
  } catch (const lint::LintError& e) {
    EXPECT_TRUE(e.report().has_errors());
    EXPECT_FALSE(e.report().by_rule(rules::kUnitsCurrentDensity).empty());
  }
}

TEST(CharacterizeCache, SecondCallIsAHit) {
  sram::characterize_cache_clear();
  const models::PaperParams pp;
  const auto a = sram::characterize_cached(pp, sram::CellKind::k6T);
  const auto s1 = sram::characterize_cache_stats();
  EXPECT_EQ(s1.misses, 1u);
  EXPECT_EQ(s1.hits, 0u);
  const auto b = sram::characterize_cached(pp, sram::CellKind::k6T);
  const auto s2 = sram::characterize_cache_stats();
  EXPECT_EQ(s2.misses, 1u);
  EXPECT_EQ(s2.hits, 1u);
  EXPECT_EQ(s2.entries, 1u);
  EXPECT_DOUBLE_EQ(a.e_read, b.e_read);
  EXPECT_DOUBLE_EQ(a.p_static_normal, b.p_static_normal);
  sram::characterize_cache_clear();
}

TEST(CharacterizeCache, FingerprintTracksEveryField) {
  const models::PaperParams base;
  models::PaperParams changed = base;
  EXPECT_EQ(base.fingerprint(), changed.fingerprint());
  changed.vdd = 0.85;
  EXPECT_NE(base.fingerprint(), changed.fingerprint());
  changed = base;
  changed.mtj.jc *= 1.01;
  EXPECT_NE(base.fingerprint(), changed.fingerprint());

  // The temporal-lint config is part of the cache identity too.
  TemporalOptions a = TemporalOptions::from_paper(base);
  TemporalOptions b = a;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.retention_floor = 0.5;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  b = a;
  b.arch = TemporalOptions::Arch::kNOF;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

// ---- rule catalog families ----

TEST(RuleCatalog, EveryRuleHasAFamily) {
  for (const auto& rule : lint::rule_catalog()) {
    EXPECT_NE(std::string(rule.family), "") << rule.id;
    EXPECT_STREQ(lint::rule_family(rule.id), rule.family);
  }
  EXPECT_STREQ(lint::rule_family(rules::kProtocolStoreMissing), "protocol");
  EXPECT_STREQ(lint::rule_family(rules::kUnitsDimension), "units");
  EXPECT_STREQ(lint::rule_family("no-such-rule"), "");
}

}  // namespace
}  // namespace nvsram::lint::temporal
