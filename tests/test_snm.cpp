// SNM computation on synthetic curves with known answers, plus the
// mismatched-pair overload.
#include <gtest/gtest.h>

#include <cmath>

#include "sram/snm.h"
#include "util/stats.h"

namespace nvsram::sram {
namespace {

// Ideal step inverter: vout = vdd for vin < vm, 0 after; the butterfly of
// two such inverters admits a square of side min(vdd - vm, vm)... for a
// symmetric threshold the exact SNM is vdd/2 with an instantaneous step at
// vm = vdd/2 (each lobe is a (vdd/2) x (vdd/2) opening).
std::vector<std::pair<double, double>> step_vtc(double vdd, double vm,
                                                int points = 201) {
  std::vector<std::pair<double, double>> vtc;
  for (int i = 0; i < points; ++i) {
    const double x = vdd * i / (points - 1);
    vtc.emplace_back(x, x < vm ? vdd : 0.0);
  }
  return vtc;
}

// Straight-line "inverter": vout = vdd - vin.  The butterfly degenerates to
// a single line: SNM must be ~0.
std::vector<std::pair<double, double>> linear_vtc(double vdd, int points = 101) {
  std::vector<std::pair<double, double>> vtc;
  for (int i = 0; i < points; ++i) {
    const double x = vdd * i / (points - 1);
    vtc.emplace_back(x, vdd - x);
  }
  return vtc;
}

TEST(SnmSynthetic, IdealStepInverterGivesHalfVdd) {
  const auto r = compute_snm(step_vtc(1.0, 0.5));
  EXPECT_NEAR(r.snm, 0.5, 0.02);
  EXPECT_NEAR(r.lobe_high, r.lobe_low, 0.02);
}

TEST(SnmSynthetic, AsymmetricThresholdShrinksBothLobes) {
  // An identical pair with vm = 0.3: the upper lobe is limited horizontally
  // (the step at 0.3) and the lower vertically (the mirror's plateau at
  // 0.3), so BOTH lobes collapse to ~0.3.
  const auto r = compute_snm(step_vtc(1.0, 0.3));
  EXPECT_NEAR(r.snm, 0.3, 0.03);
  EXPECT_NEAR(r.lobe_high, 0.3, 0.03);
  EXPECT_NEAR(r.lobe_low, 0.3, 0.03);
}

TEST(SnmSynthetic, LinearInverterHasNoMargin) {
  const auto r = compute_snm(linear_vtc(1.0));
  EXPECT_LT(r.snm, 0.02);
}

TEST(SnmSynthetic, TooFewPointsRejected) {
  EXPECT_THROW(compute_snm({{0.0, 1.0}, {1.0, 0.0}}), std::invalid_argument);
}

TEST(SnmSynthetic, MismatchedPairTakesWorstLobe) {
  // Inverter A switches at 0.5, inverter B at 0.3: one lobe shrinks.
  const auto a = step_vtc(1.0, 0.5);
  const auto b = step_vtc(1.0, 0.3);
  const auto sym = compute_snm(a);
  const auto mis = compute_snm(a, b);
  EXPECT_LT(mis.snm, sym.snm);
  // The identical-pair overload agrees with the two-argument form.
  const auto self = compute_snm(a, a);
  EXPECT_NEAR(self.snm, sym.snm, 1e-12);
}

TEST(SnmSynthetic, MismatchOrderSwapsLobes) {
  const auto a = step_vtc(1.0, 0.6);
  const auto b = step_vtc(1.0, 0.4);
  const auto ab = compute_snm(a, b);
  const auto ba = compute_snm(b, a);
  // Swapping the pair mirrors the butterfly: min lobe (the SNM) is equal.
  EXPECT_NEAR(ab.snm, ba.snm, 0.02);
  EXPECT_NEAR(ab.lobe_high, ba.lobe_low, 0.03);
}

TEST(SnmVtc, SweepPointsControlResolution) {
  const auto pp = models::PaperParams::table1();
  SnmOptions coarse;
  coarse.sweep_points = 21;
  SnmOptions fine;
  fine.sweep_points = 201;
  const auto r_coarse = compute_snm(inverter_vtc(pp, CellKind::k6T, coarse));
  const auto r_fine = compute_snm(inverter_vtc(pp, CellKind::k6T, fine));
  EXPECT_NEAR(r_coarse.snm, r_fine.snm, 0.02);
}

TEST(SnmVtc, VtcEndpointsNearRails) {
  const auto pp = models::PaperParams::table1();
  const auto vtc = inverter_vtc(pp, CellKind::k6T, SnmOptions{});
  EXPECT_GT(vtc.front().second, 0.88);
  EXPECT_LT(vtc.back().second, 0.02);
}

}  // namespace
}  // namespace nvsram::sram
