// Waveform storage and measurement functions.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "spice/waveform.h"

namespace nvsram::spice {
namespace {

Waveform make_ramp() {
  // time 0..10, "lin" = t, "sq" = t^2, sampled at integers.
  Waveform w({"lin", "sq"});
  for (int i = 0; i <= 10; ++i) {
    const double t = i;
    w.append(t, {t, t * t});
  }
  return w;
}

TEST(WaveformTest, AppendAndAccess) {
  const auto w = make_ramp();
  EXPECT_EQ(w.samples(), 11u);
  EXPECT_TRUE(w.has_series("lin"));
  EXPECT_FALSE(w.has_series("nope"));
  EXPECT_EQ(w.series("sq").back(), 100.0);
  EXPECT_THROW(w.series("nope"), std::out_of_range);
}

TEST(WaveformTest, AppendRejectsWidthMismatch) {
  Waveform w({"a"});
  EXPECT_THROW(w.append(0.0, {1.0, 2.0}), std::invalid_argument);
}

TEST(WaveformTest, ValueAtInterpolatesAndClamps) {
  const auto w = make_ramp();
  EXPECT_DOUBLE_EQ(w.value_at("lin", 3.5), 3.5);
  EXPECT_DOUBLE_EQ(w.value_at("sq", 3.5), 0.5 * (9 + 16));  // linear between samples
  EXPECT_DOUBLE_EQ(w.value_at("lin", -5.0), 0.0);
  EXPECT_DOUBLE_EQ(w.value_at("lin", 99.0), 10.0);
}

TEST(WaveformTest, IntegralFullAndClipped) {
  const auto w = make_ramp();
  // Integral of t over [0,10] = 50 exactly (trapezoid is exact for linear).
  EXPECT_NEAR(w.integral("lin", 0.0, 10.0), 50.0, 1e-12);
  // Clipped to [2.5, 7.5]: 0.5*(7.5^2 - 2.5^2) = 25.
  EXPECT_NEAR(w.integral("lin", 2.5, 7.5), 25.0, 1e-12);
  // Degenerate and reversed windows.
  EXPECT_DOUBLE_EQ(w.integral("lin", 4.0, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(w.integral("lin", 7.0, 3.0), 0.0);
}

TEST(WaveformTest, AverageOverWindow) {
  const auto w = make_ramp();
  EXPECT_NEAR(w.average("lin", 0.0, 10.0), 5.0, 1e-12);
  EXPECT_NEAR(w.average("lin", 4.0, 6.0), 5.0, 1e-12);
}

TEST(WaveformTest, MinMaxFinal) {
  const auto w = make_ramp();
  EXPECT_DOUBLE_EQ(w.maximum("sq"), 100.0);
  EXPECT_DOUBLE_EQ(w.minimum("sq"), 0.0);
  EXPECT_DOUBLE_EQ(w.final_value("lin"), 10.0);
}

TEST(WaveformTest, CrossTimeRisingFromOffset) {
  const auto w = make_ramp();
  const auto t = w.cross_time("lin", 4.5);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 4.5);
  // From a later start time there is no second crossing of a ramp.
  EXPECT_FALSE(w.cross_time("lin", 4.5, 6.0).has_value());
  EXPECT_FALSE(w.cross_time("lin", 99.0).has_value());
}

TEST(WaveformTest, CrossTimeFalling) {
  Waveform w({"v"});
  w.append(0.0, {1.0});
  w.append(1.0, {0.0});
  w.append(2.0, {1.0});
  const auto t = w.cross_time("v", 0.5);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 0.5);  // falling edge first
  const auto t2 = w.cross_time("v", 0.5, 1.0);
  ASSERT_TRUE(t2.has_value());
  EXPECT_DOUBLE_EQ(*t2, 1.5);  // then the rising one
}

TEST(WaveformTest, CsvRoundTrip) {
  const auto w = make_ramp();
  const std::string path = "/tmp/nvsram_waveform_test.csv";
  w.write_csv(path);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "time,lin,sq");
  int rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 11);
  std::remove(path.c_str());
}

TEST(WaveformTest, EmptyWaveformMeasurementsThrow) {
  Waveform w({"v"});
  EXPECT_THROW(w.value_at("v", 0.0), std::logic_error);
  EXPECT_THROW(w.final_value("v"), std::logic_error);
}

}  // namespace
}  // namespace nvsram::spice
