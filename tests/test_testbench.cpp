// CellTestbench mechanics: scheduling, phases, bias sets, energy windows.
#include <gtest/gtest.h>

#include "models/paper_params.h"
#include "sram/testbench.h"

namespace nvsram {
namespace {

using models::PaperParams;
using sram::CellKind;
using sram::CellTestbench;
using sram::TestbenchOptions;

TEST(Testbench, ScheduleAdvancesClock) {
  CellTestbench tb(CellKind::kNvSram, PaperParams::table1());
  EXPECT_DOUBLE_EQ(tb.now(), 0.0);
  tb.op_write(true);
  EXPECT_NEAR(tb.now(), PaperParams::table1().clock_period(), 1e-15);
  tb.op_idle(5e-9);
  EXPECT_NEAR(tb.now(), PaperParams::table1().clock_period() + 5e-9, 1e-15);
}

TEST(Testbench, PhasesAreOrderedAndNamed) {
  CellTestbench tb(CellKind::kNvSram, PaperParams::table1());
  tb.op_write(true);
  tb.op_read();
  tb.op_store();
  const auto& phases = tb.scheduled_phases();
  ASSERT_EQ(phases.size(), 4u);  // write1, read, store_h, store_l
  EXPECT_EQ(phases[0].name, "write1");
  EXPECT_EQ(phases[1].name, "read");
  EXPECT_EQ(phases[2].name, "store_h");
  EXPECT_EQ(phases[3].name, "store_l");
  for (std::size_t i = 1; i < phases.size(); ++i) {
    EXPECT_GE(phases[i].t0, phases[i - 1].t1 - 1e-12);
  }
}

TEST(Testbench, PhaseLookupByOccurrence) {
  CellTestbench tb(CellKind::kNvSram, PaperParams::table1());
  tb.op_read();
  tb.op_read();
  EXPECT_LT(tb.phase("read", 0).t0, tb.phase("read", 1).t0);
  EXPECT_THROW(tb.phase("read", 2), std::out_of_range);
  EXPECT_THROW(tb.phase("nothing"), std::out_of_range);
}

TEST(Testbench, StorePhaseDurationsMatchConfig) {
  auto pp = PaperParams::table1();
  pp.store_pulse = 8e-9;
  TestbenchOptions opts;
  opts.store_margin = 1e-9;
  CellTestbench tb(CellKind::kNvSram, pp, opts);
  tb.op_write(true);
  tb.op_store();
  EXPECT_NEAR(tb.phase("store_h").duration(), 9e-9, 1e-12);
  EXPECT_NEAR(tb.phase("store_l").duration(), 9e-9, 1e-12);
}

TEST(Testbench, BiasSetsReflectTable1) {
  CellTestbench tb(CellKind::kNvSram, PaperParams::table1());
  const auto normal = tb.bias_normal();
  EXPECT_DOUBLE_EQ(normal.vdd, 0.9);
  EXPECT_DOUBLE_EQ(normal.ctrl, 0.07);
  EXPECT_DOUBLE_EQ(normal.sr, 0.0);
  const auto sleep = tb.bias_sleep();
  EXPECT_DOUBLE_EQ(sleep.vdd, 0.7);
  EXPECT_DOUBLE_EQ(sleep.ctrl, 0.04);
  const auto sh = tb.bias_shutdown();
  EXPECT_DOUBLE_EQ(sh.pg, 1.0);
  EXPECT_DOUBLE_EQ(sh.bl, 0.0);
  const auto h = tb.bias_store_h();
  EXPECT_DOUBLE_EQ(h.sr, 0.65);
  EXPECT_DOUBLE_EQ(h.ctrl, 0.0);
  const auto l = tb.bias_store_l();
  EXPECT_DOUBLE_EQ(l.ctrl, 0.5);
}

TEST(Testbench, SixTHasNoSrCtrlBias) {
  CellTestbench tb(CellKind::k6T, PaperParams::table1());
  EXPECT_DOUBLE_EQ(tb.bias_normal().ctrl, 0.0);
  EXPECT_EQ(tb.mtj_q(), nullptr);
}

TEST(Testbench, EnergyWindowsPartitionTotal) {
  // Sum of per-phase energies == energy over the full run window.
  CellTestbench tb(CellKind::k6T, PaperParams::table1());
  tb.op_write(true);
  tb.op_read();
  tb.op_write(false);
  auto res = tb.run();
  double sum = 0.0;
  for (const auto& ph : res.phases) sum += res.energy(ph);
  const double total = res.energy(0.0, res.phases.back().t1);
  EXPECT_NEAR(sum, total, std::abs(total) * 1e-9);
}

TEST(Testbench, EnergyIsPositiveForActiveOps) {
  CellTestbench tb(CellKind::kNvSram, PaperParams::table1());
  tb.op_write(true);
  tb.op_read();
  auto res = tb.run();
  EXPECT_GT(res.energy(res.phase("write1")), 0.0);
  EXPECT_GT(res.energy(res.phase("read")), 0.0);
}

TEST(Testbench, AveragePowerConsistentWithEnergy) {
  CellTestbench tb(CellKind::k6T, PaperParams::table1());
  tb.op_idle(10e-9);
  auto res = tb.run();
  const auto& ph = res.phase("idle");
  EXPECT_NEAR(res.average_power(ph.t0, ph.t1) * ph.duration(),
              res.energy(ph), 1e-20);
}

TEST(Testbench, IdleStaticPowerMatchesDcMeasurement) {
  // The transient's quiescent power must agree with the DC static power.
  TestbenchOptions dc_opts;
  dc_opts.ideal_bitlines = true;
  CellTestbench tb_dc(CellKind::k6T, PaperParams::table1(), dc_opts);
  const double p_dc = tb_dc.static_power(CellTestbench::StaticMode::kNormal);

  CellTestbench tb(CellKind::k6T, PaperParams::table1(), dc_opts);
  tb.op_write(true);
  tb.op_idle(200e-9);
  auto res = tb.run();
  const auto& idle = res.phase("idle");
  // Skip the first 50 ns (write settling) and average the rest.
  const double p_tran = res.average_power(idle.t0 + 50e-9, idle.t1);
  EXPECT_NEAR(p_tran, p_dc, 0.25 * p_dc);
}

TEST(Testbench, BackwardEulerOptionRuns) {
  TestbenchOptions opts;
  opts.method = spice::IntegrationMethod::kBackwardEuler;
  CellTestbench tb(CellKind::k6T, PaperParams::table1(), opts);
  tb.op_write(true);
  tb.op_idle(1e-9);
  auto res = tb.run();
  EXPECT_GT(res.wave.value_at("V(Q)", tb.now() - 0.2e-9), 0.8);
}

TEST(Testbench, RunTwiceIsRepeatable) {
  CellTestbench tb(CellKind::k6T, PaperParams::table1());
  tb.op_write(true);
  tb.op_idle(1e-9);
  auto r1 = tb.run();
  auto r2 = tb.run();
  EXPECT_NEAR(r1.energy(r1.phase("write1")), r2.energy(r2.phase("write1")),
              1e-18);
}

TEST(Testbench, StatsExposeSolverWork) {
  CellTestbench tb(CellKind::k6T, PaperParams::table1());
  tb.op_write(true);
  auto res = tb.run();
  EXPECT_GT(res.stats.accepted_steps, 50u);
  EXPECT_GT(res.stats.total_newton_iterations, res.stats.accepted_steps);
}

}  // namespace
}  // namespace nvsram
