// Coverage for small paths not exercised elsewhere: logging, circuit
// registry errors, describe() strings, DC sweep failure propagation.
#include <gtest/gtest.h>

#include <sstream>

#include "core/energy_model.h"
#include "models/paper_params.h"
#include "spice/circuit.h"
#include "spice/dc.h"
#include "spice/elements.h"
#include "util/log.h"

namespace nvsram {
namespace {

TEST(Log, LevelGateAndRestore) {
  const auto prev = util::log_level();
  util::set_log_level(util::LogLevel::kOff);
  util::log_error() << "must not crash while gated";
  EXPECT_EQ(util::log_level(), util::LogLevel::kOff);
  util::set_log_level(util::LogLevel::kDebug);
  util::log_debug() << "visible level";
  util::set_log_level(prev);
}

TEST(CircuitRegistry, DuplicateDeviceNameRejected) {
  spice::Circuit ckt;
  const auto n = ckt.node("a");
  ckt.add<spice::Resistor>("R1", n, spice::kGround, 1e3);
  EXPECT_THROW(ckt.add<spice::Resistor>("R1", n, spice::kGround, 2e3),
               std::invalid_argument);
}

TEST(CircuitRegistry, NodeLookup) {
  spice::Circuit ckt;
  const auto a = ckt.node("a");
  EXPECT_EQ(ckt.find_node("a"), a);
  EXPECT_EQ(ckt.find_node("gnd"), spice::kGround);
  EXPECT_THROW(ckt.find_node("nope"), std::out_of_range);
  EXPECT_THROW(ckt.node_name(999), std::out_of_range);
  EXPECT_EQ(ckt.node_name(a), "a");
  EXPECT_EQ(ckt.find_device("nothing"), nullptr);
  // Re-requesting a node returns the same id.
  EXPECT_EQ(ckt.node("a"), a);
}

TEST(CircuitRegistry, ElementValidation) {
  spice::Circuit ckt;
  const auto n = ckt.node("a");
  EXPECT_THROW(ckt.add<spice::Resistor>("Rbad", n, spice::kGround, -1.0),
               std::invalid_argument);
  EXPECT_THROW(ckt.add<spice::Capacitor>("Cbad", n, spice::kGround, 0.0),
               std::invalid_argument);
  auto* r = ckt.add<spice::Resistor>("Rok", n, spice::kGround, 1e3);
  EXPECT_THROW(r->set_resistance(0.0), std::invalid_argument);
  r->set_resistance(2e3);
  EXPECT_DOUBLE_EQ(r->resistance(), 2e3);
}

TEST(DcSweepErrors, NonConvergencePropagates) {
  // Conflicting sources: the sweep must throw, not return garbage.
  spice::Circuit ckt;
  const auto a = ckt.node("a");
  auto* v1 =
      ckt.add<spice::VSource>("V1", a, spice::kGround, spice::SourceSpec::dc(1));
  ckt.add<spice::VSource>("V2", a, spice::kGround, spice::SourceSpec::dc(2));
  ckt.add<spice::Resistor>("R1", a, spice::kGround, 1e3);
  spice::DCSweep sweep(
      ckt, [&](double v) { v1->set_spec(spice::SourceSpec::dc(v)); },
      {0.0, 1.0}, {});
  EXPECT_THROW(sweep.run(), std::runtime_error);
}

TEST(Describe, ArchitectureNames) {
  EXPECT_STREQ(core::to_string(core::Architecture::kOSR), "OSR");
  EXPECT_STREQ(core::to_string(core::Architecture::kNVPG), "NVPG");
  EXPECT_STREQ(core::to_string(core::Architecture::kNOF), "NOF");
}

TEST(Describe, EnergyBreakdownMentionsEveryPart) {
  core::EnergyBreakdown b;
  b.access = 1e-15;
  b.store = 2e-15;
  b.duration = 1e-6;
  const auto text = b.describe();
  EXPECT_NE(text.find("access="), std::string::npos);
  EXPECT_NE(text.find("store="), std::string::npos);
  EXPECT_NE(text.find("total="), std::string::npos);
  EXPECT_NE(text.find("duration="), std::string::npos);
}

TEST(Describe, FinFetAndMtjStrings) {
  const auto pp = models::PaperParams::table1();
  EXPECT_NE(pp.nmos(1).describe().find("nfin"), std::string::npos);
  EXPECT_NE(pp.pmos(1).describe().find("pfin"), std::string::npos);
  EXPECT_NE(pp.mtj.describe().find("Ic="), std::string::npos);
  EXPECT_STREQ(models::to_string(models::MtjState::kParallel), "P");
  EXPECT_STREQ(models::to_string(models::MtjState::kAntiparallel), "AP");
}

TEST(SourceValue, CapacitorEnergyHelper) {
  spice::Circuit ckt;
  const auto a = ckt.node("a");
  ckt.add<spice::VSource>("V1", a, spice::kGround, spice::SourceSpec::dc(2.0));
  auto* c = ckt.add<spice::Capacitor>("C1", a, spice::kGround, 1e-12);
  spice::DCAnalysis dc(ckt);
  const auto sol = dc.solve();
  ASSERT_TRUE(sol.has_value());
  // E = C V^2 / 2 at the operating point.
  EXPECT_NEAR(c->stored_energy(sol->view()), 0.5 * 1e-12 * 4.0, 1e-15);
}

}  // namespace
}  // namespace nvsram
