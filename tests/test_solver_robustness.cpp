// Solver robustness: bistable DC convergence, warm starts, singular systems,
// breakpoint handling, adaptive step behaviour, event-driven control, the
// recovery ladder under injected faults, and non-finite guards.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "linalg/lu.h"
#include "linalg/sparse.h"
#include "linalg/sparse_lu.h"
#include "models/paper_params.h"
#include "spice/circuit.h"
#include "spice/dc.h"
#include "spice/elements.h"
#include "spice/fault.h"
#include "spice/fet_element.h"
#include "spice/mtj_element.h"
#include "spice/tran.h"
#include "sram/array.h"
#include "sram/testbench.h"
#include "util/watchdog.h"

namespace nvsram::spice {
namespace {

using models::PaperParams;

// Cross-coupled inverter pair (a latch) with no access devices.
struct LatchFixture {
  Circuit ckt;
  NodeId q, qb, vdd;

  LatchFixture() {
    const auto pp = PaperParams::table1();
    q = ckt.node("q");
    qb = ckt.node("qb");
    vdd = ckt.node("vdd");
    ckt.add<VSource>("Vdd", vdd, kGround, SourceSpec::dc(0.9));
    add_finfet(ckt, "pu_q", q, qb, vdd, pp.pmos(1));
    add_finfet(ckt, "pd_q", q, qb, kGround, pp.nmos(1));
    add_finfet(ckt, "pu_qb", qb, q, vdd, pp.pmos(1));
    add_finfet(ckt, "pd_qb", qb, q, kGround, pp.nmos(1));
  }
};

TEST(NewtonRobustness, BistableLatchConvergesFromZero) {
  LatchFixture f;
  DCAnalysis dc(f.ckt);
  const auto sol = dc.solve();
  ASSERT_TRUE(sol.has_value());
  // Any valid DC point: both nodes within the rails and KCL satisfied.
  const double vq = sol->node_voltage(f.q);
  const double vqb = sol->node_voltage(f.qb);
  EXPECT_GE(vq, -1e-3);
  EXPECT_LE(vq, 0.901);
  EXPECT_GE(vqb, -1e-3);
  EXPECT_LE(vqb, 0.901);
}

TEST(NewtonRobustness, WarmStartSelectsIntendedState) {
  LatchFixture f;
  const MnaLayout layout = f.ckt.build_layout();
  for (bool data : {true, false}) {
    linalg::Vector guess(layout.unknown_count(), 0.0);
    guess[layout.node_index(f.vdd)] = 0.9;
    guess[layout.node_index(f.q)] = data ? 0.9 : 0.0;
    guess[layout.node_index(f.qb)] = data ? 0.0 : 0.9;
    DCAnalysis dc(f.ckt);
    const auto sol = dc.solve(&guess);
    ASSERT_TRUE(sol.has_value());
    if (data) {
      EXPECT_GT(sol->node_voltage(f.q), 0.85);
      EXPECT_LT(sol->node_voltage(f.qb), 0.05);
    } else {
      EXPECT_LT(sol->node_voltage(f.q), 0.05);
      EXPECT_GT(sol->node_voltage(f.qb), 0.85);
    }
  }
}

TEST(NewtonRobustness, ConflictingVoltageSourcesFail) {
  // Two sources forcing different voltages across the same node pair:
  // structurally singular — every strategy must give up, not crash.
  Circuit ckt;
  const auto a = ckt.node("a");
  ckt.add<VSource>("V1", a, kGround, SourceSpec::dc(1.0));
  ckt.add<VSource>("V2", a, kGround, SourceSpec::dc(2.0));
  ckt.add<Resistor>("R1", a, kGround, 1e3);
  DCAnalysis dc(ckt);
  EXPECT_FALSE(dc.solve().has_value());
}

TEST(NewtonRobustness, DanglingCurrentSourceHandledByGmin) {
  // A current source into a node with no DC path: the gmin diagonal keeps
  // the system solvable (the node floats high, bounded by I/gmin).
  Circuit ckt;
  const auto n = ckt.node("n");
  ckt.add<ISource>("I1", kGround, n, SourceSpec::dc(1e-12));
  DCAnalysis dc(ckt);
  const auto sol = dc.solve();
  ASSERT_TRUE(sol.has_value());
  EXPECT_GT(sol->node_voltage(n), 0.0);
}

TEST(NewtonRobustness, DeepDiodeStackConverges) {
  // Six series diodes from 5 V: strongly nonlinear; requires limiting.
  Circuit ckt;
  NodeId prev = ckt.node("in");
  ckt.add<VSource>("V1", prev, kGround, SourceSpec::dc(5.0));
  ckt.add<Resistor>("R1", prev, ckt.node("d0"), 100.0);
  prev = ckt.node("d0");
  for (int i = 0; i < 6; ++i) {
    // Built with += rather than operator+: GCC 12 at -O3 flags the inlined
    // "literal + to_string" concat with a spurious -Wrestrict (PR105651).
    std::string node_name = "d";
    node_name += std::to_string(i + 1);
    std::string diode_name = "D";
    diode_name += std::to_string(i);
    const NodeId next = (i == 5) ? kGround : ckt.node(node_name);
    ckt.add<Diode>(diode_name, prev, next);
    prev = next;
  }
  DCAnalysis dc(ckt);
  const auto sol = dc.solve();
  ASSERT_TRUE(sol.has_value());
  // Each junction drops 0.55-0.75 V.
  const double v0 = sol->node_voltage(ckt.find_node("d0"));
  EXPECT_GT(v0, 6 * 0.5);
  EXPECT_LT(v0, 6 * 0.8);
}

// ---- transient control ----

TEST(TranRobustness, BreakpointsAreHitExactly) {
  // A 10 ps edge inside a long quiet run must not be stepped over.
  Circuit ckt;
  const auto n_in = ckt.node("in");
  const auto n_out = ckt.node("out");
  ckt.add<VSource>("V1", n_in, kGround,
                   SourceSpec::pwl({{500e-9, 0.0}, {500.01e-9, 1.0}}));
  ckt.add<Resistor>("R1", n_in, n_out, 100.0);
  ckt.add<Capacitor>("C1", n_out, kGround, 1e-15);
  TranOptions opt;
  opt.t_stop = 1e-6;
  opt.dt_max = 50e-9;  // much coarser than the edge
  TranAnalysis tran(ckt, opt, {Probe::node_voltage(n_out, "out")});
  const auto wave = tran.run();
  EXPECT_LT(wave.value_at("out", 499.9e-9), 0.01);
  EXPECT_GT(wave.value_at("out", 502e-9), 0.95);
}

TEST(TranRobustness, QuietCircuitTakesLargeSteps) {
  Circuit ckt;
  const auto n = ckt.node("n");
  ckt.add<VSource>("V1", n, kGround, SourceSpec::dc(1.0));
  ckt.add<Resistor>("R1", n, kGround, 1e3);
  ckt.add<Capacitor>("C1", n, kGround, 1e-12);
  TranOptions opt;
  opt.t_stop = 1e-3;  // a full millisecond
  TranAnalysis tran(ckt, opt, {});
  (void)tran.run();
  // dt_max defaults to t_stop/50: expect on the order of 50-200 steps, not
  // millions.
  EXPECT_LT(tran.stats().accepted_steps, 500u);
}

TEST(TranRobustness, MtjEventShrinksStepAndIsCounted) {
  const auto pp = PaperParams::table1();
  Circuit ckt;
  const auto a = ckt.node("a");
  ckt.add<MTJElement>("mtj", a, kGround, pp.mtj, models::MtjState::kParallel);
  PulseSpec pulse;
  pulse.v_pulsed = 1.6 * pp.mtj.critical_current();
  pulse.delay = 1e-9;
  pulse.rise = 0.1e-9;
  pulse.fall = 0.1e-9;
  pulse.width = 20e-9;
  ckt.add<ISource>("I1", a, kGround, SourceSpec::pulse(pulse));
  TranOptions opt;
  opt.t_stop = 25e-9;
  TranAnalysis tran(ckt, opt, {});
  (void)tran.run();
  EXPECT_EQ(tran.stats().device_events, 1u);
}

TEST(TranRobustness, EnergyAccountingAcrossManySources) {
  // Two sources in a loop: delivered energies must sum to the dissipation
  // in the resistor (conservation check with multiple sources).
  Circuit ckt;
  const auto a = ckt.node("a");
  const auto b = ckt.node("b");
  ckt.add<VSource>("V1", a, kGround, SourceSpec::dc(2.0));
  ckt.add<VSource>("V2", b, kGround, SourceSpec::dc(1.0));
  ckt.add<Resistor>("R1", a, b, 1e3);
  TranOptions opt;
  opt.t_stop = 1e-6;
  TranAnalysis tran(ckt, opt, {});
  (void)tran.run();
  // i = 1 mA; V1 delivers 2 mW, V2 absorbs 1 mW; over 1 us: 2 / -1 / 1 nJ.
  EXPECT_NEAR(tran.source_energy("V1"), 2e-9, 2e-11);
  EXPECT_NEAR(tran.source_energy("V2"), -1e-9, 1e-11);
  const double net = tran.source_energy("V1") + tran.source_energy("V2");
  EXPECT_NEAR(net, 1e-9, 1e-11);
}

TEST(TranRobustness, TrapAndBeAgreeOnSmoothCircuit) {
  for (auto method : {IntegrationMethod::kTrapezoidal,
                      IntegrationMethod::kBackwardEuler}) {
    Circuit ckt;
    const auto n_in = ckt.node("in");
    const auto n_out = ckt.node("out");
    ckt.add<VSource>("V1", n_in, kGround,
                     SourceSpec::pwl({{1e-9, 0.0}, {3e-9, 1.0}}));  // slow ramp
    ckt.add<Resistor>("R1", n_in, n_out, 1e3);
    ckt.add<Capacitor>("C1", n_out, kGround, 0.2e-12);
    TranOptions opt;
    opt.t_stop = 6e-9;
    opt.method = method;
    TranAnalysis tran(ckt, opt, {Probe::node_voltage(n_out, "out")});
    const auto wave = tran.run();
    EXPECT_NEAR(wave.value_at("out", 5.9e-9), 1.0, 0.01);
  }
}

// ---- non-finite guards in the factorizations ----

TEST(NonFiniteGuards, DenseLuReportsNanPivotColumn) {
  linalg::DenseMatrix a(2, 2);
  a(0, 0) = std::numeric_limits<double>::quiet_NaN();
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 2.0;
  linalg::LuFactorization lu;
  EXPECT_FALSE(lu.factorize(a));
  EXPECT_TRUE(lu.non_finite());
  EXPECT_EQ(lu.failed_pivot(), 0u);
}

TEST(NonFiniteGuards, DenseLuDistinguishesTinyPivotFromNan) {
  linalg::DenseMatrix a(2, 2);  // all-zero: singular but finite
  linalg::LuFactorization lu;
  EXPECT_FALSE(lu.factorize(a));
  EXPECT_FALSE(lu.non_finite());
  EXPECT_NE(lu.failed_pivot(), linalg::kNoFailedPivot);
}

TEST(NonFiniteGuards, SparseLuReportsNanPivotColumn) {
  linalg::SparseBuilder b(3);
  b.add(0, 0, 1.0);
  b.add(1, 1, std::numeric_limits<double>::infinity());
  b.add(2, 2, 1.0);
  b.add(1, 2, 0.5);
  linalg::SparseLu lu;
  EXPECT_FALSE(lu.factorize(linalg::CsrMatrix(b)));
  EXPECT_TRUE(lu.non_finite());
  EXPECT_NE(lu.failed_pivot(), linalg::kNoFailedPivot);
}

// ---- fault injection & the recovery ladder ----

TEST(FaultInjection, PlanParserRoundTrip) {
  const auto plan =
      FaultPlan::parse("nan-stamp@3x2:dev=pu_q; singular@7 ;stall@0x-1");
  ASSERT_EQ(plan.specs().size(), 3u);
  EXPECT_EQ(plan.specs()[0].kind, FaultKind::kNanStamp);
  EXPECT_EQ(plan.specs()[0].at_solve, 3);
  EXPECT_EQ(plan.specs()[0].count, 2);
  EXPECT_EQ(plan.specs()[0].device, "pu_q");
  EXPECT_TRUE(plan.specs()[0].covers(4));
  EXPECT_FALSE(plan.specs()[0].covers(5));
  EXPECT_EQ(plan.specs()[1].kind, FaultKind::kSingular);
  EXPECT_EQ(plan.specs()[2].count, -1);
  EXPECT_TRUE(plan.specs()[2].covers(1000));
  EXPECT_THROW(FaultPlan::parse("melt@3"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("stall@"), std::invalid_argument);
}

TEST(FaultInjection, NanStampOnFirstSolveRecoversViaLadder) {
  // The plain DC solve is poisoned; the gmin-ramp rungs are clean solves,
  // so the ladder must deliver the operating point anyway.
  LatchFixture f;
  f.ckt.set_fault_plan(FaultPlan::parse("nan-stamp@0"));
  DCAnalysis dc(f.ckt);
  const auto sol = dc.solve();
  ASSERT_TRUE(sol.has_value());
  EXPECT_TRUE(dc.last_diagnostics().converged);
  EXPECT_EQ(dc.last_diagnostics().stage, RecoveryStage::kGminRamp);
}

TEST(FaultInjection, PersistentNanStampAttributesCulpritDevice) {
  LatchFixture f;
  f.ckt.set_fault_plan(FaultPlan::parse("nan-stamp@0x-1:dev=pu_q"));
  DCAnalysis dc(f.ckt);
  EXPECT_FALSE(dc.solve().has_value());
  const auto& diag = dc.last_diagnostics();
  EXPECT_EQ(diag.stage, RecoveryStage::kExhausted);
  EXPECT_EQ(diag.non_finite, NonFiniteSite::kStamp);
  EXPECT_EQ(diag.non_finite_device, "pu_q");
  EXPECT_TRUE(diag.injected);
  // The human-readable line carries the same attribution.
  EXPECT_NE(diag.describe().find("pu_q"), std::string::npos);
}

TEST(FaultInjection, PersistentSingularFaultReportsSingular) {
  LatchFixture f;
  f.ckt.set_fault_plan(FaultPlan::parse("singular@0x-1"));
  DCAnalysis dc(f.ckt);
  EXPECT_FALSE(dc.solve().has_value());
  EXPECT_TRUE(dc.last_diagnostics().singular);
  EXPECT_TRUE(dc.last_diagnostics().injected);
}

TEST(FaultInjection, TransientStallSalvagedByLadder) {
  // Stall the first transient step and pin dt_min next to dt_max so
  // dt-halving bottoms out immediately: the mid-step ladder must salvage
  // the point and the run must still produce the right waveform.
  Circuit ckt;
  const auto n = ckt.node("n");
  ckt.add<VSource>("V1", n, kGround, SourceSpec::dc(1.0));
  ckt.add<Resistor>("R1", n, ckt.node("out"), 1e3);
  ckt.add<Capacitor>("C1", ckt.find_node("out"), kGround, 1e-12);
  // Solve 0 is the DC init; solve 1 is the first timestep and solve 2 the
  // ladder's plain retry — stall both so a gmin rung must do the salvage.
  ckt.set_fault_plan(FaultPlan::parse("stall@1x2"));
  TranOptions opt;
  opt.t_stop = 20e-9;
  opt.dt_initial = 1e-10;
  opt.dt_min = 0.5e-10;
  TranAnalysis tran(ckt, opt, {Probe::node_voltage(ckt.find_node("out"), "out")});
  const auto wave = tran.run();
  EXPECT_GE(tran.stats().recoveries(), 1u);
  EXPECT_NEAR(wave.value_at("out", 19e-9), 1.0, 0.01);
}

TEST(FaultInjection, ExhaustedLadderThrowsSolverErrorWithDiagnostics) {
  Circuit ckt;
  const auto n = ckt.node("n");
  ckt.add<VSource>("V1", n, kGround, SourceSpec::dc(1.0));
  ckt.add<Resistor>("R1", n, kGround, 1e3);
  ckt.set_fault_plan(FaultPlan::parse("stall@0x-1"));
  TranOptions opt;
  opt.t_stop = 1e-9;
  TranAnalysis tran(ckt, opt, {});
  try {
    (void)tran.run();
    FAIL() << "expected SolverError";
  } catch (const SolverError& e) {
    EXPECT_EQ(e.diagnostics().stage, RecoveryStage::kExhausted);
    EXPECT_TRUE(e.diagnostics().injected);
    EXPECT_FALSE(e.diagnostics().converged);
    // what() embeds the describe() line.
    EXPECT_NE(std::string(e.what()).find("recovery"), std::string::npos);
  }
}

TEST(FaultInjection, TestbenchStaticPowerThrowsWithDiagnostics) {
  sram::TestbenchOptions opts;
  opts.ideal_bitlines = true;
  sram::CellTestbench tb(sram::CellKind::k6T, PaperParams::table1(), opts);
  tb.circuit().set_fault_plan(FaultPlan::parse("singular@0x-1"));
  try {
    (void)tb.static_power(sram::CellTestbench::StaticMode::kNormal);
    FAIL() << "expected SolverError";
  } catch (const SolverError& e) {
    EXPECT_TRUE(e.diagnostics().singular);
    EXPECT_TRUE(e.diagnostics().injected);
  }
}

// ---- array-sized drills: the sparse factorization path under faults ----
//
// Above linalg::kDenseCutoff unknowns solve_newton switches to SparseLu, so
// these drills exercise the sparse pivot guards end-to-end: a real power
// domain netlist, an injected fault, and the diagnostics that surface.

// A 6x6 NV array plus its drivers comfortably exceeds the dense cutoff.
sram::ArrayTestbench make_array_bench() {
  sram::ArrayOptions opts;
  opts.rows = 6;
  opts.cols = 6;
  opts.nonvolatile = true;
  return sram::ArrayTestbench(PaperParams::table1(), opts);
}

TEST(ArrayScaleFaults, ArrayCircuitUsesTheSparsePath) {
  auto tb = make_array_bench();
  const MnaLayout layout = tb.circuit().build_layout();
  ASSERT_GT(layout.unknown_count(), linalg::kDenseCutoff);
  DCAnalysis dc(tb.circuit());
  EXPECT_TRUE(dc.solve().has_value());
}

TEST(ArrayScaleFaults, NanStampGuardFiresAtArrayScale) {
  auto tb = make_array_bench();
  tb.circuit().set_fault_plan(FaultPlan::parse("nan-stamp@0x-1"));
  DCAnalysis dc(tb.circuit());
  EXPECT_FALSE(dc.solve().has_value());
  const auto& diag = dc.last_diagnostics();
  EXPECT_EQ(diag.stage, RecoveryStage::kExhausted);
  EXPECT_EQ(diag.non_finite, NonFiniteSite::kStamp);
  EXPECT_TRUE(diag.injected);
}

TEST(ArrayScaleFaults, SingularGuardFiresAtArrayScale) {
  auto tb = make_array_bench();
  tb.circuit().set_fault_plan(FaultPlan::parse("singular@0x-1"));
  DCAnalysis dc(tb.circuit());
  EXPECT_FALSE(dc.solve().has_value());
  EXPECT_TRUE(dc.last_diagnostics().singular);
  EXPECT_TRUE(dc.last_diagnostics().injected);
}

TEST(ArrayScaleFaults, StalledFirstSolveRecoversViaLadderAtArrayScale) {
  auto tb = make_array_bench();
  tb.circuit().set_fault_plan(FaultPlan::parse("stall@0"));
  DCAnalysis dc(tb.circuit());
  const auto sol = dc.solve();
  ASSERT_TRUE(sol.has_value());
  EXPECT_TRUE(dc.last_diagnostics().converged);
  EXPECT_NE(dc.last_diagnostics().stage, RecoveryStage::kNone);
}

TEST(NonFiniteGuards, SparseNanPivotCaughtAtArrayScale) {
  // Direct factorization-level check at a size the sweep arrays reach: a
  // well-conditioned tridiagonal system with one NaN planted mid-matrix.
  const std::size_t n = 2 * linalg::kDenseCutoff;
  linalg::SparseBuilder b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b.add(i, i, i == 123 ? std::numeric_limits<double>::quiet_NaN() : 4.0);
    if (i + 1 < n) {
      b.add(i, i + 1, -1.0);
      b.add(i + 1, i, -1.0);
    }
  }
  linalg::SparseLu lu;
  EXPECT_FALSE(lu.factorize(linalg::CsrMatrix(b)));
  EXPECT_TRUE(lu.non_finite());
  EXPECT_NE(lu.failed_pivot(), linalg::kNoFailedPivot);
}

TEST(NonFiniteGuards, SparseSingularPivotCaughtAtArrayScale) {
  // Same size, finite entries, one fully decoupled zero row: singular, and
  // reported as a failed pivot rather than non-finite.
  const std::size_t n = 2 * linalg::kDenseCutoff;
  linalg::SparseBuilder b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b.add(i, i, i == 123 ? 0.0 : 4.0);
    if (i + 1 < n && i != 123 && i + 1 != 123) {
      b.add(i, i + 1, -1.0);
      b.add(i + 1, i, -1.0);
    }
  }
  linalg::SparseLu lu;
  EXPECT_FALSE(lu.factorize(linalg::CsrMatrix(b)));
  EXPECT_FALSE(lu.non_finite());
  EXPECT_NE(lu.failed_pivot(), linalg::kNoFailedPivot);
}

// ---- wall-clock watchdog ----

TEST(TranRobustness, WatchdogAbortsLongTransient) {
  Circuit ckt;
  const auto n = ckt.node("n");
  ckt.add<VSource>("V1", n, kGround, SourceSpec::dc(1.0));
  ckt.add<Resistor>("R1", n, ckt.node("out"), 1e3);
  ckt.add<Capacitor>("C1", ckt.find_node("out"), kGround, 1e-12);
  TranOptions opt;
  opt.t_stop = 1.0;       // absurdly long simulated time
  opt.dt_max = 1e-9;      // forces ~1e9 steps: can never finish in budget
  opt.max_wall_seconds = 0.05;
  TranAnalysis tran(ckt, opt, {});
  EXPECT_THROW((void)tran.run(), util::WatchdogError);
}

}  // namespace
}  // namespace nvsram::spice
