// NVPG vs NOF vs OSR for a duty-cycled always-on device.
//
// The paper's closing argument: NOF ("normally-off") only pays off for
// workloads with very long standby between rare activity bursts, while NVPG
// wins across the practical range.  This example sweeps the idle interval
// of a duty-cycled sensor-hub SRAM buffer and reports the average power of
// each architecture, locating the crossover points.
#include <iostream>

#include "core/analyzer.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace nvsram;
  using core::Architecture;
  using core::BenchmarkParams;

  core::PowerGatingAnalyzer an(models::PaperParams::table1());

  // Workload: every wake-up the firmware touches each buffer line ~20 times
  // (n_RW = 20), then the buffer idles for t_idle until the next event.
  std::cout
      << "Duty-cycled sensor buffer: 32 x 32 domain, 20 accesses per wake\n"
      << "Average power vs idle interval (lower is better)\n\n";

  util::TablePrinter t({"t_idle", "P_avg OSR", "P_avg NVPG", "P_avg NOF",
                        "winner"});
  std::string prev_winner;
  for (double t_idle : util::logspace(1e-6, 10.0, 15)) {
    BenchmarkParams p;
    p.n_rw = 20;
    p.rows = 32;
    p.cols = 32;
    p.t_sl = 0.0;
    p.t_sd = t_idle;

    std::vector<std::string> cells;
    cells.push_back(util::si_format(t_idle, "s", 1));
    double best = 1e99;
    std::string winner;
    for (auto a :
         {Architecture::kOSR, Architecture::kNVPG, Architecture::kNOF}) {
      const auto b = an.model().cycle_energy(a, p);
      const double p_avg = b.total() / b.duration;
      cells.push_back(util::si_format(p_avg, "W"));
      if (p_avg < best) {
        best = p_avg;
        winner = core::to_string(a);
      }
    }
    if (winner != prev_winner && !prev_winner.empty()) {
      winner += "  <- crossover";
    }
    cells.push_back(winner);
    prev_winner = winner.substr(0, winner.find(' '));
    t.row(cells);
  }
  t.print(std::cout);

  std::cout
      << "\nReading: OSR wins when idles are shorter than the BET; NVPG takes\n"
         "over beyond ~tens of us and keeps the full access speed.  NOF's\n"
         "average power approaches NVPG's only at very long idle intervals\n"
         "while paying its cycle-time penalty all the time - matching the\n"
         "paper's conclusion that NOF suits only 'literally normally-off'\n"
         "applications.\n";
  return 0;
}
