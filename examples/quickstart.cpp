// Quickstart: simulate one NV-SRAM cell through a full power-gating cycle
// (write -> store -> shutdown -> restore) and print what happened.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "models/paper_params.h"
#include "sram/testbench.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace nvsram;

  // Table I of the paper: 20 nm FinFETs, 20 nm perpendicular MTJs.
  const auto pp = models::PaperParams::table1();
  std::cout << pp.describe() << "\n";

  // A testbench holds one cell plus its periphery (power switch, bitline
  // precharge/write drivers, WL/SR/CTRL drivers).
  sram::CellTestbench tb(sram::CellKind::kNvSram, pp);

  // Script the benchmark: ops are scheduled, then run as one transient.
  tb.op_write(true);        // volatile write of '1'
  tb.op_read();             // non-destructive read
  tb.op_idle(1e-9);
  tb.op_store();            // 2-step CIMS store into the MTJs
  tb.op_shutdown(3e-6);     // super-cutoff power-off: virtual VDD collapses
  tb.op_restore();          // wake-up: data returns from the MTJs
  tb.op_idle(2e-9);

  auto res = tb.run();

  std::cout << "Phase-by-phase energy (all supplies and drivers):\n";
  util::TablePrinter t({"phase", "start", "duration", "energy"});
  for (const auto& ph : res.phases) {
    t.row({ph.name, util::si_format(ph.t0, "s"),
           util::si_format(ph.duration(), "s"),
           util::si_format(res.energy(ph), "J")});
  }
  t.print(std::cout);

  std::cout << "\nMTJ states after store: Q-side = "
            << models::to_string(tb.mtj_q()->state()) << ", QB-side = "
            << models::to_string(tb.mtj_qb()->state()) << "\n";

  const auto& sd = res.phase("shutdown");
  std::cout << "Virtual VDD at end of shutdown: "
            << util::si_format(res.wave.value_at("V(VVDD)", sd.t1 - 1e-9), "V")
            << " (fully collapsed)\n";

  const double q = res.wave.value_at("V(Q)", tb.now() - 0.5e-9);
  const double qb = res.wave.value_at("V(QB)", tb.now() - 0.5e-9);
  std::cout << "After restore: V(Q) = " << util::si_format(q, "V")
            << ", V(QB) = " << util::si_format(qb, "V") << "  ->  data '"
            << (q > qb ? 1 : 0) << "' recovered\n";

  res.wave.write_csv("quickstart_waveform.csv");
  std::cout << "\nFull waveform written to quickstart_waveform.csv\n";
  return 0;
}
