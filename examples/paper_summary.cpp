// One-shot reproduction summary: characterizes both cells, evaluates every
// headline claim of the paper, and prints a pass/fail scorecard.
//
// This is the "did the reproduction work?" smoke check — the per-figure
// detail lives in the bench binaries.
#include <iostream>

#include "core/analyzer.h"
#include "sram/snm.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace nvsram;
  using core::Architecture;
  using core::BenchmarkParams;

  std::cout << "Reproduction scorecard: Shuto/Yamamoto/Sugahara, DATE 2015\n"
            << models::PaperParams::table1().describe() << "\n";

  core::PowerGatingAnalyzer an(models::PaperParams::table1());
  const auto& c6 = an.cell_6t();
  const auto& cn = an.cell_nv();

  std::cout << "6T-SRAM cell characterization:\n" << c6.describe()
            << "NV-SRAM cell characterization:\n" << cn.describe() << "\n";

  util::TablePrinter t({"#", "claim", "measured", "verdict"});
  int id = 0;
  auto check = [&](const std::string& claim, const std::string& measured,
                   bool pass) {
    t.row({std::to_string(++id), claim, measured, pass ? "PASS" : "FAIL"});
    return pass;
  };

  bool all = true;

  all &= check("store & restore verified by transient simulation",
               std::string(cn.store_verified ? "store ok" : "store FAILED") +
                   ", " + (cn.restore_verified ? "restore ok" : "restore FAILED"),
               cn.store_verified && cn.restore_verified);

  all &= check(
      "V_CTRL control: NV leakage within 10% of 6T",
      util::si_format(cn.p_static_normal, "W") + " vs " +
          util::si_format(c6.p_static_normal, "W"),
      cn.p_static_normal < 1.10 * c6.p_static_normal);

  all &= check("super cutoff: shutdown power >= 100x below sleep",
               util::si_format(cn.p_static_shutdown, "W"),
               cn.p_static_shutdown < 0.01 * cn.p_static_sleep);

  const auto snm6 = sram::hold_snm(models::PaperParams::table1(),
                                   sram::CellKind::k6T);
  const auto snmn = sram::hold_snm(models::PaperParams::table1(),
                                   sram::CellKind::kNvSram);
  all &= check("electrical separation preserves hold SNM (>= 90% of 6T)",
               util::si_format(snmn.snm, "V") + " vs " +
                   util::si_format(snm6.snm, "V"),
               snmn.snm > 0.9 * snm6.snm);

  BenchmarkParams p;
  p.n_rw = 10000;
  p.t_sl = 100e-9;
  const double conv = an.model().e_cyc(Architecture::kNVPG, p) /
                      an.model().e_cyc(Architecture::kOSR, p);
  all &= check("Fig. 7(a): NVPG converges to OSR at large n_RW",
               "ratio " + util::si_format(conv, "", 3) + " at n_RW=1e4",
               conv < 1.10);

  const double nof = an.model().e_cyc(Architecture::kNOF, p) /
                     an.model().e_cyc(Architecture::kOSR, p);
  all &= check("Fig. 7(a): NOF stays far above OSR",
               "ratio " + util::si_format(nof, "", 1), nof > 2.5);

  p.n_rw = 100;
  const auto bet = an.model().break_even_time(Architecture::kNVPG, p);
  all &= check("Fig. 8: NVPG BET in the several-10-us band",
               bet ? util::si_format(*bet, "s") : "never",
               bet && *bet > 10e-6 && *bet < 500e-6);

  const auto bet_nof = an.model().break_even_time(Architecture::kNOF, p);
  all &= check("Fig. 8: NOF BET at least 10x longer",
               bet_nof ? util::si_format(*bet_nof, "s") : "never",
               bet && bet_nof && *bet_nof > 10.0 * *bet);

  BenchmarkParams sf = p;
  sf.n_rw = 10;
  sf.store_free_shutdown = true;
  const auto bet_sf = an.model().break_even_time(Architecture::kNVPG, sf);
  all &= check("Fig. 9(a): store-free shutdown BET of a few us",
               bet_sf ? util::si_format(*bet_sf, "s") : "never",
               bet_sf && *bet_sf < 10e-6);

  p.t_sl = 0.0;
  const double slowdown = an.cycle_time_ratio(Architecture::kNOF, p);
  all &= check("Fig. 6(b): NOF stretches the cycle (> 3x); NVPG does not",
               util::si_format(slowdown, "x", 2) + " vs " +
                   util::si_format(an.cycle_time_ratio(Architecture::kNVPG, p),
                                   "x", 2),
               slowdown > 3.0 &&
                   an.cycle_time_ratio(Architecture::kNVPG, p) < 1.05);

  t.print(std::cout);
  std::cout << "\n"
            << (all ? "ALL CLAIMS REPRODUCED."
                    : "SOME CLAIMS FAILED — see above.")
            << "\n";
  return all ? 0 : 1;
}
