// Sizing a cache power domain for nonvolatile power-gating.
//
// A cache controller wants to gate parts of a lower-level cache whenever a
// core idles.  The design question (the paper's Fig. 9): how large can a
// power domain be so that its break-even time stays below the idle periods
// the workload actually offers?
//
// This example characterizes the NV-SRAM cell once, then walks domain sizes
// and reports BET with and without store-free shutdown, for the Table I
// technology and the fast (1 GHz / low-Jc) variant.
#include <iostream>

#include "core/analyzer.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace nvsram;
  using core::Architecture;
  using core::BenchmarkParams;

  // Suppose traces show the L1 idles in ~50 us episodes and the L2 in ~1 ms
  // episodes between bursts of ~100 accesses per line.
  const double idle_l1 = 50e-6;
  const double idle_l2 = 1e-3;

  std::cout << "Cache power-domain sizing against idle episodes of "
            << util::si_format(idle_l1, "s", 0) << " (L1) and "
            << util::si_format(idle_l2, "s", 0) << " (L2)\n\n";

  for (bool fast : {false, true}) {
    const auto pp = fast ? models::PaperParams::table1_fast()
                         : models::PaperParams::table1();
    core::PowerGatingAnalyzer an(pp);
    std::cout << (fast ? "--- fast technology (1 GHz, Jc = 1e6 A/cm^2) ---"
                       : "--- Table I technology (300 MHz, Jc = 5e6 A/cm^2) ---")
              << "\n";

    util::TablePrinter t({"N", "domain", "BET", "BET store-free",
                          "gate on L1 idle?", "gate on L2 idle?"});
    int largest_ok_l1 = 0;
    for (int rows : {32, 64, 128, 256, 512, 1024, 2048, 4096}) {
      BenchmarkParams base;
      base.rows = rows;
      base.cols = 32;
      base.n_rw = 100;
      base.t_sl = 100e-9;
      const auto bet = an.model().break_even_time(Architecture::kNVPG, base);
      base.store_free_shutdown = true;
      const auto bet_sf = an.model().break_even_time(Architecture::kNVPG, base);
      if (bet && *bet < idle_l1) largest_ok_l1 = rows;
      t.row({std::to_string(rows), util::si_format(base.domain_bytes(), "B", 0),
             bet ? util::si_format(*bet, "s") : "never",
             bet_sf ? util::si_format(*bet_sf, "s") : "never",
             (bet && *bet < idle_l1) ? "yes" : "no",
             (bet && *bet < idle_l2) ? "yes" : "no"});
    }
    t.print(std::cout);
    if (largest_ok_l1 > 0) {
      std::cout << "=> largest L1-gateable domain: " << largest_ok_l1
                << " rows (" << largest_ok_l1 * 32 / 8 << " B)\n\n";
    } else {
      std::cout << "=> no domain size breaks even within the L1 idle window; "
                   "use store-free shutdown or gate only on L2 idles\n\n";
    }
  }
  return 0;
}
