// nvspice: a tiny SPICE-like command-line front end for the simulator.
//
// Usage:
//   nvspice <netlist-file>     run the analyses in the file
//   nvspice --demo             run a built-in NV-SRAM store demo netlist
//
// The netlist grammar is documented in spice/netlist_parser.h; it supports
// the FinFET (M...nfin/pfin) and MTJ (Y...P/AP) compact models alongside
// the usual R/C/V/I/D cards, plus .dc/.tran/.probe analyses.
#include <fstream>
#include <iostream>
#include <sstream>

#include "spice/mtj_element.h"
#include "spice/netlist_parser.h"
#include "util/table.h"
#include "util/units.h"

namespace {

constexpr const char* kDemoNetlist = R"(NV store demo: drive 1.5 x Ic through an MTJ for 10 ns
* The PS-FinFET branch of the paper's cell, in isolation:
*   storage node (driven) -- nFET (gate = SR) -- Y -- MTJ -- CTRL (gnd)
Vq   q    0 DC 0.9
Vsr  sr   0 PULSE(0 0.65 2n 0.1n 0.1n 12n)
M1   q sr y nfin
Y1   0 y  P
.probe v(y) i(Y1) e(Vq)
.tran 18n
.end
)";

void print_waveform_summary(const nvsram::spice::Waveform& wave) {
  using nvsram::util::si_format;
  nvsram::util::TablePrinter t({"series", "min", "max", "final"});
  for (const auto& label : wave.labels()) {
    t.row({label, si_format(wave.minimum(label), ""),
           si_format(wave.maximum(label), ""),
           si_format(wave.final_value(label), "")});
  }
  t.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nvsram;

  std::string text;
  if (argc == 2 && std::string(argv[1]) == "--demo") {
    text = kDemoNetlist;
    std::cout << "[running built-in demo netlist]\n" << kDemoNetlist << "\n";
  } else if (argc == 2) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "nvspice: cannot open " << argv[1] << "\n";
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  } else {
    std::cout << "usage: nvspice <netlist> | nvspice --demo\n";
    // Run the demo anyway so `for b in examples/*` exercises this binary.
    text = kDemoNetlist;
  }

  try {
    spice::NetlistParser parser;
    auto net = parser.parse(text);
    std::cout << "parsed '" << net->title() << "': "
              << net->circuit().devices().size() << " devices, "
              << net->circuit().node_count() - 1 << " nodes\n";

    if (net->dc_card()) {
      std::cout << "\n-- .dc sweep of " << net->dc_card()->source << " --\n";
      const auto wave = net->run_dc_sweep();
      print_waveform_summary(wave);
      wave.write_csv("nvspice_dc.csv");
      std::cout << "[wrote nvspice_dc.csv]\n";
    }
    if (net->tran_card()) {
      std::cout << "\n-- .tran to "
                << util::si_format(net->tran_card()->t_stop, "s") << " --\n";
      const auto wave = net->run_tran();
      print_waveform_summary(wave);
      wave.write_csv("nvspice_tran.csv");
      std::cout << "[wrote nvspice_tran.csv]\n";
    }
    if (net->ac_card()) {
      std::cout << "\n-- .ac " << net->ac_card()->source << " "
                << util::si_format(net->ac_card()->f_start, "Hz") << " .. "
                << util::si_format(net->ac_card()->f_stop, "Hz") << " --\n";
      const auto wave = net->run_ac();
      print_waveform_summary(wave);
      wave.write_csv("nvspice_ac.csv");
      std::cout << "[wrote nvspice_ac.csv]\n";
    }
    if (!net->dc_card() && !net->tran_card() && !net->ac_card()) {
      std::cout << "\n-- operating point --\n";
      const auto sol = net->run_op();
      if (!sol) {
        std::cerr << "operating point did not converge\n";
        return 1;
      }
      util::TablePrinter t({"node", "voltage"});
      for (spice::NodeId n = 1; n < net->circuit().node_count(); ++n) {
        t.row({net->circuit().node_name(n),
               util::si_format(sol->node_voltage(n), "V")});
      }
      t.print(std::cout);
    }

    // Report MTJ end states if any are present.
    for (const auto& dev : net->circuit().devices()) {
      if (auto* mtj = dynamic_cast<spice::MTJElement*>(dev.get())) {
        std::cout << "MTJ " << mtj->name() << ": state "
                  << models::to_string(mtj->state()) << " after "
                  << mtj->switch_count() << " switch(es)\n";
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "nvspice: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
