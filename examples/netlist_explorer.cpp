// Using the SPICE substrate directly: build custom circuits against the
// public API (Circuit / devices / DC sweep / transient).
//
// Demonstrates:
//   1. an inverter VTC via DCSweep,
//   2. a 3-stage FinFET ring-oscillator-style delay chain transient,
//   3. an MTJ read-margin divider: sensing P vs AP through a reference.
#include <cmath>
#include <iostream>

#include "models/paper_params.h"
#include "spice/dc.h"
#include "spice/elements.h"
#include "spice/fet_element.h"
#include "spice/mtj_element.h"
#include "spice/tran.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace nvsram;
using spice::Circuit;
using spice::Probe;
using spice::SourceSpec;

void vtc_demo() {
  std::cout << "--- 1. Inverter voltage-transfer curve (DC sweep) ---\n";
  const auto pp = models::PaperParams::table1();
  Circuit ckt;
  const auto n_in = ckt.node("in");
  const auto n_out = ckt.node("out");
  const auto n_vdd = ckt.node("vdd");
  auto* vin = ckt.add<spice::VSource>("Vin", n_in, spice::kGround,
                                      SourceSpec::dc(0.0));
  ckt.add<spice::VSource>("Vdd", n_vdd, spice::kGround, SourceSpec::dc(pp.vdd));
  spice::add_finfet(ckt, "pu", n_out, n_in, n_vdd, pp.pmos(1));
  spice::add_finfet(ckt, "pd", n_out, n_in, spice::kGround, pp.nmos(1));

  std::vector<double> points;
  for (int i = 0; i <= 9; ++i) points.push_back(0.1 * i);
  spice::DCSweep sweep(
      ckt, [&](double v) { vin->set_spec(SourceSpec::dc(v)); }, points,
      {Probe::node_voltage(n_out, "V(out)")});
  const auto wave = sweep.run();

  util::TablePrinter t({"V(in)", "V(out)"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    t.row({util::si_format(points[i], "V", 1),
           util::si_format(wave.series("V(out)")[i], "V")});
  }
  t.print(std::cout);
}

void delay_chain_demo() {
  std::cout << "\n--- 2. Three-inverter delay chain (transient) ---\n";
  const auto pp = models::PaperParams::table1();
  Circuit ckt;
  const auto n_vdd = ckt.node("vdd");
  ckt.add<spice::VSource>("Vdd", n_vdd, spice::kGround, SourceSpec::dc(pp.vdd));
  const auto n_in = ckt.node("s0");
  ckt.add<spice::VSource>("Vin", n_in, spice::kGround,
                          SourceSpec::pwl({{0.2e-9, 0.0}, {0.22e-9, 0.9}}));
  for (int i = 0; i < 3; ++i) {
    // Built with += rather than operator+: GCC 12 at -O3 flags the inlined
    // "literal + to_string" concat with a spurious -Wrestrict (PR105651).
    std::string a_name = "s";
    a_name += std::to_string(i);
    std::string b_name = "s";
    b_name += std::to_string(i + 1);
    const auto a = ckt.node(a_name);
    const auto b = ckt.node(b_name);
    spice::add_finfet(ckt, "pu" + std::to_string(i), b, a, n_vdd, pp.pmos(1));
    spice::add_finfet(ckt, "pd" + std::to_string(i), b, a, spice::kGround,
                      pp.nmos(1));
    ckt.add<spice::Capacitor>("cl" + std::to_string(i), b, spice::kGround,
                              0.2e-15);
  }

  spice::TranOptions opt;
  opt.t_stop = 2e-9;
  spice::TranAnalysis tran(ckt, opt,
                           {Probe::node_voltage(ckt.node("s1"), "s1"),
                            Probe::node_voltage(ckt.node("s3"), "s3")});
  const auto wave = tran.run();
  const auto t1 = wave.cross_time("s1", 0.45);
  const auto t3 = wave.cross_time("s3", 0.45);
  if (t1 && t3) {
    std::cout << "stage-1 switch at " << util::si_format(*t1, "s")
              << ", stage-3 at " << util::si_format(*t3, "s")
              << "  =>  per-stage delay ~ "
              << util::si_format((*t3 - *t1) / 2.0, "s") << "\n";
  }
}

void mtj_sense_demo() {
  std::cout << "\n--- 3. MTJ read margin through a reference divider ---\n";
  const auto pp = models::PaperParams::table1();
  util::TablePrinter t({"state", "V(sense)", "R(MTJ)"});
  for (auto st : {models::MtjState::kParallel, models::MtjState::kAntiparallel}) {
    Circuit ckt;
    const auto n_top = ckt.node("top");
    const auto n_mid = ckt.node("mid");
    ckt.add<spice::VSource>("Vr", n_top, spice::kGround, SourceSpec::dc(0.2));
    // Reference resistor = geometric mean of Rp and Rap.
    const double r_ref =
        std::sqrt(pp.mtj.rp0() * pp.mtj.rap0());
    ckt.add<spice::Resistor>("Rref", n_top, n_mid, r_ref);
    auto* mtj =
        ckt.add<spice::MTJElement>("mtj", n_mid, spice::kGround, pp.mtj, st);
    spice::DCAnalysis dc(ckt);
    const auto sol = dc.solve();
    if (!sol) continue;
    const double v = sol->node_voltage(n_mid);
    const double i = mtj->current(sol->view());
    t.row({models::to_string(st), util::si_format(v, "V"),
           util::si_format(v / i, "Ohm")});
  }
  t.print(std::cout);
  std::cout << "(the sense node splits cleanly around the reference: this is\n"
            << " the margin a read amplifier of an MTJ-based macro sees)\n";
}

}  // namespace

int main() {
  vtc_demo();
  delay_chain_demo();
  mtj_sense_demo();
  return 0;
}
