// nvlint: static netlist linter — rejects bad circuits before simulation.
//
// Usage:
//   nvlint [options] <netlist.cir>...
//   nvlint [options] --bench=<nvpg|nof|osr|all>
//   nvlint --rules | --list-rules
//
// Options:
//   --rules          print the rule catalog (id, default severity, summary)
//   --list-rules     tabular catalog: rule id, family, default severity
//   --explain=<id>   one-paragraph explanation of a rule, with the minimal
//                    triggering example and its seeded fixture
//   --disable=<id>   disable a rule (repeatable)
//   --hier           lint through the hierarchical summary engine
//                    (lint_netlist_hier): one analysis per .subckt
//                    definition, composed per instance — verdict-identical
//                    to the flat engine, orders of magnitude faster on
//                    arrays.  When a certificate fails and the engine falls
//                    back to flat analysis, text mode prints the reason as
//                    a note and JSON carries "hier_fast_path": false.
//   --baseline=<f>   suppress findings recorded in a baseline file (one
//                    "file|rule|device|node" line each, instance-path
//                    normalized) so legacy findings don't gate CI while new
//                    ones still fail; suppressed findings drop out of the
//                    counts and the exit status
//   --write-baseline=<f>  write the baseline file for everything this
//                    invocation found (complete, sorted; combine with
//                    --baseline to start from the current state)
//   --werror         exit nonzero on warnings as well as errors
//   --werror=<glob>  promote warnings whose rule id matches the glob to
//                    errors for exit-status purposes (repeatable; '*'
//                    wildcards, e.g. --werror=protocol-*)
//   --bench=<arch>   instead of (or in addition to) netlists, build the
//                    scheduled benchmark deck for an architecture (nvpg,
//                    nof, osr, or all), export its stimulus timeline, and
//                    run the temporal protocol + units + power-intent
//                    passes over it.  Reported as pseudo-file
//                    "bench:<arch>"; no transient is solved.
//   --format=json    machine-readable output: a JSON array with one object
//                    per file {file, parse_failed, errors, warnings,
//                    diagnostics:[{rule, severity, file, line, message,
//                    device, node, phase}]} (CI gates parse this)
//   --format=sarif   SARIF 2.1.0 on stdout (one run, full rule catalog,
//                    one result per diagnostic; parse failures appear as
//                    ruleId "parse-error").  Uploadable to GitHub code
//                    scanning.
//   -q, --quiet      print only the per-file summary lines
//
// Findings replicated across .subckt instances (same rule on the same
// definition-local device/node, per Diagnostic::dedup_key) are collapsed in
// every output format into one finding carrying the instance count and up
// to three exemplar instance paths; the error/warning totals and the exit
// status still count every instance.
//
// Exit status: 0 clean, 1 lint errors (or warnings with --werror /
// --werror=<glob> matches), 2 parse failure or unreadable file.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/dataflow/check.h"
#include "lint/hier/hier_linter.h"
#include "lint/linter.h"
#include "lint/power/check.h"
#include "lint/temporal/protocol.h"
#include "lint/temporal/timeline.h"
#include "lint/temporal/units_check.h"
#include "spice/netlist_parser.h"
#include "sram/schedules.h"

namespace {

void print_rules() {
  std::cout << "nvlint rules:\n";
  for (const auto& rule : nvsram::lint::rule_catalog()) {
    std::cout << "  " << rule.id << " (" << to_string(rule.severity)
              << "): " << rule.summary << "\n";
  }
}

void print_rule_list() {
  std::size_t width = 0;
  for (const auto& rule : nvsram::lint::rule_catalog()) {
    width = std::max(width, std::string(rule.id).size());
  }
  for (const auto& rule : nvsram::lint::rule_catalog()) {
    std::cout << std::left << std::setw(static_cast<int>(width) + 2) << rule.id
              << std::setw(12) << rule.family << to_string(rule.severity)
              << "\n";
  }
}

// --explain=<rule-id>: the catalog's one-paragraph description plus the
// minimal triggering example and the seeded fixture that locks the rule.
int print_explain(const std::string& id) {
  const nvsram::lint::RuleInfo* rule = nvsram::lint::find_rule(id);
  if (rule == nullptr) {
    std::cerr << "nvlint: unknown rule id '" << id << "' (see --rules)\n";
    return 2;
  }
  std::cout << rule->id << " (family " << rule->family << ", default "
            << to_string(rule->severity) << ")\n\n  " << rule->summary
            << "\n\n" << rule->description << "\n";
  if (rule->example[0] != '\0') {
    std::cout << "\nExample:\n" << rule->example;
  }
  if (rule->fixture[0] != '\0') {
    std::cout << "\nSeeded fixture: tests/netlists_bad/" << rule->fixture
              << "\n";
  }
  return 0;
}

// '*'-wildcard match (no character classes; enough for rule-family globs
// like "protocol-*").
bool glob_match(const std::string& pattern, const std::string& s) {
  std::size_t p = 0, i = 0, star = std::string::npos, mark = 0;
  while (i < s.size()) {
    if (p < pattern.size() && (pattern[p] == s[i])) {
      ++p, ++i;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = i;
    } else if (star != std::string::npos) {
      p = star + 1;
      i = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

struct FileResult {
  bool parse_failed = false;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t werror_hits = 0;  // warnings promoted by --werror=<glob>
};

enum class Format { kText, kJson, kSarif };

// SARIF needs every diagnostic of the invocation in one document, so the
// sarif path collects (file, finding) tuples instead of streaming.
struct SarifResult {
  std::string file;
  nvsram::lint::Diagnostic diag;
  std::size_t instances = 0;           // 0: top-level (not replicated)
  std::vector<std::string> exemplars;  // up to three instance paths
};

// One deduplicated finding: a representative diagnostic plus the instance
// paths of every replica that collapsed into it (empty for top-level
// findings).
struct Finding {
  const nvsram::lint::Diagnostic* rep = nullptr;
  std::vector<std::string> paths;
};

// Collapses instance-replicated diagnostics into one finding each;
// top-level diagnostics pass through untouched.  The group key is
// Diagnostic::dedup_key plus the message with the instance prefix stripped,
// so replicas of one definition-local finding merge across instances while
// distinct findings on the same device/node (e.g. the undetermined-unknown
// and unsolvable-equation halves of one structural defect) stay separate.
std::vector<Finding> dedup_findings(
    const std::vector<const nvsram::lint::Diagnostic*>& diags) {
  std::vector<Finding> findings;
  std::map<std::string, std::size_t> group_of;
  for (const auto* d : diags) {
    if (d->instance_path.empty()) {
      findings.push_back({d, {}});
      continue;
    }
    std::string prefix = d->instance_path + "/";
    std::replace(prefix.begin(), prefix.end(), '/', '.');
    std::string message = d->message;
    for (std::size_t pos = 0;
         (pos = message.find(prefix, pos)) != std::string::npos;) {
      message.erase(pos, prefix.size());
    }
    auto [it, fresh] =
        group_of.emplace(d->dedup_key() + "|" + message, findings.size());
    if (fresh) findings.push_back({d, {}});
    auto& paths = findings[it->second].paths;
    if (std::find(paths.begin(), paths.end(), d->instance_path) ==
        paths.end()) {
      paths.push_back(d->instance_path);
    }
  }
  return findings;
}

// "16 instances: X0_0, X0_1, X0_2 … and 13 more instances"
std::string instance_note(const std::vector<std::string>& paths) {
  std::ostringstream ss;
  ss << paths.size() << " instances: ";
  const std::size_t shown = std::min<std::size_t>(paths.size(), 3);
  for (std::size_t i = 0; i < shown; ++i) {
    if (i) ss << ", ";
    ss << paths[i];
  }
  if (paths.size() > shown) {
    ss << " … and " << paths.size() - shown << " more instances";
  }
  return ss.str();
}

// Minimal JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void print_json_diagnostic(std::ostream& os, const std::string& path,
                           const Finding& f, bool first) {
  const nvsram::lint::Diagnostic& d = *f.rep;
  if (!first) os << ",";
  os << "\n      {\"rule\": \"" << json_escape(d.rule) << "\", \"severity\": \""
     << to_string(d.severity) << "\", \"file\": \"" << json_escape(path)
     << "\", \"line\": " << d.line << ", \"message\": \""
     << json_escape(d.message) << "\", \"device\": \"" << json_escape(d.device)
     << "\", \"node\": \"" << json_escape(d.node) << "\", \"phase\": \""
     << json_escape(d.phase) << "\", \"instances\": " << f.paths.size()
     << ", \"exemplar_paths\": [";
  const std::size_t shown = std::min<std::size_t>(f.paths.size(), 3);
  for (std::size_t i = 0; i < shown; ++i) {
    os << (i ? ", " : "") << "\"" << json_escape(f.paths[i]) << "\"";
  }
  os << "]}";
}

// Baseline suppression + baseline capture, shared by every output path.
struct BaselineCtx {
  std::set<std::string> accepted;       // loaded from --baseline
  std::set<std::string>* out = nullptr; // filled for --write-baseline
};

// Shared reporting tail for real files and bench pseudo-files.
// `hier_fast_path` is -1 when the flat engine ran, otherwise whether the
// hierarchical composition engaged (0: fell back, 1: composed).
FileResult report_diagnostics(const std::string& path,
                              const nvsram::lint::LintReport& report,
                              const std::vector<std::string>& werror_globs,
                              bool quiet, Format format,
                              std::vector<SarifResult>& sarif,
                              bool first_file, BaselineCtx& baseline,
                              int hier_fast_path = -1) {
  using namespace nvsram;
  FileResult result;
  std::vector<const lint::Diagnostic*> kept;
  std::size_t infos = 0;
  std::size_t suppressed = 0;
  for (const auto& d : report.diagnostics()) {
    const std::string key = path + "|" + d.dedup_key();
    if (baseline.out != nullptr) baseline.out->insert(key);
    if (baseline.accepted.count(key) > 0) {
      ++suppressed;
      continue;
    }
    kept.push_back(&d);
    if (d.severity == lint::Severity::kError) {
      ++result.errors;
    } else if (d.severity == lint::Severity::kWarning) {
      ++result.warnings;
    } else {
      ++infos;
    }
  }
  for (const auto* d : kept) {
    if (d->severity != lint::Severity::kWarning) continue;
    for (const auto& glob : werror_globs) {
      if (glob_match(glob, d->rule)) {
        ++result.werror_hits;
        break;
      }
    }
  }
  const std::vector<Finding> findings = dedup_findings(kept);
  if (format == Format::kSarif) {
    for (const auto& f : findings) {
      SarifResult r{path, *f.rep, f.paths.size(), {}};
      const std::size_t shown = std::min<std::size_t>(f.paths.size(), 3);
      r.exemplars.assign(f.paths.begin(),
                         f.paths.begin() + static_cast<std::ptrdiff_t>(shown));
      sarif.push_back(std::move(r));
    }
    return result;
  }
  if (format == Format::kJson) {
    if (!first_file) std::cout << ",";
    std::cout << "\n  {\"file\": \"" << json_escape(path)
              << "\", \"parse_failed\": false, \"errors\": " << result.errors
              << ", \"warnings\": " << result.warnings;
    if (hier_fast_path >= 0) {
      std::cout << ", \"hier_fast_path\": "
                << (hier_fast_path == 1 ? "true" : "false");
    }
    if (!baseline.accepted.empty()) {
      std::cout << ", \"baselined\": " << suppressed;
    }
    std::cout << ", \"diagnostics\": [";
    bool first = true;
    for (const auto& f : findings) {
      print_json_diagnostic(std::cout, path, f, first);
      first = false;
    }
    std::cout << (first ? "]" : "\n    ]") << "}";
    return result;
  }
  if (!quiet) {
    if (hier_fast_path == 0) {
      std::cout << path << ": note: hierarchical lint fell back to flat "
                << "analysis: " << lint::hier::last_fallback_reason() << "\n";
    }
    for (const auto& f : findings) {
      const lint::Diagnostic& d = *f.rep;
      std::cout << path << ":" << (d.line >= 0 ? std::to_string(d.line) : "-")
                << ": " << to_string(d.severity) << "[" << d.rule
                << "]: " << d.message;
      if (!d.phase.empty()) std::cout << " (phase " << d.phase << ")";
      if (f.paths.size() > 1) {
        std::cout << " (" << instance_note(f.paths) << ")";
      }
      std::cout << "\n";
    }
  }
  std::cout << path << ": " << result.errors << " error(s), "
            << result.warnings << " warning(s), " << infos << " info(s)";
  if (suppressed > 0) std::cout << ", " << suppressed << " baselined";
  std::cout << "\n";
  return result;
}

FileResult lint_file(const std::string& path,
                     const nvsram::lint::LintOptions& options,
                     const std::vector<std::string>& werror_globs, bool quiet,
                     Format format, std::vector<SarifResult>& sarif,
                     bool first_file, BaselineCtx& baseline, bool hier) {
  using namespace nvsram;
  FileResult result;

  auto report_parse_failure = [&](int line, const std::string& what) {
    result.parse_failed = true;
    if (format == Format::kJson) {
      if (!first_file) std::cout << ",";
      std::cout << "\n  {\"file\": \"" << json_escape(path)
                << "\", \"parse_failed\": true, \"errors\": 0, \"warnings\": "
                   "0, \"diagnostics\": []}";
    } else if (format == Format::kSarif) {
      lint::Diagnostic d;
      d.rule = "parse-error";
      d.severity = lint::Severity::kError;
      d.message = what;
      d.line = line;
      sarif.push_back({path, std::move(d)});
    }
  };

  std::ifstream in(path);
  if (!in) {
    std::cerr << path << ": cannot open file\n";
    report_parse_failure(-1, "cannot open file");
    return result;
  }
  std::ostringstream ss;
  ss << in.rdbuf();

  spice::NetlistParser parser;
  std::unique_ptr<spice::ParsedNetlist> net;
  try {
    net = parser.parse(ss.str());
  } catch (const spice::NetlistError& e) {
    std::cerr << path << ":" << e.line() << ": parse-error: " << e.what()
              << "\n";
    report_parse_failure(e.line(), e.what());
    return result;
  }

  int hier_fast_path = -1;
  lint::LintReport report;
  if (hier) {
    report = lint::lint_netlist_hier(*net, options);
    hier_fast_path = lint::hier::last_run_used_fast_path() ? 1 : 0;
  } else {
    report = net->lint(options);
  }
  return report_diagnostics(path, report, werror_globs, quiet, format, sarif,
                            first_file, baseline, hier_fast_path);
}

// Builds the scheduled benchmark deck for one architecture and runs the
// temporal protocol + units + power-intent passes over its exported
// timeline.  Purely static: nothing is solved.
FileResult lint_bench(nvsram::sram::BenchArch arch,
                      const nvsram::lint::LintOptions& options,
                      const std::vector<std::string>& werror_globs, bool quiet,
                      Format format, std::vector<SarifResult>& sarif,
                      bool first_file, BaselineCtx& baseline) {
  using namespace nvsram;
  const std::string path = std::string("bench:") + sram::to_string(arch);

  models::PaperParams pp;
  const sram::TestbenchOptions tb_opts;
  const auto tb = sram::build_benchmark_schedule(arch, pp,
                                                 sram::ScheduleParams{}, tb_opts);
  const lint::temporal::Timeline tl = tb->export_timeline();

  auto opt = lint::temporal::TemporalOptions::from_paper(pp);
  switch (arch) {
    case sram::BenchArch::kNVPG:
      opt.arch = lint::temporal::TemporalOptions::Arch::kNVPG;
      break;
    case sram::BenchArch::kNOF:
      opt.arch = lint::temporal::TemporalOptions::Arch::kNOF;
      // The NOF cycle is stretched to embed the store (two steps of pulse +
      // settle margin); the clock-store check compares against this
      // effective budget, not the raw clock.
      opt.clock_period += 2.0 * (pp.store_pulse + tb_opts.store_margin);
      break;
    case sram::BenchArch::kOSR:
      opt.arch = lint::temporal::TemporalOptions::Arch::kOSR;
      break;
  }

  lint::LintReport report;
  auto add = [&](std::vector<lint::Diagnostic> diags) {
    for (auto& d : diags) {
      if (!options.enabled(d.rule)) continue;
      if (d.severity < options.min_severity) continue;
      report.add(std::move(d));
    }
  };
  add(lint::temporal::check_timeline(tl, opt));
  add(lint::temporal::check_timeline_units(tl));
  add(lint::temporal::check_paper_params(pp));
  // Power-intent pass over the bench circuit: the deck carries a real header
  // switch, so the schedule's per-domain gating is checked exactly like a
  // netlist's (word-line-in-off-window, sneak paths, isolation).
  add(lint::power::check_power(tb->circuit(), tl, nullptr, {}));
  // Retention dataflow pass: proves the bench schedule never gates off a
  // generation the MTJs do not hold, never restores stale data, and wastes
  // no store pulse (the data-* family).
  add(lint::dataflow::check_dataflow(tl, lint::dataflow::DataflowOptions::
                                         from_paper(pp),
                                     &tb->circuit(), nullptr));

  return report_diagnostics(path, report, werror_globs, quiet, format, sarif,
                            first_file, baseline);
}

// SARIF 2.1.0 document: one run, the full rule catalog as
// tool.driver.rules (plus the synthetic "parse-error" rule), one result per
// diagnostic.  GitHub code scanning ingests this directly.
void print_sarif(const std::vector<SarifResult>& results) {
  using nvsram::lint::Severity;
  const auto& catalog = nvsram::lint::rule_catalog();
  auto level_of = [](Severity s) {
    return s == Severity::kError     ? "error"
           : s == Severity::kWarning ? "warning"
                                     : "note";
  };

  std::cout << "{\n"
            << "  \"$schema\": "
               "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
            << "  \"version\": \"2.1.0\",\n"
            << "  \"runs\": [\n    {\n"
            << "      \"tool\": {\n        \"driver\": {\n"
            << "          \"name\": \"nvlint\",\n"
            << "          \"informationUri\": \"docs/LINT.md\",\n"
            << "          \"rules\": [";
  bool first = true;
  auto print_rule = [&](const std::string& id, const std::string& family,
                        Severity severity, const std::string& summary) {
    if (!first) std::cout << ",";
    first = false;
    std::cout << "\n            {\"id\": \"" << json_escape(id)
              << "\", \"shortDescription\": {\"text\": \""
              << json_escape(summary)
              << "\"}, \"defaultConfiguration\": {\"level\": \""
              << level_of(severity) << "\"}, \"properties\": {\"family\": \""
              << json_escape(family) << "\"}}";
  };
  for (const auto& rule : catalog) {
    print_rule(rule.id, rule.family, rule.severity, rule.summary);
  }
  print_rule("parse-error", "parser", Severity::kError,
             "netlist text could not be parsed");
  std::cout << "\n          ]\n        }\n      },\n"
            << "      \"results\": [";

  first = true;
  for (const auto& r : results) {
    if (!first) std::cout << ",";
    first = false;
    std::cout << "\n        {\"ruleId\": \"" << json_escape(r.diag.rule)
              << "\", \"level\": \"" << level_of(r.diag.severity)
              << "\", \"message\": {\"text\": \"" << json_escape(r.diag.message)
              << "\"}, \"locations\": [{\"physicalLocation\": "
                 "{\"artifactLocation\": {\"uri\": \""
              << json_escape(r.file) << "\"}";
    if (r.diag.line >= 1) {
      std::cout << ", \"region\": {\"startLine\": " << r.diag.line << "}";
    }
    std::cout << "}}], \"properties\": {\"device\": \""
              << json_escape(r.diag.device) << "\", \"node\": \""
              << json_escape(r.diag.node) << "\", \"phase\": \""
              << json_escape(r.diag.phase) << "\", \"instances\": "
              << r.instances << ", \"exemplarPaths\": [";
    for (std::size_t i = 0; i < r.exemplars.size(); ++i) {
      std::cout << (i ? ", " : "") << "\"" << json_escape(r.exemplars[i])
                << "\"";
    }
    std::cout << "]}}";
  }
  std::cout << (first ? "]" : "\n      ]") << "\n    }\n  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  nvsram::lint::LintOptions options;
  std::vector<std::string> files;
  std::vector<nvsram::sram::BenchArch> benches;
  std::vector<std::string> werror_globs;
  bool quiet = false;
  bool werror = false;
  bool hier = false;
  Format format = Format::kText;
  std::vector<SarifResult> sarif;
  std::string baseline_path;
  std::string write_baseline_path;
  BaselineCtx baseline;
  std::set<std::string> baseline_found;

  const char* usage =
      "usage: nvlint [--rules] [--list-rules] [--explain=<id>] "
      "[--disable=<id>] [--hier] [--baseline=<file>] "
      "[--write-baseline=<file>] [--werror] "
      "[--werror=<glob>] [--bench=<nvpg|nof|osr|all>] [--format=json|sarif] "
      "[-q] <netlist.cir>...\n";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rules") {
      print_rules();
      return 0;
    } else if (arg == "--list-rules") {
      print_rule_list();
      return 0;
    } else if (arg.rfind("--explain=", 0) == 0) {
      return print_explain(arg.substr(10));
    } else if (arg.rfind("--disable=", 0) == 0) {
      const std::string id = arg.substr(10);
      const auto& catalog = nvsram::lint::rule_catalog();
      const bool known =
          std::any_of(catalog.begin(), catalog.end(),
                      [&](const auto& rule) { return id == rule.id; });
      if (!known) {
        std::cerr << "nvlint: unknown rule id '" << id
                  << "' in --disable (see --rules)\n";
        return 2;
      }
      options.disable(id);
    } else if (arg == "--hier") {
      hier = true;
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
      if (baseline_path.empty()) {
        std::cerr << "nvlint: empty --baseline= path\n";
        return 2;
      }
    } else if (arg.rfind("--write-baseline=", 0) == 0) {
      write_baseline_path = arg.substr(17);
      if (write_baseline_path.empty()) {
        std::cerr << "nvlint: empty --write-baseline= path\n";
        return 2;
      }
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg.rfind("--werror=", 0) == 0) {
      const std::string glob = arg.substr(9);
      if (glob.empty()) {
        std::cerr << "nvlint: empty --werror= glob\n";
        return 2;
      }
      werror_globs.push_back(glob);
    } else if (arg.rfind("--bench=", 0) == 0) {
      const std::string id = arg.substr(8);
      if (id == "all") {
        benches.push_back(nvsram::sram::BenchArch::kNVPG);
        benches.push_back(nvsram::sram::BenchArch::kNOF);
        benches.push_back(nvsram::sram::BenchArch::kOSR);
      } else if (auto arch = nvsram::sram::bench_arch_from_string(id)) {
        benches.push_back(*arch);
      } else {
        std::cerr << "nvlint: unknown architecture '" << id
                  << "' in --bench (nvpg, nof, osr, all)\n";
        return 2;
      }
    } else if (arg == "--format=json") {
      format = Format::kJson;
    } else if (arg == "--format=sarif") {
      format = Format::kSarif;
    } else if (arg.rfind("--format=", 0) == 0) {
      std::cerr << "nvlint: unknown format '" << arg.substr(9)
                << "' (supported: json, sarif)\n";
      return 2;
    } else if (arg == "-q" || arg == "--quiet") {
      quiet = true;
    } else if (arg == "-h" || arg == "--help") {
      std::cout << usage;
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "nvlint: unknown option '" << arg << "'\n";
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty() && benches.empty()) {
    std::cerr << usage;
    return 2;
  }
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::cerr << "nvlint: cannot open baseline '" << baseline_path << "'\n";
      return 2;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      baseline.accepted.insert(line);
    }
  }
  if (!write_baseline_path.empty()) baseline.out = &baseline_found;

  bool any_parse_failed = false;
  std::size_t total_errors = 0;
  std::size_t total_warnings = 0;
  std::size_t total_werror_hits = 0;
  if (format == Format::kJson) std::cout << "[";
  bool first = true;
  for (const auto& path : files) {
    const FileResult r = lint_file(path, options, werror_globs, quiet, format,
                                   sarif, first, baseline, hier);
    first = false;
    any_parse_failed = any_parse_failed || r.parse_failed;
    total_errors += r.errors;
    total_warnings += r.warnings;
    total_werror_hits += r.werror_hits;
  }
  for (const auto arch : benches) {
    const FileResult r = lint_bench(arch, options, werror_globs, quiet, format,
                                    sarif, first, baseline);
    first = false;
    total_errors += r.errors;
    total_warnings += r.warnings;
    total_werror_hits += r.werror_hits;
  }
  if (format == Format::kJson) std::cout << "\n]\n";
  if (format == Format::kSarif) print_sarif(sarif);

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path);
    if (!out) {
      std::cerr << "nvlint: cannot write baseline '" << write_baseline_path
                << "'\n";
      return 2;
    }
    out << "# nvlint baseline: accepted findings, one per line as\n"
           "# file|rule|device|node (instance-path normalized, so one line\n"
           "# covers every replicated instance).  Regenerate with\n"
           "# --write-baseline=<file>; suppress with --baseline=<file>.\n";
    for (const auto& key : baseline_found) out << key << "\n";
  }

  if (any_parse_failed) return 2;
  if (total_errors > 0) return 1;
  if (total_werror_hits > 0) return 1;
  if (werror && total_warnings > 0) return 1;
  return 0;
}
