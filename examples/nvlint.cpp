// nvlint: static netlist linter — rejects bad circuits before simulation.
//
// Usage:
//   nvlint [options] <netlist.cir>...
//   nvlint --rules
//
// Options:
//   --rules          print the rule catalog (id, default severity, summary)
//   --disable=<id>   disable a rule (repeatable)
//   --werror         exit nonzero on warnings as well as errors
//   --format=json    machine-readable output: a JSON array with one object
//                    per file {file, parse_failed, errors, warnings,
//                    diagnostics:[{rule, severity, file, line, message,
//                    device, node}]} (CI gates parse this)
//   -q, --quiet      print only the per-file summary lines
//
// Exit status: 0 clean, 1 lint errors (or warnings with --werror),
// 2 parse failure or unreadable file.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/linter.h"
#include "spice/netlist_parser.h"

namespace {

void print_rules() {
  std::cout << "nvlint rules:\n";
  for (const auto& rule : nvsram::lint::rule_catalog()) {
    std::cout << "  " << rule.id << " (" << to_string(rule.severity)
              << "): " << rule.summary << "\n";
  }
}

struct FileResult {
  bool parse_failed = false;
  std::size_t errors = 0;
  std::size_t warnings = 0;
};

// Minimal JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void print_json_diagnostic(std::ostream& os, const std::string& path,
                           const nvsram::lint::Diagnostic& d, bool first) {
  if (!first) os << ",";
  os << "\n      {\"rule\": \"" << json_escape(d.rule) << "\", \"severity\": \""
     << to_string(d.severity) << "\", \"file\": \"" << json_escape(path)
     << "\", \"line\": " << d.line << ", \"message\": \""
     << json_escape(d.message) << "\", \"device\": \"" << json_escape(d.device)
     << "\", \"node\": \"" << json_escape(d.node) << "\"}";
}

FileResult lint_file(const std::string& path,
                     const nvsram::lint::LintOptions& options, bool quiet,
                     bool json, bool first_file) {
  using namespace nvsram;
  FileResult result;

  auto json_header = [&](bool parse_failed) {
    if (!json) return;
    if (!first_file) std::cout << ",";
    std::cout << "\n  {\"file\": \"" << json_escape(path)
              << "\", \"parse_failed\": " << (parse_failed ? "true" : "false");
  };

  std::ifstream in(path);
  if (!in) {
    std::cerr << path << ": cannot open file\n";
    result.parse_failed = true;
    if (json) {
      json_header(true);
      std::cout << ", \"errors\": 0, \"warnings\": 0, \"diagnostics\": []}";
    }
    return result;
  }
  std::ostringstream ss;
  ss << in.rdbuf();

  spice::NetlistParser parser;
  std::unique_ptr<spice::ParsedNetlist> net;
  try {
    net = parser.parse(ss.str());
  } catch (const spice::NetlistError& e) {
    std::cerr << path << ":" << e.line() << ": parse-error: " << e.what()
              << "\n";
    result.parse_failed = true;
    if (json) {
      json_header(true);
      std::cout << ", \"errors\": 0, \"warnings\": 0, \"diagnostics\": []}";
    }
    return result;
  }

  const lint::LintReport report = net->lint(options);
  result.errors = report.count(lint::Severity::kError);
  result.warnings = report.count(lint::Severity::kWarning);
  if (json) {
    json_header(false);
    std::cout << ", \"errors\": " << result.errors
              << ", \"warnings\": " << result.warnings
              << ", \"diagnostics\": [";
    bool first = true;
    for (const auto& d : report.diagnostics()) {
      print_json_diagnostic(std::cout, path, d, first);
      first = false;
    }
    std::cout << (first ? "]" : "\n    ]") << "}";
    return result;
  }
  if (!quiet) {
    for (const auto& d : report.diagnostics()) {
      std::cout << path << ":" << (d.line >= 0 ? std::to_string(d.line) : "-")
                << ": " << to_string(d.severity) << "[" << d.rule
                << "]: " << d.message << "\n";
    }
  }
  std::cout << path << ": " << result.errors << " error(s), "
            << result.warnings << " warning(s), "
            << report.count(lint::Severity::kInfo) << " info(s)\n";
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  nvsram::lint::LintOptions options;
  std::vector<std::string> files;
  bool quiet = false;
  bool werror = false;
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rules") {
      print_rules();
      return 0;
    } else if (arg.rfind("--disable=", 0) == 0) {
      const std::string id = arg.substr(10);
      const auto& catalog = nvsram::lint::rule_catalog();
      const bool known =
          std::any_of(catalog.begin(), catalog.end(),
                      [&](const auto& rule) { return id == rule.id; });
      if (!known) {
        std::cerr << "nvlint: unknown rule id '" << id
                  << "' in --disable (see --rules)\n";
        return 2;
      }
      options.disable(id);
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg == "--format=json") {
      json = true;
    } else if (arg.rfind("--format=", 0) == 0) {
      std::cerr << "nvlint: unknown format '" << arg.substr(9)
                << "' (supported: json)\n";
      return 2;
    } else if (arg == "-q" || arg == "--quiet") {
      quiet = true;
    } else if (arg == "-h" || arg == "--help") {
      std::cout << "usage: nvlint [--rules] [--disable=<id>] [--werror] "
                   "[--format=json] [-q] <netlist.cir>...\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "nvlint: unknown option '" << arg << "'\n";
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::cerr << "usage: nvlint [--rules] [--disable=<id>] [--werror] "
                 "[--format=json] [-q] <netlist.cir>...\n";
    return 2;
  }

  bool any_parse_failed = false;
  std::size_t total_errors = 0;
  std::size_t total_warnings = 0;
  if (json) std::cout << "[";
  bool first_file = true;
  for (const auto& path : files) {
    const FileResult r = lint_file(path, options, quiet, json, first_file);
    first_file = false;
    any_parse_failed = any_parse_failed || r.parse_failed;
    total_errors += r.errors;
    total_warnings += r.warnings;
  }
  if (json) std::cout << "\n]\n";

  if (any_parse_failed) return 2;
  if (total_errors > 0) return 1;
  if (werror && total_warnings > 0) return 1;
  return 0;
}
