// Power-gating policy exploration on realistic idle-time distributions.
//
// The paper establishes the BET of an NVPG domain; a controller still has to
// decide, online, when to gate.  This example characterizes the cell, then
// pits the classic policies against each other on three workload shapes:
// memoryless (exponential), heavy-tailed (Pareto), and bursty (bimodal).
#include <iostream>

#include "core/analyzer.h"
#include "core/workload.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace nvsram;
  using core::GatingPolicy;
  using core::IdleWorkload;

  core::PowerGatingAnalyzer an(models::PaperParams::table1());
  core::BenchmarkParams params;
  params.n_rw = 100;
  params.rows = 256;  // 1 kB domain
  params.cols = 32;
  core::PolicyEvaluator eval(an.model(), params);

  std::cout << "NVPG gating policies on a 1 kB domain\n"
            << "Same-cell break-even time: " << util::si_format(eval.bet(), "s")
            << "\n\n";

  struct Scenario {
    const char* name;
    IdleWorkload workload;
  };
  const double bet = eval.bet();
  Scenario scenarios[] = {
      {"exponential idles, mean = BET/2",
       IdleWorkload::exponential(0.5 * bet, 2000, 1)},
      {"exponential idles, mean = 5 x BET",
       IdleWorkload::exponential(5.0 * bet, 2000, 2)},
      {"Pareto idles (heavy tail), x_m = BET/10, alpha = 1.3",
       IdleWorkload::pareto(0.1 * bet, 1.3, 2000, 3)},
      {"bimodal: 90% at BET/20, 10% at 50 x BET",
       IdleWorkload::bimodal(bet / 20.0, 50.0 * bet, 0.10, 2000, 4)},
  };

  for (const auto& s : scenarios) {
    std::cout << "--- " << s.name << " ---\n";
    util::TablePrinter t({"policy", "energy", "avg power", "gated", "slept",
                          "vs oracle"});
    const auto all = eval.compare(s.workload);
    const double oracle_energy = all[2].second.energy;
    for (const auto& [policy, r] : all) {
      t.row({core::to_string(policy), util::si_format(r.energy, "J"),
             util::si_format(r.average_power(), "W"),
             std::to_string(r.shutdowns), std::to_string(r.sleeps),
             util::si_format(r.energy / oracle_energy, "x", 3)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  std::cout
      << "Reading: the BET-timeout policy tracks the oracle within its 2x\n"
         "competitive bound on every distribution, while each pure policy\n"
         "loses badly on the workload shape it was not built for.  This is\n"
         "the operational content of the paper's break-even time.\n";
  return 0;
}
