// Shared helpers for the figure-reproduction bench binaries.
//
// Every bench prints the Table I parameter block, then the series of the
// figure it reproduces as aligned text tables, and writes a CSV next to the
// binary (./<name>.csv) for plotting.
#pragma once

#include <iostream>
#include <cstdio>
#include <string>
#include <vector>

#include "models/paper_params.h"
#include "runner/sweep_runner.h"
#include "sram/characterize.h"
#include "util/csv.h"
#include "util/table.h"
#include "util/units.h"

namespace nvsram::bench {

inline void print_header(const std::string& figure, const std::string& claim) {
  std::cout << "================================================================\n"
            << "Reproduction: " << figure << "\n"
            << "Paper claim:  " << claim << "\n"
            << "================================================================\n"
            << models::PaperParams::table1().describe() << "\n";
}

inline void print_footer(const std::string& csv_path) {
  std::cout << "\n[series written to " << csv_path << "]\n";
}

// Fixed-point ratio like "1.46x" (si_format would pick odd milli prefixes).
inline std::string ratio_fmt(double r, int digits = 2) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*fx", digits, r);
  return buf;
}

// Standard runner configuration for a figure sweep: checkpoint next to the
// CSV, NVSRAM_SWEEP_* environment overrides honored — fault/kill drills,
// timeout, thread count, and NVSRAM_SWEEP_ISOLATION=process to run the
// points on supervised worker subprocesses with crash quarantine (see
// runner/sweep_runner.h and docs/ROBUSTNESS.md).  A malformed override
// throws RunnerError out of main rather than silently degrading.
inline runner::RunnerOptions sweep_options(const std::string& runner_name,
                                           std::string csv_path,
                                           std::vector<std::string> columns) {
  runner::RunnerOptions opts;
  opts.csv_path = std::move(csv_path);
  opts.csv_columns = std::move(columns);
  opts.apply_env(runner_name);
  return opts;
}

// One-line sweep accounting printed after each runner finishes.
inline void print_sweep_summary(const runner::RunSummary& summary) {
  std::cout << summary.describe() << "\n";
}

// Recovery-ladder telemetry of one characterized cell, printed with the
// Table I block.  Zero is the healthy reading; a nonzero count means the
// characterization transients only converged through the gmin / source
// ramps, which is worth seeing in the bench log before trusting the
// figures built on top of those energies.
inline void print_characterization_telemetry(
    const std::string& label, const sram::CellEnergetics& cell) {
  std::cout << "[characterize " << label
            << "] solver recoveries: " << cell.solver_recoveries();
  if (cell.solver_recoveries() > 0) {
    std::cout << " (gmin " << cell.gmin_recoveries << ", source "
              << cell.source_recoveries << ")";
  }
  std::cout << "\n";
}

}  // namespace nvsram::bench
