// Shared helpers for the figure-reproduction bench binaries.
//
// Every bench prints the Table I parameter block, then the series of the
// figure it reproduces as aligned text tables, and writes a CSV next to the
// binary (./<name>.csv) for plotting.
#pragma once

#include <iostream>
#include <cstdio>
#include <string>

#include "models/paper_params.h"
#include "util/csv.h"
#include "util/table.h"
#include "util/units.h"

namespace nvsram::bench {

inline void print_header(const std::string& figure, const std::string& claim) {
  std::cout << "================================================================\n"
            << "Reproduction: " << figure << "\n"
            << "Paper claim:  " << claim << "\n"
            << "================================================================\n"
            << models::PaperParams::table1().describe() << "\n";
}

inline void print_footer(const std::string& csv_path) {
  std::cout << "\n[series written to " << csv_path << "]\n";
}

// Fixed-point ratio like "1.46x" (si_format would pick odd milli prefixes).
inline std::string ratio_fmt(double r, int digits = 2) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*fx", digits, r);
  return buf;
}

}  // namespace nvsram::bench
