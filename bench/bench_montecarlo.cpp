// Extension study: process-variation Monte Carlo on the NV-SRAM cell.
//
// Not a paper figure — the paper notes that the aggressive (1,1) fin sizing
// lowers stability and defers to bias-assist techniques; this bench
// quantifies the margin distributions that claim rests on.
#include <iostream>

#include "bench_common.h"
#include "sram/montecarlo.h"

int main() {
  using namespace nvsram;
  bench::print_header(
      "Monte-Carlo mismatch (extension)",
      "hold/read SNM and store-margin distributions of the (1,1,1,1) cell "
      "under Vth / kp / RA / Jc variation");

  const int kSamples = 60;
  util::CsvWriter csv("bench_montecarlo.csv",
                      {"vth_sigma_mv", "metric", "mean", "sigma", "min",
                       "yield"});

  util::print_banner(std::cout, "SNM and store margin vs Vth sigma");
  util::TablePrinter t({"Vth sigma", "metric", "mean", "sigma", "min",
                        "yield"});
  for (double vth_sigma : {0.01, 0.02, 0.03, 0.05}) {
    sram::VariationSpec spec;
    spec.vth_sigma = vth_sigma;

    struct Row {
      const char* metric;
      sram::MonteCarloSummary s;
      const char* unit;
    };
    sram::MonteCarlo mc1(models::PaperParams::table1(), spec);
    sram::MonteCarlo mc2(models::PaperParams::table1(), spec);
    sram::MonteCarlo mc3(models::PaperParams::table1(), spec);
    const Row rows[] = {
        {"hold SNM", mc1.hold_snm(kSamples), "V"},
        {"read SNM", mc2.read_snm(kSamples), "V"},
        {"store overdrive", mc3.store_margin(kSamples), "x Ic"},
    };
    for (const auto& row : rows) {
      t.row({util::si_format(vth_sigma, "V", 0), row.metric,
             util::si_format(row.s.stats.mean(), row.unit),
             util::si_format(row.s.stats.stddev(), row.unit),
             util::si_format(row.s.stats.min(), row.unit),
             bench::ratio_fmt(row.s.yield(), 3)});
      csv.row({vth_sigma * 1e3, static_cast<double>(row.metric[0]),
               row.s.stats.mean(), row.s.stats.stddev(), row.s.stats.min(),
               row.s.yield()});
    }
  }
  t.print(std::cout);
  std::cout << "\nReading: hold SNM stays healthy, but the read SNM tail is\n"
               "what forces the paper's word-line-underdrive caveat; store\n"
               "margins survive variation thanks to the 1.5 x Ic design "
               "point.\n";
  bench::print_footer("bench_montecarlo.csv");
  return 0;
}
