// Extension study: process-variation Monte Carlo on the NV-SRAM cell.
//
// Not a paper figure — the paper notes that the aggressive (1,1) fin sizing
// lowers stability and defers to bias-assist techniques; this bench
// quantifies the margin distributions that claim rests on.
//
// Each Vth-sigma point is hundreds of SPICE solves, so the sweep runs
// through runner::SweepRunner ("montecarlo"): a diverging sample is skipped
// and recorded instead of sinking the whole study, NVSRAM_SWEEP_TIMEOUT
// puts a wall-clock budget on every point, and the four sigma points fan
// out over the worker pool (each point builds its own MonteCarlo engines,
// so the callback is thread-safe; see docs/ROBUSTNESS.md).  Under
// NVSRAM_SWEEP_ISOLATION=process each point runs in a supervised worker
// subprocess, so even a crashing or wedged sample batch is contained,
// quarantined as `poison`, and the rest of the study completes.
#include <array>
#include <iostream>

#include "bench_common.h"
#include "sram/montecarlo.h"

int main() {
  using namespace nvsram;
  bench::print_header(
      "Monte-Carlo mismatch (extension)",
      "hold/read SNM and store-margin distributions of the (1,1,1,1) cell "
      "under Vth / kp / RA / Jc variation");

  const int kSamples = 60;
  const std::array<double, 4> sigmas{0.01, 0.02, 0.03, 0.05};
  // Row order within each point; metric[0] doubles as the CSV tag.
  const std::array<const char*, 3> metrics{"hold SNM", "read SNM",
                                           "store overdrive"};
  const std::array<const char*, 3> units{"V", "V", "x Ic"};

  runner::SweepRunner run(
      "montecarlo",
      bench::sweep_options("montecarlo", "bench_montecarlo.csv",
                           {"vth_sigma_mv", "metric", "mean", "sigma", "min",
                            "yield"}));
  const auto summary =
      run.run(sigmas.size(), [&](const runner::PointContext& pc) {
        sram::VariationSpec spec;
        spec.vth_sigma = sigmas[pc.index];
        // Retry of a failed point re-runs with looser shared tolerances.
        spec.relax_attempt = pc.attempt;
        sram::MonteCarlo mc1(models::PaperParams::table1(), spec);
        sram::MonteCarlo mc2(models::PaperParams::table1(), spec);
        sram::MonteCarlo mc3(models::PaperParams::table1(), spec);
        const std::array<sram::MonteCarloSummary, 3> s{
            mc1.hold_snm(kSamples), mc2.read_snm(kSamples),
            mc3.store_margin(kSamples)};
        runner::Rows rows;
        for (std::size_t m = 0; m < s.size(); ++m) {
          rows.push_back({sigmas[pc.index] * 1e3,
                          static_cast<double>(metrics[m][0]),
                          s[m].stats.mean(), s[m].stats.stddev(),
                          s[m].stats.min(), s[m].yield()});
        }
        return rows;
      });

  util::print_banner(std::cout, "SNM and store margin vs Vth sigma");
  util::TablePrinter t({"Vth sigma", "metric", "mean", "sigma", "min",
                        "yield"});
  for (std::size_t i = 0; i < sigmas.size(); ++i) {
    if (!summary.point_ok(i)) {
      t.row({util::si_format(sigmas[i], "V", 0), "(all)", "FAILED", "FAILED",
             "FAILED", "FAILED"});
      continue;
    }
    for (std::size_t m = 0; m < metrics.size(); ++m) {
      const auto& r = summary.rows[i][m];
      t.row({util::si_format(sigmas[i], "V", 0), metrics[m],
             util::si_format(r[2], units[m]), util::si_format(r[3], units[m]),
             util::si_format(r[4], units[m]), bench::ratio_fmt(r[5], 3)});
    }
  }
  t.print(std::cout);
  bench::print_sweep_summary(summary);
  std::cout << "\nReading: hold SNM stays healthy, but the read SNM tail is\n"
               "what forces the paper's word-line-underdrive caveat; store\n"
               "margins survive variation thanks to the 1.5 x Ic design "
               "point.\n";
  bench::print_footer("bench_montecarlo.csv");
  return 0;
}
