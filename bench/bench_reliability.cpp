// Extension study: MTJ reliability of the store/restore design point.
//
// The paper fixes a 10 ns store at 1.5 x Ic and remarks that "the store time
// cannot be easily reduced to suppress the error rate of CIMS".  This bench
// quantifies that: write error rate at the ACTUAL simulated store currents,
// read/restore disturb probabilities, and retention across the thermal
// stability range of Table I-class MTJs.
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "sram/characterize.h"

int main() {
  using namespace nvsram;
  bench::print_header(
      "MTJ reliability (extension)",
      "WER of the 1.5 x Ic / 10 ns store point; restore disturb; retention");

  const auto pp = models::PaperParams::table1();
  const models::MTJ mtj(pp.mtj);
  sram::CellCharacterizer ch(pp);

  // Actual store currents at the Table I biases.
  const double i_h = ch.store_current_vs_vsr({pp.vsr})[0].second;
  const double i_l = ch.store_current_vs_vctrl({pp.vctrl_store})[0].second;

  util::print_banner(std::cout, "Write error rate vs store pulse width");
  std::cout << "simulated store currents: H-store "
            << util::si_format(i_h, "A") << " ("
            << bench::ratio_fmt(i_h / pp.mtj.critical_current())
            << " Ic), L-store " << util::si_format(i_l, "A") << " ("
            << bench::ratio_fmt(i_l / pp.mtj.critical_current()) << " Ic)\n";
  util::TablePrinter t1({"pulse", "WER (H-store)", "WER (L-store)"});
  util::CsvWriter csv1("bench_reliability_wer.csv",
                       {"pulse", "wer_h", "wer_l"});
  for (double pulse : {6e-9, 8e-9, 10e-9, 12e-9, 15e-9, 20e-9}) {
    const double wer_h =
        mtj.write_error_rate(models::MtjState::kParallel, -i_h, pulse);
    const double wer_l =
        mtj.write_error_rate(models::MtjState::kAntiparallel, i_l, pulse);
    t1.row({util::si_format(pulse, "s", 0), util::sci_format(wer_h, 2),
            util::sci_format(wer_l, 2)});
    csv1.row({pulse, wer_h, wer_l});
  }
  t1.print(std::cout);

  util::print_banner(std::cout, "Restore / read disturb");
  util::TablePrinter t2({"scenario", "current / Ic", "duration", "P(disturb)"});
  struct Row {
    const char* name;
    double frac;
    double dur;
  };
  for (const Row& r : {Row{"restore pull-down", 0.35, 2e-9},
                       Row{"long restore tail", 0.20, 10e-9},
                       Row{"pathological DC leak", 0.50, 1e-3}}) {
    const double p = mtj.disturb_probability(
        models::MtjState::kAntiparallel, r.frac * pp.mtj.critical_current(),
        r.dur);
    t2.row({r.name, bench::ratio_fmt(r.frac), util::si_format(r.dur, "s", 0),
            util::sci_format(p, 2)});
  }
  t2.print(std::cout);

  util::print_banner(std::cout, "Retention vs thermal stability");
  util::TablePrinter t3({"Delta", "retention", "10-year spec"});
  util::CsvWriter csv3("bench_reliability_retention.csv",
                       {"delta", "retention_s"});
  for (double delta : {35.0, 40.0, 45.0, 50.0, 60.0, 70.0}) {
    auto p = pp.mtj;
    p.thermal_stability = delta;
    const models::MTJ m(p);
    const double ret = m.retention_time();
    t3.row({util::si_format(delta, "", 0), util::si_format(ret, "s", 1),
            ret > 3.15e8 ? "pass" : "FAIL"});
    csv3.row({delta, ret});
  }
  t3.print(std::cout);
  std::cout << "\n(Delta >= ~40 meets the 10-year retention bar; Table I\n"
               " class perpendicular MTJs are quoted at Delta ~ 60)\n";

  bench::print_footer("bench_reliability_*.csv");
  return 0;
}
