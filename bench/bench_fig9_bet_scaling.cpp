// Fig. 9 reproduction: BET vs domain size N.
//   (a) Table I technology (300 MHz, Jc = 5e6 A/cm^2): BET vs N for n_RW in
//       {10, 100, 1000}, with and without store-free shutdown
//   (b) fast technology (1 GHz, Jc = 1e6 A/cm^2): much shorter BET / larger
//       feasible domains even without store-free shutdown
//
// All four tables share one CSV, so the whole figure is one SweepRunner
// sweep ("fig9") over the flattened (tech, store_free, N) grid; failed
// points land in bench_fig9.csv.failures.csv and interrupted runs resume
// from the checkpoint (see docs/ROBUSTNESS.md).  Points are independent, so
// the sweep fans out over the worker pool (NVSRAM_SWEEP_THREADS) — or over
// supervised worker subprocesses (NVSRAM_SWEEP_ISOLATION=process) — with
// byte-identical output at any pool size or isolation mode.
#include <array>
#include <iostream>
#include <optional>

#include "bench_common.h"
#include "core/analyzer.h"

int main() {
  using namespace nvsram;
  using core::Architecture;
  using core::BenchmarkParams;

  bench::print_header(
      "Fig. 9 — BET vs domain size N",
      "BET grows with N and n_RW; store-free shutdown cuts it to a few us; "
      "the 1 GHz / low-Jc technology shortens BET further");

  // Options first: the per-point watchdog budget also covers the SPICE
  // characterization of the two technologies below.
  runner::RunnerOptions opts = bench::sweep_options(
      "fig9", "bench_fig9.csv",
      {"tech", "store_free", "rows", "bet_nrw10", "bet_nrw100", "bet_nrw1000"});

  // Both technologies are characterized up front; sweep points only evaluate
  // the closed-form BET on top of them.
  const std::array<core::PowerGatingAnalyzer, 2> tech{
      core::PowerGatingAnalyzer(models::PaperParams::table1(),
                                opts.point_timeout_sec),
      core::PowerGatingAnalyzer(models::PaperParams::table1_fast(),
                                opts.point_timeout_sec)};
  bench::print_characterization_telemetry("Table I / 6T", tech[0].cell_6t());
  bench::print_characterization_telemetry("Table I / NV-SRAM",
                                          tech[0].cell_nv());
  bench::print_characterization_telemetry("fast / 6T", tech[1].cell_6t());
  bench::print_characterization_telemetry("fast / NV-SRAM",
                                          tech[1].cell_nv());

  const std::vector<int> row_grid{32, 64, 128, 256, 512, 1024, 2048};
  // Series order matches the printed tables: (tech, store_free) major,
  // N minor.
  struct Series {
    std::size_t tech;
    bool store_free;
    const char* title;
  };
  const std::array<Series, 4> series{{
      {0, false, "Fig. 9(a): Table I technology, with store"},
      {0, true, "Fig. 9(a): Table I technology, store-free shutdown"},
      {1, false, "Fig. 9(b): fast technology, with store"},
      {1, true, "Fig. 9(b): fast technology, store-free shutdown"},
  }};

  runner::SweepRunner run("fig9", opts);
  const auto summary = run.run(
      series.size() * row_grid.size(), [&](const runner::PointContext& pc) {
        const Series& s = series[pc.index / row_grid.size()];
        BenchmarkParams base;
        base.rows = row_grid[pc.index % row_grid.size()];
        base.cols = 32;
        base.t_sl = 100e-9;
        base.store_free_shutdown = s.store_free;
        std::vector<double> row{static_cast<double>(s.tech),
                                s.store_free ? 1.0 : 0.0,
                                static_cast<double>(base.rows)};
        for (int n_rw : {10, 100, 1000}) {
          base.n_rw = n_rw;
          const auto bet =
              tech[s.tech].model().break_even_time(Architecture::kNVPG, base);
          row.push_back(bet ? *bet : -1.0);
        }
        return runner::Rows{row};
      });

  for (std::size_t s = 0; s < series.size(); ++s) {
    if (s == 2) {
      std::cout << "\n[fast technology: clock = 1 GHz, Jc = 1e6 A/cm^2, "
                   "rescaled store biases]\n";
    }
    util::print_banner(std::cout, series[s].title);
    util::TablePrinter t(
        {"N", "domain", "BET (n_RW=10)", "BET (n_RW=100)", "BET (n_RW=1000)"});
    for (std::size_t i = 0; i < row_grid.size(); ++i) {
      const std::size_t point = s * row_grid.size() + i;
      BenchmarkParams base;
      base.rows = row_grid[i];
      base.cols = 32;
      if (!summary.point_ok(point)) {
        t.row({std::to_string(row_grid[i]),
               util::si_format(base.domain_bytes(), "B", 0), "FAILED", "FAILED",
               "FAILED"});
        continue;
      }
      const auto& r = summary.rows[point].front();
      std::vector<std::string> cells{
          std::to_string(row_grid[i]),
          util::si_format(base.domain_bytes(), "B", 0)};
      for (std::size_t k = 3; k < r.size(); ++k) {
        cells.push_back(r[k] >= 0.0 ? util::si_format(r[k], "s") : "never");
      }
      t.row(cells);
    }
    t.print(std::cout);
  }
  bench::print_sweep_summary(summary);

  bench::print_footer("bench_fig9.csv");
  return 0;
}
