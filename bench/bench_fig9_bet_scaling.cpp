// Fig. 9 reproduction: BET vs domain size N.
//   (a) Table I technology (300 MHz, Jc = 5e6 A/cm^2): BET vs N for n_RW in
//       {10, 100, 1000}, with and without store-free shutdown
//   (b) fast technology (1 GHz, Jc = 1e6 A/cm^2): much shorter BET / larger
//       feasible domains even without store-free shutdown
#include <iostream>

#include "bench_common.h"
#include "core/analyzer.h"

namespace {

using namespace nvsram;
using core::Architecture;
using core::BenchmarkParams;

void bet_table(const core::PowerGatingAnalyzer& an, const char* title,
               bool store_free, util::CsvWriter& csv, double tech_tag) {
  util::print_banner(std::cout, title);
  const std::vector<int> rows{32, 64, 128, 256, 512, 1024, 2048};
  util::TablePrinter t(
      {"N", "domain", "BET (n_RW=10)", "BET (n_RW=100)", "BET (n_RW=1000)"});
  for (int r : rows) {
    std::vector<std::string> cells;
    BenchmarkParams base;
    base.rows = r;
    base.cols = 32;
    base.t_sl = 100e-9;
    base.store_free_shutdown = store_free;
    cells.push_back(std::to_string(r));
    cells.push_back(util::si_format(base.domain_bytes(), "B", 0));
    std::vector<double> row_csv{tech_tag, store_free ? 1.0 : 0.0,
                                static_cast<double>(r)};
    for (int n_rw : {10, 100, 1000}) {
      base.n_rw = n_rw;
      const auto bet = an.model().break_even_time(Architecture::kNVPG, base);
      cells.push_back(bet ? util::si_format(*bet, "s") : "never");
      row_csv.push_back(bet ? *bet : -1.0);
    }
    t.row(cells);
    csv.row(row_csv);
  }
  t.print(std::cout);
}

}  // namespace

int main() {
  using namespace nvsram;
  bench::print_header(
      "Fig. 9 — BET vs domain size N",
      "BET grows with N and n_RW; store-free shutdown cuts it to a few us; "
      "the 1 GHz / low-Jc technology shortens BET further");

  util::CsvWriter csv("bench_fig9.csv",
                      {"tech", "store_free", "rows", "bet_nrw10", "bet_nrw100",
                       "bet_nrw1000"});

  {
    core::PowerGatingAnalyzer an(models::PaperParams::table1());
    bet_table(an, "Fig. 9(a): Table I technology, with store", false, csv, 0.0);
    bet_table(an, "Fig. 9(a): Table I technology, store-free shutdown", true,
              csv, 0.0);
  }
  {
    core::PowerGatingAnalyzer an(models::PaperParams::table1_fast());
    std::cout << "\n[fast technology: clock = 1 GHz, Jc = 1e6 A/cm^2, "
                 "rescaled store biases]\n";
    bet_table(an, "Fig. 9(b): fast technology, with store", false, csv, 1.0);
    bet_table(an, "Fig. 9(b): fast technology, store-free shutdown", true, csv,
              1.0);
  }

  bench::print_footer("bench_fig9.csv");
  return 0;
}
