// Fig. 7 reproduction: per-cell benchmark-cycle energy E_cyc vs n_RW.
//   (a) t_SD = 0, t_SL swept 0 .. 1 us       — NVPG converges to OSR
//   (b) M = 32, N swept 32 .. 2048           — large-domain crossover vs NOF
//   (c) t_SD swept 10 us .. 10 ms            — nonlinear n_RW dependence
#include <iostream>

#include "bench_common.h"
#include "core/analyzer.h"

namespace {

using namespace nvsram;
using core::Architecture;
using core::BenchmarkParams;

const std::vector<int> kNrwGrid{1, 3, 10, 30, 100, 300, 1000, 3000, 10000};

void print_series(const core::PowerGatingAnalyzer& an, const char* title,
                  const BenchmarkParams& base, util::CsvWriter& csv,
                  double tag) {
  util::print_banner(std::cout, title);
  util::TablePrinter t({"n_RW", "E_cyc OSR", "E_cyc NVPG", "E_cyc NOF",
                        "NVPG/OSR", "NOF/OSR"});
  const auto osr = an.ecyc_vs_nrw(Architecture::kOSR, kNrwGrid, base);
  const auto nvpg = an.ecyc_vs_nrw(Architecture::kNVPG, kNrwGrid, base);
  const auto nof = an.ecyc_vs_nrw(Architecture::kNOF, kNrwGrid, base);
  for (std::size_t i = 0; i < kNrwGrid.size(); ++i) {
    t.row({std::to_string(kNrwGrid[i]), util::si_format(osr[i].second, "J"),
           util::si_format(nvpg[i].second, "J"),
           util::si_format(nof[i].second, "J"),
           util::si_format(nvpg[i].second / osr[i].second, "", 3),
           util::si_format(nof[i].second / osr[i].second, "", 3)});
    csv.row({tag, static_cast<double>(kNrwGrid[i]), osr[i].second,
             nvpg[i].second, nof[i].second});
  }
  t.print(std::cout);
}

}  // namespace

int main() {
  using namespace nvsram;
  bench::print_header(
      "Fig. 7 — E_cyc per cell vs n_RW",
      "NVPG E_cyc approaches OSR as n_RW grows; NOF rises monotonically above "
      "OSR; large domains briefly favour NOF at tiny n_RW");

  core::PowerGatingAnalyzer an(models::PaperParams::table1());

  // ---- (a): t_SD = 0, t_SL in {0, 100 ns, 1 us} ----
  util::CsvWriter csv_a("bench_fig7a.csv",
                        {"t_sl", "n_rw", "e_osr", "e_nvpg", "e_nof"});
  for (double t_sl : {0.0, 100e-9, 1e-6}) {
    BenchmarkParams base;
    base.t_sl = t_sl;
    base.t_sd = 0.0;
    std::string title = "Fig. 7(a): t_SD = 0, t_SL = " +
                        util::si_format(t_sl, "s", 0);
    print_series(an, title.c_str(), base, csv_a, t_sl);
  }

  // ---- (b): M = 32, N in {32 .. 2048}, t_SL = 100 ns ----
  util::CsvWriter csv_b("bench_fig7b.csv",
                        {"rows", "n_rw", "e_osr", "e_nvpg", "e_nof"});
  for (int rows : {32, 256, 2048}) {
    BenchmarkParams base;
    base.t_sl = 100e-9;
    base.t_sd = 0.0;
    base.rows = rows;
    base.cols = 32;
    std::string title = "Fig. 7(b): N = " + std::to_string(rows) + " (" +
                        util::si_format(base.domain_bytes(), "B", 0) +
                        " domain), t_SL = 100 ns";
    print_series(an, title.c_str(), base, csv_b, rows);
  }

  // ---- (c): t_SD in {10 us, 100 us, 1 ms, 10 ms} ----
  util::CsvWriter csv_c("bench_fig7c.csv",
                        {"t_sd", "n_rw", "e_osr", "e_nvpg", "e_nof"});
  for (double t_sd : {10e-6, 100e-6, 1e-3, 10e-3}) {
    BenchmarkParams base;
    base.t_sl = 100e-9;
    base.t_sd = t_sd;
    std::string title =
        "Fig. 7(c): t_SD = " + util::si_format(t_sd, "s", 0) + ", t_SL = 100 ns";
    print_series(an, title.c_str(), base, csv_c, t_sd);
  }

  bench::print_footer("bench_fig7{a,b,c}.csv");
  return 0;
}
