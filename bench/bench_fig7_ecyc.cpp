// Fig. 7 reproduction: per-cell benchmark-cycle energy E_cyc vs n_RW.
//   (a) t_SD = 0, t_SL swept 0 .. 1 us       — NVPG converges to OSR
//   (b) M = 32, N swept 32 .. 2048           — large-domain crossover vs NOF
//   (c) t_SD swept 10 us .. 10 ms            — nonlinear n_RW dependence
//
// Each subfigure is one runner::SweepRunner sweep ("fig7a".."fig7c") over
// the flattened (series, n_RW) grid: failed points are skipped and recorded
// in bench_fig7*.csv.failures.csv, interrupted sweeps resume from their
// checkpoint, and independent points fan out over the worker pool
// (NVSRAM_SWEEP_THREADS) — or, with NVSRAM_SWEEP_ISOLATION=process, over
// supervised worker subprocesses that contain even a segfaulting or hung
// point — with byte-identical output either way (see docs/ROBUSTNESS.md).
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/analyzer.h"

namespace {

using namespace nvsram;
using core::Architecture;
using core::BenchmarkParams;

const std::vector<int> kNrwGrid{1, 3, 10, 30, 100, 300, 1000, 3000, 10000};

// Runs one subfigure: the flattened (series x n_RW) sweep through the
// runner, then one table per series from the collected rows.
void run_subfigure(const core::PowerGatingAnalyzer& an,
                   const std::string& runner_name, const std::string& csv_path,
                   const std::vector<std::string>& columns,
                   const std::vector<double>& tags,
                   const std::vector<BenchmarkParams>& series_base,
                   const std::vector<std::string>& titles) {
  runner::SweepRunner run(
      runner_name, bench::sweep_options(runner_name, csv_path, columns));
  const auto summary = run.run(
      tags.size() * kNrwGrid.size(), [&](const runner::PointContext& pc) {
        BenchmarkParams p = series_base[pc.index / kNrwGrid.size()];
        p.n_rw = kNrwGrid[pc.index % kNrwGrid.size()];
        return runner::Rows{{tags[pc.index / kNrwGrid.size()],
                             static_cast<double>(p.n_rw),
                             an.model().e_cyc(Architecture::kOSR, p),
                             an.model().e_cyc(Architecture::kNVPG, p),
                             an.model().e_cyc(Architecture::kNOF, p)}};
      });

  for (std::size_t s = 0; s < tags.size(); ++s) {
    util::print_banner(std::cout, titles[s]);
    util::TablePrinter t({"n_RW", "E_cyc OSR", "E_cyc NVPG", "E_cyc NOF",
                          "NVPG/OSR", "NOF/OSR"});
    for (std::size_t i = 0; i < kNrwGrid.size(); ++i) {
      const std::size_t point = s * kNrwGrid.size() + i;
      if (!summary.point_ok(point)) {
        t.row({std::to_string(kNrwGrid[i]), "FAILED", "FAILED", "FAILED",
               "FAILED", "FAILED"});
        continue;
      }
      const auto& r = summary.rows[point].front();
      t.row({std::to_string(kNrwGrid[i]), util::si_format(r[2], "J"),
             util::si_format(r[3], "J"), util::si_format(r[4], "J"),
             util::si_format(r[3] / r[2], "", 3),
             util::si_format(r[4] / r[2], "", 3)});
    }
    t.print(std::cout);
  }
  bench::print_sweep_summary(summary);
}

}  // namespace

int main() {
  using namespace nvsram;
  bench::print_header(
      "Fig. 7 — E_cyc per cell vs n_RW",
      "NVPG E_cyc approaches OSR as n_RW grows; NOF rises monotonically above "
      "OSR; large domains briefly favour NOF at tiny n_RW");

  // The per-point watchdog budget (NVSRAM_SWEEP_TIMEOUT) also covers the
  // up-front SPICE characterization the sweeps share.
  runner::RunnerOptions probe;
  probe.apply_env("fig7");
  core::PowerGatingAnalyzer an(models::PaperParams::table1(),
                               probe.point_timeout_sec);
  bench::print_characterization_telemetry("6T", an.cell_6t());
  bench::print_characterization_telemetry("NV-SRAM", an.cell_nv());

  // ---- (a): t_SD = 0, t_SL in {0, 100 ns, 1 us} ----
  {
    std::vector<double> tags;
    std::vector<BenchmarkParams> bases;
    std::vector<std::string> titles;
    for (double t_sl : {0.0, 100e-9, 1e-6}) {
      BenchmarkParams base;
      base.t_sl = t_sl;
      base.t_sd = 0.0;
      tags.push_back(t_sl);
      bases.push_back(base);
      titles.push_back("Fig. 7(a): t_SD = 0, t_SL = " +
                       util::si_format(t_sl, "s", 0));
    }
    run_subfigure(an, "fig7a", "bench_fig7a.csv",
                  {"t_sl", "n_rw", "e_osr", "e_nvpg", "e_nof"}, tags, bases,
                  titles);
  }

  // ---- (b): M = 32, N in {32 .. 2048}, t_SL = 100 ns ----
  {
    std::vector<double> tags;
    std::vector<BenchmarkParams> bases;
    std::vector<std::string> titles;
    for (int rows : {32, 256, 2048}) {
      BenchmarkParams base;
      base.t_sl = 100e-9;
      base.t_sd = 0.0;
      base.rows = rows;
      base.cols = 32;
      tags.push_back(rows);
      bases.push_back(base);
      titles.push_back("Fig. 7(b): N = " + std::to_string(rows) + " (" +
                       util::si_format(base.domain_bytes(), "B", 0) +
                       " domain), t_SL = 100 ns");
    }
    run_subfigure(an, "fig7b", "bench_fig7b.csv",
                  {"rows", "n_rw", "e_osr", "e_nvpg", "e_nof"}, tags, bases,
                  titles);
  }

  // ---- (c): t_SD in {10 us, 100 us, 1 ms, 10 ms} ----
  {
    std::vector<double> tags;
    std::vector<BenchmarkParams> bases;
    std::vector<std::string> titles;
    for (double t_sd : {10e-6, 100e-6, 1e-3, 10e-3}) {
      BenchmarkParams base;
      base.t_sl = 100e-9;
      base.t_sd = t_sd;
      tags.push_back(t_sd);
      bases.push_back(base);
      titles.push_back("Fig. 7(c): t_SD = " + util::si_format(t_sd, "s", 0) +
                       ", t_SL = 100 ns");
    }
    run_subfigure(an, "fig7c", "bench_fig7c.csv",
                  {"t_sd", "n_rw", "e_osr", "e_nvpg", "e_nof"}, tags, bases,
                  titles);
  }

  bench::print_footer("bench_fig7{a,b,c}.csv");
  return 0;
}
