// Fig. 6 reproduction:
//   (a,b) time evolution of power for the 6T cell (OSR sequence) and the
//         NV-SRAM cell (NVPG and NOF sequences), showing the NOF cycle-time
//         stretch, and
//   (c)   static power per mode (normal / sleep / shutdown with super
//         cutoff) for both cells.
#include <iostream>

#include "bench_common.h"
#include "core/analyzer.h"
#include "sram/testbench.h"

namespace {

using namespace nvsram;

// Runs a compressed benchmark sequence and prints per-phase average power.
void trace(const char* title, sram::CellKind kind, bool nvpg_sequence,
           const std::string& csv_path) {
  const auto pp = models::PaperParams::table1();
  sram::CellTestbench tb(kind, pp);

  // Two read/write iterations with a short sleep, then (NV only) store ->
  // shutdown -> restore; OSR sleeps instead.
  tb.op_write(true);
  tb.op_read();
  tb.op_write(false);
  tb.op_read();
  tb.op_sleep(50e-9);
  if (kind == sram::CellKind::kNvSram && nvpg_sequence) {
    tb.op_store();
    tb.op_shutdown(500e-9);
    tb.op_restore();
    tb.op_idle(2e-9);
  } else {
    tb.op_sleep(500e-9);
    tb.op_idle(2e-9);
  }
  auto res = tb.run();

  util::print_banner(std::cout, title);
  util::TablePrinter t({"phase", "t0", "duration", "energy", "avg power"});
  for (const auto& ph : res.phases) {
    t.row({ph.name, util::si_format(ph.t0, "s"),
           util::si_format(ph.duration(), "s"),
           util::si_format(res.energy(ph), "J"),
           util::si_format(res.average_power(ph.t0, ph.t1), "W")});
  }
  t.print(std::cout);
  res.wave.write_csv(csv_path);
}

}  // namespace

int main() {
  using namespace nvsram;
  bench::print_header(
      "Fig. 6 — power-vs-time traces and per-mode static power",
      "NVPG keeps 6T-speed accesses and adds only a bounded store burst; NOF "
      "pays a store burst every write; super cutoff crushes shutdown power");

  trace("Fig. 6(a): 6T-SRAM cell, OSR sequence", sram::CellKind::k6T, false,
        "bench_fig6_osr.csv");
  trace("Fig. 6(a): NV-SRAM cell, NVPG sequence", sram::CellKind::kNvSram, true,
        "bench_fig6_nvpg.csv");

  // ---- NOF slowdown (Fig. 6(b) message) ----
  core::PowerGatingAnalyzer analyzer(models::PaperParams::table1());
  core::BenchmarkParams p;
  p.n_rw = 100;
  p.t_sl = 0.0;
  util::print_banner(std::cout, "Fig. 6(b): effective cycle-time ratio vs OSR");
  util::TablePrinter tb2({"architecture", "cycle-time ratio"});
  for (auto a : {core::Architecture::kNVPG, core::Architecture::kNOF}) {
    tb2.row({core::to_string(a),
             bench::ratio_fmt(analyzer.cycle_time_ratio(a, p))});
  }
  tb2.print(std::cout);

  // ---- Fig. 6(c): static power per mode ----
  util::print_banner(std::cout, "Fig. 6(c): static power per mode");
  util::TablePrinter t({"cell", "normal", "sleep (0.7 V)", "shutdown (SC)"});
  util::CsvWriter csv("bench_fig6c.csv",
                      {"cell", "p_normal", "p_sleep", "p_shutdown"});
  const auto& c6 = analyzer.cell_6t();
  const auto& cn = analyzer.cell_nv();
  t.row({"6T-SRAM", util::si_format(c6.p_static_normal, "W"),
         util::si_format(c6.p_static_sleep, "W"),
         util::si_format(c6.p_static_shutdown, "W")});
  t.row({"NV-SRAM", util::si_format(cn.p_static_normal, "W"),
         util::si_format(cn.p_static_sleep, "W"),
         util::si_format(cn.p_static_shutdown, "W")});
  csv.row({0.0, c6.p_static_normal, c6.p_static_sleep, c6.p_static_shutdown});
  csv.row({1.0, cn.p_static_normal, cn.p_static_sleep, cn.p_static_shutdown});
  t.print(std::cout);

  bench::print_footer("bench_fig6_{osr,nvpg}.csv, bench_fig6c.csv");
  return 0;
}
