// Fig. 4 reproduction: virtual-VDD voltage vs the power-switch fin count
// N_FSW, during the normal operation and store operation modes.
#include <iostream>

#include "bench_common.h"
#include "sram/characterize.h"

int main() {
  using namespace nvsram;
  bench::print_header(
      "Fig. 4 — VV_DD vs power-switch fin number N_FSW",
      "store-mode droop shrinks with N_FSW; N_FSW = 7 keeps VV_DD at ~97% of "
      "VDD so the hypothetical switch does not mask the architecture study");

  const auto pp = models::PaperParams::table1();
  sram::CellCharacterizer ch(pp);
  const auto points = ch.vvdd_vs_switch_fins({1, 2, 3, 4, 5, 6, 7, 8, 10, 12});

  util::TablePrinter t({"N_FSW", "VVDD (normal)", "VVDD (store)", "store %VDD"});
  util::CsvWriter csv("bench_fig4.csv", {"fins", "vvdd_normal", "vvdd_store"});
  for (const auto& p : points) {
    t.row({std::to_string(p.fins), util::si_format(p.vvdd_normal, "V"),
           util::si_format(p.vvdd_store, "V"),
           util::si_format(100.0 * p.vvdd_store / pp.vdd, "%", 1)});
    csv.row({static_cast<double>(p.fins), p.vvdd_normal, p.vvdd_store});
  }
  t.print(std::cout);
  bench::print_footer("bench_fig4.csv");
  return 0;
}
