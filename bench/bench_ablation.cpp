// Ablation studies on the design choices DESIGN.md calls out:
//   1. store pulse duration vs switching success and store energy
//   2. MTJ switching-dynamics time scale tau0 sensitivity
//   3. V_CTRL leakage control on/off -> static power -> BET
//   4. power-switch threshold (HP vs MTCMOS high-Vth) -> shutdown power -> BET
#include <iostream>

#include "bench_common.h"
#include "core/analyzer.h"
#include "sram/characterize.h"

namespace {

using namespace nvsram;

void ablate_store_pulse() {
  util::print_banner(std::cout,
                     "Ablation 1: store pulse duration (Table I uses 10 ns)");
  util::TablePrinter t({"pulse", "store ok", "restore ok", "E_store"});
  util::CsvWriter csv("bench_ablation_pulse.csv",
                      {"pulse", "store_ok", "e_store"});
  for (double pulse : {2e-9, 4e-9, 6e-9, 8e-9, 10e-9, 14e-9}) {
    auto pp = models::PaperParams::table1();
    pp.store_pulse = pulse;
    sram::CellCharacterizer ch(pp);
    const auto nv = ch.characterize(sram::CellKind::kNvSram);
    t.row({util::si_format(pulse, "s", 0), nv.store_verified ? "yes" : "NO",
           nv.restore_verified ? "yes" : "NO",
           util::si_format(nv.e_store, "J")});
    csv.row({pulse, nv.store_verified ? 1.0 : 0.0, nv.e_store});
  }
  t.print(std::cout);
  std::cout << "(sub-t_sw pulses fail to switch: the paper's point that the\n"
               " store time cannot be shortened freely at fixed current)\n";
}

void ablate_tau0() {
  util::print_banner(std::cout,
                     "Ablation 2: MTJ dynamics tau0 (model closure, 3 ns)");
  util::TablePrinter t({"tau0", "t_sw @1.5Ic", "store ok"});
  util::CsvWriter csv("bench_ablation_tau0.csv", {"tau0", "tsw", "store_ok"});
  for (double tau0 : {1e-9, 2e-9, 3e-9, 4e-9, 6e-9}) {
    auto pp = models::PaperParams::table1();
    pp.mtj.tau0 = tau0;
    const models::MTJ mtj(pp.mtj);
    const double tsw = mtj.switching_time(
        models::MtjState::kParallel,
        -pp.store_current_factor * pp.mtj.critical_current());
    sram::CellCharacterizer ch(pp);
    const auto nv = ch.characterize(sram::CellKind::kNvSram);
    t.row({util::si_format(tau0, "s", 0), util::si_format(tsw, "s"),
           nv.store_verified ? "yes" : "NO"});
    csv.row({tau0, tsw, nv.store_verified ? 1.0 : 0.0});
  }
  t.print(std::cout);
}

void ablate_vctrl() {
  util::print_banner(
      std::cout, "Ablation 3: V_CTRL leakage control (0.07 V vs grounded)");
  util::TablePrinter t({"V_CTRL", "P_normal(NV)", "BET (n_RW=100)"});
  util::CsvWriter csv("bench_ablation_vctrl.csv",
                      {"vctrl", "p_normal", "bet"});
  for (double vctrl : {0.0, 0.04, 0.07, 0.12}) {
    auto pp = models::PaperParams::table1();
    pp.vctrl_normal = vctrl;
    core::PowerGatingAnalyzer an(pp);
    core::BenchmarkParams base;
    base.n_rw = 100;
    base.t_sl = 100e-9;
    const auto bet = an.model().break_even_time(core::Architecture::kNVPG, base);
    t.row({util::si_format(vctrl, "V", 2),
           util::si_format(an.cell_nv().p_static_normal, "W"),
           bet ? util::si_format(*bet, "s") : "never"});
    csv.row({vctrl, an.cell_nv().p_static_normal, bet ? *bet : -1.0});
  }
  t.print(std::cout);
}

void ablate_switch_vth() {
  util::print_banner(
      std::cout,
      "Ablation 4: power-switch Vth (HP device vs MTCMOS high-Vth)");
  util::TablePrinter t({"switch Vth", "P_shutdown(NV)", "BET (n_RW=100)"});
  util::CsvWriter csv("bench_ablation_swvth.csv",
                      {"vth", "p_shutdown", "bet"});
  for (double vth : {0.25, 0.30, 0.35, 0.40, 0.45}) {
    auto pp = models::PaperParams::table1();
    pp.power_switch_vth = vth;
    core::PowerGatingAnalyzer an(pp);
    core::BenchmarkParams base;
    base.n_rw = 100;
    base.t_sl = 100e-9;
    const auto bet = an.model().break_even_time(core::Architecture::kNVPG, base);
    t.row({util::si_format(vth, "V", 2),
           util::si_format(an.cell_nv().p_static_shutdown, "W"),
           bet ? util::si_format(*bet, "s") : "never"});
    csv.row({vth, an.cell_nv().p_static_shutdown, bet ? *bet : -1.0});
  }
  t.print(std::cout);
}

void ablate_temperature() {
  util::print_banner(std::cout,
                     "Ablation 5: temperature (leakage -> static power -> BET)");
  util::TablePrinter t({"T", "P_normal(NV)", "P_sleep(NV)", "BET (n_RW=100)"});
  util::CsvWriter csv("bench_ablation_temp.csv",
                      {"temp_k", "p_normal", "p_sleep", "bet"});
  for (double temp : {273.0, 300.0, 330.0, 358.0}) {
    auto pp = models::PaperParams::table1();
    pp.temperature = temp;
    core::PowerGatingAnalyzer an(pp);
    core::BenchmarkParams base;
    base.n_rw = 100;
    base.t_sl = 100e-9;
    const auto bet = an.model().break_even_time(core::Architecture::kNVPG, base);
    t.row({util::si_format(temp, "K", 0),
           util::si_format(an.cell_nv().p_static_normal, "W"),
           util::si_format(an.cell_nv().p_static_sleep, "W"),
           bet ? util::si_format(*bet, "s") : "never"});
    csv.row({temp, an.cell_nv().p_static_normal, an.cell_nv().p_static_sleep,
             bet ? *bet : -1.0});
  }
  t.print(std::cout);
  std::cout << "(hotter silicon leaks more, so power gating breaks even\n"
               " sooner: BET shrinks with temperature)\n";
}

void ablate_peripheral() {
  util::print_banner(
      std::cout,
      "Ablation 6: peripheral (WL/SR/CTRL driver) overhead the paper excludes");
  core::PowerGatingAnalyzer an(models::PaperParams::table1());
  core::EnergyModel bare = an.model();
  core::EnergyModel loaded = an.model();
  loaded.set_peripheral(core::PeripheralModel(core::PeripheralParams{},
                                              models::PaperParams::table1()));
  core::BenchmarkParams p;
  p.n_rw = 100;
  p.t_sl = 100e-9;
  util::TablePrinter t({"model", "E_cyc NVPG", "NOF/OSR @1e4", "BET (NVPG)"});
  util::CsvWriter csv("bench_ablation_periph.csv",
                      {"loaded", "e_nvpg", "nof_ratio", "bet"});
  for (auto* m : {&bare, &loaded}) {
    core::BenchmarkParams big = p;
    big.n_rw = 10000;
    const double nof_ratio = m->e_cyc(core::Architecture::kNOF, big) /
                             m->e_cyc(core::Architecture::kOSR, big);
    const auto bet = m->break_even_time(core::Architecture::kNVPG, p);
    t.row({m == &bare ? "cell only (paper)" : "with drivers",
           util::si_format(m->e_cyc(core::Architecture::kNVPG, p), "J"),
           bench::ratio_fmt(nof_ratio),
           bet ? util::si_format(*bet, "s") : "never"});
    csv.row({m == &bare ? 0.0 : 1.0,
             m->e_cyc(core::Architecture::kNVPG, p), nof_ratio,
             bet ? *bet : -1.0});
  }
  t.print(std::cout);
  std::cout << "(the drivers the paper excludes shift absolute energies but\n"
               " leave every architectural conclusion intact)\n";
}

}  // namespace

int main() {
  bench::print_header("Ablations", "design-choice sensitivities (not a paper "
                                   "figure; documents the reproduction)");
  ablate_store_pulse();
  ablate_tau0();
  ablate_vctrl();
  ablate_switch_vth();
  ablate_temperature();
  ablate_peripheral();
  bench::print_footer("bench_ablation_*.csv");
  return 0;
}
