// Extension study: the NV-FF companion circuit (the paper's refs [5], [6]).
//
// The NVPG architecture gates register files and pipeline registers with
// NV-FFs the same way it gates caches with NV-SRAM.  This bench
// characterizes our PS-FinFET NV-FF and reports the register-bank BET next
// to the NV-SRAM cell's, confirming the architecture story carries over.
#include <iostream>

#include "bench_common.h"
#include "core/analyzer.h"
#include "sram/nvff.h"

int main() {
  using namespace nvsram;
  bench::print_header(
      "NV-FF register power gating (extension; paper refs [5][6])",
      "the flip-flop companion shows the same store-dominated energetics and "
      "a BET in the same tens-of-us band as the NV-SRAM cell");

  const auto pp = models::PaperParams::table1();
  const auto ff = sram::characterize_nvff(pp);

  util::print_banner(std::cout, "NV-FF characterization");
  util::TablePrinter t({"quantity", "NV-FF", "NV-SRAM cell"});
  core::PowerGatingAnalyzer an(pp);
  const auto& cell = an.cell_nv();
  t.row({"clocked-cycle / access energy", util::si_format(ff.e_clock, "J"),
         util::si_format(cell.e_write, "J")});
  t.row({"static power (hold / normal)", util::si_format(ff.p_static_hold, "W"),
         util::si_format(cell.p_static_normal, "W")});
  t.row({"static power (shutdown)",
         util::si_format(ff.p_static_shutdown, "W"),
         util::si_format(cell.p_static_shutdown, "W")});
  t.row({"E_store", util::si_format(ff.e_store, "J"),
         util::si_format(cell.e_store, "J")});
  t.row({"E_restore", util::si_format(ff.e_restore, "J"),
         util::si_format(cell.e_restore, "J")});
  t.row({"store verified", ff.store_verified ? "yes" : "NO",
         cell.store_verified ? "yes" : "NO"});
  t.row({"restore verified", ff.restore_verified ? "yes" : "NO",
         cell.restore_verified ? "yes" : "NO"});
  t.print(std::cout);

  util::print_banner(std::cout, "Register-bank break-even time");
  const double bet_ff =
      (ff.e_store + ff.e_restore) / (ff.p_static_hold - ff.p_static_shutdown);
  core::BenchmarkParams p;
  p.n_rw = 100;
  p.t_sl = 100e-9;
  const auto bet_cell =
      an.model().break_even_time(core::Architecture::kNVPG, p);
  util::TablePrinter t2({"domain", "BET"});
  t2.row({"NV-FF register bank (gate-as-one)", util::si_format(bet_ff, "s")});
  t2.row({"NV-SRAM 128 B domain (Fig. 8)",
          bet_cell ? util::si_format(*bet_cell, "s") : "never"});
  t2.print(std::cout);

  util::CsvWriter csv("bench_nvff.csv",
                      {"e_clock", "e_store", "e_restore", "p_hold",
                       "p_shutdown", "bet"});
  csv.row({ff.e_clock, ff.e_store, ff.e_restore, ff.p_static_hold,
           ff.p_static_shutdown, bet_ff});

  std::cout << "\nReading: the FF burns more hold leakage than a cell (~20\n"
               "transistors vs 10), so its break-even comes EARLIER - which\n"
               "is why the NVPG papers gate registers eagerly.  Store still\n"
               "dominates the access energy by ~two orders, so the NOF\n"
               "argument (never store per cycle) applies to registers too.\n";
  bench::print_footer("bench_nvff.csv");
  return 0;
}
