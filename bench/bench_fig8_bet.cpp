// Fig. 8 reproduction: E_cyc vs t_SD and the break-even time.
//   (a) absolute E_cyc(t_SD) for OSR / NVPG / NOF at n_RW = 100
//   (b) OSR-normalized E_cyc(t_SD) for n_RW in {10, 100, 1000}
// The crossing of each curve with the OSR baseline is the BET.
//
// Both sweeps execute through runner::SweepRunner ("fig8a" / "fig8b"), so
// a failing point is skipped and recorded in bench_fig8{a,b}.csv.failures.csv
// while the rest of the figure still comes out, an interrupted run resumes
// from its checkpoint, and independent points fan out over the worker pool
// (NVSRAM_SWEEP_THREADS) — or over supervised worker subprocesses with
// crash quarantine under NVSRAM_SWEEP_ISOLATION=process — with
// byte-identical output either way (see docs/ROBUSTNESS.md).
#include <array>
#include <iostream>

#include "bench_common.h"
#include "core/analyzer.h"
#include "util/stats.h"

int main() {
  using namespace nvsram;
  using core::Architecture;
  using core::BenchmarkParams;

  bench::print_header(
      "Fig. 8 — E_cyc vs t_SD and break-even times",
      "NVPG breaks even after several 10 us; NOF needs a much longer shutdown "
      "and the crossing is strongly n_RW dependent");

  // The per-point watchdog budget (NVSRAM_SWEEP_TIMEOUT) also covers the
  // up-front SPICE characterization both sweeps share.
  runner::RunnerOptions probe;
  probe.apply_env("fig8");
  core::PowerGatingAnalyzer an(models::PaperParams::table1(),
                               probe.point_timeout_sec);
  bench::print_characterization_telemetry("6T", an.cell_6t());
  bench::print_characterization_telemetry("NV-SRAM", an.cell_nv());
  const auto t_grid = util::logspace(1e-6, 1e-1, 21);

  // ---- (a) absolute curves at n_RW = 100 ----
  runner::SweepRunner run_a(
      "fig8a", bench::sweep_options("fig8a", "bench_fig8a.csv",
                                    {"t_sd", "e_osr", "e_nvpg", "e_nof"}));
  const auto sum_a =
      run_a.run(t_grid.size(), [&](const runner::PointContext& pc) {
        BenchmarkParams p;
        p.n_rw = 100;
        p.t_sl = 100e-9;
        p.t_sd = t_grid[pc.index];
        return runner::Rows{{p.t_sd, an.model().e_cyc(Architecture::kOSR, p),
                             an.model().e_cyc(Architecture::kNVPG, p),
                             an.model().e_cyc(Architecture::kNOF, p)}};
      });

  util::print_banner(std::cout, "Fig. 8(a): E_cyc vs t_SD (n_RW = 100)");
  util::TablePrinter ta({"t_SD", "OSR", "NVPG", "NOF"});
  for (std::size_t i = 0; i < t_grid.size(); ++i) {
    if (!sum_a.point_ok(i)) {
      ta.row({util::si_format(t_grid[i], "s", 1), "FAILED", "FAILED",
              "FAILED"});
      continue;
    }
    const auto& r = sum_a.rows[i].front();
    ta.row({util::si_format(r[0], "s", 1), util::si_format(r[1], "J"),
            util::si_format(r[2], "J"), util::si_format(r[3], "J")});
  }
  ta.print(std::cout);
  bench::print_sweep_summary(sum_a);

  // ---- (b) normalized curves for n_RW in {10, 100, 1000} ----
  const std::array<int, 3> nrws{10, 100, 1000};
  runner::SweepRunner run_b(
      "fig8b", bench::sweep_options("fig8b", "bench_fig8b.csv",
                                    {"n_rw", "t_sd", "nvpg_norm", "nof_norm"}));
  const auto sum_b = run_b.run(
      nrws.size() * t_grid.size(), [&](const runner::PointContext& pc) {
        BenchmarkParams p;
        p.n_rw = nrws[pc.index / t_grid.size()];
        p.t_sl = 100e-9;
        p.t_sd = t_grid[pc.index % t_grid.size()];
        const double e_osr = an.model().e_cyc(Architecture::kOSR, p);
        return runner::Rows{
            {static_cast<double>(p.n_rw), p.t_sd,
             an.model().e_cyc(Architecture::kNVPG, p) / e_osr,
             an.model().e_cyc(Architecture::kNOF, p) / e_osr}};
      });

  for (std::size_t s = 0; s < nrws.size(); ++s) {
    const int n_rw = nrws[s];
    util::print_banner(std::cout, "Fig. 8(b): E_cyc normalized to OSR, n_RW = " +
                                      std::to_string(n_rw));
    util::TablePrinter t({"t_SD", "NVPG/OSR", "NOF/OSR"});
    for (std::size_t i = 0; i < t_grid.size(); ++i) {
      const std::size_t point = s * t_grid.size() + i;
      if (!sum_b.point_ok(point)) {
        t.row({util::si_format(t_grid[i], "s", 1), "FAILED", "FAILED"});
        continue;
      }
      const auto& r = sum_b.rows[point].front();
      t.row({util::si_format(r[1], "s", 1), util::si_format(r[2], "", 4),
             util::si_format(r[3], "", 4)});
    }
    t.print(std::cout);

    BenchmarkParams base;
    base.n_rw = n_rw;
    base.t_sl = 100e-9;
    const auto bet_nvpg = an.model().break_even_time(Architecture::kNVPG, base);
    const auto bet_nof = an.model().break_even_time(Architecture::kNOF, base);
    std::cout << "BET(NVPG) = "
              << (bet_nvpg ? util::si_format(*bet_nvpg, "s") : "never")
              << "   BET(NOF) = "
              << (bet_nof ? util::si_format(*bet_nof, "s") : "never") << "\n";
  }
  bench::print_sweep_summary(sum_b);

  bench::print_footer("bench_fig8{a,b}.csv");
  return 0;
}
