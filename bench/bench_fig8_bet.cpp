// Fig. 8 reproduction: E_cyc vs t_SD and the break-even time.
//   (a) absolute E_cyc(t_SD) for OSR / NVPG / NOF at n_RW = 100
//   (b) OSR-normalized E_cyc(t_SD) for n_RW in {10, 100, 1000}
// The crossing of each curve with the OSR baseline is the BET.
#include <iostream>

#include "bench_common.h"
#include "core/analyzer.h"
#include "util/stats.h"

int main() {
  using namespace nvsram;
  using core::Architecture;
  using core::BenchmarkParams;

  bench::print_header(
      "Fig. 8 — E_cyc vs t_SD and break-even times",
      "NVPG breaks even after several 10 us; NOF needs a much longer shutdown "
      "and the crossing is strongly n_RW dependent");

  core::PowerGatingAnalyzer an(models::PaperParams::table1());
  const auto t_grid = util::logspace(1e-6, 1e-1, 21);

  // ---- (a) absolute curves at n_RW = 100 ----
  BenchmarkParams base;
  base.n_rw = 100;
  base.t_sl = 100e-9;
  util::print_banner(std::cout, "Fig. 8(a): E_cyc vs t_SD (n_RW = 100)");
  util::TablePrinter ta({"t_SD", "OSR", "NVPG", "NOF"});
  util::CsvWriter csv_a("bench_fig8a.csv", {"t_sd", "e_osr", "e_nvpg", "e_nof"});
  const auto osr = an.ecyc_vs_tsd(Architecture::kOSR, t_grid, base);
  const auto nvpg = an.ecyc_vs_tsd(Architecture::kNVPG, t_grid, base);
  const auto nof = an.ecyc_vs_tsd(Architecture::kNOF, t_grid, base);
  for (std::size_t i = 0; i < t_grid.size(); ++i) {
    ta.row({util::si_format(t_grid[i], "s", 1),
            util::si_format(osr[i].second, "J"),
            util::si_format(nvpg[i].second, "J"),
            util::si_format(nof[i].second, "J")});
    csv_a.row({t_grid[i], osr[i].second, nvpg[i].second, nof[i].second});
  }
  ta.print(std::cout);

  // ---- (b) normalized curves for n_RW in {10, 100, 1000} ----
  util::CsvWriter csv_b("bench_fig8b.csv",
                        {"n_rw", "t_sd", "nvpg_norm", "nof_norm"});
  for (int n_rw : {10, 100, 1000}) {
    base.n_rw = n_rw;
    util::print_banner(std::cout, "Fig. 8(b): E_cyc normalized to OSR, n_RW = " +
                                      std::to_string(n_rw));
    util::TablePrinter t({"t_SD", "NVPG/OSR", "NOF/OSR"});
    const auto nv = an.ecyc_vs_tsd_normalized(Architecture::kNVPG, t_grid, base);
    const auto no = an.ecyc_vs_tsd_normalized(Architecture::kNOF, t_grid, base);
    for (std::size_t i = 0; i < t_grid.size(); ++i) {
      t.row({util::si_format(t_grid[i], "s", 1),
             util::si_format(nv[i].second, "", 4),
             util::si_format(no[i].second, "", 4)});
      csv_b.row({static_cast<double>(n_rw), t_grid[i], nv[i].second,
                 no[i].second});
    }
    t.print(std::cout);

    const auto bet_nvpg = an.model().break_even_time(Architecture::kNVPG, base);
    const auto bet_nof = an.model().break_even_time(Architecture::kNOF, base);
    std::cout << "BET(NVPG) = "
              << (bet_nvpg ? util::si_format(*bet_nvpg, "s") : "never")
              << "   BET(NOF) = "
              << (bet_nof ? util::si_format(*bet_nof, "s") : "never") << "\n";
  }

  bench::print_footer("bench_fig8{a,b}.csv");
  return 0;
}
