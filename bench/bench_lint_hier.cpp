// Hierarchical vs flat lint throughput (google-benchmark) on synthetic
// N×N NV-SRAM arrays: one `.subckt nvcell` definition, N² instances, shared
// PS rail.  The hierarchical engine analyzes the definition once and
// composes per-instance summaries, so it should scale with the top-level
// card count rather than the flattened device count (target: ≥10x over flat
// at 64×64; CI smoke-gates ≥5x).
#include <benchmark/benchmark.h>

#include <memory>

#include "lint/linter.h"
#include "spice/netlist_parser.h"
#include "support/array_gen.h"

namespace {

using namespace nvsram;

std::unique_ptr<spice::ParsedNetlist> parse_array(int n) {
  const std::string deck = testsupport::make_nvsram_array_netlist(n, n);
  return spice::NetlistParser().parse(deck);
}

void BM_LintFlat(benchmark::State& state) {
  auto nl = parse_array(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    lint::LintReport report = lint::lint_netlist(*nl);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_LintFlat)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_LintHierarchical(benchmark::State& state) {
  auto nl = parse_array(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    lint::LintReport report = lint::lint_netlist_hier(*nl);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_LintHierarchical)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
