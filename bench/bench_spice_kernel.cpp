// Simulator-kernel microbenchmarks (google-benchmark): dense/sparse LU,
// Newton DC solves of the NV-SRAM cell, and transient throughput.  These
// are not paper figures; they document the substrate's performance.
#include <benchmark/benchmark.h>

#include <random>

#include "linalg/lu.h"
#include "linalg/sparse_lu.h"
#include "models/paper_params.h"
#include "spice/dc.h"
#include "sram/characterize.h"
#include "sram/testbench.h"

namespace {

using namespace nvsram;

void BM_DenseLuFactorSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::mt19937 rng(1);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  linalg::DenseMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = dist(rng);
    a(i, i) += static_cast<double>(n);
  }
  linalg::Vector b(n, 1.0);
  for (auto _ : state) {
    linalg::LuFactorization lu;
    lu.factorize(a);
    benchmark::DoNotOptimize(lu.solve(b));
  }
}
BENCHMARK(BM_DenseLuFactorSolve)->Arg(16)->Arg(40)->Arg(120);

void BM_SparseLuGrid(benchmark::State& state) {
  const std::size_t g = static_cast<std::size_t>(state.range(0));
  const std::size_t n = g * g;
  linalg::SparseBuilder builder(n);
  auto at = [g](std::size_t r, std::size_t c) { return r * g + c; };
  for (std::size_t r = 0; r < g; ++r) {
    for (std::size_t c = 0; c < g; ++c) {
      const std::size_t i = at(r, c);
      builder.add(i, i, 4.001);
      if (r > 0) builder.add(i, at(r - 1, c), -1.0);
      if (r + 1 < g) builder.add(i, at(r + 1, c), -1.0);
      if (c > 0) builder.add(i, at(r, c - 1), -1.0);
      if (c + 1 < g) builder.add(i, at(r, c + 1), -1.0);
    }
  }
  const linalg::CsrMatrix a(builder);
  linalg::Vector b(n, 1.0);
  for (auto _ : state) {
    linalg::SparseLu lu;
    lu.factorize(a);
    benchmark::DoNotOptimize(lu.solve(b));
  }
  state.SetLabel(std::to_string(n) + " unknowns");
}
BENCHMARK(BM_SparseLuGrid)->Arg(10)->Arg(20)->Arg(40);

// The same grid through the split symbolic/numeric API: analyze once outside
// the loop, refactor per iteration — the Newton hot path on an unchanged
// sparsity pattern.  Compare against BM_SparseLuGrid at the same Arg to see
// what skipping the symbolic phase (reach DFS + pivot search + ordering)
// buys on an array-scale pattern.
void BM_SparseLuRefactor(benchmark::State& state) {
  const std::size_t g = static_cast<std::size_t>(state.range(0));
  const std::size_t n = g * g;
  linalg::SparseBuilder builder(n);
  auto at = [g](std::size_t r, std::size_t c) { return r * g + c; };
  for (std::size_t r = 0; r < g; ++r) {
    for (std::size_t c = 0; c < g; ++c) {
      const std::size_t i = at(r, c);
      builder.add(i, i, 4.001);
      if (r > 0) builder.add(i, at(r - 1, c), -1.0);
      if (r + 1 < g) builder.add(i, at(r + 1, c), -1.0);
      if (c > 0) builder.add(i, at(r, c - 1), -1.0);
      if (c + 1 < g) builder.add(i, at(r, c + 1), -1.0);
    }
  }
  const linalg::CsrMatrix a(builder);
  linalg::Vector b(n, 1.0);
  linalg::SparseLu lu;
  if (!lu.analyze(a)) state.SkipWithError("analyze failed");
  for (auto _ : state) {
    lu.refactor(a);
    benchmark::DoNotOptimize(lu.solve(b));
  }
  state.SetLabel(std::to_string(n) + " unknowns, symbolic reused");
}
BENCHMARK(BM_SparseLuRefactor)->Arg(10)->Arg(20)->Arg(40);

void BM_NvCellDcOperatingPoint(benchmark::State& state) {
  sram::CellTestbench tb(sram::CellKind::kNvSram, models::PaperParams::table1(),
                         sram::TestbenchOptions{.ideal_bitlines = true});
  for (auto _ : state) {
    auto sol = tb.solve_dc(tb.bias_normal(), true);
    benchmark::DoNotOptimize(sol);
  }
}
BENCHMARK(BM_NvCellDcOperatingPoint);

void BM_NvCellStoreTransient(benchmark::State& state) {
  for (auto _ : state) {
    sram::CellTestbench tb(sram::CellKind::kNvSram,
                           models::PaperParams::table1());
    tb.op_write(true);
    tb.op_store();
    auto res = tb.run();
    benchmark::DoNotOptimize(res.wave.samples());
  }
}
BENCHMARK(BM_NvCellStoreTransient)->Unit(benchmark::kMillisecond);

void BM_CellCharacterization(benchmark::State& state) {
  const auto pp = models::PaperParams::table1();
  for (auto _ : state) {
    sram::CellCharacterizer ch(pp);
    benchmark::DoNotOptimize(ch.characterize(sram::CellKind::kNvSram));
  }
}
BENCHMARK(BM_CellCharacterization)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
