// Simulator-kernel microbenchmarks (google-benchmark): dense/sparse LU,
// Newton DC solves of the NV-SRAM cell, and transient throughput.  These
// are not paper figures; they document the substrate's performance.
#include <benchmark/benchmark.h>

#include <memory>
#include <random>
#include <vector>

#include "linalg/lu.h"
#include "linalg/sparse_lu.h"
#include "models/paper_params.h"
#include "spice/dc.h"
#include "spice/newton.h"
#include "sram/array.h"
#include "sram/characterize.h"
#include "sram/testbench.h"

namespace {

using namespace nvsram;

void BM_DenseLuFactorSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::mt19937 rng(1);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  linalg::DenseMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = dist(rng);
    a(i, i) += static_cast<double>(n);
  }
  linalg::Vector b(n, 1.0);
  for (auto _ : state) {
    linalg::LuFactorization lu;
    lu.factorize(a);
    benchmark::DoNotOptimize(lu.solve(b));
  }
}
BENCHMARK(BM_DenseLuFactorSolve)->Arg(16)->Arg(40)->Arg(120);

void BM_SparseLuGrid(benchmark::State& state) {
  const std::size_t g = static_cast<std::size_t>(state.range(0));
  const std::size_t n = g * g;
  linalg::SparseBuilder builder(n);
  auto at = [g](std::size_t r, std::size_t c) { return r * g + c; };
  for (std::size_t r = 0; r < g; ++r) {
    for (std::size_t c = 0; c < g; ++c) {
      const std::size_t i = at(r, c);
      builder.add(i, i, 4.001);
      if (r > 0) builder.add(i, at(r - 1, c), -1.0);
      if (r + 1 < g) builder.add(i, at(r + 1, c), -1.0);
      if (c > 0) builder.add(i, at(r, c - 1), -1.0);
      if (c + 1 < g) builder.add(i, at(r, c + 1), -1.0);
    }
  }
  const linalg::CsrMatrix a(builder);
  linalg::Vector b(n, 1.0);
  for (auto _ : state) {
    linalg::SparseLu lu;
    lu.factorize(a);
    benchmark::DoNotOptimize(lu.solve(b));
  }
  state.SetLabel(std::to_string(n) + " unknowns");
}
BENCHMARK(BM_SparseLuGrid)->Arg(10)->Arg(20)->Arg(40);

// The same grid through the split symbolic/numeric API: analyze once outside
// the loop, refactor per iteration — the Newton hot path on an unchanged
// sparsity pattern.  Compare against BM_SparseLuGrid at the same Arg to see
// what skipping the symbolic phase (reach DFS + pivot search + ordering)
// buys on an array-scale pattern.
void BM_SparseLuRefactor(benchmark::State& state) {
  const std::size_t g = static_cast<std::size_t>(state.range(0));
  const std::size_t n = g * g;
  linalg::SparseBuilder builder(n);
  auto at = [g](std::size_t r, std::size_t c) { return r * g + c; };
  for (std::size_t r = 0; r < g; ++r) {
    for (std::size_t c = 0; c < g; ++c) {
      const std::size_t i = at(r, c);
      builder.add(i, i, 4.001);
      if (r > 0) builder.add(i, at(r - 1, c), -1.0);
      if (r + 1 < g) builder.add(i, at(r + 1, c), -1.0);
      if (c > 0) builder.add(i, at(r, c - 1), -1.0);
      if (c + 1 < g) builder.add(i, at(r, c + 1), -1.0);
    }
  }
  const linalg::CsrMatrix a(builder);
  linalg::Vector b(n, 1.0);
  linalg::SparseLu lu;
  if (!lu.analyze(a)) state.SkipWithError("analyze failed");
  for (auto _ : state) {
    lu.refactor(a);
    benchmark::DoNotOptimize(lu.solve(b));
  }
  state.SetLabel(std::to_string(n) + " unknowns, symbolic reused");
}
BENCHMARK(BM_SparseLuRefactor)->Arg(10)->Arg(20)->Arg(40);

// ---- batched multi-point Newton (spice::BatchedNewton) ----
//
// A fig7-shaped workload: K adjacent sweep points of an NV-SRAM array power
// domain (rows x cols cells, ~hundreds of MNA unknowns, so the solves take
// the sparse KLU-style path), each lane a slightly different VDD trim, all
// warm-started from a common operating point — exactly the shape of
// neighboring points in the fig7/fig8 sweeps.  BM_ScalarNewtonSweep is the
// reference: the same K points solved one at a time, each with its own
// fresh workspace (one symbolic analysis per point, as a sweep point does
// today).  BM_BatchedNewton carries them in lockstep: one shared analysis,
// SoA device stamping, lane-interleaved refactor/solve.  Both report
// points/s; the batched one also reports lane occupancy (the fraction of
// lane-iterations spent in lockstep rather than peeled to scalar).
struct BatchedDcWorkload {
  explicit BatchedDcWorkload(std::size_t k) {
    sram::ArrayOptions aopts;
    aopts.rows = 4;
    aopts.cols = 8;
    for (std::size_t l = 0; l < k; ++l) {
      auto pp = models::PaperParams::table1();
      pp.vdd += 1e-3 * static_cast<double>(l);  // adjacent sweep points
      tbs.push_back(std::make_unique<sram::ArrayTestbench>(pp, aopts));
      circuits.push_back(&tbs.back()->circuit());
    }
    for (auto* c : circuits) layouts.push_back(c->build_layout());
    for (auto& l : layouts) layout_ptrs.push_back(&l);

    // Common warm start: lane 0's operating point, as neighboring sweep
    // points warm-start from each other.
    warm.assign(layouts[0].unknown_count(), 0.0);
    spice::RecoveryOptions recovery;
    recovery.source_ramp_from_zero = true;
    const auto r = spice::solve_newton_with_recovery(
        *circuits[0], layouts[0], warm, /*time=*/0.0, /*dt=*/0.0, /*dc=*/true,
        spice::IntegrationMethod::kBackwardEuler, opts, recovery);
    warm_ok = r.converged;
  }

  std::vector<std::unique_ptr<sram::ArrayTestbench>> tbs;
  std::vector<spice::Circuit*> circuits;
  std::vector<spice::MnaLayout> layouts;
  std::vector<const spice::MnaLayout*> layout_ptrs;
  linalg::Vector warm;
  spice::NewtonOptions opts;
  bool warm_ok = false;
};

void BM_BatchedNewton(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  BatchedDcWorkload w(k);
  if (!w.warm_ok) {
    state.SkipWithError("warm-start solve failed");
    return;
  }
  std::vector<linalg::Vector> xs(k);
  std::vector<linalg::Vector*> x_ptrs(k);
  for (std::size_t l = 0; l < k; ++l) x_ptrs[l] = &xs[l];

  spice::BatchedNewton driver(w.circuits, w.layout_ptrs);
  std::size_t solved = 0;
  for (auto _ : state) {
    for (std::size_t l = 0; l < k; ++l) xs[l] = w.warm;
    const auto results = driver.solve(
        x_ptrs, /*time=*/0.0, /*dt=*/0.0, /*dc=*/true,
        spice::IntegrationMethod::kBackwardEuler, w.opts);
    for (const auto& r : results) solved += r.converged ? 1 : 0;
    benchmark::DoNotOptimize(results);
  }
  if (solved != k * static_cast<std::size_t>(state.iterations())) {
    state.SkipWithError("a lane failed to converge");
    return;
  }
  state.counters["points/s"] = benchmark::Counter(
      static_cast<double>(k) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  const double lockstep =
      static_cast<double>(driver.lockstep_iterations()) * static_cast<double>(k);
  state.counters["lane_occupancy"] =
      lockstep > 0.0 ? static_cast<double>(driver.lane_iterations()) / lockstep
                     : 0.0;
  state.SetLabel(std::to_string(w.layouts[0].unknown_count()) +
                 " unknowns/lane, " + std::to_string(driver.peel_count()) +
                 " peels");
}
BENCHMARK(BM_BatchedNewton)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ScalarNewtonSweep(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  BatchedDcWorkload w(k);
  if (!w.warm_ok) {
    state.SkipWithError("warm-start solve failed");
    return;
  }
  linalg::Vector x;
  std::size_t solved = 0;
  for (auto _ : state) {
    for (std::size_t l = 0; l < k; ++l) {
      x = w.warm;
      spice::NewtonWorkspace ws;  // fresh per point, as a sweep point today
      const auto r = spice::solve_newton(
          *w.circuits[l], w.layouts[l], x, /*time=*/0.0, /*dt=*/0.0,
          /*dc=*/true, spice::IntegrationMethod::kBackwardEuler, w.opts, &ws);
      solved += r.converged ? 1 : 0;
      benchmark::DoNotOptimize(x);
    }
  }
  if (solved != k * static_cast<std::size_t>(state.iterations())) {
    state.SkipWithError("a point failed to converge");
    return;
  }
  state.counters["points/s"] = benchmark::Counter(
      static_cast<double>(k) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.SetLabel(std::to_string(w.layouts[0].unknown_count()) +
                 " unknowns/point");
}
BENCHMARK(BM_ScalarNewtonSweep)->Arg(1)->Arg(8);

void BM_NvCellDcOperatingPoint(benchmark::State& state) {
  sram::CellTestbench tb(sram::CellKind::kNvSram, models::PaperParams::table1(),
                         sram::TestbenchOptions{.ideal_bitlines = true});
  for (auto _ : state) {
    auto sol = tb.solve_dc(tb.bias_normal(), true);
    benchmark::DoNotOptimize(sol);
  }
}
BENCHMARK(BM_NvCellDcOperatingPoint);

void BM_NvCellStoreTransient(benchmark::State& state) {
  for (auto _ : state) {
    sram::CellTestbench tb(sram::CellKind::kNvSram,
                           models::PaperParams::table1());
    tb.op_write(true);
    tb.op_store();
    auto res = tb.run();
    benchmark::DoNotOptimize(res.wave.samples());
  }
}
BENCHMARK(BM_NvCellStoreTransient)->Unit(benchmark::kMillisecond);

void BM_CellCharacterization(benchmark::State& state) {
  const auto pp = models::PaperParams::table1();
  for (auto _ : state) {
    sram::CellCharacterizer ch(pp);
    benchmark::DoNotOptimize(ch.characterize(sram::CellKind::kNvSram));
  }
}
BENCHMARK(BM_CellCharacterization)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
