// Fig. 3 reproduction: bias design curves of the NV-SRAM cell.
//   (a) normal-mode leakage I_L^NV vs V_CTRL, with the 6T baseline I_L^V
//   (b) H-store current |I_MTJ^{P->AP}| vs V_SR
//   (c) L-store current I_MTJ^{AP->P} vs V_CTRL at the optimized V_SR
#include <iostream>

#include "bench_common.h"
#include "sram/characterize.h"
#include "util/stats.h"

int main() {
  using namespace nvsram;
  bench::print_header(
      "Fig. 3 — leakage control and store-current margins",
      "V_CTRL ~ 0.07 V matches 6T leakage; V_SR = 0.65 V / V_CTRL = 0.5 V "
      "deliver the 1.5 x Ic store margin");

  const auto pp = models::PaperParams::table1();
  sram::CellCharacterizer ch(pp);
  const double ic = pp.mtj.critical_current();
  const double target = pp.store_current_factor * ic;

  // ---- (a) leakage vs V_CTRL ----
  util::print_banner(std::cout, "Fig. 3(a): I_L vs V_CTRL (normal mode)");
  const auto vctrl_grid = util::linspace(0.0, 0.5, 11);
  const auto sweep = ch.leakage_vs_vctrl(vctrl_grid);
  util::TablePrinter t3a({"V_CTRL", "I_L^NV", "I_L^NV / I_L^V"});
  util::CsvWriter csv3a("bench_fig3a.csv", {"vctrl", "i_nv", "i_6t"});
  for (const auto& p : sweep.points) {
    t3a.row({util::si_format(p.vctrl, "V", 2), util::si_format(p.current_nv, "A"),
             util::si_format(p.current_nv / sweep.current_6t, "", 3)});
    csv3a.row({p.vctrl, p.current_nv, sweep.current_6t});
  }
  t3a.print(std::cout);
  std::cout << "6T baseline I_L^V = " << util::si_format(sweep.current_6t, "A")
            << "\n";

  // ---- (b) H-store current vs V_SR ----
  util::print_banner(std::cout, "Fig. 3(b): |I_MTJ^{P->AP}| vs V_SR (H-store)");
  std::cout << "Ic = " << util::si_format(ic, "A") << ", design margin 1.5 x Ic = "
            << util::si_format(target, "A") << "\n";
  util::TablePrinter t3b({"V_SR", "|I_MTJ|", "I / Ic"});
  util::CsvWriter csv3b("bench_fig3b.csv", {"vsr", "i_mtj", "ic"});
  for (const auto& [v, i] : ch.store_current_vs_vsr(util::linspace(0.2, 0.9, 15))) {
    t3b.row({util::si_format(v, "V", 2), util::si_format(i, "A"),
             bench::ratio_fmt(i / ic)});
    csv3b.row({v, i, ic});
  }
  t3b.print(std::cout);

  // ---- (c) L-store current vs V_CTRL ----
  util::print_banner(std::cout,
                     "Fig. 3(c): I_MTJ^{AP->P} vs V_CTRL (L-store, V_SR = 0.65 V)");
  util::TablePrinter t3c({"V_CTRL", "I_MTJ", "I / Ic"});
  util::CsvWriter csv3c("bench_fig3c.csv", {"vctrl", "i_mtj", "ic"});
  for (const auto& [v, i] :
       ch.store_current_vs_vctrl(util::linspace(0.1, 0.7, 13))) {
    t3c.row({util::si_format(v, "V", 2), util::si_format(i, "A"),
             bench::ratio_fmt(i / ic)});
    csv3c.row({v, i, ic});
  }
  t3c.print(std::cout);

  bench::print_footer("bench_fig3{a,b,c}.csv");
  return 0;
}
