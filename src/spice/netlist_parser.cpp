#include "spice/netlist_parser.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "lint/lint_cache.h"
#include "lint/linter.h"
#include "lint/temporal/protocol.h"
#include "lint/temporal/role.h"
#include "models/finfet.h"
#include "models/mtj.h"
#include "spice/ac.h"
#include "spice/controlled.h"
#include "spice/elements.h"
#include "spice/fet_element.h"
#include "spice/mtj_element.h"
#include "util/stats.h"

namespace nvsram::spice {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

// Splits a card line into tokens; parentheses become their own groups, so
// "PULSE(0 1 1n)" -> "pulse(", "0", "1", "1n", ")".
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  auto flush = [&] {
    if (!cur.empty()) {
      out.push_back(cur);
      cur.clear();
    }
  };
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
      flush();
    } else if (c == '(') {
      cur += '(';
      flush();
    } else if (c == ')') {
      flush();
      out.push_back(")");
    } else {
      cur += c;
    }
  }
  flush();
  return out;
}

// key=value option; returns nullopt if the token has no '='.
std::optional<std::pair<std::string, std::string>> split_kv(
    const std::string& token) {
  const auto eq = token.find('=');
  if (eq == std::string::npos) return std::nullopt;
  return std::make_pair(lower(token.substr(0, eq)), token.substr(eq + 1));
}

}  // namespace

NetlistError::NetlistError(int line, const std::string& message)
    : std::runtime_error("netlist line " + std::to_string(line) + ": " +
                         message),
      line_(line) {}

std::optional<double> parse_si_number(const std::string& token) {
  if (token.empty()) return std::nullopt;
  const std::string t = lower(token);
  // Longest-suffix-first so "meg" beats "m".
  static const std::pair<const char*, double> kSuffixes[] = {
      {"meg", 1e6}, {"t", 1e12}, {"g", 1e9}, {"k", 1e3}, {"m", 1e-3},
      {"u", 1e-6},  {"n", 1e-9}, {"p", 1e-12}, {"f", 1e-15},
  };
  std::string digits = t;
  double scale = 1.0;
  for (const auto& [suffix, s] : kSuffixes) {
    const std::size_t len = std::strlen(suffix);
    if (t.size() > len && t.compare(t.size() - len, len, suffix) == 0) {
      // Careful: "1e-9" ends with no suffix; make sure the character before
      // the suffix is a digit or '.', not 'e' (exponent form has priority).
      const char before = t[t.size() - len - 1];
      if (std::isdigit(static_cast<unsigned char>(before)) || before == '.') {
        digits = t.substr(0, t.size() - len);
        scale = s;
        break;
      }
    }
  }
  try {
    std::size_t used = 0;
    const double v = std::stod(digits, &used);
    if (used != digits.size()) return std::nullopt;
    return v * scale;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

namespace {

class ParserImpl {
 public:
  explicit ParserImpl(ParsedNetlist& out) : out_(out) {}

  void feed(const std::string& line_raw, int line_no) {
    line_no_ = line_no;
    std::string line = line_raw;
    // Strip comments: '*' at start, ';' anywhere.
    if (!line.empty() && line[0] == '*') return;
    const auto semi = line.find(';');
    if (semi != std::string::npos) line = line.substr(0, semi);
    const auto tokens = tokenize(line);
    if (tokens.empty()) return;

    const std::string head = lower(tokens[0]);
    if (head == ".end") {
      ended_ = true;
      return;
    }
    if (ended_) return;

    // Inside a .subckt definition: record the body verbatim.
    if (!subckt_stack_.empty()) {
      if (head == ".ends") {
        SubcktDef def = std::move(subckt_stack_.back());
        subckt_stack_.pop_back();
        diagnose_unused_ports(def);
        record_subckt_info(def);
        subckts_[def.name] = std::move(def);
        return;
      }
      if (head == ".subckt") {
        fail(".subckt definitions cannot nest");
      }
      subckt_stack_.back().body.emplace_back(line, line_no);
      return;
    }

    if (head == ".subckt") {
      begin_subckt(tokens);
      return;
    }
    if (head == ".ends") fail(".ends without .subckt");
    // Convert stray exceptions (duplicate device names, element constructor
    // validation such as R <= 0) into NetlistErrors so every parse failure
    // carries its source line.
    try {
      if (head[0] == '.') {
        parse_dot_card(head, tokens);
      } else {
        switch (head[0]) {
          case 'r': parse_resistor(tokens); break;
          case 'c': parse_capacitor(tokens); break;
          case 'l': parse_inductor(tokens); break;
          case 'v': parse_source<VSource>(tokens); break;
          case 'i': parse_source<ISource>(tokens); break;
          case 'd': parse_diode(tokens); break;
          case 'm': parse_fet(tokens); break;
          case 'y': parse_mtj(tokens); break;
          case 'e': parse_vcvs(tokens); break;
          case 'g': parse_vccs(tokens); break;
          case 'x': parse_instance(tokens); break;
          default:
            throw NetlistError(line_no_, "unknown card '" + tokens[0] + "'");
        }
      }
    } catch (const NetlistError&) {
      throw;  // already located (possibly on a subckt body line)
    } catch (const std::exception& e) {
      fail(e.what());
    }
    // Record successfully parsed scope-0 card lines for the hierarchical
    // lint engine's reduced netlist (everything the engine re-parses
    // verbatim; X cards are summarized instead, and .probe may reference
    // instance-internal nodes that do not exist without the flattened
    // instances).
    if (scopes_.empty() && head[0] != 'x' && head != ".probe") {
      out_.record_top_card(line, line_no);
    }
  }

  bool saw_any_card() const { return saw_card_; }

 private:
  struct SubcktDef {
    std::string name;
    std::vector<std::string> ports;
    std::vector<std::pair<std::string, int>> body;  // (line, line number)
    int def_line = -1;                              // line of the .subckt card
  };

  // A port never mentioned in the definition body is dead: the instance node
  // wired to it stays unconnected inside the cell.  Recorded as a lint
  // diagnostic (not a parse error) so intentionally partial cells still load.
  // Fires once per definition, attributed to the .subckt card's own line —
  // never to whichever instance happened to parse last.  Node names inside a
  // definition resolve against the port map case-insensitively (matching the
  // card-letter convention), so a body's "bl" counts as use of port "BL".
  void diagnose_unused_ports(const SubcktDef& def) {
    std::unordered_set<std::string> used;
    for (const auto& [body_line, body_no] : def.body) {
      (void)body_no;
      for (const auto& token : tokenize(body_line)) used.insert(lower(token));
    }
    for (const auto& port : def.ports) {
      if (used.count(lower(port))) continue;
      lint::Diagnostic d;
      d.rule = lint::rules::kSubcktUnusedPort;
      d.severity = lint::default_severity(d.rule);
      d.message = ".subckt '" + def.name + "' port '" + port +
                  "' is never used inside the definition body";
      d.node = port;
      d.line = def.def_line;
      out_.add_parse_diagnostic(std::move(d));
    }
  }

  // Mirrors the definition into the netlist's hierarchy record with its
  // content hash (FNV-1a over name, ports, and body text), the per-definition
  // key of the lint summary cache.
  void record_subckt_info(const SubcktDef& def) {
    SubcktInfo info;
    info.name = def.name;
    info.ports = def.ports;
    info.def_line = def.def_line;
    info.body = def.body;
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](const std::string& s) {
      for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
      }
      h ^= static_cast<unsigned char>('\n');
      h *= 1099511628211ull;
    };
    mix(def.name);
    for (const auto& p : def.ports) mix(p);
    for (const auto& [body_line, body_no] : def.body) {
      (void)body_no;
      mix(body_line);
    }
    info.content_hash = h == 0 ? 1 : h;
    out_.record_subckt(std::move(info));
  }

  struct Scope {
    std::string prefix;                                  // "X1."
    std::unordered_map<std::string, std::string> ports;  // local -> global
  };
  [[noreturn]] void fail(const std::string& msg) {
    throw NetlistError(line_no_, msg);
  }

  double number(const std::string& token) {
    const auto v = parse_si_number(token);
    if (!v) fail("bad number '" + token + "'");
    return *v;
  }

  NodeId node(const std::string& name) {
    const std::string resolved = resolve_node(name);
    const bool is_new = !out_.circuit().has_node(resolved);
    const NodeId id = out_.circuit().node(resolved);
    if (is_new) out_.record_node_line(resolved, line_no_);
    return id;
  }

  // Registers the card's global device name -> source line and marks the
  // netlist as non-empty.  Call after the device was added successfully.
  void record_device(const std::string& global_name) {
    out_.record_device_line(global_name, line_no_);
    saw_card_ = true;
  }

  // Scope prefixes are fully qualified at instantiation time, and port maps
  // store already-resolved global names, so only the innermost scope is
  // consulted.
  std::string resolve_node(const std::string& name) const {
    if (name == "0" || name == "gnd") return "0";  // ground is global
    if (scopes_.empty()) return name;
    const Scope& scope = scopes_.back();
    const auto found = scope.ports.find(lower(name));  // ports match any case
    return found != scope.ports.end() ? found->second : scope.prefix + name;
  }

  std::string devname(const std::string& name) const {
    return scopes_.empty() ? name : scopes_.back().prefix + name;
  }

  void need(const std::vector<std::string>& t, std::size_t n,
            const char* what) {
    if (t.size() < n) fail(std::string("too few fields for ") + what);
  }

  void parse_resistor(const std::vector<std::string>& t) {
    need(t, 4, "resistor");
    out_.circuit().add<Resistor>(devname(t[0]), node(t[1]), node(t[2]),
                                 number(t[3]));
    record_device(devname(t[0]));
  }

  void parse_capacitor(const std::vector<std::string>& t) {
    need(t, 4, "capacitor");
    out_.circuit().add<Capacitor>(devname(t[0]), node(t[1]), node(t[2]),
                                  number(t[3]));
    record_device(devname(t[0]));
  }

  void parse_inductor(const std::vector<std::string>& t) {
    need(t, 4, "inductor");
    out_.circuit().add<Inductor>(devname(t[0]), node(t[1]), node(t[2]),
                                 number(t[3]));
    record_device(devname(t[0]));
  }

  SourceSpec parse_spec(const std::vector<std::string>& t, std::size_t i) {
    const std::string kind = lower(t[i]);
    if (kind == "dc") {
      if (i + 1 >= t.size()) fail("DC needs a value");
      return SourceSpec::dc(number(t[i + 1]));
    }
    if (kind == "pulse(") {
      std::vector<double> args;
      for (std::size_t k = i + 1; k < t.size() && t[k] != ")"; ++k) {
        args.push_back(number(t[k]));
      }
      if (args.size() < 6 || args.size() > 7) {
        fail("PULSE needs 6-7 arguments (v1 v2 td tr tf pw [per])");
      }
      PulseSpec p;
      p.v_initial = args[0];
      p.v_pulsed = args[1];
      p.delay = args[2];
      p.rise = args[3];
      p.fall = args[4];
      p.width = args[5];
      p.period = args.size() == 7 ? args[6] : 0.0;
      return SourceSpec::pulse(p);
    }
    if (kind == "pwl(") {
      std::vector<double> args;
      for (std::size_t k = i + 1; k < t.size() && t[k] != ")"; ++k) {
        args.push_back(number(t[k]));
      }
      if (args.size() < 2 || args.size() % 2 != 0) {
        fail("PWL needs an even number of arguments");
      }
      std::vector<std::pair<double, double>> pts;
      for (std::size_t k = 0; k < args.size(); k += 2) {
        pts.emplace_back(args[k], args[k + 1]);
      }
      sanitize_pwl(pts, devname(t[0]));
      try {
        return SourceSpec::pwl(pts);
      } catch (const std::invalid_argument& e) {
        fail(e.what());
      }
    }
    // Bare value means DC.
    return SourceSpec::dc(number(t[i]));
  }

  // A later PWL point at an earlier-or-equal time shadows what the source
  // "really does" — the simulator would quietly interpolate something other
  // than the author's schedule.  Reported as a lint diagnostic (with the
  // card's line), then repaired (sort, keep the last point of any duplicate
  // time) so parsing and the remaining analyses continue.
  void sanitize_pwl(std::vector<std::pair<double, double>>& pts,
                    const std::string& device) {
    bool monotonic = true;
    for (std::size_t k = 1; k < pts.size(); ++k) {
      if (pts[k].first <= pts[k - 1].first) {
        monotonic = false;
        break;
      }
    }
    if (monotonic) return;

    lint::Diagnostic d;
    d.rule = lint::rules::kProtocolPwlNonmonotonic;
    d.severity = lint::default_severity(d.rule);
    d.message = "PWL time points of '" + device +
                "' are not strictly increasing; sorted and deduplicated "
                "(later duplicates win) — fix the stimulus, the schedule is "
                "not what was written";
    d.device = device;
    d.line = line_no_;
    out_.add_parse_diagnostic(std::move(d));

    std::stable_sort(pts.begin(), pts.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    std::vector<std::pair<double, double>> fixed;
    for (const auto& p : pts) {
      if (!fixed.empty() && fixed.back().first == p.first) {
        fixed.back().second = p.second;  // last duplicate wins
      } else {
        fixed.push_back(p);
      }
    }
    pts = std::move(fixed);
  }

  template <typename SourceT>
  void parse_source(const std::vector<std::string>& t) {
    need(t, 4, "source");
    out_.circuit().add<SourceT>(devname(t[0]), node(t[1]), node(t[2]),
                                parse_spec(t, 3));
    record_device(devname(t[0]));
  }

  void parse_diode(const std::vector<std::string>& t) {
    need(t, 3, "diode");
    double is = 1e-14;
    double n = 1.0;
    for (std::size_t k = 3; k < t.size(); ++k) {
      const auto kv = split_kv(t[k]);
      if (!kv) fail("diode options must be key=value");
      if (kv->first == "is") is = number(kv->second);
      else if (kv->first == "n") n = number(kv->second);
      else fail("unknown diode option '" + kv->first + "'");
    }
    out_.circuit().add<Diode>(devname(t[0]), node(t[1]), node(t[2]), is, n);
    record_device(devname(t[0]));
  }

  void parse_fet(const std::vector<std::string>& t) {
    need(t, 5, "fet");
    const std::string model = lower(t[4]);
    models::FinFETParams params;
    if (model == "nfin") {
      params = models::ptm20_nmos(1);
    } else if (model == "pfin") {
      params = models::ptm20_pmos(1);
    } else {
      fail("fet model must be nfin or pfin, got '" + t[4] + "'");
    }
    for (std::size_t k = 5; k < t.size(); ++k) {
      const auto kv = split_kv(t[k]);
      if (!kv) fail("fet options must be key=value");
      if (kv->first == "fins") {
        params.fin_count = static_cast<int>(number(kv->second));
      } else if (kv->first == "vth") {
        params.vth0 = number(kv->second);
      } else if (kv->first == "l") {
        params.channel_length = number(kv->second);
      } else {
        fail("unknown fet option '" + kv->first + "'");
      }
    }
    add_finfet(out_.circuit(), devname(t[0]), node(t[1]), node(t[2]),
               node(t[3]), params);
    record_device(devname(t[0]));
  }

  void parse_mtj(const std::vector<std::string>& t) {
    need(t, 4, "mtj");
    const std::string st = lower(t[3]);
    models::MtjState state;
    if (st == "p") state = models::MtjState::kParallel;
    else if (st == "ap") state = models::MtjState::kAntiparallel;
    else fail("mtj state must be P or AP");
    models::MTJParams params = models::paper_mtj(false);
    for (std::size_t k = 4; k < t.size(); ++k) {
      if (lower(t[k]) == "fast") {
        const double tau0 = params.tau0;
        params = models::paper_mtj(true);
        params.tau0 = tau0;
        continue;
      }
      const auto kv = split_kv(t[k]);
      if (!kv) fail("mtj options must be key=value or 'fast'");
      if (kv->first == "tau0") params.tau0 = number(kv->second);
      else if (kv->first == "diameter") params.diameter = number(kv->second);
      else if (kv->first == "tmr") params.tmr0 = number(kv->second);
      else if (kv->first == "jc") params.jc = number(kv->second);
      else fail("unknown mtj option '" + kv->first + "'");
    }
    out_.circuit().add<MTJElement>(devname(t[0]), node(t[1]), node(t[2]),
                                   params, state);
    record_device(devname(t[0]));
  }

  void parse_vcvs(const std::vector<std::string>& t) {
    need(t, 6, "vcvs");
    out_.circuit().add<VCVS>(devname(t[0]), node(t[1]), node(t[2]), node(t[3]),
                             node(t[4]), number(t[5]));
    record_device(devname(t[0]));
  }

  void parse_vccs(const std::vector<std::string>& t) {
    need(t, 6, "vccs");
    out_.circuit().add<VCCS>(devname(t[0]), node(t[1]), node(t[2]), node(t[3]),
                             node(t[4]), number(t[5]));
    record_device(devname(t[0]));
  }

  void begin_subckt(const std::vector<std::string>& t) {
    need(t, 3, ".subckt");
    SubcktDef def;
    def.def_line = line_no_;
    def.name = lower(t[1]);
    for (std::size_t k = 2; k < t.size(); ++k) def.ports.push_back(t[k]);
    if (subckts_.count(def.name)) {
      fail("duplicate .subckt '" + def.name + "'");
    }
    subckt_stack_.push_back(std::move(def));
  }

  void parse_instance(const std::vector<std::string>& t) {
    need(t, 3, "subckt instance");
    const std::string sub_name = lower(t.back());
    const auto it = subckts_.find(sub_name);
    if (it == subckts_.end()) {
      fail("unknown subcircuit '" + t.back() + "'");
    }
    const SubcktDef& def = it->second;
    const std::size_t given = t.size() - 2;  // nodes between name and subname
    if (given != def.ports.size()) {
      fail("subcircuit '" + def.name + "' expects " +
           std::to_string(def.ports.size()) + " ports, got " +
           std::to_string(given));
    }
    if (scopes_.size() >= 16) fail("subcircuit nesting too deep");

    SubcktInstanceInfo inst;
    inst.name = devname(t[0]);
    inst.def = def.name;
    inst.line = line_no_;
    inst.depth = scopes_.size();

    Scope scope;
    scope.prefix = devname(t[0]) + ".";
    for (std::size_t k = 0; k < def.ports.size(); ++k) {
      // Map the local port name to the caller's (already resolved) node.
      // Keys are lowercased: body references resolve case-insensitively.
      const std::string bound = resolve_node(t[1 + k]);
      inst.bindings.push_back(bound);
      scope.ports.emplace(lower(def.ports[k]), bound);
    }
    out_.record_instance(std::move(inst));
    scopes_.push_back(std::move(scope));
    const int saved_line = line_no_;
    for (const auto& [body_line, body_no] : def.body) {
      feed(body_line, body_no);
    }
    line_no_ = saved_line;
    scopes_.pop_back();
    saw_card_ = true;
  }

  void parse_dot_card(const std::string& head,
                      const std::vector<std::string>& t) {
    if (head == ".dc") {
      need(t, 5, ".dc");
      DcSweepCard card;
      card.source = t[1];
      card.start = number(t[2]);
      card.stop = number(t[3]);
      card.points = static_cast<int>(number(t[4]));
      if (card.points < 2) fail(".dc needs at least 2 points");
      out_.set_dc_card(card);
    } else if (head == ".tran") {
      need(t, 2, ".tran");
      TranCard card;
      card.t_stop = number(t[1]);
      if (t.size() > 2) card.dt_max = number(t[2]);
      if (card.t_stop <= 0.0) fail(".tran needs a positive stop time");
      out_.set_tran_card(card);
    } else if (head == ".ac") {
      need(t, 4, ".ac");
      AcCard card;
      card.source = t[1];
      card.f_start = number(t[2]);
      card.f_stop = number(t[3]);
      if (t.size() > 4) card.points_per_decade = static_cast<int>(number(t[4]));
      if (card.f_start <= 0.0 || card.f_stop <= card.f_start) {
        fail(".ac needs 0 < f_start < f_stop");
      }
      out_.set_ac_card(std::move(card));
    } else if (head == ".role") {
      need(t, 3, ".role");
      const std::string role = lower(t[2]);
      if (!lint::temporal::role_from_string(role)) {
        fail("unknown .role '" + t[2] +
             "' (expected power, power-gate, wordline, bitline, precharge, "
             "write-driver, store-enable, restore-ctrl, or other)");
      }
      out_.set_role_annotation(devname(t[1]), role);
    } else if (head == ".domain") {
      need(t, 3, ".domain");
      lint::power::DomainAnnotation ann;
      ann.node = resolve_node(t[1]);
      ann.name = t[2];
      ann.line = line_no_;
      if (t.size() > 3) {
        const std::string kind = lower(t[3]);
        if (kind == "gated") {
          ann.gated = true;
        } else if (kind == "always-on") {
          ann.gated = false;
        } else {
          fail("unknown .domain kind '" + t[3] +
               "' (expected gated or always-on)");
        }
      }
      out_.add_domain_annotation(std::move(ann));
    } else if (head == ".arch") {
      need(t, 2, ".arch");
      const std::string arch = lower(t[1]);
      if (!lint::temporal::arch_from_string(arch)) {
        fail("unknown .arch '" + t[1] + "' (expected nvpg, nof, or osr)");
      }
      out_.set_arch_annotation(arch);
    } else if (head == ".probe") {
      for (std::size_t k = 1; k < t.size();) {
        const std::string what = lower(t[k]);
        // Forms: v( node ) / i( dev ) / p( src ) / e( src )
        if ((what == "v(" || what == "i(" || what == "p(" || what == "e(") &&
            k + 2 < t.size() && t[k + 2] == ")") {
          const std::string arg = t[k + 1];
          add_probe(what[0], arg);
          k += 3;
        } else {
          fail("bad .probe term '" + t[k] + "'");
        }
      }
    } else {
      fail("unknown directive '" + head + "'");
    }
  }

  void add_probe(char kind, const std::string& arg) {
    auto& ckt = out_.circuit();
    switch (kind) {
      case 'v':
        if (!ckt.has_node(arg)) fail("probe of unknown node '" + arg + "'");
        out_.add_probe(Probe::node_voltage(ckt.find_node(arg), "v(" + arg + ")"));
        break;
      case 'i': {
        Device* dev = ckt.find_device(arg);
        if (!dev) fail("probe of unknown device '" + arg + "'");
        out_.add_probe(Probe::device_current(dev, "i(" + arg + ")"));
        break;
      }
      case 'p':
      case 'e': {
        auto* src = dynamic_cast<VSource*>(ckt.find_device(arg));
        if (!src) fail("probe of unknown voltage source '" + arg + "'");
        out_.add_probe(kind == 'p'
                           ? Probe::source_power(src, "p(" + arg + ")")
                           : Probe::source_energy(src, "e(" + arg + ")"));
        break;
      }
      default: fail("bad probe kind");
    }
  }

  ParsedNetlist& out_;
  int line_no_ = 0;
  bool ended_ = false;
  bool saw_card_ = false;
  std::vector<Scope> scopes_;
  std::vector<SubcktDef> subckt_stack_;
  std::unordered_map<std::string, SubcktDef> subckts_;
};

}  // namespace

lint::LintReport ParsedNetlist::lint() const { return lint(lint_options_); }

lint::LintReport ParsedNetlist::lint(const lint::LintOptions& options) const {
  return lint::lint_netlist(*this, options);
}

void ParsedNetlist::ensure_lint_ok() {
  if (!lint_on_run_) return;
  // Pristine parsed netlists (content hash != 0) share lint verdicts across
  // repeated run_* calls and across sweeps re-parsing identical text; any
  // post-parse mutation dropped the hash and falls through to a fresh lint.
  const std::uint64_t fp = lint_options_.fingerprint();
  if (content_hash_ != 0) {
    if (auto cached = lint::lint_cache_lookup(content_hash_, fp)) {
      if (cached->has_errors()) throw lint::LintError(std::move(*cached));
      return;
    }
  }
  lint::LintReport report = lint(lint_options_);
  if (content_hash_ != 0) lint::lint_cache_store(content_hash_, fp, report);
  if (report.has_errors()) throw lint::LintError(std::move(report));
}

void ParsedNetlist::record_device_line(const std::string& name, int line) {
  device_lines_.emplace(name, line);
}

void ParsedNetlist::record_node_line(const std::string& name, int line) {
  node_lines_.emplace(name, line);
}

int ParsedNetlist::device_line(const std::string& name) const {
  const auto it = device_lines_.find(name);
  return it == device_lines_.end() ? -1 : it->second;
}

int ParsedNetlist::node_line(const std::string& name) const {
  const auto it = node_lines_.find(name);
  return it == node_lines_.end() ? -1 : it->second;
}

std::string ParsedNetlist::instance_path_of(const std::string& name) const {
  // Longest recorded instance prefix wins, so "X3.X17.M2" maps to "X3/X17"
  // while a helper companion like "M1.cgs" (no instance prefix) maps to "".
  std::string probe = name;
  for (;;) {
    const auto dot = probe.rfind('.');
    if (dot == std::string::npos) return "";
    probe.resize(dot);
    if (instance_prefixes_.count(probe + ".")) {
      std::string path = probe;
      std::replace(path.begin(), path.end(), '.', '/');
      return path;
    }
  }
}

void ParsedNetlist::set_role_annotation(const std::string& device,
                                        std::string role) {
  content_hash_ = 0;
  role_annotations_[lower(device)] = std::move(role);
}

const std::string* ParsedNetlist::role_annotation(
    const std::string& device) const {
  const auto it = role_annotations_.find(lower(device));
  return it == role_annotations_.end() ? nullptr : &it->second;
}

void ParsedNetlist::add_parse_diagnostic(lint::Diagnostic d) {
  content_hash_ = 0;
  parse_diags_.push_back(std::move(d));
}

Waveform ParsedNetlist::run_dc_sweep() {
  if (!dc_) throw std::logic_error("netlist has no .dc card");
  ensure_lint_ok();
  auto* src = dynamic_cast<VSource*>(circuit_.find_device(dc_->source));
  auto* isrc = dynamic_cast<ISource*>(circuit_.find_device(dc_->source));
  if (!src && !isrc) {
    throw std::logic_error(".dc source '" + dc_->source + "' not found");
  }
  auto points = util::linspace(dc_->start, dc_->stop,
                               static_cast<std::size_t>(dc_->points));
  DCSweep sweep(
      circuit_,
      [this](double v) {
        Device* dev = circuit_.find_device(dc_->source);
        if (auto* vs = dynamic_cast<VSource*>(dev)) {
          vs->set_spec(SourceSpec::dc(v));
        }
      },
      std::move(points), probes_);
  return sweep.run();
}

Waveform ParsedNetlist::run_tran() {
  if (!tran_) throw std::logic_error("netlist has no .tran card");
  ensure_lint_ok();
  TranOptions opt;
  opt.t_stop = tran_->t_stop;
  if (tran_->dt_max > 0.0) opt.dt_max = tran_->dt_max;
  TranAnalysis tran(circuit_, opt, probes_);
  return tran.run();
}

Waveform ParsedNetlist::run_ac() {
  if (!ac_) throw std::logic_error("netlist has no .ac card");
  ensure_lint_ok();
  Device* src = circuit_.find_device(ac_->source);
  if (!src) {
    throw std::logic_error(".ac source '" + ac_->source + "' not found");
  }
  ACOptions opt;
  opt.f_start = ac_->f_start;
  opt.f_stop = ac_->f_stop;
  opt.points_per_decade = ac_->points_per_decade;
  // AC accepts only node-voltage probes; others are silently skipped.
  std::vector<Probe> vprobes;
  for (const auto& p : probes_) {
    if (p.kind == Probe::Kind::kNodeVoltage) vprobes.push_back(p);
  }
  ACAnalysis ac(circuit_, opt, std::move(vprobes));
  ac.set_ac(src, 1.0);
  return ac.run();
}

std::optional<DCSolution> ParsedNetlist::run_op() {
  ensure_lint_ok();
  DCAnalysis dc(circuit_);
  return dc.solve();
}

std::unique_ptr<ParsedNetlist> NetlistParser::parse(const std::string& text) {
  std::istringstream in(text);
  return parse_stream(in);
}

std::unique_ptr<ParsedNetlist> NetlistParser::parse_stream(std::istream& in) {
  auto out = std::make_unique<ParsedNetlist>();
  ParserImpl impl(*out);
  std::string line;
  int line_no = 0;
  bool first = true;
  // FNV-1a over the raw text (line-by-line, '\n'-delimited): the lint-cache
  // key for this parse.  Builder calls during parsing reset the netlist's
  // hash, so it is stamped once at the end.
  std::uint64_t hash = 1469598103934665603ull;
  auto hash_line = [&hash](const std::string& l) {
    for (unsigned char c : l) {
      hash ^= c;
      hash *= 1099511628211ull;
    }
    hash ^= static_cast<unsigned char>('\n');
    hash *= 1099511628211ull;
  };
  while (std::getline(in, line)) {
    ++line_no;
    hash_line(line);
    if (first) {
      first = false;
      // SPICE title-line convention: if the first line does not parse as a
      // card, it is the title.
      try {
        impl.feed(line, line_no);
      } catch (const NetlistError&) {
        out->set_title(line);
      }
      continue;
    }
    impl.feed(line, line_no);
  }
  if (!impl.saw_any_card()) {
    throw NetlistError(line_no, "netlist contains no devices");
  }
  // 0 means "not cacheable", so a text that happens to hash to 0 is simply
  // nudged rather than silently treated as mutated.
  out->set_content_hash(hash == 0 ? 1 : hash);
  return out;
}

}  // namespace nvsram::spice
