// DC operating-point analysis and DC sweeps.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "spice/circuit.h"
#include "spice/newton.h"
#include "spice/waveform.h"

namespace nvsram::spice {

struct DCOptions {
  NewtonOptions newton;
  // Escalation ladder used when the plain solve fails (gmin stepping, then
  // source stepping from zero) — see RecoveryOptions in spice/newton.h.
  RecoveryOptions recovery;
  // Wall-clock watchdog for the whole solve incl. the recovery ladder:
  // solve() throws util::WatchdogError once this many seconds are consumed.
  // 0 = unlimited.  Mirrors TranOptions::max_wall_seconds so DC-heavy
  // phases (cell characterization, bias sweeps) honor a deadline too.
  double max_wall_seconds = 0.0;
};

// Result of a DC solve: the unknown vector with its layout kept alive.
class DCSolution {
 public:
  DCSolution(linalg::Vector x, MnaLayout layout)
      : x_(std::move(x)), layout_(layout) {}

  SolutionView view() const { return SolutionView(x_, layout_); }
  double node_voltage(NodeId n) const { return view().node_voltage(n); }
  double device_current(const Device& d) const { return d.current(view()); }
  const linalg::Vector& raw() const { return x_; }
  const MnaLayout& layout() const { return layout_; }

 private:
  linalg::Vector x_;
  MnaLayout layout_;
};

class DCAnalysis {
 public:
  explicit DCAnalysis(Circuit& circuit, DCOptions options = {});

  // Solve the operating point.  `initial_guess` (optional) warm-starts
  // Newton.  Returns nullopt if every strategy fails; last_diagnostics()
  // then explains the failure (and on success records how hard the ladder
  // had to work).  Throws util::WatchdogError when
  // DCOptions::max_wall_seconds expires mid-ladder.
  std::optional<DCSolution> solve(const linalg::Vector* initial_guess = nullptr);

  const SolveDiagnostics& last_diagnostics() const { return last_diag_; }
  const NewtonWorkspace& workspace() const { return ws_; }

 private:
  Circuit& circuit_;
  DCOptions options_;
  MnaLayout layout_;
  SolveDiagnostics last_diag_;
  // Symbolic LU analysis shared by every solve() on this analysis (sparse
  // systems only; repeat solves with an unchanged pattern skip it).
  NewtonWorkspace ws_;
};

// Lockstep DC operating points over per-lane clones of one netlist, through
// the batched Newton driver (BatchedNewton in spice/newton.h): one shared
// symbolic analysis, structure-of-arrays stamping and refactorization.
// out[l] is nullopt where lane l found no operating point.  Every lane's
// solution is bit-identical to DCAnalysis::solve() on that lane alone
// (lanes that cannot stay in lockstep peel to the scalar path internally).
// `initial_guesses` (optional, per lane, entries may be nullptr) warm-start
// Newton; DCOptions::max_wall_seconds bounds the whole batch.
std::vector<std::optional<DCSolution>> solve_dc_lanes(
    const std::vector<Circuit*>& circuits, const DCOptions& options = {},
    const std::vector<const linalg::Vector*>* initial_guesses = nullptr);

// Sweeps a parameter (applied through `setter`) and records probe values at
// each solved operating point.  Successive points warm-start from the
// previous solution, which is what makes tight sweeps cheap.
class DCSweep {
 public:
  DCSweep(Circuit& circuit, std::function<void(double)> setter,
          std::vector<double> points, std::vector<Probe> probes,
          DCOptions options = {});

  // Runs the sweep; the waveform's "time" axis carries the swept values.
  // Throws SolverError (with diagnostics) if any point fails to converge.
  Waveform run();

 private:
  Circuit& circuit_;
  std::function<void(double)> setter_;
  std::vector<double> points_;
  std::vector<Probe> probes_;
  DCOptions options_;
};

// Evaluates one probe against a solution (shared by DC sweep and transient).
double evaluate_probe(const Probe& probe, const SolutionView& view, double time,
                      double accumulated_energy);

}  // namespace nvsram::spice
