// Small-signal AC analysis.
//
// Linearizes the circuit at its DC operating point (the devices' stamped
// Jacobian), adds jwC companion terms for every capacitor, applies the AC
// excitation of the sources, and solves the complex MNA system across a
// frequency sweep.
//
// AC magnitudes are set per source with `set_ac(source, magnitude)`;
// sources default to 0 (AC ground).  Results come back as a Waveform whose
// axis is frequency (Hz) with two series per probe: "mag:<label>" (V) and
// "ph:<label>" (degrees).
#pragma once

#include <complex>
#include <unordered_map>

#include "spice/circuit.h"
#include "spice/dc.h"
#include "spice/waveform.h"

namespace nvsram::spice {

struct ACOptions {
  double f_start = 1e3;
  double f_stop = 1e9;
  int points_per_decade = 10;
  NewtonOptions newton;  // for the operating point
};

class ACAnalysis {
 public:
  ACAnalysis(Circuit& circuit, ACOptions options, std::vector<Probe> probes);

  // Sets the AC excitation magnitude (volts / amperes) of an independent
  // source; all sources not mentioned stay at 0.
  void set_ac(const Device* source, double magnitude);

  // Runs the sweep.  Only node-voltage probes are supported (throws
  // std::invalid_argument otherwise).  Throws std::runtime_error when the
  // DC operating point fails or a frequency point is singular.
  Waveform run();

 private:
  Circuit& circuit_;
  ACOptions options_;
  std::vector<Probe> probes_;
  std::unordered_map<const Device*, double> ac_magnitudes_;
};

}  // namespace nvsram::spice
