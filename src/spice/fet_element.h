// MNA element wrapping the FinFET compact model.
//
// The element stamps the linearized channel (gm, gds) each Newton iteration.
// Terminal capacitances (Cgs, Cgd, junction) are added as separate Capacitor
// devices by `add_finfet`, keeping charge bookkeeping in one place.
#pragma once

#include "models/finfet.h"
#include "spice/circuit.h"
#include "spice/device.h"

namespace nvsram::spice {

class FinFETElement : public Device {
 public:
  FinFETElement(std::string name, NodeId drain, NodeId gate, NodeId source,
                models::FinFETParams params);

  void stamp(StampContext& ctx) override;
  void stamp_pattern(PatternContext& ctx) const override;
  // Drain current, positive flowing drain -> source (NMOS convention; PMOS
  // conducts with negative values).
  double current(const SolutionView& s) const override;
  std::vector<TerminalRef> terminals() const override {
    return {{"drain", drain_}, {"gate", gate_}, {"source", source_}};
  }
  // The channel conducts drain <-> source; the gate is insulated (it couples
  // only through the Cgs/Cgd capacitors added by add_finfet), so a gate node
  // needs its own DC path from elsewhere.
  std::vector<std::pair<NodeId, NodeId>> dc_paths() const override {
    return {{drain_, source_}};
  }

  const models::FinFET& model() const { return model_; }
  NodeId drain() const { return drain_; }
  NodeId gate() const { return gate_; }
  NodeId source() const { return source_; }

 private:
  NodeId drain_, gate_, source_;
  models::FinFET model_;
};

// Convenience: adds the channel element plus its terminal capacitances
// (Cgs gate-source, Cgd gate-drain, junction caps drain/source to ground).
// Returns the channel element for probing.
FinFETElement* add_finfet(Circuit& ckt, const std::string& name, NodeId drain,
                          NodeId gate, NodeId source,
                          const models::FinFETParams& params);

// Lane-parallel stamping for the batched Newton driver.  `fets[l]` is lane
// l's clone of one netlist position: same terminal nodes, possibly
// different parameters.  Gathers terminal voltages across lanes
// (structure-of-arrays), evaluates the model per lane — through one
// evaluate_many() call when all lanes share a parameter set — and scatters
// exactly the stamp sequence FinFETElement::stamp() would produce into each
// lane's builder, so every lane is bit-identical to the scalar path.
void stamp_finfet_lanes(FinFETElement* const* fets, StampBatch& batch);

}  // namespace nvsram::spice
