// Linear controlled sources: VCVS (E card) and VCCS (G card).
//
// Used for behavioural modelling (sense amplifiers, clamps, loop-gain
// probes) and exercised by the AC analysis tests.
#pragma once

#include "spice/device.h"

namespace nvsram::spice {

// Voltage-controlled voltage source:  v(p) - v(n) = gain * (v(cp) - v(cn)).
class VCVS : public Device {
 public:
  VCVS(std::string name, NodeId p, NodeId n, NodeId control_p, NodeId control_n,
       double gain);

  void reserve(MnaLayout& layout) override;
  void stamp(StampContext& ctx) override;
  void stamp_pattern(PatternContext& ctx) const override;
  // Branch current, + -> - internally (same convention as VSource).
  double current(const SolutionView& s) const override;
  std::vector<TerminalRef> terminals() const override {
    return {{"+", p_}, {"-", n_}, {"c+", cp_}, {"c-", cn_}};
  }
  // The output branch conducts (and pins a voltage); control pins sense only.
  std::vector<std::pair<NodeId, NodeId>> dc_paths() const override {
    return {{p_, n_}};
  }
  std::optional<std::pair<NodeId, NodeId>> voltage_branch() const override {
    return std::make_pair(p_, n_);
  }

  double gain() const { return gain_; }
  void set_gain(double g) { gain_ = g; }

 private:
  NodeId p_, n_, cp_, cn_;
  double gain_;
  std::size_t branch_ = MnaLayout::kNoIndex;
};

// Voltage-controlled current source:
// current `gm * (v(cp) - v(cn))` flows from node p through the source to n.
class VCCS : public Device {
 public:
  VCCS(std::string name, NodeId p, NodeId n, NodeId control_p, NodeId control_n,
       double transconductance);

  void stamp(StampContext& ctx) override;
  void stamp_pattern(PatternContext& ctx) const override;
  double current(const SolutionView& s) const override;
  // Output is a current source (no DC conductance); control pins sense only.
  std::vector<TerminalRef> terminals() const override {
    return {{"+", p_}, {"-", n_}, {"c+", cp_}, {"c-", cn_}};
  }

  double gm() const { return gm_; }
  void set_gm(double g) { gm_ = g; }

 private:
  NodeId p_, n_, cp_, cn_;
  double gm_;
};

}  // namespace nvsram::spice
