// Structural (symbolic) MNA analysis: prove a circuit's system of equations
// solvable from topology alone, before any Newton iteration.
//
// The analyzer asks every device WHERE it stamps (Device::stamp_pattern —
// positions, no numerics), assembles the sparsity pattern of the MNA matrix,
// and runs the linalg structure pass over it:
//
//   * maximum matching — a perfect equation/unknown matching proves the
//     system structurally nonsingular; a deficiency proves it singular for
//     EVERY assignment of device values, and Dulmage–Mendelsohn
//     classification names exactly the equations and unknowns implicated.
//   * dangling branch equations — a branch unknown whose row or column is
//     empty (e.g. a voltage source strapped between grounds) is attributed
//     to its owning device.
//   * floating blocks — connected components of the bipartite
//     equation/unknown graph that contain no ground-referencing device.
//     Such a block is structurally matchable yet numerically singular
//     (its KCL rows sum to zero), so it is reported separately.
//
// The DC pattern deliberately excludes the solver's gmin loading: gmin puts
// every node diagonal in the pattern and would mask exactly the node-level
// defects this analysis exists to find.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/structure.h"
#include "spice/circuit.h"

namespace nvsram::spice {

// One structurally deficient equation (row) or unknown (column), with the
// devices whose stamps touch it (the repair candidates).
struct StructuralDefect {
  std::string unknown;                // "V(node)" or "I(device)"
  std::string node;                   // node name when the unknown is a node voltage
  std::vector<std::string> devices;   // devices stamping this row/column
};

// A branch equation with an empty row or column, attributed to its owner.
struct DanglingBranch {
  std::string device;
  std::string unknown;  // "I(device)"
  bool empty_row = false;
  bool empty_col = false;
};

// A connected block of the equation/unknown graph with no ground reference.
struct FloatingBlock {
  std::vector<std::string> unknowns;  // member unknowns, layout order
  std::vector<std::string> devices;   // devices stamping inside the block
};

struct StructuralReport {
  std::size_t unknown_count = 0;
  bool dc = true;

  // Perfect matching missing: the matrix is singular for every value set.
  bool structurally_singular = false;
  std::vector<StructuralDefect> undetermined_unknowns;  // deficient columns
  std::vector<StructuralDefect> unsolvable_equations;   // deficient rows

  std::vector<DanglingBranch> dangling_branches;

  std::size_t block_count = 0;             // components of the bipartite graph
  std::vector<FloatingBlock> floating_blocks;

  // The analyzed pattern and, when nonsingular, a fill-reducing column
  // elimination order (what SparseLu::analyze would choose).
  linalg::SparsityPattern pattern;
  std::vector<std::size_t> elimination_order;

  bool clean() const {
    return !structurally_singular && dangling_branches.empty() &&
           floating_blocks.empty();
  }
};

// Analyze the circuit's MNA pattern.  `dc` selects the DC pattern (capacitors
// open, inductors short, no gmin); otherwise the transient pattern.  Builds
// its own layout (and so is independent of any solver state).
StructuralReport analyze_structure(const Circuit& circuit, bool dc = true);

}  // namespace nvsram::spice
