#include "spice/fault.h"

#include <stdexcept>

namespace nvsram::spice {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNanStamp: return "nan-stamp";
    case FaultKind::kSingular: return "singular";
    case FaultKind::kStall: return "stall";
  }
  return "?";
}

namespace {

std::string trimmed(const std::string& s) {
  const std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  return s.substr(b, s.find_last_not_of(" \t") - b + 1);
}

FaultSpec parse_one(const std::string& text) {
  FaultSpec spec;
  const std::size_t at = text.find('@');
  if (at == std::string::npos) {
    throw std::invalid_argument("FaultPlan: missing '@solve' in '" + text + "'");
  }
  const std::string kind = text.substr(0, at);
  if (kind == "nan-stamp") {
    spec.kind = FaultKind::kNanStamp;
  } else if (kind == "singular") {
    spec.kind = FaultKind::kSingular;
  } else if (kind == "stall") {
    spec.kind = FaultKind::kStall;
  } else {
    throw std::invalid_argument("FaultPlan: unknown fault kind '" + kind + "'");
  }

  std::string rest = text.substr(at + 1);
  // Optional device scope ":dev=NAME" (taken verbatim to the end).
  const std::size_t colon = rest.find(':');
  if (colon != std::string::npos) {
    const std::string opt = rest.substr(colon + 1);
    if (opt.rfind("dev=", 0) != 0) {
      throw std::invalid_argument("FaultPlan: unknown option '" + opt + "'");
    }
    spec.device = opt.substr(4);
    rest = rest.substr(0, colon);
  }
  // "K" or "KxN".
  try {
    const std::size_t x = rest.find('x');
    spec.at_solve = std::stoi(rest.substr(0, x));
    if (x != std::string::npos) spec.count = std::stoi(rest.substr(x + 1));
  } catch (const std::exception&) {
    throw std::invalid_argument("FaultPlan: bad trigger '" + rest + "'");
  }
  if (spec.at_solve < 0) {
    throw std::invalid_argument("FaultPlan: negative solve index in '" + text + "'");
  }
  return spec;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(';', start);
    if (end == std::string::npos) end = text.size();
    const std::string piece = trimmed(text.substr(start, end - start));
    if (!piece.empty()) plan.add(parse_one(piece));
    start = end + 1;
  }
  if (plan.empty()) {
    throw std::invalid_argument("FaultPlan: empty plan '" + text + "'");
  }
  return plan;
}

bool FaultPlan::fires(FaultKind kind, int solve_index) const {
  for (const auto& spec : specs_) {
    if (spec.kind == kind && spec.covers(solve_index)) return true;
  }
  return false;
}

const FaultSpec* FaultPlan::stamp_fault(int solve_index,
                                        const std::string& device,
                                        bool first) const {
  for (const auto& spec : specs_) {
    if (spec.kind != FaultKind::kNanStamp || !spec.covers(solve_index)) continue;
    if (spec.device.empty() ? first : spec.device == device) return &spec;
  }
  return nullptr;
}

}  // namespace nvsram::spice
