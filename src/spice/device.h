// Device base class and the MNA stamping interfaces.
//
// Unknown layout: x = [ v(node 1) ... v(node N-1), branch currents... ].
// Node 0 is ground and is eliminated from the system.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "linalg/dense.h"
#include "linalg/sparse.h"

namespace nvsram::spice {

using NodeId = std::size_t;
inline constexpr NodeId kGround = 0;

// One external pin of a device: its documented role name plus the circuit
// node it is attached to.  Exposed by Device::terminals() for topology
// queries (the lint layer, graph analyses) without dynamic_cast ladders.
struct TerminalRef {
  const char* role;  // "a", "+", "drain", "free", ...
  NodeId node;
};

enum class IntegrationMethod { kBackwardEuler, kTrapezoidal };

// Assigns unknown indices: node voltages first, then device branch currents.
class MnaLayout {
 public:
  explicit MnaLayout(std::size_t node_count = 1) : node_count_(node_count) {}

  void reset(std::size_t node_count) {
    node_count_ = node_count;
    extra_ = 0;
  }

  // Index of a node voltage unknown; ground has no unknown.
  static constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);
  std::size_t node_index(NodeId n) const { return n == kGround ? kNoIndex : n - 1; }

  // Allocates a new branch-current unknown and returns its index.
  std::size_t allocate_branch() { return (node_count_ - 1) + extra_++; }

  std::size_t node_count() const { return node_count_; }
  std::size_t unknown_count() const { return (node_count_ - 1) + extra_; }

 private:
  std::size_t node_count_ = 1;
  std::size_t extra_ = 0;
};

// Read-only view of a solved (or iterate) unknown vector.
class SolutionView {
 public:
  SolutionView(const linalg::Vector& x, const MnaLayout& layout)
      : x_(&x), layout_(&layout) {}

  double node_voltage(NodeId n) const {
    return n == kGround ? 0.0 : (*x_)[layout_->node_index(n)];
  }
  double value(std::size_t unknown_index) const { return (*x_)[unknown_index]; }
  std::size_t size() const { return x_->size(); }
  const linalg::Vector& raw() const { return *x_; }

 private:
  const linalg::Vector* x_;
  const MnaLayout* layout_;
};

// Everything a device needs to stamp one Newton iteration.
class StampContext {
 public:
  StampContext(const MnaLayout& layout, const linalg::Vector& x,
               linalg::SparseBuilder& mat, linalg::Vector& rhs, double time,
               double dt, bool dc, IntegrationMethod method,
               double source_scale)
      : layout_(layout), x_(x), mat_(mat), rhs_(rhs), time_(time), dt_(dt),
        dc_(dc), method_(method), source_scale_(source_scale) {}

  double node_voltage(NodeId n) const {
    return n == kGround ? 0.0 : x_[layout_.node_index(n)];
  }
  double branch_value(std::size_t idx) const { return x_[idx]; }

  double time() const { return time_; }
  double dt() const { return dt_; }
  bool dc() const { return dc_; }
  IntegrationMethod method() const { return method_; }
  double source_scale() const { return source_scale_; }
  SolutionView solution() const { return SolutionView(x_, layout_); }

  // ---- raw stamps (ground rows/columns silently dropped) ----
  void mat_nn(NodeId r, NodeId c, double v) {
    if (r == kGround || c == kGround) return;
    mat_.add(layout_.node_index(r), layout_.node_index(c), v);
  }
  void mat_nb(NodeId r, std::size_t branch, double v) {
    if (r == kGround) return;
    mat_.add(layout_.node_index(r), branch, v);
  }
  void mat_bn(std::size_t branch, NodeId c, double v) {
    if (c == kGround) return;
    mat_.add(branch, layout_.node_index(c), v);
  }
  void mat_bb(std::size_t row_branch, std::size_t col_branch, double v) {
    mat_.add(row_branch, col_branch, v);
  }
  void rhs_n(NodeId n, double v) {
    if (n == kGround) return;
    rhs_[layout_.node_index(n)] += v;
  }
  void rhs_b(std::size_t branch, double v) { rhs_[branch] += v; }

  // ---- composite stamps ----
  // Conductance g between nodes a and b.
  void stamp_conductance(NodeId a, NodeId b, double g) {
    mat_nn(a, a, g);
    mat_nn(b, b, g);
    mat_nn(a, b, -g);
    mat_nn(b, a, -g);
  }
  // Constant current i flowing from node `from` through the device into
  // node `to` (i.e. i leaves `from`).
  void stamp_current(NodeId from, NodeId to, double i) {
    rhs_n(from, -i);
    rhs_n(to, i);
  }

 private:
  const MnaLayout& layout_;
  const linalg::Vector& x_;
  linalg::SparseBuilder& mat_;
  linalg::Vector& rhs_;
  double time_;
  double dt_;
  bool dc_;
  IntegrationMethod method_;
  double source_scale_;
};

// Lane-parallel view over K per-lane StampContexts, advanced in lockstep by
// the batched Newton driver.  Lane l owns lane(l)'s iterate/builder/rhs; a
// batched device implementation gathers its terminal voltages across lanes
// (structure-of-arrays), evaluates the model per lane, and scatters exactly
// the stamp sequence the scalar stamp() would produce into each lane's
// builder — the bit-identity contract of the differential test tier.
// Devices without a lane-parallel implementation are stamped per lane via
// lane(l) by the driver.
inline constexpr std::size_t kMaxBatchLanes = 16;

class StampBatch {
 public:
  StampBatch(StampContext* const* lanes, std::size_t count)
      : lanes_(lanes), count_(count) {}

  std::size_t lane_count() const { return count_; }
  StampContext& lane(std::size_t l) const { return *lanes_[l]; }

  // Gathers v(n) across lanes into out[0 .. lane_count()).
  void gather_node_voltage(NodeId n, double* out) const {
    for (std::size_t l = 0; l < count_; ++l) out[l] = lanes_[l]->node_voltage(n);
  }

 private:
  StampContext* const* lanes_;
  std::size_t count_;
};

// Positions-only sibling of StampContext: devices record WHERE they stamp,
// never what.  Used by the structural analyzer to build the MNA sparsity
// pattern without evaluating any companion model (stamp() mutates device
// scratch state; stamp_pattern() must not).  Entries carry a nominal 1.0 so
// the builder's triplets can feed pattern extraction directly.
class PatternContext {
 public:
  PatternContext(const MnaLayout& layout, linalg::SparseBuilder& mat, bool dc)
      : layout_(layout), mat_(mat), dc_(dc) {}

  // True when the pattern is for a DC system: capacitors contribute nothing,
  // inductors short (no d/dt terms).
  bool dc() const { return dc_; }

  // ---- raw position stamps (ground rows/columns silently dropped) ----
  void mat_nn(NodeId r, NodeId c) {
    if (r == kGround || c == kGround) return;
    mat_.add(layout_.node_index(r), layout_.node_index(c), 1.0);
  }
  void mat_nb(NodeId r, std::size_t branch) {
    if (r == kGround) return;
    mat_.add(layout_.node_index(r), branch, 1.0);
  }
  void mat_bn(std::size_t branch, NodeId c) {
    if (c == kGround) return;
    mat_.add(branch, layout_.node_index(c), 1.0);
  }
  void mat_bb(std::size_t row_branch, std::size_t col_branch) {
    mat_.add(row_branch, col_branch, 1.0);
  }

  // Positions of stamp_conductance(a, b, g).
  void conductance(NodeId a, NodeId b) {
    mat_nn(a, a);
    mat_nn(b, b);
    mat_nn(a, b);
    mat_nn(b, a);
  }

 private:
  const MnaLayout& layout_;
  linalg::SparseBuilder& mat_;
  bool dc_;
};

// Base class for all circuit elements.
class Device {
 public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const std::string& name() const { return name_; }

  // ---- topology introspection (consumed by the lint layer) ----
  // Every external pin with its role name.  Devices without terminals (none
  // today) return an empty list and are invisible to topology checks.
  virtual std::vector<TerminalRef> terminals() const { return {}; }

  // Node pairs between which the device conducts at DC.  Capacitors and
  // current sources return nothing — exactly the edges the no-DC-path lint
  // must ignore, because they contribute no DC conductance to the MNA matrix.
  virtual std::vector<std::pair<NodeId, NodeId>> dc_paths() const { return {}; }

  // The (plus, minus) pair whose voltage difference this device pins, if any
  // (independent V sources, VCVS outputs).  Loops of such branches make the
  // MNA matrix structurally singular.
  virtual std::optional<std::pair<NodeId, NodeId>> voltage_branch() const {
    return std::nullopt;
  }

  // Allocate branch unknowns (voltage sources etc.).
  virtual void reserve(MnaLayout&) {}

  // Load the linearized companion model for the current iterate.
  virtual void stamp(StampContext& ctx) = 0;

  // Record the matrix positions stamp() can ever touch for this analysis
  // kind, without numerics or state mutation.  The default is conservative:
  // all pairs over the device's terminals plus any allocated branch rows —
  // a superset is harmless for solvability proofs but weakens them, so
  // concrete devices override with their exact footprint.
  virtual void stamp_pattern(PatternContext& ctx) const;

  // Called once after the DC operating point, before transient stepping.
  virtual void begin_transient(const SolutionView&) {}

  // Commit state after an accepted timestep.  Returns true if the device
  // changed an internal discrete state (e.g. MTJ flipped) — the controller
  // then shrinks the next step.
  virtual bool accept_step(const SolutionView&, double /*time*/, double /*dt*/) {
    return false;
  }

  // Device terminal current for probing; positive in the device's
  // documented reference direction.  Defaults to 0 for devices without a
  // natural single current.
  virtual double current(const SolutionView&) const { return 0.0; }

  // Time points the transient must not step across.
  virtual void breakpoints(double /*t_stop*/, std::vector<double>&) const {}

 private:
  std::string name_;
};

}  // namespace nvsram::spice
