#include "spice/elements.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/units.h"

namespace nvsram::spice {

// ---- SourceSpec -------------------------------------------------------------

SourceSpec SourceSpec::dc(double value) {
  SourceSpec s;
  s.kind_ = Kind::kDc;
  s.dc_ = value;
  return s;
}

SourceSpec SourceSpec::pulse(const PulseSpec& spec) {
  SourceSpec s;
  s.kind_ = Kind::kPulse;
  s.pulse_ = spec;
  return s;
}

SourceSpec SourceSpec::pwl(std::vector<std::pair<double, double>> points) {
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (!(points[i].first > points[i - 1].first)) {
      throw std::invalid_argument("SourceSpec::pwl: times must increase");
    }
  }
  SourceSpec s;
  s.kind_ = Kind::kPwl;
  s.pwl_ = std::move(points);
  return s;
}

double SourceSpec::value(double time) const {
  switch (kind_) {
    case Kind::kDc:
      return dc_;
    case Kind::kPulse: {
      const PulseSpec& p = pulse_;
      if (time < p.delay) return p.v_initial;
      double t = time - p.delay;
      if (p.period > 0.0) t = std::fmod(t, p.period);
      if (t < p.rise) {
        return p.v_initial + (p.v_pulsed - p.v_initial) * (t / p.rise);
      }
      t -= p.rise;
      if (t < p.width) return p.v_pulsed;
      t -= p.width;
      if (t < p.fall) {
        return p.v_pulsed + (p.v_initial - p.v_pulsed) * (t / p.fall);
      }
      return p.v_initial;
    }
    case Kind::kPwl: {
      if (pwl_.empty()) return 0.0;
      if (time <= pwl_.front().first) return pwl_.front().second;
      if (time >= pwl_.back().first) return pwl_.back().second;
      const auto it = std::upper_bound(
          pwl_.begin(), pwl_.end(), time,
          [](double t, const std::pair<double, double>& p) { return t < p.first; });
      const auto& hi = *it;
      const auto& lo = *(it - 1);
      const double f = (time - lo.first) / (hi.first - lo.first);
      return lo.second + f * (hi.second - lo.second);
    }
  }
  return 0.0;
}

void SourceSpec::breakpoints(double t_stop, std::vector<double>& out) const {
  switch (kind_) {
    case Kind::kDc:
      return;
    case Kind::kPulse: {
      const PulseSpec& p = pulse_;
      const double cycle = p.rise + p.width + p.fall;
      double base = p.delay;
      do {
        for (double t : {base, base + p.rise, base + p.rise + p.width,
                         base + cycle}) {
          if (t > 0.0 && t < t_stop) out.push_back(t);
        }
        if (p.period <= 0.0) break;
        base += p.period;
      } while (base < t_stop);
      return;
    }
    case Kind::kPwl:
      for (const auto& [t, v] : pwl_) {
        (void)v;
        if (t > 0.0 && t < t_stop) out.push_back(t);
      }
      return;
  }
}

// ---- Resistor ----------------------------------------------------------------

Resistor::Resistor(std::string name, NodeId a, NodeId b, double resistance)
    : Device(std::move(name)), a_(a), b_(b), resistance_(resistance) {
  if (resistance_ <= 0.0) {
    throw std::invalid_argument("Resistor: resistance must be positive");
  }
}

void Resistor::set_resistance(double r) {
  if (r <= 0.0) throw std::invalid_argument("Resistor: resistance must be positive");
  resistance_ = r;
}

void Resistor::stamp(StampContext& ctx) {
  ctx.stamp_conductance(a_, b_, 1.0 / resistance_);
}

void Resistor::stamp_pattern(PatternContext& ctx) const { ctx.conductance(a_, b_); }

double Resistor::current(const SolutionView& s) const {
  return (s.node_voltage(a_) - s.node_voltage(b_)) / resistance_;
}

// ---- Capacitor -----------------------------------------------------------------

Capacitor::Capacitor(std::string name, NodeId a, NodeId b, double capacitance)
    : Device(std::move(name)), a_(a), b_(b), capacitance_(capacitance) {
  if (capacitance_ <= 0.0) {
    throw std::invalid_argument("Capacitor: capacitance must be positive");
  }
}

double Capacitor::companion_geq(double dt, IntegrationMethod m) const {
  return (m == IntegrationMethod::kTrapezoidal ? 2.0 : 1.0) * capacitance_ / dt;
}

void Capacitor::stamp(StampContext& ctx) {
  if (ctx.dc()) {
    // Open in DC; the analysis-level gmin keeps floating nodes solvable.
    geq_ = 0.0;
    ieq_ = 0.0;
    return;
  }
  geq_ = companion_geq(ctx.dt(), ctx.method());
  // i_n = geq * v_n - ieq_, with
  //   BE:   ieq = geq * v_prev
  //   TRAP: ieq = geq * v_prev + i_prev
  ieq_ = geq_ * v_prev_;
  if (ctx.method() == IntegrationMethod::kTrapezoidal) ieq_ += i_prev_;
  ctx.stamp_conductance(a_, b_, geq_);
  // History current enters node a (it is subtracted from the device current).
  ctx.stamp_current(b_, a_, ieq_);
}

void Capacitor::begin_transient(const SolutionView& s) {
  v_prev_ = s.node_voltage(a_) - s.node_voltage(b_);
  i_prev_ = 0.0;
}

bool Capacitor::accept_step(const SolutionView& s, double, double) {
  const double v = s.node_voltage(a_) - s.node_voltage(b_);
  i_prev_ = geq_ * v - ieq_;
  v_prev_ = v;
  return false;
}

double Capacitor::current(const SolutionView& s) const {
  const double v = s.node_voltage(a_) - s.node_voltage(b_);
  return geq_ * v - ieq_;
}

void Capacitor::stamp_pattern(PatternContext& ctx) const {
  // Open at DC: no matrix footprint (gmin keeps otherwise-floating nodes
  // solvable, but structurally the capacitor contributes nothing).
  if (!ctx.dc()) ctx.conductance(a_, b_);
}

double Capacitor::stored_energy(const SolutionView& s) const {
  const double v = s.node_voltage(a_) - s.node_voltage(b_);
  return 0.5 * capacitance_ * v * v;
}

// ---- Inductor ------------------------------------------------------------------

Inductor::Inductor(std::string name, NodeId a, NodeId b, double inductance)
    : Device(std::move(name)), a_(a), b_(b), inductance_(inductance) {
  if (inductance_ <= 0.0) {
    throw std::invalid_argument("Inductor: inductance must be positive");
  }
}

void Inductor::reserve(MnaLayout& layout) { branch_ = layout.allocate_branch(); }

void Inductor::stamp(StampContext& ctx) {
  // KCL: branch current leaves a, enters b.
  ctx.mat_nb(a_, branch_, 1.0);
  ctx.mat_nb(b_, branch_, -1.0);
  ctx.mat_bn(branch_, a_, 1.0);
  ctx.mat_bn(branch_, b_, -1.0);
  if (ctx.dc()) {
    // DC short: v_a - v_b = 0 (branch equation has no current term).
    return;
  }
  // v = L di/dt.  BE:  v_n = (L/dt)(i_n - i_prev)
  //              TRAP: v_n = (2L/dt)(i_n - i_prev) - v_prev
  const double req =
      (ctx.method() == IntegrationMethod::kTrapezoidal ? 2.0 : 1.0) *
      inductance_ / ctx.dt();
  // Branch equation: v_a - v_b - req * i_n = rhs_hist.
  ctx.mat_bb(branch_, branch_, -req);
  double hist = -req * i_prev_;
  if (ctx.method() == IntegrationMethod::kTrapezoidal) hist -= v_prev_;
  ctx.rhs_b(branch_, hist);
}

void Inductor::stamp_pattern(PatternContext& ctx) const {
  ctx.mat_nb(a_, branch_);
  ctx.mat_nb(b_, branch_);
  ctx.mat_bn(branch_, a_);
  ctx.mat_bn(branch_, b_);
  if (!ctx.dc()) ctx.mat_bb(branch_, branch_);
}

void Inductor::begin_transient(const SolutionView& s) {
  i_prev_ = s.value(branch_);
  v_prev_ = s.node_voltage(a_) - s.node_voltage(b_);
}

bool Inductor::accept_step(const SolutionView& s, double, double) {
  i_prev_ = s.value(branch_);
  v_prev_ = s.node_voltage(a_) - s.node_voltage(b_);
  return false;
}

double Inductor::current(const SolutionView& s) const {
  return s.value(branch_);
}

// ---- VSource -------------------------------------------------------------------

VSource::VSource(std::string name, NodeId plus, NodeId minus, SourceSpec spec)
    : Device(std::move(name)), plus_(plus), minus_(minus), spec_(std::move(spec)) {}

void VSource::reserve(MnaLayout& layout) { branch_ = layout.allocate_branch(); }

void VSource::stamp(StampContext& ctx) {
  // KCL: branch current leaves the + node, enters the - node.
  ctx.mat_nb(plus_, branch_, 1.0);
  ctx.mat_nb(minus_, branch_, -1.0);
  // Branch equation: v(+) - v(-) = V(t) * source_scale.
  ctx.mat_bn(branch_, plus_, 1.0);
  ctx.mat_bn(branch_, minus_, -1.0);
  ctx.rhs_b(branch_, spec_.value(ctx.time()) * ctx.source_scale());
}

void VSource::stamp_pattern(PatternContext& ctx) const {
  ctx.mat_nb(plus_, branch_);
  ctx.mat_nb(minus_, branch_);
  ctx.mat_bn(branch_, plus_);
  ctx.mat_bn(branch_, minus_);
}

double VSource::current(const SolutionView& s) const {
  return s.value(branch_);
}

void VSource::breakpoints(double t_stop, std::vector<double>& out) const {
  spec_.breakpoints(t_stop, out);
}

double VSource::delivered_power(const SolutionView& s, double time) const {
  // Branch current is + -> - internally, so the current delivered out of the
  // + terminal is -i_branch.
  return spec_.value(time) * (-s.value(branch_));
}

// ---- ISource -------------------------------------------------------------------

ISource::ISource(std::string name, NodeId from, NodeId to, SourceSpec spec)
    : Device(std::move(name)), from_(from), to_(to), spec_(std::move(spec)) {}

void ISource::stamp(StampContext& ctx) {
  last_value_ = spec_.value(ctx.time()) * ctx.source_scale();
  ctx.stamp_current(from_, to_, last_value_);
}

void ISource::breakpoints(double t_stop, std::vector<double>& out) const {
  spec_.breakpoints(t_stop, out);
}

// ---- Diode ---------------------------------------------------------------------

Diode::Diode(std::string name, NodeId anode, NodeId cathode,
             double saturation_current, double emission, double temperature)
    : Device(std::move(name)), anode_(anode), cathode_(cathode),
      is_(saturation_current),
      n_vt_(emission * util::thermal_voltage(temperature)) {}

void Diode::stamp(StampContext& ctx) {
  const double v = ctx.node_voltage(anode_) - ctx.node_voltage(cathode_);
  // Junction exponential with a linear continuation above `v_crit` to keep
  // Newton steps bounded (classic SPICE junction limiting).
  const double v_crit = n_vt_ * std::log(n_vt_ / (is_ * std::sqrt(2.0)));
  double i, g;
  if (v <= v_crit) {
    const double e = std::exp(v / n_vt_);
    i = is_ * (e - 1.0);
    g = is_ * e / n_vt_;
  } else {
    const double e = std::exp(v_crit / n_vt_);
    const double g_crit = is_ * e / n_vt_;
    i = is_ * (e - 1.0) + g_crit * (v - v_crit);
    g = g_crit;
  }
  // Linearized companion: i(v) ~ i0 + g (v - v0).
  ctx.stamp_conductance(anode_, cathode_, g);
  ctx.stamp_current(anode_, cathode_, i - g * v);
}

void Diode::stamp_pattern(PatternContext& ctx) const {
  ctx.conductance(anode_, cathode_);
}

double Diode::current(const SolutionView& s) const {
  const double v = s.node_voltage(anode_) - s.node_voltage(cathode_);
  return is_ * (std::exp(std::min(v, 2.0) / n_vt_) - 1.0);
}

}  // namespace nvsram::spice
