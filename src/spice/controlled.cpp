#include "spice/controlled.h"

namespace nvsram::spice {

VCVS::VCVS(std::string name, NodeId p, NodeId n, NodeId control_p,
           NodeId control_n, double gain)
    : Device(std::move(name)), p_(p), n_(n), cp_(control_p), cn_(control_n),
      gain_(gain) {}

void VCVS::reserve(MnaLayout& layout) { branch_ = layout.allocate_branch(); }

void VCVS::stamp(StampContext& ctx) {
  // KCL contributions of the branch current.
  ctx.mat_nb(p_, branch_, 1.0);
  ctx.mat_nb(n_, branch_, -1.0);
  // Branch equation: v(p) - v(n) - gain (v(cp) - v(cn)) = 0.
  ctx.mat_bn(branch_, p_, 1.0);
  ctx.mat_bn(branch_, n_, -1.0);
  ctx.mat_bn(branch_, cp_, -gain_);
  ctx.mat_bn(branch_, cn_, gain_);
}

void VCVS::stamp_pattern(PatternContext& ctx) const {
  ctx.mat_nb(p_, branch_);
  ctx.mat_nb(n_, branch_);
  ctx.mat_bn(branch_, p_);
  ctx.mat_bn(branch_, n_);
  ctx.mat_bn(branch_, cp_);
  ctx.mat_bn(branch_, cn_);
}

double VCVS::current(const SolutionView& s) const { return s.value(branch_); }

VCCS::VCCS(std::string name, NodeId p, NodeId n, NodeId control_p,
           NodeId control_n, double transconductance)
    : Device(std::move(name)), p_(p), n_(n), cp_(control_p), cn_(control_n),
      gm_(transconductance) {}

void VCCS::stamp(StampContext& ctx) {
  // i = gm (v(cp) - v(cn)) leaves node p, enters node n.
  ctx.mat_nn(p_, cp_, gm_);
  ctx.mat_nn(p_, cn_, -gm_);
  ctx.mat_nn(n_, cp_, -gm_);
  ctx.mat_nn(n_, cn_, gm_);
}

void VCCS::stamp_pattern(PatternContext& ctx) const {
  ctx.mat_nn(p_, cp_);
  ctx.mat_nn(p_, cn_);
  ctx.mat_nn(n_, cp_);
  ctx.mat_nn(n_, cn_);
}

double VCCS::current(const SolutionView& s) const {
  return gm_ * (s.node_voltage(cp_) - s.node_voltage(cn_));
}

}  // namespace nvsram::spice
