// SPICE-style netlist text front end.
//
// Grammar (case-insensitive card letters, '*' comments, SI-suffixed numbers):
//
//   R<name> n+ n- <value>
//   C<name> n+ n- <value>
//   L<name> n+ n- <value>
//   V<name> n+ n- DC <v> | PULSE(v1 v2 td tr tf pw [per]) | PWL(t1 v1 ...)
//   I<name> n+ n- DC <v> | PULSE(...) | PWL(...)
//   D<name> anode cathode [is=<A>] [n=<emission>]
//   M<name> d g s <nfin|pfin> [fins=<k>] [vth=<V>] [l=<m>]
//   Y<name> pinned free <P|AP> [fast] [tau0=<s>]
//   E<name> p n cp cn <gain>                 (VCVS)
//   G<name> p n cp cn <gm>                   (VCCS)
//   .subckt <name> <port>... / .ends         (definition)
//   X<name> <node>... <subckt-name>          (instantiation)
//   .dc <source-name> <start> <stop> <points>
//   .tran <t_stop> [dt_max]
//   .ac <vsource-name> <f_start> <f_stop> [points-per-decade]
//   .probe v(<node>) | i(<device>) | p(<vsource>) | e(<vsource>)
//   .role <source> <role>                     (protocol role annotation)
//   .domain <node> <name> [gated|always-on]   (power-intent annotation)
//   .arch nvpg|nof|osr                        (power-gating architecture)
//   .end
//
// Numbers accept engineering suffixes: f p n u m k meg g t (e.g. "4f",
// "2.2k", "10n", "1meg") on top of ordinary scientific notation.
//
// The parser produces a ParsedNetlist that owns the Circuit and can execute
// the requested analyses (`run_*`), returning Waveforms.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lint/power/domain.h"
#include "lint/report.h"
#include "lint/rules.h"
#include "spice/circuit.h"
#include "spice/dc.h"
#include "spice/tran.h"
#include "spice/waveform.h"

namespace nvsram::spice {

// Thrown with a line number and message on any syntax/semantic error.
class NetlistError : public std::runtime_error {
 public:
  NetlistError(int line, const std::string& message);
  int line() const { return line_; }

 private:
  int line_;
};

struct DcSweepCard {
  std::string source;
  double start = 0.0;
  double stop = 0.0;
  int points = 0;
};

struct TranCard {
  double t_stop = 0.0;
  double dt_max = 0.0;  // 0 => auto
};

struct AcCard {
  std::string source;
  double f_start = 0.0;
  double f_stop = 0.0;
  int points_per_decade = 10;
};

// ---- hierarchy bookkeeping (filled by the parser) ----
// The parser flattens .subckt instances into the Circuit, but the
// hierarchical lint engine (lint/hier/) re-analyzes each definition once and
// composes per-instance summaries, so the parse also records the raw
// definitions, every instantiation site, and the top-level (scope-0) card
// lines it flattened them from.

struct SubcktInfo {
  std::string name;                // definition name, lowercase
  std::vector<std::string> ports;  // port names as written on .subckt
  int def_line = -1;               // 1-based line of the .subckt card
  // Comment-stripped body lines with their original line numbers.
  std::vector<std::pair<std::string, int>> body;
  // FNV-1a over name, ports, and body text: the per-definition lint-summary
  // cache key (lint/lint_cache.h).  Never 0.
  std::uint64_t content_hash = 1;
};

struct SubcktInstanceInfo {
  std::string name;  // flattened device prefix, e.g. "X3" or "X3.X17"
  std::string def;   // instantiated definition name, lowercase
  // Resolved global node bound to each port, parallel to SubcktInfo::ports.
  std::vector<std::string> bindings;
  int line = -1;             // 1-based line of the X card
  std::size_t depth = 0;     // 0 = instantiated at netlist top level
};

class ParsedNetlist {
 public:
  // The non-const accessor hands out mutable device state, so the cached
  // lint verdict for the parsed text no longer applies: drop the content
  // hash (see lint/lint_cache.h) and re-lint from scratch on the next run_*.
  Circuit& circuit() {
    content_hash_ = 0;
    return circuit_;
  }
  const Circuit& circuit() const { return circuit_; }

  const std::string& title() const { return title_; }
  const std::vector<Probe>& probes() const { return probes_; }
  const std::optional<DcSweepCard>& dc_card() const { return dc_; }
  const std::optional<TranCard>& tran_card() const { return tran_; }
  const std::optional<AcCard>& ac_card() const { return ac_; }

  // Execute the .dc card (throws std::logic_error if absent).
  Waveform run_dc_sweep();
  // Execute the .tran card (throws std::logic_error if absent).
  Waveform run_tran();
  // Execute the .ac card (throws std::logic_error if absent).
  Waveform run_ac();
  // Operating point with the default probes evaluated.
  std::optional<DCSolution> run_op();

  // ---- static analysis ----
  // Runs the full lint rule set (see lint/linter.h) on the parsed circuit,
  // cards, and probes.  The overload without arguments uses lint_options().
  lint::LintReport lint() const;
  lint::LintReport lint(const lint::LintOptions& options) const;

  // run_* lint by default and throw lint::LintError on error-severity
  // diagnostics — before any Newton iteration runs.  Tests that build
  // intentionally degenerate circuits can opt out here, or disable
  // individual rules through lint_options().
  void set_lint_on_run(bool enabled) { lint_on_run_ = enabled; }
  bool lint_on_run() const { return lint_on_run_; }
  lint::LintOptions& lint_options() { return lint_options_; }

  // ---- source-location bookkeeping (filled by the parser) ----
  void record_device_line(const std::string& name, int line);
  void record_node_line(const std::string& name, int line);
  // 1-based netlist line a device/node was introduced on; -1 if unknown.
  int device_line(const std::string& name) const;
  int node_line(const std::string& name) const;

  // ---- hierarchy bookkeeping (filled by the parser) ----
  // Like the line maps these record parse facts, so they do not drop the
  // content hash.
  void record_subckt(SubcktInfo info) { subckts_.push_back(std::move(info)); }
  void record_instance(SubcktInstanceInfo info) {
    instance_prefixes_.insert(info.name + ".");
    instances_.push_back(std::move(info));
  }
  void record_top_card(std::string line, int line_no) {
    top_cards_.emplace_back(std::move(line), line_no);
  }
  const std::vector<SubcktInfo>& subckt_infos() const { return subckts_; }
  const std::vector<SubcktInstanceInfo>& instance_infos() const {
    return instances_;
  }
  // Raw scope-0 card lines (devices and directives; X cards, .probe, .subckt
  // bodies, and .end excluded) with their original line numbers.
  const std::vector<std::pair<std::string, int>>& top_card_lines() const {
    return top_cards_;
  }
  // Hierarchical instance path of a flattened device/node name: the longest
  // instance-prefix chain with '.' rendered as '/', e.g. "X3.X17.M2" ->
  // "X3/X17".  "" for top-level names (including helper companions such as
  // "M1.cgs", whose dots are not instance prefixes).
  std::string instance_path_of(const std::string& name) const;

  // ---- signal role annotations (.role cards) ----
  // `.role <source> <role>` pins a signal's protocol role ("power",
  // "power-gate", "wordline", "store-enable", ...) for the temporal lint
  // pass, overriding the name heuristics.  Names compare case-insensitively.
  void set_role_annotation(const std::string& device, std::string role);
  // Annotated role id for `device`; nullptr when none.
  const std::string* role_annotation(const std::string& device) const;

  // ---- power-domain annotations (.domain cards) ----
  // `.domain <node> <name> [gated|always-on]` declares the designer's power
  // intent for a rail node; the power-* lint family checks the extracted
  // domain map against these declarations.
  void add_domain_annotation(lint::power::DomainAnnotation ann) {
    content_hash_ = 0;
    domain_annotations_.push_back(std::move(ann));
  }
  const std::vector<lint::power::DomainAnnotation>& domain_annotations() const {
    return domain_annotations_;
  }

  // ---- architecture annotation (.arch card) ----
  // `.arch nvpg|nof|osr` pins the power-gating architecture the schedule
  // implements; the temporal lint pass then checks the matching protocol
  // instead of inferring it from signal roles.  Stored lowercase.
  void set_arch_annotation(std::string arch) {
    content_hash_ = 0;
    arch_annotation_ = std::move(arch);
  }
  const std::optional<std::string>& arch_annotation() const {
    return arch_annotation_;
  }

  // ---- lint-result cache key ----
  // FNV-1a over the raw netlist text, set once by the parser; 0 = not
  // cacheable.  Every mutation path (non-const circuit(), the builder
  // methods below) resets it to 0 so a post-edited netlist is never served
  // the stale cached report of its original text.
  std::uint64_t content_hash() const { return content_hash_; }
  void set_content_hash(std::uint64_t h) { content_hash_ = h; }

  // Diagnostics the parser itself produced (e.g. unused .subckt ports);
  // merged into every lint() report.
  void add_parse_diagnostic(lint::Diagnostic d);
  const std::vector<lint::Diagnostic>& parse_diagnostics() const {
    return parse_diags_;
  }

  // Builder methods (used by the parser; also handy for programmatic
  // post-editing of a parsed netlist).  Each drops the content hash: the
  // parser stamps it after the last builder call, so only post-parse edits
  // actually lose cacheability.
  void set_title(std::string t) {
    content_hash_ = 0;
    title_ = std::move(t);
  }
  void set_dc_card(DcSweepCard c) {
    content_hash_ = 0;
    dc_ = c;
  }
  void set_tran_card(TranCard c) {
    content_hash_ = 0;
    tran_ = c;
  }
  void set_ac_card(AcCard c) {
    content_hash_ = 0;
    ac_ = std::move(c);
  }
  void add_probe(Probe p) {
    content_hash_ = 0;
    probes_.push_back(std::move(p));
  }

  // The lint gate every run_* passes through: throws lint::LintError when
  // lint_on_run() is set and linting reports errors.  Consults the
  // process-wide lint-result cache (lint/lint_cache.h) keyed on
  // content_hash() and the options fingerprint; a netlist mutated since
  // parse (hash 0) always re-lints.  Public so callers can pay the gate
  // once up front (and tests can exercise the cache directly).
  void ensure_lint_ok();

 private:
  Circuit circuit_;
  std::string title_;
  std::vector<Probe> probes_;
  std::optional<DcSweepCard> dc_;
  std::optional<TranCard> tran_;
  std::optional<AcCard> ac_;
  std::unordered_map<std::string, int> device_lines_;
  std::unordered_map<std::string, int> node_lines_;
  std::vector<SubcktInfo> subckts_;
  std::vector<SubcktInstanceInfo> instances_;
  std::unordered_set<std::string> instance_prefixes_;  // "X3.", "X3.X17."
  std::vector<std::pair<std::string, int>> top_cards_;
  std::unordered_map<std::string, std::string> role_annotations_;
  std::vector<lint::power::DomainAnnotation> domain_annotations_;
  std::optional<std::string> arch_annotation_;
  std::vector<lint::Diagnostic> parse_diags_;
  lint::LintOptions lint_options_;
  bool lint_on_run_ = true;
  std::uint64_t content_hash_ = 0;
};

class NetlistParser {
 public:
  // Parses the full netlist text.  First line is the title (SPICE
  // convention) unless it starts with a recognized card letter or '.'.
  std::unique_ptr<ParsedNetlist> parse(const std::string& text);
  std::unique_ptr<ParsedNetlist> parse_stream(std::istream& in);
};

// Number with engineering suffix, e.g. "2.2k" -> 2200.  Returns nullopt on
// malformed input.
std::optional<double> parse_si_number(const std::string& token);

}  // namespace nvsram::spice
