#include "spice/fet_element.h"

#include "spice/elements.h"

namespace nvsram::spice {

FinFETElement::FinFETElement(std::string name, NodeId drain, NodeId gate,
                             NodeId source, models::FinFETParams params)
    : Device(std::move(name)), drain_(drain), gate_(gate), source_(source),
      model_(params) {}

void FinFETElement::stamp(StampContext& ctx) {
  const double vgs = ctx.node_voltage(gate_) - ctx.node_voltage(source_);
  const double vds = ctx.node_voltage(drain_) - ctx.node_voltage(source_);
  const auto out = model_.evaluate(vgs, vds);

  // i_d(vgs, vds) ~ ids0 + gm (vgs - vgs0) + gds (vds - vds0); current flows
  // drain -> source.
  const double gm = out.gm;
  const double gds = out.gds;

  ctx.mat_nn(drain_, gate_, gm);
  ctx.mat_nn(drain_, drain_, gds);
  ctx.mat_nn(drain_, source_, -(gm + gds));
  ctx.mat_nn(source_, gate_, -gm);
  ctx.mat_nn(source_, drain_, -gds);
  ctx.mat_nn(source_, source_, gm + gds);

  const double i_eq = out.ids - gm * vgs - gds * vds;
  ctx.stamp_current(drain_, source_, i_eq);
}

void FinFETElement::stamp_pattern(PatternContext& ctx) const {
  // The gate ROW receives nothing from the channel: the gate is insulated
  // and only senses.  Its equation must be fed by other devices (the Cgs/Cgd
  // companions outside DC) or the node is structurally floating — exactly
  // what the analyzer should report.
  ctx.mat_nn(drain_, gate_);
  ctx.mat_nn(drain_, drain_);
  ctx.mat_nn(drain_, source_);
  ctx.mat_nn(source_, gate_);
  ctx.mat_nn(source_, drain_);
  ctx.mat_nn(source_, source_);
}

double FinFETElement::current(const SolutionView& s) const {
  const double vgs = s.node_voltage(gate_) - s.node_voltage(source_);
  const double vds = s.node_voltage(drain_) - s.node_voltage(source_);
  return model_.evaluate(vgs, vds).ids;
}

void stamp_finfet_lanes(FinFETElement* const* fets, StampBatch& batch) {
  const std::size_t k = batch.lane_count();
  const NodeId drain = fets[0]->drain();
  const NodeId gate = fets[0]->gate();
  const NodeId source = fets[0]->source();

  // Zero-initialized: the compiler cannot see that gather/evaluate only
  // touch the first lane_count() lanes, and -Wmaybe-uninitialized fires at
  // high optimization levels otherwise.
  double vg[kMaxBatchLanes] = {}, vd[kMaxBatchLanes] = {},
         vs[kMaxBatchLanes] = {};
  double vgs[kMaxBatchLanes] = {}, vds[kMaxBatchLanes] = {};
  models::FinFETOutput out[kMaxBatchLanes] = {};

  batch.gather_node_voltage(gate, vg);
  batch.gather_node_voltage(drain, vd);
  batch.gather_node_voltage(source, vs);
  for (std::size_t l = 0; l < k; ++l) {
    vgs[l] = vg[l] - vs[l];
    vds[l] = vd[l] - vs[l];
  }

  bool shared_params = true;
  for (std::size_t l = 1; l < k && shared_params; ++l) {
    shared_params = fets[l]->model().params() == fets[0]->model().params();
  }
  if (shared_params) {
    fets[0]->model().evaluate_many(vgs, vds, k, out);
  } else {
    for (std::size_t l = 0; l < k; ++l) {
      out[l] = fets[l]->model().evaluate(vgs[l], vds[l]);
    }
  }

  for (std::size_t l = 0; l < k; ++l) {
    StampContext& ctx = batch.lane(l);
    const double gm = out[l].gm;
    const double gds = out[l].gds;
    ctx.mat_nn(drain, gate, gm);
    ctx.mat_nn(drain, drain, gds);
    ctx.mat_nn(drain, source, -(gm + gds));
    ctx.mat_nn(source, gate, -gm);
    ctx.mat_nn(source, drain, -gds);
    ctx.mat_nn(source, source, gm + gds);
    const double i_eq = out[l].ids - gm * vgs[l] - gds * vds[l];
    ctx.stamp_current(drain, source, i_eq);
  }
}

FinFETElement* add_finfet(Circuit& ckt, const std::string& name, NodeId drain,
                          NodeId gate, NodeId source,
                          const models::FinFETParams& params) {
  auto* fet = ckt.add<FinFETElement>(name, drain, gate, source, params);
  ckt.add<Capacitor>(name + ".cgs", gate, source, params.cgs());
  ckt.add<Capacitor>(name + ".cgd", gate, drain, params.cgd());
  // A junction cap on a grounded terminal would sit between ground and
  // ground: it stamps nothing, so skip it instead of creating a degenerate
  // self-connected device.
  if (drain != kGround) {
    ckt.add<Capacitor>(name + ".cjd", drain, kGround, params.cjunction());
  }
  if (source != kGround) {
    ckt.add<Capacitor>(name + ".cjs", source, kGround, params.cjunction());
  }
  return fet;
}

}  // namespace nvsram::spice
