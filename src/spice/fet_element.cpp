#include "spice/fet_element.h"

#include "spice/elements.h"

namespace nvsram::spice {

FinFETElement::FinFETElement(std::string name, NodeId drain, NodeId gate,
                             NodeId source, models::FinFETParams params)
    : Device(std::move(name)), drain_(drain), gate_(gate), source_(source),
      model_(params) {}

void FinFETElement::stamp(StampContext& ctx) {
  const double vgs = ctx.node_voltage(gate_) - ctx.node_voltage(source_);
  const double vds = ctx.node_voltage(drain_) - ctx.node_voltage(source_);
  const auto out = model_.evaluate(vgs, vds);

  // i_d(vgs, vds) ~ ids0 + gm (vgs - vgs0) + gds (vds - vds0); current flows
  // drain -> source.
  const double gm = out.gm;
  const double gds = out.gds;

  ctx.mat_nn(drain_, gate_, gm);
  ctx.mat_nn(drain_, drain_, gds);
  ctx.mat_nn(drain_, source_, -(gm + gds));
  ctx.mat_nn(source_, gate_, -gm);
  ctx.mat_nn(source_, drain_, -gds);
  ctx.mat_nn(source_, source_, gm + gds);

  const double i_eq = out.ids - gm * vgs - gds * vds;
  ctx.stamp_current(drain_, source_, i_eq);
}

void FinFETElement::stamp_pattern(PatternContext& ctx) const {
  // The gate ROW receives nothing from the channel: the gate is insulated
  // and only senses.  Its equation must be fed by other devices (the Cgs/Cgd
  // companions outside DC) or the node is structurally floating — exactly
  // what the analyzer should report.
  ctx.mat_nn(drain_, gate_);
  ctx.mat_nn(drain_, drain_);
  ctx.mat_nn(drain_, source_);
  ctx.mat_nn(source_, gate_);
  ctx.mat_nn(source_, drain_);
  ctx.mat_nn(source_, source_);
}

double FinFETElement::current(const SolutionView& s) const {
  const double vgs = s.node_voltage(gate_) - s.node_voltage(source_);
  const double vds = s.node_voltage(drain_) - s.node_voltage(source_);
  return model_.evaluate(vgs, vds).ids;
}

FinFETElement* add_finfet(Circuit& ckt, const std::string& name, NodeId drain,
                          NodeId gate, NodeId source,
                          const models::FinFETParams& params) {
  auto* fet = ckt.add<FinFETElement>(name, drain, gate, source, params);
  ckt.add<Capacitor>(name + ".cgs", gate, source, params.cgs());
  ckt.add<Capacitor>(name + ".cgd", gate, drain, params.cgd());
  // A junction cap on a grounded terminal would sit between ground and
  // ground: it stamps nothing, so skip it instead of creating a degenerate
  // self-connected device.
  if (drain != kGround) {
    ckt.add<Capacitor>(name + ".cjd", drain, kGround, params.cjunction());
  }
  if (source != kGround) {
    ckt.add<Capacitor>(name + ".cjs", source, kGround, params.cjunction());
  }
  return fet;
}

}  // namespace nvsram::spice
