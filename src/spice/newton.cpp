#include "spice/newton.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/lu.h"
#include "linalg/sparse_lu.h"
#include "linalg/structure.h"
#include "util/log.h"

namespace nvsram::spice {

NewtonOptions NewtonOptions::relaxed(int attempt) const {
  NewtonOptions r = *this;
  if (attempt <= 0) return r;
  // One shared ladder for every retry loop: each attempt loosens the
  // convergence budget 10x (floored at loose-but-sane values), doubles the
  // iteration budget, and raises gmin to tame near-singular bias points.
  const double scale = std::pow(10.0, attempt);
  r.reltol = std::min(reltol * scale, 1e-2);
  r.abstol_v = std::min(abstol_v * scale, 1e-4);
  r.abstol_i = std::min(abstol_i * scale, 1e-7);
  r.gmin = std::min(gmin * scale, 1e-9);
  r.max_iterations = max_iterations * (attempt + 1);
  return r;
}

std::string unknown_name(const Circuit& circuit, const MnaLayout& layout,
                         std::size_t index) {
  if (index < layout.node_count() - 1) return circuit.node_name(index + 1);
  return "branch[" + std::to_string(index - (layout.node_count() - 1)) + "]";
}

namespace {

// Scans `v` for the first non-finite entry; returns its index or npos.
std::size_t first_non_finite(const linalg::Vector& v) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!std::isfinite(v[i])) return i;
  }
  return std::numeric_limits<std::size_t>::max();
}

}  // namespace

NewtonResult solve_newton(Circuit& circuit, const MnaLayout& layout,
                          linalg::Vector& x, double time, double dt, bool dc,
                          IntegrationMethod method, const NewtonOptions& opts,
                          NewtonWorkspace* ws) {
  const std::size_t n = layout.unknown_count();
  const std::size_t node_unknowns = layout.node_count() - 1;
  constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();
  x.resize(n, 0.0);

  linalg::SparseBuilder builder(n);
  linalg::Vector rhs(n, 0.0);
  NewtonResult result;
  SolveDiagnostics& diag = result.diagnostics;
  diag.time = time;
  diag.last_dt = dt;

  FaultPlan* faults = circuit.fault_plan();
  const int solve_index = faults ? faults->begin_solve() : 0;

  // Injected hard singularity: report it exactly like a real one.
  if (faults && faults->fires(FaultKind::kSingular, solve_index)) {
    result.singular = true;
    diag.singular = true;
    diag.injected = true;
    util::log_warn() << "newton: injected singular fault at solve "
                     << solve_index << " (t=" << time << ")";
    return result;
  }
  const bool stalled =
      faults && faults->fires(FaultKind::kStall, solve_index);

  for (int iter = 1; iter <= opts.max_iterations; ++iter) {
    result.iterations = iter;
    diag.iterations = iter;
    builder.clear();
    std::fill(rhs.begin(), rhs.end(), 0.0);

    StampContext ctx(layout, x, builder, rhs, time, dt, dc, method,
                     opts.source_scale);
    bool first_device = true;
    for (const auto& dev : circuit.devices()) {
      const std::size_t mark = builder.triplets().size();
      dev->stamp(ctx);
      if (faults) {
        if (const FaultSpec* f =
                faults->stamp_fault(solve_index, dev->name(), first_device)) {
          (void)f;
          builder.add(0, 0, std::numeric_limits<double>::quiet_NaN());
          diag.injected = true;
        }
      }
      // Non-finite stamp guard: check only this device's new entries so the
      // culprit is attributed by name.
      const auto& trips = builder.triplets();
      for (std::size_t i = mark; i < trips.size(); ++i) {
        if (!std::isfinite(trips[i].value)) {
          diag.non_finite = NonFiniteSite::kStamp;
          diag.non_finite_device = dev->name();
          util::log_warn() << "newton: non-finite stamp from device '"
                           << dev->name() << "' at t=" << time;
          return result;
        }
      }
      first_device = false;
    }
    if (const std::size_t bad = first_non_finite(rhs); bad != kNpos) {
      diag.non_finite = NonFiniteSite::kRhs;
      diag.worst_node = unknown_name(circuit, layout, bad);
      util::log_warn() << "newton: non-finite RHS at '" << diag.worst_node
                       << "', t=" << time;
      return result;
    }
    // gmin from every node to ground: keeps floating nodes and cut-off FET
    // stacks numerically nonsingular.
    for (std::size_t i = 0; i < node_unknowns; ++i) {
      builder.add(i, i, opts.gmin);
    }

    const linalg::CsrMatrix a(builder);
    std::optional<linalg::Vector> solved;
    if (n <= linalg::kDenseCutoff) {
      linalg::LuFactorization lu;
      if (lu.factorize(a.to_dense())) {
        solved = lu.solve(rhs);
        diag.structure = StructuralVerdict::kSound;
      } else {
        diag.singular_pivot = lu.failed_pivot();
        if (lu.non_finite()) {
          diag.non_finite = NonFiniteSite::kFactor;
        } else {
          // A full-pivot-search failure: ask whether the pattern itself can
          // ever be nonsingular, so the diagnosis points at topology or at
          // values, not just "singular".
          const auto pattern =
              linalg::SparsityPattern::from_triplets(n, builder.triplets());
          diag.structure = linalg::maximum_matching(pattern).perfect(n)
                               ? StructuralVerdict::kSound
                               : StructuralVerdict::kSingular;
        }
      }
    } else {
      // Sparse path: KLU-style analyze (symbolic, pattern-only) + refactor
      // (numeric).  A caller-provided workspace keeps the analysis across
      // solves; without one a local analysis gives bit-identical numerics.
      linalg::SparseLu local;
      linalg::SparseLu& lu = ws ? ws->sparse_lu : local;
      bool ok = false;
      bool analyzed = lu.analyzed() && lu.pattern_matches(a);
      if (!analyzed) {
        analyzed = lu.analyze(a);
        if (analyzed && ws) ws->analyze_count++;
      }
      if (analyzed) {
        diag.structure = StructuralVerdict::kSound;
        ok = lu.refactor(a);
        if (ws) ws->refactor_count++;
        if (!ok && !lu.non_finite()) {
          // Numeric failure of the fixed matching-based pivot order; the
          // threshold-pivoting one-shot factorization may still succeed.
          ok = lu.factorize(a);
          if (ws) ws->fallback_count++;
        }
      } else {
        diag.structure = StructuralVerdict::kSingular;
      }
      if (ok) {
        solved = lu.solve(rhs);
      } else {
        diag.singular_pivot = lu.failed_pivot();
        if (lu.non_finite()) diag.non_finite = NonFiniteSite::kFactor;
      }
    }
    if (!solved) {
      result.singular = diag.non_finite == NonFiniteSite::kNone;
      diag.singular = result.singular;
      if (diag.singular_pivot != SolveDiagnostics::kNoPivot) {
        diag.worst_node = unknown_name(circuit, layout, diag.singular_pivot);
      }
      util::log_warn() << "newton: "
                       << (diag.singular ? "singular system"
                                         : "non-finite LU factor")
                       << " at t=" << time
                       << " (structure=" << to_string(diag.structure) << ")";
      return result;
    }
    if (const std::size_t bad = first_non_finite(*solved); bad != kNpos) {
      diag.non_finite = NonFiniteSite::kSolution;
      diag.worst_node = unknown_name(circuit, layout, bad);
      util::log_warn() << "newton: non-finite solution at '" << diag.worst_node
                       << "', t=" << time;
      return result;
    }

    // Convergence check on the raw update; tracks the worst offender (by
    // how far it exceeds its tolerance budget) for diagnostics.
    bool converged = true;
    double worst_ratio = 0.0;
    std::size_t worst_index = kNpos;
    double worst_delta = 0.0, worst_tol = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double delta = std::fabs((*solved)[i] - x[i]);
      const double abstol = (i < node_unknowns) ? opts.abstol_v : opts.abstol_i;
      const double tol = abstol + opts.reltol * std::max(std::fabs((*solved)[i]),
                                                         std::fabs(x[i]));
      if (delta > tol) converged = false;
      const double ratio = tol > 0.0 ? delta / tol : 0.0;
      if (ratio > worst_ratio) {
        worst_ratio = ratio;
        worst_index = i;
        worst_delta = delta;
        worst_tol = tol;
      }
    }
    if (worst_index != kNpos) {
      diag.worst_node = unknown_name(circuit, layout, worst_index);
      diag.worst_delta = worst_delta;
      diag.worst_tol = worst_tol;
    }
    if (converged && !stalled) {
      x = std::move(*solved);
      result.converged = true;
      diag.converged = true;
      return result;
    }

    // Damped update: limit node-voltage moves to keep the exponential models
    // inside their linear-ish region.
    for (std::size_t i = 0; i < n; ++i) {
      double next = (*solved)[i];
      if (i < node_unknowns) {
        const double delta = next - x[i];
        if (delta > opts.voltage_limit) next = x[i] + opts.voltage_limit;
        if (delta < -opts.voltage_limit) next = x[i] - opts.voltage_limit;
      }
      x[i] = next;
    }
  }
  if (stalled) diag.injected = true;
  return result;
}

NewtonResult solve_newton_with_recovery(Circuit& circuit,
                                        const MnaLayout& layout,
                                        linalg::Vector& x, double time,
                                        double dt, bool dc,
                                        IntegrationMethod method,
                                        const NewtonOptions& opts,
                                        const RecoveryOptions& recovery,
                                        const util::Deadline* deadline,
                                        NewtonWorkspace* ws) {
  const linalg::Vector x0 = x;

  NewtonResult plain =
      solve_newton(circuit, layout, x, time, dt, dc, method, opts, ws);
  if (plain.converged) return plain;
  if (deadline) deadline->check("recovery ladder");

  // ---- stage 1: gmin ramp ----
  // Solve a heavily loaded (gmin_start to ground everywhere) system, then
  // relax the loading rung by rung, warm-starting each rung from the last.
  if (recovery.gmin_ramp) {
    linalg::Vector attempt = x0;
    NewtonOptions rung_opts = opts;
    bool ladder_ok = true;
    NewtonResult rung;
    for (double g = recovery.gmin_start; g >= recovery.gmin_stop * 0.99;
         g /= recovery.gmin_factor) {
      if (deadline) deadline->check("recovery ladder (gmin ramp)");
      rung_opts.gmin = std::max(g, opts.gmin);
      rung = solve_newton(circuit, layout, attempt, time, dt, dc, method,
                          rung_opts, ws);
      plain.iterations += rung.iterations;
      if (!rung.converged) {
        ladder_ok = false;
        break;
      }
    }
    if (ladder_ok) {
      rung_opts.gmin = opts.gmin;
      rung = solve_newton(circuit, layout, attempt, time, dt, dc, method,
                          rung_opts, ws);
      plain.iterations += rung.iterations;
      if (rung.converged) {
        x = std::move(attempt);
        rung.iterations = plain.iterations;
        rung.diagnostics.stage = RecoveryStage::kGminRamp;
        return rung;
      }
    }
  }

  // ---- stage 2: source ramp ----
  // Ramp every independent source from zero (DC) or from the entry scale's
  // fraction (transient salvage) up to the requested scale.
  if (recovery.source_ramp && recovery.source_steps > 0) {
    linalg::Vector attempt =
        recovery.source_ramp_from_zero ? linalg::Vector(x0.size(), 0.0) : x0;
    NewtonOptions ramp_opts = opts;
    bool ramp_ok = true;
    NewtonResult rung;
    for (int s = 1; s <= recovery.source_steps; ++s) {
      if (deadline) deadline->check("recovery ladder (source ramp)");
      ramp_opts.source_scale = opts.source_scale * static_cast<double>(s) /
                               static_cast<double>(recovery.source_steps);
      rung = solve_newton(circuit, layout, attempt, time, dt, dc, method,
                          ramp_opts, ws);
      plain.iterations += rung.iterations;
      if (!rung.converged) {
        util::log_warn() << "newton: source ramp failed at scale "
                         << ramp_opts.source_scale << " (t=" << time << ")";
        ramp_ok = false;
        break;
      }
    }
    if (ramp_ok) {
      x = std::move(attempt);
      rung.iterations = plain.iterations;
      rung.diagnostics.stage = RecoveryStage::kSourceRamp;
      return rung;
    }
  }

  plain.diagnostics.stage = RecoveryStage::kExhausted;
  x = x0;
  return plain;
}

}  // namespace nvsram::spice
