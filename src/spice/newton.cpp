#include "spice/newton.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "linalg/lu.h"
#include "linalg/sparse_lu.h"
#include "linalg/structure.h"
#include "spice/fet_element.h"
#include "spice/mtj_element.h"
#include "util/log.h"

namespace nvsram::spice {

NewtonOptions NewtonOptions::relaxed(int attempt) const {
  NewtonOptions r = *this;
  if (attempt <= 0) return r;
  // One shared ladder for every retry loop: each attempt loosens the
  // convergence budget 10x (floored at loose-but-sane values), doubles the
  // iteration budget, and raises gmin to tame near-singular bias points.
  const double scale = std::pow(10.0, attempt);
  r.reltol = std::min(reltol * scale, 1e-2);
  r.abstol_v = std::min(abstol_v * scale, 1e-4);
  r.abstol_i = std::min(abstol_i * scale, 1e-7);
  r.gmin = std::min(gmin * scale, 1e-9);
  r.max_iterations = max_iterations * (attempt + 1);
  return r;
}

std::string unknown_name(const Circuit& circuit, const MnaLayout& layout,
                         std::size_t index) {
  if (index < layout.node_count() - 1) return circuit.node_name(index + 1);
  return "branch[" + std::to_string(index - (layout.node_count() - 1)) + "]";
}

namespace {

// Scans `v` for the first non-finite entry; returns its index or npos.
std::size_t first_non_finite(const linalg::Vector& v) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!std::isfinite(v[i])) return i;
  }
  return std::numeric_limits<std::size_t>::max();
}

}  // namespace

NewtonResult solve_newton(Circuit& circuit, const MnaLayout& layout,
                          linalg::Vector& x, double time, double dt, bool dc,
                          IntegrationMethod method, const NewtonOptions& opts,
                          NewtonWorkspace* ws) {
  const std::size_t n = layout.unknown_count();
  const std::size_t node_unknowns = layout.node_count() - 1;
  constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();
  x.resize(n, 0.0);

  linalg::SparseBuilder builder(n);
  linalg::Vector rhs(n, 0.0);
  NewtonResult result;
  SolveDiagnostics& diag = result.diagnostics;
  diag.time = time;
  diag.last_dt = dt;

  FaultPlan* faults = circuit.fault_plan();
  const int solve_index = faults ? faults->begin_solve() : 0;

  // Injected hard singularity: report it exactly like a real one.
  if (faults && faults->fires(FaultKind::kSingular, solve_index)) {
    result.singular = true;
    diag.singular = true;
    diag.injected = true;
    util::log_warn() << "newton: injected singular fault at solve "
                     << solve_index << " (t=" << time << ")";
    return result;
  }
  const bool stalled =
      faults && faults->fires(FaultKind::kStall, solve_index);

  for (int iter = 1; iter <= opts.max_iterations; ++iter) {
    result.iterations = iter;
    diag.iterations = iter;
    builder.clear();
    std::fill(rhs.begin(), rhs.end(), 0.0);

    StampContext ctx(layout, x, builder, rhs, time, dt, dc, method,
                     opts.source_scale);
    bool first_device = true;
    for (const auto& dev : circuit.devices()) {
      const std::size_t mark = builder.triplets().size();
      dev->stamp(ctx);
      if (faults) {
        if (const FaultSpec* f =
                faults->stamp_fault(solve_index, dev->name(), first_device)) {
          (void)f;
          builder.add(0, 0, std::numeric_limits<double>::quiet_NaN());
          diag.injected = true;
        }
      }
      // Non-finite stamp guard: check only this device's new entries so the
      // culprit is attributed by name.
      const auto& trips = builder.triplets();
      for (std::size_t i = mark; i < trips.size(); ++i) {
        if (!std::isfinite(trips[i].value)) {
          diag.non_finite = NonFiniteSite::kStamp;
          diag.non_finite_device = dev->name();
          util::log_warn() << "newton: non-finite stamp from device '"
                           << dev->name() << "' at t=" << time;
          return result;
        }
      }
      first_device = false;
    }
    if (const std::size_t bad = first_non_finite(rhs); bad != kNpos) {
      diag.non_finite = NonFiniteSite::kRhs;
      diag.worst_node = unknown_name(circuit, layout, bad);
      util::log_warn() << "newton: non-finite RHS at '" << diag.worst_node
                       << "', t=" << time;
      return result;
    }
    // gmin from every node to ground: keeps floating nodes and cut-off FET
    // stacks numerically nonsingular.
    for (std::size_t i = 0; i < node_unknowns; ++i) {
      builder.add(i, i, opts.gmin);
    }

    const linalg::CsrMatrix a(builder);
    std::optional<linalg::Vector> solved;
    if (n <= linalg::kDenseCutoff) {
      linalg::LuFactorization lu;
      if (lu.factorize(a.to_dense())) {
        solved = lu.solve(rhs);
        diag.structure = StructuralVerdict::kSound;
      } else {
        diag.singular_pivot = lu.failed_pivot();
        if (lu.non_finite()) {
          diag.non_finite = NonFiniteSite::kFactor;
        } else {
          // A full-pivot-search failure: ask whether the pattern itself can
          // ever be nonsingular, so the diagnosis points at topology or at
          // values, not just "singular".
          const auto pattern =
              linalg::SparsityPattern::from_triplets(n, builder.triplets());
          diag.structure = linalg::maximum_matching(pattern).perfect(n)
                               ? StructuralVerdict::kSound
                               : StructuralVerdict::kSingular;
        }
      }
    } else {
      // Sparse path: KLU-style analyze (symbolic, pattern-only) + refactor
      // (numeric).  A caller-provided workspace keeps the analysis across
      // solves; without one a local analysis gives bit-identical numerics.
      linalg::SparseLu local;
      linalg::SparseLu& lu = ws ? ws->sparse_lu : local;
      bool ok = false;
      bool analyzed = lu.analyzed() && lu.pattern_matches(a);
      if (!analyzed) {
        analyzed = lu.analyze(a);
        if (analyzed && ws) ws->analyze_count++;
      }
      if (analyzed) {
        diag.structure = StructuralVerdict::kSound;
        ok = lu.refactor(a);
        if (ws) ws->refactor_count++;
        if (!ok && !lu.non_finite()) {
          // Numeric failure of the fixed matching-based pivot order; the
          // threshold-pivoting one-shot factorization may still succeed.
          ok = lu.factorize(a);
          if (ws) ws->fallback_count++;
        }
      } else {
        diag.structure = StructuralVerdict::kSingular;
      }
      if (ok) {
        solved = lu.solve(rhs);
      } else {
        diag.singular_pivot = lu.failed_pivot();
        if (lu.non_finite()) diag.non_finite = NonFiniteSite::kFactor;
      }
    }
    if (!solved) {
      result.singular = diag.non_finite == NonFiniteSite::kNone;
      diag.singular = result.singular;
      if (diag.singular_pivot != SolveDiagnostics::kNoPivot) {
        diag.worst_node = unknown_name(circuit, layout, diag.singular_pivot);
      }
      util::log_warn() << "newton: "
                       << (diag.singular ? "singular system"
                                         : "non-finite LU factor")
                       << " at t=" << time
                       << " (structure=" << to_string(diag.structure) << ")";
      return result;
    }
    if (const std::size_t bad = first_non_finite(*solved); bad != kNpos) {
      diag.non_finite = NonFiniteSite::kSolution;
      diag.worst_node = unknown_name(circuit, layout, bad);
      util::log_warn() << "newton: non-finite solution at '" << diag.worst_node
                       << "', t=" << time;
      return result;
    }

    // Convergence check on the raw update; tracks the worst offender (by
    // how far it exceeds its tolerance budget) for diagnostics.
    bool converged = true;
    double worst_ratio = 0.0;
    std::size_t worst_index = kNpos;
    double worst_delta = 0.0, worst_tol = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double delta = std::fabs((*solved)[i] - x[i]);
      const double abstol = (i < node_unknowns) ? opts.abstol_v : opts.abstol_i;
      const double tol = abstol + opts.reltol * std::max(std::fabs((*solved)[i]),
                                                         std::fabs(x[i]));
      if (delta > tol) converged = false;
      const double ratio = tol > 0.0 ? delta / tol : 0.0;
      if (ratio > worst_ratio) {
        worst_ratio = ratio;
        worst_index = i;
        worst_delta = delta;
        worst_tol = tol;
      }
    }
    if (worst_index != kNpos) {
      diag.worst_node = unknown_name(circuit, layout, worst_index);
      diag.worst_delta = worst_delta;
      diag.worst_tol = worst_tol;
    }
    if (converged && !stalled) {
      x = std::move(*solved);
      result.converged = true;
      diag.converged = true;
      return result;
    }

    // Damped update: limit node-voltage moves to keep the exponential models
    // inside their linear-ish region.
    for (std::size_t i = 0; i < n; ++i) {
      double next = (*solved)[i];
      if (i < node_unknowns) {
        const double delta = next - x[i];
        if (delta > opts.voltage_limit) next = x[i] + opts.voltage_limit;
        if (delta < -opts.voltage_limit) next = x[i] - opts.voltage_limit;
      }
      x[i] = next;
    }
  }
  if (stalled) diag.injected = true;
  return result;
}

NewtonResult solve_newton_with_recovery(Circuit& circuit,
                                        const MnaLayout& layout,
                                        linalg::Vector& x, double time,
                                        double dt, bool dc,
                                        IntegrationMethod method,
                                        const NewtonOptions& opts,
                                        const RecoveryOptions& recovery,
                                        const util::Deadline* deadline,
                                        NewtonWorkspace* ws) {
  const linalg::Vector x0 = x;

  NewtonResult plain =
      solve_newton(circuit, layout, x, time, dt, dc, method, opts, ws);
  if (plain.converged) return plain;
  if (deadline) deadline->check("recovery ladder");

  // ---- stage 1: gmin ramp ----
  // Solve a heavily loaded (gmin_start to ground everywhere) system, then
  // relax the loading rung by rung, warm-starting each rung from the last.
  if (recovery.gmin_ramp) {
    linalg::Vector attempt = x0;
    NewtonOptions rung_opts = opts;
    bool ladder_ok = true;
    NewtonResult rung;
    for (double g = recovery.gmin_start; g >= recovery.gmin_stop * 0.99;
         g /= recovery.gmin_factor) {
      if (deadline) deadline->check("recovery ladder (gmin ramp)");
      rung_opts.gmin = std::max(g, opts.gmin);
      rung = solve_newton(circuit, layout, attempt, time, dt, dc, method,
                          rung_opts, ws);
      plain.iterations += rung.iterations;
      if (!rung.converged) {
        ladder_ok = false;
        break;
      }
    }
    if (ladder_ok) {
      rung_opts.gmin = opts.gmin;
      rung = solve_newton(circuit, layout, attempt, time, dt, dc, method,
                          rung_opts, ws);
      plain.iterations += rung.iterations;
      if (rung.converged) {
        x = std::move(attempt);
        rung.iterations = plain.iterations;
        rung.diagnostics.stage = RecoveryStage::kGminRamp;
        return rung;
      }
    }
  }

  // ---- stage 2: source ramp ----
  // Ramp every independent source from zero (DC) or from the entry scale's
  // fraction (transient salvage) up to the requested scale.
  if (recovery.source_ramp && recovery.source_steps > 0) {
    linalg::Vector attempt =
        recovery.source_ramp_from_zero ? linalg::Vector(x0.size(), 0.0) : x0;
    NewtonOptions ramp_opts = opts;
    bool ramp_ok = true;
    NewtonResult rung;
    for (int s = 1; s <= recovery.source_steps; ++s) {
      if (deadline) deadline->check("recovery ladder (source ramp)");
      ramp_opts.source_scale = opts.source_scale * static_cast<double>(s) /
                               static_cast<double>(recovery.source_steps);
      rung = solve_newton(circuit, layout, attempt, time, dt, dc, method,
                          ramp_opts, ws);
      plain.iterations += rung.iterations;
      if (!rung.converged) {
        util::log_warn() << "newton: source ramp failed at scale "
                         << ramp_opts.source_scale << " (t=" << time << ")";
        ramp_ok = false;
        break;
      }
    }
    if (ramp_ok) {
      x = std::move(attempt);
      rung.iterations = plain.iterations;
      rung.diagnostics.stage = RecoveryStage::kSourceRamp;
      return rung;
    }
  }

  plain.diagnostics.stage = RecoveryStage::kExhausted;
  x = x0;
  return plain;
}

// ---------------------------------------------------------------------------
// BatchedNewton
// ---------------------------------------------------------------------------

BatchedNewton::BatchedNewton(std::vector<Circuit*> circuits,
                             std::vector<const MnaLayout*> layouts)
    : circuits_(std::move(circuits)), layouts_(std::move(layouts)) {
  const std::size_t k = circuits_.size();
  if (k == 0 || k != layouts_.size()) {
    throw std::invalid_argument("BatchedNewton: empty or misaligned batch");
  }
  if (k > kMaxBatchLanes) {
    throw std::invalid_argument("BatchedNewton: more than kMaxBatchLanes lanes");
  }
  n_ = layouts_[0]->unknown_count();
  node_unknowns_ = layouts_[0]->node_count() - 1;
  const std::size_t devices = circuits_[0]->devices().size();
  for (std::size_t l = 1; l < k; ++l) {
    if (layouts_[l]->unknown_count() != n_ ||
        layouts_[l]->node_count() != layouts_[0]->node_count() ||
        circuits_[l]->devices().size() != devices) {
      throw std::invalid_argument("BatchedNewton: lanes are not clones");
    }
  }
  build_groups();
  builders_.assign(k, linalg::SparseBuilder(n_));
  rhs_.assign(k, linalg::Vector(n_, 0.0));
  assemblers_.resize(k);
  mats_.resize(k);
  solved_.resize(k);
  dense_.resize(k);
  dense_lu_.resize(k);
  lane_ws_.resize(k);
}

void BatchedNewton::build_groups() {
  const std::size_t k = circuits_.size();
  const std::size_t devices = circuits_[0]->devices().size();
  groups_.clear();
  groups_.reserve(devices);
  for (std::size_t i = 0; i < devices; ++i) {
    DeviceGroup grp;
    grp.index = i;
    grp.fets.assign(k, nullptr);
    grp.mtjs.assign(k, nullptr);
    bool all_fet = true, all_mtj = true;
    for (std::size_t l = 0; l < k; ++l) {
      Device* dev = circuits_[l]->devices()[i].get();
      grp.fets[l] = dynamic_cast<FinFETElement*>(dev);
      grp.mtjs[l] = dynamic_cast<MTJElement*>(dev);
      all_fet = all_fet && grp.fets[l] != nullptr;
      all_mtj = all_mtj && grp.mtjs[l] != nullptr;
    }
    // Lane-parallel stamping additionally requires identical terminals
    // (always true for clones; anything else falls back to scalar).
    if (all_fet) {
      for (std::size_t l = 1; l < k && all_fet; ++l) {
        all_fet = grp.fets[l]->drain() == grp.fets[0]->drain() &&
                  grp.fets[l]->gate() == grp.fets[0]->gate() &&
                  grp.fets[l]->source() == grp.fets[0]->source();
      }
    }
    if (all_mtj) {
      for (std::size_t l = 1; l < k && all_mtj; ++l) {
        all_mtj = grp.mtjs[l]->pinned_node() == grp.mtjs[0]->pinned_node() &&
                  grp.mtjs[l]->free_node() == grp.mtjs[0]->free_node();
      }
    }
    grp.kind = all_fet   ? DeviceGroup::Kind::kFinFET
               : all_mtj ? DeviceGroup::Kind::kMtj
                         : DeviceGroup::Kind::kScalar;
    if (grp.kind != DeviceGroup::Kind::kFinFET) grp.fets.clear();
    if (grp.kind != DeviceGroup::Kind::kMtj) grp.mtjs.clear();
    groups_.push_back(std::move(grp));
  }
}

void BatchedNewton::peel_lane(std::size_t lane,
                              std::vector<NewtonResult>& results,
                              const std::vector<linalg::Vector*>& xs,
                              const linalg::Vector& x0, double time, double dt,
                              bool dc, IntegrationMethod method,
                              const NewtonOptions& opts) {
  // Restart the scalar path from the lane's entry iterate: Newton is
  // deterministic, so the scalar rerun retraces the lockstep trajectory
  // exactly and continues it wherever the batch could not.  The lane's own
  // workspace keeps a scalar fallback factorize() from clobbering the
  // shared analysis.
  ++peel_count_;
  *xs[lane] = x0;
  results[lane] = solve_newton(*circuits_[lane], *layouts_[lane], *xs[lane],
                               time, dt, dc, method, opts, &lane_ws_[lane]);
}

std::vector<NewtonResult> BatchedNewton::solve(
    const std::vector<linalg::Vector*>& xs, double time, double dt, bool dc,
    IntegrationMethod method, const NewtonOptions& opts) {
  const std::size_t k = circuits_.size();
  if (xs.size() != k) {
    throw std::invalid_argument("BatchedNewton::solve: iterate count");
  }
  constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();
  std::vector<NewtonResult> results(k);

  // Entry iterates, saved pre-resize so a peeled lane restarts from exactly
  // what the scalar path would have seen.
  std::vector<linalg::Vector> x0(k);
  for (std::size_t l = 0; l < k; ++l) x0[l] = *xs[l];

  // Lanes carrying a fault plan run scalar from the start: per-point
  // begin_solve() accounting and injected diagnostics cannot be batched.
  std::vector<std::size_t> active;
  active.reserve(k);
  for (std::size_t l = 0; l < k; ++l) {
    if (circuits_[l]->fault_plan() != nullptr) {
      peel_lane(l, results, xs, x0[l], time, dt, dc, method, opts);
    } else {
      xs[l]->resize(n_, 0.0);
      results[l].diagnostics.time = time;
      results[l].diagnostics.last_dt = dt;
      active.push_back(l);
    }
  }

  std::vector<StampContext> ctxs;
  ctxs.reserve(k);
  StampContext* ctx_ptrs[kMaxBatchLanes];
  FinFETElement* fet_lanes[kMaxBatchLanes];
  MTJElement* mtj_lanes[kMaxBatchLanes];
  const linalg::CsrMatrix* mat_lanes[kMaxBatchLanes];
  const linalg::Vector* rhs_lanes[kMaxBatchLanes];
  std::size_t marks[kMaxBatchLanes];
  std::vector<std::size_t> next_active;
  next_active.reserve(k);

  for (int iter = 1; iter <= opts.max_iterations && !active.empty(); ++iter) {
    ++lockstep_iterations_;
    lane_iterations_ += active.size();
    const std::size_t nact = active.size();

    ctxs.clear();
    for (std::size_t a = 0; a < nact; ++a) {
      const std::size_t l = active[a];
      results[l].iterations = iter;
      results[l].diagnostics.iterations = iter;
      builders_[l].clear();
      std::fill(rhs_[l].begin(), rhs_[l].end(), 0.0);
      ctxs.emplace_back(*layouts_[l], *xs[l], builders_[l], rhs_[l], time, dt,
                        dc, method, opts.source_scale);
      ctx_ptrs[a] = &ctxs[a];
    }
    StampBatch batch(ctx_ptrs, nact);

    // `done[a]` marks a lane whose result finalized mid-iteration (the
    // scalar path would have returned); its devices stop stamping — device
    // stamp() may mutate scratch state — and it drops from `active` below.
    bool done[kMaxBatchLanes] = {};

    // ---- stamping, device by device across all lanes ----
    for (const DeviceGroup& grp : groups_) {
      for (std::size_t a = 0; a < nact; ++a) {
        marks[a] = builders_[active[a]].triplets().size();
      }
      switch (grp.kind) {
        case DeviceGroup::Kind::kFinFET:
          for (std::size_t a = 0; a < nact; ++a) {
            fet_lanes[a] = grp.fets[active[a]];
          }
          stamp_finfet_lanes(fet_lanes, batch);
          break;
        case DeviceGroup::Kind::kMtj:
          for (std::size_t a = 0; a < nact; ++a) {
            mtj_lanes[a] = grp.mtjs[active[a]];
          }
          stamp_mtj_lanes(mtj_lanes, batch);
          break;
        case DeviceGroup::Kind::kScalar:
          for (std::size_t a = 0; a < nact; ++a) {
            if (done[a]) continue;
            circuits_[active[a]]->devices()[grp.index]->stamp(ctxs[a]);
          }
          break;
      }
      // Per-device non-finite stamp guard, per lane (same attribution as
      // the scalar path: first offending device wins).
      for (std::size_t a = 0; a < nact; ++a) {
        if (done[a]) continue;
        const std::size_t l = active[a];
        const auto& trips = builders_[l].triplets();
        for (std::size_t i = marks[a]; i < trips.size(); ++i) {
          if (!std::isfinite(trips[i].value)) {
            SolveDiagnostics& diag = results[l].diagnostics;
            diag.non_finite = NonFiniteSite::kStamp;
            diag.non_finite_device = circuits_[l]->devices()[grp.index]->name();
            util::log_warn() << "newton: non-finite stamp from device '"
                             << diag.non_finite_device << "' at t=" << time;
            done[a] = true;
            break;
          }
        }
      }
    }

    // ---- assemble + linear solve per lane ----
    for (std::size_t a = 0; a < nact; ++a) {
      if (done[a]) continue;
      const std::size_t l = active[a];
      SolveDiagnostics& diag = results[l].diagnostics;
      if (const std::size_t bad = first_non_finite(rhs_[l]); bad != kNpos) {
        diag.non_finite = NonFiniteSite::kRhs;
        diag.worst_node = unknown_name(*circuits_[l], *layouts_[l], bad);
        util::log_warn() << "newton: non-finite RHS at '" << diag.worst_node
                         << "', t=" << time;
        done[a] = true;
        continue;
      }
      for (std::size_t i = 0; i < node_unknowns_; ++i) {
        builders_[l].add(i, i, opts.gmin);
      }
      assemblers_[l].assemble(builders_[l], mats_[l]);
    }

    // `solved[a]`: lane produced a solution vector this iteration.
    bool solved[kMaxBatchLanes] = {};
    if (n_ <= linalg::kDenseCutoff) {
      // Dense path: per-lane partial-pivot LU (pivot orders may diverge
      // between lanes), allocation-free via the persistent factorization.
      for (std::size_t a = 0; a < nact; ++a) {
        if (done[a]) continue;
        const std::size_t l = active[a];
        SolveDiagnostics& diag = results[l].diagnostics;
        mats_[l].to_dense_into(dense_[l]);
        if (dense_lu_[l].factorize(dense_[l])) {
          solved_[l] = dense_lu_[l].solve(rhs_[l]);
          diag.structure = StructuralVerdict::kSound;
          solved[a] = true;
          continue;
        }
        diag.singular_pivot = dense_lu_[l].failed_pivot();
        if (dense_lu_[l].non_finite()) {
          diag.non_finite = NonFiniteSite::kFactor;
        } else {
          const auto pattern = linalg::SparsityPattern::from_triplets(
              n_, builders_[l].triplets());
          diag.structure = linalg::maximum_matching(pattern).perfect(n_)
                               ? StructuralVerdict::kSound
                               : StructuralVerdict::kSingular;
        }
      }
    } else {
      // Sparse path: one shared analysis, lockstep refactorization.  A lane
      // whose pattern diverges from lane 0's, or whose refactorization
      // fails (the scalar path would fall back to a full factorize), peels
      // off to the scalar path.
      std::size_t first = kNpos;
      for (std::size_t a = 0; a < nact && first == kNpos; ++a) {
        if (!done[a]) first = a;
      }
      if (first != kNpos) {
        const linalg::CsrMatrix& a0 = mats_[active[first]];
        bool analyzed = ws_.sparse_lu.analyzed() &&
                        ws_.sparse_lu.pattern_matches(a0);
        if (!analyzed) {
          analyzed = ws_.sparse_lu.analyze(a0);
          if (analyzed) ws_.analyze_count++;
        }
        // Lanes sharing the analyzed pattern factor in lockstep; the rest
        // peel.
        std::size_t batch_lanes[kMaxBatchLanes];
        std::size_t nbatch = 0;
        for (std::size_t a = 0; a < nact; ++a) {
          if (done[a]) continue;
          const std::size_t l = active[a];
          const bool matches = a == first || ws_.sparse_lu.pattern_matches(mats_[l]);
          if (!matches) {
            peel_lane(l, results, xs, x0[l], time, dt, dc, method, opts);
            done[a] = true;
            continue;
          }
          if (!analyzed) {
            // Structural singularity: the scalar verdict, per lane.
            SolveDiagnostics& diag = results[l].diagnostics;
            diag.structure = StructuralVerdict::kSingular;
            diag.singular_pivot = ws_.sparse_lu.failed_pivot();
            done[a] = true;
            results[l].singular = diag.non_finite == NonFiniteSite::kNone;
            diag.singular = results[l].singular;
            if (diag.singular_pivot != SolveDiagnostics::kNoPivot) {
              diag.worst_node =
                  unknown_name(*circuits_[l], *layouts_[l], diag.singular_pivot);
            }
            util::log_warn() << "newton: "
                             << (diag.singular ? "singular system"
                                               : "non-finite LU factor")
                             << " at t=" << time
                             << " (structure=" << to_string(diag.structure)
                             << ")";
            continue;
          }
          results[l].diagnostics.structure = StructuralVerdict::kSound;
          batch_lanes[nbatch] = a;
          mat_lanes[nbatch] = &mats_[l];
          ++nbatch;
        }
        if (nbatch > 0) {
          ws_.sparse_lu.refactor_lanes(mat_lanes, nbatch, lane_values_);
          ws_.refactor_count++;
          linalg::Vector* out_lanes[kMaxBatchLanes];
          for (std::size_t b = 0; b < nbatch; ++b) {
            const std::size_t a = batch_lanes[b];
            rhs_lanes[b] = &rhs_[active[a]];
            out_lanes[b] = &solved_[active[a]];
          }
          ws_.sparse_lu.solve_lanes(lane_values_, rhs_lanes, out_lanes);
          for (std::size_t b = 0; b < nbatch; ++b) {
            const std::size_t a = batch_lanes[b];
            if (lane_values_.valid(b)) {
              solved[a] = true;
            } else {
              peel_lane(active[a], results, xs, x0[active[a]], time, dt, dc,
                        method, opts);
              done[a] = true;
            }
          }
        }
      }
    }

    // ---- per-lane epilogue: guards, convergence, damping ----
    next_active.clear();
    for (std::size_t a = 0; a < nact; ++a) {
      if (done[a]) continue;
      const std::size_t l = active[a];
      SolveDiagnostics& diag = results[l].diagnostics;
      if (!solved[a]) {
        // Dense-path factorization failure (sparse failures peeled above).
        results[l].singular = diag.non_finite == NonFiniteSite::kNone;
        diag.singular = results[l].singular;
        if (diag.singular_pivot != SolveDiagnostics::kNoPivot) {
          diag.worst_node =
              unknown_name(*circuits_[l], *layouts_[l], diag.singular_pivot);
        }
        util::log_warn() << "newton: "
                         << (diag.singular ? "singular system"
                                           : "non-finite LU factor")
                         << " at t=" << time
                         << " (structure=" << to_string(diag.structure) << ")";
        continue;
      }
      if (const std::size_t bad = first_non_finite(solved_[l]); bad != kNpos) {
        diag.non_finite = NonFiniteSite::kSolution;
        diag.worst_node = unknown_name(*circuits_[l], *layouts_[l], bad);
        util::log_warn() << "newton: non-finite solution at '"
                         << diag.worst_node << "', t=" << time;
        continue;
      }

      bool converged = true;
      double worst_ratio = 0.0;
      std::size_t worst_index = kNpos;
      double worst_delta = 0.0, worst_tol = 0.0;
      linalg::Vector& x = *xs[l];
      for (std::size_t i = 0; i < n_; ++i) {
        const double delta = std::fabs(solved_[l][i] - x[i]);
        const double abstol =
            (i < node_unknowns_) ? opts.abstol_v : opts.abstol_i;
        const double tol =
            abstol + opts.reltol * std::max(std::fabs(solved_[l][i]),
                                            std::fabs(x[i]));
        if (delta > tol) converged = false;
        const double ratio = tol > 0.0 ? delta / tol : 0.0;
        if (ratio > worst_ratio) {
          worst_ratio = ratio;
          worst_index = i;
          worst_delta = delta;
          worst_tol = tol;
        }
      }
      if (worst_index != kNpos) {
        diag.worst_node = unknown_name(*circuits_[l], *layouts_[l], worst_index);
        diag.worst_delta = worst_delta;
        diag.worst_tol = worst_tol;
      }
      if (converged) {
        x = std::move(solved_[l]);
        results[l].converged = true;
        diag.converged = true;
        continue;
      }
      for (std::size_t i = 0; i < n_; ++i) {
        double next = solved_[l][i];
        if (i < node_unknowns_) {
          const double delta = next - x[i];
          if (delta > opts.voltage_limit) next = x[i] + opts.voltage_limit;
          if (delta < -opts.voltage_limit) next = x[i] - opts.voltage_limit;
        }
        x[i] = next;
      }
      next_active.push_back(l);
    }
    active.swap(next_active);
  }
  return results;
}

std::vector<NewtonResult> BatchedNewton::solve_with_recovery(
    const std::vector<linalg::Vector*>& xs, double time, double dt, bool dc,
    IntegrationMethod method, const NewtonOptions& opts,
    const RecoveryOptions& recovery, const util::Deadline* deadline) {
  const std::size_t k = circuits_.size();
  if (xs.size() != k) {
    throw std::invalid_argument("BatchedNewton::solve_with_recovery: iterate count");
  }
  std::vector<linalg::Vector> x0(k);
  for (std::size_t l = 0; l < k; ++l) x0[l] = *xs[l];

  std::vector<NewtonResult> results =
      solve(xs, time, dt, dc, method, opts);
  for (std::size_t l = 0; l < k; ++l) {
    if (results[l].converged) continue;
    if (deadline) deadline->check("batched recovery ladder");
    // The full scalar ladder from the entry iterate: its internal plain
    // solve retraces the lockstep trajectory (identical failure), then the
    // gmin/source rungs run warm-started and per-lane as they must.
    ++peel_count_;
    *xs[l] = x0[l];
    results[l] = solve_newton_with_recovery(*circuits_[l], *layouts_[l],
                                            *xs[l], time, dt, dc, method, opts,
                                            recovery, deadline, &lane_ws_[l]);
  }
  return results;
}

}  // namespace nvsram::spice
