#include "spice/newton.h"

#include <algorithm>
#include <cmath>

#include "linalg/lu.h"
#include "linalg/sparse_lu.h"
#include "util/log.h"

namespace nvsram::spice {

NewtonResult solve_newton(Circuit& circuit, const MnaLayout& layout,
                          linalg::Vector& x, double time, double dt, bool dc,
                          IntegrationMethod method, const NewtonOptions& opts) {
  const std::size_t n = layout.unknown_count();
  const std::size_t node_unknowns = layout.node_count() - 1;
  x.resize(n, 0.0);

  linalg::SparseBuilder builder(n);
  linalg::Vector rhs(n, 0.0);
  NewtonResult result;

  for (int iter = 1; iter <= opts.max_iterations; ++iter) {
    result.iterations = iter;
    builder.clear();
    std::fill(rhs.begin(), rhs.end(), 0.0);

    StampContext ctx(layout, x, builder, rhs, time, dt, dc, method,
                     opts.source_scale);
    for (const auto& dev : circuit.devices()) {
      dev->stamp(ctx);
    }
    // gmin from every node to ground: keeps floating nodes and cut-off FET
    // stacks numerically nonsingular.
    for (std::size_t i = 0; i < node_unknowns; ++i) {
      builder.add(i, i, opts.gmin);
    }

    const linalg::CsrMatrix a(builder);
    std::optional<linalg::Vector> solved;
    if (n <= linalg::kDenseCutoff) {
      solved = linalg::solve_dense(a.to_dense(), rhs);
    } else {
      linalg::SparseLu lu;
      if (lu.factorize(a)) solved = lu.solve(rhs);
    }
    if (!solved) {
      result.singular = true;
      util::log_warn() << "newton: singular system at t=" << time;
      return result;
    }

    // Convergence check on the raw update.
    bool converged = true;
    for (std::size_t i = 0; i < n; ++i) {
      const double delta = std::fabs((*solved)[i] - x[i]);
      const double abstol = (i < node_unknowns) ? opts.abstol_v : opts.abstol_i;
      const double tol = abstol + opts.reltol * std::max(std::fabs((*solved)[i]),
                                                         std::fabs(x[i]));
      if (delta > tol) {
        converged = false;
        break;
      }
    }
    if (converged) {
      x = std::move(*solved);
      result.converged = true;
      return result;
    }

    // Damped update: limit node-voltage moves to keep the exponential models
    // inside their linear-ish region.
    for (std::size_t i = 0; i < n; ++i) {
      double next = (*solved)[i];
      if (i < node_unknowns) {
        const double delta = next - x[i];
        if (delta > opts.voltage_limit) next = x[i] + opts.voltage_limit;
        if (delta < -opts.voltage_limit) next = x[i] - opts.voltage_limit;
      }
      x[i] = next;
    }
  }
  return result;
}

}  // namespace nvsram::spice
