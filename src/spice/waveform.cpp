#include "spice/waveform.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

namespace nvsram::spice {

Probe Probe::node_voltage(NodeId node, std::string label) {
  Probe p;
  p.kind = Kind::kNodeVoltage;
  p.node = node;
  p.label = std::move(label);
  return p;
}

Probe Probe::device_current(const Device* device, std::string label) {
  Probe p;
  p.kind = Kind::kDeviceCurrent;
  p.device = device;
  p.label = std::move(label);
  return p;
}

Probe Probe::source_power(const VSource* source, std::string label) {
  Probe p;
  p.kind = Kind::kSourcePower;
  p.device = source;
  p.label = std::move(label);
  return p;
}

Probe Probe::source_energy(const VSource* source, std::string label) {
  Probe p;
  p.kind = Kind::kSourceEnergy;
  p.device = source;
  p.label = std::move(label);
  return p;
}

Waveform::Waveform(std::vector<std::string> labels) : labels_(std::move(labels)) {
  series_.resize(labels_.size());
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    label_index_.emplace(labels_[i], i);
  }
}

void Waveform::append(double time, const std::vector<double>& values) {
  if (values.size() != series_.size()) {
    throw std::invalid_argument("Waveform::append: value count mismatch");
  }
  time_.push_back(time);
  for (std::size_t i = 0; i < values.size(); ++i) {
    series_[i].push_back(values[i]);
  }
}

std::size_t Waveform::index_of(const std::string& label) const {
  const auto it = label_index_.find(label);
  if (it == label_index_.end()) {
    throw std::out_of_range("Waveform: unknown series " + label);
  }
  return it->second;
}

const std::vector<double>& Waveform::series(const std::string& label) const {
  return series_[index_of(label)];
}

bool Waveform::has_series(const std::string& label) const {
  return label_index_.count(label) != 0;
}

std::vector<std::string> Waveform::labels() const { return labels_; }

double Waveform::value_at(const std::string& label, double t) const {
  const auto& s = series(label);
  if (time_.empty()) throw std::logic_error("Waveform: empty");
  if (t <= time_.front()) return s.front();
  if (t >= time_.back()) return s.back();
  const auto it = std::upper_bound(time_.begin(), time_.end(), t);
  const std::size_t i = static_cast<std::size_t>(it - time_.begin());
  const double f = (t - time_[i - 1]) / (time_[i] - time_[i - 1]);
  return s[i - 1] + f * (s[i] - s[i - 1]);
}

double Waveform::final_value(const std::string& label) const {
  const auto& s = series(label);
  if (s.empty()) throw std::logic_error("Waveform: empty");
  return s.back();
}

double Waveform::integral(const std::string& label, double t0, double t1) const {
  const auto& s = series(label);
  if (time_.size() < 2 || t1 <= t0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 1; i < time_.size(); ++i) {
    const double a = std::max(time_[i - 1], t0);
    const double b = std::min(time_[i], t1);
    if (b <= a) continue;
    // Values at clipped segment ends (linear inside the segment).
    const double span = time_[i] - time_[i - 1];
    const double va = s[i - 1] + (s[i] - s[i - 1]) * (a - time_[i - 1]) / span;
    const double vb = s[i - 1] + (s[i] - s[i - 1]) * (b - time_[i - 1]) / span;
    sum += 0.5 * (va + vb) * (b - a);
  }
  return sum;
}

double Waveform::average(const std::string& label, double t0, double t1) const {
  if (t1 <= t0) return 0.0;
  return integral(label, t0, t1) / (t1 - t0);
}

double Waveform::maximum(const std::string& label) const {
  const auto& s = series(label);
  return *std::max_element(s.begin(), s.end());
}

double Waveform::minimum(const std::string& label) const {
  const auto& s = series(label);
  return *std::min_element(s.begin(), s.end());
}

std::optional<double> Waveform::cross_time(const std::string& label, double level,
                                           double t_from) const {
  const auto& s = series(label);
  for (std::size_t i = 1; i < time_.size(); ++i) {
    if (time_[i] < t_from) continue;
    const double f0 = s[i - 1] - level;
    const double f1 = s[i] - level;
    if (f0 == 0.0 && time_[i - 1] >= t_from) return time_[i - 1];
    if (f0 * f1 < 0.0) {
      const double f = f0 / (f0 - f1);
      const double t = time_[i - 1] + f * (time_[i] - time_[i - 1]);
      if (t >= t_from) return t;
    }
  }
  return std::nullopt;
}

void Waveform::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Waveform::write_csv: cannot open " + path);
  out << "time";
  for (const auto& l : labels_) out << ',' << l;
  out << '\n';
  for (std::size_t i = 0; i < time_.size(); ++i) {
    out << time_[i];
    for (const auto& s : series_) out << ',' << s[i];
    out << '\n';
  }
}

}  // namespace nvsram::spice
