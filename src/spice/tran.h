// Adaptive transient analysis.
//
// Timestep control: Newton-failure backoff plus a predictor-corrector local
// error estimate (difference between the linear extrapolation of the last
// two accepted points and the Newton solution).  Source breakpoints are
// never stepped across.  Devices with discrete events (MTJ switching)
// trigger a step-size reset when they fire.
//
// Resilience: when dt-halving bottoms out at dt_min the step is salvaged
// through the shared recovery ladder (gmin-ramp, then source-ramp at the
// failed timepoint); only when the ladder is exhausted does run() throw a
// SolverError carrying structured diagnostics.  An optional wall-clock
// watchdog bounds pathological runs.
#pragma once

#include <optional>
#include <unordered_map>

#include "spice/circuit.h"
#include "spice/dc.h"
#include "spice/diagnostics.h"
#include "spice/newton.h"
#include "spice/waveform.h"
#include "util/watchdog.h"

namespace nvsram::spice {

struct TranOptions {
  double t_stop = 0.0;
  double dt_initial = 1e-12;
  double dt_min = 1e-17;
  double dt_max = 0.0;         // 0 => t_stop / 50
  double lte_reltol = 2e-3;
  double lte_abstol = 1e-5;    // volts
  double lte_trtol = 7.0;      // accept factor on the predictor error
  IntegrationMethod method = IntegrationMethod::kTrapezoidal;
  NewtonOptions newton;
  // Thin the recorded waveform to roughly this many samples (the solver
  // still takes every step; only probe recording is decimated).  0 =>
  // record every accepted step.
  std::size_t max_samples = 0;
  // Mid-step salvage ladder entered when dt-halving reaches dt_min.
  RecoveryOptions recovery;
  bool recovery_enabled = true;
  // Wall-clock watchdog: run() throws util::WatchdogError once the run has
  // consumed this many seconds.  0 => unlimited.
  double max_wall_seconds = 0.0;

  // Shared relaxation ladder for retry loops (mirrors
  // NewtonOptions::relaxed): attempt 0 is a no-op; later attempts loosen
  // the Newton and LTE budgets and widen the step-size floor.
  TranOptions relaxed(int attempt) const;
};

struct TranStats {
  std::size_t accepted_steps = 0;
  std::size_t rejected_steps = 0;
  std::size_t newton_failures = 0;
  std::size_t device_events = 0;
  std::size_t total_newton_iterations = 0;
  // Recovery-ladder accounting: steps salvaged per stage.
  std::size_t gmin_recoveries = 0;
  std::size_t source_recoveries = 0;
  std::size_t recoveries() const { return gmin_recoveries + source_recoveries; }
  // Diagnostics of the last failed (or salvaged) solve, if any.
  SolveDiagnostics last_diagnostics;
};

class TranAnalysis {
 public:
  TranAnalysis(Circuit& circuit, TranOptions options, std::vector<Probe> probes);

  // Runs DC (unless `initial` given) then integrates to t_stop.
  // Throws SolverError (with diagnostics) when no convergence is possible,
  // util::WatchdogError when the wall-clock budget expires.
  Waveform run(const DCSolution* initial = nullptr);

  const TranStats& stats() const { return stats_; }

  // Total energy delivered by a voltage source over the whole run
  // (available after run(); keyed by device name).
  double source_energy(const std::string& name) const;
  const std::unordered_map<std::string, double>& source_energies() const {
    return energies_;
  }

 private:
  Circuit& circuit_;
  TranOptions options_;
  std::vector<Probe> probes_;
  MnaLayout layout_;
  TranStats stats_;
  std::unordered_map<std::string, double> energies_;
  // Symbolic LU analysis shared by every Newton solve of the run (the
  // sparsity pattern is fixed per circuit, so it is computed once).
  NewtonWorkspace ws_;
};

}  // namespace nvsram::spice
