// Structured solver diagnostics: every Newton / DC / transient failure
// carries *where* it happened (worst-offending unknown by name), *why*
// (singular pivot, non-finite value with its site and culprit device,
// plain non-convergence) and *how hard the solver tried* (the recovery
// ladder stage reached).  Thrown errors wrap these in SolverError so
// callers can either read the message or branch on the fields.
#pragma once

#include <cstddef>
#include <limits>
#include <stdexcept>
#include <string>

namespace nvsram::spice {

// How far the recovery ladder escalated before the result was produced.
// Order matters: each stage is only entered after every earlier one failed.
enum class RecoveryStage {
  kNone = 0,     // plain Newton, no recovery needed / attempted
  kDtHalving,    // transient only: timestep was cut after a failure
  kGminRamp,     // solved under heavy gmin loading, then relaxed
  kSourceRamp,   // sources ramped from zero (or from the entry scale)
  kExhausted,    // every stage failed — the diagnostics describe the last
};
const char* to_string(RecoveryStage stage);

// Where a NaN/Inf was first detected inside one Newton solve.
enum class NonFiniteSite {
  kNone = 0,
  kStamp,     // a device loaded a non-finite matrix entry
  kRhs,       // the assembled right-hand side contains a non-finite entry
  kFactor,    // the LU factorization hit a non-finite pivot
  kSolution,  // the solved update vector contains a non-finite entry
};
const char* to_string(NonFiniteSite site);

// Verdict of the structural (symbolic) analysis of the solved system.  A
// numeric pivot failure on a structurally SOUND system points at device
// values (a conditioning problem recovery can fix); a structurally SINGULAR
// system is a topology bug no gmin ramp or source step will ever salvage.
enum class StructuralVerdict {
  kUnknown = 0,  // analysis not performed (e.g. failed before factorization)
  kSound,        // perfect equation/unknown matching exists
  kSingular,     // structurally singular: deficient for every value set
};
const char* to_string(StructuralVerdict verdict);

struct SolveDiagnostics {
  static constexpr std::size_t kNoPivot =
      std::numeric_limits<std::size_t>::max();

  bool converged = false;
  bool singular = false;
  int iterations = 0;

  // Context of the solve: simulation time and the timestep in effect
  // (0 for DC).
  double time = 0.0;
  double last_dt = 0.0;
  RecoveryStage stage = RecoveryStage::kNone;

  // Non-finite detection.
  NonFiniteSite non_finite = NonFiniteSite::kNone;
  std::string non_finite_device;  // culprit device for kStamp (empty else)

  // Worst convergence-check offender of the last Newton iteration: the
  // unknown whose update exceeded its tolerance by the largest factor.
  std::string worst_node;
  double worst_delta = 0.0;  // |x_new - x| at that unknown
  double worst_tol = 0.0;    // its abstol + reltol * |x| budget

  // Pivot index at which the LU factorization gave up (kNoPivot if the
  // factorization succeeded or was never reached).
  std::size_t singular_pivot = kNoPivot;

  // Structural verdict of the assembled system (see StructuralVerdict).
  StructuralVerdict structure = StructuralVerdict::kUnknown;

  // True when the failure was forced by an injected FaultPlan.
  bool injected = false;

  bool non_finite_detected() const { return non_finite != NonFiniteSite::kNone; }

  // One-line human-readable summary, e.g.
  //   "not converged after 120 iters at t=1.2e-09 (dt=2.5e-13), worst node
  //    'q' |dx|=3.1e-02 (tol 9.3e-04), recovery=source-ramp"
  std::string describe() const;
};

// Thrown by the analyses when no recovery strategy salvaged a solve.  The
// what() string already embeds describe(); the structured fields remain
// available for programmatic handling (sweep runners, tests).
class SolverError : public std::runtime_error {
 public:
  SolverError(const std::string& context, SolveDiagnostics diag);
  const SolveDiagnostics& diagnostics() const { return diag_; }

 private:
  SolveDiagnostics diag_;
};

}  // namespace nvsram::spice
