#include "spice/device.h"

namespace nvsram::spice {

void Device::stamp_pattern(PatternContext& ctx) const {
  // Conservative fallback: assume the device may couple every terminal pair.
  // Devices that allocate branch unknowns must override — the base class has
  // no record of branch indices, so their equations would otherwise be
  // reported as structurally empty.
  const auto pins = terminals();
  for (const TerminalRef& a : pins) {
    for (const TerminalRef& b : pins) {
      ctx.mat_nn(a.node, b.node);
    }
  }
}

}  // namespace nvsram::spice
