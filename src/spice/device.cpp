#include "spice/device.h"

// Device is header-only today; this TU anchors the vtable.
namespace nvsram::spice {
namespace {
// Intentionally empty.
}
}  // namespace nvsram::spice
