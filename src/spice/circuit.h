// Circuit: node registry plus owned devices.
//
// Nodes are created by name (`node("Q")`); ground is pre-registered as
// "0" / "gnd".  Devices are added through the typed `add<T>(...)` helper and
// owned by the circuit.
#pragma once

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "spice/device.h"
#include "spice/fault.h"

namespace nvsram::spice {

class Circuit {
 public:
  Circuit();

  // Returns the id for `name`, creating the node if it does not exist.
  NodeId node(const std::string& name);

  // Lookup without creation; throws std::out_of_range for unknown names.
  NodeId find_node(const std::string& name) const;
  bool has_node(const std::string& name) const;
  const std::string& node_name(NodeId id) const;
  std::size_t node_count() const { return node_names_.size(); }

  // Constructs a device in place; returns a non-owning pointer for probing.
  template <typename T, typename... Args>
  T* add(Args&&... args) {
    auto dev = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = dev.get();
    if (device_index_.count(raw->name())) {
      throw std::invalid_argument("Circuit: duplicate device name " + raw->name());
    }
    device_index_.emplace(raw->name(), devices_.size());
    devices_.push_back(std::move(dev));
    return raw;
  }

  Device* find_device(const std::string& name) const;

  const std::vector<std::unique_ptr<Device>>& devices() const { return devices_; }

  // Builds the unknown layout (node voltages + device branches).
  MnaLayout build_layout() const;

  // ---- fault injection (tests / resilience drills) ----
  // An attached plan is consulted by every Newton solve on this circuit;
  // see spice/fault.h for the trigger semantics.
  void set_fault_plan(FaultPlan plan) { fault_plan_ = std::move(plan); }
  void clear_fault_plan() { fault_plan_.reset(); }
  FaultPlan* fault_plan() { return fault_plan_ ? &*fault_plan_ : nullptr; }

 private:
  std::vector<std::string> node_names_;
  std::unordered_map<std::string, NodeId> node_ids_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::unordered_map<std::string, std::size_t> device_index_;
  std::optional<FaultPlan> fault_plan_;
};

}  // namespace nvsram::spice
