// Probe definitions and simulation result storage with measurements.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "spice/circuit.h"
#include "spice/device.h"
#include "spice/elements.h"

namespace nvsram::spice {

// What to record each accepted timestep.
struct Probe {
  enum class Kind {
    kNodeVoltage,     // voltage of `node`
    kDeviceCurrent,   // device->current()
    kSourcePower,     // VSource delivered power
    kSourceEnergy,    // running integral of VSource delivered power
  };

  static Probe node_voltage(NodeId node, std::string label);
  static Probe device_current(const Device* device, std::string label);
  static Probe source_power(const VSource* source, std::string label);
  static Probe source_energy(const VSource* source, std::string label);

  Kind kind = Kind::kNodeVoltage;
  NodeId node = kGround;
  const Device* device = nullptr;
  std::string label;
};

// Sampled simulation output: a shared time axis plus named series.
class Waveform {
 public:
  Waveform() = default;
  explicit Waveform(std::vector<std::string> labels);

  void append(double time, const std::vector<double>& values);

  std::size_t samples() const { return time_.size(); }
  const std::vector<double>& time() const { return time_; }
  const std::vector<double>& series(const std::string& label) const;
  bool has_series(const std::string& label) const;
  std::vector<std::string> labels() const;

  // ---- measurements ----
  // Linear interpolation of a series at time t (clamped to the range).
  double value_at(const std::string& label, double t) const;
  double final_value(const std::string& label) const;
  // Trapezoidal integral of the series over [t0, t1].
  double integral(const std::string& label, double t0, double t1) const;
  double average(const std::string& label, double t0, double t1) const;
  double maximum(const std::string& label) const;
  double minimum(const std::string& label) const;
  // First time the series crosses `level` (rising or falling) at/after t_from.
  std::optional<double> cross_time(const std::string& label, double level,
                                   double t_from = 0.0) const;

  void write_csv(const std::string& path) const;

 private:
  std::size_t index_of(const std::string& label) const;

  std::vector<double> time_;
  std::vector<std::string> labels_;
  std::unordered_map<std::string, std::size_t> label_index_;
  std::vector<std::vector<double>> series_;
};

}  // namespace nvsram::spice
