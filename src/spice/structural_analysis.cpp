#include "spice/structural_analysis.h"

#include <algorithm>
#include <unordered_map>

namespace nvsram::spice {

namespace {

using linalg::kUnmatched;

// Unknown index -> human name.  Node voltage unknowns come first in the
// layout, then device branch currents.
std::string unknown_name(const Circuit& ckt, std::size_t u,
                         std::size_t node_unknowns,
                         const std::vector<const Device*>& branch_owner) {
  if (u < node_unknowns) return "V(" + ckt.node_name(u + 1) + ")";
  return "I(" + branch_owner[u - node_unknowns]->name() + ")";
}

}  // namespace

StructuralReport analyze_structure(const Circuit& circuit, bool dc) {
  StructuralReport report;
  report.dc = dc;

  // ---- layout with branch ownership ----
  MnaLayout layout(circuit.node_count());
  const auto& devices = circuit.devices();
  std::vector<const Device*> branch_owner;
  for (const auto& dev : devices) {
    const std::size_t before = layout.unknown_count();
    dev->reserve(layout);
    for (std::size_t u = before; u < layout.unknown_count(); ++u) {
      branch_owner.push_back(dev.get());
    }
  }
  const std::size_t n = layout.unknown_count();
  const std::size_t node_unknowns = circuit.node_count() - 1;
  report.unknown_count = n;
  if (n == 0) return report;

  // ---- assemble the pattern, remembering which device stamped what ----
  linalg::SparseBuilder builder(n);
  std::vector<std::pair<std::size_t, std::size_t>> stamped(devices.size());
  for (std::size_t i = 0; i < devices.size(); ++i) {
    PatternContext ctx(layout, builder, dc);
    stamped[i].first = builder.triplets().size();
    devices[i]->stamp_pattern(ctx);
    stamped[i].second = builder.triplets().size();
  }
  report.pattern = linalg::SparsityPattern::from_triplets(n, builder.triplets());

  // Row / column -> stamping devices (device indices, deduplicated).
  std::vector<std::vector<std::size_t>> row_devs(n), col_devs(n);
  for (std::size_t i = 0; i < devices.size(); ++i) {
    for (std::size_t t = stamped[i].first; t < stamped[i].second; ++t) {
      const auto& trip = builder.triplets()[t];
      if (row_devs[trip.row].empty() || row_devs[trip.row].back() != i) {
        row_devs[trip.row].push_back(i);
      }
      if (col_devs[trip.col].empty() || col_devs[trip.col].back() != i) {
        col_devs[trip.col].push_back(i);
      }
    }
  }
  // Node -> attached devices (used when a defective row/column has no
  // stamping device at all, e.g. an insulated FET gate at DC).
  std::vector<std::vector<std::size_t>> node_devs(circuit.node_count());
  for (std::size_t i = 0; i < devices.size(); ++i) {
    for (const TerminalRef& t : devices[i]->terminals()) {
      auto& v = node_devs[t.node];
      if (v.empty() || v.back() != i) v.push_back(i);
    }
  }
  auto culprit_names = [&](std::size_t index, bool row) {
    std::vector<std::size_t> ids = row ? row_devs[index] : col_devs[index];
    if (ids.empty() && index < node_unknowns) ids = node_devs[index + 1];
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    std::vector<std::string> names;
    names.reserve(ids.size());
    for (std::size_t id : ids) names.push_back(devices[id]->name());
    return names;
  };
  auto make_defect = [&](std::size_t index, bool row) {
    StructuralDefect d;
    d.unknown = unknown_name(circuit, index, node_unknowns, branch_owner);
    if (index < node_unknowns) d.node = circuit.node_name(index + 1);
    d.devices = culprit_names(index, row);
    return d;
  };

  // ---- dangling branch equations ----
  const linalg::SparsityPattern cols = report.pattern.transpose();
  std::unordered_map<const Device*, std::size_t> dangling_of;
  for (std::size_t u = node_unknowns; u < n; ++u) {
    const bool empty_row = report.pattern.row_degree(u) == 0;
    const bool empty_col = cols.row_degree(u) == 0;
    if (!empty_row && !empty_col) continue;
    const Device* owner = branch_owner[u - node_unknowns];
    auto [it, fresh] = dangling_of.emplace(owner, report.dangling_branches.size());
    if (fresh) {
      DanglingBranch db;
      db.device = owner->name();
      db.unknown = unknown_name(circuit, u, node_unknowns, branch_owner);
      report.dangling_branches.push_back(std::move(db));
    }
    report.dangling_branches[it->second].empty_row |= empty_row;
    report.dangling_branches[it->second].empty_col |= empty_col;
  }

  // ---- structural solvability ----
  const linalg::Matching matching = linalg::maximum_matching(report.pattern);
  if (!matching.perfect(n)) {
    report.structurally_singular = true;
    for (std::size_t c : matching.unmatched_cols()) {
      report.undetermined_unknowns.push_back(make_defect(c, /*row=*/false));
    }
    for (std::size_t r : matching.unmatched_rows()) {
      report.unsolvable_equations.push_back(make_defect(r, /*row=*/true));
    }
  } else {
    report.elimination_order = linalg::min_degree_order(report.pattern, matching);
  }

  // ---- equation blocks and ground reference ----
  const linalg::BipartiteComponents comps = linalg::connected_components(report.pattern);
  report.block_count = comps.count;
  if (comps.count > 0) {
    // A component is grounded when some device stamping inside it has a
    // terminal at ground (its ground-side stamps were dropped, which is the
    // only way a block couples to the reference).
    std::vector<bool> grounded(comps.count, false);
    std::vector<std::vector<std::size_t>> comp_devs(comps.count);
    for (std::size_t i = 0; i < devices.size(); ++i) {
      if (stamped[i].first == stamped[i].second) continue;  // pattern-empty
      const auto& trip = builder.triplets()[stamped[i].first];
      const std::size_t comp = comps.row_component[trip.row];
      if (comp == kUnmatched) continue;
      comp_devs[comp].push_back(i);
      for (const TerminalRef& t : devices[i]->terminals()) {
        if (t.node == kGround) {
          grounded[comp] = true;
          break;
        }
      }
    }
    for (std::size_t comp = 0; comp < comps.count; ++comp) {
      if (grounded[comp]) continue;
      FloatingBlock block;
      for (std::size_t u = 0; u < n; ++u) {
        if (comps.row_component[u] == comp || comps.col_component[u] == comp) {
          block.unknowns.push_back(
              unknown_name(circuit, u, node_unknowns, branch_owner));
        }
      }
      for (std::size_t id : comp_devs[comp]) {
        block.devices.push_back(devices[id]->name());
      }
      report.floating_blocks.push_back(std::move(block));
    }
  }
  return report;
}

}  // namespace nvsram::spice
