// Deterministic solver fault injection.
//
// A FaultPlan attached to a Circuit (Circuit::set_fault_plan) forces a
// chosen failure mode on chosen Newton solves, so every recovery path —
// non-finite abort, singular skip, convergence-stall escalation — is
// exercisable from tests and CI without hand-crafting a pathological
// circuit.  Solves are counted globally across the circuit (DC attempts,
// ladder rungs and transient timesteps all increment the counter), which
// makes trigger points reproducible run to run.
//
// Text syntax (FaultPlan::parse), ';'-separated specs:
//   nan-stamp@K[xN][:dev=NAME]   poison NAME's stamp with NaN on solves
//                                [K, K+N) (default N=1; N=-1 => forever;
//                                empty NAME => first device)
//   singular@K[xN]               report a singular matrix on those solves
//   stall@K[xN]                  suppress convergence on those solves
// Example: "stall@1x6;nan-stamp@40:dev=Mpu_q"
#pragma once

#include <string>
#include <vector>

namespace nvsram::spice {

enum class FaultKind { kNanStamp, kSingular, kStall };
const char* to_string(FaultKind kind);

struct FaultSpec {
  FaultKind kind = FaultKind::kStall;
  int at_solve = 0;    // first Newton solve (0-based) the fault fires on
  int count = 1;       // consecutive solves affected; -1 = every one after
  std::string device;  // kNanStamp only: scoped device ("" = first device)

  bool covers(int solve_index) const {
    if (solve_index < at_solve) return false;
    return count < 0 || solve_index < at_solve + count;
  }
};

class FaultPlan {
 public:
  FaultPlan() = default;

  void add(FaultSpec spec) { specs_.push_back(std::move(spec)); }
  bool empty() const { return specs_.empty(); }
  const std::vector<FaultSpec>& specs() const { return specs_; }

  // Parses the text syntax above; throws std::invalid_argument on errors.
  static FaultPlan parse(const std::string& text);

  // Called by solve_newton on entry; returns the index of this solve.
  int begin_solve() { return solve_count_++; }
  int solves_started() const { return solve_count_; }
  void reset() { solve_count_ = 0; }

  // Does any spec of `kind` fire on this solve?  (kNanStamp is queried via
  // stamp_fault instead, because it is device-scoped.)
  bool fires(FaultKind kind, int solve_index) const;

  // The nan-stamp spec covering (solve_index, device), if any.  `first`
  // marks the first device stamped this iteration (matches empty dev=).
  const FaultSpec* stamp_fault(int solve_index, const std::string& device,
                               bool first) const;

 private:
  std::vector<FaultSpec> specs_;
  int solve_count_ = 0;
};

}  // namespace nvsram::spice
