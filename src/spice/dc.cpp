#include "spice/dc.h"

#include <cmath>
#include <stdexcept>

#include "util/log.h"

namespace nvsram::spice {

double evaluate_probe(const Probe& probe, const SolutionView& view, double time,
                      double accumulated_energy) {
  switch (probe.kind) {
    case Probe::Kind::kNodeVoltage:
      return view.node_voltage(probe.node);
    case Probe::Kind::kDeviceCurrent:
      return probe.device->current(view);
    case Probe::Kind::kSourcePower:
      return static_cast<const VSource*>(probe.device)->delivered_power(view, time);
    case Probe::Kind::kSourceEnergy:
      return accumulated_energy;
  }
  return 0.0;
}

DCAnalysis::DCAnalysis(Circuit& circuit, DCOptions options)
    : circuit_(circuit), options_(options), layout_(circuit.build_layout()) {}

bool DCAnalysis::try_newton(linalg::Vector& x, const NewtonOptions& opts) {
  const NewtonResult r =
      solve_newton(circuit_, layout_, x, /*time=*/0.0, /*dt=*/0.0, /*dc=*/true,
                   IntegrationMethod::kBackwardEuler, opts);
  return r.converged;
}

std::optional<DCSolution> DCAnalysis::solve(const linalg::Vector* initial_guess) {
  linalg::Vector x(layout_.unknown_count(), 0.0);
  if (initial_guess && initial_guess->size() == x.size()) x = *initial_guess;

  // 1. Plain Newton from the guess.
  linalg::Vector attempt = x;
  if (try_newton(attempt, options_.newton)) {
    return DCSolution(std::move(attempt), layout_);
  }

  // 2. gmin stepping: solve a heavily loaded system, then relax gmin.
  attempt = x;
  bool ladder_ok = true;
  NewtonOptions opts = options_.newton;
  for (double g = options_.gmin_start; g >= options_.gmin_stop * 0.99;
       g /= options_.gmin_factor) {
    opts.gmin = g;
    if (!try_newton(attempt, opts)) {
      ladder_ok = false;
      break;
    }
  }
  if (ladder_ok) {
    opts.gmin = options_.newton.gmin;
    if (try_newton(attempt, opts)) {
      return DCSolution(std::move(attempt), layout_);
    }
  }

  // 3. Source stepping: ramp all sources from zero.
  attempt.assign(layout_.unknown_count(), 0.0);
  opts = options_.newton;
  for (int s = 1; s <= options_.source_steps; ++s) {
    opts.source_scale =
        static_cast<double>(s) / static_cast<double>(options_.source_steps);
    if (!try_newton(attempt, opts)) {
      util::log_warn() << "DC: source stepping failed at scale "
                       << opts.source_scale;
      return std::nullopt;
    }
  }
  return DCSolution(std::move(attempt), layout_);
}

DCSweep::DCSweep(Circuit& circuit, std::function<void(double)> setter,
                 std::vector<double> points, std::vector<Probe> probes,
                 DCOptions options)
    : circuit_(circuit), setter_(std::move(setter)), points_(std::move(points)),
      probes_(std::move(probes)), options_(options) {}

Waveform DCSweep::run() {
  std::vector<std::string> labels;
  labels.reserve(probes_.size());
  for (const auto& p : probes_) labels.push_back(p.label);
  Waveform wave(std::move(labels));

  std::optional<linalg::Vector> warm;
  for (double point : points_) {
    setter_(point);
    DCAnalysis dc(circuit_, options_);
    auto sol = dc.solve(warm ? &*warm : nullptr);
    if (!sol) {
      throw std::runtime_error("DCSweep: no convergence at point " +
                               std::to_string(point));
    }
    warm = sol->raw();
    std::vector<double> values;
    values.reserve(probes_.size());
    for (const auto& p : probes_) {
      values.push_back(evaluate_probe(p, sol->view(), 0.0, 0.0));
    }
    wave.append(point, values);
  }
  return wave;
}

}  // namespace nvsram::spice
