#include "spice/dc.h"

#include <cmath>
#include <stdexcept>

#include "util/log.h"

namespace nvsram::spice {

double evaluate_probe(const Probe& probe, const SolutionView& view, double time,
                      double accumulated_energy) {
  switch (probe.kind) {
    case Probe::Kind::kNodeVoltage:
      return view.node_voltage(probe.node);
    case Probe::Kind::kDeviceCurrent:
      return probe.device->current(view);
    case Probe::Kind::kSourcePower:
      return static_cast<const VSource*>(probe.device)->delivered_power(view, time);
    case Probe::Kind::kSourceEnergy:
      return accumulated_energy;
  }
  return 0.0;
}

DCAnalysis::DCAnalysis(Circuit& circuit, DCOptions options)
    : circuit_(circuit), options_(options), layout_(circuit.build_layout()) {}

std::optional<DCSolution> DCAnalysis::solve(const linalg::Vector* initial_guess) {
  linalg::Vector x(layout_.unknown_count(), 0.0);
  if (initial_guess && initial_guess->size() == x.size()) x = *initial_guess;

  // DC always ramps sources from a zero vector when it gets that far.
  RecoveryOptions recovery = options_.recovery;
  recovery.source_ramp_from_zero = true;

  const util::Deadline deadline(options_.max_wall_seconds);
  const NewtonResult r = solve_newton_with_recovery(
      circuit_, layout_, x, /*time=*/0.0, /*dt=*/0.0, /*dc=*/true,
      IntegrationMethod::kBackwardEuler, options_.newton, recovery,
      deadline.unlimited() ? nullptr : &deadline, &ws_);
  last_diag_ = r.diagnostics;
  if (!r.converged) {
    util::log_warn() << "DC: no operating point: " << last_diag_.describe();
    return std::nullopt;
  }
  return DCSolution(std::move(x), layout_);
}

std::vector<std::optional<DCSolution>> solve_dc_lanes(
    const std::vector<Circuit*>& circuits, const DCOptions& options,
    const std::vector<const linalg::Vector*>* initial_guesses) {
  const std::size_t k = circuits.size();
  std::vector<MnaLayout> layouts;
  layouts.reserve(k);
  std::vector<const MnaLayout*> layout_ptrs(k);
  for (std::size_t l = 0; l < k; ++l) {
    layouts.push_back(circuits[l]->build_layout());
  }
  for (std::size_t l = 0; l < k; ++l) layout_ptrs[l] = &layouts[l];

  std::vector<linalg::Vector> xs(k);
  std::vector<linalg::Vector*> x_ptrs(k);
  for (std::size_t l = 0; l < k; ++l) {
    xs[l].assign(layouts[l].unknown_count(), 0.0);
    if (initial_guesses && (*initial_guesses)[l] &&
        (*initial_guesses)[l]->size() == xs[l].size()) {
      xs[l] = *(*initial_guesses)[l];
    }
    x_ptrs[l] = &xs[l];
  }

  RecoveryOptions recovery = options.recovery;
  recovery.source_ramp_from_zero = true;

  BatchedNewton driver(circuits, layout_ptrs);
  const util::Deadline deadline(options.max_wall_seconds);
  const std::vector<NewtonResult> results = driver.solve_with_recovery(
      x_ptrs, /*time=*/0.0, /*dt=*/0.0, /*dc=*/true,
      IntegrationMethod::kBackwardEuler, options.newton, recovery,
      deadline.unlimited() ? nullptr : &deadline);

  std::vector<std::optional<DCSolution>> out(k);
  for (std::size_t l = 0; l < k; ++l) {
    if (!results[l].converged) {
      util::log_warn() << "DC (lane " << l << "): no operating point: "
                       << results[l].diagnostics.describe();
      continue;
    }
    out[l].emplace(std::move(xs[l]), layouts[l]);
  }
  return out;
}

DCSweep::DCSweep(Circuit& circuit, std::function<void(double)> setter,
                 std::vector<double> points, std::vector<Probe> probes,
                 DCOptions options)
    : circuit_(circuit), setter_(std::move(setter)), points_(std::move(points)),
      probes_(std::move(probes)), options_(options) {}

Waveform DCSweep::run() {
  std::vector<std::string> labels;
  labels.reserve(probes_.size());
  for (const auto& p : probes_) labels.push_back(p.label);
  Waveform wave(std::move(labels));

  std::optional<linalg::Vector> warm;
  // One analysis for the whole sweep: the topology (and so the sparsity
  // pattern) is fixed, so every point after the first reuses the symbolic
  // LU analysis alongside the warm-started iterate.
  DCAnalysis dc(circuit_, options_);
  for (double point : points_) {
    setter_(point);
    auto sol = dc.solve(warm ? &*warm : nullptr);
    if (!sol) {
      throw SolverError("DCSweep: no convergence at point " +
                            std::to_string(point),
                        dc.last_diagnostics());
    }
    warm = sol->raw();
    std::vector<double> values;
    values.reserve(probes_.size());
    for (const auto& p : probes_) {
      values.push_back(evaluate_probe(p, sol->view(), 0.0, 0.0));
    }
    wave.append(point, values);
  }
  return wave;
}

}  // namespace nvsram::spice
