#include "spice/diagnostics.h"

#include <sstream>

namespace nvsram::spice {

const char* to_string(RecoveryStage stage) {
  switch (stage) {
    case RecoveryStage::kNone: return "none";
    case RecoveryStage::kDtHalving: return "dt-halving";
    case RecoveryStage::kGminRamp: return "gmin-ramp";
    case RecoveryStage::kSourceRamp: return "source-ramp";
    case RecoveryStage::kExhausted: return "exhausted";
  }
  return "?";
}

const char* to_string(NonFiniteSite site) {
  switch (site) {
    case NonFiniteSite::kNone: return "none";
    case NonFiniteSite::kStamp: return "stamp";
    case NonFiniteSite::kRhs: return "rhs";
    case NonFiniteSite::kFactor: return "lu-factor";
    case NonFiniteSite::kSolution: return "solution";
  }
  return "?";
}

const char* to_string(StructuralVerdict verdict) {
  switch (verdict) {
    case StructuralVerdict::kUnknown: return "unknown";
    case StructuralVerdict::kSound: return "sound";
    case StructuralVerdict::kSingular: return "structurally-singular";
  }
  return "?";
}

std::string SolveDiagnostics::describe() const {
  std::ostringstream os;
  if (converged) {
    os << "converged in " << iterations << " iters";
  } else if (non_finite_detected()) {
    os << "non-finite value at " << to_string(non_finite);
    if (!non_finite_device.empty()) os << " (device '" << non_finite_device << "')";
    os << " after " << iterations << " iters";
  } else if (singular) {
    os << "singular system";
    if (singular_pivot != kNoPivot) os << " (pivot " << singular_pivot << ")";
    if (structure == StructuralVerdict::kSound) {
      os << " [structurally sound - numeric pivot failure]";
    } else if (structure == StructuralVerdict::kSingular) {
      os << " [structurally singular - topology bug, not a value problem]";
    }
  } else {
    os << "not converged after " << iterations << " iters";
  }
  os << " at t=" << time;
  if (last_dt > 0.0) os << " (dt=" << last_dt << ")";
  if (!worst_node.empty() && !singular && !non_finite_detected()) {
    os << ", worst '" << worst_node << "' |dx|=" << worst_delta << " (tol "
       << worst_tol << ")";
  }
  if (stage != RecoveryStage::kNone) os << ", recovery=" << to_string(stage);
  if (injected) os << " [injected fault]";
  return os.str();
}

SolverError::SolverError(const std::string& context, SolveDiagnostics diag)
    : std::runtime_error(context + ": " + diag.describe()),
      diag_(std::move(diag)) {}

}  // namespace nvsram::spice
