// MNA element wrapping the MTJ macromodel with its CIMS state machine.
//
// Terminals: `pinned` and `free`.  Positive device current flows
// pinned -> free through the junction (this is the polarity that drives
// AP -> P; see models/mtj.h).
#pragma once

#include "models/mtj.h"
#include "spice/device.h"

namespace nvsram::spice {

class MTJElement : public Device {
 public:
  MTJElement(std::string name, NodeId pinned, NodeId free,
             models::MTJParams params,
             models::MtjState initial = models::MtjState::kParallel);

  void stamp(StampContext& ctx) override;
  void stamp_pattern(PatternContext& ctx) const override;
  bool accept_step(const SolutionView& s, double time, double dt) override;
  double current(const SolutionView& s) const override;
  std::vector<TerminalRef> terminals() const override {
    return {{"pinned", pinned_}, {"free", free_}};
  }
  // The junction is resistive in both states: it conducts at DC.
  std::vector<std::pair<NodeId, NodeId>> dc_paths() const override {
    return {{pinned_, free_}};
  }

  NodeId pinned_node() const { return pinned_; }
  NodeId free_node() const { return free_; }

  models::MtjState state() const { return switching_.state(); }
  void force_state(models::MtjState s) { switching_.force_state(s); }
  const models::MTJ& model() const { return mtj_; }

  // Number of completed switching events since construction.
  int switch_count() const { return switch_count_; }

 private:
  NodeId pinned_, free_;
  models::MTJ mtj_;
  models::SwitchingState switching_;
  int switch_count_ = 0;
};

// Lane-parallel stamping for the batched Newton driver.  `mtjs[l]` is lane
// l's clone of one netlist position (same terminal nodes).  Gathers the
// junction voltage across lanes, evaluates the macromodel per lane — via
// one current_many() call when all lanes share parameters and magnetic
// state — and scatters exactly the MTJElement::stamp() sequence into each
// lane's builder, so every lane is bit-identical to the scalar path.
void stamp_mtj_lanes(MTJElement* const* mtjs, StampBatch& batch);

}  // namespace nvsram::spice
