// Basic linear elements and independent sources.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "spice/device.h"

namespace nvsram::spice {

// ---- source waveform specification ----------------------------------------
struct PulseSpec {
  double v_initial = 0.0;
  double v_pulsed = 1.0;
  double delay = 0.0;
  double rise = 1e-12;
  double fall = 1e-12;
  double width = 1e-9;
  double period = 0.0;  // 0 => single pulse
};

// Waveform of an independent source: DC, PULSE, or PWL.
class SourceSpec {
 public:
  static SourceSpec dc(double value);
  static SourceSpec pulse(const PulseSpec& spec);
  // Points must have strictly increasing times; value holds before the first
  // and after the last point.
  static SourceSpec pwl(std::vector<std::pair<double, double>> points);

  double value(double time) const;
  void breakpoints(double t_stop, std::vector<double>& out) const;

  // DC value used for the operating point (value at t = 0).
  double dc_value() const { return value(0.0); }

 private:
  enum class Kind { kDc, kPulse, kPwl };
  Kind kind_ = Kind::kDc;
  double dc_ = 0.0;
  PulseSpec pulse_{};
  std::vector<std::pair<double, double>> pwl_;
};

// ---- passives ---------------------------------------------------------------
class Resistor : public Device {
 public:
  Resistor(std::string name, NodeId a, NodeId b, double resistance);

  void stamp(StampContext& ctx) override;
  void stamp_pattern(PatternContext& ctx) const override;
  // Positive current flows a -> b.
  double current(const SolutionView& s) const override;
  std::vector<TerminalRef> terminals() const override {
    return {{"a", a_}, {"b", b_}};
  }
  std::vector<std::pair<NodeId, NodeId>> dc_paths() const override {
    return {{a_, b_}};
  }

  double resistance() const { return resistance_; }
  void set_resistance(double r);

 private:
  NodeId a_, b_;
  double resistance_;
};

class Capacitor : public Device {
 public:
  // `initial_voltage`: optional IC used if the DC solve is skipped.
  Capacitor(std::string name, NodeId a, NodeId b, double capacitance);

  void stamp(StampContext& ctx) override;
  void stamp_pattern(PatternContext& ctx) const override;
  void begin_transient(const SolutionView& s) override;
  bool accept_step(const SolutionView& s, double time, double dt) override;
  double current(const SolutionView& s) const override;
  // A capacitor is open at DC, so it contributes no dc_paths() edge.
  std::vector<TerminalRef> terminals() const override {
    return {{"a", a_}, {"b", b_}};
  }

  double capacitance() const { return capacitance_; }
  double stored_energy(const SolutionView& s) const;
  NodeId node_a() const { return a_; }
  NodeId node_b() const { return b_; }

 private:
  double companion_geq(double dt, IntegrationMethod m) const;

  NodeId a_, b_;
  double capacitance_;
  // Committed history (previous accepted step).
  double v_prev_ = 0.0;
  double i_prev_ = 0.0;
  // Companion values of the step being solved (set during stamp).
  double geq_ = 0.0;
  double ieq_ = 0.0;
};

class Inductor : public Device {
 public:
  Inductor(std::string name, NodeId a, NodeId b, double inductance);

  void reserve(MnaLayout& layout) override;
  void stamp(StampContext& ctx) override;
  void stamp_pattern(PatternContext& ctx) const override;
  void begin_transient(const SolutionView& s) override;
  bool accept_step(const SolutionView& s, double time, double dt) override;
  // Branch current, positive a -> b.
  double current(const SolutionView& s) const override;
  std::vector<TerminalRef> terminals() const override {
    return {{"a", a_}, {"b", b_}};
  }
  // DC short: conducts.
  std::vector<std::pair<NodeId, NodeId>> dc_paths() const override {
    return {{a_, b_}};
  }

  double inductance() const { return inductance_; }
  std::size_t branch_index() const { return branch_; }

 private:
  NodeId a_, b_;
  double inductance_;
  std::size_t branch_ = MnaLayout::kNoIndex;
  // Committed history.
  double i_prev_ = 0.0;
  double v_prev_ = 0.0;
};

// ---- independent sources ----------------------------------------------------
class VSource : public Device {
 public:
  VSource(std::string name, NodeId plus, NodeId minus, SourceSpec spec);

  void reserve(MnaLayout& layout) override;
  void stamp(StampContext& ctx) override;
  void stamp_pattern(PatternContext& ctx) const override;
  // Branch current flows internally from + to -; a source delivering power
  // has negative branch current.
  double current(const SolutionView& s) const override;
  void breakpoints(double t_stop, std::vector<double>& out) const override;
  std::vector<TerminalRef> terminals() const override {
    return {{"+", plus_}, {"-", minus_}};
  }
  std::vector<std::pair<NodeId, NodeId>> dc_paths() const override {
    return {{plus_, minus_}};
  }
  std::optional<std::pair<NodeId, NodeId>> voltage_branch() const override {
    return std::make_pair(plus_, minus_);
  }

  // Instantaneous power delivered INTO the external circuit.
  double delivered_power(const SolutionView& s, double time) const;

  double value(double time) const { return spec_.value(time); }
  void set_spec(SourceSpec spec) { spec_ = std::move(spec); }
  std::size_t branch_index() const { return branch_; }

 private:
  NodeId plus_, minus_;
  SourceSpec spec_;
  std::size_t branch_ = MnaLayout::kNoIndex;
};

class ISource : public Device {
 public:
  // Current `spec` flows from `from` through the source into `to`.
  ISource(std::string name, NodeId from, NodeId to, SourceSpec spec);

  void stamp(StampContext& ctx) override;
  void stamp_pattern(PatternContext&) const override {}  // matrix-empty
  double current(const SolutionView&) const override { return last_value_; }
  void breakpoints(double t_stop, std::vector<double>& out) const override;
  // An ideal current source has infinite DC impedance: no dc_paths() edge.
  std::vector<TerminalRef> terminals() const override {
    return {{"from", from_}, {"to", to_}};
  }
  NodeId node_from() const { return from_; }
  NodeId node_to() const { return to_; }

 private:
  NodeId from_, to_;
  SourceSpec spec_;
  double last_value_ = 0.0;
};

// ---- diode (exponential junction; exercised by the Newton tests) ------------
class Diode : public Device {
 public:
  Diode(std::string name, NodeId anode, NodeId cathode, double saturation_current = 1e-14,
        double emission = 1.0, double temperature = 300.0);

  void stamp(StampContext& ctx) override;
  void stamp_pattern(PatternContext& ctx) const override;
  double current(const SolutionView& s) const override;
  double saturation_current() const { return is_; }
  std::vector<TerminalRef> terminals() const override {
    return {{"anode", anode_}, {"cathode", cathode_}};
  }
  std::vector<std::pair<NodeId, NodeId>> dc_paths() const override {
    return {{anode_, cathode_}};
  }

 private:
  NodeId anode_, cathode_;
  double is_;
  double n_vt_;
};

}  // namespace nvsram::spice
