#include "spice/mtj_element.h"

namespace nvsram::spice {

MTJElement::MTJElement(std::string name, NodeId pinned, NodeId free,
                       models::MTJParams params, models::MtjState initial)
    : Device(std::move(name)), pinned_(pinned), free_(free), mtj_(params),
      switching_(initial) {}

void MTJElement::stamp(StampContext& ctx) {
  const double v = ctx.node_voltage(pinned_) - ctx.node_voltage(free_);
  const auto iv = mtj_.current(switching_.state(), v);
  // Linearized companion: i(v) ~ i0 + g (v - v0).
  ctx.stamp_conductance(pinned_, free_, iv.conductance);
  ctx.stamp_current(pinned_, free_, iv.current - iv.conductance * v);
}

void MTJElement::stamp_pattern(PatternContext& ctx) const {
  // Resistive in both magnetic states.
  ctx.conductance(pinned_, free_);
}

bool MTJElement::accept_step(const SolutionView& s, double, double dt) {
  const double i = current(s);
  const bool flipped = switching_.advance(mtj_, i, dt);
  if (flipped) ++switch_count_;
  return flipped;
}

double MTJElement::current(const SolutionView& s) const {
  const double v = s.node_voltage(pinned_) - s.node_voltage(free_);
  return mtj_.current(switching_.state(), v).current;
}

}  // namespace nvsram::spice
