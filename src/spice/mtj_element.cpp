#include "spice/mtj_element.h"

namespace nvsram::spice {

MTJElement::MTJElement(std::string name, NodeId pinned, NodeId free,
                       models::MTJParams params, models::MtjState initial)
    : Device(std::move(name)), pinned_(pinned), free_(free), mtj_(params),
      switching_(initial) {}

void MTJElement::stamp(StampContext& ctx) {
  const double v = ctx.node_voltage(pinned_) - ctx.node_voltage(free_);
  const auto iv = mtj_.current(switching_.state(), v);
  // Linearized companion: i(v) ~ i0 + g (v - v0).
  ctx.stamp_conductance(pinned_, free_, iv.conductance);
  ctx.stamp_current(pinned_, free_, iv.current - iv.conductance * v);
}

void MTJElement::stamp_pattern(PatternContext& ctx) const {
  // Resistive in both magnetic states.
  ctx.conductance(pinned_, free_);
}

bool MTJElement::accept_step(const SolutionView& s, double, double dt) {
  const double i = current(s);
  const bool flipped = switching_.advance(mtj_, i, dt);
  if (flipped) ++switch_count_;
  return flipped;
}

void stamp_mtj_lanes(MTJElement* const* mtjs, StampBatch& batch) {
  const std::size_t k = batch.lane_count();
  const NodeId pinned = mtjs[0]->pinned_node();
  const NodeId free = mtjs[0]->free_node();

  // Zero-initialized: the compiler cannot see that gather/current_many only
  // touch the first lane_count() lanes, and -Wmaybe-uninitialized fires at
  // high optimization levels otherwise.
  double vp[kMaxBatchLanes] = {}, vf[kMaxBatchLanes] = {},
         v[kMaxBatchLanes] = {};
  models::MTJ::IV iv[kMaxBatchLanes] = {};

  batch.gather_node_voltage(pinned, vp);
  batch.gather_node_voltage(free, vf);
  for (std::size_t l = 0; l < k; ++l) v[l] = vp[l] - vf[l];

  bool shared = true;
  for (std::size_t l = 1; l < k && shared; ++l) {
    shared = mtjs[l]->state() == mtjs[0]->state() &&
             mtjs[l]->model().params() == mtjs[0]->model().params();
  }
  if (shared) {
    mtjs[0]->model().current_many(mtjs[0]->state(), v, k, iv);
  } else {
    for (std::size_t l = 0; l < k; ++l) {
      iv[l] = mtjs[l]->model().current(mtjs[l]->state(), v[l]);
    }
  }

  for (std::size_t l = 0; l < k; ++l) {
    StampContext& ctx = batch.lane(l);
    ctx.stamp_conductance(pinned, free, iv[l].conductance);
    ctx.stamp_current(pinned, free, iv[l].current - iv[l].conductance * v[l]);
  }
}

double MTJElement::current(const SolutionView& s) const {
  const double v = s.node_voltage(pinned_) - s.node_voltage(free_);
  return mtj_.current(switching_.state(), v).current;
}

}  // namespace nvsram::spice
