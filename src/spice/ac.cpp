#include "spice/ac.h"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "spice/elements.h"
#include "spice/newton.h"

namespace nvsram::spice {

namespace {

using Complex = std::complex<double>;

// Dense complex LU with partial pivoting (AC systems are small: the cell
// netlists are far below the dense cutoff, and AC is a per-frequency solve).
class ComplexLu {
 public:
  bool factorize(std::vector<Complex> a, std::size_t n) {
    n_ = n;
    a_ = std::move(a);
    perm_.resize(n);
    for (std::size_t i = 0; i < n; ++i) perm_[i] = i;
    for (std::size_t k = 0; k < n; ++k) {
      std::size_t pivot = k;
      double best = std::abs(at(k, k));
      for (std::size_t r = k + 1; r < n; ++r) {
        const double mag = std::abs(at(r, k));
        if (mag > best) {
          best = mag;
          pivot = r;
        }
      }
      if (best < 1e-300) return false;
      if (pivot != k) {
        for (std::size_t c = 0; c < n; ++c) std::swap(at(k, c), at(pivot, c));
        std::swap(perm_[k], perm_[pivot]);
      }
      const Complex inv = 1.0 / at(k, k);
      for (std::size_t r = k + 1; r < n; ++r) {
        const Complex f = at(r, k) * inv;
        at(r, k) = f;
        if (f == Complex(0.0)) continue;
        for (std::size_t c = k + 1; c < n; ++c) at(r, c) -= f * at(k, c);
      }
    }
    return true;
  }

  std::vector<Complex> solve(const std::vector<Complex>& b) const {
    std::vector<Complex> y(n_);
    for (std::size_t i = 0; i < n_; ++i) y[i] = b[perm_[i]];
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t j = 0; j < i; ++j) y[i] -= at(i, j) * y[j];
    }
    for (std::size_t ii = n_; ii-- > 0;) {
      for (std::size_t j = ii + 1; j < n_; ++j) y[ii] -= at(ii, j) * y[j];
      y[ii] /= at(ii, ii);
    }
    return y;
  }

 private:
  Complex& at(std::size_t r, std::size_t c) { return a_[r * n_ + c]; }
  const Complex& at(std::size_t r, std::size_t c) const { return a_[r * n_ + c]; }

  std::size_t n_ = 0;
  std::vector<Complex> a_;
  std::vector<std::size_t> perm_;
};

}  // namespace

ACAnalysis::ACAnalysis(Circuit& circuit, ACOptions options,
                       std::vector<Probe> probes)
    : circuit_(circuit), options_(options), probes_(std::move(probes)) {
  for (const auto& p : probes_) {
    if (p.kind != Probe::Kind::kNodeVoltage) {
      throw std::invalid_argument("ACAnalysis: only node-voltage probes");
    }
  }
}

void ACAnalysis::set_ac(const Device* source, double magnitude) {
  ac_magnitudes_[source] = magnitude;
}

Waveform ACAnalysis::run() {
  // ---- DC operating point ----
  DCAnalysis dc(circuit_);
  const auto op = dc.solve();
  if (!op) throw std::runtime_error("ACAnalysis: DC operating point failed");

  const MnaLayout layout = op->layout();
  const std::size_t n = layout.unknown_count();

  // ---- real part: the Jacobian at the operating point ----
  linalg::SparseBuilder builder(n);
  linalg::Vector dummy_rhs(n, 0.0);
  StampContext ctx(layout, op->raw(), builder, dummy_rhs, /*time=*/0.0,
                   /*dt=*/0.0, /*dc=*/true, IntegrationMethod::kBackwardEuler,
                   /*source_scale=*/1.0);
  for (const auto& dev : circuit_.devices()) dev->stamp(ctx);
  for (std::size_t i = 0; i + 1 < layout.node_count(); ++i) {
    builder.add(i, i, options_.newton.gmin);
  }
  const linalg::CsrMatrix g_matrix(builder);

  // ---- capacitance pattern (imaginary part scales with omega) ----
  struct CapEntry {
    std::size_t a = MnaLayout::kNoIndex;
    std::size_t b = MnaLayout::kNoIndex;
    double c = 0.0;
  };
  std::vector<CapEntry> caps;
  struct IndEntry {
    std::size_t branch;
    double l;
  };
  std::vector<IndEntry> inductors;
  for (const auto& dev : circuit_.devices()) {
    if (const auto* cap = dynamic_cast<const Capacitor*>(dev.get())) {
      caps.push_back({layout.node_index(cap->node_a()),
                      layout.node_index(cap->node_b()), cap->capacitance()});
    } else if (const auto* ind = dynamic_cast<const Inductor*>(dev.get())) {
      inductors.push_back({ind->branch_index(), ind->inductance()});
    }
  }

  // ---- AC excitation vector ----
  std::vector<Complex> rhs(n, Complex(0.0));
  for (const auto& [dev, mag] : ac_magnitudes_) {
    if (const auto* vs = dynamic_cast<const VSource*>(dev)) {
      rhs[vs->branch_index()] += mag;
    } else if (const auto* is = dynamic_cast<const ISource*>(dev)) {
      const std::size_t from = layout.node_index(is->node_from());
      const std::size_t to = layout.node_index(is->node_to());
      if (from != MnaLayout::kNoIndex) rhs[from] -= mag;
      if (to != MnaLayout::kNoIndex) rhs[to] += mag;
    } else {
      throw std::invalid_argument("ACAnalysis: AC source must be V or I");
    }
  }

  // ---- frequency grid ----
  std::vector<double> freqs;
  const double decades = std::log10(options_.f_stop / options_.f_start);
  const int total = std::max(2, static_cast<int>(
                                    decades * options_.points_per_decade) + 1);
  for (int i = 0; i < total; ++i) {
    freqs.push_back(options_.f_start *
                    std::pow(10.0, decades * i / (total - 1)));
  }

  std::vector<std::string> labels;
  for (const auto& p : probes_) {
    labels.push_back("mag:" + p.label);
    labels.push_back("ph:" + p.label);
  }
  Waveform wave(std::move(labels));

  // ---- per-frequency complex solve ----
  for (double f : freqs) {
    const double omega = 2.0 * std::numbers::pi * f;
    std::vector<Complex> a(n * n, Complex(0.0));
    const auto& rp = g_matrix.row_ptr();
    const auto& ci = g_matrix.col_idx();
    const auto& vals = g_matrix.values();
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t k = rp[r]; k < rp[r + 1]; ++k) {
        a[r * n + ci[k]] += vals[k];
      }
    }
    for (const auto& cap : caps) {
      const Complex jwc(0.0, omega * cap.c);
      if (cap.a != MnaLayout::kNoIndex) a[cap.a * n + cap.a] += jwc;
      if (cap.b != MnaLayout::kNoIndex) a[cap.b * n + cap.b] += jwc;
      if (cap.a != MnaLayout::kNoIndex && cap.b != MnaLayout::kNoIndex) {
        a[cap.a * n + cap.b] -= jwc;
        a[cap.b * n + cap.a] -= jwc;
      }
    }
    // Inductor branch equations gain the -jwL impedance term (the real
    // Jacobian stamped the DC short: v_a - v_b = 0).
    for (const auto& ind : inductors) {
      a[ind.branch * n + ind.branch] -= Complex(0.0, omega * ind.l);
    }
    ComplexLu lu;
    if (!lu.factorize(std::move(a), n)) {
      throw std::runtime_error("ACAnalysis: singular system at f=" +
                               std::to_string(f));
    }
    const auto x = lu.solve(rhs);

    std::vector<double> row;
    row.reserve(probes_.size() * 2);
    for (const auto& p : probes_) {
      const std::size_t idx = layout.node_index(p.node);
      const Complex v = idx == MnaLayout::kNoIndex ? Complex(0.0) : x[idx];
      row.push_back(std::abs(v));
      row.push_back(std::arg(v) * 180.0 / std::numbers::pi);
    }
    wave.append(f, row);
  }
  return wave;
}

}  // namespace nvsram::spice
