#include "spice/circuit.h"

namespace nvsram::spice {

Circuit::Circuit() {
  node_names_.push_back("0");
  node_ids_.emplace("0", kGround);
  node_ids_.emplace("gnd", kGround);
}

NodeId Circuit::node(const std::string& name) {
  const auto it = node_ids_.find(name);
  if (it != node_ids_.end()) return it->second;
  const NodeId id = node_names_.size();
  node_names_.push_back(name);
  node_ids_.emplace(name, id);
  return id;
}

NodeId Circuit::find_node(const std::string& name) const {
  const auto it = node_ids_.find(name);
  if (it == node_ids_.end()) {
    throw std::out_of_range("Circuit: unknown node " + name);
  }
  return it->second;
}

bool Circuit::has_node(const std::string& name) const {
  return node_ids_.count(name) != 0;
}

const std::string& Circuit::node_name(NodeId id) const {
  if (id >= node_names_.size()) {
    throw std::out_of_range("Circuit: node id out of range");
  }
  return node_names_[id];
}

Device* Circuit::find_device(const std::string& name) const {
  const auto it = device_index_.find(name);
  if (it == device_index_.end()) return nullptr;
  return devices_[it->second].get();
}

MnaLayout Circuit::build_layout() const {
  MnaLayout layout(node_count());
  for (const auto& dev : devices_) {
    dev->reserve(layout);
  }
  return layout;
}

}  // namespace nvsram::spice
