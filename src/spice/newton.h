// Newton-Raphson solve of the nonlinear MNA system at one time point.
//
// Devices stamp linearized companions (SPICE convention), so each iteration
// solves A(x_k) x_{k+1} = b(x_k) directly.  Convergence requires the update
// to fall below abstol + reltol * |x| on every unknown, evaluated BEFORE
// step limiting so a limited iterate never reads as converged.
#pragma once

#include "linalg/dense.h"
#include "spice/circuit.h"
#include "spice/device.h"

namespace nvsram::spice {

struct NewtonOptions {
  int max_iterations = 120;
  double abstol_v = 1e-6;      // volts
  double abstol_i = 1e-9;      // amperes (branch unknowns)
  double reltol = 1e-3;
  double gmin = 1e-12;         // conductance added node -> ground
  double source_scale = 1.0;   // for source stepping
  double voltage_limit = 0.4;  // max per-iteration node-voltage update (V)
};

struct NewtonResult {
  bool converged = false;
  int iterations = 0;
  bool singular = false;
};

// Solves the system at (time, dt); `x` carries the initial guess in and the
// solution out.  `dc` selects the operating-point companion (capacitors
// open).  Branch unknown indices start at layout.node_count()-1.
NewtonResult solve_newton(Circuit& circuit, const MnaLayout& layout,
                          linalg::Vector& x, double time, double dt, bool dc,
                          IntegrationMethod method, const NewtonOptions& opts);

}  // namespace nvsram::spice
