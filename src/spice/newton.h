// Newton-Raphson solve of the nonlinear MNA system at one time point.
//
// Devices stamp linearized companions (SPICE convention), so each iteration
// solves A(x_k) x_{k+1} = b(x_k) directly.  Convergence requires the update
// to fall below abstol + reltol * |x| on every unknown, evaluated BEFORE
// step limiting so a limited iterate never reads as converged.
//
// Every solve carries non-finite guards: NaN/Inf in a device stamp, the
// assembled RHS, the LU factors, or the solution vector aborts the
// iteration cleanly and attributes the culprit in the returned
// SolveDiagnostics instead of propagating garbage iterates.
#pragma once

#include "linalg/dense.h"
#include "linalg/sparse_lu.h"
#include "spice/circuit.h"
#include "spice/device.h"
#include "spice/diagnostics.h"
#include "util/watchdog.h"

namespace nvsram::spice {

struct NewtonOptions {
  int max_iterations = 120;
  double abstol_v = 1e-6;      // volts
  double abstol_i = 1e-9;      // amperes (branch unknowns)
  double reltol = 1e-3;
  double gmin = 1e-12;         // conductance added node -> ground
  double source_scale = 1.0;   // for source stepping
  double voltage_limit = 0.4;  // max per-iteration node-voltage update (V)

  // Shared relaxation ladder for retry loops (sweep runners, benches):
  // attempt 0 returns *this unchanged; each later attempt trades accuracy
  // for robustness the same way everywhere instead of per-bench schedules.
  NewtonOptions relaxed(int attempt) const;
};

// Per-analysis solver state that persists across Newton solves on one
// circuit.  Holds the SparseLu symbolic analysis so re-solves on an
// unchanged sparsity pattern skip the matching / ordering / symbolic
// factorization and go straight to numerics (KLU-style refactorization).
// The counters make the reuse observable in tests and benches.
struct NewtonWorkspace {
  linalg::SparseLu sparse_lu;
  std::size_t analyze_count = 0;   // symbolic analyses performed
  std::size_t refactor_count = 0;  // numeric-only refactorizations
  std::size_t fallback_count = 0;  // refactor pivot failures -> full factorize
};

// Escalation ladder used when a plain solve fails: solve under heavy gmin
// loading and relax it rung by rung, then ramp the sources up from zero.
// Shared by the DC operating-point search and the transient mid-step
// salvage (where it runs after dt-halving bottoms out at dt_min).
struct RecoveryOptions {
  bool gmin_ramp = true;
  double gmin_start = 1e-2;
  double gmin_stop = 1e-12;
  double gmin_factor = 10.0;
  bool source_ramp = true;
  int source_steps = 25;
  // DC ramps sources from a zero vector; the transient salvage restarts
  // each rung from the last accepted timepoint instead.
  bool source_ramp_from_zero = true;
};

struct NewtonResult {
  bool converged = false;
  int iterations = 0;
  bool singular = false;
  SolveDiagnostics diagnostics;
};

// Name of an unknown for diagnostics: the node name for voltage unknowns,
// "branch[k]" for device branch currents.
std::string unknown_name(const Circuit& circuit, const MnaLayout& layout,
                         std::size_t index);

// Solves the system at (time, dt); `x` carries the initial guess in and the
// solution out.  `dc` selects the operating-point companion (capacitors
// open).  Branch unknown indices start at layout.node_count()-1.
// `ws` (optional) carries the symbolic LU analysis between solves; pass the
// same workspace for every solve on one circuit to reuse the analysis
// whenever the sparsity pattern is unchanged.  Results are bit-identical
// with and without a workspace (both paths run the same analyze+refactor
// numerics; the workspace only skips redundant symbolic work).
NewtonResult solve_newton(Circuit& circuit, const MnaLayout& layout,
                          linalg::Vector& x, double time, double dt, bool dc,
                          IntegrationMethod method, const NewtonOptions& opts,
                          NewtonWorkspace* ws = nullptr);

// solve_newton plus the recovery ladder: on failure escalates through
// gmin-ramping and source-ramping at the same timepoint.  On success the
// returned diagnostics record the stage that produced the solution; on
// failure the stage is kExhausted and the diagnostics describe the
// original (unrecovered) failure.  Iteration counts accumulate across all
// attempted rungs.
//
// `deadline` (optional) bounds the ladder's wall-clock time: it is checked
// between rungs/ramp steps and throws util::WatchdogError on expiry, so a
// pathological operating point cannot stall a characterization or sweep
// point indefinitely (DCOptions::max_wall_seconds and
// TranOptions::max_wall_seconds feed it).
NewtonResult solve_newton_with_recovery(Circuit& circuit,
                                        const MnaLayout& layout,
                                        linalg::Vector& x, double time,
                                        double dt, bool dc,
                                        IntegrationMethod method,
                                        const NewtonOptions& opts,
                                        const RecoveryOptions& recovery,
                                        const util::Deadline* deadline = nullptr,
                                        NewtonWorkspace* ws = nullptr);

class FinFETElement;
class MTJElement;

// K-lane lockstep Newton driver for batched parameter sweeps.
//
// Carries K parameter points — per-lane clones of one netlist with
// identical topology and device order, possibly different parameter values
// — through the Newton iteration in lockstep: devices stamp all lanes via
// the structure-of-arrays StampBatch path (lane-parallel FinFET/MTJ
// implementations; scalar per-lane stamping for everything else), one
// shared NewtonWorkspace holds the single symbolic SparseLu analysis, and
// SparseLu::refactor_lanes()/solve_lanes() redo the per-iteration numerics
// for all lanes over the shared scatter plan.
//
// Bit-identity contract: every lane's solution and diagnostics equal what a
// scalar solve_newton() on that lane alone would produce — except that
// quantities whose exact value is 0.0 may differ in the sign of the zero
// (see SparseLu::refactor_lanes()).  Anything that cannot be replicated in
// lockstep peels the lane off to the scalar path: lanes carrying a fault
// plan peel pre-emptively (so FaultPlan::begin_solve() counters and
// injected diagnostics stay per-point), and a lane whose batched
// refactorization fails (where the scalar path would fall back to a full
// factorize) or whose sparsity pattern diverges from the batch restarts
// scalar solve_newton() from its entry iterate — deterministic Newton
// retraces the identical trajectory, so peeling never changes a result.
class BatchedNewton {
 public:
  // `circuits[l]` / `layouts[l]`: lane l's clone of the netlist and its MNA
  // layout.  All lanes must agree on device count/order, node count and
  // unknown count.  Throws std::invalid_argument on an empty batch, more
  // than kMaxBatchLanes lanes, or misaligned lanes.
  BatchedNewton(std::vector<Circuit*> circuits,
                std::vector<const MnaLayout*> layouts);

  std::size_t lanes() const { return circuits_.size(); }

  // Lockstep counterpart of solve_newton(): xs[l] carries lane l's initial
  // guess in and its solution out.
  std::vector<NewtonResult> solve(const std::vector<linalg::Vector*>& xs,
                                  double time, double dt, bool dc,
                                  IntegrationMethod method,
                                  const NewtonOptions& opts);

  // Lockstep counterpart of solve_newton_with_recovery(): runs the batched
  // solve, then any lane that did not converge reruns the full scalar
  // recovery ladder from its entry iterate (the ladder's warm-started rungs
  // are inherently per-lane).  `deadline` is checked between lanes and
  // inside each ladder.
  std::vector<NewtonResult> solve_with_recovery(
      const std::vector<linalg::Vector*>& xs, double time, double dt, bool dc,
      IntegrationMethod method, const NewtonOptions& opts,
      const RecoveryOptions& recovery, const util::Deadline* deadline = nullptr);

  // The shared workspace (symbolic-analysis reuse observable via counters).
  const NewtonWorkspace& workspace() const { return ws_; }

  // Cumulative telemetry across solve() calls, for benches and tests:
  // lockstep iterations executed, lane-iterations summed over active lanes
  // (their ratio over lanes() is the lane occupancy), and lanes peeled off
  // to the scalar path.
  std::size_t lockstep_iterations() const { return lockstep_iterations_; }
  std::size_t lane_iterations() const { return lane_iterations_; }
  std::size_t peel_count() const { return peel_count_; }

 private:
  struct DeviceGroup {
    enum class Kind { kFinFET, kMtj, kScalar };
    Kind kind = Kind::kScalar;
    std::size_t index = 0;               // device index in every lane
    std::vector<FinFETElement*> fets;    // per-lane, kFinFET only
    std::vector<MTJElement*> mtjs;       // per-lane, kMtj only
  };

  void build_groups();
  void peel_lane(std::size_t lane, std::vector<NewtonResult>& results,
                 const std::vector<linalg::Vector*>& xs,
                 const linalg::Vector& x0, double time, double dt, bool dc,
                 IntegrationMethod method, const NewtonOptions& opts);

  std::vector<Circuit*> circuits_;
  std::vector<const MnaLayout*> layouts_;
  std::vector<DeviceGroup> groups_;
  std::size_t n_ = 0;
  std::size_t node_unknowns_ = 0;

  NewtonWorkspace ws_;                      // shared symbolic analysis
  std::vector<NewtonWorkspace> lane_ws_;    // per-lane, for peeled reruns
  linalg::SparseLu::LaneValues lane_values_;

  // Per-lane iteration scratch, persistent so the hot loop never allocates.
  std::vector<linalg::SparseBuilder> builders_;
  std::vector<linalg::Vector> rhs_;
  std::vector<linalg::CsrAssembler> assemblers_;
  std::vector<linalg::CsrMatrix> mats_;
  std::vector<linalg::Vector> solved_;
  std::vector<linalg::DenseMatrix> dense_;
  std::vector<linalg::LuFactorization> dense_lu_;

  std::size_t lockstep_iterations_ = 0;
  std::size_t lane_iterations_ = 0;
  std::size_t peel_count_ = 0;
};

}  // namespace nvsram::spice
