// Newton-Raphson solve of the nonlinear MNA system at one time point.
//
// Devices stamp linearized companions (SPICE convention), so each iteration
// solves A(x_k) x_{k+1} = b(x_k) directly.  Convergence requires the update
// to fall below abstol + reltol * |x| on every unknown, evaluated BEFORE
// step limiting so a limited iterate never reads as converged.
//
// Every solve carries non-finite guards: NaN/Inf in a device stamp, the
// assembled RHS, the LU factors, or the solution vector aborts the
// iteration cleanly and attributes the culprit in the returned
// SolveDiagnostics instead of propagating garbage iterates.
#pragma once

#include "linalg/dense.h"
#include "linalg/sparse_lu.h"
#include "spice/circuit.h"
#include "spice/device.h"
#include "spice/diagnostics.h"
#include "util/watchdog.h"

namespace nvsram::spice {

struct NewtonOptions {
  int max_iterations = 120;
  double abstol_v = 1e-6;      // volts
  double abstol_i = 1e-9;      // amperes (branch unknowns)
  double reltol = 1e-3;
  double gmin = 1e-12;         // conductance added node -> ground
  double source_scale = 1.0;   // for source stepping
  double voltage_limit = 0.4;  // max per-iteration node-voltage update (V)

  // Shared relaxation ladder for retry loops (sweep runners, benches):
  // attempt 0 returns *this unchanged; each later attempt trades accuracy
  // for robustness the same way everywhere instead of per-bench schedules.
  NewtonOptions relaxed(int attempt) const;
};

// Per-analysis solver state that persists across Newton solves on one
// circuit.  Holds the SparseLu symbolic analysis so re-solves on an
// unchanged sparsity pattern skip the matching / ordering / symbolic
// factorization and go straight to numerics (KLU-style refactorization).
// The counters make the reuse observable in tests and benches.
struct NewtonWorkspace {
  linalg::SparseLu sparse_lu;
  std::size_t analyze_count = 0;   // symbolic analyses performed
  std::size_t refactor_count = 0;  // numeric-only refactorizations
  std::size_t fallback_count = 0;  // refactor pivot failures -> full factorize
};

// Escalation ladder used when a plain solve fails: solve under heavy gmin
// loading and relax it rung by rung, then ramp the sources up from zero.
// Shared by the DC operating-point search and the transient mid-step
// salvage (where it runs after dt-halving bottoms out at dt_min).
struct RecoveryOptions {
  bool gmin_ramp = true;
  double gmin_start = 1e-2;
  double gmin_stop = 1e-12;
  double gmin_factor = 10.0;
  bool source_ramp = true;
  int source_steps = 25;
  // DC ramps sources from a zero vector; the transient salvage restarts
  // each rung from the last accepted timepoint instead.
  bool source_ramp_from_zero = true;
};

struct NewtonResult {
  bool converged = false;
  int iterations = 0;
  bool singular = false;
  SolveDiagnostics diagnostics;
};

// Name of an unknown for diagnostics: the node name for voltage unknowns,
// "branch[k]" for device branch currents.
std::string unknown_name(const Circuit& circuit, const MnaLayout& layout,
                         std::size_t index);

// Solves the system at (time, dt); `x` carries the initial guess in and the
// solution out.  `dc` selects the operating-point companion (capacitors
// open).  Branch unknown indices start at layout.node_count()-1.
// `ws` (optional) carries the symbolic LU analysis between solves; pass the
// same workspace for every solve on one circuit to reuse the analysis
// whenever the sparsity pattern is unchanged.  Results are bit-identical
// with and without a workspace (both paths run the same analyze+refactor
// numerics; the workspace only skips redundant symbolic work).
NewtonResult solve_newton(Circuit& circuit, const MnaLayout& layout,
                          linalg::Vector& x, double time, double dt, bool dc,
                          IntegrationMethod method, const NewtonOptions& opts,
                          NewtonWorkspace* ws = nullptr);

// solve_newton plus the recovery ladder: on failure escalates through
// gmin-ramping and source-ramping at the same timepoint.  On success the
// returned diagnostics record the stage that produced the solution; on
// failure the stage is kExhausted and the diagnostics describe the
// original (unrecovered) failure.  Iteration counts accumulate across all
// attempted rungs.
//
// `deadline` (optional) bounds the ladder's wall-clock time: it is checked
// between rungs/ramp steps and throws util::WatchdogError on expiry, so a
// pathological operating point cannot stall a characterization or sweep
// point indefinitely (DCOptions::max_wall_seconds and
// TranOptions::max_wall_seconds feed it).
NewtonResult solve_newton_with_recovery(Circuit& circuit,
                                        const MnaLayout& layout,
                                        linalg::Vector& x, double time,
                                        double dt, bool dc,
                                        IntegrationMethod method,
                                        const NewtonOptions& opts,
                                        const RecoveryOptions& recovery,
                                        const util::Deadline* deadline = nullptr,
                                        NewtonWorkspace* ws = nullptr);

}  // namespace nvsram::spice
