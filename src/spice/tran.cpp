#include "spice/tran.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "util/log.h"

namespace nvsram::spice {

TranOptions TranOptions::relaxed(int attempt) const {
  TranOptions r = *this;
  if (attempt <= 0) return r;
  r.newton = newton.relaxed(attempt);
  // Loosen the truncation-error budget in step with Newton and let the
  // controller take coarser steps before declaring underflow.
  const double scale = std::pow(10.0, attempt);
  r.lte_reltol = std::min(lte_reltol * scale, 2e-2);
  r.lte_abstol = std::min(lte_abstol * scale, 1e-3);
  r.dt_min = dt_min * scale;
  return r;
}

TranAnalysis::TranAnalysis(Circuit& circuit, TranOptions options,
                           std::vector<Probe> probes)
    : circuit_(circuit), options_(options), probes_(std::move(probes)),
      layout_(circuit.build_layout()) {}

double TranAnalysis::source_energy(const std::string& name) const {
  const auto it = energies_.find(name);
  return it == energies_.end() ? 0.0 : it->second;
}

Waveform TranAnalysis::run(const DCSolution* initial) {
  if (options_.t_stop <= 0.0) {
    throw std::invalid_argument("TranAnalysis: t_stop must be positive");
  }
  const double dt_max =
      options_.dt_max > 0.0 ? options_.dt_max : options_.t_stop / 50.0;

  const util::Deadline watchdog(options_.max_wall_seconds);

  // ---- initial condition ----
  linalg::Vector x;
  if (initial) {
    x = initial->raw();
  } else {
    DCAnalysis dc(circuit_);
    auto sol = dc.solve();
    if (!sol) {
      stats_.last_diagnostics = dc.last_diagnostics();
      throw SolverError("TranAnalysis: DC initial point failed",
                        dc.last_diagnostics());
    }
    x = sol->raw();
  }
  {
    SolutionView view(x, layout_);
    for (const auto& dev : circuit_.devices()) dev->begin_transient(view);
  }

  // ---- collect sources for energy accounting, and breakpoints ----
  std::vector<VSource*> sources;
  for (const auto& dev : circuit_.devices()) {
    if (auto* vs = dynamic_cast<VSource*>(dev.get())) sources.push_back(vs);
  }
  std::vector<double> bp_raw;
  for (const auto& dev : circuit_.devices()) {
    dev->breakpoints(options_.t_stop, bp_raw);
  }
  std::set<double> breakpoints(bp_raw.begin(), bp_raw.end());
  breakpoints.insert(options_.t_stop);

  // ---- probe recording ----
  std::vector<std::string> labels;
  labels.reserve(probes_.size());
  for (const auto& p : probes_) labels.push_back(p.label);
  Waveform wave(std::move(labels));

  energies_.clear();
  for (auto* vs : sources) energies_[vs->name()] = 0.0;
  std::vector<double> power_prev(sources.size());

  auto record = [&](double t, const SolutionView& view) {
    std::vector<double> values;
    values.reserve(probes_.size());
    for (const auto& p : probes_) {
      double energy = 0.0;
      if (p.kind == Probe::Kind::kSourceEnergy) {
        energy = energies_[p.device->name()];
      }
      values.push_back(evaluate_probe(p, view, t, energy));
    }
    wave.append(t, values);
  };

  double t = 0.0;
  // Probe-recording decimation: keep at least max_samples points by spacing
  // recordings ~t_stop/max_samples apart (plus the first and last points).
  const double record_spacing =
      options_.max_samples > 0
          ? options_.t_stop / static_cast<double>(options_.max_samples)
          : 0.0;
  double last_recorded = -1.0;
  {
    SolutionView view(x, layout_);
    for (std::size_t i = 0; i < sources.size(); ++i) {
      power_prev[i] = sources[i]->delivered_power(view, t);
    }
    record(t, view);
    last_recorded = t;
  }

  // History for the predictor (two previous accepted points).
  linalg::Vector x_prev = x;
  double t_prev = 0.0;
  bool have_history = false;

  double dt = std::min(options_.dt_initial, dt_max);
  const std::size_t node_unknowns = layout_.node_count() - 1;

  while (t < options_.t_stop - 1e-18 * options_.t_stop) {
    watchdog.check("TranAnalysis");
    // Clamp to the next breakpoint so source corners are hit exactly.
    auto bp = breakpoints.upper_bound(t * (1.0 + 1e-15));
    double dt_try = std::min(dt, dt_max);
    if (bp != breakpoints.end()) {
      const double gap = *bp - t;
      if (gap <= dt_try * 1.5) {
        dt_try = gap;  // land exactly on the breakpoint
      }
    }
    dt_try = std::min(dt_try, options_.t_stop - t);

    // Predictor: linear extrapolation of the last two accepted solutions.
    linalg::Vector x_pred = x;
    if (have_history && t > t_prev) {
      const double ratio = dt_try / (t - t_prev);
      for (std::size_t i = 0; i < x.size(); ++i) {
        x_pred[i] = x[i] + (x[i] - x_prev[i]) * ratio;
      }
    }

    linalg::Vector x_new = x_pred;
    NewtonResult nr =
        solve_newton(circuit_, layout_, x_new, t + dt_try, dt_try, /*dc=*/false,
                     options_.method, options_.newton, &ws_);
    stats_.total_newton_iterations += static_cast<std::size_t>(nr.iterations);

    bool salvaged = false;
    if (!nr.converged) {
      ++stats_.newton_failures;
      nr.diagnostics.stage = RecoveryStage::kDtHalving;
      stats_.last_diagnostics = nr.diagnostics;
      dt = dt_try / 4.0;
      if (dt >= options_.dt_min) continue;

      // dt-halving is exhausted: escalate through the recovery ladder at
      // this timepoint, restarting from the last accepted solution.
      if (options_.recovery_enabled) {
        RecoveryOptions recovery = options_.recovery;
        recovery.source_ramp_from_zero = false;
        x_new = x;
        nr = solve_newton_with_recovery(circuit_, layout_, x_new, t + dt_try,
                                        dt_try, /*dc=*/false, options_.method,
                                        options_.newton, recovery,
                                        watchdog.unlimited() ? nullptr
                                                             : &watchdog,
                                        &ws_);
        stats_.total_newton_iterations +=
            static_cast<std::size_t>(nr.iterations);
      }
      stats_.last_diagnostics = nr.diagnostics;
      if (!nr.converged) {
        throw SolverError("TranAnalysis: timestep underflow at t=" +
                              std::to_string(t) + " (recovery ladder exhausted)",
                          nr.diagnostics);
      }
      if (nr.diagnostics.stage == RecoveryStage::kGminRamp) {
        ++stats_.gmin_recoveries;
      } else if (nr.diagnostics.stage == RecoveryStage::kSourceRamp) {
        ++stats_.source_recoveries;
      }
      // Accept the salvaged step unconditionally: the predictor state is
      // stale, so the LTE test below would reject it spuriously.
      salvaged = true;
      dt = std::max(options_.dt_min, dt_try);
    }

    // Local error estimate from the predictor mismatch (node voltages only).
    if (salvaged) {
      // dt already reset; no LTE check against the stale predictor.
    } else if (have_history) {
      double worst = 0.0;
      for (std::size_t i = 0; i < node_unknowns; ++i) {
        const double err = std::fabs(x_new[i] - x_pred[i]);
        const double tol = options_.lte_abstol +
                           options_.lte_reltol * std::max(std::fabs(x_new[i]),
                                                          std::fabs(x[i]));
        worst = std::max(worst, err / (options_.lte_trtol * tol));
      }
      if (worst > 1.0 && dt_try > options_.dt_min * 4.0) {
        ++stats_.rejected_steps;
        dt = std::max(options_.dt_min, dt_try * 0.5);
        continue;
      }
      // Grow/shrink for the next step.
      const double factor =
          worst > 0.0 ? std::clamp(0.9 / std::sqrt(worst), 0.4, 2.0) : 2.0;
      dt = std::clamp(dt_try * factor, options_.dt_min, dt_max);
    } else {
      dt = std::min(dt_try * 2.0, dt_max);
    }

    // ---- accept the step ----
    const double t_new = t + dt_try;
    SolutionView view(x_new, layout_);

    bool event = false;
    for (const auto& dev : circuit_.devices()) {
      event |= dev->accept_step(view, t_new, dt_try);
    }
    if (event) {
      ++stats_.device_events;
      dt = std::max(options_.dt_min, options_.dt_initial);
    }

    // Energy accumulation (trapezoid on delivered power).
    for (std::size_t i = 0; i < sources.size(); ++i) {
      const double p_now = sources[i]->delivered_power(view, t_new);
      energies_[sources[i]->name()] += 0.5 * (p_now + power_prev[i]) * dt_try;
      power_prev[i] = p_now;
    }

    x_prev = x;
    t_prev = t;
    x = x_new;
    t = t_new;
    have_history = true;
    ++stats_.accepted_steps;

    const bool final_point = t >= options_.t_stop - 1e-18 * options_.t_stop;
    if (record_spacing == 0.0 || final_point ||
        t - last_recorded >= record_spacing) {
      record(t, view);
      last_recorded = t;
    }
  }
  return wave;
}

}  // namespace nvsram::spice
