#include "runner/ipc.h"

#include <cerrno>
#include <cstring>

#if !defined(_WIN32)
#include <unistd.h>
#endif

namespace nvsram::runner::ipc {

namespace {

constexpr std::size_t kMaxPayload = 256u << 20;

#if !defined(_WIN32)

bool write_all(int fd, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t rc = ::write(fd, p, n);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += rc;
    n -= static_cast<std::size_t>(rc);
  }
  return true;
}

// 1 = ok, 0 = clean EOF before the first byte, -1 = error / EOF mid-read.
int read_all(int fd, void* data, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t rc = ::read(fd, p + got, n - got);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (rc == 0) return got == 0 ? 0 : -1;
    got += static_cast<std::size_t>(rc);
  }
  return 1;
}

#endif  // !_WIN32

// ---- little-endian scalar codec ----

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back((v >> (8 * i)) & 0xFF);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back((v >> (8 * i)) & 0xFF);
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

// Bounds-checked sequential reader over a payload; any overrun latches
// ok = false and subsequent reads return zeros.
struct Reader {
  const std::vector<std::uint8_t>& buf;
  std::size_t pos = 0;
  bool ok = true;

  std::uint8_t u8() {
    if (pos + 1 > buf.size()) {
      ok = false;
      return 0;
    }
    return buf[pos++];
  }
  std::uint32_t u32() {
    if (pos + 4 > buf.size()) {
      ok = false;
      return 0;
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(buf[pos + i]) << (8 * i);
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    if (pos + 8 > buf.size()) {
      ok = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(buf[pos + i]) << (8 * i);
    pos += 8;
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (!ok || pos + n > buf.size()) {
      ok = false;
      return {};
    }
    std::string s(buf.begin() + static_cast<std::ptrdiff_t>(pos),
                  buf.begin() + static_cast<std::ptrdiff_t>(pos + n));
    pos += n;
    return s;
  }
};

}  // namespace

bool write_frame(int fd, FrameType type, const void* payload, std::size_t n) {
#if defined(_WIN32)
  (void)fd;
  (void)type;
  (void)payload;
  (void)n;
  return false;
#else
  if (n > kMaxPayload) return false;
  std::vector<std::uint8_t> frame;
  frame.reserve(n + 5);
  put_u32(frame, static_cast<std::uint32_t>(n));
  frame.push_back(static_cast<std::uint8_t>(type));
  if (n > 0) {
    const auto* p = static_cast<const std::uint8_t*>(payload);
    frame.insert(frame.end(), p, p + n);
  }
  // One write per frame: small frames stay atomic on a pipe (< PIPE_BUF),
  // so heartbeats never interleave with an in-progress result.
  return write_all(fd, frame.data(), frame.size());
#endif
}

ReadStatus read_frame(int fd, Frame& out) {
#if defined(_WIN32)
  (void)fd;
  (void)out;
  return ReadStatus::kError;
#else
  std::uint8_t header[5];
  const int rc = read_all(fd, header, sizeof(header));
  if (rc == 0) return ReadStatus::kEof;
  if (rc < 0) return ReadStatus::kError;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= std::uint32_t(header[i]) << (8 * i);
  if (len > kMaxPayload) return ReadStatus::kError;
  if (header[4] < 1 || header[4] > 4) return ReadStatus::kError;
  out.type = static_cast<FrameType>(header[4]);
  out.payload.resize(len);
  if (len > 0 && read_all(fd, out.payload.data(), len) != 1) {
    return ReadStatus::kError;
  }
  return ReadStatus::kFrame;
#endif
}

std::vector<std::uint8_t> encode_request(std::uint64_t begin,
                                         std::uint64_t count) {
  std::vector<std::uint8_t> out;
  put_u64(out, begin);
  put_u64(out, count);
  return out;
}

bool decode_request(const std::vector<std::uint8_t>& payload,
                    std::uint64_t& begin, std::uint64_t& count) {
  Reader r{payload};
  begin = r.u64();
  count = r.u64();
  return r.ok && r.pos == payload.size() && count > 0;
}

std::vector<std::uint8_t> encode_result(const PointResult& res) {
  std::vector<std::uint8_t> out;
  put_u64(out, res.outcome.index);
  out.push_back(res.succeeded ? 1 : 0);
  out.push_back(static_cast<std::uint8_t>(res.outcome.status));
  put_u32(out, static_cast<std::uint32_t>(res.outcome.attempts));
  put_f64(out, res.outcome.seconds);
  put_u32(out, static_cast<std::uint32_t>(res.outcome.backoff_ms.size()));
  for (double d : res.outcome.backoff_ms) put_f64(out, d);
  put_string(out, res.outcome.error);
  put_u32(out, static_cast<std::uint32_t>(res.rows.size()));
  for (const auto& row : res.rows) {
    put_u32(out, static_cast<std::uint32_t>(row.size()));
    for (double v : row) put_f64(out, v);
  }
  return out;
}

bool decode_result(const std::vector<std::uint8_t>& payload, PointResult& res) {
  Reader r{payload};
  res.outcome.index = r.u64();
  res.succeeded = r.u8() != 0;
  const std::uint8_t status = r.u8();
  if (status > static_cast<std::uint8_t>(PointStatus::kPoisoned)) return false;
  res.outcome.status = static_cast<PointStatus>(status);
  res.outcome.attempts = static_cast<int>(r.u32());
  res.outcome.seconds = r.f64();
  const std::uint32_t n_delays = r.u32();
  if (!r.ok || n_delays > 1u << 20) return false;
  res.outcome.backoff_ms.clear();
  res.outcome.backoff_ms.reserve(n_delays);
  for (std::uint32_t i = 0; i < n_delays && r.ok; ++i) {
    res.outcome.backoff_ms.push_back(r.f64());
  }
  res.outcome.error = r.str();
  const std::uint32_t n_rows = r.u32();
  if (!r.ok || n_rows > 1u << 24) return false;
  res.rows.clear();
  res.rows.reserve(n_rows);
  for (std::uint32_t i = 0; i < n_rows && r.ok; ++i) {
    const std::uint32_t n_vals = r.u32();
    if (!r.ok || n_vals > 1u << 20) return false;
    std::vector<double> row;
    row.reserve(n_vals);
    for (std::uint32_t j = 0; j < n_vals && r.ok; ++j) row.push_back(r.f64());
    res.rows.push_back(std::move(row));
  }
  return r.ok && r.pos == payload.size();
}

}  // namespace nvsram::runner::ipc
