// Process-isolated sweep execution: a supervisor that forks N worker
// subprocesses, hands out points over the runner/ipc.h frame protocol, and
// contains every worker failure class so one pathological point can never
// take the sweep down:
//
//   failure class                  containment
//   -----------------------------  -------------------------------------
//   nonzero exit / fatal signal    record the in-flight point with the
//   (SIGSEGV, SIGABRT, ...)        worker's last breadcrumb, respawn the
//                                  worker with exponential backoff +
//                                  deterministic jitter, retry the point
//   silent past the hang deadline  SIGKILL + respawn (a wedged solve that
//   (missed heartbeats)            ignores the cooperative watchdog)
//   allocation blow-up             RLIMIT_AS turns it into a recorded
//                                  bad_alloc failure or a contained death
//   point kills its worker twice   quarantined as `poison` in the failure
//                                  manifest; the sweep continues
//
// The supervisor is single-threaded (fork safety) and feeds the same
// Committer as the in-process pool, strictly in point order, so CSV,
// checkpoint, and failure manifest stay byte-identical to an in-process
// run at any worker count.
#pragma once

#include <cstddef>
#include <string>

#include "runner/committer.h"
#include "runner/sweep_runner.h"

namespace nvsram::runner::supervisor {

// True when this platform supports fork + pipes; when false, SweepRunner
// falls back cleanly to the in-process pool.
bool available();

// Runs the sweep's fresh points on up to `n_workers` supervised worker
// subprocesses; resumed points are replayed through the committer in
// order, interleaved exactly as the in-process paths do.  With
// RunnerOptions::batch > 1, groups of adjacent pending points are assigned
// as one REQUEST and the worker streams back one RESULT per point, so a
// mid-group crash is attributed to the first point whose result never
// arrived; the un-received remainder is requeued as singleton (per-point)
// assignments, which keeps crash containment and poisoning per-point even
// when the batched fast path is the thing that died.  Sets `stopped`
// when the committer stopped the sweep (stop drill or harness error).
// Throws RunnerError for unrecoverable harness faults (e.g. fork failing
// persistently with work still pending).
void run(const std::string& name, const RunnerOptions& options,
         std::size_t n_points, const SweepRunner::PointFn& fn,
         const SweepRunner::BatchPointFn& batch_fn, std::size_t n_workers,
         Committer& committer, RunSummary& summary, bool& stopped);

}  // namespace nvsram::runner::supervisor
