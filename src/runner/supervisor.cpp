#include "runner/supervisor.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "runner/ipc.h"
#include "util/breadcrumb.h"
#include "util/log.h"

#if !defined(_WIN32)
#include <fcntl.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace nvsram::runner::supervisor {

bool available() {
#if defined(_WIN32)
  return false;
#else
  return true;
#endif
}

#if defined(_WIN32)

void run(const std::string&, const RunnerOptions&, std::size_t,
         const SweepRunner::PointFn&, const SweepRunner::BatchPointFn&,
         std::size_t, Committer&, RunSummary&, bool&) {
  throw RunnerError("process isolation is unavailable on this platform");
}

#else  // POSIX implementation

namespace {

// A point is quarantined after killing this many workers.
constexpr int kCrashesBeforePoison = 2;
// Persistent fork failure with work still pending is a harness fault, not
// something to spin on forever.
constexpr int kMaxForkFailures = 50;

double monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Hang deadline: explicit override, else derived from the cooperative
// per-point watchdog (the same budget wired into TranOptions::
// max_wall_seconds) with generous margin so the in-band WatchdogError
// always fires first on a point that merely runs long.  0 = containment off.
double hang_deadline_seconds(const RunnerOptions& options) {
  if (options.heartbeat_timeout_sec > 0.0) return options.heartbeat_timeout_sec;
  if (options.point_timeout_sec > 0.0) {
    return options.point_timeout_sec * 1.5 + 2.0;
  }
  return 0.0;
}

struct WorkerSlot {
  pid_t pid = -1;
  int req_fd = -1;  // supervisor -> worker (REQUEST)
  int res_fd = -1;  // worker -> supervisor (RESULT / HEARTBEAT / CRASH)
  bool busy = false;
  std::size_t point = 0;     // first point of the in-flight group
  std::size_t count = 1;     // group width
  std::size_t received = 0;  // results streamed back so far
  int deaths = 0;          // drives the respawn backoff schedule
  double spawn_at = 0.0;   // monotonic time when (re)spawning is allowed
  double activity_at = 0.0;  // last frame received or point assigned
  bool hang_killed = false;
  std::string crash_note;  // breadcrumb from a CRASH frame, if one arrived
  std::string crumb_path;
};

std::string read_breadcrumb_file(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  if (in && std::getline(in, line)) return line;
  return {};
}

// Everything the worker subprocess does, start to finish.  Never returns:
// _Exit keeps the child away from the parent's atexit handlers and
// buffered streams (both inherited by fork).
[[noreturn]] void worker_main(const RunnerOptions& options,
                              const SweepRunner::PointFn& fn,
                              const SweepRunner::BatchPointFn& batch_fn,
                              int req_fd, int res_fd, int slot,
                              const std::string& crumb_path) {
  const int crumb_fd =
      ::open(crumb_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  util::breadcrumb::arm(crumb_fd, res_fd);

  if (options.worker_rlimit_mb > 0.0) {
    const rlim_t bytes =
        static_cast<rlim_t>(options.worker_rlimit_mb * 1024.0 * 1024.0);
    struct rlimit lim {bytes, bytes};
    ::setrlimit(RLIMIT_AS, &lim);
  }

  // Backoff sleeps are chunked with heartbeats so a long retry delay is
  // never mistaken for a hang.
  auto heartbeat_sleep = [res_fd](double ms) {
    double left = ms;
    while (left > 0.0) {
      const double chunk = left < 100.0 ? left : 100.0;
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(chunk));
      left -= chunk;
      ipc::write_frame(res_fd, ipc::FrameType::kHeartbeat);
    }
  };

  ipc::write_frame(res_fd, ipc::FrameType::kHeartbeat);  // ready
  for (;;) {
    ipc::Frame frame;
    if (ipc::read_frame(req_fd, frame) != ipc::ReadStatus::kFrame ||
        frame.type != ipc::FrameType::kRequest) {
      break;  // EOF (supervisor gone / shutdown) or protocol damage
    }
    std::uint64_t begin = 0;
    std::uint64_t count = 0;
    if (!ipc::decode_request(frame.payload, begin, count)) break;
    // Results stream back one frame per point as they become final, so a
    // death mid-group leaves the supervisor an exact received prefix to
    // attribute the crash with.
    bool pipe_ok = true;
    detail::solve_group(
        options, static_cast<std::size_t>(begin),
        static_cast<std::size_t>(count), slot, fn, batch_fn, heartbeat_sleep,
        [&](PointResult res) {
          if (!pipe_ok) return;
          const auto payload = ipc::encode_result(res);
          pipe_ok = ipc::write_frame(res_fd, ipc::FrameType::kResult,
                                     payload.data(), payload.size());
        });
    util::breadcrumb::set_idle();
    if (!pipe_ok) break;
  }
  std::_Exit(0);
}

class Supervisor {
 public:
  Supervisor(std::string name, const RunnerOptions& options,
             std::size_t n_points, const SweepRunner::PointFn& fn,
             const SweepRunner::BatchPointFn& batch_fn, std::size_t n_workers,
             Committer& committer, RunSummary& summary)
      : name_(std::move(name)),
        options_(options),
        n_points_(n_points),
        fn_(fn),
        batch_fn_(batch_fn),
        batch_(options.batch > 1 ? static_cast<std::size_t>(options.batch)
                                 : 1),
        committer_(committer),
        summary_(summary),
        hang_deadline_(hang_deadline_seconds(options)),
        ready_cap_(n_workers * 4 + 8) {
    slots_.resize(n_workers);
    for (std::size_t w = 0; w < n_workers; ++w) {
      slots_[w].crumb_path =
          options_.csv_path + ".worker" + std::to_string(w) + ".crumb";
    }
    for (std::size_t i = 0; i < n_points_; ++i) {
      if (!committer_.is_resumed(i)) queue_.push_back(i);
    }
  }

  // Returns true when the committer stopped the sweep early.
  bool run() {
    // The supervisor writes into pipes whose reader may have just died;
    // that must surface as EPIPE, not a fatal SIGPIPE.
    struct sigaction ignore_pipe {};
    ignore_pipe.sa_handler = SIG_IGN;
    struct sigaction saved_pipe {};
    ::sigaction(SIGPIPE, &ignore_pipe, &saved_pipe);

    bool stopped = false;
    try {
      stopped = event_loop();
    } catch (...) {
      shutdown_workers(/*force=*/true);
      ::sigaction(SIGPIPE, &saved_pipe, nullptr);
      throw;
    }
    shutdown_workers(/*force=*/stopped);
    ::sigaction(SIGPIPE, &saved_pipe, nullptr);
    return stopped;
  }

 private:
  bool work_pending() const { return !queue_.empty(); }

  // Commits everything committable in strict point order; false => stop.
  bool commit_ready() {
    while (next_commit_ < n_points_) {
      if (committer_.is_resumed(next_commit_)) {
        committer_.commit_resumed(next_commit_);
        if (!committer_.harness_error().empty()) return false;
        ++next_commit_;
        continue;
      }
      const auto it = ready_.find(next_commit_);
      if (it == ready_.end()) break;
      PointResult res = std::move(it->second);
      ready_.erase(it);
      const bool keep_going = committer_.commit(next_commit_, std::move(res));
      ++next_commit_;
      if (!keep_going) return false;
    }
    return true;
  }

  void spawn(std::size_t w) {
    WorkerSlot& s = slots_[w];
    int req[2], res[2];
    if (::pipe(req) != 0) {
      note_fork_failure(s);
      return;
    }
    if (::pipe(res) != 0) {
      ::close(req[0]);
      ::close(req[1]);
      note_fork_failure(s);
      return;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      for (int fd : {req[0], req[1], res[0], res[1]}) ::close(fd);
      note_fork_failure(s);
      return;
    }
    if (pid == 0) {
      // Child: drop every inherited supervisor-side pipe end — holding a
      // sibling's write end open would mask that sibling's EOF-on-death.
      for (const WorkerSlot& other : slots_) {
        if (other.req_fd >= 0) ::close(other.req_fd);
        if (other.res_fd >= 0) ::close(other.res_fd);
      }
      ::close(req[1]);
      ::close(res[0]);
      worker_main(options_, fn_, batch_fn_, req[0], res[1],
                  static_cast<int>(w), s.crumb_path);
    }
    // Parent.
    ::close(req[0]);
    ::close(res[1]);
    s.pid = pid;
    s.req_fd = req[1];
    s.res_fd = res[0];
    s.busy = false;
    s.hang_killed = false;
    s.crash_note.clear();
    s.activity_at = monotonic_seconds();
    fork_failures_ = 0;
  }

  void note_fork_failure(WorkerSlot& s) {
    s.spawn_at = monotonic_seconds() + 1.0;
    if (++fork_failures_ > kMaxForkFailures) {
      throw RunnerError("SweepRunner " + name_ +
                        ": cannot fork sweep workers (" +
                        std::to_string(fork_failures_) + " failures)");
    }
    util::log_warn() << "sweep " << name_
                     << ": fork/pipe failed; retrying worker spawn";
  }

  void assign_work() {
    for (std::size_t w = 0; w < slots_.size(); ++w) {
      WorkerSlot& s = slots_[w];
      if (s.pid < 0 || s.busy) continue;
      if (queue_.empty()) break;
      // Backpressure must never stall the pipeline.  The queue front is the
      // lowest pending point (requeues push_front); when it is exactly the
      // next point to commit, the parked results can only drain through it,
      // so it bypasses the cap — otherwise a point whose worker died after
      // the others filled the buffer would deadlock the sweep.
      if (ready_.size() >= ready_cap_ && queue_.front() != next_commit_) break;
      const std::size_t index = queue_.front();
      // Lane group: consecutive queued points up to the batch width.
      // Crash-retried points are forced to singleton assignments (the
      // per-point loop), so a point that died inside the batched fast path
      // is re-tried — and, if it keeps killing workers, poisoned — exactly
      // as it would be at batch = 1.
      std::size_t count = 1;
      if (batch_ > 1 && singleton_.find(index) == singleton_.end()) {
        while (count < batch_ && count < queue_.size() &&
               queue_[count] == index + count &&
               singleton_.find(index + count) == singleton_.end()) {
          ++count;
        }
      }
      const auto payload = ipc::encode_request(index, count);
      if (!ipc::write_frame(s.req_fd, ipc::FrameType::kRequest, payload.data(),
                            payload.size())) {
        // Worker already dead: its EOF will be handled by the poll loop.
        ::kill(s.pid, SIGKILL);
        continue;
      }
      queue_.erase(queue_.begin(),
                   queue_.begin() + static_cast<std::ptrdiff_t>(count));
      s.busy = true;
      s.point = index;
      s.count = count;
      s.received = 0;
      s.activity_at = monotonic_seconds();
      s.hang_killed = false;
    }
  }

  void make_poisoned(std::size_t index, int deaths, const std::string& cause) {
    PointResult res;
    res.succeeded = false;
    res.outcome.index = index;
    res.outcome.status = PointStatus::kPoisoned;
    res.outcome.attempts = deaths;
    res.outcome.error = "quarantined after killing " + std::to_string(deaths) +
                        " workers; last death: " + cause;
    ready_.emplace(index, std::move(res));
  }

  void handle_death(std::size_t w) {
    WorkerSlot& s = slots_[w];
    int status = 0;
    ::waitpid(s.pid, &status, 0);
    std::ostringstream cause;
    if (WIFSIGNALED(status)) {
      cause << "fatal signal " << WTERMSIG(status);
      if (s.hang_killed) cause << " (hang: missed heartbeats past deadline)";
    } else if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
      cause << "exit code " << WEXITSTATUS(status);
    } else {
      cause << "unexpected clean exit";
    }

    ::close(s.req_fd);
    ::close(s.res_fd);
    s.req_fd = s.res_fd = -1;
    s.pid = -1;

    if (s.busy) {
      std::string crumb = s.crash_note;
      if (crumb.empty()) crumb = read_breadcrumb_file(s.crumb_path);
      if (crumb.empty()) crumb = "(no breadcrumb)";
      const std::string described =
          cause.str() + " [breadcrumb: " + crumb + "]";
      // Results stream back per point, so the first point whose RESULT
      // never arrived is the one being computed when the worker died.
      const std::size_t culprit = s.point + s.received;
      // The un-received remainder of the group was collateral, not the
      // culprit: requeue it ahead of everything else (in order, behind the
      // culprit) and force every un-received point through singleton
      // per-point retries — a crash inside the batched fast path must not
      // be able to take the same bystanders down twice.
      for (std::size_t p = s.point + s.count; p-- > culprit + 1;) {
        queue_.push_front(p);
        singleton_.insert(p);
      }
      singleton_.insert(culprit);
      const int deaths = ++crash_count_[culprit];
      if (deaths >= kCrashesBeforePoison) {
        util::log_warn() << "sweep " << name_ << ": point " << culprit
                         << " killed worker " << w << " again (" << described
                         << "); quarantining as poison";
        make_poisoned(culprit, deaths, described);
      } else {
        util::log_warn() << "sweep " << name_ << ": worker " << w
                         << " died computing point " << culprit << " ("
                         << described << "); requeueing once";
        queue_.push_front(culprit);
      }
      s.busy = false;
    }
    s.crash_note.clear();

    const double backoff_ms =
        detail::respawn_backoff_ms(options_, static_cast<int>(w), s.deaths);
    ++s.deaths;
    ++summary_.respawns;
    s.spawn_at = monotonic_seconds() + backoff_ms / 1000.0;
  }

  // Drains one frame from a readable worker; death on EOF / damage.
  void handle_readable(std::size_t w) {
    WorkerSlot& s = slots_[w];
    ipc::Frame frame;
    const ipc::ReadStatus rs = ipc::read_frame(s.res_fd, frame);
    if (rs == ipc::ReadStatus::kEof) {
      handle_death(w);
      return;
    }
    if (rs == ipc::ReadStatus::kError) {
      // Torn frame (signal landed mid-write) or protocol damage: the
      // stream can no longer be trusted — put the worker down.
      ::kill(s.pid, SIGKILL);
      handle_death(w);
      return;
    }
    s.activity_at = monotonic_seconds();
    switch (frame.type) {
      case ipc::FrameType::kHeartbeat:
        break;
      case ipc::FrameType::kCrash:
        s.crash_note = ipc::payload_text(frame);
        break;
      case ipc::FrameType::kResult: {
        PointResult res;
        const std::size_t expected = s.point + s.received;
        if (!ipc::decode_result(frame.payload, res) || !s.busy ||
            res.outcome.index != expected) {
          ::kill(s.pid, SIGKILL);
          handle_death(w);
          return;
        }
        // A point that already killed a worker but then completed on a
        // respawned one recovered by containment, not by luck: mark it so
        // the summary reflects the crash.
        if (res.succeeded && crash_count_[expected] > 0 &&
            res.outcome.status == PointStatus::kOk) {
          res.outcome.status = PointStatus::kRecovered;
        }
        ready_.emplace(expected, std::move(res));
        if (++s.received == s.count) s.busy = false;
        break;
      }
      case ipc::FrameType::kRequest:
        // Workers never send requests; treat as damage.
        ::kill(s.pid, SIGKILL);
        handle_death(w);
        break;
    }
  }

  void kill_hung_workers() {
    if (hang_deadline_ <= 0.0) return;
    const double now = monotonic_seconds();
    for (std::size_t w = 0; w < slots_.size(); ++w) {
      WorkerSlot& s = slots_[w];
      if (s.pid < 0 || !s.busy || s.hang_killed) continue;
      if (now - s.activity_at > hang_deadline_) {
        util::log_warn() << "sweep " << name_ << ": worker " << w
                         << " silent for more than " << hang_deadline_
                         << " s on point " << s.point << "; SIGKILL";
        s.hang_killed = true;
        ::kill(s.pid, SIGKILL);
        // EOF lands in the next poll round; handle_death does the rest.
      }
    }
  }

  // Milliseconds until the next scheduled supervisor action.
  int poll_timeout_ms() const {
    const double now = monotonic_seconds();
    double wait = 0.2;
    for (const WorkerSlot& s : slots_) {
      if (s.pid >= 0 && s.busy && hang_deadline_ > 0.0 && !s.hang_killed) {
        wait = std::min(wait, s.activity_at + hang_deadline_ - now);
      }
      if (s.pid < 0 && work_pending()) {
        wait = std::min(wait, s.spawn_at - now);
      }
    }
    if (wait < 0.01) wait = 0.01;
    return static_cast<int>(wait * 1000.0);
  }

  // Returns true when the committer stopped the sweep early.
  bool event_loop() {
    for (;;) {
      if (!commit_ready()) return true;
      if (next_commit_ >= n_points_) return false;

      const double now = monotonic_seconds();
      for (std::size_t w = 0; w < slots_.size(); ++w) {
        if (slots_[w].pid < 0 && work_pending() && now >= slots_[w].spawn_at) {
          spawn(w);
        }
      }
      assign_work();
      kill_hung_workers();

      std::vector<pollfd> fds;
      std::vector<std::size_t> owners;
      for (std::size_t w = 0; w < slots_.size(); ++w) {
        if (slots_[w].pid >= 0) {
          fds.push_back({slots_[w].res_fd, POLLIN, 0});
          owners.push_back(w);
        }
      }
      if (fds.empty()) {
        // Nothing alive: wait out the respawn backoff (or detect a wedged
        // harness — commit_ready above would have drained anything left).
        std::this_thread::sleep_for(
            std::chrono::milliseconds(poll_timeout_ms()));
        continue;
      }
      const int rc = ::poll(fds.data(), fds.size(), poll_timeout_ms());
      if (rc < 0) {
        if (errno == EINTR) continue;
        throw RunnerError("SweepRunner " + name_ + ": poll failed");
      }
      for (std::size_t k = 0; k < fds.size(); ++k) {
        if (fds[k].revents & (POLLIN | POLLHUP | POLLERR)) {
          // The slot may have been torn down by an earlier event this round.
          if (slots_[owners[k]].pid >= 0) handle_readable(owners[k]);
        }
      }
    }
  }

  void shutdown_workers(bool force) {
    for (std::size_t w = 0; w < slots_.size(); ++w) {
      WorkerSlot& s = slots_[w];
      if (s.pid < 0) continue;
      if (force || s.busy) {
        ::kill(s.pid, SIGKILL);  // in-flight work is unwanted; don't linger
      }
      ::close(s.req_fd);  // idle workers read EOF and _Exit(0)
      s.req_fd = -1;
    }
    for (WorkerSlot& s : slots_) {
      if (s.pid < 0) continue;
      int status = 0;
      ::waitpid(s.pid, &status, 0);
      if (s.res_fd >= 0) ::close(s.res_fd);
      s.res_fd = -1;
      s.pid = -1;
    }
    for (const WorkerSlot& s : slots_) {
      std::remove(s.crumb_path.c_str());
    }
  }

  std::string name_;
  const RunnerOptions& options_;
  std::size_t n_points_;
  const SweepRunner::PointFn& fn_;
  const SweepRunner::BatchPointFn& batch_fn_;
  std::size_t batch_;
  Committer& committer_;
  RunSummary& summary_;
  double hang_deadline_;
  std::size_t ready_cap_;

  std::vector<WorkerSlot> slots_;
  std::deque<std::size_t> queue_;            // fresh points, in order
  std::set<std::size_t> singleton_;          // crash retries: assign alone
  std::map<std::size_t, PointResult> ready_; // reorder buffer
  std::map<std::size_t, int> crash_count_;   // worker deaths per point
  std::size_t next_commit_ = 0;
  int fork_failures_ = 0;
};

}  // namespace

void run(const std::string& name, const RunnerOptions& options,
         std::size_t n_points, const SweepRunner::PointFn& fn,
         const SweepRunner::BatchPointFn& batch_fn, std::size_t n_workers,
         Committer& committer, RunSummary& summary, bool& stopped) {
  Supervisor sup(name, options, n_points, fn, batch_fn, n_workers, committer,
                 summary);
  stopped = sup.run();
}

#endif  // !_WIN32

}  // namespace nvsram::runner::supervisor
