#include "runner/committer.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "util/log.h"

namespace nvsram::runner {

namespace {

// Commas and newlines would break the one-line-per-failure manifest.
std::string sanitize(std::string text) {
  for (char& c : text) {
    if (c == ',' || c == '\n' || c == '\r') c = ';';
  }
  return text;
}

// The per-attempt backoff delays as a ';'-joined manifest field.
std::string join_backoff(const std::vector<double>& delays_ms) {
  std::string out;
  char buf[32];
  for (std::size_t i = 0; i < delays_ms.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.6g", delays_ms[i]);
    if (i) out += ';';
    out += buf;
  }
  return out;
}

}  // namespace

Committer::Committer(std::string name, const RunnerOptions& options,
                     RunSummary& summary, std::map<std::size_t, Rows> done)
    : name_(std::move(name)),
      options_(options),
      summary_(summary),
      done_(std::move(done)),
      csv_(options.csv_path, options.csv_columns) {}

bool Committer::commit(std::size_t index, PointResult res) {
  // Harness-level contract violation, not a point failure: a malformed
  // row would corrupt the CSV and the checkpoint, so abort the sweep.
  if (res.succeeded) {
    for (const auto& row : res.rows) {
      if (row.size() != options_.csv_columns.size()) {
        harness_error_ = "SweepRunner " + name_ +
                         ": row width mismatch at point " +
                         std::to_string(index);
        return false;
      }
    }
  }
  summary_.outcomes[index] = std::move(res.outcome);
  const PointOutcome& outcome = summary_.outcomes[index];
  if (res.succeeded) {
    summary_.rows[index] = std::move(res.rows);
    for (const auto& row : summary_.rows[index]) csv_.row(row);
    ++summary_.completed;
    done_.emplace(index, summary_.rows[index]);
    if (options_.checkpoint) {
      checkpoint::store(options_.checkpoint_path, name_, options_.csv_columns,
                        done_);
    }
  } else {
    ++summary_.failed;
    if (outcome.status == PointStatus::kTimeout) ++summary_.timeouts;
    if (outcome.status == PointStatus::kPoisoned) ++summary_.poisoned;
    util::log_warn() << "sweep " << name_ << ": point " << index << " "
                     << to_string(outcome.status) << " after "
                     << outcome.attempts << " attempt(s): " << outcome.error;
  }

  // Crash drill: die hard right after the checkpoint hit disk, skipping
  // every destructor (so the CSV is left truncated like a real crash).
  if (static_cast<int>(index) == options_.kill_after_point) {
    std::_Exit(3);
  }
  if (static_cast<int>(index) == options_.stop_after_point) {
    summary_.interrupted = true;
    return false;
  }
  return true;
}

void Committer::commit_resumed(std::size_t index) {
  const auto it = done_.find(index);
  if (it == done_.end()) {
    harness_error_ = "SweepRunner " + name_ + ": point " +
                     std::to_string(index) + " is not in the resume set";
    return;
  }
  PointOutcome& outcome = summary_.outcomes[index];
  outcome.index = index;
  outcome.status = PointStatus::kResumed;
  outcome.attempts = 0;
  summary_.rows[index] = it->second;
  for (const auto& row : it->second) csv_.row(row);
  ++summary_.resumed;
  ++summary_.completed;
}

void Committer::finalize() {
  // Failure manifest: written on every completed run, even when empty, so
  // downstream tooling can rely on its existence.
  std::ofstream manifest(summary_.manifest_path, std::ios::trunc);
  if (!manifest) {
    throw RunnerError("SweepRunner: cannot write " + summary_.manifest_path);
  }
  manifest << "point,status,attempts,backoff_ms,error\n";
  for (const auto& outcome : summary_.outcomes) {
    if (outcome.ok()) continue;
    manifest << outcome.index << ',' << to_string(outcome.status) << ','
             << outcome.attempts << ',' << join_backoff(outcome.backoff_ms)
             << ',' << sanitize(outcome.error) << '\n';
  }
  manifest.close();

  csv_.flush();
  if (options_.checkpoint && summary_.failed == 0) {
    checkpoint::remove(options_.checkpoint_path);
  }
}

}  // namespace nvsram::runner
