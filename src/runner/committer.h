// The sweep's single committer: the one place where computed points become
// CSV rows, checkpoint records, and manifest lines, strictly in point
// order.  Both execution backends — the in-process thread pool
// (sweep_runner.cpp) and the subprocess supervisor (supervisor.cpp) — feed
// this same object, which is what makes their outputs byte-identical by
// construction at any worker count.
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "runner/sweep_runner.h"
#include "util/csv.h"

namespace nvsram::runner {

class Committer {
 public:
  // `summary` outlives the committer and accumulates outcomes/rows/counts;
  // `done` is the resume set loaded from the checkpoint.
  Committer(std::string name, const RunnerOptions& options,
            RunSummary& summary, std::map<std::size_t, Rows> done);

  // True when `index` was already completed by a previous (checkpointed)
  // run and must be replayed via commit_resumed instead of recomputed.
  bool is_resumed(std::size_t index) const {
    return done_.find(index) != done_.end();
  }
  std::size_t resumed_count() const { return done_.size(); }

  // Commits one freshly computed point.  Must be called strictly in point
  // order from a single thread.  Returns false to stop the sweep (harness
  // error — see harness_error() — or the stop drill); the kill drill
  // _Exit(3)s from inside.
  bool commit(std::size_t index, PointResult res);

  // Replays a checkpointed point (no recomputation, no drills — matching
  // the serial-era semantics where resumed points skip the drill checks).
  void commit_resumed(std::size_t index);

  // Writes the failure manifest, flushes the CSV, and removes the
  // checkpoint of a fully successful sweep.  Call once, after the last
  // commit, unless the sweep was interrupted.
  void finalize();

  const std::string& harness_error() const { return harness_error_; }

 private:
  std::string name_;
  const RunnerOptions& options_;
  RunSummary& summary_;
  std::map<std::size_t, Rows> done_;
  util::CsvWriter csv_;
  std::string harness_error_;
};

}  // namespace nvsram::runner
