#include "runner/sweep_runner.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "runner/committer.h"
#include "runner/supervisor.h"
#include "util/breadcrumb.h"
#include "util/log.h"
#include "util/watchdog.h"

namespace nvsram::runner {

namespace {

// ---- strict NVSRAM_SWEEP_* parsing ----
// Every drill variable either parses cleanly inside its sane range or the
// run aborts with a RunnerError naming the variable: a typo in a CI drill
// must never silently degrade into "no drill".

long long parse_env_int(const char* var, const std::string& text,
                        long long lo, long long hi) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') {
    throw RunnerError(std::string(var) + ": expected an integer, got '" +
                      text + "'");
  }
  if (v < lo || v > hi) {
    throw RunnerError(std::string(var) + ": value " + text +
                      " outside [" + std::to_string(lo) + ", " +
                      std::to_string(hi) + "]");
  }
  return v;
}

double parse_env_double(const char* var, const std::string& text, double lo,
                        double hi) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (errno != 0 || end == text.c_str() || *end != '\0') {
    throw RunnerError(std::string(var) + ": expected a number, got '" + text +
                      "'");
  }
  if (!(v >= lo && v <= hi)) {
    throw RunnerError(std::string(var) + ": value " + text + " outside [" +
                      std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
  return v;
}

// Splits an optional "name:" scope off a drill spec.  Returns false when
// the spec is scoped to a different runner (i.e. should be ignored).
bool unscope(const std::string& runner_name, std::string& text) {
  const std::size_t colon = text.find(':');
  if (colon == std::string::npos) return true;
  if (text.substr(0, colon) != runner_name) return false;
  text = text.substr(colon + 1);
  return true;
}

// Parses a fault spec: "K" (throw) or "segv@K" / "oom@K" / "hang@K" /
// "throw@K".
void parse_fault_spec(const char* var, const std::string& spec,
                      FaultKind& kind, int& point) {
  std::string kind_text = "throw";
  std::string index_text = spec;
  const std::size_t at = spec.find('@');
  if (at != std::string::npos) {
    kind_text = spec.substr(0, at);
    index_text = spec.substr(at + 1);
  }
  if (kind_text == "throw") {
    kind = FaultKind::kThrow;
  } else if (kind_text == "segv") {
    kind = FaultKind::kSegv;
  } else if (kind_text == "oom") {
    kind = FaultKind::kOom;
  } else if (kind_text == "hang") {
    kind = FaultKind::kHang;
  } else {
    throw RunnerError(std::string(var) + ": unknown fault kind '" + kind_text +
                      "' (expected throw, segv, oom, or hang)");
  }
  point = static_cast<int>(parse_env_int(var, index_text, 0, 1 << 28));
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Busy-wait keeping the core occupied, so scaling drills measure genuine
// CPU-bound parallelism rather than sleep overlap.
void spin_for_ms(double ms) {
  const auto t0 = std::chrono::steady_clock::now();
  while (seconds_since(t0) * 1e3 < ms) {
  }
}

// SplitMix64: cheap, well-mixed hash for deterministic backoff jitter.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Jitter in [0, 1), a pure function of the seed pair.
double jitter01(std::uint64_t a, std::uint64_t b) {
  return static_cast<double>(mix64(a * 0x100000001B3ull ^ mix64(b)) >> 11) /
         static_cast<double>(1ull << 53);
}

double backoff_schedule(double base_ms, double cap_ms, int step, double jitter) {
  if (base_ms <= 0.0) return 0.0;
  double delay = base_ms;
  for (int i = 0; i < step && delay < cap_ms; ++i) delay *= 2.0;
  if (delay > cap_ms) delay = cap_ms;
  return delay * (1.0 + 0.5 * jitter);
}

// ---- deterministic fault injection (see FaultKind) ----

[[noreturn]] void inject_segv() {
  util::breadcrumb::set_phase("injected-segv");
  volatile int* null_ptr = nullptr;
  *null_ptr = 42;                   // fatal: SIGSEGV (or an ASan report)
  std::abort();                     // unreachable; keeps [[noreturn]] honest
}

[[noreturn]] void inject_oom() {
  util::breadcrumb::set_phase("injected-oom");
  // Allocate-and-touch until the address-space limit bites, then die the
  // way a real noexcept-path allocation failure (or the kernel OOM killer)
  // would.  Run this only under Isolation::kProcess with worker_rlimit_mb
  // set, so the rlimit — not the host — bounds the blow-up.
  std::vector<std::unique_ptr<char[]>> hog;
  try {
    for (;;) {
      constexpr std::size_t kChunk = 16u << 20;
      hog.push_back(std::make_unique<char[]>(kChunk));
      std::memset(hog.back().get(), 0xA5, kChunk);
    }
  } catch (const std::bad_alloc&) {
    std::abort();
  }
}

[[noreturn]] void inject_hang() {
  util::breadcrumb::set_phase("injected-hang");
  // A wedged solve that never consults the cooperative watchdog: only the
  // supervisor's heartbeat deadline can end this.
  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

}  // namespace

const char* to_string(PointStatus status) {
  switch (status) {
    case PointStatus::kOk: return "ok";
    case PointStatus::kRecovered: return "recovered";
    case PointStatus::kResumed: return "resumed";
    case PointStatus::kFailed: return "failed";
    case PointStatus::kTimeout: return "timeout";
    case PointStatus::kPoisoned: return "poison";
  }
  return "?";
}

const char* to_string(Isolation isolation) {
  switch (isolation) {
    case Isolation::kNone: return "none";
    case Isolation::kProcess: return "process";
  }
  return "?";
}

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kThrow: return "throw";
    case FaultKind::kSegv: return "segv";
    case FaultKind::kOom: return "oom";
    case FaultKind::kHang: return "hang";
  }
  return "?";
}

void RunnerOptions::apply_env(const std::string& runner_name) {
  if (const char* v = std::getenv("NVSRAM_SWEEP_CHECKPOINT")) {
    checkpoint = std::string(v) != "0";
  }
  if (const char* v = std::getenv("NVSRAM_SWEEP_TIMEOUT")) {
    point_timeout_sec = parse_env_double("NVSRAM_SWEEP_TIMEOUT", v, 0.0, 1e7);
  }
  if (const char* v = std::getenv("NVSRAM_SWEEP_RETRIES")) {
    max_attempts =
        static_cast<int>(parse_env_int("NVSRAM_SWEEP_RETRIES", v, 1, 1000));
  }
  if (const char* v = std::getenv("NVSRAM_SWEEP_BACKOFF_MS")) {
    retry_backoff_ms =
        parse_env_double("NVSRAM_SWEEP_BACKOFF_MS", v, 0.0, 1e7);
  }
  if (const char* v = std::getenv("NVSRAM_SWEEP_THREADS")) {
    threads =
        static_cast<int>(parse_env_int("NVSRAM_SWEEP_THREADS", v, 0, 4096));
  }
  if (const char* v = std::getenv("NVSRAM_SWEEP_BATCH")) {
    batch = static_cast<int>(parse_env_int("NVSRAM_SWEEP_BATCH", v, 1, 64));
  }
  if (const char* v = std::getenv("NVSRAM_SWEEP_ISOLATION")) {
    const std::string text(v);
    if (text == "none") {
      isolation = Isolation::kNone;
    } else if (text == "process") {
      isolation = Isolation::kProcess;
    } else {
      throw RunnerError("NVSRAM_SWEEP_ISOLATION: expected 'none' or "
                        "'process', got '" + text + "'");
    }
  }
  if (const char* v = std::getenv("NVSRAM_SWEEP_HEARTBEAT")) {
    heartbeat_timeout_sec =
        parse_env_double("NVSRAM_SWEEP_HEARTBEAT", v, 0.0, 1e7);
  }
  if (const char* v = std::getenv("NVSRAM_SWEEP_RLIMIT_MB")) {
    worker_rlimit_mb =
        parse_env_double("NVSRAM_SWEEP_RLIMIT_MB", v, 0.0, 1 << 20);
  }
  if (const char* v = std::getenv("NVSRAM_SWEEP_SPIN_MS")) {
    point_spin_ms = parse_env_double("NVSRAM_SWEEP_SPIN_MS", v, 0.0, 1e7);
  }
  if (const char* v = std::getenv("NVSRAM_SWEEP_FAULT")) {
    std::string text(v);
    if (unscope(runner_name, text)) {
      parse_fault_spec("NVSRAM_SWEEP_FAULT", text, fault_kind, fault_point);
    }
  }
  if (const char* v = std::getenv("NVSRAM_SWEEP_KILL")) {
    std::string text(v);
    if (unscope(runner_name, text)) {
      kill_after_point =
          static_cast<int>(parse_env_int("NVSRAM_SWEEP_KILL", text, 0, 1 << 28));
    }
  }
}

std::string RunSummary::describe() const {
  std::ostringstream os;
  os << "[sweep " << name << ": " << completed << " point"
     << (completed == 1 ? "" : "s") << " completed";
  if (wall_seconds > 0.0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", wall_seconds);
    os << " in " << buf << " s";
  }
  if (process_isolated) {
    os << " on " << threads << " isolated worker"
       << (threads == 1 ? "" : "s");
    if (respawns) os << " (" << respawns << " respawned)";
  } else if (threads > 1) {
    os << " on " << threads << " threads";
  }
  if (batch > 1) os << " (batch " << batch << ")";
  if (resumed) os << " (" << resumed << " resumed from checkpoint)";
  if (failed) {
    os << ", " << failed << " FAILED";
    if (timeouts || poisoned) {
      os << " (";
      if (timeouts) os << timeouts << " timeout";
      if (timeouts && poisoned) os << ", ";
      if (poisoned) os << poisoned << " poisoned";
      os << ")";
    }
    os << " -> " << manifest_path;
  }
  if (interrupted) os << ", INTERRUPTED";
  os << "]";
  return os.str();
}

namespace detail {

double retry_backoff_ms(const RunnerOptions& options, std::size_t point,
                        int attempt) {
  if (attempt < 1) return 0.0;
  return backoff_schedule(options.retry_backoff_ms,
                          options.retry_backoff_cap_ms, attempt - 1,
                          jitter01(point, static_cast<std::uint64_t>(attempt)));
}

double respawn_backoff_ms(const RunnerOptions& options, int slot, int respawn) {
  return backoff_schedule(
      options.respawn_backoff_ms, options.respawn_backoff_cap_ms, respawn,
      jitter01(static_cast<std::uint64_t>(slot) + 0x51AB51AB,
               static_cast<std::uint64_t>(respawn)));
}

PointResult solve_point(const RunnerOptions& options, std::size_t index,
                        int worker, const SweepRunner::PointFn& fn,
                        const std::function<void(double)>& sleep_ms) {
  PointResult res;
  PointOutcome& outcome = res.outcome;
  outcome.index = index;
  const auto t0 = std::chrono::steady_clock::now();
  if (options.point_spin_ms > 0.0) spin_for_ms(options.point_spin_ms);
  for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
    if (attempt > 0) {
      // Exponential backoff with deterministic jitter before every retry;
      // the scheduled (not measured) delay is what lands in the manifest,
      // so the record is reproducible across modes and machines.
      const double delay = retry_backoff_ms(options, index, attempt);
      outcome.backoff_ms.push_back(delay);
      if (delay > 0.0) {
        if (sleep_ms) {
          sleep_ms(delay);
        } else {
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(delay));
        }
      }
    }
    outcome.attempts = attempt + 1;
    util::breadcrumb::set_point(index, attempt);
    try {
      if (static_cast<int>(index) == options.fault_point) {
        switch (options.fault_kind) {
          case FaultKind::kThrow:
            throw std::runtime_error("injected sweep fault (fault_point=" +
                                     std::to_string(index) + ")");
          case FaultKind::kSegv: inject_segv();
          case FaultKind::kOom: inject_oom();
          case FaultKind::kHang: inject_hang();
        }
      }
      PointContext ctx;
      ctx.index = index;
      ctx.attempt = attempt;
      ctx.max_attempts = options.max_attempts;
      ctx.timeout_sec = options.point_timeout_sec;
      ctx.worker = worker;
      res.rows = fn(ctx);
      outcome.status = attempt > 0 ? PointStatus::kRecovered : PointStatus::kOk;
      outcome.error.clear();
      res.succeeded = true;
      break;
    } catch (const util::WatchdogError& e) {
      outcome.status = PointStatus::kTimeout;
      outcome.error = e.what();
      break;  // a timed-out point would time out again: no retry
    } catch (const std::exception& e) {
      outcome.status = PointStatus::kFailed;
      outcome.error = e.what();
    } catch (...) {
      outcome.status = PointStatus::kFailed;
      outcome.error = "non-standard exception";
    }
  }
  outcome.seconds = seconds_since(t0);
  return res;
}

void solve_group(const RunnerOptions& options, std::size_t begin,
                 std::size_t count, int worker, const SweepRunner::PointFn& fn,
                 const SweepRunner::BatchPointFn& batch_fn,
                 const std::function<void(double)>& sleep_ms,
                 const std::function<void(PointResult)>& emit) {
  // A drill point must go through solve_point (that is where the fault
  // injection lives), so any group containing one skips the batched path
  // entirely — per-point execution is the byte-identity reference anyway.
  const bool drill_inside =
      options.fault_point >= 0 &&
      static_cast<std::size_t>(options.fault_point) >= begin &&
      static_cast<std::size_t>(options.fault_point) < begin + count;
  if (batch_fn && count > 1 && !drill_inside) {
    const auto t0 = std::chrono::steady_clock::now();
    if (options.point_spin_ms > 0.0) {
      spin_for_ms(options.point_spin_ms * static_cast<double>(count));
    }
    util::breadcrumb::set_point(begin, 0);
    PointContext ctx;
    ctx.index = begin;
    ctx.attempt = 0;
    ctx.max_attempts = options.max_attempts;
    ctx.timeout_sec = options.point_timeout_sec;
    ctx.worker = worker;
    try {
      std::vector<Rows> rows = batch_fn(ctx, count);
      if (rows.size() == count) {
        const double secs =
            seconds_since(t0) / static_cast<double>(count);
        for (std::size_t i = 0; i < count; ++i) {
          PointResult res;
          res.outcome.index = begin + i;
          res.outcome.status = PointStatus::kOk;
          res.outcome.attempts = 1;
          res.outcome.seconds = secs;
          res.rows = std::move(rows[i]);
          res.succeeded = true;
          emit(std::move(res));
        }
        return;
      }
      util::log_warn() << "sweep batch: batch_fn returned " << rows.size()
                       << " results for a group of " << count
                       << "; falling back to per-point execution";
    } catch (const std::exception&) {
      // Any batched failure — one diverging lane, a watchdog expiry, a
      // harness hiccup — peels the whole group to the per-point loop,
      // which retries, times out, and records each point exactly as a
      // batch = 1 run would.
    } catch (...) {
    }
  }
  for (std::size_t i = 0; i < count; ++i) {
    emit(solve_point(options, begin + i, worker, fn, sleep_ms));
  }
}

}  // namespace detail

SweepRunner::SweepRunner(std::string name, RunnerOptions options)
    : name_(std::move(name)), options_(std::move(options)) {
  if (options_.csv_path.empty() || options_.csv_columns.empty()) {
    throw std::invalid_argument("SweepRunner: csv_path and csv_columns required");
  }
  if (options_.checkpoint_path.empty()) {
    options_.checkpoint_path = options_.csv_path + ".ckpt";
  }
  if (options_.max_attempts < 1) options_.max_attempts = 1;
}

RunSummary SweepRunner::run(std::size_t n_points, const PointFn& fn,
                            const BatchPointFn& batch_fn) {
  const auto run_t0 = std::chrono::steady_clock::now();

  // Fault kinds that kill or wedge their executor are only containable in a
  // worker subprocess; injecting them in-process would turn a drill into a
  // genuine crash of the whole sweep.
  Isolation isolation = options_.isolation;
  if (isolation == Isolation::kProcess && !supervisor::available()) {
    util::log_warn() << "sweep " << name_
                     << ": process isolation unavailable on this platform; "
                        "falling back to the in-process pool";
    isolation = Isolation::kNone;
  }
  if (options_.fault_point >= 0 && options_.fault_kind != FaultKind::kThrow &&
      isolation != Isolation::kProcess) {
    throw RunnerError(std::string("SweepRunner ") + name_ + ": fault kind '" +
                      to_string(options_.fault_kind) +
                      "' requires isolation=process");
  }

  RunSummary summary;
  summary.name = name_;
  summary.csv_path = options_.csv_path;
  summary.manifest_path = options_.csv_path + ".failures.csv";
  summary.outcomes.resize(n_points);
  summary.rows.resize(n_points);
  summary.process_isolated = isolation == Isolation::kProcess;

  std::map<std::size_t, Rows> done;
  if (options_.checkpoint) {
    done = checkpoint::load(options_.checkpoint_path, name_,
                            options_.csv_columns, n_points);
  }

  // Pool size: 0 = auto; always capped by the fresh (non-resumed) points so
  // a fully checkpointed sweep never spins up idle workers.
  std::size_t threads = options_.threads > 0
                            ? static_cast<std::size_t>(options_.threads)
                            : static_cast<std::size_t>(
                                  std::thread::hardware_concurrency());
  if (threads < 1) threads = 1;
  const std::size_t fresh =
      n_points > done.size() ? n_points - done.size() : 0;
  threads = std::min(threads, std::max<std::size_t>(fresh, 1));
  summary.threads = static_cast<int>(threads);
  const std::size_t batch =
      options_.batch > 1 ? static_cast<std::size_t>(options_.batch) : 1;
  summary.batch = static_cast<int>(batch);

  Committer committer(name_, options_, summary, std::move(done));

  bool stopped = false;
  if (isolation == Isolation::kProcess) {
    supervisor::run(name_, options_, n_points, fn, batch_fn, threads,
                    committer, summary, stopped);
  } else if (threads <= 1) {
    for (std::size_t i = 0; i < n_points && !stopped;) {
      if (committer.is_resumed(i)) {
        committer.commit_resumed(i);
        ++i;
        continue;
      }
      // Lane group: the run of consecutive fresh points starting here.
      std::size_t count = 1;
      while (count < batch && i + count < n_points &&
             !committer.is_resumed(i + count)) {
        ++count;
      }
      std::vector<PointResult> results;
      results.reserve(count);
      detail::solve_group(options_, i, count, /*worker=*/0, fn, batch_fn, {},
                          [&](PointResult r) { results.push_back(std::move(r)); });
      for (auto& res : results) {
        const std::size_t index = res.outcome.index;
        if (!committer.commit(index, std::move(res))) {
          // Results past the stop point are discarded uncommitted, exactly
          // as a batch = 1 run would never have computed them.
          stopped = true;
          break;
        }
      }
      i += count;
    }
  } else {
    // Worker pool with an in-order reorder buffer: workers pull fresh point
    // indices from an atomic cursor and park results in `ready`; the calling
    // thread commits them strictly in point order.  Workers pause before
    // starting a new point when the buffer outruns the writer (bounded
    // memory even when point costs vary wildly).
    std::vector<std::size_t> pending;
    pending.reserve(fresh);
    for (std::size_t i = 0; i < n_points; ++i) {
      if (!committer.is_resumed(i)) pending.push_back(i);
    }

    // Lane groups: runs of consecutive pending indices, chunked to the
    // batch width.  Identical formation to the serial and supervised paths,
    // so the batched fast path sees the same groups at any pool size.
    std::vector<std::pair<std::size_t, std::size_t>> groups;  // (begin, count)
    for (std::size_t k = 0; k < pending.size();) {
      std::size_t count = 1;
      while (count < batch && k + count < pending.size() &&
             pending[k + count] == pending[k] + count) {
        ++count;
      }
      groups.emplace_back(pending[k], count);
      k += count;
    }

    std::mutex mu;
    std::condition_variable cv;
    std::map<std::size_t, PointResult> ready;  // guarded by mu
    std::atomic<std::size_t> cursor{0};
    std::atomic<bool> stop{false};
    const std::size_t ready_cap = threads * 4 + 8;

    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t w = 0; w < threads; ++w) {
      pool.emplace_back([&, w] {
        for (;;) {
          {
            std::unique_lock<std::mutex> lock(mu);
            cv.wait(lock, [&] {
              return ready.size() < ready_cap ||
                     stop.load(std::memory_order_relaxed);
            });
          }
          if (stop.load(std::memory_order_relaxed)) return;
          const std::size_t k =
              cursor.fetch_add(1, std::memory_order_relaxed);
          if (k >= groups.size()) return;
          std::vector<PointResult> results;
          results.reserve(groups[k].second);
          detail::solve_group(
              options_, groups[k].first, groups[k].second,
              static_cast<int>(w), fn, batch_fn, {},
              [&](PointResult r) { results.push_back(std::move(r)); });
          {
            std::lock_guard<std::mutex> lock(mu);
            for (auto& res : results) {
              const std::size_t index = res.outcome.index;
              ready.emplace(index, std::move(res));
            }
          }
          cv.notify_all();
        }
      });
    }

    for (std::size_t i = 0; i < n_points && !stopped; ++i) {
      if (committer.is_resumed(i)) {
        committer.commit_resumed(i);
        continue;
      }
      PointResult res;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return ready.find(i) != ready.end(); });
        auto it = ready.find(i);
        res = std::move(it->second);
        ready.erase(it);
      }
      cv.notify_all();  // free a backpressure slot
      if (!committer.commit(i, std::move(res))) stopped = true;
    }

    // Drain: in-flight points finish and are discarded uncommitted, so the
    // checkpoint holds exactly the committed prefix (as a serial run would).
    stop.store(true, std::memory_order_relaxed);
    cv.notify_all();
    for (auto& t : pool) t.join();
  }

  if (!committer.harness_error().empty()) {
    throw RunnerError(committer.harness_error());
  }
  summary.wall_seconds = seconds_since(run_t0);
  if (summary.interrupted) return summary;

  committer.finalize();
  return summary;
}

}  // namespace nvsram::runner
