#include "runner/sweep_runner.h"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/csv.h"
#include "util/log.h"
#include "util/watchdog.h"

namespace nvsram::runner {

namespace {

// Parses "K" or "name:K"; returns -1 when unset or scoped to another runner.
int scoped_index(const char* env, const std::string& runner_name) {
  if (!env || !*env) return -1;
  std::string text(env);
  const std::size_t colon = text.find(':');
  if (colon != std::string::npos) {
    if (text.substr(0, colon) != runner_name) return -1;
    text = text.substr(colon + 1);
  }
  try {
    return std::stoi(text);
  } catch (const std::exception&) {
    return -1;
  }
}

// Commas and newlines would break the one-line-per-failure manifest.
std::string sanitize(std::string text) {
  for (char& c : text) {
    if (c == ',' || c == '\n' || c == '\r') c = ';';
  }
  return text;
}

}  // namespace

const char* to_string(PointStatus status) {
  switch (status) {
    case PointStatus::kOk: return "ok";
    case PointStatus::kRecovered: return "recovered";
    case PointStatus::kResumed: return "resumed";
    case PointStatus::kFailed: return "failed";
    case PointStatus::kTimeout: return "timeout";
  }
  return "?";
}

void RunnerOptions::apply_env(const std::string& runner_name) {
  if (const char* v = std::getenv("NVSRAM_SWEEP_CHECKPOINT")) {
    checkpoint = std::string(v) != "0";
  }
  if (const char* v = std::getenv("NVSRAM_SWEEP_TIMEOUT")) {
    try {
      point_timeout_sec = std::stod(v);
    } catch (const std::exception&) {
    }
  }
  if (const char* v = std::getenv("NVSRAM_SWEEP_RETRIES")) {
    try {
      max_attempts = std::stoi(v);
    } catch (const std::exception&) {
    }
  }
  if (const int k = scoped_index(std::getenv("NVSRAM_SWEEP_FAULT"), runner_name);
      k >= 0) {
    fault_point = k;
  }
  if (const int k = scoped_index(std::getenv("NVSRAM_SWEEP_KILL"), runner_name);
      k >= 0) {
    kill_after_point = k;
  }
}

std::string RunSummary::describe() const {
  std::ostringstream os;
  os << "[sweep " << name << ": " << completed << " point"
     << (completed == 1 ? "" : "s") << " completed";
  if (resumed) os << " (" << resumed << " resumed from checkpoint)";
  if (failed) {
    os << ", " << failed << " FAILED";
    if (timeouts) os << " (" << timeouts << " timeout)";
    os << " -> " << manifest_path;
  }
  if (interrupted) os << ", INTERRUPTED";
  os << "]";
  return os.str();
}

SweepRunner::SweepRunner(std::string name, RunnerOptions options)
    : name_(std::move(name)), options_(std::move(options)) {
  if (options_.csv_path.empty() || options_.csv_columns.empty()) {
    throw std::invalid_argument("SweepRunner: csv_path and csv_columns required");
  }
  if (options_.checkpoint_path.empty()) {
    options_.checkpoint_path = options_.csv_path + ".ckpt";
  }
  if (options_.max_attempts < 1) options_.max_attempts = 1;
}

RunSummary SweepRunner::run(std::size_t n_points, const PointFn& fn) {
  RunSummary summary;
  summary.name = name_;
  summary.csv_path = options_.csv_path;
  summary.manifest_path = options_.csv_path + ".failures.csv";
  summary.outcomes.resize(n_points);
  summary.rows.resize(n_points);

  std::map<std::size_t, Rows> done;
  if (options_.checkpoint) {
    done = checkpoint::load(options_.checkpoint_path, name_,
                            options_.csv_columns, n_points);
  }

  util::CsvWriter csv(options_.csv_path, options_.csv_columns);

  auto emit_rows = [&](const Rows& rows) {
    for (const auto& row : rows) csv.row(row);
  };

  for (std::size_t i = 0; i < n_points; ++i) {
    PointOutcome& outcome = summary.outcomes[i];
    outcome.index = i;

    if (const auto it = done.find(i); it != done.end()) {
      outcome.status = PointStatus::kResumed;
      outcome.attempts = 0;
      summary.rows[i] = it->second;
      emit_rows(it->second);
      ++summary.resumed;
      ++summary.completed;
      continue;
    }

    const auto t0 = std::chrono::steady_clock::now();
    bool succeeded = false;
    for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
      outcome.attempts = attempt + 1;
      try {
        if (static_cast<int>(i) == options_.fault_point) {
          throw std::runtime_error("injected sweep fault (fault_point=" +
                                   std::to_string(i) + ")");
        }
        PointContext ctx;
        ctx.index = i;
        ctx.attempt = attempt;
        ctx.timeout_sec = options_.point_timeout_sec;
        Rows rows = fn(ctx);
        summary.rows[i] = std::move(rows);
        outcome.status =
            attempt > 0 ? PointStatus::kRecovered : PointStatus::kOk;
        outcome.error.clear();
        succeeded = true;
        break;
      } catch (const util::WatchdogError& e) {
        outcome.status = PointStatus::kTimeout;
        outcome.error = e.what();
        break;  // a timed-out point would time out again: no retry
      } catch (const std::exception& e) {
        outcome.status = PointStatus::kFailed;
        outcome.error = e.what();
      }
    }
    outcome.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    // Harness-level contract violation, not a point failure: a malformed
    // row would corrupt the CSV and the checkpoint, so abort the sweep.
    if (succeeded) {
      for (const auto& row : summary.rows[i]) {
        if (row.size() != options_.csv_columns.size()) {
          throw std::runtime_error("SweepRunner " + name_ +
                                   ": row width mismatch at point " +
                                   std::to_string(i));
        }
      }
    }

    if (succeeded) {
      emit_rows(summary.rows[i]);
      ++summary.completed;
      done.emplace(i, summary.rows[i]);
      if (options_.checkpoint) {
        checkpoint::store(options_.checkpoint_path, name_,
                          options_.csv_columns, done);
      }
    } else {
      ++summary.failed;
      if (outcome.status == PointStatus::kTimeout) ++summary.timeouts;
      util::log_warn() << "sweep " << name_ << ": point " << i << " "
                       << to_string(outcome.status) << " after "
                       << outcome.attempts << " attempt(s): " << outcome.error;
    }

    // Crash drill: die hard right after the checkpoint hit disk, skipping
    // every destructor (so the CSV is left truncated like a real crash).
    if (static_cast<int>(i) == options_.kill_after_point) {
      std::_Exit(3);
    }
    if (static_cast<int>(i) == options_.stop_after_point) {
      summary.interrupted = true;
      return summary;
    }
  }

  // Failure manifest: written on every completed run, even when empty, so
  // downstream tooling can rely on its existence.
  {
    std::ofstream manifest(summary.manifest_path, std::ios::trunc);
    if (!manifest) {
      throw std::runtime_error("SweepRunner: cannot write " +
                               summary.manifest_path);
    }
    manifest << "point,status,attempts,error\n";
    for (const auto& outcome : summary.outcomes) {
      if (outcome.ok()) continue;
      manifest << outcome.index << ',' << to_string(outcome.status) << ','
               << outcome.attempts << ',' << sanitize(outcome.error) << '\n';
    }
  }

  csv.flush();
  if (options_.checkpoint && summary.failed == 0) {
    checkpoint::remove(options_.checkpoint_path);
  }
  return summary;
}

}  // namespace nvsram::runner
