#include "runner/sweep_runner.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "util/csv.h"
#include "util/log.h"
#include "util/watchdog.h"

namespace nvsram::runner {

namespace {

// Parses "K" or "name:K"; returns -1 when unset or scoped to another runner.
int scoped_index(const char* env, const std::string& runner_name) {
  if (!env || !*env) return -1;
  std::string text(env);
  const std::size_t colon = text.find(':');
  if (colon != std::string::npos) {
    if (text.substr(0, colon) != runner_name) return -1;
    text = text.substr(colon + 1);
  }
  try {
    return std::stoi(text);
  } catch (const std::exception&) {
    return -1;
  }
}

// Commas and newlines would break the one-line-per-failure manifest.
std::string sanitize(std::string text) {
  for (char& c : text) {
    if (c == ',' || c == '\n' || c == '\r') c = ';';
  }
  return text;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Busy-wait keeping the core occupied, so scaling drills measure genuine
// CPU-bound parallelism rather than sleep overlap.
void spin_for_ms(double ms) {
  const auto t0 = std::chrono::steady_clock::now();
  while (seconds_since(t0) * 1e3 < ms) {
  }
}

}  // namespace

const char* to_string(PointStatus status) {
  switch (status) {
    case PointStatus::kOk: return "ok";
    case PointStatus::kRecovered: return "recovered";
    case PointStatus::kResumed: return "resumed";
    case PointStatus::kFailed: return "failed";
    case PointStatus::kTimeout: return "timeout";
  }
  return "?";
}

void RunnerOptions::apply_env(const std::string& runner_name) {
  if (const char* v = std::getenv("NVSRAM_SWEEP_CHECKPOINT")) {
    checkpoint = std::string(v) != "0";
  }
  if (const char* v = std::getenv("NVSRAM_SWEEP_TIMEOUT")) {
    try {
      point_timeout_sec = std::stod(v);
    } catch (const std::exception&) {
    }
  }
  if (const char* v = std::getenv("NVSRAM_SWEEP_RETRIES")) {
    try {
      max_attempts = std::stoi(v);
    } catch (const std::exception&) {
    }
  }
  if (const char* v = std::getenv("NVSRAM_SWEEP_THREADS")) {
    try {
      threads = std::stoi(v);
    } catch (const std::exception&) {
    }
  }
  if (const char* v = std::getenv("NVSRAM_SWEEP_SPIN_MS")) {
    try {
      point_spin_ms = std::stod(v);
    } catch (const std::exception&) {
    }
  }
  if (const int k = scoped_index(std::getenv("NVSRAM_SWEEP_FAULT"), runner_name);
      k >= 0) {
    fault_point = k;
  }
  if (const int k = scoped_index(std::getenv("NVSRAM_SWEEP_KILL"), runner_name);
      k >= 0) {
    kill_after_point = k;
  }
}

std::string RunSummary::describe() const {
  std::ostringstream os;
  os << "[sweep " << name << ": " << completed << " point"
     << (completed == 1 ? "" : "s") << " completed";
  if (wall_seconds > 0.0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", wall_seconds);
    os << " in " << buf << " s";
  }
  if (threads > 1) os << " on " << threads << " threads";
  if (resumed) os << " (" << resumed << " resumed from checkpoint)";
  if (failed) {
    os << ", " << failed << " FAILED";
    if (timeouts) os << " (" << timeouts << " timeout)";
    os << " -> " << manifest_path;
  }
  if (interrupted) os << ", INTERRUPTED";
  os << "]";
  return os.str();
}

SweepRunner::SweepRunner(std::string name, RunnerOptions options)
    : name_(std::move(name)), options_(std::move(options)) {
  if (options_.csv_path.empty() || options_.csv_columns.empty()) {
    throw std::invalid_argument("SweepRunner: csv_path and csv_columns required");
  }
  if (options_.checkpoint_path.empty()) {
    options_.checkpoint_path = options_.csv_path + ".ckpt";
  }
  if (options_.max_attempts < 1) options_.max_attempts = 1;
}

RunSummary SweepRunner::run(std::size_t n_points, const PointFn& fn) {
  const auto run_t0 = std::chrono::steady_clock::now();

  RunSummary summary;
  summary.name = name_;
  summary.csv_path = options_.csv_path;
  summary.manifest_path = options_.csv_path + ".failures.csv";
  summary.outcomes.resize(n_points);
  summary.rows.resize(n_points);

  std::map<std::size_t, Rows> done;
  if (options_.checkpoint) {
    done = checkpoint::load(options_.checkpoint_path, name_,
                            options_.csv_columns, n_points);
  }

  // Pool size: 0 = auto; always capped by the fresh (non-resumed) points so
  // a fully checkpointed sweep never spins up idle workers.
  std::size_t threads = options_.threads > 0
                            ? static_cast<std::size_t>(options_.threads)
                            : static_cast<std::size_t>(
                                  std::thread::hardware_concurrency());
  if (threads < 1) threads = 1;
  const std::size_t fresh =
      n_points > done.size() ? n_points - done.size() : 0;
  threads = std::min(threads, std::max<std::size_t>(fresh, 1));
  summary.threads = static_cast<int>(threads);

  util::CsvWriter csv(options_.csv_path, options_.csv_columns);

  struct PointResult {
    PointOutcome outcome;
    Rows rows;
    bool succeeded = false;
  };

  // Runs one point's attempt loop.  Safe to call from any worker thread:
  // everything it touches is per-point (the options are read-only).
  auto solve_point = [&](std::size_t i, int worker) -> PointResult {
    PointResult res;
    PointOutcome& outcome = res.outcome;
    outcome.index = i;
    const auto t0 = std::chrono::steady_clock::now();
    if (options_.point_spin_ms > 0.0) spin_for_ms(options_.point_spin_ms);
    for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
      outcome.attempts = attempt + 1;
      try {
        if (static_cast<int>(i) == options_.fault_point) {
          throw std::runtime_error("injected sweep fault (fault_point=" +
                                   std::to_string(i) + ")");
        }
        PointContext ctx;
        ctx.index = i;
        ctx.attempt = attempt;
        ctx.max_attempts = options_.max_attempts;
        ctx.timeout_sec = options_.point_timeout_sec;
        ctx.worker = worker;
        res.rows = fn(ctx);
        outcome.status =
            attempt > 0 ? PointStatus::kRecovered : PointStatus::kOk;
        outcome.error.clear();
        res.succeeded = true;
        break;
      } catch (const util::WatchdogError& e) {
        outcome.status = PointStatus::kTimeout;
        outcome.error = e.what();
        break;  // a timed-out point would time out again: no retry
      } catch (const std::exception& e) {
        outcome.status = PointStatus::kFailed;
        outcome.error = e.what();
      } catch (...) {
        outcome.status = PointStatus::kFailed;
        outcome.error = "non-standard exception";
      }
    }
    outcome.seconds = seconds_since(t0);
    return res;
  };

  // Commits one freshly computed point.  Runs ONLY on the calling thread and
  // strictly in point order — this is what keeps CSV/checkpoint/manifest
  // bytes identical to a serial run.  Returns false to stop the sweep
  // (harness error or the stop drill).
  std::string harness_error;
  auto commit = [&](std::size_t i, PointResult res) -> bool {
    // Harness-level contract violation, not a point failure: a malformed
    // row would corrupt the CSV and the checkpoint, so abort the sweep.
    if (res.succeeded) {
      for (const auto& row : res.rows) {
        if (row.size() != options_.csv_columns.size()) {
          harness_error = "SweepRunner " + name_ +
                          ": row width mismatch at point " + std::to_string(i);
          return false;
        }
      }
    }
    summary.outcomes[i] = std::move(res.outcome);
    const PointOutcome& outcome = summary.outcomes[i];
    if (res.succeeded) {
      summary.rows[i] = std::move(res.rows);
      for (const auto& row : summary.rows[i]) csv.row(row);
      ++summary.completed;
      done.emplace(i, summary.rows[i]);
      if (options_.checkpoint) {
        checkpoint::store(options_.checkpoint_path, name_,
                          options_.csv_columns, done);
      }
    } else {
      ++summary.failed;
      if (outcome.status == PointStatus::kTimeout) ++summary.timeouts;
      util::log_warn() << "sweep " << name_ << ": point " << i << " "
                       << to_string(outcome.status) << " after "
                       << outcome.attempts << " attempt(s): " << outcome.error;
    }

    // Crash drill: die hard right after the checkpoint hit disk, skipping
    // every destructor (so the CSV is left truncated like a real crash).
    if (static_cast<int>(i) == options_.kill_after_point) {
      std::_Exit(3);
    }
    if (static_cast<int>(i) == options_.stop_after_point) {
      summary.interrupted = true;
      return false;
    }
    return true;
  };

  // Emits a checkpointed point (no recomputation, no drills — matching the
  // serial-era semantics where resumed points skip the drill checks).
  auto commit_resumed = [&](std::size_t i, const Rows& rows) {
    PointOutcome& outcome = summary.outcomes[i];
    outcome.index = i;
    outcome.status = PointStatus::kResumed;
    outcome.attempts = 0;
    summary.rows[i] = rows;
    for (const auto& row : rows) csv.row(row);
    ++summary.resumed;
    ++summary.completed;
  };

  bool stopped = false;
  if (threads <= 1) {
    for (std::size_t i = 0; i < n_points && !stopped; ++i) {
      if (const auto it = done.find(i); it != done.end()) {
        commit_resumed(i, it->second);
        continue;
      }
      if (!commit(i, solve_point(i, /*worker=*/0))) stopped = true;
    }
  } else {
    // Worker pool with an in-order reorder buffer: workers pull fresh point
    // indices from an atomic cursor and park results in `ready`; the calling
    // thread commits them strictly in point order.  Workers pause before
    // starting a new point when the buffer outruns the writer (bounded
    // memory even when point costs vary wildly).
    std::vector<std::size_t> pending;
    pending.reserve(fresh);
    for (std::size_t i = 0; i < n_points; ++i) {
      if (done.find(i) == done.end()) pending.push_back(i);
    }

    std::mutex mu;
    std::condition_variable cv;
    std::map<std::size_t, PointResult> ready;  // guarded by mu
    std::atomic<std::size_t> cursor{0};
    std::atomic<bool> stop{false};
    const std::size_t ready_cap = threads * 4 + 8;

    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t w = 0; w < threads; ++w) {
      pool.emplace_back([&, w] {
        for (;;) {
          {
            std::unique_lock<std::mutex> lock(mu);
            cv.wait(lock, [&] {
              return ready.size() < ready_cap ||
                     stop.load(std::memory_order_relaxed);
            });
          }
          if (stop.load(std::memory_order_relaxed)) return;
          const std::size_t k =
              cursor.fetch_add(1, std::memory_order_relaxed);
          if (k >= pending.size()) return;
          PointResult res = solve_point(pending[k], static_cast<int>(w));
          {
            std::lock_guard<std::mutex> lock(mu);
            ready.emplace(pending[k], std::move(res));
          }
          cv.notify_all();
        }
      });
    }

    for (std::size_t i = 0; i < n_points && !stopped; ++i) {
      if (const auto it = done.find(i); it != done.end()) {
        commit_resumed(i, it->second);
        continue;
      }
      PointResult res;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return ready.find(i) != ready.end(); });
        auto it = ready.find(i);
        res = std::move(it->second);
        ready.erase(it);
      }
      cv.notify_all();  // free a backpressure slot
      if (!commit(i, std::move(res))) stopped = true;
    }

    // Drain: in-flight points finish and are discarded uncommitted, so the
    // checkpoint holds exactly the committed prefix (as a serial run would).
    stop.store(true, std::memory_order_relaxed);
    cv.notify_all();
    for (auto& t : pool) t.join();
  }

  if (!harness_error.empty()) throw std::runtime_error(harness_error);
  summary.wall_seconds = seconds_since(run_t0);
  if (summary.interrupted) return summary;

  // Failure manifest: written on every completed run, even when empty, so
  // downstream tooling can rely on its existence.
  {
    std::ofstream manifest(summary.manifest_path, std::ios::trunc);
    if (!manifest) {
      throw std::runtime_error("SweepRunner: cannot write " +
                               summary.manifest_path);
    }
    manifest << "point,status,attempts,error\n";
    for (const auto& outcome : summary.outcomes) {
      if (outcome.ok()) continue;
      manifest << outcome.index << ',' << to_string(outcome.status) << ','
               << outcome.attempts << ',' << sanitize(outcome.error) << '\n';
    }
  }

  csv.flush();
  if (options_.checkpoint && summary.failed == 0) {
    checkpoint::remove(options_.checkpoint_path);
  }
  return summary;
}

}  // namespace nvsram::runner
