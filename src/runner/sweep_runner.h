// Checkpointed, fault-tolerant sweep execution for the bench binaries.
//
// A sweep is an ordered list of points; each point produces zero or more
// CSV rows.  The runner adds the resilience the figure sweeps need at
// scale:
//   * skip-and-record: a point whose callback throws is retried
//     (max_attempts, with the attempt number exposed so callbacks can relax
//     tolerances) and on terminal failure recorded in a failure manifest —
//     the rest of the sweep still completes and the CSV holds every
//     successful point.
//   * wall-clock watchdog: the per-point budget is handed to the callback
//     (wire it into TranOptions::max_wall_seconds); a util::WatchdogError
//     is recorded as a timeout, not a crash.
//   * checkpoint/resume: after every committed point the checkpoint file is
//     atomically rewritten, so an interrupted or crashed sweep resumes from
//     the last committed point and reproduces byte-identical CSV output.
//   * worker pool: independent points fan out over RunnerOptions::threads
//     workers while the calling thread drains completed results through an
//     in-order reorder buffer.  Because commits are strictly sequential in
//     point order, the CSV, the checkpoint, and the failure manifest are
//     byte-identical to a serial run at any pool size, and the kill/resume
//     drills keep working mid-parallel-run (see docs/ROBUSTNESS.md).
//
// Fault/kill hooks (NVSRAM_SWEEP_FAULT / NVSRAM_SWEEP_KILL) let tests and
// CI drill the failure paths on real benches; see RunnerOptions::apply_env.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "runner/checkpoint.h"

namespace nvsram::runner {

struct RunnerOptions {
  // Output CSV (written in point order; truncated and rebuilt on resume).
  std::string csv_path;
  std::vector<std::string> csv_columns;

  // Checkpointing; the default path is csv_path + ".ckpt".  The checkpoint
  // is deleted after a fully successful sweep and kept when any point
  // failed, so a rerun retries only the failed points.
  bool checkpoint = true;
  std::string checkpoint_path;

  // Per-point wall-clock budget in seconds (0 = no watchdog).  Exposed to
  // the callback via PointContext::timeout_sec.
  double point_timeout_sec = 0.0;

  // Attempts per point; attempts > 0 are retries (callbacks should relax
  // tolerances based on PointContext::attempt).  Timeouts are not retried.
  int max_attempts = 2;

  // Worker-pool size: 0 = one worker per hardware thread, 1 = serial
  // in-process execution, N > 1 = fixed pool of N workers.  The pool is
  // capped at the number of points that actually need computing.  The
  // callback must be safe to invoke concurrently from several threads when
  // threads != 1 (per-point circuits / analyses; no shared mutable state).
  int threads = 0;

  // Synthetic per-point busy-work in milliseconds (0 = none).  Lets CI and
  // tests measure the harness's parallel scaling on benches whose real
  // points are too cheap to time (NVSRAM_SWEEP_SPIN_MS).
  double point_spin_ms = 0.0;

  // ---- failure drills (tests / CI smoke) ----
  int fault_point = -1;       // this point index fails on every attempt
  int kill_after_point = -1;  // _Exit(3) right after checkpointing this point
  int stop_after_point = -1;  // graceful in-process stop after this point

  // Merges NVSRAM_SWEEP_* environment overrides:
  //   NVSRAM_SWEEP_CHECKPOINT=0        disable checkpointing
  //   NVSRAM_SWEEP_FAULT=K | name:K    inject a failure at point K
  //   NVSRAM_SWEEP_KILL=K | name:K     simulate a crash after point K
  //   NVSRAM_SWEEP_TIMEOUT=SECONDS     per-point watchdog budget
  //   NVSRAM_SWEEP_RETRIES=N           attempts per point
  //   NVSRAM_SWEEP_THREADS=N           worker-pool size (0 = auto, 1 = serial)
  //   NVSRAM_SWEEP_SPIN_MS=MS          synthetic per-point load (scaling drills)
  // "name:K" scopes the drill to the runner with that name.
  void apply_env(const std::string& runner_name);
};

struct PointContext {
  std::size_t index = 0;
  int attempt = 0;          // 0 on the first try; >0 => relax and retry
  int max_attempts = 1;     // total attempt budget for this point
  double timeout_sec = 0.0; // 0 = unlimited
  int worker = 0;           // worker slot executing this point (0 in serial)
};

enum class PointStatus { kOk, kRecovered, kResumed, kFailed, kTimeout };
const char* to_string(PointStatus status);

struct PointOutcome {
  std::size_t index = 0;
  PointStatus status = PointStatus::kOk;
  int attempts = 1;
  double seconds = 0.0;
  std::string error;

  bool ok() const {
    return status == PointStatus::kOk || status == PointStatus::kRecovered ||
           status == PointStatus::kResumed;
  }
};

struct RunSummary {
  std::string name;
  std::vector<PointOutcome> outcomes;  // one per point, in order
  std::vector<Rows> rows;              // CSV rows per point (empty if failed)
  std::string csv_path;
  std::string manifest_path;
  std::size_t completed = 0;
  std::size_t resumed = 0;
  std::size_t failed = 0;   // terminal failures, incl. timeouts
  std::size_t timeouts = 0;
  bool interrupted = false;  // stop_after_point fired
  int threads = 1;           // worker-pool size actually used
  double wall_seconds = 0.0; // wall-clock time of the whole sweep

  bool all_ok() const { return failed == 0 && !interrupted; }
  bool point_ok(std::size_t index) const {
    return index < outcomes.size() && outcomes[index].ok();
  }
  // One-line account for bench stdout.
  std::string describe() const;
};

class SweepRunner {
 public:
  // The callback computes one sweep point and returns its CSV rows (each
  // row csv_columns.size() wide).  Throw to report failure.  With
  // threads != 1 the callback runs concurrently on worker threads and must
  // only touch per-point state (results are still committed in order).
  using PointFn = std::function<Rows(const PointContext&)>;

  SweepRunner(std::string name, RunnerOptions options);

  const std::string& name() const { return name_; }
  const RunnerOptions& options() const { return options_; }

  // Runs points 0..n_points-1; results are committed (CSV, checkpoint,
  // manifest accounting) strictly in point order regardless of the pool
  // size.  Never throws for per-point failures (they are recorded); throws
  // std::runtime_error only for harness-level problems (unwritable
  // CSV/checkpoint, bad row widths).
  RunSummary run(std::size_t n_points, const PointFn& fn);

 private:
  std::string name_;
  RunnerOptions options_;
};

}  // namespace nvsram::runner
