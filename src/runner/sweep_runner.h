// Checkpointed, fault-tolerant sweep execution for the bench binaries.
//
// A sweep is an ordered list of points; each point produces zero or more
// CSV rows.  The runner adds the resilience the figure sweeps need at
// scale:
//   * skip-and-record: a point whose callback throws is retried
//     (max_attempts, with exponential backoff + deterministic jitter seeded
//     from the point index, and the attempt number exposed so callbacks can
//     relax tolerances) and on terminal failure recorded in a failure
//     manifest — the rest of the sweep still completes and the CSV holds
//     every successful point.
//   * wall-clock watchdog: the per-point budget is handed to the callback
//     (wire it into TranOptions::max_wall_seconds); a util::WatchdogError
//     is recorded as a timeout, not a crash.
//   * checkpoint/resume: after every committed point the checkpoint file is
//     atomically rewritten (with per-row CRCs — a corrupted tail rewinds to
//     the last valid prefix), so an interrupted or crashed sweep resumes
//     from the last committed point and reproduces byte-identical CSV
//     output.
//   * worker pool: independent points fan out over RunnerOptions::threads
//     workers while the calling thread drains completed results through an
//     in-order reorder buffer.  Because commits are strictly sequential in
//     point order, the CSV, the checkpoint, and the failure manifest are
//     byte-identical to a serial run at any pool size, and the kill/resume
//     drills keep working mid-parallel-run (see docs/ROBUSTNESS.md).
//   * process isolation (Isolation::kProcess): the pool members become
//     supervised worker subprocesses (runner/supervisor.h) talking over a
//     pipe-based frame protocol (runner/ipc.h).  A point that segfaults,
//     aborts, exhausts its RLIMIT_AS, or hard-hangs kills only its worker:
//     the supervisor records the worker's last breadcrumb, respawns it with
//     exponential backoff, retries the point once, and quarantines it as
//     `poison` if it kills a second worker — the sweep always completes.
//     Output stays byte-identical to the in-process pool at any worker
//     count (same single committer).  Falls back to the in-process pool on
//     platforms without fork().
//
// Fault/kill hooks (NVSRAM_SWEEP_FAULT / NVSRAM_SWEEP_KILL) let tests and
// CI drill the failure paths on real benches; see RunnerOptions::apply_env.
#pragma once

#include <cstddef>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "runner/checkpoint.h"

namespace nvsram::runner {

// Harness-level configuration error (unwritable output, malformed
// NVSRAM_SWEEP_* value, fault kind that needs process isolation, ...) —
// distinct from per-point failures, which never throw.
class RunnerError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// How sweep points execute: in-process worker threads, or supervised
// worker subprocesses with crash containment.
enum class Isolation { kNone, kProcess };
const char* to_string(Isolation isolation);

// What NVSRAM_SWEEP_FAULT / RunnerOptions::fault_point injects at the
// chosen point.  kThrow is containable in-process; the other three kill or
// wedge the executing worker and therefore require Isolation::kProcess
// (run() rejects them otherwise — an in-process segfault would take the
// whole sweep down, which is exactly what the drill must prove cannot
// happen in isolation mode).
enum class FaultKind {
  kThrow,  // throw std::runtime_error on every attempt ("K")
  kSegv,   // write through a null pointer ("segv@K")
  kOom,    // allocate until bad_alloc, then abort ("oom@K"; bound it with
           // worker_rlimit_mb so the drill hits the rlimit, not the host)
  kHang,   // sleep forever, ignoring the cooperative watchdog ("hang@K")
};
const char* to_string(FaultKind kind);

struct RunnerOptions {
  // Output CSV (written in point order; truncated and rebuilt on resume).
  std::string csv_path;
  std::vector<std::string> csv_columns;

  // Checkpointing; the default path is csv_path + ".ckpt".  The checkpoint
  // is deleted after a fully successful sweep and kept when any point
  // failed, so a rerun retries only the failed points.
  bool checkpoint = true;
  std::string checkpoint_path;

  // Per-point wall-clock budget in seconds (0 = no watchdog).  Exposed to
  // the callback via PointContext::timeout_sec.
  double point_timeout_sec = 0.0;

  // Attempts per point; attempts > 0 are retries (callbacks should relax
  // tolerances based on PointContext::attempt).  Timeouts are not retried.
  int max_attempts = 2;

  // Retry backoff: before retry attempt a (1-based) the worker waits
  //   min(retry_backoff_ms * 2^(a-1), retry_backoff_cap_ms) * (1 + j/2)
  // where j in [0,1) is deterministic jitter seeded from (point index,
  // attempt) — so the schedule, which is recorded per-attempt in the
  // failure manifest, is identical across reruns, thread counts, and
  // isolation modes.  0 disables backoff (immediate retry).
  double retry_backoff_ms = 25.0;
  double retry_backoff_cap_ms = 2000.0;

  // Worker-pool size: 0 = one worker per hardware thread, 1 = serial
  // in-process execution (or a single worker subprocess under
  // Isolation::kProcess), N > 1 = fixed pool of N workers.  The pool is
  // capped at the number of points that actually need computing.  The
  // callback must be safe to invoke concurrently from several threads when
  // threads != 1 (per-point circuits / analyses; no shared mutable state).
  int threads = 0;

  // Execution mode; see Isolation.  Under kProcess the callback runs in
  // forked children: per-point side effects on parent memory are invisible
  // to the committer (results travel back over the pipe), which the sweep
  // callbacks already guarantee for thread-safety.
  Isolation isolation = Isolation::kNone;

  // Lane-group width for the batched solve path (NVSRAM_SWEEP_BATCH).
  // Groups of up to `batch` adjacent fresh points are handed to the sweep's
  // BatchPointFn (when one is supplied to run()) so it can carry them in
  // lockstep through spice::BatchedNewton; every worker backend forms the
  // same groups from consecutive pending indices.  Points the batched path
  // cannot take — drill points, group remainders, points whose batch
  // attempt failed — peel off to the per-point attempt loop, so the CSV,
  // checkpoint, and failure manifest stay byte-identical to batch = 1 (the
  // batched solver is bit-identical to the scalar one by contract; see
  // src/spice/newton.h).  1 disables grouping.
  int batch = 1;

  // Process-isolation tuning (ignored under Isolation::kNone):
  //   * heartbeat_timeout_sec: a worker silent this long while holding an
  //     in-flight point is presumed hung and SIGKILLed.  0 derives the
  //     deadline from the cooperative watchdog budget (point_timeout_sec,
  //     the same number wired into TranOptions::max_wall_seconds) with
  //     generous margin; with neither set, hang containment is off.
  //   * worker_rlimit_mb: RLIMIT_AS for each worker in MiB (0 = inherit),
  //     so one point's allocation blow-up becomes a recorded bad_alloc
  //     failure — or at worst a contained worker death — not a host OOM.
  //     Incompatible with AddressSanitizer (shadow memory needs the
  //     address space); leave 0 under ASan.
  //   * respawn_backoff_ms / respawn_backoff_cap_ms: exponential backoff
  //     (plus deterministic jitter seeded from the worker slot and respawn
  //     count) between a worker's death and its replacement, so a
  //     crash-looping environment cannot melt into a fork storm.
  double heartbeat_timeout_sec = 0.0;
  double worker_rlimit_mb = 0.0;
  double respawn_backoff_ms = 50.0;
  double respawn_backoff_cap_ms = 2000.0;

  // Synthetic per-point busy-work in milliseconds (0 = none).  Lets CI and
  // tests measure the harness's parallel scaling on benches whose real
  // points are too cheap to time (NVSRAM_SWEEP_SPIN_MS).
  double point_spin_ms = 0.0;

  // ---- failure drills (tests / CI smoke) ----
  int fault_point = -1;       // this point index hits fault_kind on every attempt
  FaultKind fault_kind = FaultKind::kThrow;
  int kill_after_point = -1;  // _Exit(3) right after checkpointing this point
  int stop_after_point = -1;  // graceful in-process stop after this point

  // Merges NVSRAM_SWEEP_* environment overrides:
  //   NVSRAM_SWEEP_CHECKPOINT=0        disable checkpointing
  //   NVSRAM_SWEEP_FAULT=SPEC | name:SPEC   inject a failure; SPEC is K
  //                                    (throw) or segv@K / oom@K / hang@K
  //   NVSRAM_SWEEP_KILL=K | name:K     simulate a crash after point K
  //   NVSRAM_SWEEP_TIMEOUT=SECONDS     per-point watchdog budget
  //   NVSRAM_SWEEP_RETRIES=N           attempts per point
  //   NVSRAM_SWEEP_BACKOFF_MS=MS       retry backoff base (0 = immediate)
  //   NVSRAM_SWEEP_THREADS=N           worker-pool size (0 = auto, 1 = serial)
  //   NVSRAM_SWEEP_BATCH=K             lane-group width (1 = no batching)
  //   NVSRAM_SWEEP_ISOLATION=none|process   execution mode
  //   NVSRAM_SWEEP_HEARTBEAT=SECONDS   hang-containment deadline override
  //   NVSRAM_SWEEP_RLIMIT_MB=MB        per-worker RLIMIT_AS
  //   NVSRAM_SWEEP_SPIN_MS=MS          synthetic per-point load (scaling drills)
  // "name:K" scopes the drill to the runner with that name.  A value that
  // does not parse, or parses outside its sane range, throws RunnerError
  // naming the offending variable — drills must never silently degrade to
  // a default.
  void apply_env(const std::string& runner_name);
};

struct PointContext {
  std::size_t index = 0;
  int attempt = 0;          // 0 on the first try; >0 => relax and retry
  int max_attempts = 1;     // total attempt budget for this point
  double timeout_sec = 0.0; // 0 = unlimited
  int worker = 0;           // worker slot executing this point (0 in serial)
};

enum class PointStatus {
  kOk,
  kRecovered,
  kResumed,
  kFailed,
  kTimeout,
  kPoisoned,  // killed its worker subprocess twice; quarantined
};
const char* to_string(PointStatus status);

struct PointOutcome {
  std::size_t index = 0;
  PointStatus status = PointStatus::kOk;
  int attempts = 1;
  double seconds = 0.0;
  // Scheduled backoff delay before each retry attempt, in ms (empty when
  // the point succeeded first try).  Deterministic — see retry_backoff_ms.
  std::vector<double> backoff_ms;
  std::string error;

  bool ok() const {
    return status == PointStatus::kOk || status == PointStatus::kRecovered ||
           status == PointStatus::kResumed;
  }
};

// One computed point in transit between a worker and the committer.
struct PointResult {
  PointOutcome outcome;
  Rows rows;
  bool succeeded = false;
};

struct RunSummary {
  std::string name;
  std::vector<PointOutcome> outcomes;  // one per point, in order
  std::vector<Rows> rows;              // CSV rows per point (empty if failed)
  std::string csv_path;
  std::string manifest_path;
  std::size_t completed = 0;
  std::size_t resumed = 0;
  std::size_t failed = 0;   // terminal failures, incl. timeouts + poisoned
  std::size_t timeouts = 0;
  std::size_t poisoned = 0; // points quarantined after killing two workers
  bool interrupted = false;  // stop_after_point fired
  int threads = 1;           // worker-pool size actually used
  int batch = 1;             // lane-group width actually used
  bool process_isolated = false;  // workers were subprocesses
  int respawns = 0;          // worker subprocesses respawned after death
  double wall_seconds = 0.0; // wall-clock time of the whole sweep

  bool all_ok() const { return failed == 0 && !interrupted; }
  bool point_ok(std::size_t index) const {
    return index < outcomes.size() && outcomes[index].ok();
  }
  // One-line account for bench stdout.
  std::string describe() const;
};

class SweepRunner {
 public:
  // The callback computes one sweep point and returns its CSV rows (each
  // row csv_columns.size() wide).  Throw to report failure.  With
  // threads != 1 the callback runs concurrently on worker threads and must
  // only touch per-point state (results are still committed in order).
  using PointFn = std::function<Rows(const PointContext&)>;

  // Batched counterpart: computes `count` adjacent points starting at
  // first.index in one call (first.attempt is always 0) and returns one
  // Rows per point, in index order.  The contract that makes
  // RunnerOptions::batch output-invariant: for every point the returned
  // rows must be bit-identical to what PointFn would produce, and the
  // callback must throw if ANY point in the group fails — the whole group
  // then re-runs through the per-point attempt loop, which is the
  // reference path.  Sweeps built on spice::BatchedNewton /
  // spice::solve_dc_lanes satisfy this for free.
  using BatchPointFn =
      std::function<std::vector<Rows>(const PointContext& first,
                                      std::size_t count)>;

  SweepRunner(std::string name, RunnerOptions options);

  const std::string& name() const { return name_; }
  const RunnerOptions& options() const { return options_; }

  // Runs points 0..n_points-1; results are committed (CSV, checkpoint,
  // manifest accounting) strictly in point order regardless of the pool
  // size or isolation mode.  Never throws for per-point failures (they are
  // recorded); throws RunnerError / std::runtime_error only for
  // harness-level problems (unwritable CSV/checkpoint, bad row widths,
  // fault kinds that need isolation).  When `batch_fn` is supplied and
  // options().batch > 1, groups of adjacent fresh points go through it
  // first (see BatchPointFn); without one, batch > 1 still forms groups
  // but every point runs the per-point loop.
  RunSummary run(std::size_t n_points, const PointFn& fn,
                 const BatchPointFn& batch_fn = {});

 private:
  std::string name_;
  RunnerOptions options_;
};

namespace detail {

// Scheduled delay before retry attempt `attempt` (1-based) of `point`:
// exponential in the attempt with deterministic jitter seeded from
// (point, attempt).  Pure function of its arguments — recorded delays are
// reproducible across modes and reruns.
double retry_backoff_ms(const RunnerOptions& options, std::size_t point,
                        int attempt);

// Scheduled delay before respawning worker `slot` for the `respawn`-th
// time (0-based): exponential with deterministic jitter from (slot,
// respawn).
double respawn_backoff_ms(const RunnerOptions& options, int slot, int respawn);

// Runs one point's attempt loop (fault injection, retries with backoff,
// watchdog mapping).  Safe to call from any worker thread or subprocess:
// everything it touches is per-point.  `sleep_ms` performs the backoff
// waits; the default sleeps the calling thread (workers substitute a
// heartbeat-emitting sleeper).
PointResult solve_point(const RunnerOptions& options, std::size_t index,
                        int worker, const SweepRunner::PointFn& fn,
                        const std::function<void(double)>& sleep_ms = {});

// Runs the group of `count` adjacent points starting at `begin`, emitting
// one PointResult per point in index order.  A group of 2+ points with a
// batch_fn and no drill point inside tries the batched path once; on any
// batch failure (throw, wrong result count) every point of the group falls
// back to solve_point, so the emitted outcomes — statuses, attempt counts,
// backoff schedules, rows — are exactly what batch = 1 would produce.
// `emit` is called as each result becomes final (workers stream them over
// the pipe so crash attribution stays per-point).
void solve_group(const RunnerOptions& options, std::size_t begin,
                 std::size_t count, int worker, const SweepRunner::PointFn& fn,
                 const SweepRunner::BatchPointFn& batch_fn,
                 const std::function<void(double)>& sleep_ms,
                 const std::function<void(PointResult)>& emit);

}  // namespace detail

}  // namespace nvsram::runner
