// Pipe-based frame protocol between the sweep supervisor and its worker
// subprocesses (runner/supervisor.h).
//
// Wire format, little-endian, per frame:
//   u32  payload length
//   u8   frame type
//   ...  payload
//
// Frame types and payloads:
//   REQUEST    supervisor -> worker: u64 begin index + u64 count — a group
//              of `count` adjacent points starting at `begin` (count is 1
//              unless RunnerOptions::batch > 1).  The worker computes the
//              group (batched fast path or the per-point attempt loop) and
//              answers with one RESULT per point, in ascending index order.
//   RESULT     worker -> supervisor: a serialized PointResult.  Doubles
//              travel as raw IEEE-754 bits, so the committed CSV is
//              bit-identical to an in-process run.
//   HEARTBEAT  worker -> supervisor, empty payload: liveness.  Sent on
//              startup, after every RESULT, and between attempts / during
//              backoff sleeps.  A worker holding an in-flight point that
//              stays silent past the hang deadline is presumed wedged and
//              SIGKILLed.
//   CRASH      worker -> supervisor: the breadcrumb text line
//              ("point=<i> attempt=<a> phase=<step>"), written by the
//              fatal-signal handler (util/breadcrumb.h) right before the
//              signal is re-raised.  The frame type value must stay 4 —
//              the breadcrumb module hard-codes it to avoid a util ->
//              runner dependency.
//
// Shutdown is pipe closure: a worker whose request pipe reaches EOF exits
// cleanly.  A truncated or garbled frame (e.g. a signal landing mid-write)
// reads as kError and the supervisor treats the worker as crashed — the
// protocol never trusts a partially received frame.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "runner/sweep_runner.h"

namespace nvsram::runner::ipc {

enum class FrameType : std::uint8_t {
  kRequest = 1,
  kResult = 2,
  kHeartbeat = 3,
  kCrash = 4,  // hard-coded in util/breadcrumb.cpp; do not renumber
};

struct Frame {
  FrameType type = FrameType::kHeartbeat;
  std::vector<std::uint8_t> payload;
};

enum class ReadStatus { kFrame, kEof, kError };

// Writes one frame, retrying on EINTR / short writes.  Returns false when
// the peer is gone (EPIPE) or the fd errors out.
bool write_frame(int fd, FrameType type, const void* payload, std::size_t n);
inline bool write_frame(int fd, FrameType type) {
  return write_frame(fd, type, nullptr, 0);
}

// Blocking read of one complete frame.  kEof only at a clean frame
// boundary; EOF or garbage mid-frame is kError.  Payloads are capped at
// 256 MiB as a sanity bound against a corrupted length word.
ReadStatus read_frame(int fd, Frame& out);

// ---- payload codecs ----

std::vector<std::uint8_t> encode_request(std::uint64_t begin,
                                         std::uint64_t count);
// Returns false when the payload is malformed (wrong size or count == 0).
bool decode_request(const std::vector<std::uint8_t>& payload,
                    std::uint64_t& begin, std::uint64_t& count);

std::vector<std::uint8_t> encode_result(const PointResult& res);
bool decode_result(const std::vector<std::uint8_t>& payload, PointResult& res);

inline std::string payload_text(const Frame& f) {
  return std::string(f.payload.begin(), f.payload.end());
}

}  // namespace nvsram::runner::ipc
