#include "runner/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace nvsram::runner::checkpoint {

namespace {

constexpr const char* kMagic = "nvsram-sweep-checkpoint v1";

std::string join_columns(const std::vector<std::string>& columns) {
  std::string out;
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) out += ',';
    out += columns[i];
  }
  return out;
}

}  // namespace

std::map<std::size_t, Rows> load(const std::string& path,
                                 const std::string& name,
                                 const std::vector<std::string>& columns,
                                 std::size_t n_points) {
  std::map<std::size_t, Rows> done;
  std::ifstream in(path);
  if (!in) return done;

  std::string line;
  if (!std::getline(in, line) || line != kMagic) return done;
  if (!std::getline(in, line) || line != "name=" + name) return done;
  if (!std::getline(in, line) || line != "columns=" + join_columns(columns)) {
    return done;
  }

  while (std::getline(in, line)) {
    if (line == "end") break;
    std::size_t index = 0, n_rows = 0;
    if (std::sscanf(line.c_str(), "point=%zu rows=%zu", &index, &n_rows) != 2) {
      return done;  // truncated / corrupt record: keep what parsed cleanly
    }
    Rows rows;
    rows.reserve(n_rows);
    bool ok = true;
    for (std::size_t r = 0; r < n_rows && ok; ++r) {
      if (!std::getline(in, line)) {
        ok = false;
        break;
      }
      std::istringstream is(line);
      std::vector<double> row;
      double v = 0.0;
      while (is >> v) row.push_back(v);
      if (row.size() != columns.size()) ok = false;
      rows.push_back(std::move(row));
    }
    if (!ok) return done;  // partial trailing record from an interrupted write
    if (index < n_points) done.emplace(index, std::move(rows));
  }
  return done;
}

void store(const std::string& path, const std::string& name,
           const std::vector<std::string>& columns,
           const std::map<std::size_t, Rows>& done) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      throw std::runtime_error("checkpoint: cannot write " + tmp);
    }
    out << kMagic << '\n'
        << "name=" << name << '\n'
        << "columns=" << join_columns(columns) << '\n';
    char buf[64];
    for (const auto& [index, rows] : done) {
      out << "point=" << index << " rows=" << rows.size() << '\n';
      for (const auto& row : rows) {
        for (std::size_t i = 0; i < row.size(); ++i) {
          std::snprintf(buf, sizeof(buf), "%.17g", row[i]);
          if (i) out << ' ';
          out << buf;
        }
        out << '\n';
      }
    }
    out << "end\n";
    out.flush();
    if (!out) {
      throw std::runtime_error("checkpoint: write failed for " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("checkpoint: rename to " + path + " failed");
  }
}

void remove(const std::string& path) { std::remove(path.c_str()); }

}  // namespace nvsram::runner::checkpoint
