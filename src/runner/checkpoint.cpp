#include "runner/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/crc32.h"
#include "util/log.h"

namespace nvsram::runner::checkpoint {

namespace {

constexpr const char* kMagicV1 = "nvsram-sweep-checkpoint v1";
constexpr const char* kMagicV2 = "nvsram-sweep-checkpoint v2";

std::string join_columns(const std::vector<std::string>& columns) {
  std::string out;
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) out += ',';
    out += columns[i];
  }
  return out;
}

// Formats one row's value text (shared by store and the CRC check so the
// checksummed bytes are exactly the bytes written).
std::string format_row(const std::vector<double>& row) {
  std::string text;
  char buf[64];
  for (std::size_t i = 0; i < row.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.17g", row[i]);
    if (i) text += ' ';
    text += buf;
  }
  return text;
}

}  // namespace

std::map<std::size_t, Rows> load(const std::string& path,
                                 const std::string& name,
                                 const std::vector<std::string>& columns,
                                 std::size_t n_points) {
  std::map<std::size_t, Rows> done;
  std::ifstream in(path);
  if (!in) return done;

  std::string line;
  if (!std::getline(in, line)) return done;
  const bool v2 = line == kMagicV2;
  if (!v2 && line != kMagicV1) return done;
  if (!std::getline(in, line) || line != "name=" + name) return done;
  if (!std::getline(in, line) || line != "columns=" + join_columns(columns)) {
    return done;
  }

  // Every exit below this point returns the records that verified cleanly:
  // a damaged tail rewinds, it does not invalidate the whole file.
  auto rewind = [&](const std::string& why) {
    util::log_warn() << "checkpoint " << path << ": " << why
                     << "; resuming from the last valid prefix (" << done.size()
                     << " point" << (done.size() == 1 ? "" : "s") << ")";
    return done;
  };

  while (std::getline(in, line)) {
    if (line == "end") break;
    std::size_t index = 0, n_rows = 0;
    if (std::sscanf(line.c_str(), "point=%zu rows=%zu", &index, &n_rows) != 2) {
      return rewind("malformed record header '" + line + "'");
    }
    Rows rows;
    rows.reserve(n_rows);
    for (std::size_t r = 0; r < n_rows; ++r) {
      if (!std::getline(in, line)) {
        return rewind("truncated mid-record at point " + std::to_string(index));
      }
      std::string values = line;
      if (v2) {
        const std::size_t star = line.rfind(" *");
        unsigned long crc = 0;
        if (star == std::string::npos ||
            std::sscanf(line.c_str() + star + 2, "%lx", &crc) != 1) {
          return rewind("missing row CRC at point " + std::to_string(index));
        }
        values = line.substr(0, star);
        if (static_cast<std::uint32_t>(crc) != util::crc32(values)) {
          return rewind("row CRC mismatch at point " + std::to_string(index));
        }
      }
      std::istringstream is(values);
      std::vector<double> row;
      double v = 0.0;
      while (is >> v) row.push_back(v);
      if (row.size() != columns.size() || !is.eof()) {
        return rewind("garbled row at point " + std::to_string(index));
      }
      rows.push_back(std::move(row));
    }
    if (index < n_points) done.emplace(index, std::move(rows));
  }
  return done;
}

void store(const std::string& path, const std::string& name,
           const std::vector<std::string>& columns,
           const std::map<std::size_t, Rows>& done) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      throw std::runtime_error("checkpoint: cannot write " + tmp);
    }
    out << kMagicV2 << '\n'
        << "name=" << name << '\n'
        << "columns=" << join_columns(columns) << '\n';
    char crc_buf[16];
    for (const auto& [index, rows] : done) {
      out << "point=" << index << " rows=" << rows.size() << '\n';
      for (const auto& row : rows) {
        const std::string text = format_row(row);
        std::snprintf(crc_buf, sizeof(crc_buf), "%08x", util::crc32(text));
        out << text << " *" << crc_buf << '\n';
      }
    }
    out << "end\n";
    out.flush();
    if (!out) {
      throw std::runtime_error("checkpoint: write failed for " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("checkpoint: rename to " + path + " failed");
  }
}

void remove(const std::string& path) { std::remove(path.c_str()); }

}  // namespace nvsram::runner::checkpoint
