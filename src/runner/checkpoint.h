// Sweep checkpoint file: the completed points of a sweep with their CSV row
// values, rewritten atomically (tmp + rename) after every completed point.
//
// Format (text, line-based):
//   nvsram-sweep-checkpoint v1
//   name=<runner name>
//   columns=<c1,c2,...>
//   point=<index> rows=<k>
//   <v1> <v2> ...            (k lines, values in %.17g round-trip precision)
//   ...
//   end
//
// A checkpoint whose name or column list does not match the running sweep
// is stale and ignored.  Values round-trip exactly through %.17g, so a
// resumed sweep reproduces byte-identical CSV output.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace nvsram::runner {

using Rows = std::vector<std::vector<double>>;

namespace checkpoint {

// Loads the completed points of `path`.  Returns an empty map when the file
// is absent, stale (name/columns mismatch), truncated mid-record, or holds
// indices >= n_points.
std::map<std::size_t, Rows> load(const std::string& path,
                                 const std::string& name,
                                 const std::vector<std::string>& columns,
                                 std::size_t n_points);

// Atomically replaces `path` with the given completed set.
// Throws std::runtime_error when the file cannot be written.
void store(const std::string& path, const std::string& name,
           const std::vector<std::string>& columns,
           const std::map<std::size_t, Rows>& done);

// Deletes the checkpoint file if present.
void remove(const std::string& path);

}  // namespace checkpoint
}  // namespace nvsram::runner
