// Sweep checkpoint file: the completed points of a sweep with their CSV row
// values, rewritten atomically (tmp + rename) after every completed point.
//
// Format v2 (text, line-based):
//   nvsram-sweep-checkpoint v2
//   name=<runner name>
//   columns=<c1,c2,...>
//   point=<index> rows=<k>
//   <v1> <v2> ... *<crc32 hex>   (k lines, values in %.17g round-trip
//                                 precision; CRC-32 of the value text)
//   ...
//   end
//
// The per-row CRC makes corruption detectable, not just truncation: on
// load, a garbled or torn tail (bad CRC, short record, malformed header
// line) rewinds the resume set to the last record that verified cleanly
// and logs a warning — the damaged points are simply recomputed.  v1 files
// (no CRC suffix) still load, so checkpoints written before the format
// bump resume unchanged.
//
// A checkpoint whose name or column list does not match the running sweep
// is stale and ignored.  Values round-trip exactly through %.17g, so a
// resumed sweep reproduces byte-identical CSV output.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace nvsram::runner {

using Rows = std::vector<std::vector<double>>;

namespace checkpoint {

// Loads the completed points of `path`.  Returns an empty map when the file
// is absent or stale (name/columns mismatch); returns the longest valid
// prefix (with a logged warning) when the tail is truncated, garbled, or
// fails its CRC; drops indices >= n_points.
std::map<std::size_t, Rows> load(const std::string& path,
                                 const std::string& name,
                                 const std::vector<std::string>& columns,
                                 std::size_t n_points);

// Atomically replaces `path` with the given completed set (format v2).
// Throws std::runtime_error when the file cannot be written.
void store(const std::string& path, const std::string& name,
           const std::vector<std::string>& columns,
           const std::map<std::size_t, Rows>& done);

// Deletes the checkpoint file if present.
void remove(const std::string& path);

}  // namespace checkpoint
}  // namespace nvsram::runner
