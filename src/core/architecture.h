// The three power-management architectures the paper compares.
#pragma once

namespace nvsram::core {

enum class Architecture {
  kOSR,   // ordinary volatile 6T-SRAM; long idle spent in low-voltage sleep
  kNVPG,  // nonvolatile power-gating: store to MTJs only for long shutdowns
  kNOF,   // normally-off: power off around every access, store on writes
};

const char* to_string(Architecture a);

}  // namespace nvsram::core
