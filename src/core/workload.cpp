#include "core/workload.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace nvsram::core {

double IdleWorkload::total_idle() const {
  return std::accumulate(idle_intervals.begin(), idle_intervals.end(), 0.0);
}

IdleWorkload IdleWorkload::exponential(double mean_idle, int episodes,
                                       unsigned seed) {
  if (mean_idle <= 0.0 || episodes < 1) {
    throw std::invalid_argument("IdleWorkload::exponential: bad parameters");
  }
  IdleWorkload w;
  std::mt19937 rng(seed);
  std::exponential_distribution<double> dist(1.0 / mean_idle);
  w.idle_intervals.reserve(episodes);
  for (int i = 0; i < episodes; ++i) w.idle_intervals.push_back(dist(rng));
  return w;
}

IdleWorkload IdleWorkload::pareto(double x_m, double alpha, int episodes,
                                  unsigned seed) {
  if (x_m <= 0.0 || alpha <= 1.0 || episodes < 1) {
    throw std::invalid_argument("IdleWorkload::pareto: bad parameters");
  }
  IdleWorkload w;
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  w.idle_intervals.reserve(episodes);
  for (int i = 0; i < episodes; ++i) {
    const double q = std::max(1e-12, 1.0 - u(rng));
    w.idle_intervals.push_back(x_m / std::pow(q, 1.0 / alpha));
  }
  return w;
}

IdleWorkload IdleWorkload::periodic(double idle, int episodes) {
  if (idle < 0.0 || episodes < 1) {
    throw std::invalid_argument("IdleWorkload::periodic: bad parameters");
  }
  IdleWorkload w;
  w.idle_intervals.assign(episodes, idle);
  return w;
}

IdleWorkload IdleWorkload::bimodal(double short_idle, double long_idle,
                                   double long_fraction, int episodes,
                                   unsigned seed) {
  if (long_fraction < 0.0 || long_fraction > 1.0 || episodes < 1) {
    throw std::invalid_argument("IdleWorkload::bimodal: bad parameters");
  }
  IdleWorkload w;
  std::mt19937 rng(seed);
  std::bernoulli_distribution pick_long(long_fraction);
  w.idle_intervals.reserve(episodes);
  for (int i = 0; i < episodes; ++i) {
    w.idle_intervals.push_back(pick_long(rng) ? long_idle : short_idle);
  }
  return w;
}

const char* to_string(GatingPolicy p) {
  switch (p) {
    case GatingPolicy::kNeverGate: return "never-gate";
    case GatingPolicy::kAlwaysGate: return "always-gate";
    case GatingPolicy::kOracle: return "oracle";
    case GatingPolicy::kTimeout: return "timeout";
  }
  return "?";
}

PolicyEvaluator::PolicyEvaluator(const EnergyModel& model,
                                 BenchmarkParams params) {
  params.t_sl = 0.0;
  params.t_sd = 0.0;
  const sram::CellEnergetics& c = model.cell(Architecture::kNVPG);
  const auto b = model.cycle_energy(Architecture::kNVPG, params);

  params_n_rw_ = params.n_rw;
  burst_energy_ = b.access + b.standby;
  burst_time_ = static_cast<double>(params.n_rw) *
                (params.reads_per_write + 1.0) * params.rows * c.t_clk;
  gate_overhead_energy_ = b.store + b.store_wait + b.restore + b.restore_wait;
  gate_overhead_time_ =
      params.rows * (c.t_store + c.t_restore);
  p_sleep_ = c.p_static_sleep;
  p_shutdown_ = c.p_static_shutdown;
  e_sleep_transition_ = c.e_sleep_transition;

  // Same-cell break-even: gating an idle of length T costs
  //   gate_overhead + P_sd T      vs sleeping:   E_trans + P_slp T.
  // (This differs from the paper's Fig. 8 BET, which compares against the
  // 6T OSR baseline and therefore also carries the run-time delta.)
  const double dp = p_sleep_ - p_shutdown_;
  bet_ = dp > 0.0
             ? std::max(0.0, (gate_overhead_energy_ - e_sleep_transition_) / dp)
             : std::numeric_limits<double>::infinity();
}

PolicyResult PolicyEvaluator::evaluate(const IdleWorkload& workload,
                                       GatingPolicy policy,
                                       double timeout) const {
  if (policy == GatingPolicy::kTimeout && timeout < 0.0) {
    throw std::invalid_argument("PolicyEvaluator: negative timeout");
  }
  PolicyResult r;
  // Burst energy/time are linear in the inner-loop count: rescale the
  // characterized burst to the workload's per-burst access count.
  const double burst_scale =
      workload.n_rw_per_burst > 0
          ? static_cast<double>(workload.n_rw_per_burst) / params_n_rw_
          : 1.0;

  for (double idle : workload.idle_intervals) {
    r.energy += burst_scale * burst_energy_;
    r.duration += burst_scale * burst_time_;

    auto spend_sleeping = [&](double t) {
      r.energy += e_sleep_transition_ + p_sleep_ * t;
      r.duration += t;
      ++r.sleeps;
    };
    auto spend_gated = [&](double t) {
      r.energy += gate_overhead_energy_ + p_shutdown_ * t;
      r.duration += t + gate_overhead_time_;
      ++r.shutdowns;
    };

    switch (policy) {
      case GatingPolicy::kNeverGate:
        spend_sleeping(idle);
        break;
      case GatingPolicy::kAlwaysGate:
        spend_gated(idle);
        break;
      case GatingPolicy::kOracle:
        if (idle > bet_) {
          spend_gated(idle);
        } else {
          spend_sleeping(idle);
        }
        break;
      case GatingPolicy::kTimeout: {
        if (idle <= timeout) {
          spend_sleeping(idle);
        } else {
          // Sleep through the timeout window, then gate the remainder.
          r.energy += e_sleep_transition_ + p_sleep_ * timeout;
          r.duration += timeout;
          ++r.sleeps;
          spend_gated(idle - timeout);
        }
        break;
      }
    }
  }
  return r;
}

std::vector<std::pair<GatingPolicy, PolicyResult>> PolicyEvaluator::compare(
    const IdleWorkload& workload) const {
  std::vector<std::pair<GatingPolicy, PolicyResult>> out;
  out.emplace_back(GatingPolicy::kNeverGate,
                   evaluate(workload, GatingPolicy::kNeverGate));
  out.emplace_back(GatingPolicy::kAlwaysGate,
                   evaluate(workload, GatingPolicy::kAlwaysGate));
  out.emplace_back(GatingPolicy::kOracle,
                   evaluate(workload, GatingPolicy::kOracle));
  out.emplace_back(GatingPolicy::kTimeout,
                   evaluate(workload, GatingPolicy::kTimeout, bet_));
  return out;
}

}  // namespace nvsram::core
