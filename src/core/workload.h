// Idle-interval workloads and power-gating policy evaluation.
//
// The paper's BET is exactly the threshold of the optimal clairvoyant
// gating policy: shut down iff the coming idle interval exceeds the BET.
// This module makes that operational: generate or supply a sequence of idle
// intervals, then evaluate classic policies (never gate / always gate /
// oracle / fixed timeout) on the characterized cell energetics.  Energies
// are per cell, like everything in core/.
#pragma once

#include <limits>
#include <random>
#include <string>
#include <vector>

#include "core/energy_model.h"

namespace nvsram::core {

// A workload = repeated episodes of [activity burst][idle interval].
struct IdleWorkload {
  // Inner-loop repetitions of the Fig. 5 benchmark per burst.
  int n_rw_per_burst = 100;
  // Idle interval after each burst (seconds).
  std::vector<double> idle_intervals;

  double total_idle() const;
  std::size_t episodes() const { return idle_intervals.size(); }

  // ---- generators ----
  // Memoryless idles with the given mean.
  static IdleWorkload exponential(double mean_idle, int episodes,
                                  unsigned seed = 1);
  // Heavy-tailed idles: Pareto with scale x_m and shape alpha (> 1).
  static IdleWorkload pareto(double x_m, double alpha, int episodes,
                             unsigned seed = 1);
  // Fixed idle interval.
  static IdleWorkload periodic(double idle, int episodes);
  // Alternating short/long idles (bursty cache-like behaviour).
  static IdleWorkload bimodal(double short_idle, double long_idle,
                              double long_fraction, int episodes,
                              unsigned seed = 1);
};

enum class GatingPolicy {
  kNeverGate,   // spend every idle in the sleep retention mode
  kAlwaysGate,  // store + shutdown for every idle, however short
  kOracle,      // gate iff the idle exceeds the BET (clairvoyant optimum)
  kTimeout,     // sleep for `timeout`, then gate if the idle continues
};

const char* to_string(GatingPolicy p);

struct PolicyResult {
  double energy = 0.0;      // total per-cell energy over the workload (J)
  double duration = 0.0;    // total wall time (s)
  int shutdowns = 0;        // episodes that ended up gated
  int sleeps = 0;           // episodes spent (partly) in sleep
  double average_power() const {
    return duration > 0.0 ? energy / duration : 0.0;
  }
};

// Evaluates gating policies for an NVPG-managed domain.
class PolicyEvaluator {
 public:
  // `params` fixes the domain geometry (rows/cols) and the per-burst access
  // pattern; its t_sl / t_sd are ignored (the workload supplies the idles).
  PolicyEvaluator(const EnergyModel& model, BenchmarkParams params);

  // The BET used by the oracle / recommended timeout.
  double bet() const { return bet_; }

  PolicyResult evaluate(const IdleWorkload& workload, GatingPolicy policy,
                        double timeout = 0.0) const;

  // Convenience: evaluates all four policies (timeout = BET, the classic
  // 2-competitive choice) and returns them in enum order.
  std::vector<std::pair<GatingPolicy, PolicyResult>> compare(
      const IdleWorkload& workload) const;

 private:
  // Energy/time of one burst (no trailing idle).
  double burst_energy_ = 0.0;
  double burst_time_ = 0.0;
  // One-time cost and wall time of a gate cycle (store + restore + waits).
  double gate_overhead_energy_ = 0.0;
  double gate_overhead_time_ = 0.0;
  double p_sleep_ = 0.0;
  double p_shutdown_ = 0.0;
  int params_n_rw_ = 1;
  double e_sleep_transition_ = 0.0;
  double bet_ = 0.0;
};

}  // namespace nvsram::core
