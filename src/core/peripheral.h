// Peripheral driver energy model (extension).
//
// The paper excludes the SR/CTRL line drivers "for simplicity".  This model
// puts a number on that exclusion: line capacitances estimated from the
// array geometry (wire + gate loading per cell pitch), charged through a
// driver chain per operation.  EnergyModel composes these as an optional
// `peripheral` term, so the NVPG-vs-NOF comparison can be re-run with the
// overhead included (see bench_ablation).
#pragma once

#include "models/paper_params.h"

namespace nvsram::core {

struct PeripheralParams {
  // Wire capacitance of a control line per cell pitch it crosses.
  double wire_cap_per_cell = 0.05e-15;  // F (~50 aF at 20 nm-class pitches)
  // Driver chain overhead: total energy = C V^2 / efficiency.
  double driver_efficiency = 0.7;
};

class PeripheralModel {
 public:
  PeripheralModel(PeripheralParams params, models::PaperParams paper);

  // Full-swing energy of one row's line crossing `cols` cells, loaded by
  // `gates_per_cell` single-fin FET gates, swung to `v_swing`.
  double line_energy(int cols, int gates_per_cell, double v_swing) const;

  // Per-cell overheads for the Fig. 5 sequence composition:
  // one word-line pulse per access (1 access-gate pair per cell) ...
  double access_overhead_per_cell(int cols) const;
  // ... SR (to V_SR) plus CTRL (to V_CTRL_store) swings per row store ...
  double store_overhead_per_cell(int cols) const;
  // ... and one SR swing per row restore.
  double restore_overhead_per_cell(int cols) const;

 private:
  PeripheralParams params_;
  models::PaperParams paper_;
  double gate_cap_fin_;  // one fin's gate capacitance (Cgs + Cgd)
};

}  // namespace nvsram::core
