#include "core/peripheral.h"

#include <stdexcept>

namespace nvsram::core {

PeripheralModel::PeripheralModel(PeripheralParams params,
                                 models::PaperParams paper)
    : params_(params), paper_(paper) {
  if (params_.driver_efficiency <= 0.0 || params_.driver_efficiency > 1.0) {
    throw std::invalid_argument(
        "PeripheralModel: driver_efficiency must be in (0, 1]");
  }
  const auto fet = paper_.nmos(1);
  gate_cap_fin_ = fet.cgs() + fet.cgd();
}

double PeripheralModel::line_energy(int cols, int gates_per_cell,
                                    double v_swing) const {
  if (cols < 1 || gates_per_cell < 0) {
    throw std::invalid_argument("PeripheralModel::line_energy: bad geometry");
  }
  const double c_line =
      cols * (params_.wire_cap_per_cell + gates_per_cell * gate_cap_fin_);
  return c_line * v_swing * v_swing / params_.driver_efficiency;
}

double PeripheralModel::access_overhead_per_cell(int cols) const {
  // WL loads the two access gates of every cell on the row.
  return line_energy(cols, 2 * paper_.fins_access, paper_.vdd) / cols;
}

double PeripheralModel::store_overhead_per_cell(int cols) const {
  // Step 1 swings SR to V_SR (two PS gates per cell); step 2 swings CTRL,
  // which is a junction-loaded line — approximate with the same per-cell
  // loading at the (lower) V_CTRL swing.
  const double sr = line_energy(cols, 2 * paper_.fins_ps, paper_.vsr);
  const double ctrl = line_energy(cols, 2 * paper_.fins_ps, paper_.vctrl_store);
  return (sr + ctrl) / cols;
}

double PeripheralModel::restore_overhead_per_cell(int cols) const {
  return line_energy(cols, 2 * paper_.fins_ps, paper_.vsr) / cols;
}

}  // namespace nvsram::core
