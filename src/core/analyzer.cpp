#include "core/analyzer.h"

#include "sram/characterize_cache.h"
#include "util/watchdog.h"

namespace nvsram::core {

PowerGatingAnalyzer::PowerGatingAnalyzer(models::PaperParams pp,
                                         double max_wall_seconds,
                                         int relax_attempt)
    : pp_(pp) {
  // Both cell characterizations share one wall-clock budget; the second one
  // only gets whatever the first left over.  Goes through the process-wide
  // cache: sweeps building many analyzers at the same parameter point pay
  // for the SPICE characterization once.
  const util::Deadline phase(max_wall_seconds);
  cell_6t_ = sram::characterize_cached(pp_, sram::CellKind::k6T,
                                       phase.remaining_seconds(), relax_attempt);
  phase.check("PowerGatingAnalyzer: characterization");
  cell_nv_ = sram::characterize_cached(pp_, sram::CellKind::kNvSram,
                                       phase.remaining_seconds(), relax_attempt);
  model_ = std::make_unique<EnergyModel>(cell_6t_, cell_nv_);
}

std::vector<std::pair<double, double>> PowerGatingAnalyzer::ecyc_vs_nrw(
    Architecture a, const std::vector<int>& n_rw_values,
    BenchmarkParams base) const {
  std::vector<std::pair<double, double>> out;
  out.reserve(n_rw_values.size());
  for (int n : n_rw_values) {
    base.n_rw = n;
    out.emplace_back(static_cast<double>(n), model_->e_cyc(a, base));
  }
  return out;
}

std::vector<std::pair<double, double>> PowerGatingAnalyzer::ecyc_vs_tsd(
    Architecture a, const std::vector<double>& t_sd_values,
    BenchmarkParams base) const {
  std::vector<std::pair<double, double>> out;
  out.reserve(t_sd_values.size());
  for (double t : t_sd_values) {
    base.t_sd = t;
    out.emplace_back(t, model_->e_cyc(a, base));
  }
  return out;
}

std::vector<std::pair<double, double>>
PowerGatingAnalyzer::ecyc_vs_tsd_normalized(
    Architecture a, const std::vector<double>& t_sd_values,
    BenchmarkParams base) const {
  std::vector<std::pair<double, double>> out;
  out.reserve(t_sd_values.size());
  for (double t : t_sd_values) {
    base.t_sd = t;
    const double e = model_->e_cyc(a, base);
    const double e_osr = model_->e_cyc(Architecture::kOSR, base);
    out.emplace_back(t, e / e_osr);
  }
  return out;
}

std::vector<PowerGatingAnalyzer::BetPoint> PowerGatingAnalyzer::bet_vs_rows(
    Architecture a, const std::vector<int>& rows_values,
    BenchmarkParams base) const {
  std::vector<BetPoint> out;
  for (int rows : rows_values) {
    base.rows = rows;
    if (auto bet = model_->break_even_time(a, base)) {
      out.push_back({rows, *bet});
    }
  }
  return out;
}

double PowerGatingAnalyzer::cycle_time_ratio(Architecture a,
                                             const BenchmarkParams& p) const {
  const double d = model_->cycle_energy(a, p).duration;
  const double d_osr = model_->cycle_energy(Architecture::kOSR, p).duration;
  return d / d_osr;
}

}  // namespace nvsram::core
