#include "core/energy_model.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/rootfind.h"
#include "util/units.h"

namespace nvsram::core {

std::string EnergyBreakdown::describe() const {
  std::ostringstream os;
  os << "access=" << util::si_format(access, "J")
     << " standby=" << util::si_format(standby, "J")
     << " sleep=" << util::si_format(sleep, "J")
     << " store=" << util::si_format(store, "J") << "(+wait "
     << util::si_format(store_wait, "J") << ")"
     << " shutdown=" << util::si_format(shutdown, "J")
     << " restore=" << util::si_format(restore, "J") << "(+wait "
     << util::si_format(restore_wait, "J") << ")"
     << " peripheral=" << util::si_format(peripheral, "J")
     << " total=" << util::si_format(total(), "J")
     << " duration=" << util::si_format(duration, "s");
  return os.str();
}

EnergyModel::EnergyModel(sram::CellEnergetics cell_6t,
                         sram::CellEnergetics cell_nv)
    : cell_6t_(cell_6t), cell_nv_(cell_nv) {
  if (cell_nv_.t_store <= 0.0 || cell_nv_.t_restore <= 0.0) {
    throw std::invalid_argument(
        "EnergyModel: cell_nv must be a characterized NV-SRAM cell");
  }
}

EnergyBreakdown EnergyModel::cycle_energy(Architecture a,
                                          const BenchmarkParams& p) const {
  if (p.n_rw < 1 || p.rows < 1 || p.cols < 1 || p.t_sl < 0.0 || p.t_sd < 0.0 ||
      p.reads_per_write < 0.0 || p.dirty_fraction < 0.0 ||
      p.dirty_fraction > 1.0) {
    throw std::invalid_argument("EnergyModel: invalid benchmark parameters");
  }
  const sram::CellEnergetics& c = cell(a);
  const double T = c.t_clk;
  const double N = static_cast<double>(p.rows);
  const double reads = p.reads_per_write;
  const double writes = 1.0;
  const double n = static_cast<double>(p.n_rw);

  EnergyBreakdown b;

  switch (a) {
    case Architecture::kOSR:
    case Architecture::kNVPG: {
      // Inner loop: sequential read of all N words, then sequential write.
      const double d_access = (reads + writes) * N * T;
      b.access = n * (reads * c.e_read + writes * c.e_write);
      b.standby = n * c.p_static_normal * (d_access - (reads + writes) * T);
      b.sleep = n * (c.p_static_sleep * p.t_sl +
                     (p.t_sl > 0.0 ? c.e_sleep_transition : 0.0));
      b.duration = n * (d_access + p.t_sl);

      if (a == Architecture::kOSR) {
        // The long shutdown period is replaced by a long sleep.  The entry /
        // exit transition is charged unconditionally so that E(t_SD) is
        // affine all the way to t_SD = 0 (the benchmark always enters the
        // long idle phase).
        b.shutdown = c.p_static_sleep * p.t_sd + c.e_sleep_transition;
        b.duration += p.t_sd;
      } else {
        // Store (row by row), shutdown, restore (row by row).
        if (!p.store_free_shutdown) {
          // Masked store: only dirty cells burn CIMS energy; the store
          // window itself still runs (rows are scanned regardless).
          b.store = p.dirty_fraction * c.e_store;
          // While other rows store, this row waits: powered (normal bias)
          // before its slot, gated off after it.
          b.store_wait = (N - 1.0) * c.t_store *
                         0.5 * (c.p_static_normal + c.p_static_shutdown);
          b.duration += N * c.t_store;
        }
        b.shutdown = c.p_static_shutdown * p.t_sd;
        b.restore = c.e_restore;
        b.restore_wait = (N - 1.0) * c.t_restore *
                         0.5 * (c.p_static_shutdown + c.p_static_normal);
        b.duration += p.t_sd + N * c.t_restore;
      }
      if (peripheral_) {
        b.peripheral +=
            n * (reads + writes) * peripheral_->access_overhead_per_cell(p.cols);
        if (a == Architecture::kNVPG) {
          if (!p.store_free_shutdown) {
            b.peripheral += peripheral_->store_overhead_per_cell(p.cols);
          }
          b.peripheral += peripheral_->restore_overhead_per_cell(p.cols);
        }
      }
      break;
    }
    case Architecture::kNOF: {
      // Every access powers the row up and back down.  Reads need no store
      // (the MTJs still hold the data); writes must store before power-off.
      const double t_read_cycle = T + c.t_restore;
      const double t_write_cycle =
          T + c.t_restore + (p.store_free_shutdown ? 0.0 : c.t_store);
      const double d_read_phase = N * t_read_cycle;
      const double d_write_phase = N * t_write_cycle;

      b.access = n * (reads * c.e_read + writes * c.e_write);
      b.restore = n * (reads + writes) * c.e_restore;
      b.store =
          n * writes * (p.store_free_shutdown ? 0.0 : p.dirty_fraction * c.e_store);

      // While the other N-1 words cycle, this row is gated off.
      b.standby = n * c.p_static_shutdown * (N - 1.0) *
                  (reads * t_read_cycle + writes * t_write_cycle);
      // The short sleep is replaced by a short shutdown.
      b.sleep = n * c.p_static_shutdown * p.t_sl;
      b.duration = n * (reads * d_read_phase + writes * d_write_phase + p.t_sl);

      // Long shutdown, then one final wake-up.
      b.shutdown = c.p_static_shutdown * p.t_sd;
      b.restore += c.e_restore;
      b.restore_wait = (N - 1.0) * c.t_restore *
                       0.5 * (c.p_static_shutdown + c.p_static_normal);
      b.duration += p.t_sd + N * c.t_restore;
      if (peripheral_) {
        // Every NOF access swings WL and SR (wake-up); writes also swing the
        // store lines.
        b.peripheral +=
            n * (reads + writes) *
                (peripheral_->access_overhead_per_cell(p.cols) +
                 peripheral_->restore_overhead_per_cell(p.cols)) +
            n * writes *
                (p.store_free_shutdown
                     ? 0.0
                     : peripheral_->store_overhead_per_cell(p.cols)) +
            peripheral_->restore_overhead_per_cell(p.cols);
      }
      break;
    }
  }
  return b;
}

double EnergyModel::shutdown_slope(Architecture a) const {
  const sram::CellEnergetics& c = cell(a);
  return a == Architecture::kOSR ? c.p_static_sleep : c.p_static_shutdown;
}

std::optional<double> EnergyModel::break_even_time(Architecture a,
                                                   BenchmarkParams p) const {
  if (a == Architecture::kOSR) return 0.0;
  p.t_sd = 0.0;
  const double e_arch0 = e_cyc(a, p);
  const double e_osr0 = e_cyc(Architecture::kOSR, p);
  const double slope_arch = shutdown_slope(a);
  const double slope_osr = shutdown_slope(Architecture::kOSR);
  if (slope_osr <= slope_arch) return std::nullopt;
  const double bet = (e_arch0 - e_osr0) / (slope_osr - slope_arch);
  return std::max(0.0, bet);
}

std::optional<double> EnergyModel::break_even_time_numeric(
    Architecture a, BenchmarkParams p) const {
  if (a == Architecture::kOSR) return 0.0;
  auto diff = [&](double t_sd) {
    BenchmarkParams q = p;
    q.t_sd = t_sd;
    return e_cyc(a, q) - e_cyc(Architecture::kOSR, q);
  };
  if (diff(0.0) <= 0.0) return 0.0;
  // Expand the bracket geometrically up to one hour of shutdown.
  double hi = 1e-6;
  while (diff(hi) > 0.0) {
    hi *= 4.0;
    if (hi > 3600.0) return std::nullopt;
  }
  auto root = util::brent(diff, 0.0, hi, {.x_tolerance = 1e-15});
  if (!root || !root->converged) return std::nullopt;
  return root->x;
}

}  // namespace nvsram::core
