// Architecture-level energy model: composes SPICE-characterized per-cell
// operation energies over the paper's Fig. 5 benchmark sequences, and solves
// for the break-even time (BET).
//
// Composition follows the paper's methodology:
//  * A power domain is an N-row x M-bit NV-SRAM (or 6T) array; all M cells
//    of a word act in parallel, so the model is per cell with N serializing
//    the word accesses and the row-by-row store/restore.
//  * One benchmark cycle =
//      n_RW x [ read all N words, write all N words, short sleep t_SL ]
//      + (NVPG/NOF) store + shutdown t_SD + restore
//      + (OSR) long sleep t_SD
//    with the NOF variant powering off around every access instead of
//    sleeping (reads wake-up + read; writes wake-up + write + store).
//  * Store and restore proceed row by row: waiting rows burn static power,
//    which is what couples BET to N.
#pragma once

#include <optional>
#include <string>

#include "core/architecture.h"
#include "core/peripheral.h"
#include "sram/characterize.h"

namespace nvsram::core {

struct BenchmarkParams {
  int n_rw = 100;        // inner-loop repetitions
  double t_sl = 100e-9;  // short sleep (OSR/NVPG) / short shutdown (NOF)
  double t_sd = 0.0;     // long shutdown (NVPG/NOF) / long sleep (OSR)
  int rows = 32;         // N (words per domain)
  int cols = 32;         // M (bits per word) — documents the domain size
  double reads_per_write = 1.0;  // repetition ratio of reads to writes
  bool store_free_shutdown = false;
  // Fraction of cells whose data differs from their MTJ contents when the
  // store begins (masked / differential store, an extension the paper's
  // store-free shutdown is the 0.0 limit of).  1.0 = store everything.
  double dirty_fraction = 1.0;

  double domain_bytes() const { return rows * cols / 8.0; }
};

// Per-phase decomposition of one benchmark cycle's energy (J, per cell).
struct EnergyBreakdown {
  double access = 0.0;        // dynamic read/write energy (incl. own-cycle static)
  double standby = 0.0;       // static while other words are accessed
  double sleep = 0.0;         // t_SL sleeps (or NOF short shutdowns)
  double store = 0.0;         // MTJ store operations
  double store_wait = 0.0;    // static while other rows store
  double shutdown = 0.0;      // long shutdown / OSR long sleep
  double restore = 0.0;       // wake-up operations
  double restore_wait = 0.0;  // static while other rows restore
  double peripheral = 0.0;    // optional WL/SR/CTRL driver overhead

  double total() const {
    return access + standby + sleep + store + store_wait + shutdown + restore +
           restore_wait + peripheral;
  }

  // Wall-clock duration of the benchmark cycle (s) — the performance side of
  // the comparison (Fig. 6(b)): NOF cycles are stretched by store/wake-up.
  double duration = 0.0;

  std::string describe() const;
};

class EnergyModel {
 public:
  // `cell_6t` characterizes the volatile baseline (OSR); `cell_nv` the
  // NV-SRAM cell (NVPG and NOF).
  EnergyModel(sram::CellEnergetics cell_6t, sram::CellEnergetics cell_nv);

  const sram::CellEnergetics& cell(Architecture a) const {
    return a == Architecture::kOSR ? cell_6t_ : cell_nv_;
  }

  // Per-cell energy of one full benchmark cycle.
  EnergyBreakdown cycle_energy(Architecture a, const BenchmarkParams& p) const;
  double e_cyc(Architecture a, const BenchmarkParams& p) const {
    return cycle_energy(a, p).total();
  }

  // Slope dE_cyc/dt_SD of the affine E(t_SD) line for this architecture.
  double shutdown_slope(Architecture a) const;

  // BET of `a` against the OSR baseline: the t_SD at which E_cyc(a) equals
  // E_cyc(OSR).  nullopt if the architecture never breaks even (slope of the
  // OSR line is not steeper); 0 if it is already ahead at t_SD = 0.
  std::optional<double> break_even_time(Architecture a, BenchmarkParams p) const;

  // Numeric cross-check of break_even_time via Brent on the full model
  // (used by tests; must agree with the analytic version).
  std::optional<double> break_even_time_numeric(Architecture a,
                                                BenchmarkParams p) const;

  // Enables the peripheral (WL/SR/CTRL driver) overhead term, which the
  // paper excludes.  Pass std::nullopt to disable again.
  void set_peripheral(std::optional<PeripheralModel> peripheral) {
    peripheral_ = std::move(peripheral);
  }
  bool has_peripheral() const { return peripheral_.has_value(); }

 private:
  sram::CellEnergetics cell_6t_;
  sram::CellEnergetics cell_nv_;
  std::optional<PeripheralModel> peripheral_;
};

}  // namespace nvsram::core
