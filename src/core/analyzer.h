// High-level facade: characterize the cells once, then answer the paper's
// evaluation questions (E_cyc curves, BET curves, performance ratios).
#pragma once

#include <memory>
#include <vector>

#include "core/energy_model.h"
#include "models/paper_params.h"

namespace nvsram::core {

class PowerGatingAnalyzer {
 public:
  // Characterizes both cells with SPICE at construction (a few transients
  // and DC solves; seconds of wall time — amortized through the process-wide
  // cache in sram/characterize_cache.h, so repeated analyzers at the same
  // parameter point are cheap).  `max_wall_seconds` bounds the
  // whole characterization phase (both cells share one wall-clock budget);
  // expiry throws util::WatchdogError.  0 = unlimited.  Sweep points that
  // build analyzers should pass their PointContext::timeout_sec here so the
  // runner's watchdog covers the SPICE-characterization phase too.
  // `relax_attempt` is forwarded to both CellCharacterizers (shared
  // relaxation ladder); retry callbacks pass PointContext::attempt.
  explicit PowerGatingAnalyzer(models::PaperParams pp,
                               double max_wall_seconds = 0.0,
                               int relax_attempt = 0);

  const models::PaperParams& paper() const { return pp_; }
  const EnergyModel& model() const { return *model_; }
  const sram::CellEnergetics& cell_6t() const { return cell_6t_; }
  const sram::CellEnergetics& cell_nv() const { return cell_nv_; }

  // ---- figure-level series ----
  // E_cyc(n_RW) for one architecture with everything else fixed (Fig. 7).
  std::vector<std::pair<double, double>> ecyc_vs_nrw(
      Architecture a, const std::vector<int>& n_rw_values,
      BenchmarkParams base) const;

  // E_cyc(t_SD) (Fig. 8(a)) and the OSR-normalized variant (Fig. 8(b)).
  std::vector<std::pair<double, double>> ecyc_vs_tsd(
      Architecture a, const std::vector<double>& t_sd_values,
      BenchmarkParams base) const;
  std::vector<std::pair<double, double>> ecyc_vs_tsd_normalized(
      Architecture a, const std::vector<double>& t_sd_values,
      BenchmarkParams base) const;

  // BET(N) (Fig. 9); nullopt entries are skipped (never breaks even).
  struct BetPoint {
    int rows;
    double bet;
  };
  std::vector<BetPoint> bet_vs_rows(Architecture a,
                                    const std::vector<int>& rows_values,
                                    BenchmarkParams base) const;

  // NOF slowdown: benchmark-cycle duration ratio vs OSR (Fig. 6(b) message).
  double cycle_time_ratio(Architecture a, const BenchmarkParams& p) const;

 private:
  models::PaperParams pp_;
  sram::CellEnergetics cell_6t_;
  sram::CellEnergetics cell_nv_;
  std::unique_ptr<EnergyModel> model_;
};

}  // namespace nvsram::core
