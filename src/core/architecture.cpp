#include "core/architecture.h"

namespace nvsram::core {

const char* to_string(Architecture a) {
  switch (a) {
    case Architecture::kOSR: return "OSR";
    case Architecture::kNVPG: return "NVPG";
    case Architecture::kNOF: return "NOF";
  }
  return "?";
}

}  // namespace nvsram::core
