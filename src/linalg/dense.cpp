#include "linalg/dense.h"

#include <cmath>
#include <stdexcept>

namespace nvsram::linalg {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

DenseMatrix DenseMatrix::identity(std::size_t n) {
  DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void DenseMatrix::resize(std::size_t rows, std::size_t cols, double fill) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, fill);
}

void DenseMatrix::set_zero() { std::fill(data_.begin(), data_.end(), 0.0); }

Vector DenseMatrix::multiply(const Vector& x) const {
  if (x.size() != cols_) throw std::invalid_argument("DenseMatrix::multiply size");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = data_.data() + r * cols_;
    double sum = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) sum += row[c] * x[c];
    y[r] = sum;
  }
  return y;
}

double DenseMatrix::frobenius_norm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

double dot(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot size");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm_inf(const Vector& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::fabs(x));
  return m;
}

double norm_2(const Vector& v) { return std::sqrt(dot(v, v)); }

void axpy(double s, const Vector& b, Vector& a) {
  if (a.size() != b.size()) throw std::invalid_argument("axpy size");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += s * b[i];
}

}  // namespace nvsram::linalg
