#include "linalg/sparse_lu.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "linalg/lu.h"

namespace nvsram::linalg {

namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

// Column-compressed view of a CSR matrix (values copied).
struct Csc {
  std::size_t n = 0;
  std::vector<std::size_t> col_ptr;
  std::vector<std::size_t> row_idx;
  std::vector<double> values;
};

Csc to_csc(const CsrMatrix& a) {
  Csc c;
  c.n = a.dimension();
  const auto& rp = a.row_ptr();
  const auto& ci = a.col_idx();
  const auto& v = a.values();
  c.col_ptr.assign(c.n + 1, 0);
  for (std::size_t col : ci) c.col_ptr[col + 1]++;
  for (std::size_t j = 0; j < c.n; ++j) c.col_ptr[j + 1] += c.col_ptr[j];
  c.row_idx.resize(ci.size());
  c.values.resize(ci.size());
  std::vector<std::size_t> next(c.col_ptr.begin(), c.col_ptr.end() - 1);
  for (std::size_t r = 0; r < c.n; ++r) {
    for (std::size_t k = rp[r]; k < rp[r + 1]; ++k) {
      const std::size_t dst = next[ci[k]]++;
      c.row_idx[dst] = r;
      c.values[dst] = v[k];
    }
  }
  return c;
}

}  // namespace

bool SparseLu::factorize(const CsrMatrix& a, double pivot_threshold,
                         double pivot_floor) {
  n_ = a.dimension();
  valid_ = false;
  analyzed_ = false;
  structurally_singular_ = false;
  failed_pivot_ = kNoFailedPivot;
  non_finite_ = false;
  if (n_ == 0) {
    valid_ = true;
    return true;
  }
  const Csc acsc = to_csc(a);

  // L and U built column by column (CSC).  L keeps original row indices
  // during factorization; they are remapped to factor rows at the end.
  std::vector<std::size_t> l_col_ptr{0}, u_col_ptr{0};
  std::vector<std::size_t> l_rows, u_rows;
  std::vector<double> l_vals, u_vals;
  l_rows.reserve(acsc.row_idx.size() * 4);
  l_vals.reserve(acsc.row_idx.size() * 4);
  u_rows.reserve(acsc.row_idx.size() * 4);
  u_vals.reserve(acsc.row_idx.size() * 4);

  std::vector<std::size_t> pinv(n_, kNone);  // original row -> factor row

  // Workspaces for the sparse triangular solve.
  std::vector<double> x(n_, 0.0);
  std::vector<int> mark(n_, 0);
  int stamp = 0;
  std::vector<std::size_t> topo;          // reach set in topological order
  std::vector<std::size_t> dfs_stack, dfs_pos;
  topo.reserve(n_);
  dfs_stack.reserve(n_);
  dfs_pos.reserve(n_);

  for (std::size_t k = 0; k < n_; ++k) {
    // ---- symbolic: reachability of pattern(A(:,k)) through the L graph ----
    ++stamp;
    topo.clear();
    for (std::size_t p = acsc.col_ptr[k]; p < acsc.col_ptr[k + 1]; ++p) {
      const std::size_t root = acsc.row_idx[p];
      if (mark[root] == stamp) continue;
      // Iterative DFS; post-order gives reverse-topological order.
      dfs_stack.assign(1, root);
      dfs_pos.assign(1, 0);
      mark[root] = stamp;
      while (!dfs_stack.empty()) {
        const std::size_t node = dfs_stack.back();
        const std::size_t fr = pinv[node];
        bool descended = false;
        if (fr != kNone) {
          // Children: below-diagonal entries of L column `fr` (skip diag at 0).
          std::size_t& pos = dfs_pos.back();
          const std::size_t begin = l_col_ptr[fr] + 1;
          const std::size_t end = l_col_ptr[fr + 1];
          while (begin + pos < end) {
            const std::size_t child = l_rows[begin + pos];
            ++pos;
            if (mark[child] != stamp) {
              mark[child] = stamp;
              dfs_stack.push_back(child);
              dfs_pos.push_back(0);
              descended = true;
              break;
            }
          }
        }
        if (!descended) {
          topo.push_back(node);
          dfs_stack.pop_back();
          dfs_pos.pop_back();
        }
      }
    }
    // topo is in post-order; reverse for elimination order.
    // (Every node's L-parents appear after it in post-order.)

    // ---- numeric: x = L \ A(:,k) over the reach set ----
    for (std::size_t node : topo) x[node] = 0.0;
    for (std::size_t p = acsc.col_ptr[k]; p < acsc.col_ptr[k + 1]; ++p) {
      x[acsc.row_idx[p]] = acsc.values[p];
    }
    for (std::size_t idx = topo.size(); idx-- > 0;) {
      const std::size_t node = topo[idx];
      const std::size_t fr = pinv[node];
      if (fr == kNone) continue;  // not yet pivotal: no elimination from it
      const double xj = x[node];
      if (xj == 0.0) continue;
      for (std::size_t p = l_col_ptr[fr] + 1; p < l_col_ptr[fr + 1]; ++p) {
        x[l_rows[p]] -= l_vals[p] * xj;
      }
    }

    // ---- pivot selection among not-yet-pivotal rows ----
    // NaN/Inf anywhere in the eliminated column fails the factorization
    // here: NaN loses every magnitude comparison, so without the explicit
    // check it would silently end up inside L/U and poison every solve.
    for (std::size_t node : topo) {
      if (!std::isfinite(x[node])) {
        failed_pivot_ = k;
        non_finite_ = true;
        return false;
      }
    }
    double max_mag = 0.0;
    std::size_t pivot_row = kNone;
    for (std::size_t node : topo) {
      if (pinv[node] != kNone) continue;
      const double mag = std::fabs(x[node]);
      if (mag > max_mag) {
        max_mag = mag;
        pivot_row = node;
      }
    }
    if (pivot_row == kNone || max_mag < pivot_floor) {
      failed_pivot_ = k;
      return false;
    }
    // Prefer the natural diagonal if it is within the threshold: keeps the
    // permutation close to identity, which preserves sparsity for MNA.
    if (pinv[k] == kNone && std::fabs(x[k]) >= pivot_threshold * max_mag &&
        std::fabs(x[k]) >= pivot_floor) {
      pivot_row = k;
    }
    const double pivot = x[pivot_row];
    pinv[pivot_row] = k;

    // ---- partition x into U(:,k) and L(:,k) ----
    // U gets pivotal rows (factor index < k) plus the diagonal (stored last).
    for (std::size_t node : topo) {
      if (node == pivot_row) continue;
      const std::size_t fr = pinv[node];
      const double v = x[node];
      if (fr != kNone) {
        if (v != 0.0) {
          u_rows.push_back(fr);
          u_vals.push_back(v);
        }
      }
    }
    u_rows.push_back(k);
    u_vals.push_back(pivot);
    u_col_ptr.push_back(u_rows.size());

    // L column: unit diagonal first (original row id of the pivot), then the
    // scaled below-diagonal entries.
    l_rows.push_back(pivot_row);
    l_vals.push_back(1.0);
    for (std::size_t node : topo) {
      if (node == pivot_row || pinv[node] != kNone) continue;
      const double v = x[node];
      if (v != 0.0) {
        l_rows.push_back(node);
        l_vals.push_back(v / pivot);
      }
    }
    l_col_ptr.push_back(l_rows.size());
  }

  // Remap L's original row indices to factor rows (all rows pivotal now).
  for (auto& r : l_rows) r = pinv[r];

  l_row_ptr_ = std::move(l_col_ptr);  // (columns of L; name kept generic)
  l_col_ = std::move(l_rows);
  l_values_ = std::move(l_vals);
  u_row_ptr_ = std::move(u_col_ptr);
  u_col_ = std::move(u_rows);
  u_values_ = std::move(u_vals);

  perm_.assign(n_, 0);
  for (std::size_t orig = 0; orig < n_; ++orig) perm_[pinv[orig]] = orig;
  pinv_ = std::move(pinv);
  cperm_.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) cperm_[k] = k;
  valid_ = true;
  return true;
}

bool SparseLu::analyze(const CsrMatrix& a) {
  n_ = a.dimension();
  valid_ = false;
  analyzed_ = false;
  structurally_singular_ = false;
  failed_pivot_ = kNoFailedPivot;
  non_finite_ = false;
  pattern_ = SparsityPattern::from_csr(a);
  if (n_ == 0) {
    analyzed_ = true;
    valid_ = true;
    return true;
  }

  // ---- structural solvability: maximum transversal ----
  const Matching matching = maximum_matching(pattern_);
  if (!matching.perfect(n_)) {
    structurally_singular_ = true;
    const auto rows = matching.unmatched_rows();
    failed_pivot_ = rows.empty() ? kNoFailedPivot : rows.front();
    return false;
  }

  // ---- fill-reducing column order; pivot rows follow the matching ----
  cperm_ = min_degree_order(pattern_, matching);
  pinv_.assign(n_, kNone);
  perm_.assign(n_, kNone);
  for (std::size_t k = 0; k < n_; ++k) {
    const std::size_t orig_row = matching.col_match[cperm_[k]];
    pinv_[orig_row] = k;
    perm_[k] = orig_row;
  }

  // ---- scatter plan: original entries of column cperm_[k], factor rows ----
  const auto& rp = a.row_ptr();
  const auto& ci = a.col_idx();
  std::vector<std::size_t> col_count(n_, 0);
  for (std::size_t c : ci) col_count[c]++;
  csc_ptr_.assign(n_ + 1, 0);
  for (std::size_t k = 0; k < n_; ++k) {
    csc_ptr_[k + 1] = csc_ptr_[k] + col_count[cperm_[k]];
  }
  csc_factor_row_.resize(ci.size());
  csc_val_pos_.resize(ci.size());
  {
    std::vector<std::size_t> dst_of_col(n_);  // original col -> factor col
    for (std::size_t k = 0; k < n_; ++k) dst_of_col[cperm_[k]] = k;
    std::vector<std::size_t> next(n_);
    for (std::size_t k = 0; k < n_; ++k) next[k] = csc_ptr_[k];
    for (std::size_t r = 0; r < n_; ++r) {
      for (std::size_t p = rp[r]; p < rp[r + 1]; ++p) {
        const std::size_t k = dst_of_col[ci[p]];
        const std::size_t dst = next[k]++;
        csc_factor_row_[dst] = pinv_[r];
        csc_val_pos_[dst] = p;
      }
    }
  }

  // ---- symbolic left-looking elimination with the fixed pivot order ----
  // With every pivot predetermined, factor rows are totally ordered and
  // ascending factor index is a valid elimination order, so the per-column
  // pattern is simply the closure of the scattered positions under
  // "j in pattern, j < k  =>  L-pattern(j) in pattern".
  l_row_ptr_.assign(1, 0);
  u_row_ptr_.assign(1, 0);
  l_col_.clear();
  u_col_.clear();
  std::vector<int> mark(n_, -1);
  std::vector<std::size_t> dfs_stack, dfs_pos, found;
  for (std::size_t k = 0; k < n_; ++k) {
    found.clear();
    for (std::size_t p = csc_ptr_[k]; p < csc_ptr_[k + 1]; ++p) {
      const std::size_t root = csc_factor_row_[p];
      if (mark[root] == static_cast<int>(k)) continue;
      dfs_stack.assign(1, root);
      dfs_pos.assign(1, 0);
      mark[root] = static_cast<int>(k);
      while (!dfs_stack.empty()) {
        const std::size_t node = dfs_stack.back();
        bool descended = false;
        if (node < k) {
          // Children: strictly-lower entries of L column `node` (diag at 0).
          std::size_t& pos = dfs_pos.back();
          const std::size_t begin = l_row_ptr_[node] + 1;
          const std::size_t end = l_row_ptr_[node + 1];
          while (begin + pos < end) {
            const std::size_t child = l_col_[begin + pos];
            ++pos;
            if (mark[child] != static_cast<int>(k)) {
              mark[child] = static_cast<int>(k);
              dfs_stack.push_back(child);
              dfs_pos.push_back(0);
              descended = true;
              break;
            }
          }
        }
        if (!descended) {
          found.push_back(node);
          dfs_stack.pop_back();
          dfs_pos.pop_back();
        }
      }
    }
    std::sort(found.begin(), found.end());
    // U rows ascending (strictly above the diagonal), then the diagonal.
    for (std::size_t node : found) {
      if (node < k) u_col_.push_back(node);
    }
    u_col_.push_back(k);
    u_row_ptr_.push_back(u_col_.size());
    // L: unit diagonal first, then strictly-below rows ascending.
    l_col_.push_back(k);
    for (std::size_t node : found) {
      if (node > k) l_col_.push_back(node);
    }
    l_row_ptr_.push_back(l_col_.size());
  }
  l_values_.assign(l_col_.size(), 0.0);
  u_values_.assign(u_col_.size(), 0.0);
  work_.assign(n_, 0.0);
  analyzed_ = true;
  return true;
}

bool SparseLu::pattern_matches(const CsrMatrix& a) const {
  return analyzed_ && a.dimension() == pattern_.dimension() &&
         a.row_ptr() == pattern_.row_ptr() && a.col_idx() == pattern_.col_idx();
}

bool SparseLu::refactor(const CsrMatrix& a, double pivot_floor) {
  if (!analyzed_) {
    throw std::logic_error("SparseLu::refactor before analyze");
  }
  if (!pattern_matches(a)) {
    throw std::invalid_argument("SparseLu::refactor: pattern mismatch");
  }
  valid_ = false;
  failed_pivot_ = kNoFailedPivot;
  non_finite_ = false;
  if (n_ == 0) {
    valid_ = true;
    return true;
  }
  const auto& av = a.values();
  std::vector<double>& x = work_;  // zero outside each column's pattern

  for (std::size_t k = 0; k < n_; ++k) {
    // Scatter the original entries of column cperm_[k].
    for (std::size_t p = csc_ptr_[k]; p < csc_ptr_[k + 1]; ++p) {
      x[csc_factor_row_[p]] = av[csc_val_pos_[p]];
    }
    // Eliminate with the already-final columns, ascending factor index.
    const std::size_t u_begin = u_row_ptr_[k];
    const std::size_t u_diag = u_row_ptr_[k + 1] - 1;
    for (std::size_t p = u_begin; p < u_diag; ++p) {
      const std::size_t j = u_col_[p];
      const double xj = x[j];
      if (xj == 0.0) continue;
      for (std::size_t q = l_row_ptr_[j] + 1; q < l_row_ptr_[j + 1]; ++q) {
        x[l_col_[q]] -= l_values_[q] * xj;
      }
    }
    const double pivot = x[k];
    // Gather U (values above the diagonal, diagonal last) and L (unit
    // diagonal, then scaled below-diagonal values); clear the workspace.
    bool finite = std::isfinite(pivot);
    for (std::size_t p = u_begin; p < u_diag; ++p) {
      const double v = x[u_col_[p]];
      finite = finite && std::isfinite(v);
      u_values_[p] = v;
      x[u_col_[p]] = 0.0;
    }
    u_values_[u_diag] = pivot;
    x[k] = 0.0;
    const std::size_t l_begin = l_row_ptr_[k];
    l_values_[l_begin] = 1.0;
    for (std::size_t q = l_begin + 1; q < l_row_ptr_[k + 1]; ++q) {
      const double v = x[l_col_[q]];
      finite = finite && std::isfinite(v);
      l_values_[q] = v / pivot;
      x[l_col_[q]] = 0.0;
    }
    if (!finite) {
      failed_pivot_ = k;
      non_finite_ = true;
      std::fill(x.begin(), x.end(), 0.0);
      return false;
    }
    if (std::fabs(pivot) < pivot_floor) {
      failed_pivot_ = k;
      std::fill(x.begin(), x.end(), 0.0);
      return false;
    }
  }
  valid_ = true;
  return true;
}

std::size_t SparseLu::refactor_lanes(const CsrMatrix* const* as, std::size_t k,
                                     LaneValues& lv, double pivot_floor) const {
  if (!analyzed_) {
    throw std::logic_error("SparseLu::refactor_lanes before analyze");
  }
  if (k == 0 || k > kMaxLanes) {
    throw std::invalid_argument("SparseLu::refactor_lanes lane count");
  }
  for (std::size_t l = 0; l < k; ++l) {
    if (!pattern_matches(*as[l])) {
      throw std::invalid_argument("SparseLu::refactor_lanes: pattern mismatch");
    }
  }
  lv.k_ = k;
  lv.l_values_.assign(l_col_.size() * k, 0.0);
  lv.u_values_.assign(u_col_.size() * k, 0.0);
  lv.work_.assign(n_ * k, 0.0);
  lv.valid_.assign(k, 1);
  lv.non_finite_.assign(k, 0);
  lv.failed_pivot_.assign(k, kNoFailedPivot);
  if (n_ == 0) return k;
  lv.av_.resize(k);
  for (std::size_t l = 0; l < k; ++l) lv.av_[l] = as[l]->values().data();

  double* const X = lv.work_.data();
  double* const LV = lv.l_values_.data();
  double* const UV = lv.u_values_.data();

  double xj[kMaxLanes];
  double piv[kMaxLanes];
  bool finite[kMaxLanes];

  for (std::size_t col = 0; col < n_; ++col) {
    // Scatter the original entries of column cperm_[col], all lanes.
    for (std::size_t p = csc_ptr_[col]; p < csc_ptr_[col + 1]; ++p) {
      double* const xr = X + csc_factor_row_[p] * k;
      const std::size_t vp = csc_val_pos_[p];
      for (std::size_t l = 0; l < k; ++l) xr[l] = lv.av_[l][vp];
    }
    // Eliminate with the already-final columns, ascending factor index.
    // The skip-zero shortcut fires only when every lane's xj is zero; a
    // lane with xj == 0 among nonzero lanes performs `-= l * 0` updates
    // (the documented sign-of-zero deviation).
    const std::size_t u_begin = u_row_ptr_[col];
    const std::size_t u_diag = u_row_ptr_[col + 1] - 1;
    for (std::size_t p = u_begin; p < u_diag; ++p) {
      const std::size_t j = u_col_[p];
      const double* const xjp = X + j * k;
      bool any = false;
      for (std::size_t l = 0; l < k; ++l) {
        xj[l] = xjp[l];
        any = any || xj[l] != 0.0;
      }
      if (!any) continue;
      for (std::size_t q = l_row_ptr_[j] + 1; q < l_row_ptr_[j + 1]; ++q) {
        double* const xr = X + l_col_[q] * k;
        const double* const lq = LV + q * k;
        for (std::size_t l = 0; l < k; ++l) xr[l] -= lq[l] * xj[l];
      }
    }
    // Gather U (values above the diagonal, diagonal last) and L (unit
    // diagonal, then scaled below-diagonal values); clear the workspace.
    for (std::size_t l = 0; l < k; ++l) {
      piv[l] = X[col * k + l];
      finite[l] = std::isfinite(piv[l]);
    }
    for (std::size_t p = u_begin; p < u_diag; ++p) {
      double* const xv = X + u_col_[p] * k;
      double* const uvp = UV + p * k;
      for (std::size_t l = 0; l < k; ++l) {
        const double v = xv[l];
        finite[l] = finite[l] && std::isfinite(v);
        uvp[l] = v;
        xv[l] = 0.0;
      }
    }
    for (std::size_t l = 0; l < k; ++l) {
      UV[u_diag * k + l] = piv[l];
      X[col * k + l] = 0.0;
    }
    const std::size_t l_begin = l_row_ptr_[col];
    for (std::size_t l = 0; l < k; ++l) LV[l_begin * k + l] = 1.0;
    for (std::size_t q = l_begin + 1; q < l_row_ptr_[col + 1]; ++q) {
      double* const xv = X + l_col_[q] * k;
      double* const lvp = LV + q * k;
      for (std::size_t l = 0; l < k; ++l) {
        const double v = xv[l];
        finite[l] = finite[l] && std::isfinite(v);
        lvp[l] = v / piv[l];
        xv[l] = 0.0;
      }
    }
    // Latch the first failure per lane, mirroring the scalar verdict; the
    // lane keeps streaming dead values so the loop stays uniform.
    for (std::size_t l = 0; l < k; ++l) {
      if (lv.failed_pivot_[l] != kNoFailedPivot) continue;
      if (!finite[l]) {
        lv.failed_pivot_[l] = col;
        lv.non_finite_[l] = 1;
        lv.valid_[l] = 0;
      } else if (std::fabs(piv[l]) < pivot_floor) {
        lv.failed_pivot_[l] = col;
        lv.valid_[l] = 0;
      }
    }
  }
  std::size_t ok = 0;
  for (std::size_t l = 0; l < k; ++l) ok += lv.valid_[l];
  return ok;
}

void SparseLu::solve_lanes(LaneValues& lv, const Vector* const* bs,
                           Vector* const* outs) const {
  const std::size_t k = lv.k_;
  if (k == 0) throw std::logic_error("SparseLu::solve_lanes before refactor_lanes");
  for (std::size_t l = 0; l < k; ++l) {
    if (lv.valid_[l] && bs[l]->size() != n_) {
      throw std::invalid_argument("SparseLu::solve_lanes rhs size");
    }
  }
  // y = P b per lane; invalid lanes stay zero so they never veto the
  // all-lanes-zero skip below.
  lv.y_.assign(n_ * k, 0.0);
  double* const Y = lv.y_.data();
  for (std::size_t l = 0; l < k; ++l) {
    if (!lv.valid_[l]) continue;
    const double* b = bs[l]->data();
    for (std::size_t orig = 0; orig < n_; ++orig) Y[pinv_[orig] * k + l] = b[orig];
  }
  const double* const LV = lv.l_values_.data();
  const double* const UV = lv.u_values_.data();
  double xk[kMaxLanes];

  // Forward solve L y' = y (unit diagonal stored first in each column).
  for (std::size_t col = 0; col < n_; ++col) {
    const double* const yk = Y + col * k;
    bool any = false;
    for (std::size_t l = 0; l < k; ++l) {
      xk[l] = yk[l];
      any = any || xk[l] != 0.0;
    }
    if (!any) continue;
    for (std::size_t p = l_row_ptr_[col] + 1; p < l_row_ptr_[col + 1]; ++p) {
      double* const yr = Y + l_col_[p] * k;
      const double* const lp = LV + p * k;
      for (std::size_t l = 0; l < k; ++l) yr[l] -= lp[l] * xk[l];
    }
  }
  // Back solve U x = y' (diagonal stored last in each column).
  for (std::size_t col = n_; col-- > 0;) {
    const std::size_t diag = u_row_ptr_[col + 1] - 1;
    const double* const ud = UV + diag * k;
    double* const yk = Y + col * k;
    bool any = false;
    for (std::size_t l = 0; l < k; ++l) {
      xk[l] = yk[l] / ud[l];
      yk[l] = xk[l];
      any = any || xk[l] != 0.0;
    }
    if (!any) continue;
    for (std::size_t p = u_row_ptr_[col]; p < diag; ++p) {
      double* const yr = Y + u_col_[p] * k;
      const double* const up = UV + p * k;
      for (std::size_t l = 0; l < k; ++l) yr[l] -= up[l] * xk[l];
    }
  }
  // Undo the column permutation per valid lane.
  for (std::size_t l = 0; l < k; ++l) {
    if (!lv.valid_[l]) continue;
    outs[l]->resize(n_);
    for (std::size_t col = 0; col < n_; ++col) {
      (*outs[l])[cperm_[col]] = Y[col * k + l];
    }
  }
}

Vector SparseLu::solve(const Vector& b) const {
  if (!valid_) throw std::logic_error("SparseLu::solve before factorize");
  if (b.size() != n_) throw std::invalid_argument("SparseLu::solve rhs size");

  // y = P b
  Vector y(n_);
  for (std::size_t orig = 0; orig < n_; ++orig) y[pinv_[orig]] = b[orig];

  // Forward solve L y' = y (unit diagonal stored first in each column).
  for (std::size_t k = 0; k < n_; ++k) {
    const double xk = y[k];
    if (xk == 0.0) continue;
    for (std::size_t p = l_row_ptr_[k] + 1; p < l_row_ptr_[k + 1]; ++p) {
      y[l_col_[p]] -= l_values_[p] * xk;
    }
  }
  // Back solve U x = y' (diagonal stored last in each column).
  for (std::size_t k = n_; k-- > 0;) {
    const std::size_t diag = u_row_ptr_[k + 1] - 1;
    const double xk = y[k] / u_values_[diag];
    y[k] = xk;
    if (xk == 0.0) continue;
    for (std::size_t p = u_row_ptr_[k]; p < diag; ++p) {
      y[u_col_[p]] -= u_values_[p] * xk;
    }
  }
  // Undo the column permutation (identity for factorize()).
  Vector out(n_);
  for (std::size_t k = 0; k < n_; ++k) out[cperm_[k]] = y[k];
  return out;
}

std::optional<Vector> solve_sparse(const CsrMatrix& a, const Vector& b) {
  if (a.dimension() <= kDenseCutoff) {
    return solve_dense(a.to_dense(), b);
  }
  SparseLu lu;
  if (!lu.factorize(a)) return std::nullopt;
  return lu.solve(b);
}

}  // namespace nvsram::linalg
