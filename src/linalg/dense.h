// Dense row-major matrix and vector helpers for the MNA solver.
//
// SRAM cell circuits are ~10-40 unknowns, so a cache-friendly dense matrix
// with partially pivoted LU is the workhorse; the sparse path (sparse.h)
// takes over for multi-hundred-node array netlists.
#pragma once

#include <cstddef>
#include <vector>

namespace nvsram::linalg {

using Vector = std::vector<double>;

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static DenseMatrix identity(std::size_t n);

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  void resize(std::size_t rows, std::size_t cols, double fill = 0.0);
  void set_zero();

  // y = A x  (sizes must match).
  Vector multiply(const Vector& x) const;

  // Frobenius norm.
  double frobenius_norm() const;

  // Raw storage access (row-major) for the LU factorizer.
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// ---- vector helpers --------------------------------------------------------
double dot(const Vector& a, const Vector& b);
double norm_inf(const Vector& v);
double norm_2(const Vector& v);
// a += s * b
void axpy(double s, const Vector& b, Vector& a);

}  // namespace nvsram::linalg
