// Structural (symbolic) analysis of sparse systems: positions only, no
// numerics.
//
// The MNA matrix of a well-formed circuit admits a perfect matching between
// equations (rows) and unknowns (columns); a deficient matching proves the
// system is singular for EVERY assignment of device values — a topology bug,
// not a numerical accident.  This header provides the pieces the solver and
// the lint layer share:
//   * SparsityPattern      — immutable CSR positions of a square matrix
//   * maximum_matching     — maximum transversal (Kuhn's augmenting paths)
//   * dulmage_mendelsohn   — coarse DM classification of a deficient pattern
//   * connected_components — equation blocks of the bipartite graph
//   * min_degree_order     — fill-reducing column order for LU
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "linalg/sparse.h"

namespace nvsram::linalg {

inline constexpr std::size_t kUnmatched = std::numeric_limits<std::size_t>::max();

// Positions-only view of a square sparse matrix.  Column indices are sorted
// and unique within each row, so equality is a plain vector compare.
class SparsityPattern {
 public:
  SparsityPattern() = default;

  static SparsityPattern from_csr(const CsrMatrix& a);
  // Deduplicates; out-of-range entries throw.
  static SparsityPattern from_triplets(std::size_t n,
                                       const std::vector<Triplet>& triplets);

  std::size_t dimension() const { return n_; }
  std::size_t nonzeros() const { return col_idx_.size(); }
  const std::vector<std::size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::size_t>& col_idx() const { return col_idx_; }

  std::size_t row_degree(std::size_t r) const {
    return row_ptr_[r + 1] - row_ptr_[r];
  }

  // Column-compressed positions (rows per column, sorted).
  SparsityPattern transpose() const;

  bool operator==(const SparsityPattern& o) const {
    return n_ == o.n_ && row_ptr_ == o.row_ptr_ && col_idx_ == o.col_idx_;
  }
  bool operator!=(const SparsityPattern& o) const { return !(*this == o); }

 private:
  std::size_t n_ = 0;
  std::vector<std::size_t> row_ptr_{0};
  std::vector<std::size_t> col_idx_;
};

// Maximum bipartite matching between rows (equations) and columns
// (unknowns).  `size == n` proves structural nonsingularity.
struct Matching {
  std::vector<std::size_t> row_match;  // row -> column, kUnmatched if none
  std::vector<std::size_t> col_match;  // column -> row, kUnmatched if none
  std::size_t size = 0;

  bool perfect(std::size_t n) const { return size == n; }
  std::vector<std::size_t> unmatched_rows() const;
  std::vector<std::size_t> unmatched_cols() const;
};

// Kuhn's augmenting-path algorithm with a diagonal-preferred greedy seed:
// wherever position (i, i) exists it is matched first, which keeps the
// transversal close to the natural MNA ordering.
Matching maximum_matching(const SparsityPattern& pattern);

// Coarse Dulmage–Mendelsohn classification of a deficient matching.  The
// horizontal (over-determined) region is everything alternating-reachable
// from the unmatched rows, the vertical (under-determined) region everything
// reachable from the unmatched columns; equations and unknowns in those
// regions are exactly the ones implicated in the structural deficiency.
struct DmDecomposition {
  std::vector<std::size_t> overdetermined_rows;   // incl. the unmatched rows
  std::vector<std::size_t> overdetermined_cols;
  std::vector<std::size_t> underdetermined_rows;
  std::vector<std::size_t> underdetermined_cols;  // incl. the unmatched cols
};
DmDecomposition dulmage_mendelsohn(const SparsityPattern& pattern,
                                   const Matching& matching);

// Connected components of the bipartite row/column graph (row r adjacent to
// every column with a nonzero in row r).  For MNA this partitions the
// equations into independent blocks that could be solved separately.
struct BipartiteComponents {
  std::size_t count = 0;
  std::vector<std::size_t> row_component;  // kUnmatched for empty rows
  std::vector<std::size_t> col_component;  // kUnmatched for empty cols
};
BipartiteComponents connected_components(const SparsityPattern& pattern);

// Fill-reducing elimination order: minimum degree on the symmetrized pattern
// of the row-permuted matrix that puts `matching` on the diagonal.  Returns
// the column elimination order (a permutation of 0..n-1).  Requires a
// perfect matching.
std::vector<std::size_t> min_degree_order(const SparsityPattern& pattern,
                                          const Matching& matching);

}  // namespace nvsram::linalg
