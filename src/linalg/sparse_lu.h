// Sparse LU for MNA systems.
//
// Row-wise left-looking LU on a hash-free working row, with threshold
// partial pivoting restricted to the original + fill pattern.  Circuit
// matrices are small-bandwidth and diagonally heavy after gmin loading, so
// this simple scheme is robust and fast enough for multi-thousand-node
// arrays; the dense path remains the default below `kDenseCutoff` unknowns.
#pragma once

#include <optional>

#include "linalg/lu.h"
#include "linalg/sparse.h"

namespace nvsram::linalg {

inline constexpr std::size_t kDenseCutoff = 160;

class SparseLu {
 public:
  // Factorize A (CSR).  Returns false on structural or numerical
  // singularity, or when an eliminated column turns non-finite
  // (failed_pivot()/non_finite() attribute the failure).
  // `pivot_threshold` in (0,1]: relative threshold pivoting — a diagonal
  // pivot is kept if |diag| >= threshold * max|col candidates|.
  bool factorize(const CsrMatrix& a, double pivot_threshold = 0.1,
                 double pivot_floor = 1e-300);

  Vector solve(const Vector& b) const;

  bool valid() const { return valid_; }
  std::size_t dimension() const { return n_; }
  std::size_t factor_nonzeros() const { return l_values_.size() + u_values_.size(); }

  // After a failed factorize(): the elimination step (column) that gave up,
  // and whether it failed on a NaN/Inf value rather than a tiny pivot.
  std::size_t failed_pivot() const { return failed_pivot_; }
  bool non_finite() const { return non_finite_; }

 private:
  std::size_t n_ = 0;
  bool valid_ = false;
  std::size_t failed_pivot_ = kNoFailedPivot;
  bool non_finite_ = false;

  // Row permutation: factor row i of PA corresponds to original row perm_[i];
  // pinv_ is the inverse map (original row -> factor row).
  std::vector<std::size_t> perm_;
  std::vector<std::size_t> pinv_;

  // L (strictly lower, unit diagonal implicit) and U (upper incl. diagonal),
  // both row-compressed over the factor ordering.
  std::vector<std::size_t> l_row_ptr_, l_col_;
  std::vector<double> l_values_;
  std::vector<std::size_t> u_row_ptr_, u_col_;
  std::vector<double> u_values_;
};

// One-shot convenience; picks dense or sparse by dimension.
std::optional<Vector> solve_sparse(const CsrMatrix& a, const Vector& b);

}  // namespace nvsram::linalg
