// Sparse LU for MNA systems.
//
// Two entry points share the factor storage and solve():
//
//   * factorize(A)            — one-shot left-looking LU with threshold
//     partial pivoting restricted to the original + fill pattern.  Robust
//     default for a matrix seen once.
//
//   * analyze(A) + refactor(A) — KLU-style split.  analyze() proves the
//     pattern structurally nonsingular (maximum matching), picks a
//     fill-reducing column order (minimum degree) and a matching-based pivot
//     sequence, and computes the complete L/U fill pattern symbolically.
//     refactor() then redoes only the numerics on the fixed pattern — no
//     reachability DFS, no pivot search — which is what Newton re-solves on
//     an unchanged pattern want.  refactor() is valid for any matrix with
//     the analyzed pattern; a numeric pivot failure (values, not topology)
//     leaves the analysis intact so callers can fall back to factorize().
//
// Circuit matrices are small-bandwidth and diagonally heavy after gmin
// loading, so both schemes are robust and fast enough for multi-thousand-node
// arrays; the dense path remains the default below `kDenseCutoff` unknowns.
#pragma once

#include <optional>

#include "linalg/lu.h"
#include "linalg/sparse.h"
#include "linalg/structure.h"

namespace nvsram::linalg {

inline constexpr std::size_t kDenseCutoff = 160;

// Upper bound on the lane count of refactor_lanes()/solve_lanes(); keeps
// per-column lane scratch on the stack.
inline constexpr std::size_t kMaxLanes = 16;

class SparseLu {
 public:
  // Factorize A (CSR).  Returns false on structural or numerical
  // singularity, or when an eliminated column turns non-finite
  // (failed_pivot()/non_finite() attribute the failure).
  // `pivot_threshold` in (0,1]: relative threshold pivoting — a diagonal
  // pivot is kept if |diag| >= threshold * max|col candidates|.
  bool factorize(const CsrMatrix& a, double pivot_threshold = 0.1,
                 double pivot_floor = 1e-300);

  // ---- split symbolic / numeric API ----
  // Symbolic analysis of the pattern of `a` (values ignored).  Returns false
  // when the pattern is structurally singular (no perfect matching); the
  // verdict is then available via structurally_singular().  On success the
  // analysis persists until the next analyze()/factorize() call and serves
  // any number of refactor() calls on matrices with the same pattern.
  bool analyze(const CsrMatrix& a);

  // Numeric factorization over the analyzed pattern.  Requires a prior
  // successful analyze() with pattern_matches(a).  Returns false on a
  // numeric pivot failure or a non-finite value; the analysis survives.
  bool refactor(const CsrMatrix& a, double pivot_floor = 1e-300);

  bool analyzed() const { return analyzed_; }
  bool pattern_matches(const CsrMatrix& a) const;
  // True when the last analyze() failed for structural (topology) reasons.
  bool structurally_singular() const { return structurally_singular_; }

  Vector solve(const Vector& b) const;

  // ---- lockstep multi-lane numeric API ----
  // K same-pattern matrices factor in lockstep over one analysis: the
  // shared symbolic index structure is walked once per column with a
  // vectorizable lane-inner loop over interleaved per-lane values (entry q
  // of lane l lives at q * K + l, so the lane loop covers contiguous
  // doubles).  Per lane the arithmetic sequence equals refactor()/solve()
  // exactly, so lane results are bit-identical to the scalar path — except
  // that entries whose exact value is 0.0 may differ in the sign of the
  // zero: a lane does not take the skip-zero shortcut when another lane's
  // value is nonzero, and the resulting `x -= l * (+-0)` updates can flip
  // the sign of an exactly-zero accumulator.  `==` comparisons (and all
  // downstream arithmetic here) cannot distinguish the two.
  //
  // Holds the per-lane numeric factors and workspaces; reusable across
  // refactor_lanes() calls (buffers keep their capacity).
  class LaneValues {
   public:
    std::size_t lanes() const { return k_; }
    bool valid(std::size_t lane) const { return valid_[lane] != 0; }
    // After a failed lane: the column that gave up and whether it failed on
    // a NaN/Inf value (mirrors failed_pivot()/non_finite()).
    std::size_t failed_pivot(std::size_t lane) const { return failed_pivot_[lane]; }
    bool non_finite(std::size_t lane) const { return non_finite_[lane] != 0; }

   private:
    friend class SparseLu;
    std::size_t k_ = 0;
    std::vector<double> l_values_, u_values_, work_, y_;
    std::vector<unsigned char> valid_, non_finite_;
    std::vector<std::size_t> failed_pivot_;
    std::vector<const double*> av_;
  };

  // Lockstep numeric refactorization of `k` matrices (each must satisfy
  // pattern_matches()) over the current analysis.  A lane whose pivot fails
  // is marked invalid on `lv` and masked from further use while the other
  // lanes continue; returns the number of lanes that factored successfully.
  // Does not disturb the scalar refactor()/solve() state.
  std::size_t refactor_lanes(const CsrMatrix* const* as, std::size_t k,
                             LaneValues& lv, double pivot_floor = 1e-300) const;

  // Lockstep triangular solves over lane factors: *outs[l] = A_l^{-1} *bs[l]
  // for every valid lane (invalid lanes leave *outs[l] untouched).
  void solve_lanes(LaneValues& lv, const Vector* const* bs,
                   Vector* const* outs) const;

  bool valid() const { return valid_; }
  std::size_t dimension() const { return n_; }
  std::size_t factor_nonzeros() const { return l_values_.size() + u_values_.size(); }

  // After a failed factorize()/refactor(): the elimination step (column)
  // that gave up, and whether it failed on a NaN/Inf value rather than a
  // tiny pivot.
  std::size_t failed_pivot() const { return failed_pivot_; }
  bool non_finite() const { return non_finite_; }

 private:
  std::size_t n_ = 0;
  bool valid_ = false;
  std::size_t failed_pivot_ = kNoFailedPivot;
  bool non_finite_ = false;

  // Row permutation: factor row i of PA corresponds to original row perm_[i];
  // pinv_ is the inverse map (original row -> factor row).
  std::vector<std::size_t> perm_;
  std::vector<std::size_t> pinv_;
  // Column permutation: factor column k holds original column cperm_[k]
  // (identity for factorize(); the fill-reducing order for analyze()).
  std::vector<std::size_t> cperm_;

  // L (strictly lower + explicit unit diagonal stored first per column) and
  // U (upper incl. diagonal stored last per column), both column-compressed
  // over the factor ordering.
  std::vector<std::size_t> l_row_ptr_, l_col_;
  std::vector<double> l_values_;
  std::vector<std::size_t> u_row_ptr_, u_col_;
  std::vector<double> u_values_;

  // ---- symbolic analysis state (analyze()/refactor() only) ----
  bool analyzed_ = false;
  bool structurally_singular_ = false;
  SparsityPattern pattern_;
  // Scatter plan: for factor column k, positions csc_ptr_[k]..csc_ptr_[k+1]
  // name the factor row and the index into CsrMatrix::values() of every
  // original entry of column cperm_[k].
  std::vector<std::size_t> csc_ptr_, csc_factor_row_, csc_val_pos_;
  // Numeric workspace reused across refactor() calls.
  std::vector<double> work_;
};

// One-shot convenience; picks dense or sparse by dimension.
std::optional<Vector> solve_sparse(const CsrMatrix& a, const Vector& b);

}  // namespace nvsram::linalg
