#include "linalg/lu.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace nvsram::linalg {

bool LuFactorization::factorize(const DenseMatrix& a, double pivot_floor) {
  if (a.rows() != a.cols()) throw std::invalid_argument("LU: matrix not square");
  const std::size_t n = a.rows();
  lu_ = a;
  perm_.resize(n);
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});
  valid_ = false;
  failed_pivot_ = kNoFailedPivot;
  non_finite_ = false;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: find the largest magnitude entry in column k at/below k.
    // A NaN anywhere in the candidate column poisons the whole step, so it
    // is treated as a failure here rather than silently losing the NaN to
    // the (always-false) magnitude comparisons below.
    std::size_t pivot_row = k;
    double pivot_mag = std::fabs(lu_(k, k));
    bool finite = std::isfinite(pivot_mag);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::fabs(lu_(r, k));
      finite = finite && std::isfinite(mag);
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    if (!finite || !std::isfinite(pivot_mag)) {
      failed_pivot_ = k;
      non_finite_ = true;
      return false;
    }
    if (pivot_mag < pivot_floor) {
      failed_pivot_ = k;
      return false;
    }
    if (pivot_row != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(pivot_row, c));
      std::swap(perm_[k], perm_[pivot_row]);
    }
    const double inv_pivot = 1.0 / lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_(r, k) * inv_pivot;
      lu_(r, k) = factor;
      if (factor == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) {
        lu_(r, c) -= factor * lu_(k, c);
      }
    }
  }
  valid_ = true;
  return true;
}

Vector LuFactorization::solve(const Vector& b) const {
  if (!valid_) throw std::logic_error("LU::solve before successful factorize");
  const std::size_t n = lu_.rows();
  if (b.size() != n) throw std::invalid_argument("LU::solve rhs size");

  // Apply permutation, then forward substitution (L has unit diagonal).
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = b[perm_[i]];
  for (std::size_t i = 0; i < n; ++i) {
    double sum = y[i];
    for (std::size_t j = 0; j < i; ++j) sum -= lu_(i, j) * y[j];
    y[i] = sum;
  }
  // Back substitution with U.
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) sum -= lu_(ii, j) * y[j];
    y[ii] = sum / lu_(ii, ii);
  }
  return y;
}

Vector LuFactorization::refine(const DenseMatrix& a, const Vector& b,
                               const Vector& x) const {
  Vector residual = a.multiply(x);
  for (std::size_t i = 0; i < residual.size(); ++i) residual[i] = b[i] - residual[i];
  Vector dx = solve(residual);
  Vector out = x;
  axpy(1.0, dx, out);
  return out;
}

double LuFactorization::pivot_ratio() const {
  if (!valid_ || lu_.rows() == 0) return 0.0;
  double min_p = std::fabs(lu_(0, 0));
  double max_p = min_p;
  for (std::size_t i = 1; i < lu_.rows(); ++i) {
    const double p = std::fabs(lu_(i, i));
    min_p = std::min(min_p, p);
    max_p = std::max(max_p, p);
  }
  return max_p > 0.0 ? min_p / max_p : 0.0;
}

std::optional<Vector> solve_dense(const DenseMatrix& a, const Vector& b) {
  LuFactorization lu;
  if (!lu.factorize(a)) return std::nullopt;
  return lu.solve(b);
}

}  // namespace nvsram::linalg
