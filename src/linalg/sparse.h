// Sparse matrix support: a triplet (COO) builder and a CSR product form.
//
// MNA assembly stamps entries additively, so the builder accumulates
// duplicate (row, col) contributions.  Conversion to CSR merges duplicates.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/dense.h"

namespace nvsram::linalg {

struct Triplet {
  std::size_t row;
  std::size_t col;
  double value;
};

class SparseBuilder {
 public:
  explicit SparseBuilder(std::size_t n = 0) : n_(n) {}

  void resize(std::size_t n) { n_ = n; }
  void clear() { triplets_.clear(); }

  // Additive stamp (duplicates accumulate at CSR conversion).
  void add(std::size_t row, std::size_t col, double value) {
    triplets_.push_back({row, col, value});
  }

  std::size_t dimension() const { return n_; }
  const std::vector<Triplet>& triplets() const { return triplets_; }

 private:
  std::size_t n_ = 0;
  std::vector<Triplet> triplets_;
};

// Compressed sparse row matrix (square, as MNA systems always are).
class CsrMatrix {
 public:
  CsrMatrix() = default;
  explicit CsrMatrix(const SparseBuilder& builder);

  std::size_t dimension() const { return n_; }
  std::size_t nonzeros() const { return values_.size(); }

  // y = A x
  Vector multiply(const Vector& x) const;

  // Entry lookup (linear scan inside row; rows are column-sorted).
  double at(std::size_t row, std::size_t col) const;

  DenseMatrix to_dense() const;
  // Allocation-free variant for hot loops: resizes `out` and overwrites it.
  void to_dense_into(DenseMatrix& out) const;

  const std::vector<std::size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::size_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

 private:
  friend class CsrAssembler;

  std::size_t n_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

// Reusable builder -> CSR assembly plan.
//
// The CsrMatrix constructor re-sorts the triplet list on every conversion.
// MNA re-stamps the same device sequence each Newton iteration, so the
// (row, col) position sequence is identical from one assembly to the next;
// the assembler records the triplet -> value-slot mapping once and reduces
// later assemblies to a zero-fill plus an accumulation pass in triplet
// order.  Because the constructor's sort is stable, both paths accumulate
// duplicate (row, col) stamps in the same order: `assemble()` is
// bit-identical to constructing a fresh CsrMatrix from the same builder.
// A builder whose position sequence changed is detected and replanned.
class CsrAssembler {
 public:
  // Assembles `builder` into `out`, reusing out's storage.
  void assemble(const SparseBuilder& builder, CsrMatrix& out);

 private:
  bool plan_matches(const SparseBuilder& builder) const;
  void replan(const SparseBuilder& builder, const CsrMatrix& reference);

  std::size_t n_ = 0;
  bool planned_ = false;
  std::vector<std::size_t> pos_row_;  // planned triplet position sequence
  std::vector<std::size_t> pos_col_;
  std::vector<std::size_t> slot_;     // triplet index -> CSR value slot
  std::vector<std::size_t> row_ptr_;  // planned CSR pattern
  std::vector<std::size_t> col_idx_;
};

}  // namespace nvsram::linalg
