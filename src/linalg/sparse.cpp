#include "linalg/sparse.h"

#include <algorithm>
#include <stdexcept>

namespace nvsram::linalg {

CsrMatrix::CsrMatrix(const SparseBuilder& builder) : n_(builder.dimension()) {
  // Sort triplets by (row, col) and merge duplicates.
  std::vector<Triplet> t = builder.triplets();
  std::sort(t.begin(), t.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });

  row_ptr_.assign(n_ + 1, 0);
  col_idx_.clear();
  values_.clear();
  col_idx_.reserve(t.size());
  values_.reserve(t.size());

  std::size_t i = 0;
  for (std::size_t r = 0; r < n_; ++r) {
    row_ptr_[r] = col_idx_.size();
    while (i < t.size() && t[i].row == r) {
      const std::size_t c = t[i].col;
      if (c >= n_) throw std::out_of_range("CsrMatrix: column out of range");
      double v = 0.0;
      while (i < t.size() && t[i].row == r && t[i].col == c) {
        v += t[i].value;
        ++i;
      }
      col_idx_.push_back(c);
      values_.push_back(v);
    }
  }
  if (i != t.size()) throw std::out_of_range("CsrMatrix: row out of range");
  row_ptr_[n_] = col_idx_.size();
}

Vector CsrMatrix::multiply(const Vector& x) const {
  if (x.size() != n_) throw std::invalid_argument("CsrMatrix::multiply size");
  Vector y(n_, 0.0);
  for (std::size_t r = 0; r < n_; ++r) {
    double sum = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      sum += values_[k] * x[col_idx_[k]];
    }
    y[r] = sum;
  }
  return y;
}

double CsrMatrix::at(std::size_t row, std::size_t col) const {
  if (row >= n_ || col >= n_) throw std::out_of_range("CsrMatrix::at");
  for (std::size_t k = row_ptr_[row]; k < row_ptr_[row + 1]; ++k) {
    if (col_idx_[k] == col) return values_[k];
  }
  return 0.0;
}

DenseMatrix CsrMatrix::to_dense() const {
  DenseMatrix d(n_, n_);
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      d(r, col_idx_[k]) = values_[k];
    }
  }
  return d;
}

}  // namespace nvsram::linalg
