#include "linalg/sparse.h"

#include <algorithm>
#include <stdexcept>

namespace nvsram::linalg {

CsrMatrix::CsrMatrix(const SparseBuilder& builder) : n_(builder.dimension()) {
  // Sort triplets by (row, col) and merge duplicates.  The sort must be
  // stable so duplicates accumulate in stamping order — the contract that
  // lets CsrAssembler::assemble() reproduce this constructor bit-for-bit.
  std::vector<Triplet> t = builder.triplets();
  std::stable_sort(t.begin(), t.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });

  row_ptr_.assign(n_ + 1, 0);
  col_idx_.clear();
  values_.clear();
  col_idx_.reserve(t.size());
  values_.reserve(t.size());

  std::size_t i = 0;
  for (std::size_t r = 0; r < n_; ++r) {
    row_ptr_[r] = col_idx_.size();
    while (i < t.size() && t[i].row == r) {
      const std::size_t c = t[i].col;
      if (c >= n_) throw std::out_of_range("CsrMatrix: column out of range");
      double v = 0.0;
      while (i < t.size() && t[i].row == r && t[i].col == c) {
        v += t[i].value;
        ++i;
      }
      col_idx_.push_back(c);
      values_.push_back(v);
    }
  }
  if (i != t.size()) throw std::out_of_range("CsrMatrix: row out of range");
  row_ptr_[n_] = col_idx_.size();
}

Vector CsrMatrix::multiply(const Vector& x) const {
  if (x.size() != n_) throw std::invalid_argument("CsrMatrix::multiply size");
  Vector y(n_, 0.0);
  for (std::size_t r = 0; r < n_; ++r) {
    double sum = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      sum += values_[k] * x[col_idx_[k]];
    }
    y[r] = sum;
  }
  return y;
}

double CsrMatrix::at(std::size_t row, std::size_t col) const {
  if (row >= n_ || col >= n_) throw std::out_of_range("CsrMatrix::at");
  for (std::size_t k = row_ptr_[row]; k < row_ptr_[row + 1]; ++k) {
    if (col_idx_[k] == col) return values_[k];
  }
  return 0.0;
}

DenseMatrix CsrMatrix::to_dense() const {
  DenseMatrix d(n_, n_);
  to_dense_into(d);
  return d;
}

void CsrMatrix::to_dense_into(DenseMatrix& out) const {
  out.resize(n_, n_);
  out.set_zero();
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      out(r, col_idx_[k]) = values_[k];
    }
  }
}

void CsrAssembler::assemble(const SparseBuilder& builder, CsrMatrix& out) {
  if (!planned_ || !plan_matches(builder)) {
    // Position sequence changed (or first call): fall back to the sorting
    // constructor and record its layout for subsequent assemblies.
    out = CsrMatrix(builder);
    replan(builder, out);
    return;
  }
  out.n_ = n_;
  out.row_ptr_ = row_ptr_;
  out.col_idx_ = col_idx_;
  out.values_.assign(col_idx_.size(), 0.0);
  const auto& t = builder.triplets();
  for (std::size_t i = 0; i < t.size(); ++i) {
    out.values_[slot_[i]] += t[i].value;
  }
}

bool CsrAssembler::plan_matches(const SparseBuilder& builder) const {
  const auto& t = builder.triplets();
  if (builder.dimension() != n_ || t.size() != pos_row_.size()) return false;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].row != pos_row_[i] || t[i].col != pos_col_[i]) return false;
  }
  return true;
}

void CsrAssembler::replan(const SparseBuilder& builder,
                          const CsrMatrix& reference) {
  const auto& t = builder.triplets();
  n_ = builder.dimension();
  row_ptr_ = reference.row_ptr_;
  col_idx_ = reference.col_idx_;
  pos_row_.resize(t.size());
  pos_col_.resize(t.size());
  slot_.resize(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    pos_row_[i] = t[i].row;
    pos_col_[i] = t[i].col;
    // Binary search the (sorted) column list of this row for the slot.
    const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[t[i].row]);
    const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[t[i].row + 1]);
    const auto it = std::lower_bound(begin, end, t[i].col);
    slot_[i] = static_cast<std::size_t>(it - col_idx_.begin());
  }
  planned_ = true;
}

}  // namespace nvsram::linalg
