// Partially pivoted LU factorization of a DenseMatrix, with solve/refine.
#pragma once

#include <limits>
#include <optional>

#include "linalg/dense.h"

namespace nvsram::linalg {

// Pivot index reported by the factorizations when nothing failed.
inline constexpr std::size_t kNoFailedPivot =
    std::numeric_limits<std::size_t>::max();

// In-place LU with partial pivoting.  After factorize(), solve() may be
// called repeatedly with different right-hand sides.
class LuFactorization {
 public:
  // Factorizes a copy of `a`.  Returns false if the matrix is singular to
  // working precision (pivot below `pivot_floor`) or a pivot column turned
  // non-finite; failed_pivot()/non_finite() then attribute the failure
  // instead of letting NaN solutions propagate downstream.
  bool factorize(const DenseMatrix& a, double pivot_floor = 1e-300);

  // Solves A x = b using the stored factors.  Requires factorize() == true.
  Vector solve(const Vector& b) const;

  // One step of iterative refinement against the original matrix.
  Vector refine(const DenseMatrix& a, const Vector& b, const Vector& x) const;

  bool valid() const { return valid_; }
  std::size_t dimension() const { return lu_.rows(); }

  // Estimated reciprocal condition (cheap: min|pivot| / max|pivot|).
  double pivot_ratio() const;

  // After a failed factorize(): the elimination step that gave up, and
  // whether the best candidate pivot there was NaN/Inf (vs merely tiny).
  std::size_t failed_pivot() const { return failed_pivot_; }
  bool non_finite() const { return non_finite_; }

 private:
  DenseMatrix lu_;
  std::vector<std::size_t> perm_;
  bool valid_ = false;
  std::size_t failed_pivot_ = kNoFailedPivot;
  bool non_finite_ = false;
};

// Convenience one-shot solve.  Returns nullopt on singular systems.
std::optional<Vector> solve_dense(const DenseMatrix& a, const Vector& b);

}  // namespace nvsram::linalg
