// Partially pivoted LU factorization of a DenseMatrix, with solve/refine.
#pragma once

#include <optional>

#include "linalg/dense.h"

namespace nvsram::linalg {

// In-place LU with partial pivoting.  After factorize(), solve() may be
// called repeatedly with different right-hand sides.
class LuFactorization {
 public:
  // Factorizes a copy of `a`.  Returns false if the matrix is singular to
  // working precision (pivot below `pivot_floor`).
  bool factorize(const DenseMatrix& a, double pivot_floor = 1e-300);

  // Solves A x = b using the stored factors.  Requires factorize() == true.
  Vector solve(const Vector& b) const;

  // One step of iterative refinement against the original matrix.
  Vector refine(const DenseMatrix& a, const Vector& b, const Vector& x) const;

  bool valid() const { return valid_; }
  std::size_t dimension() const { return lu_.rows(); }

  // Estimated reciprocal condition (cheap: min|pivot| / max|pivot|).
  double pivot_ratio() const;

 private:
  DenseMatrix lu_;
  std::vector<std::size_t> perm_;
  bool valid_ = false;
};

// Convenience one-shot solve.  Returns nullopt on singular systems.
std::optional<Vector> solve_dense(const DenseMatrix& a, const Vector& b);

}  // namespace nvsram::linalg
