#include "linalg/structure.h"

#include <algorithm>
#include <stdexcept>

namespace nvsram::linalg {

SparsityPattern SparsityPattern::from_csr(const CsrMatrix& a) {
  SparsityPattern p;
  p.n_ = a.dimension();
  p.row_ptr_ = a.row_ptr();
  p.col_idx_ = a.col_idx();
  return p;
}

SparsityPattern SparsityPattern::from_triplets(
    std::size_t n, const std::vector<Triplet>& triplets) {
  std::vector<std::pair<std::size_t, std::size_t>> pos;
  pos.reserve(triplets.size());
  for (const auto& t : triplets) {
    if (t.row >= n || t.col >= n) {
      throw std::out_of_range("SparsityPattern: triplet out of range");
    }
    pos.emplace_back(t.row, t.col);
  }
  std::sort(pos.begin(), pos.end());
  pos.erase(std::unique(pos.begin(), pos.end()), pos.end());

  SparsityPattern p;
  p.n_ = n;
  p.row_ptr_.assign(n + 1, 0);
  p.col_idx_.reserve(pos.size());
  std::size_t i = 0;
  for (std::size_t r = 0; r < n; ++r) {
    p.row_ptr_[r] = p.col_idx_.size();
    while (i < pos.size() && pos[i].first == r) {
      p.col_idx_.push_back(pos[i].second);
      ++i;
    }
  }
  p.row_ptr_[n] = p.col_idx_.size();
  return p;
}

SparsityPattern SparsityPattern::transpose() const {
  SparsityPattern t;
  t.n_ = n_;
  t.row_ptr_.assign(n_ + 1, 0);
  for (std::size_t c : col_idx_) t.row_ptr_[c + 1]++;
  for (std::size_t j = 0; j < n_; ++j) t.row_ptr_[j + 1] += t.row_ptr_[j];
  t.col_idx_.resize(col_idx_.size());
  std::vector<std::size_t> next(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      t.col_idx_[next[col_idx_[k]]++] = r;
    }
  }
  return t;
}

std::vector<std::size_t> Matching::unmatched_rows() const {
  std::vector<std::size_t> out;
  for (std::size_t r = 0; r < row_match.size(); ++r) {
    if (row_match[r] == kUnmatched) out.push_back(r);
  }
  return out;
}

std::vector<std::size_t> Matching::unmatched_cols() const {
  std::vector<std::size_t> out;
  for (std::size_t c = 0; c < col_match.size(); ++c) {
    if (col_match[c] == kUnmatched) out.push_back(c);
  }
  return out;
}

namespace {

// One augmenting-path DFS from row r (iterative; `visited` is per-phase).
bool augment(const SparsityPattern& p, std::size_t start_row,
             std::vector<std::size_t>& row_match,
             std::vector<std::size_t>& col_match, std::vector<int>& visited,
             int phase) {
  // Stack of (row, next position to try in that row).
  std::vector<std::pair<std::size_t, std::size_t>> stack;
  stack.emplace_back(start_row, p.row_ptr()[start_row]);
  while (!stack.empty()) {
    auto& [row, pos] = stack.back();
    if (pos == p.row_ptr()[row + 1]) {
      stack.pop_back();
      continue;
    }
    const std::size_t col = p.col_idx()[pos++];
    if (visited[col] == phase) continue;
    visited[col] = phase;
    const std::size_t owner = col_match[col];
    if (owner == kUnmatched) {
      // Free column: unwind the stack, flipping the alternating path.
      std::size_t c = col;
      for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        const std::size_t r = it->first;
        const std::size_t prev = row_match[r];
        row_match[r] = c;
        col_match[c] = r;
        c = prev;
        if (c == kUnmatched) break;
      }
      return true;
    }
    stack.emplace_back(owner, p.row_ptr()[owner]);
  }
  return false;
}

}  // namespace

Matching maximum_matching(const SparsityPattern& pattern) {
  const std::size_t n = pattern.dimension();
  Matching m;
  m.row_match.assign(n, kUnmatched);
  m.col_match.assign(n, kUnmatched);

  // Greedy seed, diagonal first: a diagonal transversal keeps the pivot
  // order close to identity, which both the fill-reducing order and the
  // numeric refactorization benefit from.
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = pattern.row_ptr()[r]; k < pattern.row_ptr()[r + 1];
         ++k) {
      if (pattern.col_idx()[k] == r && m.col_match[r] == kUnmatched) {
        m.row_match[r] = r;
        m.col_match[r] = r;
        ++m.size;
        break;
      }
    }
  }
  for (std::size_t r = 0; r < n; ++r) {
    if (m.row_match[r] != kUnmatched) continue;
    for (std::size_t k = pattern.row_ptr()[r]; k < pattern.row_ptr()[r + 1];
         ++k) {
      const std::size_t c = pattern.col_idx()[k];
      if (m.col_match[c] == kUnmatched) {
        m.row_match[r] = c;
        m.col_match[c] = r;
        ++m.size;
        break;
      }
    }
  }

  // Augmenting phases for the leftovers.
  std::vector<int> visited(n, -1);
  int phase = 0;
  for (std::size_t r = 0; r < n; ++r) {
    if (m.row_match[r] != kUnmatched) continue;
    if (augment(pattern, r, m.row_match, m.col_match, visited, phase++)) {
      ++m.size;
    }
  }
  return m;
}

DmDecomposition dulmage_mendelsohn(const SparsityPattern& pattern,
                                   const Matching& matching) {
  const std::size_t n = pattern.dimension();
  const SparsityPattern cols = pattern.transpose();
  DmDecomposition dm;

  // Horizontal region: alternating BFS from unmatched rows — row -> any
  // column in the row, column -> its matched row.
  {
    std::vector<char> row_seen(n, 0), col_seen(n, 0);
    std::vector<std::size_t> queue = matching.unmatched_rows();
    for (std::size_t r : queue) row_seen[r] = 1;
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const std::size_t r = queue[qi];
      for (std::size_t k = pattern.row_ptr()[r]; k < pattern.row_ptr()[r + 1];
           ++k) {
        const std::size_t c = pattern.col_idx()[k];
        if (col_seen[c]) continue;
        col_seen[c] = 1;
        const std::size_t owner = matching.col_match[c];
        if (owner != kUnmatched && !row_seen[owner]) {
          row_seen[owner] = 1;
          queue.push_back(owner);
        }
      }
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (row_seen[r]) dm.overdetermined_rows.push_back(r);
    }
    for (std::size_t c = 0; c < n; ++c) {
      if (col_seen[c]) dm.overdetermined_cols.push_back(c);
    }
  }

  // Vertical region: alternating BFS from unmatched columns — column -> any
  // row with a nonzero in it, row -> its matched column.
  {
    std::vector<char> row_seen(n, 0), col_seen(n, 0);
    std::vector<std::size_t> queue = matching.unmatched_cols();
    for (std::size_t c : queue) col_seen[c] = 1;
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const std::size_t c = queue[qi];
      for (std::size_t k = cols.row_ptr()[c]; k < cols.row_ptr()[c + 1]; ++k) {
        const std::size_t r = cols.col_idx()[k];
        if (row_seen[r]) continue;
        row_seen[r] = 1;
        const std::size_t mate = matching.row_match[r];
        if (mate != kUnmatched && !col_seen[mate]) {
          col_seen[mate] = 1;
          queue.push_back(mate);
        }
      }
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (row_seen[r]) dm.underdetermined_rows.push_back(r);
    }
    for (std::size_t c = 0; c < n; ++c) {
      if (col_seen[c]) dm.underdetermined_cols.push_back(c);
    }
  }
  return dm;
}

BipartiteComponents connected_components(const SparsityPattern& pattern) {
  const std::size_t n = pattern.dimension();
  const SparsityPattern cols = pattern.transpose();
  BipartiteComponents out;
  out.row_component.assign(n, kUnmatched);
  out.col_component.assign(n, kUnmatched);

  std::vector<std::size_t> queue;
  for (std::size_t seed = 0; seed < n; ++seed) {
    if (out.row_component[seed] != kUnmatched || pattern.row_degree(seed) == 0) {
      continue;
    }
    const std::size_t id = out.count++;
    queue.clear();
    queue.push_back(seed);
    out.row_component[seed] = id;
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const std::size_t r = queue[qi];
      for (std::size_t k = pattern.row_ptr()[r]; k < pattern.row_ptr()[r + 1];
           ++k) {
        const std::size_t c = pattern.col_idx()[k];
        if (out.col_component[c] != kUnmatched) continue;
        out.col_component[c] = id;
        for (std::size_t j = cols.row_ptr()[c]; j < cols.row_ptr()[c + 1];
             ++j) {
          const std::size_t r2 = cols.col_idx()[j];
          if (out.row_component[r2] == kUnmatched) {
            out.row_component[r2] = id;
            queue.push_back(r2);
          }
        }
      }
    }
  }
  // Columns with entries only in already-visited rows were labelled above;
  // a column whose rows are all empty cannot exist (an entry IS a row
  // position), so only genuinely empty columns remain kUnmatched.
  return out;
}

std::vector<std::size_t> min_degree_order(const SparsityPattern& pattern,
                                          const Matching& matching) {
  const std::size_t n = pattern.dimension();
  if (!matching.perfect(n)) {
    throw std::invalid_argument("min_degree_order: matching not perfect");
  }
  // Build the symmetrized column-interaction graph of the permuted matrix
  // B(j, k): columns j, k interact when the pivot row of j has a nonzero in
  // column k, or vice versa.  Minimum degree on B approximates the LU fill
  // behaviour with the matching-fixed pivot sequence.
  std::vector<std::vector<std::size_t>> adj(n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t pr = matching.col_match[j];  // pivot row of column j
    for (std::size_t k = pattern.row_ptr()[pr]; k < pattern.row_ptr()[pr + 1];
         ++k) {
      const std::size_t c = pattern.col_idx()[k];
      if (c == j) continue;
      adj[j].push_back(c);
      adj[c].push_back(j);
    }
  }
  for (auto& list : adj) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }

  std::vector<char> eliminated(n, 0);
  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<std::size_t> scratch;
  for (std::size_t step = 0; step < n; ++step) {
    // Pick the live node of minimum degree (ties broken by index, which
    // keeps the order deterministic across platforms).
    std::size_t best = kUnmatched, best_deg = kUnmatched;
    for (std::size_t j = 0; j < n; ++j) {
      if (eliminated[j]) continue;
      const std::size_t deg = adj[j].size();
      if (deg < best_deg) {
        best_deg = deg;
        best = j;
        if (deg == 0) break;
      }
    }
    eliminated[best] = 1;
    order.push_back(best);

    // Eliminate: connect the remaining neighbours into a clique.
    scratch.clear();
    for (std::size_t nb : adj[best]) {
      if (!eliminated[nb]) scratch.push_back(nb);
    }
    for (std::size_t nb : scratch) {
      auto& list = adj[nb];
      list.erase(std::remove(list.begin(), list.end(), best), list.end());
      std::size_t added = 0;
      for (std::size_t other : scratch) {
        if (other == nb) continue;
        if (!std::binary_search(list.begin(), list.end(), other)) {
          list.push_back(other);
          ++added;
        }
      }
      if (added > 0) std::sort(list.begin(), list.end());
    }
    adj[best].clear();
    adj[best].shrink_to_fit();
  }
  return order;
}

}  // namespace nvsram::linalg
