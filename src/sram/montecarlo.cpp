#include "sram/montecarlo.h"

#include <algorithm>
#include <cmath>
#include <memory>

namespace nvsram::sram {

MonteCarlo::MonteCarlo(models::PaperParams pp, VariationSpec spec)
    : pp_(pp), spec_(spec), rng_(spec.seed) {}

FetVary MonteCarlo::draw_fet_vary() {
  // Materialize one mismatch draw per call site: each device gets its own
  // deviate, deterministic per (seed, call order, device name hash) so a
  // sample is reproducible regardless of device instantiation order.
  std::normal_distribution<double> gauss;
  const unsigned sample_seed = rng_();
  const double vth_sigma = spec_.vth_sigma;
  const double kp_sigma = spec_.kp_rel_sigma;
  return [sample_seed, vth_sigma, kp_sigma](const std::string& name,
                                            models::FinFETParams& params) {
    std::seed_seq seq{sample_seed, static_cast<unsigned>(
                                       std::hash<std::string>{}(name))};
    std::mt19937 dev_rng(seq);
    std::normal_distribution<double> g;
    params.vth0 += vth_sigma * g(dev_rng);
    params.kp *= std::max(0.2, 1.0 + kp_sigma * g(dev_rng));
  };
}

MtjVary MonteCarlo::draw_mtj_vary() {
  const unsigned sample_seed = rng_();
  const double ra_sigma = spec_.ra_rel_sigma;
  const double jc_sigma = spec_.jc_rel_sigma;
  return [sample_seed, ra_sigma, jc_sigma](const std::string& name,
                                           models::MTJParams& params) {
    std::seed_seq seq{sample_seed + 1u, static_cast<unsigned>(
                                            std::hash<std::string>{}(name))};
    std::mt19937 dev_rng(seq);
    std::normal_distribution<double> g;
    params.ra_product *= std::max(0.3, 1.0 + ra_sigma * g(dev_rng));
    params.jc *= std::max(0.3, 1.0 + jc_sigma * g(dev_rng));
  };
}

MonteCarloSummary MonteCarlo::hold_snm(int samples, CellKind kind,
                                       double min_snm) {
  MonteCarloSummary out;
  for (int s = 0; s < samples; ++s) {
    SnmOptions a, b;
    a.fet_vary = draw_fet_vary();
    b.fet_vary = draw_fet_vary();
    const auto vtc_a = inverter_vtc(pp_, kind, a);
    const auto vtc_b = inverter_vtc(pp_, kind, b);
    const auto r = compute_snm(vtc_a, vtc_b);
    out.stats.add(r.snm);
    ++out.samples;
    if (r.snm < min_snm) ++out.failures;
  }
  return out;
}

MonteCarloSummary MonteCarlo::read_snm(int samples, CellKind kind,
                                       double min_snm) {
  MonteCarloSummary out;
  for (int s = 0; s < samples; ++s) {
    SnmOptions a, b;
    a.access_on = b.access_on = true;
    a.fet_vary = draw_fet_vary();
    b.fet_vary = draw_fet_vary();
    const auto r =
        compute_snm(inverter_vtc(pp_, kind, a), inverter_vtc(pp_, kind, b));
    out.stats.add(r.snm);
    ++out.samples;
    if (r.snm < min_snm) ++out.failures;
  }
  return out;
}

MonteCarloSummary MonteCarlo::store_margin(int samples, double min_overdrive) {
  MonteCarloSummary out;
  for (int s = 0; s < samples; ++s) {
    TestbenchOptions opts;
    opts.ideal_bitlines = true;
    opts.relax_attempt = spec_.relax_attempt;
    opts.fet_vary = draw_fet_vary();
    opts.mtj_vary = draw_mtj_vary();
    CellTestbench tb(CellKind::kNvSram, pp_, opts);

    ++out.samples;
    // H-store current (Q-side MTJ still parallel).  Evaluate the current
    // while the forced state is still in effect — solve_dc re-forces states.
    auto sol_h = tb.solve_dc(tb.bias_store_h(), /*data=*/true,
                             models::MtjState::kParallel,
                             models::MtjState::kAntiparallel);
    if (!sol_h) {
      ++out.failures;
      continue;
    }
    const double ih = std::fabs(tb.mtj_q()->current(sol_h->view()));

    // L-store current (QB-side MTJ antiparallel).
    auto sol_l = tb.solve_dc(tb.bias_store_l(), /*data=*/true,
                             models::MtjState::kAntiparallel,
                             models::MtjState::kAntiparallel);
    if (!sol_l) {
      ++out.failures;
      continue;
    }
    const double il = tb.mtj_qb()->current(sol_l->view());
    const double ic_h = tb.mtj_q()->model().params().critical_current();
    const double ic_l = tb.mtj_qb()->model().params().critical_current();
    const double overdrive = std::min(ih / ic_h, il / ic_l);
    out.stats.add(overdrive);
    if (overdrive < min_overdrive) ++out.failures;
  }
  return out;
}

}  // namespace nvsram::sram
