#include "sram/snm.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "spice/dc.h"
#include "spice/elements.h"
#include "util/interp.h"
#include "util/stats.h"

namespace nvsram::sram {

std::vector<std::pair<double, double>> inverter_vtc(
    const models::PaperParams& pp, CellKind kind, const SnmOptions& opts) {
  const double vdd = opts.vvdd > 0.0 ? opts.vvdd : pp.vdd;

  spice::Circuit ckt;
  const auto n_in = ckt.node("in");
  const auto n_out = ckt.node("out");
  const auto n_vdd = ckt.node("vdd");

  auto* vin = ckt.add<spice::VSource>("Vin", n_in, spice::kGround,
                                      spice::SourceSpec::dc(0.0));
  ckt.add<spice::VSource>("Vdd", n_vdd, spice::kGround,
                          spice::SourceSpec::dc(vdd));
  auto vary = [&](const char* name, models::FinFETParams params) {
    if (opts.fet_vary) opts.fet_vary(name, params);
    return params;
  };
  spice::add_finfet(ckt, "pu", n_out, n_in, n_vdd,
                    vary("pu", pp.pmos(pp.fins_load)));
  spice::add_finfet(ckt, "pd", n_out, n_in, spice::kGround,
                    vary("pd", pp.nmos(pp.fins_driver)));

  if (opts.access_on) {
    const auto n_bl = ckt.node("bl");
    const auto n_wl = ckt.node("wl");
    ckt.add<spice::VSource>("Vbl", n_bl, spice::kGround,
                            spice::SourceSpec::dc(vdd));
    ckt.add<spice::VSource>("Vwl", n_wl, spice::kGround,
                            spice::SourceSpec::dc(vdd));
    spice::add_finfet(ckt, "ax", n_bl, n_wl, n_out,
                      vary("ax", pp.nmos(pp.fins_access)));
  }
  if (kind == CellKind::kNvSram) {
    // PS branch loading the output node: out -- FET(SR) -- Y -- MTJ -- CTRL.
    const auto n_y = ckt.node("y");
    const auto n_sr = ckt.node("sr");
    const auto n_ctrl = ckt.node("ctrl");
    ckt.add<spice::VSource>(
        "Vsr", n_sr, spice::kGround,
        spice::SourceSpec::dc(opts.ps_branch_connected ? pp.vsr : 0.0));
    ckt.add<spice::VSource>(
        "Vctrl", n_ctrl, spice::kGround,
        spice::SourceSpec::dc(opts.ps_branch_connected ? 0.0 : pp.vctrl_normal));
    spice::add_finfet(ckt, "ps", n_out, n_sr, n_y,
                      vary("ps", pp.nmos(pp.fins_ps)));
    ckt.add<spice::MTJElement>("mtj", n_ctrl, n_y, pp.mtj,
                               models::MtjState::kParallel);
  }

  const auto points = util::linspace(0.0, vdd, static_cast<std::size_t>(
                                                   std::max(opts.sweep_points, 3)));
  spice::DCSweep sweep(
      ckt, [vin](double v) { vin->set_spec(spice::SourceSpec::dc(v)); }, points,
      {spice::Probe::node_voltage(n_out, "V(out)")});
  const auto wave = sweep.run();

  std::vector<std::pair<double, double>> vtc;
  vtc.reserve(points.size());
  const auto& out = wave.series("V(out)");
  for (std::size_t i = 0; i < points.size(); ++i) {
    vtc.emplace_back(points[i], out[i]);
  }
  return vtc;
}

namespace {

// Largest axis-aligned square inscribed in the lobe bounded above by y=f(x)
// and below by the mirrored curve y = f_inv(x).  Both curves are monotone
// non-increasing, so for a square spanning [x, x+s] the top edge binds at
// the right end (y_top <= f(x+s)) and the bottom edge at the left end
// (y_bot >= f_inv(x)); a side-s square fits iff
//     exists x:  f(x + s) - f_inv(x) >= s.
// Feasibility is tested over a fine x grid with binary search on s.
double largest_square(const util::PiecewiseLinear& f,
                      const util::PiecewiseLinear& f_inv, double x_lo,
                      double x_hi) {
  const auto fits = [&](double s) {
    // The whole square must stay inside the curves' domain: x + s <= x_hi.
    const double x_max = x_hi - s;
    if (x_max < x_lo) return false;
    const int kGrid = 400;
    for (int i = 0; i <= kGrid; ++i) {
      const double x = x_lo + (x_max - x_lo) * i / kGrid;
      if (f(x + s) - f_inv(x) >= s) return true;
    }
    return false;
  };
  double lo = 0.0;
  double hi = x_hi - x_lo;
  if (!fits(lo + 1e-9)) return 0.0;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    (fits(mid) ? lo : hi) = mid;
  }
  return lo;
}

}  // namespace

namespace {

// f: vout(vin) on an increasing vin grid.
util::PiecewiseLinear forward_curve(
    const std::vector<std::pair<double, double>>& vtc) {
  std::vector<double> xs, ys;
  xs.reserve(vtc.size());
  ys.reserve(vtc.size());
  for (const auto& [x, y] : vtc) {
    xs.push_back(x);
    ys.push_back(y);
  }
  return util::PiecewiseLinear(xs, ys);
}

// f_inv: the mirrored curve x(vout).  A VTC is monotone non-increasing;
// reverse the samples (and nudge exact plateaus) for an increasing axis.
util::PiecewiseLinear inverse_curve(
    const std::vector<std::pair<double, double>>& vtc) {
  std::vector<double> xi, yi;
  xi.reserve(vtc.size());
  yi.reserve(vtc.size());
  for (auto it = vtc.rbegin(); it != vtc.rend(); ++it) {
    double w = it->second;  // vout becomes the abscissa
    if (!xi.empty() && w <= xi.back()) w = xi.back() + 1e-12;
    xi.push_back(w);
    yi.push_back(it->first);
  }
  return util::PiecewiseLinear(xi, yi);
}

}  // namespace

SnmResult compute_snm(const std::vector<std::pair<double, double>>& vtc) {
  return compute_snm(vtc, vtc);
}

SnmResult compute_snm(const std::vector<std::pair<double, double>>& vtc_a,
                      const std::vector<std::pair<double, double>>& vtc_b) {
  if (vtc_a.size() < 3 || vtc_b.size() < 3) {
    throw std::invalid_argument("compute_snm: too few points");
  }
  const auto fa = forward_curve(vtc_a);
  const auto fb_inv = inverse_curve(vtc_b);

  const double x_lo = std::min(vtc_a.front().first, vtc_b.front().first);
  const double x_hi = std::max(vtc_a.back().first, vtc_b.back().first);
  SnmResult r;
  // Upper-left lobe: curve A above the mirror of B.
  r.lobe_high = largest_square(fa, fb_inv, x_lo, x_hi);
  // Lower-right lobe: the mirrored orientation.
  r.lobe_low = largest_square(fb_inv, fa, x_lo, x_hi);
  r.snm = std::min(r.lobe_high, r.lobe_low);
  return r;
}

SnmResult hold_snm(const models::PaperParams& pp, CellKind kind, double vvdd) {
  SnmOptions opts;
  opts.vvdd = vvdd;
  return compute_snm(inverter_vtc(pp, kind, opts));
}

SnmResult read_snm(const models::PaperParams& pp, CellKind kind) {
  SnmOptions opts;
  opts.access_on = true;
  return compute_snm(inverter_vtc(pp, kind, opts));
}

}  // namespace nvsram::sram
