// Scripted single-cell testbench.
//
// Owns a Circuit holding one cell (6T or NV-SRAM) with realistic periphery:
// a header power switch on virtual VDD, bitline capacitances with precharge
// pFETs and write-driver nFETs, and ideal drivers for WL / PG / SR / CTRL.
//
// Operations are *scheduled* (building PWL waveforms for every driver), then
// `run()` executes one transient over the whole script and returns the
// waveform plus per-phase energy accounting.  DC helpers measure static
// power per mode and arbitrary-bias operating points (Fig. 3 / Fig. 4).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "lint/temporal/timeline.h"
#include "models/paper_params.h"
#include "spice/dc.h"
#include "spice/tran.h"
#include "sram/cell.h"

namespace nvsram::sram {

enum class CellKind { k6T, kNvSram };

struct TestbenchOptions {
  int power_switch_fins = 0;     // 0 => PaperParams::fins_power_switch
  // When true, BL/BLB are driven by ideal sources and the precharge /
  // write-driver periphery is omitted.  Use for DC measurements (static
  // power, Fig. 3/4 sweeps) so periphery leakage does not pollute the
  // per-cell numbers.  Transient op energies use the default (periphery).
  bool ideal_bitlines = false;
  double bitline_cap = 4e-15;    // F
  double slew = 25e-12;          // driver edge time
  double store_margin = 2e-9;    // settle margin added to each store step
  double restore_ramp = 0.5e-9;  // virtual-VDD ramp on wake-up
  double restore_settle = 1.5e-9;
  double sleep_ramp = 1e-9;      // VDD 0.9 <-> 0.7 transition
  // Transient knobs (t_stop is derived from the schedule).
  double dt_max = 0.0;           // 0 => auto
  spice::IntegrationMethod method = spice::IntegrationMethod::kTrapezoidal;
  // Wall-clock budget per analysis (run() transient and each DC solve);
  // expiry throws util::WatchdogError.  0 = unlimited.  Characterization
  // phases derive this from their remaining phase budget (see
  // sram/characterize.h), which is how PointContext::timeout_sec reaches
  // the SPICE substrate.
  double max_wall_seconds = 0.0;
  // Rung of the shared relaxation ladder (NewtonOptions::relaxed /
  // TranOptions::relaxed) applied to every analysis this bench runs.
  // 0 = paper-accuracy tolerances; retry loops bump it on failure so all
  // benches loosen identically instead of inventing per-bench schedules.
  int relax_attempt = 0;
  // Monte-Carlo mismatch hooks, applied to the cell's own devices (not the
  // periphery): see sram/cell.h.
  FetVary fet_vary;
  MtjVary mtj_vary;
};

// One named window of the executed schedule.
struct PhaseWindow {
  std::string name;
  double t0 = 0.0;
  double t1 = 0.0;
  double duration() const { return t1 - t0; }
};

class CellTestbench {
 public:
  CellTestbench(CellKind kind, models::PaperParams pp,
                TestbenchOptions opts = {});

  CellKind kind() const { return kind_; }
  const models::PaperParams& paper() const { return pp_; }
  spice::Circuit& circuit() { return circuit_; }
  const spice::Circuit& circuit() const { return circuit_; }
  const CellHandles& cell() const { return cell_; }

  // ---- schedule builders (advance the script clock) ----
  void op_write(bool data);
  void op_read();
  void op_idle(double duration);
  void op_sleep(double duration);
  void op_store();                 // NV-SRAM only (throws otherwise)
  void op_shutdown(double duration);
  void op_restore();
  double now() const { return t_; }

  const std::vector<PhaseWindow>& scheduled_phases() const { return phases_; }
  // n-th occurrence of a phase with this name (throws if absent).
  const PhaseWindow& phase(const std::string& name, int occurrence = 0) const;

  // Static timeline of the scheduled tracks — the exact PWL corners run()
  // would freeze into the drivers, with per-track protocol roles and the
  // phase windows attached.  Feeds the temporal lint pass (protocol-* rules)
  // and the golden-timeline tests; no transient solve is involved.
  lint::temporal::Timeline export_timeline() const;

  // ---- execution ----
  struct RunResult {
    spice::Waveform wave;
    std::vector<PhaseWindow> phases;
    std::vector<std::string> sources;
    spice::TranStats stats;

    // Total energy delivered by all drivers/supplies over [t0, t1].
    double energy(double t0, double t1) const;
    double energy(const PhaseWindow& ph) const { return energy(ph.t0, ph.t1); }
    double average_power(double t0, double t1) const;
    const PhaseWindow& phase(const std::string& name, int occurrence = 0) const;
  };
  RunResult run();

  // ---- DC measurements ----
  struct BiasSet {
    double vdd = 0.9;
    double pg = 0.0;
    double wl = 0.0;
    double pch = 0.0;   // precharge gate (0 = on)
    double wd0 = 0.0;
    double wd1 = 0.0;
    double sr = 0.0;
    double ctrl = 0.0;
    double bl = 0.9;    // ideal-bitline mode only
    double blb = 0.9;
  };
  BiasSet bias_normal() const;
  BiasSet bias_sleep() const;
  BiasSet bias_shutdown() const;   // super cutoff
  BiasSet bias_store_h() const;    // step 1 (VSR on, CTRL = 0)
  BiasSet bias_store_l() const;    // step 2 (VSR on, CTRL = vctrl_store)

  // Operating point with the cell holding `data`; MTJ states are forced to
  // the post-store configuration for `data` before solving.  The optional
  // overrides pin individual MTJ states instead (e.g. the pre-switch state
  // when measuring store currents).
  std::optional<spice::DCSolution> solve_dc(
      const BiasSet& bias, bool data,
      std::optional<models::MtjState> force_q = std::nullopt,
      std::optional<models::MtjState> force_qb = std::nullopt);

  // Total static power drawn from all sources at the given mode/data.
  // Throws spice::SolverError (with the DC solve diagnostics: worst node,
  // iterations, recovery stage) if the operating point cannot be solved.
  enum class StaticMode { kNormal, kSleep, kShutdown };
  double static_power(StaticMode mode, bool data = true);

  // Batched static-power corners: one testbench per corner (clones of one
  // netlist — same kind, params, and options), solved in lockstep through
  // spice::solve_dc_lanes.  out[l] is tbs[l]->static_power(corners[l]) to
  // the bit (lanes that cannot stay in lockstep peel to the scalar path
  // inside the batched driver).  Throws spice::SolverError naming the
  // first lane whose operating point failed.
  static std::vector<double> static_power_lanes(
      const std::vector<CellTestbench*>& tbs,
      const std::vector<std::pair<StaticMode, bool>>& corners);

  // Diagnostics of the most recent solve_dc() attempt (success or failure).
  const spice::SolveDiagnostics& last_dc_diagnostics() const {
    return last_dc_diag_;
  }

  // Virtual-VDD voltage at a DC point (Fig. 4).
  double vvdd_at(const spice::DCSolution& sol) const;

  // MTJ handles (nullptr for 6T).
  spice::MTJElement* mtj_q() const { return cell_.mtj_q; }
  spice::MTJElement* mtj_qb() const { return cell_.mtj_qb; }

 private:
  struct Track {
    spice::VSource* source = nullptr;
    std::vector<std::pair<double, double>> points;
    double value = 0.0;  // current level
  };

  void set_level(Track& track, double t, double v, double ramp = 0.0);
  void add_phase(const std::string& name, double t0, double t1);
  linalg::Vector dc_guess(const BiasSet& bias, bool data) const;
  void apply_bias(const BiasSet& bias);

  CellKind kind_;
  models::PaperParams pp_;
  TestbenchOptions opts_;

  spice::Circuit circuit_;
  CellHandles cell_;
  spice::NodeId n_vdd_, n_vvdd_, n_pg_, n_wl_, n_bl_, n_blb_, n_pch_, n_wd0_,
      n_wd1_, n_sr_, n_ctrl_;

  Track vdd_, pg_, wl_, pch_, wd0_, wd1_, sr_, ctrl_, bl_, blb_;
  std::vector<Track*> tracks_;

  double t_ = 0.0;
  std::vector<PhaseWindow> phases_;
  spice::SolveDiagnostics last_dc_diag_;
};

}  // namespace nvsram::sram
