#include "sram/schedules.h"

#include <stdexcept>

namespace nvsram::sram {

const char* to_string(BenchArch arch) {
  switch (arch) {
    case BenchArch::kNVPG:
      return "nvpg";
    case BenchArch::kNOF:
      return "nof";
    case BenchArch::kOSR:
      return "osr";
  }
  return "?";
}

std::optional<BenchArch> bench_arch_from_string(const std::string& id) {
  if (id == "nvpg") return BenchArch::kNVPG;
  if (id == "nof") return BenchArch::kNOF;
  if (id == "osr") return BenchArch::kOSR;
  return std::nullopt;
}

std::unique_ptr<CellTestbench> build_benchmark_schedule(
    BenchArch arch, const models::PaperParams& pp, const ScheduleParams& sp,
    TestbenchOptions opts) {
  if (sp.n_rw < 0) throw std::invalid_argument("ScheduleParams::n_rw < 0");
  const CellKind kind =
      arch == BenchArch::kOSR ? CellKind::k6T : CellKind::kNvSram;
  auto tb = std::make_unique<CellTestbench>(kind, pp, opts);

  switch (arch) {
    case BenchArch::kNVPG:
      // Fig. 5(a): the array stays powered through the active burst; store
      // happens once, right before the long shutdown.
      for (int i = 0; i < sp.n_rw; ++i) {
        tb->op_write(i % 2 == 0);
        tb->op_read();
        tb->op_sleep(sp.t_sl);
      }
      tb->op_store();
      tb->op_shutdown(sp.t_sd);
      tb->op_restore();
      tb->op_read();
      break;

    case BenchArch::kNOF:
      // Fig. 5(b): power off around every access.  Write cycles must store
      // (the cell state changed); read cycles restore what the MTJs already
      // hold, so they power off without a store — the protocol-store-missing
      // rule is write-aware for exactly this reason.
      for (int i = 0; i < sp.n_rw; ++i) {
        tb->op_write(i % 2 == 0);
        tb->op_store();
        tb->op_shutdown(sp.t_sl);
        tb->op_restore();
        tb->op_read();
        tb->op_shutdown(sp.t_sl);
        tb->op_restore();
      }
      tb->op_shutdown(sp.t_sd);
      tb->op_restore();
      tb->op_read();
      break;

    case BenchArch::kOSR:
      // Fig. 5(c): volatile 6T cell; both the short and the long idle are
      // low-voltage sleeps above the retention floor.
      for (int i = 0; i < sp.n_rw; ++i) {
        tb->op_write(i % 2 == 0);
        tb->op_read();
        tb->op_sleep(sp.t_sl);
      }
      tb->op_sleep(sp.t_sd);
      tb->op_read();
      break;
  }
  tb->op_idle(2e-9);
  return tb;
}

}  // namespace nvsram::sram
