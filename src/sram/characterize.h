// Cell characterization: per-operation energies and per-mode static power.
//
// This is the bridge between the SPICE substrate and the paper's
// architecture-level energy model: one transient script measures the read /
// write / store / restore energies of a cell, DC solves measure the static
// power of each retention mode, and dedicated sweeps regenerate the bias
// design curves of Figs. 3 and 4.
#pragma once

#include <string>
#include <vector>

#include "models/paper_params.h"
#include "sram/testbench.h"

namespace nvsram::sram {

// Everything the architecture-level energy model needs, per cell.
struct CellEnergetics {
  double t_clk = 0.0;            // access cycle time (s)
  double e_read = 0.0;           // total energy of one read cycle (J)
  double e_write = 0.0;          // total energy of one write cycle (J)
  double p_static_normal = 0.0;  // W, VDD = 0.9 V
  double p_static_sleep = 0.0;   // W, retention at 0.7 V
  double p_static_shutdown = 0.0;  // W, super cutoff

  // NV-SRAM only (zero for 6T):
  double e_store = 0.0;     // both store steps (J)
  double t_store = 0.0;     // duration of both store steps (s)
  double e_restore = 0.0;   // wake-up inrush + MTJ readback (J)
  double t_restore = 0.0;   // restore duration (s)
  double e_sleep_transition = 0.0;  // enter+exit energy of one sleep episode

  // Sanity flags from the characterization transient.
  bool store_verified = false;    // MTJs reached the post-store states
  bool restore_verified = false;  // data recovered after full power collapse

  // Recovery-ladder telemetry accumulated over the characterization
  // transients (op script + sleep script): how many timesteps needed the
  // gmin ramp or a source ramp to converge.  Nonzero counts on nominal
  // parameters indicate the operating point is near the solver's comfort
  // zone — benches print these so silent rescues are visible.
  std::size_t gmin_recoveries = 0;
  std::size_t source_recoveries = 0;
  std::size_t solver_recoveries() const {
    return gmin_recoveries + source_recoveries;
  }

  std::string describe() const;
};

class CellCharacterizer {
 public:
  // `max_wall_seconds` bounds one characterize() call end to end (the
  // transient script, the sleep-transition script, and the DC static-power
  // solves share the budget); expiry throws util::WatchdogError.  0 =
  // unlimited.  Sweep points that characterize cells should pass their
  // PointContext::timeout_sec here.  `relax_attempt` selects a rung of the
  // shared relaxation ladder (NewtonOptions::relaxed) for every analysis;
  // retry callbacks pass their PointContext::attempt so re-runs loosen
  // tolerances uniformly.
  explicit CellCharacterizer(models::PaperParams pp,
                             double max_wall_seconds = 0.0,
                             int relax_attempt = 0);

  // Runs the characterization script for a 6T or NV-SRAM cell.
  CellEnergetics characterize(CellKind kind) const;

  // ---- Fig. 3(a): normal-mode leakage vs V_CTRL ----
  struct LeakagePoint {
    double vctrl;
    double current_nv;  // NV-SRAM cell leakage current (A)
  };
  struct LeakageSweep {
    std::vector<LeakagePoint> points;
    double current_6t;  // equivalent volatile 6T cell leakage (A)
  };
  LeakageSweep leakage_vs_vctrl(const std::vector<double>& vctrl_points) const;

  // ---- Fig. 3(b): H-store current |I_MTJ^{P->AP}| vs V_SR ----
  std::vector<std::pair<double, double>> store_current_vs_vsr(
      const std::vector<double>& vsr_points) const;

  // ---- Fig. 3(c): L-store current I_MTJ^{AP->P} vs V_CTRL (V_SR fixed) ----
  std::vector<std::pair<double, double>> store_current_vs_vctrl(
      const std::vector<double>& vctrl_points) const;

  // ---- Fig. 4: virtual-VDD vs power-switch fin count ----
  struct VvddPoint {
    int fins;
    double vvdd_normal;  // V during normal operation
    double vvdd_store;   // V during the store operation
  };
  std::vector<VvddPoint> vvdd_vs_switch_fins(const std::vector<int>& fins) const;

  const models::PaperParams& paper() const { return pp_; }

 private:
  models::PaperParams pp_;
  double max_wall_seconds_ = 0.0;
  int relax_attempt_ = 0;
};

}  // namespace nvsram::sram
