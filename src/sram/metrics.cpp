#include "sram/metrics.h"

#include <cmath>
#include <stdexcept>

#include "sram/snm.h"
#include "util/rootfind.h"

namespace nvsram::sram {

double write_margin(const models::PaperParams& pp, CellKind kind) {
  // Sweep BLB downward with WL high while the cell holds '1' (QB low side
  // is BL... the cell holds Q=1 so flipping requires pulling BL low).
  // We hold data '1' and sweep BL; the flip shows as Q collapsing.
  CellTestbench tb(kind, pp, TestbenchOptions{.ideal_bitlines = true});
  auto bias = tb.bias_normal();
  bias.wl = pp.vdd;

  double flip_level = 0.0;
  bool found = false;
  // March BL down in 10 mV steps; DC warm-start keeps the held state until
  // the write trip point, where the solver lands on the flipped state.
  for (double vbl = pp.vdd; vbl >= -1e-9; vbl -= 0.01) {
    bias.bl = vbl;
    const auto sol = tb.solve_dc(bias, /*data=*/true);
    if (!sol) continue;
    const double q = sol->node_voltage(tb.cell().q);
    if (q < 0.5 * pp.vdd) {
      flip_level = vbl;
      found = true;
      break;
    }
  }
  if (!found) return 0.0;  // never flips: zero write margin headroom metric
  return pp.vdd - flip_level;
}

double read_current(const models::PaperParams& pp, CellKind kind) {
  CellTestbench tb(kind, pp, TestbenchOptions{.ideal_bitlines = true});
  auto bias = tb.bias_normal();
  bias.wl = pp.vdd;  // read condition: WL high, both bitlines precharged
  const auto sol = tb.solve_dc(bias, /*data=*/true);
  if (!sol) throw std::runtime_error("read_current: DC failed");
  // Q = 1: the discharge path is BLB -> access -> QB -> driver.  Measure the
  // access transistor current via the bitline source.
  auto* blb = dynamic_cast<spice::VSource*>(tb.circuit().find_device("Vblb"));
  if (!blb) throw std::logic_error("read_current: no ideal BLB source");
  // Source branch current is + -> - internally; delivering current makes it
  // negative, so the discharge current is its magnitude.
  return std::fabs(blb->current(sol->view()));
}

double data_retention_voltage(const models::PaperParams& pp, CellKind kind,
                              double min_snm) {
  auto snm_at = [&](double vvdd) {
    return hold_snm(pp, kind, vvdd).snm - min_snm;
  };
  // Hold SNM is monotone in the rail voltage over the relevant range.
  const double lo = 0.05;
  const double hi = pp.vdd;
  if (snm_at(hi) <= 0.0) return hi;  // degenerate: no retention even at VDD
  if (snm_at(lo) > 0.0) return lo;   // retains at (almost) any voltage
  const auto root = util::brent(snm_at, lo, hi, {.x_tolerance = 1e-4});
  if (!root || !root->converged) {
    throw std::runtime_error("data_retention_voltage: bisection failed");
  }
  return root->x;
}

CellMetrics measure_cell_metrics(const models::PaperParams& pp, CellKind kind) {
  CellMetrics m;
  m.write_margin = write_margin(pp, kind);
  m.read_current = read_current(pp, kind);
  m.retention_voltage = data_retention_voltage(pp, kind);
  return m;
}

}  // namespace nvsram::sram
