#include "sram/array.h"

#include <algorithm>
#include <stdexcept>

namespace nvsram::sram {

using spice::NodeId;
using spice::SourceSpec;
using spice::VSource;

ArrayHandles build_array(spice::Circuit& ckt, const std::string& prefix,
                         const models::PaperParams& pp,
                         const ArrayOptions& opts) {
  if (opts.rows < 1 || opts.cols < 1) {
    throw std::invalid_argument("build_array: rows/cols must be >= 1");
  }
  ArrayHandles h;
  h.rows = opts.rows;
  h.cols = opts.cols;
  h.vdd = ckt.node(prefix + ".vdd");

  for (int c = 0; c < opts.cols; ++c) {
    h.bl.push_back(ckt.node(prefix + ".bl" + std::to_string(c)));
    h.blb.push_back(ckt.node(prefix + ".blb" + std::to_string(c)));
  }

  const int sw_fins_cell = opts.power_switch_fins_per_cell > 0
                               ? opts.power_switch_fins_per_cell
                               : pp.fins_power_switch;

  h.cells.resize(opts.rows);
  for (int r = 0; r < opts.rows; ++r) {
    const std::string rp = prefix + ".r" + std::to_string(r);
    const NodeId wl = ckt.node(rp + ".wl");
    const NodeId vv = ckt.node(rp + ".vvdd");
    const NodeId pg = ckt.node(rp + ".pg");
    h.wordlines.push_back(wl);
    h.vvdd.push_back(vv);
    h.pg.push_back(pg);
    build_power_switch(ckt, rp, pp, h.vdd, vv, pg, sw_fins_cell * opts.cols);

    NodeId sr = spice::kGround;
    NodeId ctrl = spice::kGround;
    if (opts.nonvolatile) {
      sr = ckt.node(rp + ".sr");
      ctrl = ckt.node(rp + ".ctrl");
      h.sr.push_back(sr);
      h.ctrl.push_back(ctrl);
    }

    h.cells[r].reserve(opts.cols);
    for (int c = 0; c < opts.cols; ++c) {
      const std::string cp = rp + ".c" + std::to_string(c);
      if (opts.nonvolatile) {
        h.cells[r].push_back(build_nvsram_cell(ckt, cp, pp, vv, wl, h.bl[c],
                                               h.blb[c], sr, ctrl));
      } else {
        h.cells[r].push_back(
            build_6t_cell(ckt, cp, pp, vv, wl, h.bl[c], h.blb[c]));
      }
    }
  }
  return h;
}

// ---- ArrayTestbench ----------------------------------------------------------

std::string ArrayTestbench::q_label(int r, int c) {
  return "Q[" + std::to_string(r) + "][" + std::to_string(c) + "]";
}

ArrayTestbench::ArrayTestbench(models::PaperParams pp, ArrayOptions opts)
    : pp_(pp), opts_(opts) {
  handles_ = build_array(circuit_, "a", pp_, opts_);

  vdd_.source = circuit_.add<VSource>("Vdd", handles_.vdd, spice::kGround,
                                      SourceSpec::dc(pp_.vdd));
  vdd_.value = pp_.vdd;
  all_tracks_.push_back(&vdd_);

  wl_.resize(opts_.rows);
  pg_.resize(opts_.rows);
  if (opts_.nonvolatile) {
    sr_.resize(opts_.rows);
    ctrl_.resize(opts_.rows);
  }
  for (int r = 0; r < opts_.rows; ++r) {
    const std::string rn = std::to_string(r);
    wl_[r].source = circuit_.add<VSource>("Vwl" + rn, handles_.wordlines[r],
                                          spice::kGround, SourceSpec::dc(0.0));
    pg_[r].source = circuit_.add<VSource>("Vpg" + rn, handles_.pg[r],
                                          spice::kGround, SourceSpec::dc(0.0));
    all_tracks_.push_back(&wl_[r]);
    all_tracks_.push_back(&pg_[r]);
    if (opts_.nonvolatile) {
      sr_[r].source = circuit_.add<VSource>("Vsr" + rn, handles_.sr[r],
                                            spice::kGround, SourceSpec::dc(0.0));
      ctrl_[r].source =
          circuit_.add<VSource>("Vctrl" + rn, handles_.ctrl[r], spice::kGround,
                                SourceSpec::dc(pp_.vctrl_normal));
      ctrl_[r].value = pp_.vctrl_normal;
      all_tracks_.push_back(&sr_[r]);
      all_tracks_.push_back(&ctrl_[r]);
    }
  }

  bl_.resize(opts_.cols);
  blb_.resize(opts_.cols);
  for (int c = 0; c < opts_.cols; ++c) {
    const std::string cn = std::to_string(c);
    bl_[c].source = circuit_.add<VSource>("Vbl" + cn, handles_.bl[c],
                                          spice::kGround, SourceSpec::dc(pp_.vdd));
    blb_[c].source = circuit_.add<VSource>(
        "Vblb" + cn, handles_.blb[c], spice::kGround, SourceSpec::dc(pp_.vdd));
    bl_[c].value = pp_.vdd;
    blb_[c].value = pp_.vdd;
    all_tracks_.push_back(&bl_[c]);
    all_tracks_.push_back(&blb_[c]);
  }
}

void ArrayTestbench::set_level(Track& track, double t, double v, double ramp) {
  if (ramp <= 0.0) ramp = opts_.slew;
  double start = t;
  if (!track.points.empty()) {
    start = std::max(start, track.points.back().first + opts_.slew * 0.01);
  }
  if (v == track.value) return;
  track.points.emplace_back(start, track.value);
  track.points.emplace_back(start + ramp, v);
  track.value = v;
}

void ArrayTestbench::add_phase(const std::string& name, double t0, double t1) {
  phases_.push_back({name, t0, t1});
}

void ArrayTestbench::op_write_row(int row, const std::vector<bool>& pattern) {
  if (row < 0 || row >= opts_.rows) {
    throw std::out_of_range("op_write_row: bad row");
  }
  if (static_cast<int>(pattern.size()) != opts_.cols) {
    throw std::invalid_argument("op_write_row: pattern width != cols");
  }
  const double T = pp_.clock_period();
  const double t0 = t_;
  for (int c = 0; c < opts_.cols; ++c) {
    Track& low = pattern[c] ? blb_[c] : bl_[c];
    set_level(low, t0 + 0.05 * T, 0.0);
  }
  set_level(wl_[row], t0 + 0.15 * T, pp_.vdd);
  set_level(wl_[row], t0 + 0.78 * T, 0.0);
  for (int c = 0; c < opts_.cols; ++c) {
    Track& low = pattern[c] ? blb_[c] : bl_[c];
    set_level(low, t0 + 0.85 * T, pp_.vdd);
  }
  add_phase("write_row" + std::to_string(row), t0, t0 + T);
  t_ = t0 + T;
}

void ArrayTestbench::op_read_row(int row) {
  if (row < 0 || row >= opts_.rows) {
    throw std::out_of_range("op_read_row: bad row");
  }
  const double T = pp_.clock_period();
  const double t0 = t_;
  set_level(wl_[row], t0 + 0.15 * T, pp_.vdd);
  set_level(wl_[row], t0 + 0.70 * T, 0.0);
  add_phase("read_row" + std::to_string(row), t0, t0 + T);
  t_ = t0 + T;
}

void ArrayTestbench::op_idle(double duration) {
  add_phase("idle", t_, t_ + duration);
  t_ += duration;
}

void ArrayTestbench::store_row(int row) {
  const double step = pp_.store_pulse + 2e-9;
  const double t0 = t_;
  set_level(ctrl_[row], t0, 0.0);
  set_level(sr_[row], t0, pp_.vsr);
  add_phase("store_h_row" + std::to_string(row), t0, t0 + step);
  set_level(ctrl_[row], t0 + step, pp_.vctrl_store);
  add_phase("store_l_row" + std::to_string(row), t0 + step, t0 + 2 * step);
  set_level(sr_[row], t0 + 2 * step, 0.0);
  set_level(ctrl_[row], t0 + 2 * step, 0.0);
  // Row powers off right after its store (the NVPG sequencing assumption).
  set_level(pg_[row], t0 + 2 * step + 3 * opts_.slew, pp_.vpg_supercutoff);
  t_ = t0 + 2 * step + 6 * opts_.slew;
}

void ArrayTestbench::op_store_all_rows() {
  if (!opts_.nonvolatile) {
    throw std::logic_error("op_store_all_rows: volatile array");
  }
  const double t0 = t_;
  for (int r = 0; r < opts_.rows; ++r) store_row(r);
  add_phase("store_all", t0, t_);
}

void ArrayTestbench::op_shutdown_all(double duration) {
  const double t0 = t_;
  for (int r = 0; r < opts_.rows; ++r) {
    set_level(pg_[r], t0, pp_.vpg_supercutoff);
    if (opts_.nonvolatile) set_level(ctrl_[r], t0, 0.0);
  }
  for (int c = 0; c < opts_.cols; ++c) {
    set_level(bl_[c], t0, 0.0);
    set_level(blb_[c], t0, 0.0);
  }
  add_phase("shutdown", t0, t0 + duration);
  t_ = t0 + duration;
}

void ArrayTestbench::restore_row(int row) {
  const double t0 = t_;
  set_level(sr_[row], t0, pp_.vsr);
  set_level(pg_[row], t0 + opts_.slew, 0.0, 0.5e-9);
  const double t1 = t0 + 0.5e-9 + 1.5e-9;
  set_level(sr_[row], t1, 0.0);
  set_level(ctrl_[row], t1, pp_.vctrl_normal);
  add_phase("restore_row" + std::to_string(row), t0, t1 + 3 * opts_.slew);
  t_ = t1 + 3 * opts_.slew;
}

void ArrayTestbench::op_restore_all_rows() {
  const double t0 = t_;
  for (int c = 0; c < opts_.cols; ++c) {
    set_level(bl_[c], t0, pp_.vdd);
    set_level(blb_[c], t0, pp_.vdd);
  }
  for (int r = 0; r < opts_.rows; ++r) restore_row(r);
  add_phase("restore_all", t0, t_);
}

ArrayTestbench::Result ArrayTestbench::run() {
  if (phases_.empty()) {
    throw std::logic_error("ArrayTestbench::run: nothing scheduled");
  }
  for (Track* tr : all_tracks_) {
    if (tr->source && !tr->points.empty()) {
      tr->source->set_spec(SourceSpec::pwl(tr->points));
    }
  }

  std::vector<spice::Probe> probes;
  for (int r = 0; r < opts_.rows; ++r) {
    for (int c = 0; c < opts_.cols; ++c) {
      probes.push_back(
          spice::Probe::node_voltage(handles_.cells[r][c].q, q_label(r, c)));
    }
    probes.push_back(spice::Probe::node_voltage(
        handles_.vvdd[r], "VVDD[" + std::to_string(r) + "]"));
  }
  std::vector<std::string> names;
  for (Track* tr : all_tracks_) {
    if (!tr->source) continue;
    names.push_back(tr->source->name());
    probes.push_back(
        spice::Probe::source_energy(tr->source, "E:" + tr->source->name()));
  }

  spice::TranOptions topt;
  topt.t_stop = t_ + 1e-9;
  topt.dt_max = std::clamp(topt.t_stop / 1000.0, 50e-12, 5e-9);
  spice::TranAnalysis tran(circuit_, topt, probes);
  Result out{tran.run(), phases_, names};
  return out;
}

double ArrayTestbench::Result::energy(double t0, double t1) const {
  double sum = 0.0;
  for (const auto& name : sources) {
    sum += wave.value_at("E:" + name, t1) - wave.value_at("E:" + name, t0);
  }
  return sum;
}

double ArrayTestbench::Result::total_energy() const {
  double sum = 0.0;
  for (const auto& name : sources) {
    sum += wave.final_value("E:" + name);
  }
  return sum;
}

const PhaseWindow& ArrayTestbench::Result::phase(const std::string& name,
                                                 int occurrence) const {
  int seen = 0;
  for (const auto& ph : phases) {
    if (ph.name == name) {
      if (seen == occurrence) return ph;
      ++seen;
    }
  }
  throw std::out_of_range("ArrayTestbench::Result: no phase " + name);
}

}  // namespace nvsram::sram
