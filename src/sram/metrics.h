// Additional bit-cell design metrics beyond SNM.
//
// * write margin — how far the bitline must be pulled below VDD before the
//   cell flips during a write (higher = easier writes),
// * read current — the bitline discharge current during a read (sensing
//   speed), and
// * data retention voltage (DRV) — the minimum virtual-VDD at which the
//   bistable core still holds data.  The paper's 0.7 V sleep rail must sit
//   comfortably above the DRV; this module quantifies the margin.
#pragma once

#include "models/paper_params.h"
#include "sram/testbench.h"

namespace nvsram::sram {

struct CellMetrics {
  double write_margin = 0.0;       // V below VDD at which the cell flips
  double read_current = 0.0;       // A, worst-case bitline discharge
  double retention_voltage = 0.0;  // V, minimum VVDD that holds data
};

// Write margin: with WL high and one bitline swept down from VDD, the level
// at which the cell flips.  Returns VDD - V_flip (bigger = more margin).
double write_margin(const models::PaperParams& pp, CellKind kind);

// Read current: cell holding '1', WL high, both bitlines at VDD — the
// current pulled out of BLB (the low-side bitline) at the start of a read.
double read_current(const models::PaperParams& pp, CellKind kind);

// Data retention voltage: smallest rail voltage with a positive hold SNM,
// found by bisection on the SNM-vs-VVDD curve.  `min_snm` adds a noise
// floor requirement (a cell with 1 mV of margin does not really retain).
double data_retention_voltage(const models::PaperParams& pp, CellKind kind,
                              double min_snm = 0.02);

CellMetrics measure_cell_metrics(const models::PaperParams& pp, CellKind kind);

}  // namespace nvsram::sram
